// Package asymnvm is a from-scratch reproduction of AsymNVM (ASPLOS 2020):
// a framework for implementing persistent data structures on an
// asymmetric NVM architecture, where byte-addressable NVM lives in a few
// passive back-end nodes shared over an RDMA-class fabric by many
// front-end machines that have no NVM of their own.
//
// The public API assembles simulated deployments (back-ends with NVM
// devices, replica/archive mirrors, front-end clients) and exposes the
// eight persistent data structures of the paper plus the two transaction
// applications. Hardware the paper requires — RDMA NICs and Optane
// DIMMs — is simulated with a virtual-time latency model; see DESIGN.md
// for the substitution argument.
//
// Quick start:
//
//	cl, _ := asymnvm.NewCluster(asymnvm.ClusterConfig{Backends: 1})
//	defer cl.Stop()
//	client, _ := cl.NewClient(1, asymnvm.ModeRCB(64<<20, 1024))
//	tree, _ := client.CreateBPTree("mytree", asymnvm.DSOptions{})
//	_ = tree.Put(42, []byte("hello"))
//	v, ok, _ := tree.Get(42)
package asymnvm

import (
	"asymnvm/internal/backend"
	"asymnvm/internal/clock"
	"asymnvm/internal/cluster"
	"asymnvm/internal/core"
	"asymnvm/internal/ds"
	"asymnvm/internal/mirror"
	"asymnvm/internal/nvm"
	"asymnvm/internal/stats"
	"asymnvm/internal/txapp"
	"asymnvm/internal/workload"
)

// Re-exported configuration types.
type (
	// Mode is the front-end optimization configuration (the paper's
	// naive / R / RC / RCB ladder).
	Mode = core.Mode
	// DSOptions configures a data structure instance.
	DSOptions = ds.Options
	// CreateOptions sizes a structure's private log areas.
	CreateOptions = core.CreateOptions
	// LatencyProfile is the simulated hardware model.
	LatencyProfile = clock.Profile
	// Stats is a point-in-time snapshot of a node's counters.
	Stats = stats.Snapshot
)

// Re-exported data structure and application types.
type (
	Stack       = ds.Stack
	Queue       = ds.Queue
	HashTable   = ds.HashTable
	SkipList    = ds.SkipList
	BST         = ds.BST
	BPTree      = ds.BPTree
	MVBST       = ds.MVBST
	MVBPTree    = ds.MVBPTree
	Partitioned = ds.Partitioned
	TATP        = txapp.TATP
	SmallBank   = txapp.SmallBank
	// KV is the common key-value interface of the index structures.
	KV = ds.KV
	// WorkloadConfig configures a key/operation generator.
	WorkloadConfig = workload.Config
	// Workload generates operation streams (uniform/zipf, read/write mixes).
	Workload = workload.Generator
)

// Mode constructors (Table 3's configurations).
var (
	// ModeNaive disables every optimization: direct remote reads and
	// in-place remote writes.
	ModeNaive = core.ModeNaive
	// ModeR enables operation logging with decoupled replay.
	ModeR = core.ModeR
	// ModeRC adds the front-end DRAM cache.
	ModeRC = core.ModeRC
	// ModeRCB adds memory-log batching and op-log group commit.
	ModeRCB = core.ModeRCB
	// DefaultProfile is the paper-calibrated latency model (2 µs RDMA
	// round trips, 100/300 ns NVM reads/writes).
	DefaultProfile = clock.DefaultProfile
	// NewWorkload builds an operation generator.
	NewWorkload = workload.New
)

// ClusterConfig sizes a deployment.
type ClusterConfig struct {
	// Backends is the number of back-end NVM nodes (default 1).
	Backends int
	// ReplicaMirrors attaches that many NVM replica mirrors per back-end.
	ReplicaMirrors int
	// ArchiveMirror additionally attaches an SSD-class op-log archive.
	ArchiveMirror bool
	// DeviceBytes is each back-end's NVM capacity (default 256 MiB).
	DeviceBytes int
	// Profile overrides the latency model (default DefaultProfile).
	Profile *LatencyProfile
}

// Cluster is an assembled AsymNVM deployment.
type Cluster struct {
	inner *cluster.Cluster
}

// NewCluster builds and starts a deployment.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	cc := cluster.DefaultConfig()
	if cfg.Backends > 0 {
		cc.Backends = cfg.Backends
	}
	cc.MirrorsPerBack = cfg.ReplicaMirrors
	cc.ArchivePerBack = cfg.ArchiveMirror
	if cfg.DeviceBytes > 0 {
		cc.DeviceBytes = cfg.DeviceBytes
	}
	if cfg.Profile != nil {
		cc.Profile = *cfg.Profile
	}
	inner, err := cluster.New(cc)
	if err != nil {
		return nil, err
	}
	return &Cluster{inner: inner}, nil
}

// Stop drains and stops every node.
func (c *Cluster) Stop() { c.inner.Stop() }

// Internal exposes the underlying cluster for recovery orchestration and
// benchmarks (promotion, restart, archives).
func (c *Cluster) Internal() *cluster.Cluster { return c.inner }

// Backend returns back-end node i.
func (c *Cluster) Backend(i int) *backend.Backend { return c.inner.Backends[i] }

// RestartBackend restarts a back-end on its device (transient failure,
// optionally with a power failure).
func (c *Cluster) RestartBackend(i int, powerFail bool) error {
	_, _, err := c.inner.RestartBackend(i, powerFail)
	return err
}

// PromoteMirror makes replica mirror m of back-end i the new back-end
// (permanent failure recovery).
func (c *Cluster) PromoteMirror(i, m int) error {
	_, err := c.inner.PromoteMirror(i, m)
	return err
}

// Archive returns back-end i's archive mirror (nil without ArchiveMirror).
func (c *Cluster) Archive(i int) *mirror.Archive {
	if i >= len(c.inner.Archives) {
		return nil
	}
	return c.inner.Archives[i]
}

// Client is a front-end node with connections to every back-end.
type Client struct {
	fe    *core.Frontend
	conns []*core.Conn
}

// NewClient creates a front-end node. The id must be unique per cluster
// (it doubles as the RPC slot and lock owner id; at most 16 per
// back-end by default).
func (c *Cluster) NewClient(id uint16, mode Mode) (*Client, error) {
	fe, conns, err := c.inner.NewFrontend(id, mode)
	if err != nil {
		return nil, err
	}
	return &Client{fe: fe, conns: conns}, nil
}

// Conn returns the connection to back-end i (structure constructors that
// take an explicit back-end use it).
func (cl *Client) Conn(i int) *core.Conn { return cl.conns[i] }

// Conns returns all connections.
func (cl *Client) Conns() []*core.Conn { return cl.conns }

// Stats snapshots the client's counters.
func (cl *Client) Stats() Stats { return cl.fe.Stats().Snapshot() }

// VirtualTime reports the client's simulated elapsed time.
func (cl *Client) VirtualTime() int64 { return int64(cl.fe.Clock().Now()) }

// Frontend exposes the underlying front-end node.
func (cl *Client) Frontend() *core.Frontend { return cl.fe }

// Structure constructors, all on back-end 0 unless the name says otherwise.

// CreateStack registers a new persistent stack.
func (cl *Client) CreateStack(name string, opts DSOptions) (*Stack, error) {
	return ds.CreateStack(cl.conns[0], name, opts)
}

// OpenStack reopens a stack as its (recovering) writer.
func (cl *Client) OpenStack(name string, opts DSOptions) (*Stack, error) {
	return ds.OpenStack(cl.conns[0], name, opts)
}

// CreateQueue registers a new persistent queue.
func (cl *Client) CreateQueue(name string, opts DSOptions) (*Queue, error) {
	return ds.CreateQueue(cl.conns[0], name, opts)
}

// OpenQueue reopens a queue as its writer.
func (cl *Client) OpenQueue(name string, opts DSOptions) (*Queue, error) {
	return ds.OpenQueue(cl.conns[0], name, opts)
}

// CreateHashTable registers a new persistent hash table.
func (cl *Client) CreateHashTable(name string, opts DSOptions) (*HashTable, error) {
	return ds.CreateHashTable(cl.conns[0], name, opts)
}

// OpenHashTable attaches to a hash table.
func (cl *Client) OpenHashTable(name string, writer bool, opts DSOptions) (*HashTable, error) {
	return ds.OpenHashTable(cl.conns[0], name, writer, opts)
}

// CreateSkipList registers a new persistent skip list.
func (cl *Client) CreateSkipList(name string, opts DSOptions) (*SkipList, error) {
	return ds.CreateSkipList(cl.conns[0], name, opts)
}

// OpenSkipList attaches to a skip list.
func (cl *Client) OpenSkipList(name string, writer bool, opts DSOptions) (*SkipList, error) {
	return ds.OpenSkipList(cl.conns[0], name, writer, opts)
}

// CreateBST registers a new persistent binary search tree.
func (cl *Client) CreateBST(name string, opts DSOptions) (*BST, error) {
	return ds.CreateBST(cl.conns[0], name, opts)
}

// OpenBST attaches to a BST.
func (cl *Client) OpenBST(name string, writer bool, opts DSOptions) (*BST, error) {
	return ds.OpenBST(cl.conns[0], name, writer, opts)
}

// CreateBPTree registers a new persistent B+Tree.
func (cl *Client) CreateBPTree(name string, opts DSOptions) (*BPTree, error) {
	return ds.CreateBPTree(cl.conns[0], name, opts)
}

// OpenBPTree attaches to a B+Tree.
func (cl *Client) OpenBPTree(name string, writer bool, opts DSOptions) (*BPTree, error) {
	return ds.OpenBPTree(cl.conns[0], name, writer, opts)
}

// CreateMVBST registers a new multi-version BST.
func (cl *Client) CreateMVBST(name string, opts DSOptions) (*MVBST, error) {
	return ds.CreateMVBST(cl.conns[0], name, opts)
}

// OpenMVBST attaches to a multi-version BST.
func (cl *Client) OpenMVBST(name string, writer bool, opts DSOptions) (*MVBST, error) {
	return ds.OpenMVBST(cl.conns[0], name, writer, opts)
}

// CreateMVBPTree registers a new multi-version B+Tree.
func (cl *Client) CreateMVBPTree(name string, opts DSOptions) (*MVBPTree, error) {
	return ds.CreateMVBPTree(cl.conns[0], name, opts)
}

// OpenMVBPTree attaches to a multi-version B+Tree.
func (cl *Client) OpenMVBPTree(name string, writer bool, opts DSOptions) (*MVBPTree, error) {
	return ds.OpenMVBPTree(cl.conns[0], name, writer, opts)
}

// CreatePartitioned creates a key-hash partitioned structure spread over
// every connected back-end.
func (cl *Client) CreatePartitioned(kind ds.KVKind, name string, parts int, opts DSOptions) (*Partitioned, error) {
	return ds.CreatePartitioned(cl.conns, kind, name, parts, opts)
}

// OpenPartitioned reopens a partitioned structure from its mapping entry.
func (cl *Client) OpenPartitioned(name string, writer bool, opts DSOptions) (*Partitioned, error) {
	return ds.OpenPartitioned(cl.conns, name, writer, opts)
}

// CreateElastic creates a partitioned structure whose placement lives in
// a versioned mapping table, so partitions can migrate between back-ends
// online (cluster.Ring/PlanMoves/Rebalance via Cluster.Internal, or
// ds.Partitioned.BeginMigration directly). OpenPartitioned reopens it;
// the persisted map routes every key to its current home.
func (cl *Client) CreateElastic(kind ds.KVKind, name string, parts int, opts DSOptions) (*Partitioned, error) {
	return ds.CreateElastic(cl.conns, kind, name, parts, opts)
}

// NewTATP creates and populates a TATP database with n subscribers.
func (cl *Client) NewTATP(name string, n uint64, opts DSOptions) (*TATP, error) {
	return txapp.NewTATP(cl.conns[0], name, n, opts)
}

// NewSmallBank creates and populates a SmallBank database with n accounts.
func (cl *Client) NewSmallBank(name string, n uint64, opts DSOptions) (*SmallBank, error) {
	return txapp.NewSmallBank(cl.conns[0], name, n, opts)
}

// OpenTATP attaches to an existing TATP database.
func (cl *Client) OpenTATP(name string, n uint64, writer bool, opts DSOptions) (*TATP, error) {
	return txapp.OpenTATP(cl.conns[0], name, n, writer, opts)
}

// OpenSmallBank attaches to an existing SmallBank database.
func (cl *Client) OpenSmallBank(name string, n uint64, writer bool, opts DSOptions) (*SmallBank, error) {
	return txapp.OpenSmallBank(cl.conns[0], name, n, writer, opts)
}

// Partitionable structure kinds for CreatePartitioned.
const (
	KindBST       = ds.KindBST
	KindBPTree    = ds.KindBPTree
	KindSkipList  = ds.KindSkipList
	KindHashTable = ds.KindHashTable
	KindMVBST     = ds.KindMVBST
	KindMVBPTree  = ds.KindMVBPTree
)

// NewDevice creates a standalone simulated NVM device (for custom
// deployments and tests).
func NewDevice(size int) *nvm.Device { return nvm.NewDevice(size) }
