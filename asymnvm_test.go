package asymnvm_test

import (
	"bytes"
	"fmt"
	"testing"

	"asymnvm"
	"asymnvm/internal/cluster"
)

// small log areas keep eight structures within the test device.
var fOpts = asymnvm.DSOptions{
	Create:  asymnvm.CreateOptions{MemLogSize: 512 << 10, OpLogSize: 256 << 10},
	Buckets: 128,
}

// The facade smoke test: everything a README user touches, end to end —
// cluster assembly, every structure constructor, workloads, stats,
// restart recovery and mirror promotion.
func TestFacadeEndToEnd(t *testing.T) {
	cl, err := asymnvm.NewCluster(asymnvm.ClusterConfig{
		Backends: 2, ReplicaMirrors: 1, ArchiveMirror: true, DeviceBytes: 64 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	client, err := cl.NewClient(1, asymnvm.ModeRCB(8<<20, 32))
	if err != nil {
		t.Fatal(err)
	}
	if len(client.Conns()) != 2 {
		t.Fatalf("client has %d connections, want 2", len(client.Conns()))
	}

	// One of each structure through the facade.
	st, err := client.CreateStack("f-stack", fOpts)
	if err != nil {
		t.Fatal(err)
	}
	_ = st.Push([]byte("x"))
	q, err := client.CreateQueue("f-queue", fOpts)
	if err != nil {
		t.Fatal(err)
	}
	_ = q.Enqueue([]byte("y"))
	ht, err := client.CreateHashTable("f-ht", fOpts)
	if err != nil {
		t.Fatal(err)
	}
	sl, err := client.CreateSkipList("f-sl", fOpts)
	if err != nil {
		t.Fatal(err)
	}
	bst, err := client.CreateBST("f-bst", fOpts)
	if err != nil {
		t.Fatal(err)
	}
	bpt, err := client.CreateBPTree("f-bpt", fOpts)
	if err != nil {
		t.Fatal(err)
	}
	mvb, err := client.CreateMVBST("f-mvb", fOpts)
	if err != nil {
		t.Fatal(err)
	}
	mvp, err := client.CreateMVBPTree("f-mvp", fOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, kv := range []asymnvm.KV{ht, sl, bst, bpt, mvb, mvp} {
		for i := uint64(1); i <= 30; i++ {
			if err := kv.Put(i, []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := kv.Flush(); err != nil {
			t.Fatal(err)
		}
		v, ok, err := kv.Get(17)
		if err != nil || !ok || !bytes.Equal(v, []byte("v17")) {
			t.Fatalf("facade kv get: %q %v %v", v, ok, err)
		}
	}

	// Partitioned across both back-ends.
	part, err := client.CreatePartitioned(asymnvm.KindHashTable, "f-part", 4, fOpts)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 50; i++ {
		if err := part.Put(i*2654435761, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := part.Flush(); err != nil {
		t.Fatal(err)
	}

	// Workload generator round trip.
	gen := asymnvm.NewWorkload(asymnvm.WorkloadConfig{Seed: 1, Keys: 100, WritePct: 50, Theta: 0.9, Scramble: true})
	for i := 0; i < 100; i++ {
		op := gen.Next()
		if op.Key < 1 || op.Key > 100 {
			t.Fatal("workload key out of range")
		}
	}

	// Stats and virtual time moved.
	if client.Stats().RDMAVerbs() == 0 || client.VirtualTime() == 0 {
		t.Fatal("stats/virtual time not accounted")
	}

	// Drain the writers, then survive a power failure on back-end 0.
	_ = st.Drain()
	_ = q.Drain()
	type drainer interface{ Drain() error }
	for _, kv := range []asymnvm.KV{ht, sl, bst, bpt, mvb, mvp} {
		if err := kv.(drainer).Drain(); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.RestartBackend(0, true); err != nil {
		t.Fatal(err)
	}
	client2, err := cl.NewClient(2, asymnvm.ModeRC(8<<20))
	if err != nil {
		t.Fatal(err)
	}
	bpt2, err := client2.OpenBPTree("f-bpt", false, fOpts)
	if err != nil {
		t.Fatal(err)
	}
	v, ok, err := bpt2.Get(17)
	if err != nil || !ok || !bytes.Equal(v, []byte("v17")) {
		t.Fatalf("after restart: %q %v %v", v, ok, err)
	}

	// Promote the (re-attached) mirror of back-end 0 and read again.
	if err := cl.PromoteMirror(0, 0); err != nil {
		t.Fatal(err)
	}
	client3, err := cl.NewClient(3, asymnvm.ModeRC(8<<20))
	if err != nil {
		t.Fatal(err)
	}
	bpt3, err := client3.OpenBPTree("f-bpt", false, fOpts)
	if err != nil {
		t.Fatal(err)
	}
	v, ok, err = bpt3.Get(29)
	if err != nil || !ok || !bytes.Equal(v, []byte("v29")) {
		t.Fatalf("after promotion: %q %v %v", v, ok, err)
	}
	if cl.Archive(0) == nil {
		t.Fatal("archive mirror missing")
	}
}

func TestFacadeApps(t *testing.T) {
	cl, err := asymnvm.NewCluster(asymnvm.ClusterConfig{Backends: 1, DeviceBytes: 128 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	client, err := cl.NewClient(1, asymnvm.ModeRC(16<<20))
	if err != nil {
		t.Fatal(err)
	}
	tatp, err := client.NewTATP("f-tatp", 100, fOpts)
	if err != nil {
		t.Fatal(err)
	}
	bank, err := client.NewSmallBank("f-bank", 100, fOpts)
	if err != nil {
		t.Fatal(err)
	}
	r := uint64(1)
	for i := 0; i < 500; i++ {
		r ^= r << 13
		r ^= r >> 7
		r ^= r << 17
		if err := tatp.DoTx(r); err != nil {
			t.Fatal(err)
		}
		if err := bank.DoTx(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := tatp.Close(); err != nil {
		t.Fatal(err)
	}
	if err := bank.Close(); err != nil {
		t.Fatal(err)
	}
}

// The reopen half of the facade (every Open* wrapper), plus elastic
// rebalancing end to end through the public API: create an elastic
// table, migrate a partition to the other back-end with the cluster
// orchestration, and read everything back through a plain reopen.
func TestFacadeOpenersAndElastic(t *testing.T) {
	cl, err := asymnvm.NewCluster(asymnvm.ClusterConfig{Backends: 2, DeviceBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	client, err := cl.NewClient(1, asymnvm.ModeR())
	if err != nil {
		t.Fatal(err)
	}
	if cl.Backend(0) == nil || client.Conn(1) == nil || client.Frontend() == nil {
		t.Fatal("facade accessors returned nil")
	}
	if asymnvm.NewDevice(1 << 20) == nil {
		t.Fatal("NewDevice returned nil")
	}

	st, err := client.CreateStack("o-stack", fOpts)
	if err != nil {
		t.Fatal(err)
	}
	_ = st.Push([]byte("x"))
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	q, err := client.CreateQueue("o-queue", fOpts)
	if err != nil {
		t.Fatal(err)
	}
	_ = q.Enqueue([]byte("y"))
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	type kvCloser interface {
		asymnvm.KV
		Close() error
	}
	creates := []struct {
		name   string
		create func(string) (asymnvm.KV, error)
	}{
		{"o-ht", func(n string) (asymnvm.KV, error) { return client.CreateHashTable(n, fOpts) }},
		{"o-sl", func(n string) (asymnvm.KV, error) { return client.CreateSkipList(n, fOpts) }},
		{"o-bst", func(n string) (asymnvm.KV, error) { return client.CreateBST(n, fOpts) }},
		{"o-mvb", func(n string) (asymnvm.KV, error) { return client.CreateMVBST(n, fOpts) }},
		{"o-mvp", func(n string) (asymnvm.KV, error) { return client.CreateMVBPTree(n, fOpts) }},
	}
	for _, c := range creates {
		kv, err := c.create(c.name)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if err := kv.Put(7, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := kv.(kvCloser).Close(); err != nil {
			t.Fatal(err)
		}
	}
	tatp, err := client.NewTATP("o-tatp", 50, fOpts)
	if err != nil {
		t.Fatal(err)
	}
	_ = tatp.Close()
	bank, err := client.NewSmallBank("o-bank", 50, fOpts)
	if err != nil {
		t.Fatal(err)
	}
	_ = bank.Close()

	// Elastic table: seed, migrate one partition to the other back-end
	// through the public surface, verify through a fresh reopen.
	ep, err := client.CreateElastic(asymnvm.KindHashTable, "o-elastic", 4, fOpts)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 40; i++ {
		if err := ep.Put(i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ep.DrainAll(); err != nil {
		t.Fatal(err)
	}
	pi := 0
	dst := 1 - ep.Owner(pi)
	if _, err := cluster.Rebalance(ep, pi, client.Conn(dst), cluster.RebalanceHooks{}); err != nil {
		t.Fatal(err)
	}
	if ep.Owner(pi) != dst {
		t.Fatal("facade rebalance did not move the partition")
	}

	// Reopen everything through the Open* wrappers on a second client.
	client2, err := cl.NewClient(2, asymnvm.ModeR())
	if err != nil {
		t.Fatal(err)
	}
	st2, err := client2.OpenStack("o-stack", fOpts)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok, err := st2.Pop(); err != nil || !ok || !bytes.Equal(v, []byte("x")) {
		t.Fatalf("reopened stack pop: %q %v %v", v, ok, err)
	}
	q2, err := client2.OpenQueue("o-queue", fOpts)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok, err := q2.Dequeue(); err != nil || !ok || !bytes.Equal(v, []byte("y")) {
		t.Fatalf("reopened queue dequeue: %q %v %v", v, ok, err)
	}
	opens := []struct {
		name string
		open func(string) (asymnvm.KV, error)
	}{
		{"o-ht", func(n string) (asymnvm.KV, error) { return client2.OpenHashTable(n, false, fOpts) }},
		{"o-sl", func(n string) (asymnvm.KV, error) { return client2.OpenSkipList(n, false, fOpts) }},
		{"o-bst", func(n string) (asymnvm.KV, error) { return client2.OpenBST(n, false, fOpts) }},
		{"o-mvb", func(n string) (asymnvm.KV, error) { return client2.OpenMVBST(n, false, fOpts) }},
		{"o-mvp", func(n string) (asymnvm.KV, error) { return client2.OpenMVBPTree(n, false, fOpts) }},
	}
	for _, o := range opens {
		kv, err := o.open(o.name)
		if err != nil {
			t.Fatalf("%s: %v", o.name, err)
		}
		if v, ok, err := kv.Get(7); err != nil || !ok || !bytes.Equal(v, []byte("v")) {
			t.Fatalf("%s reopened get: %q %v %v", o.name, v, ok, err)
		}
	}
	if _, err := client2.OpenTATP("o-tatp", 50, false, fOpts); err != nil {
		t.Fatal(err)
	}
	if _, err := client2.OpenSmallBank("o-bank", 50, false, fOpts); err != nil {
		t.Fatal(err)
	}
	ep2, err := client2.OpenPartitioned("o-elastic", false, fOpts)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 40; i++ {
		if v, ok, err := ep2.Get(i); err != nil || !ok || !bytes.Equal(v, []byte{byte(i)}) {
			t.Fatalf("elastic key %d after migration: %q %v %v", i, v, ok, err)
		}
	}
	if ep2.Owner(pi) != dst {
		t.Fatal("reopened elastic map lost the migrated placement")
	}
	if cl.Internal() == nil {
		t.Fatal("Internal returned nil")
	}
}
