package asymnvm_test

import (
	"bytes"
	"fmt"
	"testing"

	"asymnvm"
)

// small log areas keep eight structures within the test device.
var fOpts = asymnvm.DSOptions{
	Create:  asymnvm.CreateOptions{MemLogSize: 512 << 10, OpLogSize: 256 << 10},
	Buckets: 128,
}

// The facade smoke test: everything a README user touches, end to end —
// cluster assembly, every structure constructor, workloads, stats,
// restart recovery and mirror promotion.
func TestFacadeEndToEnd(t *testing.T) {
	cl, err := asymnvm.NewCluster(asymnvm.ClusterConfig{
		Backends: 2, ReplicaMirrors: 1, ArchiveMirror: true, DeviceBytes: 64 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	client, err := cl.NewClient(1, asymnvm.ModeRCB(8<<20, 32))
	if err != nil {
		t.Fatal(err)
	}
	if len(client.Conns()) != 2 {
		t.Fatalf("client has %d connections, want 2", len(client.Conns()))
	}

	// One of each structure through the facade.
	st, err := client.CreateStack("f-stack", fOpts)
	if err != nil {
		t.Fatal(err)
	}
	_ = st.Push([]byte("x"))
	q, err := client.CreateQueue("f-queue", fOpts)
	if err != nil {
		t.Fatal(err)
	}
	_ = q.Enqueue([]byte("y"))
	ht, err := client.CreateHashTable("f-ht", fOpts)
	if err != nil {
		t.Fatal(err)
	}
	sl, err := client.CreateSkipList("f-sl", fOpts)
	if err != nil {
		t.Fatal(err)
	}
	bst, err := client.CreateBST("f-bst", fOpts)
	if err != nil {
		t.Fatal(err)
	}
	bpt, err := client.CreateBPTree("f-bpt", fOpts)
	if err != nil {
		t.Fatal(err)
	}
	mvb, err := client.CreateMVBST("f-mvb", fOpts)
	if err != nil {
		t.Fatal(err)
	}
	mvp, err := client.CreateMVBPTree("f-mvp", fOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, kv := range []asymnvm.KV{ht, sl, bst, bpt, mvb, mvp} {
		for i := uint64(1); i <= 30; i++ {
			if err := kv.Put(i, []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := kv.Flush(); err != nil {
			t.Fatal(err)
		}
		v, ok, err := kv.Get(17)
		if err != nil || !ok || !bytes.Equal(v, []byte("v17")) {
			t.Fatalf("facade kv get: %q %v %v", v, ok, err)
		}
	}

	// Partitioned across both back-ends.
	part, err := client.CreatePartitioned(asymnvm.KindHashTable, "f-part", 4, fOpts)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 50; i++ {
		if err := part.Put(i*2654435761, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := part.Flush(); err != nil {
		t.Fatal(err)
	}

	// Workload generator round trip.
	gen := asymnvm.NewWorkload(asymnvm.WorkloadConfig{Seed: 1, Keys: 100, WritePct: 50, Theta: 0.9, Scramble: true})
	for i := 0; i < 100; i++ {
		op := gen.Next()
		if op.Key < 1 || op.Key > 100 {
			t.Fatal("workload key out of range")
		}
	}

	// Stats and virtual time moved.
	if client.Stats().RDMAVerbs() == 0 || client.VirtualTime() == 0 {
		t.Fatal("stats/virtual time not accounted")
	}

	// Drain the writers, then survive a power failure on back-end 0.
	_ = st.Drain()
	_ = q.Drain()
	type drainer interface{ Drain() error }
	for _, kv := range []asymnvm.KV{ht, sl, bst, bpt, mvb, mvp} {
		if err := kv.(drainer).Drain(); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.RestartBackend(0, true); err != nil {
		t.Fatal(err)
	}
	client2, err := cl.NewClient(2, asymnvm.ModeRC(8<<20))
	if err != nil {
		t.Fatal(err)
	}
	bpt2, err := client2.OpenBPTree("f-bpt", false, fOpts)
	if err != nil {
		t.Fatal(err)
	}
	v, ok, err := bpt2.Get(17)
	if err != nil || !ok || !bytes.Equal(v, []byte("v17")) {
		t.Fatalf("after restart: %q %v %v", v, ok, err)
	}

	// Promote the (re-attached) mirror of back-end 0 and read again.
	if err := cl.PromoteMirror(0, 0); err != nil {
		t.Fatal(err)
	}
	client3, err := cl.NewClient(3, asymnvm.ModeRC(8<<20))
	if err != nil {
		t.Fatal(err)
	}
	bpt3, err := client3.OpenBPTree("f-bpt", false, fOpts)
	if err != nil {
		t.Fatal(err)
	}
	v, ok, err = bpt3.Get(29)
	if err != nil || !ok || !bytes.Equal(v, []byte("v29")) {
		t.Fatalf("after promotion: %q %v %v", v, ok, err)
	}
	if cl.Archive(0) == nil {
		t.Fatal("archive mirror missing")
	}
}

func TestFacadeApps(t *testing.T) {
	cl, err := asymnvm.NewCluster(asymnvm.ClusterConfig{Backends: 1, DeviceBytes: 128 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	client, err := cl.NewClient(1, asymnvm.ModeRC(16<<20))
	if err != nil {
		t.Fatal(err)
	}
	tatp, err := client.NewTATP("f-tatp", 100, fOpts)
	if err != nil {
		t.Fatal(err)
	}
	bank, err := client.NewSmallBank("f-bank", 100, fOpts)
	if err != nil {
		t.Fatal(err)
	}
	r := uint64(1)
	for i := 0; i < 500; i++ {
		r ^= r << 13
		r ^= r >> 7
		r ^= r << 17
		if err := tatp.DoTx(r); err != nil {
			t.Fatal(err)
		}
		if err := bank.DoTx(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := tatp.Close(); err != nil {
		t.Fatal(err)
	}
	if err := bank.Close(); err != nil {
		t.Fatal(err)
	}
}
