// telecom: the TATP telecom benchmark on a key-hash partitioned B+Tree
// spread across three back-end NVM nodes — the "shared NVM blades"
// deployment the paper's introduction motivates.
package main

import (
	"fmt"
	"log"

	"asymnvm"
)

func main() {
	cl, err := asymnvm.NewCluster(asymnvm.ClusterConfig{Backends: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Stop()

	client, err := cl.NewClient(1, asymnvm.ModeRCB(64<<20, 64))
	if err != nil {
		log.Fatal(err)
	}

	// TATP on one back-end...
	tatp, err := client.NewTATP("tatp", 2000, asymnvm.DSOptions{})
	if err != nil {
		log.Fatal(err)
	}
	vstart := client.VirtualTime()
	rng := uint64(2026)
	const txs = 20000
	for i := 0; i < txs; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		if err := tatp.DoTx(rng); err != nil {
			log.Fatal(err)
		}
	}
	if err := tatp.Flush(); err != nil {
		log.Fatal(err)
	}
	elapsed := client.VirtualTime() - vstart
	fmt.Printf("TATP: %d transactions at %.1f KTPS (simulated time)\n",
		txs, float64(txs)/(float64(elapsed)/1e9)/1000)
	counts := tatp.Counts()
	names := []string{"GetSubscriberData", "GetNewDestination", "GetAccessData",
		"UpdateSubscriberData", "UpdateLocation", "InsertCallForwarding", "DeleteCallForwarding"}
	for i, n := range names {
		fmt.Printf("  %-22s %6d\n", n, counts[i])
	}

	// ...and a partitioned index across all three back-ends, the §8.3
	// scaling path: each partition has its own lock, log areas and
	// seqlock, on its own blade.
	part, err := client.CreatePartitioned(asymnvm.KindBPTree, "subscribers", 6, asymnvm.DSOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for i := uint64(1); i <= 5000; i++ {
		if err := part.Put(i*2654435761, []byte("subscriber-row")); err != nil {
			log.Fatal(err)
		}
	}
	if err := part.Flush(); err != nil {
		log.Fatal(err)
	}
	found := 0
	for i := uint64(1); i <= 5000; i++ {
		if _, ok, _ := part.Get(i * 2654435761); ok {
			found++
		}
	}
	fmt.Printf("partitioned index over 3 back-ends: %d/5000 keys found across 6 partitions\n", found)
}
