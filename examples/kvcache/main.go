// kvcache: a skewed key-value workload (the paper's motivating use case —
// a shared KV index on disaggregated NVM) on the persistent hash table,
// showing what the front-end DRAM cache does to fabric traffic.
package main

import (
	"fmt"
	"log"

	"asymnvm"
)

func run(mode asymnvm.Mode, label string) {
	cl, err := asymnvm.NewCluster(asymnvm.ClusterConfig{Backends: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Stop()
	client, err := cl.NewClient(1, mode)
	if err != nil {
		log.Fatal(err)
	}
	ht, err := client.CreateHashTable("kv", asymnvm.DSOptions{Buckets: 1 << 14})
	if err != nil {
		log.Fatal(err)
	}
	// Load 20k items, then run a 90% read workload with Zipf(.99) skew —
	// a handful of keys absorb most of the traffic.
	for i := uint64(1); i <= 20000; i++ {
		if err := ht.Put(i, []byte(fmt.Sprintf("item-%d", i))); err != nil {
			log.Fatal(err)
		}
	}
	if err := ht.Flush(); err != nil {
		log.Fatal(err)
	}
	gen := asymnvm.NewWorkload(asymnvm.WorkloadConfig{
		Seed: 7, Keys: 20000, WritePct: 10, Theta: 0.99, Scramble: true, ValueLen: 32,
	})
	before := client.Stats()
	vstart := client.VirtualTime()
	const ops = 50000
	for i := 0; i < ops; i++ {
		op := gen.Next()
		if op.ValueLen > 0 {
			if err := ht.Put(op.Key, []byte("updated")); err != nil {
				log.Fatal(err)
			}
		} else {
			if _, _, err := ht.Get(op.Key); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := ht.Flush(); err != nil {
		log.Fatal(err)
	}
	d := client.Stats().Sub(before)
	elapsed := client.VirtualTime() - vstart
	kops := float64(ops) / (float64(elapsed) / 1e9) / 1000
	fmt.Printf("%-10s %8.1f KOPS  reads=%-7d hit-ratio=%.0f%%\n",
		label, kops, d.RDMARead, d.HitRatio()*100)
}

func main() {
	fmt.Println("hash-table KV, 20k items, 90% reads, Zipf(.99):")
	run(asymnvm.ModeR(), "no cache")
	run(asymnvm.ModeRC(16<<20), "cached")
}
