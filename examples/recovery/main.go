// recovery: a tour of the §7.2 crash cases — front-end writer crash with
// pending operations, back-end power failure with a torn transaction,
// and a permanent back-end loss rebuilt from an SSD-class archive mirror.
package main

import (
	"fmt"
	"log"

	"asymnvm"
	"asymnvm/internal/ds"
	"asymnvm/internal/logrec"
)

func main() {
	cl, err := asymnvm.NewCluster(asymnvm.ClusterConfig{Backends: 1, ArchiveMirror: true})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Stop()

	// --- Case 2: front-end writer crash with acknowledged ops ---
	client, err := cl.NewClient(1, asymnvm.ModeR())
	if err != nil {
		log.Fatal(err)
	}
	st, err := client.CreateStack("jobs", asymnvm.DSOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := st.Push([]byte(fmt.Sprintf("job-%d", i))); err != nil {
			log.Fatal(err)
		}
	}
	if err := st.Drain(); err != nil {
		log.Fatal(err)
	}
	// The writer appends one op log directly and "crashes" before its
	// memory logs are flushed — exactly what a power cut mid-operation
	// leaves behind.
	if _, err := st.Handle().OpLog(ds.OpPush, append(make([]byte, 8), []byte("job-10")...)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("writer crashed with 1 acknowledged-but-unapplied push")

	// A successor front-end breaks the dead writer's lock (the keepAlive
	// service identified it via the lock-ahead log) and reopens: pending
	// op-log records are re-executed automatically.
	client2, err := cl.NewClient(2, asymnvm.ModeR())
	if err != nil {
		log.Fatal(err)
	}
	raw, err := client2.Conn(0).Open("jobs", true)
	if err != nil {
		log.Fatal(err)
	}
	if err := raw.BreakLock(1); err != nil {
		log.Fatal(err)
	}
	st2, err := client2.OpenStack("jobs", asymnvm.DSOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("successor recovered the stack: %d jobs (11 expected)\n", st2.Len())
	if err := st2.Close(); err != nil {
		log.Fatal(err)
	}

	// --- Case 3: back-end power failure ---
	if err := cl.RestartBackend(0, true); err != nil {
		log.Fatal(err)
	}
	client3, err := cl.NewClient(3, asymnvm.ModeR())
	if err != nil {
		log.Fatal(err)
	}
	st3, err := client3.OpenStack("jobs", asymnvm.DSOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after back-end power failure: %d jobs survive\n", st3.Len())
	if err := st3.Close(); err != nil {
		log.Fatal(err)
	}

	// --- Case 4 without an NVM replica: rebuild from the archive ---
	arch := cl.Archive(0)
	var rebuilt *asymnvm.Stack
	_, err = cl.Internal().RebuildFromArchive(0, arch, func(slot uint16, rec logrec.OpRecord) error {
		if rebuilt == nil {
			c, err := cl.NewClient(4, asymnvm.ModeR())
			if err != nil {
				return err
			}
			rebuilt, err = c.CreateStack("jobs", asymnvm.DSOptions{})
			if err != nil {
				return err
			}
		}
		return rebuilt.ReplayOp(rec)
	})
	if err != nil {
		log.Fatal(err)
	}
	if rebuilt == nil {
		log.Fatal("archive was empty")
	}
	if err := rebuilt.Drain(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("back-end lost for good; archive replay rebuilt %d jobs on a fresh node\n", rebuilt.Len())
}
