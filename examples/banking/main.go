// banking: SmallBank transactions on AsymNVM with replication to an NVM
// mirror, a permanent back-end failure mid-stream, mirror promotion, and
// a money-conservation audit across the failover.
package main

import (
	"fmt"
	"log"

	"asymnvm"
)

func main() {
	cl, err := asymnvm.NewCluster(asymnvm.ClusterConfig{Backends: 1, ReplicaMirrors: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Stop()

	client, err := cl.NewClient(1, asymnvm.ModeRC(32<<20))
	if err != nil {
		log.Fatal(err)
	}
	bank, err := client.NewSmallBank("bank", 500, asymnvm.DSOptions{Buckets: 1 << 12})
	if err != nil {
		log.Fatal(err)
	}
	total0, err := bank.TotalMoney()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("opened 500 accounts, total balance %d\n", total0)

	// Run conserving transactions (SendPayment / Amalgamate bands).
	rng := uint64(42)
	for i := 0; i < 2000; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		r := rng/100*100 + 50 // Amalgamate band
		if i%2 == 0 {
			r = rng/100*100 + 90 // SendPayment band
		}
		if err := bank.DoTx(r); err != nil {
			log.Fatal(err)
		}
	}
	if err := bank.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("2000 transfer transactions committed and replicated")

	// The back-end machine is lost for good; the keepAlive service votes
	// mirror 0 the new back-end.
	if err := cl.PromoteMirror(0, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Println("back-end lost; NVM mirror promoted")

	client2, err := cl.NewClient(2, asymnvm.ModeRC(32<<20))
	if err != nil {
		log.Fatal(err)
	}
	bank2, err := client2.OpenSmallBank("bank", 500, true, asymnvm.DSOptions{Buckets: 1 << 12})
	if err != nil {
		log.Fatal(err)
	}
	total1, err := bank2.TotalMoney()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("audit on promoted mirror: total balance %d (conserved: %v)\n",
		total1, total0 == total1)
}
