// Quickstart: assemble a one-back-end AsymNVM deployment, store data in a
// persistent B+Tree over the simulated RDMA fabric, crash the back-end
// with a power failure, and recover everything from the NVM logs.
package main

import (
	"fmt"
	"log"

	"asymnvm"
)

func main() {
	// One back-end NVM node, default latency model (2 µs RDMA round
	// trips, 100/300 ns NVM media).
	cl, err := asymnvm.NewCluster(asymnvm.ClusterConfig{Backends: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Stop()

	// A front-end client with the full optimization stack: op-logging,
	// a 64 MiB DRAM cache, batching of 256 operations.
	client, err := cl.NewClient(1, asymnvm.ModeRCB(64<<20, 256))
	if err != nil {
		log.Fatal(err)
	}

	tree, err := client.CreateBPTree("quickstart", asymnvm.DSOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for i := uint64(1); i <= 1000; i++ {
		if err := tree.Put(i, []byte(fmt.Sprintf("value-%d", i))); err != nil {
			log.Fatal(err)
		}
	}
	if err := tree.Drain(); err != nil { // persistent fence
		log.Fatal(err)
	}
	v, ok, err := tree.Get(42)
	if err != nil || !ok {
		log.Fatalf("get 42: ok=%v err=%v", ok, err)
	}
	fmt.Printf("before crash: key 42 -> %q\n", v)
	if err := tree.Close(); err != nil {
		log.Fatal(err)
	}

	// Power-fail the back-end and restart it on the same NVM. Restart
	// recovery validates the log checksums and replays anything that was
	// persisted but not yet applied.
	if err := cl.RestartBackend(0, true); err != nil {
		log.Fatal(err)
	}
	client2, err := cl.NewClient(2, asymnvm.ModeRC(64<<20))
	if err != nil {
		log.Fatal(err)
	}
	tree2, err := client2.OpenBPTree("quickstart", false, asymnvm.DSOptions{})
	if err != nil {
		log.Fatal(err)
	}
	missing := 0
	for i := uint64(1); i <= 1000; i++ {
		if _, ok, err := tree2.Get(i); err != nil || !ok {
			missing++
		}
	}
	fmt.Printf("after power failure + recovery: 1000 keys checked, %d missing\n", missing)
	st := client2.Stats()
	fmt.Printf("reader fabric usage: %d RDMA reads, %d cache hits\n", st.RDMARead, st.CacheHit)
}
