// Benchmark entry points: one testing.B benchmark per table and figure
// of the paper's evaluation. Each runs its experiment driver at quick
// scale and reports the headline virtual-time metrics; use
// cmd/asymnvm-bench for full-scale runs and complete row sets.
//
//	go test -bench=. -benchmem
package asymnvm_test

import (
	"fmt"
	"testing"

	"asymnvm/internal/bench"
)

func reportRows(b *testing.B, rows []bench.Row, metricOf func(bench.Row) (string, float64)) {
	for _, r := range rows {
		name, v := metricOf(r)
		if name != "" {
			b.ReportMetric(v, name)
		}
	}
}

func sanitizeMetric(s string) string {
	out := make([]rune, 0, len(s))
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// BenchmarkTable2Allocators regenerates Table 2 (allocator throughput).
func BenchmarkTable2Allocators(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table2(800)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, rows, func(r bench.Row) (string, float64) {
				return sanitizeMetric(r.Series) + "_alloc_MOPS", r.Extra["alloc_MOPS"]
			})
		}
	}
}

// BenchmarkLockPingPoint regenerates the §6.3 lock benchmark.
func BenchmarkLockPingPoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.LockBench(400)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, rows, func(r bench.Row) (string, float64) {
				return sanitizeMetric(fmt.Sprintf("%s_w%.0f", r.Series, r.X)) + "_KOPS", r.KOPS
			})
		}
	}
}

// BenchmarkCachePolicies regenerates the §4.4 replacement comparison.
func BenchmarkCachePolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.CacheBench(60000)
		if i == b.N-1 {
			reportRows(b, rows, func(r bench.Row) (string, float64) {
				return sanitizeMetric(r.Series) + "_missPct", r.Extra["missPct"]
			})
		}
	}
}

// BenchmarkTable3 regenerates the headline Table 3 (a reduced structure
// set at bench scale; the cmd tool covers all ten benchmarks).
func BenchmarkTable3(b *testing.B) {
	sc := bench.QuickScale()
	sc.Ops = 600
	sc.Seed = 2000
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table3(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, rows, func(r bench.Row) (string, float64) {
				if r.Label == "BST" || r.Label == "Queue" || r.Label == "MV-BST" {
					return sanitizeMetric(r.Label + "_" + r.Series + "_KOPS"), r.KOPS
				}
				return "", 0
			})
		}
	}
}

// BenchmarkFig6BatchSize regenerates Figure 6 (throughput vs batch size).
func BenchmarkFig6BatchSize(b *testing.B) {
	sc := bench.QuickScale()
	sc.Ops = 600
	sc.Seed = 2000
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig6BatchSize(sc, []int{1, 16, 256, 4096})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, rows, func(r bench.Row) (string, float64) {
				if r.Series == "MV-BST" || r.Series == "BPT" {
					return sanitizeMetric(fmt.Sprintf("%s_b%.0f_KOPS", r.Series, r.X)), r.KOPS
				}
				return "", 0
			})
		}
	}
}

// BenchmarkFig7CacheSize regenerates Figure 7 (throughput vs cache size).
func BenchmarkFig7CacheSize(b *testing.B) {
	sc := bench.QuickScale()
	sc.Ops = 600
	sc.Seed = 2000
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig7CacheSize(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, rows, func(r bench.Row) (string, float64) {
				if r.Series == "BPT" {
					return sanitizeMetric(fmt.Sprintf("BPT_c%.0fpct_KOPS", r.X)), r.KOPS
				}
				return "", 0
			})
		}
	}
}

// BenchmarkFig8Readers regenerates Figure 8 (SWMR reader scaling).
func BenchmarkFig8Readers(b *testing.B) {
	sc := bench.QuickScale()
	sc.Ops = 400
	sc.Seed = 1500
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig8Readers(sc, 3)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, rows, func(r bench.Row) (string, float64) {
				if r.Series == "BST(R)" || r.Series == "MV-BST(R)" {
					return sanitizeMetric(fmt.Sprintf("%s_n%.0f_KOPS", r.Series, r.X)), r.KOPS
				}
				return "", 0
			})
		}
	}
}

// BenchmarkFig9MultiDS regenerates Figure 9 (independent structures
// sharing one back-end).
func BenchmarkFig9MultiDS(b *testing.B) {
	sc := bench.QuickScale()
	sc.Ops = 400
	sc.Seed = 1000
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig9MultiDS(sc, 3)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, rows, func(r bench.Row) (string, float64) {
				if r.Series == "BST" {
					return sanitizeMetric(fmt.Sprintf("BST_n%.0f_aggKOPS", r.X)), r.KOPS
				}
				return "", 0
			})
		}
	}
}

// BenchmarkFig10Partitions regenerates Figure 10 (partitioned structures
// across back-ends).
func BenchmarkFig10Partitions(b *testing.B) {
	sc := bench.QuickScale()
	sc.Ops = 400
	sc.Seed = 1000
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig10Partitions(sc, 3)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, rows, func(r bench.Row) (string, float64) {
				if r.Series == "BPT" {
					return sanitizeMetric(fmt.Sprintf("BPT_p%.0f_KOPS", r.X)), r.KOPS
				}
				return "", 0
			})
		}
	}
}

// BenchmarkFig11CPU regenerates Figure 11 (CPU utilization).
func BenchmarkFig11CPU(b *testing.B) {
	sc := bench.QuickScale()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig11CPU(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, rows, func(r bench.Row) (string, float64) {
				return sanitizeMetric(r.Series) + "_utilPct", r.Extra["util_pct"]
			})
		}
	}
}

// BenchmarkFig12Zipf regenerates Figure 12 (skew tolerance).
func BenchmarkFig12Zipf(b *testing.B) {
	sc := bench.QuickScale()
	sc.Ops = 600
	sc.Seed = 2000
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig12Zipf(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, rows, func(r bench.Row) (string, float64) {
				if r.Series == "BPT" {
					return sanitizeMetric(fmt.Sprintf("BPT_%s_KOPS", r.Label)), r.KOPS
				}
				return "", 0
			})
		}
	}
}

// BenchmarkFig13Mixes regenerates Figure 13 (read/write mixes per
// structure and configuration).
func BenchmarkFig13Mixes(b *testing.B) {
	sc := bench.QuickScale()
	sc.Ops = 400
	sc.Seed = 1500
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig13Mixes(sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, rows, func(r bench.Row) (string, float64) {
				if r.Series == "BST/RC" || r.Series == "Queue/RCB" {
					return sanitizeMetric(fmt.Sprintf("%s_w%.0f_KOPS", r.Series, r.X)), r.KOPS
				}
				return "", 0
			})
		}
	}
}
