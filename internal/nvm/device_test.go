package nvm

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReadWriteRoundTrip(t *testing.T) {
	d := NewDevice(1024)
	data := []byte("hello, persistent world")
	if err := d.WriteAt(100, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if err := d.ReadAt(100, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatalf("read back %q, want %q", buf, data)
	}
}

func TestOutOfRange(t *testing.T) {
	d := NewDevice(64)
	if err := d.WriteAt(60, make([]byte, 8)); err == nil {
		t.Fatal("write past end must fail")
	}
	if err := d.ReadAt(65, make([]byte, 1)); err == nil {
		t.Fatal("read past end must fail")
	}
	if err := d.WriteAt(0, make([]byte, 64)); err != nil {
		t.Fatalf("exact-fit write failed: %v", err)
	}
}

func TestCrashRevertsUnpersisted(t *testing.T) {
	d := NewDevice(256)
	if err := d.WritePersist(0, []byte("durable!")); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteAt(0, []byte("volatile")); err != nil {
		t.Fatal(err)
	}
	if d.PendingWrites() != 1 {
		t.Fatalf("pending = %d, want 1", d.PendingWrites())
	}
	d.Crash(nil) // lose the whole window
	buf := make([]byte, 8)
	_ = d.ReadAt(0, buf)
	if string(buf) != "durable!" {
		t.Fatalf("after crash read %q, want the durable image", buf)
	}
	if d.Crashes() != 1 {
		t.Fatal("crash counter not bumped")
	}
}

func TestPersistAllSurvivesCrash(t *testing.T) {
	d := NewDevice(256)
	_ = d.WriteAt(10, []byte{1, 2, 3})
	d.PersistAll()
	d.Crash(nil)
	buf := make([]byte, 3)
	_ = d.ReadAt(10, buf)
	if !bytes.Equal(buf, []byte{1, 2, 3}) {
		t.Fatalf("persisted bytes lost: %v", buf)
	}
}

func TestCrashTearIsLineAligned(t *testing.T) {
	d := NewDevice(1024)
	// A 4-line write, never persisted; crash many times and check the
	// surviving prefix is always a whole number of lines.
	fresh := bytes.Repeat([]byte{0xAB}, 4*LineSize)
	for seed := int64(0); seed < 50; seed++ {
		_ = d.Restore(make([]byte, 1024))
		_ = d.WriteAt(0, fresh)
		d.Crash(rand.New(rand.NewSource(seed)))
		buf := make([]byte, 4*LineSize)
		_ = d.ReadAt(0, buf)
		// Find the boundary between surviving new bytes and old zeros.
		i := 0
		for i < len(buf) && buf[i] == 0xAB {
			i++
		}
		for j := i; j < len(buf); j++ {
			if buf[j] != 0 {
				t.Fatalf("seed %d: non-contiguous tear at %d", seed, j)
			}
		}
		if i%LineSize != 0 {
			t.Fatalf("seed %d: tear at %d not line aligned", seed, i)
		}
	}
}

func TestCrashOverlappingWritesUnwind(t *testing.T) {
	d := NewDevice(128)
	_ = d.WritePersist(0, []byte("AAAA"))
	_ = d.WriteAt(0, []byte("BBBB"))
	_ = d.WriteAt(2, []byte("CC"))
	d.Crash(nil)
	buf := make([]byte, 4)
	_ = d.ReadAt(0, buf)
	if string(buf) != "AAAA" {
		t.Fatalf("overlapping unwind got %q, want AAAA", buf)
	}
}

func TestAtomicsSurviveCrash(t *testing.T) {
	d := NewDevice(128)
	_ = d.WriteAt(0, make([]byte, 16)) // volatile write covering the word
	if _, swapped, err := d.CompareAndSwap64(8, 0, 42); err != nil || !swapped {
		t.Fatalf("CAS failed: %v %v", swapped, err)
	}
	d.Crash(nil)
	v, _ := d.Load64(8)
	if v != 42 {
		t.Fatalf("atomic lost on crash: %d", v)
	}
}

func TestCAS(t *testing.T) {
	d := NewDevice(64)
	_ = d.Store64(0, 7)
	if old, ok, _ := d.CompareAndSwap64(0, 6, 9); ok || old != 7 {
		t.Fatalf("CAS with wrong expectation: ok=%v old=%d", ok, old)
	}
	if _, ok, _ := d.CompareAndSwap64(0, 7, 9); !ok {
		t.Fatal("CAS with right expectation must succeed")
	}
	v, _ := d.Load64(0)
	if v != 9 {
		t.Fatalf("after CAS v=%d, want 9", v)
	}
}

func TestFetchAdd(t *testing.T) {
	d := NewDevice(64)
	for i := uint64(0); i < 10; i++ {
		prev, err := d.FetchAdd64(16, 3)
		if err != nil {
			t.Fatal(err)
		}
		if prev != i*3 {
			t.Fatalf("FetchAdd prev = %d, want %d", prev, i*3)
		}
	}
}

func TestSnapshotRestore(t *testing.T) {
	d := NewDevice(128)
	_ = d.WritePersist(0, []byte("state-one"))
	img := d.Snapshot()
	_ = d.WritePersist(0, []byte("state-two"))
	if err := d.Restore(img); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 9)
	_ = d.ReadAt(0, buf)
	if string(buf) != "state-one" {
		t.Fatalf("restore got %q", buf)
	}
	if err := d.Restore(make([]byte, 5)); err == nil {
		t.Fatal("restore with wrong size must fail")
	}
}

// Property: any interleaving of writes and persists, followed by a crash,
// leaves every persisted write intact.
func TestQuickPersistedWritesSurvive(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		d := NewDevice(4096)
		shadow := make([]byte, 4096) // durable view
		rng := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			off := uint64(op) % 4000
			n := 1 + int(op%96)
			val := byte(op)
			data := bytes.Repeat([]byte{val}, n)
			if op%5 == 0 {
				_ = d.WritePersist(off, data)
				copy(shadow[off:], data)
			} else {
				_ = d.WriteAt(off, data)
				if op%3 == 0 {
					d.PersistAll()
					// everything so far is durable: sync the shadow
					shadow = d.Snapshot()
				}
			}
		}
		d.Crash(rng)
		got := d.Snapshot()
		// Every byte that the shadow knows as durable must either match
		// the shadow or have been overwritten by a *later* write that
		// survived the crash. Distinguishing the two in general needs
		// write history, so check the strong property on a fresh region:
		// bytes never touched after their persist point must match.
		// Here we only assert lengths agree and no panic occurred, plus
		// spot-check: a second crash changes nothing further.
		before := got
		d.Crash(rng)
		after := d.Snapshot()
		return bytes.Equal(before, after)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
