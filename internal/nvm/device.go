// Package nvm simulates a byte-addressable non-volatile memory device of
// the kind AsymNVM attaches to its back-end nodes (the paper used Intel
// Optane DC Persistent Memory in App Direct mode).
//
// The simulation keeps the two properties the paper's crash-consistency
// design actually depends on:
//
//   - byte-addressable random access, with media latency charged by the
//     caller (the RDMA layer or a local accessor), and
//   - a persistence window: bytes written but not yet flushed live in a
//     volatile window and may be lost — possibly partially, at a 64-byte
//     line granularity — when power fails. This is what forces the
//     framework to checksum transaction logs and validate them on restart.
package nvm

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// LineSize is the granularity at which a power failure can tear a write.
// Optane persists data in units no smaller than a cache line.
const LineSize = 64

// ErrOutOfRange is returned for accesses beyond the device capacity.
var ErrOutOfRange = errors.New("nvm: access out of range")

// pending records the undo image of one not-yet-persisted write.
type pending struct {
	off uint64
	old []byte // previous contents, for revert on power failure
}

// Device is a simulated NVM DIMM: a flat byte space with explicit
// persistence points and power-failure injection.
//
// Writes become visible immediately (reads see them) but stay revertible
// until Persist or PersistAll is called; Crash reverts a random suffix of
// the unpersisted writes and may tear the oldest surviving one at a line
// boundary. All methods are safe for concurrent use.
type Device struct {
	mu      sync.RWMutex
	data    []byte
	pend    []pending
	crashes int
}

// NewDevice creates a device with the given capacity in bytes, zero-filled.
func NewDevice(size int) *Device {
	return &Device{data: make([]byte, size)}
}

// Size reports the device capacity in bytes.
func (d *Device) Size() uint64 { return uint64(len(d.data)) }

// check validates an access range.
func (d *Device) check(off uint64, n int) error {
	if n < 0 || off > uint64(len(d.data)) || uint64(n) > uint64(len(d.data))-off {
		return fmt.Errorf("%w: off=%d len=%d cap=%d", ErrOutOfRange, off, n, len(d.data))
	}
	return nil
}

// ReadAt copies len(buf) bytes starting at off into buf. It always returns
// the most recent write, persisted or not (NVM is memory: loads see stores).
func (d *Device) ReadAt(off uint64, buf []byte) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.check(off, len(buf)); err != nil {
		return err
	}
	copy(buf, d.data[off:])
	return nil
}

// WriteAt stores data at off. The write is immediately visible but not yet
// durable; it joins the persistence window until Persist/PersistAll.
func (d *Device) WriteAt(off uint64, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.writeLocked(off, data)
}

func (d *Device) writeLocked(off uint64, data []byte) error {
	if err := d.check(off, len(data)); err != nil {
		return err
	}
	old := make([]byte, len(data))
	copy(old, d.data[off:])
	d.pend = append(d.pend, pending{off: off, old: old})
	copy(d.data[off:], data)
	return nil
}

// WritePersist stores data and makes exactly that range durable. It models
// a one-sided RDMA write whose acknowledgement implies the data reached the
// persistence domain, and local writes followed by a ranged flush. Unrelated
// writes elsewhere in the volatile window stay revertible — durability is a
// property of the acknowledged range, not of the whole device.
func (d *Device) WritePersist(off uint64, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.check(off, len(data)); err != nil {
		return err
	}
	copy(d.data[off:], data)
	d.sealRange(off, len(data))
	return nil
}

// PersistAll drains the persistence window: every prior write becomes
// durable and can no longer be lost by Crash.
func (d *Device) PersistAll() {
	d.mu.Lock()
	d.pend = d.pend[:0]
	d.mu.Unlock()
}

// PendingWrites reports how many writes are still in the volatile window.
func (d *Device) PendingWrites() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.pend)
}

// VolatileBytes reports how many bytes of [off, off+n) are covered by the
// volatile persistence window — visible to reads but still revertible by a
// power failure. Overlapping pending writes are counted once. Tests use it
// to distinguish a truncated (unacknowledged) RDMA write, which must stay
// volatile, from an acknowledged one, which must not.
func (d *Device) VolatileBytes(off uint64, n int) int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if n <= 0 {
		return 0
	}
	covered := make([]bool, n)
	total := 0
	for _, p := range d.pend {
		lo, hi := p.off, p.off+uint64(len(p.old))
		if hi <= off || lo >= off+uint64(n) {
			continue
		}
		if lo < off {
			lo = off
		}
		if hi > off+uint64(n) {
			hi = off + uint64(n)
		}
		for i := lo - off; i < hi-off; i++ {
			if !covered[i] {
				covered[i] = true
				total++
			}
		}
	}
	return total
}

// Crashes reports how many power failures the device has absorbed.
func (d *Device) Crashes() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.crashes
}

// Crash simulates a power failure. A random suffix of the unpersisted
// writes is lost (reverted, newest first), and the oldest lost write may
// be torn: a prefix of its lines survives. rng drives the randomness so
// tests can be deterministic; a nil rng loses the entire window untorn.
// It returns the number of writes fully or partially lost.
func (d *Device) Crash(rng *rand.Rand) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.crashes++
	n := len(d.pend)
	if n == 0 {
		return 0
	}
	lose := n
	tear := false
	if rng != nil {
		lose = 1 + rng.Intn(n) // lose at least the newest write
		tear = rng.Intn(2) == 0
	}
	// Revert newest-first so overlapping writes unwind correctly.
	for i := n - 1; i >= n-lose; i-- {
		p := d.pend[i]
		if tear && i == n-lose && len(p.old) > LineSize {
			// Tear: a prefix of whole lines of the new data survives.
			keep := (rng.Intn(len(p.old)/LineSize + 1)) * LineSize
			copy(d.data[p.off+uint64(keep):], p.old[keep:])
			continue
		}
		copy(d.data[p.off:], p.old)
	}
	d.pend = d.pend[:0]
	return lose
}

// Snapshot returns a copy of the full device contents (persisted view is
// not distinguished; callers wanting the durable image should PersistAll
// or Crash first).
func (d *Device) Snapshot() []byte {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]byte, len(d.data))
	copy(out, d.data)
	return out
}

// Restore overwrites the device contents with img (which must match the
// capacity) and clears the persistence window.
func (d *Device) Restore(img []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(img) != len(d.data) {
		return fmt.Errorf("nvm: restore size %d != capacity %d", len(img), len(d.data))
	}
	copy(d.data, img)
	d.pend = d.pend[:0]
	return nil
}

// sealRange makes the current contents of [off, off+n) immune to Crash by
// rewriting the overlapping parts of every pending undo image. Atomic verbs
// use it: they are durable on return even though earlier plain writes to
// the same lines are still volatile.
func (d *Device) sealRange(off uint64, n int) {
	end := off + uint64(n)
	for i := range d.pend {
		p := &d.pend[i]
		pEnd := p.off + uint64(len(p.old))
		if p.off >= end || pEnd <= off {
			continue
		}
		lo := max64(p.off, off)
		hi := min64(pEnd, end)
		copy(p.old[lo-p.off:hi-p.off], d.data[lo:hi])
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// CompareAndSwap64 atomically (under the device lock) compares the 8 bytes
// at off, interpreted little-endian, with old and writes new if they match.
// The result is durable immediately, modelling an RDMA atomic that is
// acknowledged from the persistence domain. It returns the previous value
// and whether the swap happened.
func (d *Device) CompareAndSwap64(off uint64, old, new uint64) (uint64, bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.check(off, 8); err != nil {
		return 0, false, err
	}
	cur := le64(d.data[off:])
	if cur != old {
		return cur, false, nil
	}
	putLE64(d.data[off:], new)
	d.sealRange(off, 8)
	return cur, true, nil
}

// FetchAdd64 atomically adds delta to the 8 bytes at off and returns the
// previous value. Durable immediately.
func (d *Device) FetchAdd64(off uint64, delta uint64) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.check(off, 8); err != nil {
		return 0, err
	}
	cur := le64(d.data[off:])
	putLE64(d.data[off:], cur+delta)
	d.sealRange(off, 8)
	return cur, nil
}

// Load64 atomically reads the 8 bytes at off as a little-endian uint64.
func (d *Device) Load64(off uint64) (uint64, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.check(off, 8); err != nil {
		return 0, err
	}
	return le64(d.data[off:]), nil
}

// Store64 atomically writes v at off, durable immediately.
func (d *Device) Store64(off uint64, v uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.check(off, 8); err != nil {
		return err
	}
	putLE64(d.data[off:], v)
	d.sealRange(off, 8)
	return nil
}

func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLE64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
