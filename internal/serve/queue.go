package serve

import (
	"sync"
	"time"
)

// Item is one admitted request waiting for the executor.
type Item struct {
	Req        Request
	Read       bool          // cheap read: gets the priority band
	ArrivedAt  time.Duration // virtual instant of admission
	DeadlineAt time.Duration // virtual deadline (0 = none)

	// Reply delivers the response toward the client. Nil in the
	// simulator, which does its own bookkeeping.
	Reply func(Response)
}

// RunQueue is the bounded two-band run queue between admission and the
// executor. Reads live in the priority band (they are cheap and finish
// fast, so serving them first raises goodput under pressure). When
// occupancy climbs past the LIFO watermark the queue flips to
// last-in-first-out within each band: under overload the freshest
// requests are the ones whose deadlines are still worth serving, while
// FIFO would burn the pipeline draining requests that already expired —
// the adaptive-LIFO trick. Safe for concurrent use.
type RunQueue struct {
	mu     sync.Mutex
	reads  []*Item
	writes []*Item
	cap    int
	lifoAt int // occupancy threshold where LIFO kicks in
}

// NewRunQueue builds a queue holding at most capacity items, flipping
// to LIFO when occupancy exceeds lifoFrac of capacity.
func NewRunQueue(capacity int, lifoFrac float64) *RunQueue {
	if capacity <= 0 {
		capacity = 256
	}
	if lifoFrac <= 0 || lifoFrac > 1 {
		lifoFrac = 0.5
	}
	return &RunQueue{cap: capacity, lifoAt: int(float64(capacity) * lifoFrac)}
}

// Push enqueues an item; false means the queue is full (caller sheds).
func (q *RunQueue) Push(it *Item) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := len(q.reads) + len(q.writes)
	if n >= q.cap {
		return false
	}
	band := &q.writes
	if it.Read {
		band = &q.reads
	}
	if n >= q.lifoAt {
		// LIFO under overload: newest first.
		*band = append(*band, nil)
		copy((*band)[1:], *band)
		(*band)[0] = it
	} else {
		*band = append(*band, it)
	}
	return true
}

// Pop dequeues the next item (reads first), or nil when empty.
func (q *RunQueue) Pop() *Item {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.reads) > 0 {
		it := q.reads[0]
		q.reads = q.reads[1:]
		return it
	}
	if len(q.writes) > 0 {
		it := q.writes[0]
		q.writes = q.writes[1:]
		return it
	}
	return nil
}

// Len reports current occupancy.
func (q *RunQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.reads) + len(q.writes)
}

// Cap reports the queue bound.
func (q *RunQueue) Cap() int { return q.cap }
