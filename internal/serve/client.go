package serve

import (
	"bufio"
	"fmt"
	"net"
	"time"
)

// Client is a synchronous protocol client: one request in flight at a
// time per client (spin up several clients for concurrency). Not safe
// for concurrent use.
type Client struct {
	nc     net.Conn
	r      *bufio.Reader
	w      *bufio.Writer
	tenant uint16
	nextID uint64
	wbuf   []byte // reused framed-request scratch (client is single-flight)
	rbuf   []byte // reused response payload scratch
}

// Dial connects a client for the given tenant.
func Dial(addr string, tenant uint16) (*Client, error) {
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return &Client{nc: nc, r: bufio.NewReader(nc), w: bufio.NewWriter(nc), tenant: tenant}, nil
}

// Close severs the connection.
func (c *Client) Close() error { return c.nc.Close() }

// Do sends one request and waits for its response. The request's
// Tenant and ID fields are filled in by the client.
func (c *Client) Do(req Request) (Response, error) {
	c.nextID++
	req.Tenant = c.tenant
	req.ID = c.nextID
	wbuf, err := req.AppendFramed(c.wbuf[:0])
	if err != nil {
		return Response{}, err
	}
	c.wbuf = wbuf[:0]
	if _, err := c.w.Write(wbuf); err != nil {
		return Response{}, err
	}
	if err := c.w.Flush(); err != nil {
		return Response{}, err
	}
	payload, err := ReadFrameInto(c.r, c.rbuf)
	if err != nil {
		return Response{}, err
	}
	if cap(payload) > cap(c.rbuf) {
		c.rbuf = payload[:0]
	}
	resp, err := DecodeResponse(payload)
	if err != nil {
		return Response{}, err
	}
	if resp.ID != req.ID && resp.Status == StatusOK {
		return Response{}, fmt.Errorf("serve: response id %d for request %d", resp.ID, req.ID)
	}
	return resp, nil
}

// DoRetryMoved sends one request, transparently retrying while the
// server reports StatusMoved — the window where a partition's new home
// is already durable but the serving front-end has not yet run the
// routed operation that refreshes its mapping table. Each retry waits
// the server's RetryAfterNS hint. Any other status (including Overload
// and Breaker, which carry admission semantics the caller may want to
// handle differently) is returned as-is.
func (c *Client) DoRetryMoved(req Request, attempts int) (Response, error) {
	for {
		resp, err := c.Do(req)
		if err != nil || resp.Status != StatusMoved {
			return resp, err
		}
		attempts--
		if attempts <= 0 {
			return resp, nil
		}
		time.Sleep(time.Duration(resp.RetryAfterNS))
	}
}

// Get fetches one key.
func (c *Client) Get(key uint64, budget time.Duration) (Response, error) {
	return c.Do(Request{Op: OpGet, Key: key, BudgetNS: uint64(budget)})
}

// GetStale fetches one key, allowing the server to serve it from a
// mirror replica at most staleEpochs applied transactions behind the
// primary (0 behaves like Get: primary only).
func (c *Client) GetStale(key uint64, staleEpochs uint32, budget time.Duration) (Response, error) {
	return c.Do(Request{Op: OpGet, Key: key, StaleBudget: staleEpochs, BudgetNS: uint64(budget)})
}

// Put stores one key.
func (c *Client) Put(key uint64, val []byte, budget time.Duration) (Response, error) {
	return c.Do(Request{Op: OpPut, Key: key, Val: val, BudgetNS: uint64(budget)})
}

// Tx runs one smallbank transaction with selector r.
func (c *Client) Tx(r uint64, budget time.Duration) (Response, error) {
	return c.Do(Request{Op: OpTx, TxR: r, BudgetNS: uint64(budget)})
}

// Drain flushes the server's structures and waits for replay.
func (c *Client) Drain() (Response, error) { return c.Do(Request{Op: OpDrain}) }

// Ping checks liveness, bypassing admission and the run queue.
func (c *Client) Ping() (Response, error) { return c.Do(Request{Op: OpPing}) }
