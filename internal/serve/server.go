package serve

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"asymnvm/internal/arena"
	"asymnvm/internal/core"
	"asymnvm/internal/ds"
	"asymnvm/internal/ring"
	"asymnvm/internal/trace"
	"asymnvm/internal/txapp"
)

// Backends are the structures the server operates. The front-end and
// both structures are owned by the server's executor goroutine from
// Start onward (SWMR discipline: exactly one operating goroutine), so
// callers must not touch them until Close returns.
type Backends struct {
	FE   *core.Frontend
	KV   *ds.HashTable    // get/put/getmulti/putmulti target
	Bank *txapp.SmallBank // tx target (nil disables OpTx)

	// MirrorKV, when non-nil, is a reader instance of the same structure
	// opened over an NVM mirror replica (cluster.NewMirrorFrontend). A
	// Get/GetMulti whose StaleBudget covers the mirror's current lag is
	// served from it instead of the primary; writes, transactions, and
	// zero-budget reads always go to the primary. The executor goroutine
	// owns it like the other backends.
	MirrorKV *ds.HashTable
}

// Options tunes the serving plane.
type Options struct {
	Admission AdmissionConfig
	QueueCap  int
	LIFOFrac  float64 // run-queue occupancy fraction where LIFO starts

	// SlowWrite bounds (host time) one response write to a client. A
	// client that cannot drain its socket within it — or whose outbound
	// buffer overflows — is dropped, so one slow reader never stalls the
	// executor or other tenants.
	SlowWrite   time.Duration
	OutboundCap int // per-connection response buffer (frames)
}

// DefaultOptions returns a serving configuration sized for tests and
// the chaos soak: generous quotas, a modest queue, fast slow-client
// cutoff.
func DefaultOptions() Options {
	return Options{
		QueueCap:    256,
		LIFOFrac:    0.5,
		SlowWrite:   2 * time.Second,
		OutboundCap: 64,
	}
}

// CapacityFromAutoTune derives the global concurrency capacity from the
// front-end's autotune depth gauge: the deeper the pipeline the fabric
// currently sustains, the more concurrent requests admission lets in.
func CapacityFromAutoTune(fe *core.Frontend, perDepth int) func() int {
	if perDepth <= 0 {
		perDepth = 8
	}
	return func() int {
		d := int(fe.Stats().AutoTuneDepth.Load())
		if d <= 0 {
			return DefaultCapacity
		}
		return d * perDepth
	}
}

// Server is the networked front-end service.
type Server struct {
	opts Options
	b    Backends
	adm  *Admission
	q    *RunQueue

	ln     net.Listener
	wake   *ring.Doorbell
	frames arena.Pool // outbound wire frames, recycled across connections
	done   chan struct{}
	wg     sync.WaitGroup
	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// New assembles a server over the given backends. When no CapacityFn is
// configured, capacity follows the front-end's autotune depth.
func New(b Backends, opts Options) *Server {
	if opts.QueueCap <= 0 {
		opts.QueueCap = 256
	}
	if opts.OutboundCap <= 0 {
		opts.OutboundCap = 64
	}
	if opts.SlowWrite <= 0 {
		opts.SlowWrite = 2 * time.Second
	}
	if opts.Admission.CapacityFn == nil {
		opts.Admission.CapacityFn = CapacityFromAutoTune(b.FE, 8)
	}
	return &Server{
		opts:  opts,
		b:     b,
		adm:   NewAdmission(opts.Admission),
		q:     NewRunQueue(opts.QueueCap, opts.LIFOFrac),
		wake:  ring.NewDoorbell(),
		done:  make(chan struct{}),
		conns: make(map[net.Conn]struct{}),
	}
}

// Admission exposes the admission plane (the simulator and tests reuse
// it directly).
func (s *Server) Admission() *Admission { return s.adm }

// Start listens on addr (use "127.0.0.1:0" for an ephemeral port) and
// begins serving. The executor goroutine takes ownership of the
// backends here.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.wg.Add(2)
	go s.acceptLoop()
	go s.executor()
	return nil
}

// Addr reports the bound listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting, severs every connection, and stops the
// executor. After Close returns the backends are the caller's again.
func (s *Server) Close() {
	s.connMu.Lock()
	if s.closed {
		s.connMu.Unlock()
		return
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
	if s.ln != nil {
		s.ln.Close()
	}
	close(s.done)
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.connMu.Lock()
		if s.closed {
			s.connMu.Unlock()
			nc.Close()
			return
		}
		s.conns[nc] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go s.handleConn(nc)
	}
}

func (s *Server) dropConn(nc net.Conn) {
	s.connMu.Lock()
	delete(s.conns, nc)
	s.connMu.Unlock()
	nc.Close()
}

// handleConn runs one connection: a reader loop in this goroutine and a
// bounded writer goroutine. Responses (from admission rejections here
// and from the executor) are encoded straight into pooled pre-framed
// buffers and funnel through a lock-free MPSC ring; a full ring or a
// write running past SlowWrite marks the client slow and drops it — the
// executor never blocks on a socket. The ring's close semantics make
// the teardown race benign: a reply racing the reader's exit just fails
// its Push and recycles the frame, so no mutex guards the hot path.
func (s *Server) handleConn(nc net.Conn) {
	defer s.wg.Done()
	out := ring.NewMPSC[[]byte](s.opts.OutboundCap)
	bell := ring.NewDoorbell()
	var once sync.Once
	drop := func(slow bool) {
		once.Do(func() {
			if slow {
				s.b.FE.Stats().ServeSlowDrop.Add(1)
			}
			s.dropConn(nc)
		})
	}
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		for {
			buf, ok := out.Pop()
			if !ok {
				if out.Closed() {
					if buf, ok = out.Pop(); !ok { // final drain: Push may race Close
						return
					}
				} else {
					// No abort channel: the reader always closes the ring and
					// rings the bell on its way out, including server Close
					// (which severs the conn under the reader first).
					if !bell.Poll() {
						bell.Park(nil, nil)
					}
					continue
				}
			}
			nc.SetWriteDeadline(time.Now().Add(s.opts.SlowWrite))
			_, err := nc.Write(buf) // frame prefix + payload in one write
			s.frames.Put(buf)
			if err != nil {
				slow := false
				var nerr net.Error
				if errors.As(err, &nerr) && nerr.Timeout() {
					slow = true
				}
				drop(slow)
				// Keep draining (and recycling) until the reader closes the
				// ring, so late replies from queued items are still consumed.
			}
		}
	}()
	reply := func(r Response) {
		buf, err := r.AppendFramed(s.frames.Get(4 + r.EncodedLen()))
		if err != nil {
			s.frames.Put(buf)
			drop(false)
			return
		}
		if !out.Push(buf) {
			// Ring full (client not draining) or connection torn down.
			s.frames.Put(buf)
			drop(true)
			return
		}
		bell.Ring()
	}
	var rbuf []byte
	var req Request
	for {
		payload, err := ReadFrameInto(nc, rbuf)
		if err != nil {
			break
		}
		if cap(payload) > cap(rbuf) {
			rbuf = payload[:0]
		}
		// DecodeRequestInto detaches all value bytes from payload, so the
		// read buffer is safe to reuse even though items are queued.
		if err := DecodeRequestInto(&req, payload, nil); err != nil {
			reply(Response{Status: StatusBadRequest})
			continue
		}
		s.route(req, reply)
		req = Request{} // queued item owns the decoded slices now
	}
	drop(false)
	out.Close()
	bell.Ring() // wake the writer so it observes the close
	wwg.Wait()
	// Recycle whatever the writer left behind (it exits on the first
	// empty+closed observation; a straggling reply may still have pushed).
	for {
		buf, ok := out.Pop()
		if !ok {
			break
		}
		s.frames.Put(buf)
	}
}

// route admits one request. Time is the writer's virtual clock: queue
// deadlines are measured in the same units the core charges latency to,
// so a request behind an expensive queue prefix sees that cost against
// its budget.
func (s *Server) route(req Request, reply func(Response)) {
	st := s.b.FE.Stats()
	if req.Op == OpPing {
		reply(Response{Status: StatusOK, ID: req.ID})
		return
	}
	now := s.b.FE.Clock().Now()
	dec := s.adm.Admit(req.Tenant, now)
	if !dec.Admit {
		if dec.Status == StatusBreaker {
			st.ServeBreaker.Add(1)
		} else {
			st.ServeRejected.Add(1)
		}
		reply(Response{Status: dec.Status, ID: req.ID, RetryAfterNS: dec.RetryAfterNS})
		return
	}
	it := &Item{
		Req:       req,
		Read:      req.Op == OpGet || req.Op == OpGetMulti,
		ArrivedAt: now,
		Reply:     reply,
	}
	if req.BudgetNS > 0 {
		it.DeadlineAt = now + time.Duration(req.BudgetNS)
	}
	if !s.q.Push(it) {
		s.adm.Done()
		st.ServeRejected.Add(1)
		reply(Response{Status: StatusOverload, ID: req.ID, RetryAfterNS: s.adm.retryAfter(s.opts.Admission.RetryAfterMin)})
		return
	}
	st.ServeAccepted.Add(1)
	s.wake.Ring()
}

// executor is the single goroutine operating the writer front-end and
// its structures. It polls the doorbell between queue drains and parks
// only when idle, so a loaded server never round-trips the scheduler
// between requests.
func (s *Server) executor() {
	defer s.wg.Done()
	for {
		if !s.wake.Poll() {
			if s.wake.Park(s.done, nil) == 0 {
				return
			}
		}
		select {
		case <-s.done:
			return
		default:
		}
		for {
			it := s.q.Pop()
			if it == nil {
				break
			}
			s.exec(it)
		}
	}
}

// exec runs one admitted request. Expired-in-queue requests are shed
// without touching the fabric. For reads the deadline stays armed
// through the verbs (the core retry loop short-circuits and clamps
// backoff to the remainder); writes and transactions check the budget
// before starting but then run to completion unarmed — aborting a
// half-applied mutation would tear the structure's session state, so
// the deadline decides whether work starts, not whether it finishes.
func (s *Server) exec(it *Item) {
	fe, st := s.b.FE, s.b.FE.Stats()
	defer s.adm.Done()
	now := fe.Clock().Now()
	if it.DeadlineAt > 0 && now >= it.DeadlineAt {
		st.ServeExpired.Add(1)
		it.Reply(Response{Status: StatusDeadline, ID: it.Req.ID})
		return
	}
	if it.DeadlineAt > 0 && it.Read {
		fe.SetDeadline(it.DeadlineAt)
		defer fe.ClearDeadline()
	}
	resp := s.execOp(it.Req)
	resp.ID = it.Req.ID
	it.Reply(resp)
}

// mirrorSource decides whether a read with the given staleness budget
// may be served from the mirror replica: the mirror's lag for the
// structure's slot — half the seqlock SN gap, i.e. applied transactions
// behind the primary — must not exceed the budget. The lag is probed at
// serve time, so a served read never observes an epoch older than the
// budget the client declared.
func (s *Server) mirrorSource(staleBudget uint32) (*ds.HashTable, uint64, bool) {
	if s.b.MirrorKV == nil || staleBudget == 0 {
		return nil, 0, false
	}
	slot := s.b.KV.Handle().Slot()
	psn, err := s.b.KV.Handle().Conn().SlotSN(slot)
	if err != nil {
		return nil, 0, false
	}
	msn, err := s.b.MirrorKV.Handle().Conn().SlotSN(slot)
	if err != nil {
		return nil, 0, false
	}
	var lag uint64
	if psn > msn {
		lag = (psn - msn) / 2
	}
	if lag > uint64(staleBudget) {
		return nil, 0, false
	}
	return s.b.MirrorKV, lag, true
}

// countMirrorRead records one mirror-served read on the primary
// front-end's ledgers (the mirror front-end has its own clock).
func (s *Server) countMirrorRead(lag uint64) {
	st := s.b.FE.Stats()
	st.MirrorReads.Add(1)
	st.MirrorStaleEpochs.Add(int64(lag))
	s.b.FE.Tracer().Event(trace.KindMirrorRead, lag)
}

func (s *Server) execOp(req Request) Response {
	switch req.Op {
	case OpGet:
		if kv, lag, ok := s.mirrorSource(req.StaleBudget); ok {
			if v, found, err := kv.Get(req.Key); err == nil {
				s.countMirrorRead(lag)
				return Response{Status: StatusOK, Found: found, Val: v}
			}
			// A failed mirror read falls back to the primary below.
		}
		v, ok, err := s.b.KV.Get(req.Key)
		if err != nil {
			return errResponse(err)
		}
		return Response{Status: StatusOK, Found: ok, Val: v}
	case OpPut:
		if err := s.b.KV.Put(req.Key, req.Val); err != nil {
			return errResponse(err)
		}
		return Response{Status: StatusOK}
	case OpGetMulti:
		if kv, lag, ok := s.mirrorSource(req.StaleBudget); ok {
			if vals, founds, err := kv.GetMulti(req.Keys); err == nil {
				s.countMirrorRead(lag)
				return Response{Status: StatusOK, Founds: founds, Vals: vals}
			}
		}
		vals, founds, err := s.b.KV.GetMulti(req.Keys)
		if err != nil {
			return errResponse(err)
		}
		return Response{Status: StatusOK, Founds: founds, Vals: vals}
	case OpPutMulti:
		for i, k := range req.Keys {
			if err := s.b.KV.Put(k, req.Vals[i]); err != nil {
				return errResponse(err)
			}
		}
		return Response{Status: StatusOK}
	case OpTx:
		if s.b.Bank == nil {
			return Response{Status: StatusBadRequest}
		}
		if err := s.b.Bank.DoTx(req.TxR); err != nil {
			return errResponse(err)
		}
		return Response{Status: StatusOK}
	case OpDrain:
		if s.b.Bank != nil {
			if err := s.b.Bank.Table().Drain(); err != nil {
				return errResponse(err)
			}
		}
		if err := s.b.KV.Flush(); err != nil {
			return errResponse(err)
		}
		if err := s.b.KV.Drain(); err != nil {
			return errResponse(err)
		}
		return Response{Status: StatusOK}
	default:
		return Response{Status: StatusBadRequest}
	}
}

// movedRetryNS is the retry hint attached to StatusMoved. A moved
// partition resolves on the server's next routed operation (the epoch
// fence re-reads the mapping table and re-opens the children), so the
// client only needs to outwait that one refresh, not a migration.
const movedRetryNS = 200_000

func errResponse(err error) Response {
	if errors.Is(err, core.ErrDeadlineExceeded) {
		return Response{Status: StatusDeadline}
	}
	if errors.Is(err, core.ErrMoved) {
		return Response{Status: StatusMoved, RetryAfterNS: movedRetryNS}
	}
	return Response{Status: StatusError, Val: []byte(fmt.Sprintf("%v", err))}
}
