package serve

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"asymnvm/internal/clock"
	"asymnvm/internal/cluster"
	"asymnvm/internal/core"
	"asymnvm/internal/ds"
	"asymnvm/internal/fault"
	"asymnvm/internal/txapp"
	"asymnvm/internal/workload"
)

func dsOpts() ds.Options {
	return ds.Options{
		Buckets: 1 << 10,
		Create:  core.CreateOptions{MemLogSize: 32 << 20, OpLogSize: 8 << 20},
	}
}

// rig is one cluster with a writer front-end and both served structures.
type rig struct {
	clu  *cluster.Cluster
	fe   *core.Frontend
	kv   *ds.HashTable
	bank *txapp.SmallBank
}

func newRig(t *testing.T) *rig { return newRigValueCap(t, 0) }

func newRigValueCap(t *testing.T, valueCap int) *rig {
	t.Helper()
	cfg := cluster.DefaultConfig()
	cfg.DeviceBytes = 128 << 20
	clu, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(clu.Stop)
	fe, conns, err := clu.NewFrontend(1, core.Mode{OpLog: true, Batch: 4, Pipeline: 8})
	if err != nil {
		t.Fatal(err)
	}
	kvOpts := dsOpts()
	kvOpts.ValueCap = valueCap
	kv, err := ds.CreateHashTable(conns[0], "serve-kv", kvOpts)
	if err != nil {
		t.Fatal(err)
	}
	bank, err := txapp.NewSmallBank(conns[0], "serve-bank", 64, dsOpts())
	if err != nil {
		t.Fatal(err)
	}
	return &rig{clu: clu, fe: fe, kv: kv, bank: bank}
}

func (r *rig) backends() Backends { return Backends{FE: r.fe, KV: r.kv, Bank: r.bank} }

func startServer(t *testing.T, r *rig, opts Options) *Server {
	t.Helper()
	s := New(r.backends(), opts)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func dial(t *testing.T, s *Server, tenant uint16) *Client {
	t.Helper()
	c, err := Dial(s.Addr().String(), tenant)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// ---- codec ----

func TestProtoRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpGet, ID: 7, Tenant: 3, BudgetNS: 5000, Key: 42, StaleBudget: 6},
		{Op: OpPut, ID: 8, Key: 42, Val: []byte("hello")},
		{Op: OpGetMulti, ID: 9, Keys: []uint64{1, 2, 3}},
		{Op: OpPutMulti, ID: 10, Keys: []uint64{4, 5}, Vals: [][]byte{[]byte("a"), []byte("bb")}},
		{Op: OpTx, ID: 11, TxR: 123456},
		{Op: OpDrain, ID: 12},
		{Op: OpPing, ID: 13},
	}
	for _, want := range reqs {
		buf := want.Encode()
		got, err := DecodeRequest(buf)
		if err != nil {
			t.Fatalf("op %d: decode: %v", want.Op, err)
		}
		if got.Op != want.Op || got.ID != want.ID || got.Tenant != want.Tenant ||
			got.BudgetNS != want.BudgetNS || got.StaleBudget != want.StaleBudget ||
			got.Key != want.Key || got.TxR != want.TxR {
			t.Fatalf("op %d: got %+v want %+v", want.Op, got, want)
		}
		if !bytes.Equal(got.Val, want.Val) || len(got.Keys) != len(want.Keys) || len(got.Vals) != len(want.Vals) {
			t.Fatalf("op %d: payload mismatch: %+v vs %+v", want.Op, got, want)
		}
	}
	resps := []Response{
		{Status: StatusOK, ID: 7, Found: true, Val: []byte("v")},
		{Status: StatusNotFound, ID: 8},
		{Status: StatusOverload, ID: 9, RetryAfterNS: 77},
		{Status: StatusOK, ID: 10, Founds: []bool{true, false}, Vals: [][]byte{[]byte("x"), nil}},
	}
	for _, want := range resps {
		got, err := DecodeResponse(want.Encode())
		if err != nil {
			t.Fatalf("status %d: decode: %v", want.Status, err)
		}
		if got.Status != want.Status || got.ID != want.ID || got.RetryAfterNS != want.RetryAfterNS ||
			got.Found != want.Found || !bytes.Equal(got.Val, want.Val) || len(got.Founds) != len(want.Founds) {
			t.Fatalf("status %d: got %+v want %+v", want.Status, got, want)
		}
	}
}

func TestProtoRejectsCorruption(t *testing.T) {
	buf := (&Request{Op: OpPut, Key: 1, Val: []byte("x")}).Encode()
	if _, err := DecodeRequest(buf[:3]); !errors.Is(err, ErrShort) {
		t.Fatalf("short: got %v", err)
	}
	bad := append([]byte(nil), buf...)
	bad[0] ^= 0xFF
	if _, err := DecodeRequest(bad); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("magic: got %v", err)
	}
	bad = append([]byte(nil), buf...)
	bad[len(bad)-1] ^= 0xFF
	if _, err := DecodeRequest(bad); !errors.Is(err, ErrBadCRC) {
		t.Fatalf("crc: got %v", err)
	}
}

// ---- admission ----

func TestTokenBucketAdmitsBurstThenRefills(t *testing.T) {
	a := NewAdmission(AdmissionConfig{
		DefaultQuota:  TenantQuota{Rate: 1000, Burst: 3}, // 1 token per ms
		RetryAfterMin: time.Microsecond,
	})
	now := time.Duration(0)
	for i := 0; i < 3; i++ {
		if dec := a.Admit(1, now); !dec.Admit {
			t.Fatalf("burst admit %d rejected", i)
		}
		a.Done()
	}
	dec := a.Admit(1, now)
	if dec.Admit || dec.Status != StatusOverload || dec.RetryAfterNS == 0 {
		t.Fatalf("bucket empty: got %+v", dec)
	}
	// One token refills after 1 virtual ms.
	if dec := a.Admit(1, now+2*time.Millisecond); !dec.Admit {
		t.Fatalf("refill rejected: %+v", dec)
	}
}

func TestConcurrencyLimiterTracksCapacity(t *testing.T) {
	capacity := 2
	a := NewAdmission(AdmissionConfig{CapacityFn: func() int { return capacity }})
	if !a.Admit(1, 0).Admit || !a.Admit(2, 0).Admit {
		t.Fatal("under capacity rejected")
	}
	if dec := a.Admit(3, 0); dec.Admit {
		t.Fatal("over capacity admitted")
	}
	a.Done()
	if !a.Admit(3, 0).Admit {
		t.Fatal("freed slot rejected")
	}
	capacity = 8 // capacity follows the fn (autotune moved)
	if !a.Admit(4, 0).Admit {
		t.Fatal("raised capacity rejected")
	}
}

func TestBreakerTripsAndCoolsDown(t *testing.T) {
	a := NewAdmission(AdmissionConfig{
		CapacityFn:      func() int { return 1 },
		BreakerTrip:     3,
		BreakerCooldown: time.Second,
	})
	if !a.Admit(1, 0).Admit {
		t.Fatal("first admit rejected")
	}
	// Slot held: the tenant keeps hammering and trips its breaker.
	for i := 0; i < 3; i++ {
		if dec := a.Admit(1, 0); dec.Admit || dec.Status != StatusOverload {
			t.Fatalf("hammer %d: got %+v", i, dec)
		}
	}
	dec := a.Admit(1, 0)
	if dec.Status != StatusBreaker || dec.RetryAfterNS == 0 {
		t.Fatalf("tripped: got %+v", dec)
	}
	// Other tenants are not shed by tenant 1's breaker (only by capacity).
	if dec := a.Admit(2, 0); dec.Status != StatusOverload {
		t.Fatalf("tenant 2 hit tenant 1's breaker: %+v", dec)
	}
	a.Done()
	// Cooldown over: half-open admits again.
	if dec := a.Admit(1, time.Second+time.Millisecond); !dec.Admit {
		t.Fatalf("after cooldown: got %+v", dec)
	}
}

// ---- run queue ----

func TestRunQueueReadPriorityAndLIFO(t *testing.T) {
	q := NewRunQueue(8, 0.5) // LIFO past 4 queued
	mk := func(id uint64, read bool) *Item {
		return &Item{Req: Request{ID: id}, Read: read}
	}
	// FIFO regime: writes 1,2 then reads 3,4.
	for _, it := range []*Item{mk(1, false), mk(2, false), mk(3, true), mk(4, true)} {
		if !q.Push(it) {
			t.Fatal("push failed under capacity")
		}
	}
	// Above the watermark: LIFO within each band.
	q.Push(mk(5, false))
	q.Push(mk(6, true))
	var order []uint64
	for it := q.Pop(); it != nil; it = q.Pop() {
		order = append(order, it.Req.ID)
	}
	// Reads first (6 jumped its band's front), then writes (5 in front).
	want := []uint64{6, 3, 4, 5, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("pop order %v, want %v", order, want)
		}
	}
}

func TestRunQueueBounded(t *testing.T) {
	q := NewRunQueue(2, 0.5)
	q.Push(&Item{})
	q.Push(&Item{})
	if q.Push(&Item{}) {
		t.Fatal("push past capacity succeeded")
	}
	if q.Len() != 2 {
		t.Fatalf("len = %d", q.Len())
	}
}

// ---- server end to end ----

func TestServerEndToEnd(t *testing.T) {
	r := newRig(t)
	s := startServer(t, r, DefaultOptions())
	c := dial(t, s, 1)

	if resp, err := c.Ping(); err != nil || resp.Status != StatusOK {
		t.Fatalf("ping: %v %+v", err, resp)
	}
	if resp, err := c.Put(7, []byte("seven"), 0); err != nil || resp.Status != StatusOK {
		t.Fatalf("put: %v %+v", err, resp)
	}
	resp, err := c.Get(7, 0)
	if err != nil || resp.Status != StatusOK || !resp.Found || string(resp.Val) != "seven" {
		t.Fatalf("get: %v %+v", err, resp)
	}
	if resp, err := c.Get(8, 0); err != nil || resp.Found {
		t.Fatalf("get missing: %v %+v", err, resp)
	}
	resp, err = c.Do(Request{Op: OpPutMulti, Keys: []uint64{10, 11}, Vals: [][]byte{[]byte("a"), []byte("b")}})
	if err != nil || resp.Status != StatusOK {
		t.Fatalf("putmulti: %v %+v", err, resp)
	}
	resp, err = c.Do(Request{Op: OpGetMulti, Keys: []uint64{10, 11, 12}})
	if err != nil || resp.Status != StatusOK {
		t.Fatalf("getmulti: %v %+v", err, resp)
	}
	if len(resp.Founds) != 3 || !resp.Founds[0] || !resp.Founds[1] || resp.Founds[2] ||
		string(resp.Vals[0]) != "a" || string(resp.Vals[1]) != "b" {
		t.Fatalf("getmulti payload: %+v", resp)
	}
	for i := 0; i < 20; i++ {
		if resp, err := c.Tx(uint64(i)*0x9E3779B97F4A7C15, 0); err != nil || resp.Status != StatusOK {
			t.Fatalf("tx %d: %v %+v", i, err, resp)
		}
	}
	if resp, err := c.Drain(); err != nil || resp.Status != StatusOK {
		t.Fatalf("drain: %v %+v", err, resp)
	}
	if got := r.fe.Stats().ServeAccepted.Load(); got == 0 {
		t.Fatal("ServeAccepted not counted")
	}
}

func TestServerBankStaysConserving(t *testing.T) {
	r := newRig(t)
	s := startServer(t, r, DefaultOptions())
	c := dial(t, s, 1)
	for i := 0; i < 50; i++ {
		// Conserving selectors only: Balance (5), Amalgamate (50),
		// SendPayment (90) — the mix chaos restricts itself to.
		r := uint64(i) * 2654435761
		sel := r - r%100 + []uint64{5, 50, 90}[i%3]
		if resp, err := c.Tx(sel, 0); err != nil || resp.Status != StatusOK {
			t.Fatalf("tx %d: %v %+v", i, err, resp)
		}
	}
	if resp, err := c.Drain(); err != nil || resp.Status != StatusOK {
		t.Fatalf("drain: %v %+v", err, resp)
	}
	s.Close() // backends are ours again
	total, err := r.bank.TotalMoney()
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(64 * 15000); total != want {
		t.Fatalf("money not conserved: %d != %d", total, want)
	}
}

func TestServerShedsUnderOverload(t *testing.T) {
	r := newRig(t)
	opts := DefaultOptions()
	opts.QueueCap = 4
	opts.Admission.CapacityFn = func() int { return 2 }
	opts.Admission.RetryAfterMin = time.Millisecond
	s := startServer(t, r, opts)

	var rejected, accepted int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(tenant uint16) {
			defer wg.Done()
			c, err := Dial(s.Addr().String(), tenant)
			if err != nil {
				return
			}
			defer c.Close()
			for i := 0; i < 50; i++ {
				resp, err := c.Put(uint64(tenant)*1000+uint64(i), []byte("v"), 0)
				if err != nil {
					return
				}
				mu.Lock()
				switch resp.Status {
				case StatusOK:
					accepted++
				case StatusOverload, StatusBreaker:
					rejected++
					if resp.RetryAfterNS == 0 {
						t.Error("overload rejection without retry-after")
					}
				}
				mu.Unlock()
			}
		}(uint16(g))
	}
	wg.Wait()
	if accepted == 0 {
		t.Fatal("no request survived admission")
	}
	if rejected == 0 {
		t.Fatal("no request was shed with capacity 2 and 8 hammering clients")
	}
	st := r.fe.Stats().Snapshot()
	if st.ServeRejected+st.ServeBreaker == 0 {
		t.Fatalf("shed not counted: %+v", st)
	}
	// The plane recovers: a polite client gets through afterwards.
	c := dial(t, s, 99)
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := c.Get(1, 0)
		if err != nil {
			t.Fatalf("post-overload get: %v", err)
		}
		if resp.Status == StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("plane never recovered: %+v", resp)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServerExpiresQueuedDeadline(t *testing.T) {
	r := newRig(t)
	s := New(r.backends(), DefaultOptions()) // not started: drive exec directly
	var got Response
	it := &Item{
		Req:        Request{Op: OpGet, ID: 5, Key: 1},
		Read:       true,
		DeadlineAt: 1, // already in the past once the clock moves
		Reply:      func(resp Response) { got = resp },
	}
	r.fe.Clock().Advance(time.Millisecond)
	s.adm.Admit(0, 0)
	s.exec(it)
	if got.Status != StatusDeadline || got.ID != 5 {
		t.Fatalf("expired item: %+v", got)
	}
	if r.fe.Stats().ServeExpired.Load() != 1 {
		t.Fatal("ServeExpired not counted")
	}
	if s.adm.Inflight() != 0 {
		t.Fatal("inflight slot leaked")
	}
}

func TestServerDropsSlowClient(t *testing.T) {
	r := newRigValueCap(t, 32<<10)
	opts := DefaultOptions()
	opts.OutboundCap = 1
	opts.SlowWrite = 50 * time.Millisecond
	s := startServer(t, r, opts)

	// A 32 KB value makes each response big enough to fill socket buffers.
	big := workload.Value(1, 32<<10)
	c := dial(t, s, 1)
	if resp, err := c.Put(1, big, 0); err != nil || resp.Status != StatusOK {
		t.Fatalf("put: %v %+v", err, resp)
	}

	// A raw connection that fires gets and never reads responses.
	slow, err := Dial(s.Addr().String(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	req := Request{Op: OpGet, Key: 1, Tenant: 2}
	for i := 0; i < 200; i++ {
		if err := WriteFrame(slow.w, req.Encode()); err != nil {
			break
		}
		if err := slow.w.Flush(); err != nil {
			break
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for r.fe.Stats().ServeSlowDrop.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow client never dropped")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Other tenants keep being served.
	if resp, err := c.Get(1, 0); err != nil || resp.Status != StatusOK || !resp.Found {
		t.Fatalf("well-behaved client stalled: %v %+v", err, resp)
	}
}

// ---- loadgen ----

func loadgenCfg(seed int64, rate float64) LoadgenConfig {
	return LoadgenConfig{
		Seed:     seed,
		Duration: 200 * time.Millisecond,
		Sched:    workload.ConstRate(rate),
		Keys:     1 << 10,
		WritePct: 30,
		TxPct:    10,
		Theta:    0.9,
		ValueLen: 64,
		Budget:   2 * time.Millisecond,
		Workers:  1,
		QueueCap: 128,
		LIFOFrac: 0.5,
		Admission: AdmissionConfig{
			CapacityFn:      func() int { return 160 },
			BreakerTrip:     64,
			BreakerCooldown: 5 * time.Millisecond,
			RetryAfterMin:   100 * time.Microsecond,
		},
		Tenants: 4,
	}
}

func TestLoadgenDeterministicPerSeed(t *testing.T) {
	run := func() string {
		r := newRig(t)
		res, err := Loadgen(r.fe, r.kv, r.bank, loadgenCfg(42, 50_000))
		if err != nil {
			t.Fatal(err)
		}
		return res.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("loadgen diverged per seed:\n%s\n%s", a, b)
	}
}

func TestLoadgenShedsNotCollapses(t *testing.T) {
	r := newRig(t)
	base, err := Loadgen(r.fe, r.kv, r.bank, loadgenCfg(7, 20_000))
	if err != nil {
		t.Fatal(err)
	}
	if base.Good == 0 {
		t.Fatalf("no goodput at base load: %s", base)
	}
	r2 := newRig(t)
	over, err := Loadgen(r2.fe, r2.kv, r2.bank, loadgenCfg(7, 2_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if over.Rejected == 0 {
		t.Fatalf("10x overload admitted everything: %s", over)
	}
	if over.GoodputKOPS < 0.5*base.GoodputKOPS {
		t.Fatalf("collapse under overload: base %s, over %s", base, over)
	}
}

func TestLoadgenFlashCrowdHotKeys(t *testing.T) {
	r := newRig(t)
	cfg := loadgenCfg(11, 10_000)
	cfg.Sched = workload.Flash{Base: 10_000, Peak: 1_200_000, Start: 50 * time.Millisecond, Dur: 50 * time.Millisecond}
	cfg.HotTheta = 0.99
	cfg.HotStart, cfg.HotDur = 50*time.Millisecond, 50*time.Millisecond
	res, err := Loadgen(r.fe, r.kv, r.bank, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected == 0 {
		t.Fatalf("flash crowd never shed: %s", res)
	}
	if res.Good == 0 {
		t.Fatalf("flash crowd starved everything: %s", res)
	}
}

// clock sanity: virtual time really is what drives the simulator.
func TestLoadgenUsesVirtualTime(t *testing.T) {
	r := newRig(t)
	before := r.fe.Clock().Now()
	if _, err := Loadgen(r.fe, r.kv, r.bank, loadgenCfg(3, 5_000)); err != nil {
		t.Fatal(err)
	}
	if r.fe.Clock().Now() <= before {
		t.Fatal("virtual clock did not advance")
	}
	var _ clock.Clock = r.fe.Clock()
}

// ---- mirror-served reads ----

// TestMirrorServedReads pins the staleness-budget contract end to end:
// a lagged replica serves reads only when the client's budget covers its
// lag, a zero budget always reads the primary, and a served stale read
// shows exactly the pre-lag state — never a torn in-between.
func TestMirrorServedReads(t *testing.T) {
	cfg := cluster.DefaultConfig()
	cfg.DeviceBytes = 128 << 20
	cfg.MirrorsPerBack = 1
	clu, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(clu.Stop)
	plane := fault.NewPlane(7)
	plane.SetMirrorLag(1 << 20) // hold replication until drained explicitly
	clu.AttachFaultPlane(plane)
	fe, conns, err := clu.NewFrontend(1, core.Mode{OpLog: true, Batch: 4, Pipeline: 8})
	if err != nil {
		t.Fatal(err)
	}
	kv, err := ds.CreateHashTable(conns[0], "serve-kv", dsOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := kv.Put(1, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := kv.Drain(); err != nil {
		t.Fatal(err)
	}
	clu.SyncMirrors(0) // replica now holds {1: old}

	mfe, mconn, err := clu.NewMirrorFrontend(9, 0, 0, core.ModeR())
	if err != nil {
		t.Fatal(err)
	}
	_ = mfe
	mkv, err := ds.OpenHashTable(mconn, "serve-kv", false, dsOpts())
	if err != nil {
		t.Fatal(err)
	}

	// Advance the primary past the replica: these stay queued in the lag
	// plane, so the mirror's SN (and state) is pinned behind.
	if err := kv.Put(1, []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := kv.Put(2, []byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := kv.Drain(); err != nil {
		t.Fatal(err)
	}
	lag, err := cluster.MirrorStaleness(conns[0], mconn, kv.Handle().Slot())
	if err != nil {
		t.Fatal(err)
	}
	if lag == 0 {
		t.Fatal("replication lag plane did not hold the mirror back")
	}

	s := New(Backends{FE: fe, KV: kv, MirrorKV: mkv}, DefaultOptions())
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	c := dial(t, s, 1)

	st := fe.Stats()
	// Zero budget: primary, fresh.
	resp, err := c.Get(1, 0)
	if err != nil || resp.Status != StatusOK || !resp.Found || string(resp.Val) != "new" {
		t.Fatalf("fresh get: %+v err=%v", resp, err)
	}
	// Budget below the lag: the mirror may NOT serve; still fresh.
	if lag > 1 {
		resp, err = c.GetStale(1, uint32(lag-1), 0)
		if err != nil || string(resp.Val) != "new" {
			t.Fatalf("under-budget get: %+v err=%v", resp, err)
		}
	}
	if n := st.MirrorReads.Load(); n != 0 {
		t.Fatalf("mirror served %d reads without budget cover", n)
	}
	// Budget covering the lag: served from the mirror, observing exactly
	// the synced snapshot — key 1 old, key 2 absent.
	resp, err = c.GetStale(1, uint32(lag), 0)
	if err != nil || resp.Status != StatusOK || !resp.Found || string(resp.Val) != "old" {
		t.Fatalf("stale get key 1: %+v err=%v", resp, err)
	}
	resp, err = c.GetStale(2, uint32(lag), 0)
	if err != nil || resp.Status != StatusOK || resp.Found {
		t.Fatalf("stale get key 2 should miss: %+v err=%v", resp, err)
	}
	if n := st.MirrorReads.Load(); n != 2 {
		t.Fatalf("MirrorReads = %d, want 2", n)
	}
	if n := st.MirrorStaleEpochs.Load(); n != 2*int64(lag) {
		t.Fatalf("MirrorStaleEpochs = %d, want %d", n, 2*int64(lag))
	}
	// Catch the mirror up: the same budget now observes fresh state.
	clu.SyncMirrors(0)
	resp, err = c.GetStale(2, uint32(lag), 0)
	if err != nil || !resp.Found || string(resp.Val) != "two" {
		t.Fatalf("post-sync stale get: %+v err=%v", resp, err)
	}
}

// A partition that re-homed under a request maps to StatusMoved with a
// small retry hint — the client outwaits one fence refresh, not a
// migration — while other failures keep their existing statuses.
func TestMovedStatusMapping(t *testing.T) {
	resp := errResponse(fmt.Errorf("route: %w", core.ErrMoved))
	if resp.Status != StatusMoved {
		t.Fatalf("ErrMoved mapped to status %d, want StatusMoved", resp.Status)
	}
	if resp.RetryAfterNS == 0 {
		t.Fatal("StatusMoved carries no retry hint")
	}
	if r := errResponse(errors.New("plain failure")); r.Status != StatusError {
		t.Fatalf("plain error mapped to %d, want StatusError", r.Status)
	}

	// The hint survives the wire round-trip.
	b, err := resp.AppendFramed(nil)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := ReadFrameInto(bytes.NewReader(b), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResponse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusMoved || got.RetryAfterNS != resp.RetryAfterNS {
		t.Fatalf("round-trip: got status=%d retry=%d, want status=%d retry=%d",
			got.Status, got.RetryAfterNS, StatusMoved, resp.RetryAfterNS)
	}
}

// DoRetryMoved keeps retrying while the server answers StatusMoved and
// returns the first settled response; a server that never settles
// exhausts the attempt budget and surfaces StatusMoved to the caller.
func TestClientRetriesMoved(t *testing.T) {
	serveMoved := func(nc net.Conn, movedReplies int) {
		r := bufio.NewReader(nc)
		w := bufio.NewWriter(nc)
		for {
			payload, err := ReadFrameInto(r, nil)
			if err != nil {
				return
			}
			req, err := DecodeRequest(payload)
			if err != nil {
				return
			}
			resp := Response{Status: StatusOK, ID: req.ID, Found: true, Val: []byte("home")}
			if movedReplies > 0 {
				movedReplies--
				resp = Response{Status: StatusMoved, ID: req.ID, RetryAfterNS: 1}
			}
			b, err := resp.AppendFramed(nil)
			if err != nil {
				return
			}
			if _, err := w.Write(b); err != nil {
				return
			}
			if err := w.Flush(); err != nil {
				return
			}
		}
	}

	c1, c2 := net.Pipe()
	defer c1.Close()
	go serveMoved(c2, 2)
	cl := &Client{nc: c1, r: bufio.NewReader(c1), w: bufio.NewWriter(c1), tenant: 1}
	resp, err := cl.DoRetryMoved(Request{Op: OpGet, Key: 7}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusOK || !resp.Found || string(resp.Val) != "home" {
		t.Fatalf("retry did not settle: status=%d found=%v val=%q", resp.Status, resp.Found, resp.Val)
	}

	c3, c4 := net.Pipe()
	defer c3.Close()
	go serveMoved(c4, 1000)
	cl2 := &Client{nc: c3, r: bufio.NewReader(c3), w: bufio.NewWriter(c3), tenant: 1}
	resp, err = cl2.DoRetryMoved(Request{Op: OpGet, Key: 7}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusMoved {
		t.Fatalf("exhausted retries returned status %d, want StatusMoved", resp.Status)
	}
}
