// Package serve is the networked front-end service: a TCP server
// exposing get/put/getmulti/putmulti/tx over a cluster-backed set of
// persistent structures, with the overload-robustness plane a
// production fleet needs when traffic is open-loop — per-tenant
// token-bucket admission, a global concurrency limiter sized from the
// autotune controller's depth, a bounded run queue that turns LIFO
// under overload and prefers cheap reads, deadline propagation into the
// core retry loop, per-tenant breakers, and slow-client write timeouts.
//
// The wire format follows the logrec codec style: little-endian fixed
// headers, explicit magics, and a trailing CRC32-C, framed by a 4-byte
// length prefix. Everything is versioned behind a single magic byte so
// the protocol can evolve.
package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame and payload limits.
const (
	// MaxFrame bounds one request or response payload: the largest legal
	// frame is a putmulti of maxMultiKeys values at maxValueLen each.
	MaxFrame = 4 << 20
	// maxMultiKeys bounds getmulti/putmulti fan-out per request.
	maxMultiKeys = 1 << 12
	// maxValueLen bounds one value (matches the industry-trace ceiling).
	maxValueLen = 64 << 10
)

// ReqMagic and RespMagic distinguish payload kinds and catch framing
// desync.
const (
	ReqMagic  byte = 0xAE
	RespMagic byte = 0xEA
)

// Request opcodes.
const (
	OpGet      uint8 = 1 // {key} -> {found, value}
	OpPut      uint8 = 2 // {key, value} -> {}
	OpGetMulti uint8 = 3 // {keys...} -> {found/value...}
	OpPutMulti uint8 = 4 // {keys..., values...} -> {}
	OpTx       uint8 = 5 // {selector} -> {} (smallbank transaction)
	OpDrain    uint8 = 6 // {} -> {} (admin: flush + wait for replay)
	OpPing     uint8 = 7 // {} -> {} (liveness, bypasses the run queue)
)

// Response status codes.
const (
	StatusOK         uint8 = 0
	StatusNotFound   uint8 = 1 // tx selector had no target (reserved)
	StatusOverload   uint8 = 2 // admission rejected; RetryAfterNS is set
	StatusBreaker    uint8 = 3 // tenant breaker open; RetryAfterNS is set
	StatusDeadline   uint8 = 4 // the request's budget expired
	StatusBadRequest uint8 = 5 // malformed or oversized request
	StatusError      uint8 = 6 // execution failed server-side
)

// Errors reported by the codec.
var (
	ErrShort    = errors.New("serve: payload too short")
	ErrBadMagic = errors.New("serve: bad payload magic")
	ErrBadCRC   = errors.New("serve: payload checksum mismatch")
	ErrTooLarge = errors.New("serve: frame exceeds limit")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Request is one decoded client request.
type Request struct {
	Op       uint8
	ID       uint64 // client-chosen correlation id, echoed in the response
	Tenant   uint16 // admission-control principal
	BudgetNS uint64 // deadline budget from arrival; 0 = no deadline

	Key  uint64   // Get/Put
	Val  []byte   // Put
	Keys []uint64 // GetMulti/PutMulti
	Vals [][]byte // PutMulti
	TxR  uint64   // Tx selector
}

// Response is one decoded server response.
type Response struct {
	Status       uint8
	ID           uint64
	RetryAfterNS uint64 // Overload/Breaker: hint before the next attempt

	Found  bool     // Get
	Val    []byte   // Get
	Founds []bool   // GetMulti
	Vals   [][]byte // GetMulti
}

// reqHeaderLen is magic + op + tenant + id + budget.
const reqHeaderLen = 1 + 1 + 2 + 8 + 8

// Encode renders the request payload (unframed).
func (r *Request) Encode() []byte {
	n := reqHeaderLen
	switch r.Op {
	case OpGet:
		n += 8
	case OpPut:
		n += 8 + 4 + len(r.Val)
	case OpGetMulti:
		n += 4 + 8*len(r.Keys)
	case OpPutMulti:
		n += 4 + 8*len(r.Keys)
		for _, v := range r.Vals {
			n += 4 + len(v)
		}
	case OpTx:
		n += 8
	}
	buf := make([]byte, n, n+4)
	buf[0] = ReqMagic
	buf[1] = r.Op
	binary.LittleEndian.PutUint16(buf[2:], r.Tenant)
	binary.LittleEndian.PutUint64(buf[4:], r.ID)
	binary.LittleEndian.PutUint64(buf[12:], r.BudgetNS)
	p := reqHeaderLen
	switch r.Op {
	case OpGet:
		binary.LittleEndian.PutUint64(buf[p:], r.Key)
	case OpPut:
		binary.LittleEndian.PutUint64(buf[p:], r.Key)
		binary.LittleEndian.PutUint32(buf[p+8:], uint32(len(r.Val)))
		copy(buf[p+12:], r.Val)
	case OpGetMulti:
		binary.LittleEndian.PutUint32(buf[p:], uint32(len(r.Keys)))
		p += 4
		for _, k := range r.Keys {
			binary.LittleEndian.PutUint64(buf[p:], k)
			p += 8
		}
	case OpPutMulti:
		binary.LittleEndian.PutUint32(buf[p:], uint32(len(r.Keys)))
		p += 4
		for _, k := range r.Keys {
			binary.LittleEndian.PutUint64(buf[p:], k)
			p += 8
		}
		for _, v := range r.Vals {
			binary.LittleEndian.PutUint32(buf[p:], uint32(len(v)))
			p += 4
			p += copy(buf[p:], v)
		}
	case OpTx:
		binary.LittleEndian.PutUint64(buf[p:], r.TxR)
	}
	return appendCRC(buf)
}

// DecodeRequest parses a request payload.
func DecodeRequest(src []byte) (Request, error) {
	body, err := checkCRC(src, ReqMagic)
	if err != nil {
		return Request{}, err
	}
	if len(body) < reqHeaderLen {
		return Request{}, ErrShort
	}
	r := Request{
		Op:       body[1],
		Tenant:   binary.LittleEndian.Uint16(body[2:]),
		ID:       binary.LittleEndian.Uint64(body[4:]),
		BudgetNS: binary.LittleEndian.Uint64(body[12:]),
	}
	p := body[reqHeaderLen:]
	switch r.Op {
	case OpGet:
		if len(p) < 8 {
			return Request{}, ErrShort
		}
		r.Key = binary.LittleEndian.Uint64(p)
	case OpPut:
		if len(p) < 12 {
			return Request{}, ErrShort
		}
		r.Key = binary.LittleEndian.Uint64(p)
		vl := binary.LittleEndian.Uint32(p[8:])
		if vl > maxValueLen || len(p) < 12+int(vl) {
			return Request{}, ErrShort
		}
		r.Val = append([]byte(nil), p[12:12+vl]...)
	case OpGetMulti:
		keys, _, err := decodeKeys(p)
		if err != nil {
			return Request{}, err
		}
		r.Keys = keys
	case OpPutMulti:
		keys, rest, err := decodeKeys(p)
		if err != nil {
			return Request{}, err
		}
		r.Keys = keys
		r.Vals = make([][]byte, 0, len(keys))
		for range keys {
			if len(rest) < 4 {
				return Request{}, ErrShort
			}
			vl := binary.LittleEndian.Uint32(rest)
			if vl > maxValueLen || len(rest) < 4+int(vl) {
				return Request{}, ErrShort
			}
			r.Vals = append(r.Vals, append([]byte(nil), rest[4:4+vl]...))
			rest = rest[4+vl:]
		}
	case OpTx:
		if len(p) < 8 {
			return Request{}, ErrShort
		}
		r.TxR = binary.LittleEndian.Uint64(p)
	case OpDrain, OpPing:
		// No body.
	default:
		return Request{}, fmt.Errorf("serve: unknown op %d", r.Op)
	}
	return r, nil
}

func decodeKeys(p []byte) ([]uint64, []byte, error) {
	if len(p) < 4 {
		return nil, nil, ErrShort
	}
	n := binary.LittleEndian.Uint32(p)
	if n > maxMultiKeys || len(p) < 4+8*int(n) {
		return nil, nil, ErrShort
	}
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = binary.LittleEndian.Uint64(p[4+8*i:])
	}
	return keys, p[4+8*int(n):], nil
}

// respHeaderLen is magic + status + id + retryAfter.
const respHeaderLen = 1 + 1 + 8 + 8

// Encode renders the response payload (unframed).
func (r *Response) Encode() []byte {
	n := respHeaderLen
	switch {
	case len(r.Vals) > 0 || r.Founds != nil:
		n += 4
		for i := range r.Founds {
			n += 1 + 4
			if r.Founds[i] {
				n += len(r.Vals[i])
			}
		}
	default:
		n += 1 + 4 + len(r.Val)
	}
	buf := make([]byte, n, n+4)
	buf[0] = RespMagic
	buf[1] = r.Status
	binary.LittleEndian.PutUint64(buf[2:], r.ID)
	binary.LittleEndian.PutUint64(buf[10:], r.RetryAfterNS)
	p := respHeaderLen
	if len(r.Vals) > 0 || r.Founds != nil {
		binary.LittleEndian.PutUint32(buf[p:], uint32(len(r.Founds)))
		p += 4
		for i := range r.Founds {
			var v []byte
			if r.Founds[i] {
				buf[p] = 1
				v = r.Vals[i]
			}
			p++
			binary.LittleEndian.PutUint32(buf[p:], uint32(len(v)))
			p += 4
			p += copy(buf[p:], v)
		}
	} else {
		if r.Found {
			buf[p] = 1
		}
		binary.LittleEndian.PutUint32(buf[p+1:], uint32(len(r.Val)))
		copy(buf[p+5:], r.Val)
	}
	return appendCRC(buf)
}

// DecodeResponse parses a response payload.
func DecodeResponse(src []byte) (Response, error) {
	body, err := checkCRC(src, RespMagic)
	if err != nil {
		return Response{}, err
	}
	if len(body) < respHeaderLen {
		return Response{}, ErrShort
	}
	r := Response{
		Status:       body[1],
		ID:           binary.LittleEndian.Uint64(body[2:]),
		RetryAfterNS: binary.LittleEndian.Uint64(body[10:]),
	}
	p := body[respHeaderLen:]
	if len(p) >= 5 && len(p) == 5+int(binary.LittleEndian.Uint32(p[1:])) {
		// Single-value form.
		r.Found = p[0] == 1
		vl := binary.LittleEndian.Uint32(p[1:])
		if vl > 0 {
			r.Val = append([]byte(nil), p[5:5+vl]...)
		}
		return r, nil
	}
	if len(p) < 4 {
		return Response{}, ErrShort
	}
	n := binary.LittleEndian.Uint32(p)
	if n > maxMultiKeys {
		return Response{}, ErrShort
	}
	p = p[4:]
	r.Founds = make([]bool, 0, n)
	r.Vals = make([][]byte, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(p) < 5 {
			return Response{}, ErrShort
		}
		found := p[0] == 1
		vl := binary.LittleEndian.Uint32(p[1:])
		if vl > maxValueLen || len(p) < 5+int(vl) {
			return Response{}, ErrShort
		}
		var v []byte
		if vl > 0 {
			v = append([]byte(nil), p[5:5+vl]...)
		}
		r.Founds = append(r.Founds, found)
		r.Vals = append(r.Vals, v)
		p = p[5+vl:]
	}
	return r, nil
}

func appendCRC(buf []byte) []byte {
	var c [4]byte
	binary.LittleEndian.PutUint32(c[:], crc32.Checksum(buf, castagnoli))
	return append(buf, c[:]...)
}

func checkCRC(src []byte, magic byte) ([]byte, error) {
	if len(src) < 5 {
		return nil, ErrShort
	}
	if src[0] != magic {
		return nil, ErrBadMagic
	}
	body, sum := src[:len(src)-4], binary.LittleEndian.Uint32(src[len(src)-4:])
	if crc32.Checksum(body, castagnoli) != sum {
		return nil, ErrBadCRC
	}
	return body, nil
}

// WriteFrame writes one length-prefixed payload.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrTooLarge
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed payload, bounding its size.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, ErrTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}
