// Package serve is the networked front-end service: a TCP server
// exposing get/put/getmulti/putmulti/tx over a cluster-backed set of
// persistent structures, with the overload-robustness plane a
// production fleet needs when traffic is open-loop — per-tenant
// token-bucket admission, a global concurrency limiter sized from the
// autotune controller's depth, a bounded run queue that turns LIFO
// under overload and prefers cheap reads, deadline propagation into the
// core retry loop, per-tenant breakers, and slow-client write timeouts.
//
// The wire format follows the logrec codec style: little-endian fixed
// headers, explicit magics, and a trailing CRC32-C, framed by a 4-byte
// length prefix. Everything is versioned behind a single magic byte so
// the protocol can evolve.
//
// Every request header carries a staleness budget (Request.StaleBudget)
// alongside the deadline budget: the maximum number of
// applied-transaction epochs a Get/GetMulti answer may trail the
// primary. A non-zero budget lets the server route the read to an NVM
// mirror replica whose measured lag fits the budget — off-loading the
// primary — while zero (the default) keeps the strict read-your-writes
// path. The server never serves beyond the budget: if every mirror is
// too stale the read falls back to the primary, so the budget is an
// upper bound on staleness, not a target. Client.GetStale sets it per
// call.
package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"slices"

	"asymnvm/internal/arena"
)

// Frame and payload limits.
const (
	// MaxFrame bounds one request or response payload: the largest legal
	// frame is a putmulti of maxMultiKeys values at maxValueLen each.
	MaxFrame = 4 << 20
	// maxMultiKeys bounds getmulti/putmulti fan-out per request.
	maxMultiKeys = 1 << 12
	// maxValueLen bounds one value (matches the industry-trace ceiling).
	maxValueLen = 64 << 10
)

// ReqMagic and RespMagic distinguish payload kinds and catch framing
// desync.
const (
	ReqMagic  byte = 0xAE
	RespMagic byte = 0xEA
)

// Request opcodes.
const (
	OpGet      uint8 = 1 // {key} -> {found, value}
	OpPut      uint8 = 2 // {key, value} -> {}
	OpGetMulti uint8 = 3 // {keys...} -> {found/value...}
	OpPutMulti uint8 = 4 // {keys..., values...} -> {}
	OpTx       uint8 = 5 // {selector} -> {} (smallbank transaction)
	OpDrain    uint8 = 6 // {} -> {} (admin: flush + wait for replay)
	OpPing     uint8 = 7 // {} -> {} (liveness, bypasses the run queue)
)

// Response status codes.
const (
	StatusOK         uint8 = 0
	StatusNotFound   uint8 = 1 // tx selector had no target (reserved)
	StatusOverload   uint8 = 2 // admission rejected; RetryAfterNS is set
	StatusBreaker    uint8 = 3 // tenant breaker open; RetryAfterNS is set
	StatusDeadline   uint8 = 4 // the request's budget expired
	StatusBadRequest uint8 = 5 // malformed or oversized request
	StatusError      uint8 = 6 // execution failed server-side
	StatusMoved      uint8 = 7 // partition re-homed mid-request; retry re-resolves
)

// Errors reported by the codec.
var (
	ErrShort    = errors.New("serve: payload too short")
	ErrBadMagic = errors.New("serve: bad payload magic")
	ErrBadCRC   = errors.New("serve: payload checksum mismatch")
	ErrTooLarge = errors.New("serve: frame exceeds limit")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Request is one decoded client request.
type Request struct {
	Op       uint8
	ID       uint64 // client-chosen correlation id, echoed in the response
	Tenant   uint16 // admission-control principal
	BudgetNS uint64 // deadline budget from arrival; 0 = no deadline
	// StaleBudget is the read-staleness budget in applied-transaction
	// epochs: a Get/GetMulti may be served from an NVM mirror replica
	// whose view of the structure is at most this many epochs behind the
	// primary. 0 (the default) demands the primary's fresh view. Ignored
	// for writes and transactions.
	StaleBudget uint32

	Key  uint64   // Get/Put
	Val  []byte   // Put
	Keys []uint64 // GetMulti/PutMulti
	Vals [][]byte // PutMulti
	TxR  uint64   // Tx selector
}

// Response is one decoded server response.
type Response struct {
	Status       uint8
	ID           uint64
	RetryAfterNS uint64 // Overload/Breaker: hint before the next attempt

	Found  bool     // Get
	Val    []byte   // Get
	Founds []bool   // GetMulti
	Vals   [][]byte // GetMulti
}

// reqHeaderLen is magic + op + tenant + id + budget + staleness budget.
const reqHeaderLen = 1 + 1 + 2 + 8 + 8 + 4

// EncodedLen reports the unframed payload size (header + body + CRC).
func (r *Request) EncodedLen() int {
	n := reqHeaderLen + 4
	switch r.Op {
	case OpGet:
		n += 8
	case OpPut:
		n += 8 + 4 + len(r.Val)
	case OpGetMulti:
		n += 4 + 8*len(r.Keys)
	case OpPutMulti:
		n += 4 + 8*len(r.Keys)
		for _, v := range r.Vals {
			n += 4 + len(v)
		}
	case OpTx:
		n += 8
	}
	return n
}

// AppendTo appends the request payload (unframed) to dst and returns the
// extended slice. Given sufficient capacity it does not allocate.
func (r *Request) AppendTo(dst []byte) []byte {
	n := r.EncodedLen()
	base := len(dst)
	dst = slices.Grow(dst, n)[: base+n-4 : base+n]
	buf := dst[base:]
	buf[0] = ReqMagic
	buf[1] = r.Op
	binary.LittleEndian.PutUint16(buf[2:], r.Tenant)
	binary.LittleEndian.PutUint64(buf[4:], r.ID)
	binary.LittleEndian.PutUint64(buf[12:], r.BudgetNS)
	binary.LittleEndian.PutUint32(buf[20:], r.StaleBudget)
	p := reqHeaderLen
	switch r.Op {
	case OpGet:
		binary.LittleEndian.PutUint64(buf[p:], r.Key)
	case OpPut:
		binary.LittleEndian.PutUint64(buf[p:], r.Key)
		binary.LittleEndian.PutUint32(buf[p+8:], uint32(len(r.Val)))
		copy(buf[p+12:], r.Val)
	case OpGetMulti:
		binary.LittleEndian.PutUint32(buf[p:], uint32(len(r.Keys)))
		p += 4
		for _, k := range r.Keys {
			binary.LittleEndian.PutUint64(buf[p:], k)
			p += 8
		}
	case OpPutMulti:
		binary.LittleEndian.PutUint32(buf[p:], uint32(len(r.Keys)))
		p += 4
		for _, k := range r.Keys {
			binary.LittleEndian.PutUint64(buf[p:], k)
			p += 8
		}
		for _, v := range r.Vals {
			binary.LittleEndian.PutUint32(buf[p:], uint32(len(v)))
			p += 4
			p += copy(buf[p:], v)
		}
	case OpTx:
		binary.LittleEndian.PutUint64(buf[p:], r.TxR)
	}
	return appendCRC(dst, base)
}

// Encode renders the request payload (unframed).
func (r *Request) Encode() []byte { return r.AppendTo(nil) }

// DecodeRequest parses a request payload.
func DecodeRequest(src []byte) (Request, error) {
	var r Request
	if err := DecodeRequestInto(&r, src, nil); err != nil {
		return Request{}, err
	}
	return r, nil
}

// DecodeRequestInto parses a request payload into r, reusing r's Keys
// and Vals slices. When a is non-nil, value bytes are copied into the
// arena (valid until its Reset) instead of freshly allocated; either
// way the result never aliases src.
func DecodeRequestInto(r *Request, src []byte, a *arena.Arena) error {
	body, err := checkCRC(src, ReqMagic)
	if err != nil {
		return err
	}
	if len(body) < reqHeaderLen {
		return ErrShort
	}
	keys, vals := r.Keys[:0], r.Vals[:0]
	*r = Request{
		Op:          body[1],
		Tenant:      binary.LittleEndian.Uint16(body[2:]),
		ID:          binary.LittleEndian.Uint64(body[4:]),
		BudgetNS:    binary.LittleEndian.Uint64(body[12:]),
		StaleBudget: binary.LittleEndian.Uint32(body[20:]),
	}
	p := body[reqHeaderLen:]
	switch r.Op {
	case OpGet:
		if len(p) < 8 {
			return ErrShort
		}
		r.Key = binary.LittleEndian.Uint64(p)
	case OpPut:
		if len(p) < 12 {
			return ErrShort
		}
		r.Key = binary.LittleEndian.Uint64(p)
		vl := binary.LittleEndian.Uint32(p[8:])
		if vl > maxValueLen || len(p) < 12+int(vl) {
			return ErrShort
		}
		r.Val = copyVal(a, p[12:12+vl])
	case OpGetMulti:
		keys, _, err = decodeKeys(keys, p)
		if err != nil {
			return err
		}
		r.Keys = keys
	case OpPutMulti:
		var rest []byte
		keys, rest, err = decodeKeys(keys, p)
		if err != nil {
			return err
		}
		r.Keys = keys
		vals = slices.Grow(vals, len(keys))
		for range keys {
			if len(rest) < 4 {
				return ErrShort
			}
			vl := binary.LittleEndian.Uint32(rest)
			if vl > maxValueLen || len(rest) < 4+int(vl) {
				return ErrShort
			}
			vals = append(vals, copyVal(a, rest[4:4+vl]))
			rest = rest[4+vl:]
		}
		r.Vals = vals
	case OpTx:
		if len(p) < 8 {
			return ErrShort
		}
		r.TxR = binary.LittleEndian.Uint64(p)
	case OpDrain, OpPing:
		// No body.
	default:
		return fmt.Errorf("serve: unknown op %d", r.Op)
	}
	return nil
}

// copyVal detaches value bytes from the wire buffer: into the arena when
// one is supplied, onto the heap otherwise. Empty values stay nil.
func copyVal(a *arena.Arena, src []byte) []byte {
	if len(src) == 0 {
		return nil
	}
	if a != nil {
		return a.Copy(src)
	}
	return append([]byte(nil), src...)
}

func decodeKeys(dst []uint64, p []byte) ([]uint64, []byte, error) {
	if len(p) < 4 {
		return nil, nil, ErrShort
	}
	n := binary.LittleEndian.Uint32(p)
	if n > maxMultiKeys || len(p) < 4+8*int(n) {
		return nil, nil, ErrShort
	}
	dst = slices.Grow(dst, int(n))
	for i := 0; i < int(n); i++ {
		dst = append(dst, binary.LittleEndian.Uint64(p[4+8*i:]))
	}
	return dst, p[4+8*int(n):], nil
}

// respHeaderLen is magic + status + id + retryAfter.
const respHeaderLen = 1 + 1 + 8 + 8

// EncodedLen reports the unframed payload size (header + body + CRC).
func (r *Response) EncodedLen() int {
	n := respHeaderLen + 4
	switch {
	case len(r.Vals) > 0 || r.Founds != nil:
		n += 4
		for i := range r.Founds {
			n += 1 + 4
			if r.Founds[i] {
				n += len(r.Vals[i])
			}
		}
	default:
		n += 1 + 4 + len(r.Val)
	}
	return n
}

// AppendTo appends the response payload (unframed) to dst and returns
// the extended slice. Given sufficient capacity it does not allocate.
func (r *Response) AppendTo(dst []byte) []byte {
	n := r.EncodedLen()
	base := len(dst)
	dst = slices.Grow(dst, n)[: base+n-4 : base+n]
	buf := dst[base:]
	buf[0] = RespMagic
	buf[1] = r.Status
	binary.LittleEndian.PutUint64(buf[2:], r.ID)
	binary.LittleEndian.PutUint64(buf[10:], r.RetryAfterNS)
	p := respHeaderLen
	if len(r.Vals) > 0 || r.Founds != nil {
		binary.LittleEndian.PutUint32(buf[p:], uint32(len(r.Founds)))
		p += 4
		for i := range r.Founds {
			var v []byte
			buf[p] = 0 // dst may be reused; flag bytes must not leak stale data
			if r.Founds[i] {
				buf[p] = 1
				v = r.Vals[i]
			}
			p++
			binary.LittleEndian.PutUint32(buf[p:], uint32(len(v)))
			p += 4
			p += copy(buf[p:], v)
		}
	} else {
		buf[p] = 0
		if r.Found {
			buf[p] = 1
		}
		binary.LittleEndian.PutUint32(buf[p+1:], uint32(len(r.Val)))
		copy(buf[p+5:], r.Val)
	}
	return appendCRC(dst, base)
}

// Encode renders the response payload (unframed).
func (r *Response) Encode() []byte { return r.AppendTo(nil) }

// DecodeResponse parses a response payload.
func DecodeResponse(src []byte) (Response, error) {
	var r Response
	if err := DecodeResponseInto(&r, src, nil); err != nil {
		return Response{}, err
	}
	return r, nil
}

// DecodeResponseInto parses a response payload into r, reusing r's
// Founds and Vals slices; value bytes go to the arena when a is non-nil.
func DecodeResponseInto(r *Response, src []byte, a *arena.Arena) error {
	body, err := checkCRC(src, RespMagic)
	if err != nil {
		return err
	}
	if len(body) < respHeaderLen {
		return ErrShort
	}
	founds, vals := r.Founds[:0], r.Vals[:0]
	*r = Response{
		Status:       body[1],
		ID:           binary.LittleEndian.Uint64(body[2:]),
		RetryAfterNS: binary.LittleEndian.Uint64(body[10:]),
	}
	p := body[respHeaderLen:]
	if len(p) >= 5 && len(p) == 5+int(binary.LittleEndian.Uint32(p[1:])) {
		// Single-value form.
		r.Found = p[0] == 1
		r.Val = copyVal(a, p[5:])
		return nil
	}
	if len(p) < 4 {
		return ErrShort
	}
	n := binary.LittleEndian.Uint32(p)
	if n > maxMultiKeys {
		return ErrShort
	}
	p = p[4:]
	founds = slices.Grow(founds, int(n))
	vals = slices.Grow(vals, int(n))
	for i := uint32(0); i < n; i++ {
		if len(p) < 5 {
			return ErrShort
		}
		found := p[0] == 1
		vl := binary.LittleEndian.Uint32(p[1:])
		if vl > maxValueLen || len(p) < 5+int(vl) {
			return ErrShort
		}
		founds = append(founds, found)
		vals = append(vals, copyVal(a, p[5:5+vl]))
		p = p[5+vl:]
	}
	r.Founds, r.Vals = founds, vals
	return nil
}

// appendCRC checksums dst[start:] (the payload appended so far) and
// appends the 4-byte trailer.
func appendCRC(dst []byte, start int) []byte {
	var c [4]byte
	binary.LittleEndian.PutUint32(c[:], crc32.Checksum(dst[start:], castagnoli))
	return append(dst, c[:]...)
}

func checkCRC(src []byte, magic byte) ([]byte, error) {
	if len(src) < 5 {
		return nil, ErrShort
	}
	if src[0] != magic {
		return nil, ErrBadMagic
	}
	body, sum := src[:len(src)-4], binary.LittleEndian.Uint32(src[len(src)-4:])
	if crc32.Checksum(body, castagnoli) != sum {
		return nil, ErrBadCRC
	}
	return body, nil
}

// WriteFrame writes one length-prefixed payload.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrTooLarge
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// AppendFramed appends the length prefix plus the request payload to dst
// in one pass — no intermediate Encode buffer, one Write on the wire.
func (r *Request) AppendFramed(dst []byte) ([]byte, error) {
	return finishFrame(r.AppendTo(reserveFrame(dst)), len(dst))
}

// AppendFramed appends the length prefix plus the response payload to
// dst in one pass.
func (r *Response) AppendFramed(dst []byte) ([]byte, error) {
	return finishFrame(r.AppendTo(reserveFrame(dst)), len(dst))
}

// reserveFrame appends a zeroed 4-byte slot for the length prefix.
func reserveFrame(dst []byte) []byte { return append(dst, 0, 0, 0, 0) }

// finishFrame backfills the length prefix reserved at base.
func finishFrame(dst []byte, base int) ([]byte, error) {
	n := len(dst) - base - 4
	if n > MaxFrame {
		return dst[:base], ErrTooLarge
	}
	binary.LittleEndian.PutUint32(dst[base:], uint32(n))
	return dst, nil
}

// ReadFrame reads one length-prefixed payload, bounding its size.
func ReadFrame(r io.Reader) ([]byte, error) {
	return ReadFrameInto(r, nil)
}

// ReadFrameInto reads one length-prefixed payload into buf (grown as
// needed), returning the payload slice. The returned slice aliases buf's
// backing array and is valid until the next call with the same buf —
// callers that queue the payload must decode (and detach) first.
func ReadFrameInto(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n > MaxFrame {
		return nil, ErrTooLarge
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	payload := buf[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}
