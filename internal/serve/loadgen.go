package serve

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"asymnvm/internal/core"
	"asymnvm/internal/ds"
	"asymnvm/internal/stats"
	"asymnvm/internal/txapp"
	"asymnvm/internal/workload"
)

// LoadgenConfig drives one open-loop simulation.
type LoadgenConfig struct {
	Seed     int64
	Duration time.Duration         // virtual horizon
	Sched    workload.RateSchedule // offered-load shape
	Keys     uint64
	WritePct int
	TxPct    int     // percentage of ops that are smallbank transactions
	Theta    float64 // base key skew (0 = uniform)
	ValueLen int

	// HotTheta, when > 0, switches keys to this Zipf exponent inside the
	// flash window [HotStart, HotStart+HotDur) — the hot-key spike of a
	// flash crowd.
	HotTheta float64
	HotStart time.Duration
	HotDur   time.Duration

	// SlowFrac of completed responses go to clients that never drain
	// them: the work was done but the bytes were shed after the write
	// timeout, so it counts against goodput as ServeSlowDrop.
	SlowFrac float64

	Budget    time.Duration // per-request deadline budget (0 = none)
	Workers   int           // simulated service parallelism
	Admission AdmissionConfig
	QueueCap  int
	LIFOFrac  float64
	Tenants   int // requests round-robin over this many tenants (min 1)
}

// LoadgenResult summarizes one simulation.
type LoadgenResult struct {
	Offered   int64 // arrivals inside the horizon
	Accepted  int64
	Rejected  int64 // admission overload rejections
	Breaker   int64 // breaker sheds
	Expired   int64 // died in queue before dispatch
	DeadlineMiss int64 // missed deadline during/after service
	SlowDrop  int64 // completed but shed on the response path
	Good      int64 // completed in time, response delivered
	Elapsed   time.Duration
	GoodputKOPS float64
	P50, P99  time.Duration // accepted-and-completed request latency
	MeanSvc   time.Duration // measured mean service time
}

func (r LoadgenResult) String() string {
	return fmt.Sprintf("offered=%d acc=%d rej=%d brk=%d exp=%d dl=%d slow=%d good=%d goodput=%.1fkops p50=%v p99=%v",
		r.Offered, r.Accepted, r.Rejected, r.Breaker, r.Expired, r.DeadlineMiss, r.SlowDrop, r.Good, r.GoodputKOPS, r.P50, r.P99)
}

// completion is one in-service request finishing at T.
type completion struct {
	T  time.Duration
	it *Item
}

type completionHeap []completion

func (h completionHeap) Len() int           { return len(h) }
func (h completionHeap) Less(i, j int) bool { return h[i].T < h[j].T }
func (h completionHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x any)        { *h = append(*h, x.(completion)) }
func (h *completionHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Loadgen runs an open-loop overload simulation: a discrete-event loop
// over a seeded arrival stream, pushing requests through the very same
// Admission and RunQueue the TCP server uses, with service times
// measured by executing the real operations on the given front-end and
// charging their virtual-clock cost. Everything is virtual time, so one
// seed gives one byte-identical result — overload curves that are
// benchmarkable and pinnable.
//
// The caller's front-end and structures are operated only from this
// goroutine (SWMR holds).
func Loadgen(fe *core.Frontend, kv *ds.HashTable, bank *txapp.SmallBank, cfg LoadgenConfig) (LoadgenResult, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Tenants <= 0 {
		cfg.Tenants = 1
	}
	adm := NewAdmission(cfg.Admission)
	q := NewRunQueue(cfg.QueueCap, cfg.LIFOFrac)
	arr := workload.NewArrivals(cfg.Seed, cfg.Sched)
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))
	baseKeys := keyDist(cfg.Keys, cfg.Theta)
	hotKeys := baseKeys
	if cfg.HotTheta > 0 {
		hotKeys = keyDist(cfg.Keys, cfg.HotTheta)
	}

	var res LoadgenResult
	var lat stats.Hist
	var svcSum time.Duration
	var svcN int64

	// Worker pool: a min-heap of free instants.
	free := make([]time.Duration, cfg.Workers)

	// measure executes one op on the front-end and returns its virtual
	// cost.
	measure := func(req Request) (time.Duration, error) {
		t0 := fe.Clock().Now()
		if err := execDirect(kv, bank, req); err != nil {
			return 0, err
		}
		return fe.Clock().Now() - t0, nil
	}

	// nextReq draws one request for instant t.
	var seq uint64
	nextReq := func(t time.Duration) Request {
		seq++
		keys := baseKeys
		if cfg.HotTheta > 0 && t >= cfg.HotStart && t < cfg.HotStart+cfg.HotDur {
			keys = hotKeys
		}
		req := drawOp(rng, keys, cfg)
		req.ID = seq
		req.Tenant = uint16(seq % uint64(cfg.Tenants))
		req.BudgetNS = uint64(cfg.Budget)
		return req
	}

	var comps completionHeap
	// dispatch pulls queued work onto any worker free at or before now.
	dispatch := func(now time.Duration) error {
		for {
			w := minIdx(free)
			if free[w] > now {
				return nil
			}
			it := q.Pop()
			if it == nil {
				return nil
			}
			start := now
			if free[w] > start {
				start = free[w]
			}
			if it.DeadlineAt > 0 && start >= it.DeadlineAt {
				res.Expired++
				adm.Done()
				continue
			}
			if it.DeadlineAt > 0 && it.Read {
				// The front-end clock and the simulation timeline differ;
				// arm the remaining budget, not the absolute instant.
				fe.SetBudget(it.DeadlineAt - start)
			}
			svc, err := measure(it.Req)
			fe.ClearDeadline()
			if err != nil {
				if errors.Is(err, core.ErrDeadlineExceeded) {
					res.DeadlineMiss++
					adm.Done()
					continue
				}
				return err
			}
			svcSum += svc
			svcN++
			free[w] = start + svc
			heap.Push(&comps, completion{T: free[w], it: it})
		}
	}
	complete := func(c completion) {
		adm.Done()
		latNS := c.T - c.it.ArrivedAt
		if c.it.DeadlineAt > 0 && c.T > c.it.DeadlineAt {
			res.DeadlineMiss++
			return
		}
		if cfg.SlowFrac > 0 && rng.Float64() < cfg.SlowFrac {
			res.SlowDrop++
			return
		}
		lat.Observe(int64(latNS))
		res.Good++
	}

	for {
		at, ok := arr.Next()
		if !ok || at > cfg.Duration {
			break
		}
		// Retire everything that finished before this arrival.
		for len(comps) > 0 && comps[0].T <= at {
			c := heap.Pop(&comps).(completion)
			complete(c)
			if err := dispatch(c.T); err != nil {
				return res, err
			}
		}
		res.Offered++
		tenant := uint16(res.Offered % int64(cfg.Tenants))
		dec := adm.Admit(tenant, at)
		if !dec.Admit {
			if dec.Status == StatusBreaker {
				res.Breaker++
			} else {
				res.Rejected++
			}
			continue
		}
		req := nextReq(at)
		req.Tenant = tenant
		it := &Item{Req: req, Read: req.Op == OpGet, ArrivedAt: at}
		if req.BudgetNS > 0 {
			it.DeadlineAt = at + time.Duration(req.BudgetNS)
		}
		if !q.Push(it) {
			adm.Done()
			res.Rejected++
			continue
		}
		res.Accepted++
		if err := dispatch(at); err != nil {
			return res, err
		}
	}
	// Drain the tail.
	for len(comps) > 0 || q.Len() > 0 {
		for len(comps) > 0 {
			c := heap.Pop(&comps).(completion)
			complete(c)
			if err := dispatch(c.T); err != nil {
				return res, err
			}
		}
		if q.Len() > 0 {
			// All workers idle with work queued: jump to the earliest
			// free instant.
			if err := dispatch(free[minIdx(free)]); err != nil {
				return res, err
			}
			if len(comps) == 0 {
				break // everything left had expired
			}
		}
	}

	res.Elapsed = cfg.Duration
	if res.Elapsed > 0 {
		res.GoodputKOPS = float64(res.Good) / res.Elapsed.Seconds() / 1e3
	}
	snap := lat.Snapshot()
	res.P50 = time.Duration(snap.Quantile(0.50))
	res.P99 = time.Duration(snap.Quantile(0.99))
	if svcN > 0 {
		res.MeanSvc = svcSum / time.Duration(svcN)
	}
	return res, nil
}

func keyDist(keys uint64, theta float64) workload.KeyDist {
	if theta > 0 {
		return workload.Scrambled{Inner: workload.NewZipf(keys, theta)}
	}
	return workload.Uniform{Keys: keys}
}

// drawOp draws one operation from cfg's mix over the given key
// distribution.
func drawOp(rng *rand.Rand, keys workload.KeyDist, cfg LoadgenConfig) Request {
	var req Request
	switch p := rng.Intn(100); {
	case p < cfg.TxPct:
		req.Op = OpTx
		req.TxR = rng.Uint64()
	case p < cfg.TxPct+cfg.WritePct:
		req.Op = OpPut
		req.Key = keys.Next(rng)
		req.Val = workload.Value(req.Key, cfg.ValueLen)
	default:
		req.Op = OpGet
		req.Key = keys.Next(rng)
	}
	return req
}

// execDirect runs one request straight against the structures.
func execDirect(kv *ds.HashTable, bank *txapp.SmallBank, req Request) error {
	switch req.Op {
	case OpGet:
		_, _, err := kv.Get(req.Key)
		return err
	case OpPut:
		return kv.Put(req.Key, req.Val)
	case OpTx:
		return bank.DoTx(req.TxR)
	}
	return nil
}

// Calibrate measures the mean virtual service time of cfg's operation
// mix by executing ops requests back to back (closed loop) on the
// front-end. The reciprocal, times the worker count, is the simulated
// plane's capacity — the 1× point of an overload sweep.
func Calibrate(fe *core.Frontend, kv *ds.HashTable, bank *txapp.SmallBank, cfg LoadgenConfig, ops int) (time.Duration, error) {
	if ops <= 0 {
		ops = 1000
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0xca11b))
	keys := keyDist(cfg.Keys, cfg.Theta)
	t0 := fe.Clock().Now()
	for i := 0; i < ops; i++ {
		if err := execDirect(kv, bank, drawOp(rng, keys, cfg)); err != nil {
			return 0, err
		}
	}
	return (fe.Clock().Now() - t0) / time.Duration(ops), nil
}

func minIdx(free []time.Duration) int {
	m := 0
	for i, t := range free {
		if t < free[m] {
			m = i
		}
	}
	return m
}
