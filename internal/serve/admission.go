package serve

import (
	"sync"
	"time"
)

// TenantQuota is one tenant's token-bucket allowance.
type TenantQuota struct {
	Rate  float64 // sustained requests per (virtual) second
	Burst float64 // bucket depth
}

// AdmissionConfig sizes the admission plane.
type AdmissionConfig struct {
	// DefaultQuota applies to tenants without an explicit entry in Quotas.
	// A zero Rate disables per-tenant rate limiting.
	DefaultQuota TenantQuota
	Quotas       map[uint16]TenantQuota

	// CapacityFn reports the global concurrency capacity: the maximum
	// number of admitted-but-not-completed requests. The server wires it
	// to the autotune controller's current pipeline depth so admission
	// tracks what the fabric can actually absorb. Nil or non-positive
	// results fall back to DefaultCapacity.
	CapacityFn func() int

	// BreakerTrip opens a tenant's breaker after this many consecutive
	// rejections; 0 disables the breaker.
	BreakerTrip int
	// BreakerCooldown is how long a tripped breaker stays open.
	BreakerCooldown time.Duration

	// RetryAfterMin floors the retry-after hint on overload rejections.
	RetryAfterMin time.Duration
}

// DefaultCapacity is the concurrency bound used when no CapacityFn is
// installed (or it reports nonsense).
const DefaultCapacity = 64

// Decision is the outcome of admitting one request.
type Decision struct {
	Admit        bool
	Status       uint8 // StatusOverload or StatusBreaker when !Admit
	RetryAfterNS uint64
}

type tenantState struct {
	tokens   float64
	lastNS   int64
	quota    TenantQuota
	consec   int           // consecutive rejections
	openTill time.Duration // breaker open until this instant (0 = closed)
}

// Admission is the front door: per-tenant token buckets, a global
// concurrency limiter, and per-tenant breakers. All time is explicit —
// callers pass the current instant — so the same logic runs under the
// real TCP server (writer virtual clock) and the open-loop simulator.
// Safe for concurrent use.
type Admission struct {
	mu       sync.Mutex
	cfg      AdmissionConfig
	tenants  map[uint16]*tenantState
	inflight int
}

// NewAdmission builds the admission plane.
func NewAdmission(cfg AdmissionConfig) *Admission {
	return &Admission{cfg: cfg, tenants: make(map[uint16]*tenantState)}
}

func (a *Admission) tenant(id uint16) *tenantState {
	ts := a.tenants[id]
	if ts == nil {
		q, ok := a.cfg.Quotas[id]
		if !ok {
			q = a.cfg.DefaultQuota
		}
		ts = &tenantState{tokens: q.Burst, quota: q}
		a.tenants[id] = ts
	}
	return ts
}

func (a *Admission) capacity() int {
	if a.cfg.CapacityFn != nil {
		if c := a.cfg.CapacityFn(); c > 0 {
			return c
		}
	}
	return DefaultCapacity
}

// Capacity reports the current global concurrency bound.
func (a *Admission) Capacity() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.capacity()
}

// Inflight reports the admitted-but-not-completed count.
func (a *Admission) Inflight() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight
}

func (a *Admission) retryAfter(d time.Duration) uint64 {
	if d < a.cfg.RetryAfterMin {
		d = a.cfg.RetryAfterMin
	}
	if d <= 0 {
		d = time.Millisecond
	}
	return uint64(d)
}

// Admit decides one request's fate at instant now. An admitted request
// holds one slot of the global concurrency capacity until Done is
// called. Rejections feed the tenant's breaker: enough in a row and the
// tenant is shed outright for the cooldown, keeping a quota-blowing
// tenant from hammering the shared front door.
func (a *Admission) Admit(tenantID uint16, now time.Duration) Decision {
	a.mu.Lock()
	defer a.mu.Unlock()
	ts := a.tenant(tenantID)

	if ts.openTill > 0 {
		if now < ts.openTill {
			return Decision{Status: StatusBreaker, RetryAfterNS: a.retryAfter(ts.openTill - now)}
		}
		// Cooldown over: half-open — let requests probe again.
		ts.openTill = 0
		ts.consec = 0
	}

	dec := Decision{Admit: true}
	if ts.quota.Rate > 0 {
		// Refill, then spend.
		elapsed := now - time.Duration(ts.lastNS)
		if elapsed > 0 {
			ts.tokens += ts.quota.Rate * elapsed.Seconds()
			if ts.tokens > ts.quota.Burst {
				ts.tokens = ts.quota.Burst
			}
		}
		ts.lastNS = int64(now)
		if ts.tokens < 1 {
			need := (1 - ts.tokens) / ts.quota.Rate // seconds until one token
			dec = Decision{Status: StatusOverload, RetryAfterNS: a.retryAfter(time.Duration(need * float64(time.Second)))}
		}
	}
	if dec.Admit && a.inflight >= a.capacity() {
		dec = Decision{Status: StatusOverload, RetryAfterNS: a.retryAfter(a.cfg.RetryAfterMin)}
	}

	if !dec.Admit {
		ts.consec++
		if a.cfg.BreakerTrip > 0 && ts.consec >= a.cfg.BreakerTrip {
			ts.openTill = now + a.cfg.BreakerCooldown
		}
		return dec
	}
	ts.tokens--
	ts.consec = 0
	a.inflight++
	return dec
}

// Done releases one admitted request's concurrency slot.
func (a *Admission) Done() {
	a.mu.Lock()
	if a.inflight > 0 {
		a.inflight--
	}
	a.mu.Unlock()
}
