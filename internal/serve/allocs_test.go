package serve

import (
	"testing"

	"asymnvm/internal/arena"
)

// CI gate for the wire codec's zero-alloc contract: framing a request
// and a response into reused buffers and decoding them back through an
// arena must not touch the heap in steady state. AllocsPerRun is
// deterministic, so this runs in plain `go test`; wall-clock throughput
// is bench-cpu's job.

func TestRequestFramingZeroAllocs(t *testing.T) {
	val := make([]byte, 100)
	for i := range val {
		val[i] = byte(i)
	}
	req := Request{Op: OpPut, ID: 42, Tenant: 7, BudgetNS: 1e6, Key: 99, Val: val}
	var (
		buf []byte
		dec Request
		a   arena.Arena
		err error
	)
	// Warm: size buf, dec's slices, and the arena chunk.
	if buf, err = req.AppendFramed(buf[:0]); err != nil {
		t.Fatal(err)
	}
	if err := DecodeRequestInto(&dec, buf[4:], &a); err != nil {
		t.Fatal(err)
	}
	a.Reset()

	allocs := testing.AllocsPerRun(200, func() {
		buf, err = req.AppendFramed(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		if err := DecodeRequestInto(&dec, buf[4:], &a); err != nil {
			t.Fatal(err)
		}
		a.Reset()
	})
	if allocs != 0 {
		t.Errorf("request frame+decode round trip allocates %.1f/op, want 0", allocs)
	}
	if dec.Op != req.Op || dec.ID != req.ID || dec.Key != req.Key || string(dec.Val) != string(val) {
		t.Fatalf("decode mismatch: %+v", dec)
	}
}

func TestMultiRequestFramingZeroAllocs(t *testing.T) {
	req := Request{Op: OpPutMulti, ID: 1, Keys: []uint64{1, 2, 3}, Vals: [][]byte{{0xA}, {0xB, 0xB}, {0xC}}}
	var (
		buf []byte
		dec Request
		a   arena.Arena
		err error
	)
	if buf, err = req.AppendFramed(buf[:0]); err != nil {
		t.Fatal(err)
	}
	if err := DecodeRequestInto(&dec, buf[4:], &a); err != nil {
		t.Fatal(err)
	}
	a.Reset()

	allocs := testing.AllocsPerRun(200, func() {
		buf, err = req.AppendFramed(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		if err := DecodeRequestInto(&dec, buf[4:], &a); err != nil {
			t.Fatal(err)
		}
		a.Reset()
	})
	if allocs != 0 {
		t.Errorf("putmulti frame+decode round trip allocates %.1f/op, want 0", allocs)
	}
	if len(dec.Keys) != 3 || len(dec.Vals) != 3 || string(dec.Vals[1]) != "\x0b\x0b" {
		t.Fatalf("decode mismatch: %+v", dec)
	}
}

func TestResponseFramingZeroAllocs(t *testing.T) {
	val := make([]byte, 100)
	resp := Response{Status: StatusOK, ID: 42, Found: true, Val: val}
	var (
		buf []byte
		dec Response
		a   arena.Arena
		err error
	)
	if buf, err = resp.AppendFramed(buf[:0]); err != nil {
		t.Fatal(err)
	}
	if err := DecodeResponseInto(&dec, buf[4:], &a); err != nil {
		t.Fatal(err)
	}
	a.Reset()

	allocs := testing.AllocsPerRun(200, func() {
		buf, err = resp.AppendFramed(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		if err := DecodeResponseInto(&dec, buf[4:], &a); err != nil {
			t.Fatal(err)
		}
		a.Reset()
	})
	if allocs != 0 {
		t.Errorf("response frame+decode round trip allocates %.1f/op, want 0", allocs)
	}
	if !dec.Found || len(dec.Val) != 100 || dec.ID != 42 {
		t.Fatalf("decode mismatch: %+v", dec)
	}
}

// TestAppendFramedMatchesWriteFrame pins that the one-pass framed
// encoding is byte-identical to Encode + WriteFrame.
func TestAppendFramedMatchesWriteFrame(t *testing.T) {
	reqs := []Request{
		{Op: OpGet, ID: 1, Key: 5},
		{Op: OpPut, ID: 2, Key: 5, Val: []byte("hello")},
		{Op: OpGetMulti, ID: 3, Keys: []uint64{1, 2}},
		{Op: OpPing, ID: 4},
	}
	for _, req := range reqs {
		framed, err := req.AppendFramed(nil)
		if err != nil {
			t.Fatal(err)
		}
		var want frameSink
		if err := WriteFrame(&want, req.Encode()); err != nil {
			t.Fatal(err)
		}
		if string(framed) != string(want) {
			t.Fatalf("op %d: framed bytes diverge from WriteFrame", req.Op)
		}
	}
	resp := Response{Status: StatusOK, ID: 9, Founds: []bool{true, false}, Vals: [][]byte{[]byte("x"), nil}}
	framed, err := resp.AppendFramed(nil)
	if err != nil {
		t.Fatal(err)
	}
	var want frameSink
	if err := WriteFrame(&want, resp.Encode()); err != nil {
		t.Fatal(err)
	}
	if string(framed) != string(want) {
		t.Fatal("response framed bytes diverge from WriteFrame")
	}
}

type frameSink []byte

func (s *frameSink) Write(p []byte) (int, error) {
	*s = append(*s, p...)
	return len(p), nil
}
