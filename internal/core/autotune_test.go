package core

import (
	"testing"
	"time"

	"asymnvm/internal/backend"
	"asymnvm/internal/clock"
	"asymnvm/internal/nvm"
)

// feedCommits pushes n identical commit observations into the controller.
func feedCommits(t *autoTuner, n int, d time.Duration) (changed int) {
	for i := 0; i < n; i++ {
		t.observeCommit(d)
		if t.onCommit() {
			changed++
		}
	}
	return changed
}

// TestAutoTunerSlowStartRampsToCeilings: constant commit latency means
// every bigger batch amortizes better, so the controller must double both
// knobs up to the static ceilings and then hold.
func TestAutoTunerSlowStartRampsToCeilings(t *testing.T) {
	tn := newAutoTuner(Mode{Batch: 16, Pipeline: 8})
	if tn.batch != 1 || tn.depth != 1 {
		t.Fatalf("controller must start at (1,1), got (%d,%d)", tn.batch, tn.depth)
	}
	feedCommits(tn, 40, time.Millisecond)
	if tn.batch != 16 || tn.depth != 8 {
		t.Fatalf("ramp ended at (B=%d,depth=%d), want the (16,8) ceilings", tn.batch, tn.depth)
	}
	if tn.additive {
		t.Fatal("no regression was fed; controller must still be in slow start")
	}
	// Holding at the ceiling must not oscillate.
	if n := feedCommits(tn, 20, time.Millisecond); n != 0 {
		t.Fatalf("controller changed settings %d times while pinned at the ceiling", n)
	}
}

// TestAutoTunerBacksOffOnRegression: a latency blow-up beyond the
// headroom must halve the knobs and switch to additive increase.
func TestAutoTunerBacksOffOnRegression(t *testing.T) {
	tn := newAutoTuner(Mode{Batch: 16, Pipeline: 8})
	feedCommits(tn, 40, time.Millisecond)
	feedCommits(tn, tuneEvalEvery, 500*time.Millisecond) // regression window
	if tn.batch != 8 || tn.depth != 4 {
		t.Fatalf("after regression got (B=%d,depth=%d), want the halved (8,4)", tn.batch, tn.depth)
	}
	if !tn.additive {
		t.Fatal("regression must flip the controller to additive increase")
	}
	// Recovery is additive now: +max(1, max/8) per improving window.
	before := tn.batch
	feedCommits(tn, tuneEvalEvery, time.Millisecond)  // re-baseline (improvement)
	feedCommits(tn, tuneEvalEvery, time.Millisecond)  // first additive step
	if tn.batch != before+2+2 && tn.batch != before+2 {
		t.Fatalf("additive recovery took batch from %d to %d, want +2 per window", before, tn.batch)
	}
	if tn.batch > 16 || tn.depth > 8 {
		t.Fatalf("controller exceeded its ceilings: (B=%d,depth=%d)", tn.batch, tn.depth)
	}
}

// TestAutoTunerFloorsAtOne: sustained regressions can never push the
// knobs below 1.
func TestAutoTunerFloorsAtOne(t *testing.T) {
	tn := newAutoTuner(Mode{Batch: 8, Pipeline: 8})
	feedCommits(tn, 20, time.Millisecond)
	// Alternate tiny/huge windows so every evaluation is a regression.
	for i := 0; i < 20; i++ {
		feedCommits(tn, tuneEvalEvery, time.Millisecond)
		feedCommits(tn, tuneEvalEvery, time.Second)
	}
	if tn.batch < 1 || tn.depth < 1 {
		t.Fatalf("knobs fell below 1: (B=%d,depth=%d)", tn.batch, tn.depth)
	}
}

// TestAutoTuneDeterministicConverges runs the same committed workload
// twice under Mode.AutoTune on the virtual clock: both runs must take the
// identical controller trajectory (same final knobs, same step count,
// same virtual time) and actually move off the (1,1) start.
func TestAutoTuneDeterministicConverges(t *testing.T) {
	run := func() (int64, int64, int64, int64, time.Duration) {
		prof := clock.DefaultProfile()
		dev := nvm.NewDevice(64 << 20)
		bk, err := backend.New(dev, backend.Options{ID: 0, Profile: &prof})
		if err != nil {
			t.Fatal(err)
		}
		bk.Start()
		defer bk.Stop()
		fe := NewFrontend(FrontendOptions{ID: 1, Mode: Mode{OpLog: true, Batch: 16, Pipeline: 8}.WithAutoTune(), Profile: &prof})
		c, err := fe.Connect(bk)
		if err != nil {
			t.Fatal(err)
		}
		h, err := c.Create("tune", backend.TypeApp, smallOpts)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.WriterLock(); err != nil {
			t.Fatal(err)
		}
		addr, err := c.Malloc(64)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 64)
		for i := 0; i < 400; i++ {
			if _, err := h.OpLog(1, buf[:8]); err != nil {
				t.Fatal(err)
			}
			buf[0] = byte(i)
			if err := h.Write(addr, buf); err != nil {
				t.Fatal(err)
			}
			if err := h.EndOp(); err != nil {
				t.Fatal(err)
			}
		}
		if err := h.Flush(); err != nil {
			t.Fatal(err)
		}
		snap := fe.Stats().Snapshot()
		return snap.AutoTuneSteps, snap.AutoTuneBatch, snap.AutoTuneDepth, snap.TxCommits, fe.Clock().Now()
	}
	s1, b1, d1, c1, t1 := run()
	s2, b2, d2, c2, t2 := run()
	if s1 != s2 || b1 != b2 || d1 != d2 || c1 != c2 || t1 != t2 {
		t.Fatalf("autotune not deterministic: run1 (steps=%d B=%d depth=%d commits=%d now=%v), run2 (steps=%d B=%d depth=%d commits=%d now=%v)",
			s1, b1, d1, c1, t1, s2, b2, d2, c2, t2)
	}
	if s1 == 0 {
		t.Fatal("controller never stepped off (1,1)")
	}
	if b1 < 2 || d1 < 2 {
		t.Fatalf("controller converged to (B=%d,depth=%d); expected growth past the start", b1, d1)
	}
}
