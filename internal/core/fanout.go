package core

import (
	"fmt"

	"asymnvm/internal/logrec"
	"asymnvm/internal/rdma"
	"asymnvm/internal/trace"
)

// Cross-backend fan-out orchestration: the handle-level posted variants
// of ReadMulti and Flush. A caller holding handles on several back-ends
// brackets a scatter/gather episode with Frontend.BeginFanout, posts work
// on every connection (PostReadMulti / FlushAsync), and only then settles
// the pending results — so the doorbell groups on the different links fly
// concurrently and the episode costs max-over-backends instead of
// sum-over-backends. The fault story is unchanged: completions surface
// per connection, and a faulted group is re-driven synchronously through
// the connection's retry/failover policy, exactly like the async op-log
// flush settled at EndOp.

// Fanout brackets a cross-backend fan-out accounting window (see
// rdma/fanout.go). A zero Fanout is valid and inert.
type Fanout struct {
	w *rdma.FanoutWindow
}

// BeginFanout opens a fan-out window over the given connections'
// endpoints (duplicates and nils are skipped). All connections must
// belong to this front-end — they share its virtual clock.
func (fe *Frontend) BeginFanout(conns ...*Conn) *Fanout {
	var eps []*rdma.Endpoint
	seen := make(map[*rdma.Endpoint]bool, len(conns))
	for _, c := range conns {
		if c == nil || seen[c.ep] {
			continue
		}
		seen[c.ep] = true
		eps = append(eps, c.ep)
	}
	return &Fanout{w: rdma.BeginFanout(fe.st, eps...)}
}

// End closes the window and credits the cross-connection savings.
func (f *Fanout) End() {
	if f != nil {
		f.w.End()
	}
}

// PendingReads is an in-flight multi-get posted by PostReadMulti. Its
// results become valid only after Settle returns nil.
type PendingReads struct {
	h         *Handle
	out       [][]byte
	addrs     []uint64
	missIdx   []int
	ops       []rdma.ReadOp
	toks      []rdma.Token
	cacheable bool
	posted    bool
}

// PostReadMulti is the posted half of ReadMulti: overlay and cache hits
// are resolved inline, and the misses are posted as one doorbell group on
// this handle's connection WITHOUT waiting for completion, so the caller
// may post on other connections before settling any of them. On a
// connection without the pipeline the reads are performed synchronously
// and Settle just hands the results over. Results index-match addrs after
// Settle.
func (h *Handle) PostReadMulti(addrs []uint64, n int, cacheable bool) (*PendingReads, error) {
	if !h.c.pipelined() {
		out, err := h.ReadMulti(addrs, n, cacheable)
		if err != nil {
			return nil, err
		}
		return &PendingReads{out: out}, nil
	}
	fe := h.c.fe
	p := &PendingReads{h: h, cacheable: cacheable, out: make([][]byte, len(addrs)), addrs: addrs}
	for i, addr := range addrs {
		if h.writer && h.overlay != nil {
			if e, ok := h.overlay[addr]; ok {
				if len(e.data) != n {
					return nil, fmt.Errorf("%w: addr %#x unit %d, read %d", ErrUnitMismatch, addr, len(e.data), n)
				}
				fe.clk.Advance(fe.prof.DRAMAccess)
				fe.tr.Charge(trace.KindCacheHit, fe.prof.DRAMAccess)
				p.out[i] = append([]byte(nil), e.data...)
				continue
			}
		}
		if fe.cache != nil {
			if b, ok := fe.cache.Get(addr, h.readEpoch(), cacheable); ok && len(b) >= n {
				fe.clk.Advance(fe.prof.DRAMAccess)
				fe.tr.Charge(trace.KindCacheHit, fe.prof.DRAMAccess)
				p.out[i] = append([]byte(nil), b[:n]...)
				continue
			}
		}
		off, err := h.devOff(addr)
		if err != nil {
			return nil, err
		}
		buf := make([]byte, n)
		p.out[i] = buf
		p.missIdx = append(p.missIdx, i)
		p.ops = append(p.ops, rdma.ReadOp{Off: off, Buf: buf})
	}
	if len(p.ops) == 0 {
		return p, nil
	}
	p.posted = true
	fe.tr.BeginArg(trace.KindFetch, uint64(len(p.ops)))
	p.toks = make([]rdma.Token, len(p.ops))
	for i, op := range p.ops {
		p.toks[i] = h.c.ep.PostRead(op.Off, op.Buf)
	}
	h.c.ep.Doorbell()
	fe.tr.End()
	return p, nil
}

// Settle waits the posted reads out and returns the results. A faulted
// completion re-drives the whole miss set synchronously through the
// retry/failover policy — re-posting one-sided reads is idempotent.
func (p *PendingReads) Settle() ([][]byte, error) {
	if p == nil {
		return nil, nil
	}
	if !p.posted {
		return p.out, nil
	}
	p.posted = false
	h := p.h
	fe := h.c.fe
	var failed bool
	for _, tok := range p.toks {
		if h.c.ep.Wait(tok) != nil {
			failed = true
		}
	}
	if failed {
		fe.st.VerbRetries.Add(1)
		if err := h.c.epReadV(p.ops); err != nil {
			return nil, err
		}
	}
	if h.cacheOn(p.cacheable) {
		for _, i := range p.missIdx {
			fe.cache.Put(p.addrs[i], p.out[i], h.tag, h.readEpoch())
		}
	}
	return p.out, nil
}

// PendingFlush is an in-flight batch flush posted by FlushAsync. The
// handle must not run further operations until Settle returns.
type PendingFlush struct {
	h       *Handle
	toks    []rdma.Token
	groups  [][]rdma.WriteOp
	opBuf   []byte // op-log bytes owned by the in-flight WRs until Settle
	wireLen int
	hasTx   bool
	settled bool
}

// FlushAsync is the posted half of Flush: the op-log group commit and the
// pending rnvm_tx_write record are posted under one doorbell — like
// flushPipelined — but not waited for, so flushes on other back-ends can
// be posted before any of them is settled. On a connection without the
// pipeline it degrades to a synchronous Flush and returns an inert
// PendingFlush.
func (h *Handle) FlushAsync() (*PendingFlush, error) {
	if !h.writer || !h.c.fe.mode.OpLog {
		return &PendingFlush{}, nil
	}
	if !h.c.pipelined() {
		return &PendingFlush{}, h.Flush()
	}
	if err := h.settleAsyncOps(); err != nil {
		return nil, err
	}
	h.commitT0 = h.c.fe.clk.Now()
	tr := h.c.fe.tr
	tr.BeginArg(trace.KindCommit, uint64(len(h.pending)))
	defer tr.End()
	if err := h.waitOpSpace(); err != nil {
		return nil, err
	}
	pf := &PendingFlush{h: h}
	if len(h.pending) > 0 {
		rec := logrec.TxRecord{
			DSSlot:  h.slot,
			Abs:     h.memTail,
			CoverOp: h.coveredOp,
			Entries: h.pending,
		}
		// The handle runs no further operations until Settle, so the
		// shared tx scratch stays untouched while the WR is in flight.
		wire := rec.AppendTo(h.txBuf[:0])
		h.txBuf = wire
		if err := h.waitMemSpace(len(wire)); err != nil {
			return nil, err
		}
		if h.opBufCnt > 0 {
			pf.groups = append(pf.groups, h.areaWriteOps(h.opArea, h.opBufAbs, h.opBuf))
		}
		pf.groups = append(pf.groups, h.areaWriteOps(h.memArea, h.memTail, wire))
		pf.wireLen = len(wire)
		pf.hasTx = true
	} else if h.opBufCnt > 0 {
		pf.groups = append(pf.groups, h.areaWriteOps(h.opArea, h.opBufAbs, h.opBuf))
	}
	if len(pf.groups) == 0 {
		pf.settled = true
		return pf, nil
	}
	for _, g := range pf.groups {
		pf.toks = append(pf.toks, h.c.ep.PostWriteV(g))
	}
	h.c.ep.Doorbell()
	if h.opBufCnt > 0 {
		// The backing array belongs to the in-flight WR until Settle,
		// which recycles it into the handle's freelist.
		pf.opBuf = h.opBuf
		h.opBuf = h.takeBuf()
		h.opBufCnt = 0
	}
	h.c.kick()
	return pf, nil
}

// Settle waits the posted flush out and completes the commit. A faulted
// completion re-drives every group synchronously through the
// retry/failover policy — rewriting the same log bytes at the same
// offsets is idempotent, like the sync path's retry.
func (pf *PendingFlush) Settle() error {
	if pf == nil || pf.h == nil || pf.settled {
		return nil
	}
	pf.settled = true
	h := pf.h
	var failed bool
	for _, tok := range pf.toks {
		if h.c.ep.Wait(tok) != nil {
			failed = true
		}
	}
	if failed {
		h.c.fe.st.VerbRetries.Add(1)
		if err := h.c.epWriteGroups(pf.groups...); err != nil {
			return err
		}
	}
	if pf.opBuf != nil {
		h.bufFree = append(h.bufFree, pf.opBuf[:0])
		pf.opBuf = nil
	}
	if pf.hasTx {
		return h.finishTx(pf.wireLen)
	}
	h.c.kick()
	return nil
}
