package core

import (
	"bytes"
	"testing"

	"asymnvm/internal/stats"
)

func newCache(capacity int64, p Policy) (*Cache, *stats.Stats) {
	st := &stats.Stats{}
	return NewCache(capacity, p, st), st
}

func TestCachePutGet(t *testing.T) {
	c, st := newCache(1<<20, PolicyHybrid)
	c.Put(100, []byte("hello"), 1, EpochAlways)
	got, ok := c.Get(100, 0, true)
	if !ok || !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("get: %q %v", got, ok)
	}
	if _, ok := c.Get(200, 0, true); ok {
		t.Fatal("absent key hit")
	}
	s := st.Snapshot()
	if s.CacheHit != 1 || s.CacheMiss != 1 {
		t.Fatalf("counters: %+v", s)
	}
}

func TestCacheUncountedMiss(t *testing.T) {
	c, st := newCache(1<<20, PolicyHybrid)
	if _, ok := c.Get(1, 0, false); ok {
		t.Fatal("hit on empty cache")
	}
	if st.Snapshot().CacheMiss != 0 {
		t.Fatal("direct-read miss must not count")
	}
}

func TestCacheEpochInvalidation(t *testing.T) {
	c, _ := newCache(1<<20, PolicyHybrid)
	c.Put(5, []byte("v1"), 0, 10)
	if _, ok := c.Get(5, 10, true); !ok {
		t.Fatal("same-epoch entry must hit")
	}
	// A different seqlock epoch invalidates the entry.
	if _, ok := c.Get(5, 12, true); ok {
		t.Fatal("stale-epoch entry must miss")
	}
	if c.Contains(5) {
		t.Fatal("stale entry must be dropped")
	}
	// EpochAlways entries survive any epoch.
	c.Put(6, []byte("v2"), 0, EpochAlways)
	if _, ok := c.Get(6, 999, true); !ok {
		t.Fatal("EpochAlways entry must hit")
	}
}

func TestCacheUpdateWriteThrough(t *testing.T) {
	c, _ := newCache(1<<20, PolicyHybrid)
	c.Put(7, []byte("aaaa"), 0, EpochAlways)
	if !c.Update(7, 1, []byte("XY")) {
		t.Fatal("update of present entry failed")
	}
	got, _ := c.Get(7, 0, true)
	if string(got) != "aXYa" {
		t.Fatalf("write-through got %q", got)
	}
	if c.Update(99, 0, []byte("z")) {
		t.Fatal("update of absent entry must report false")
	}
	// Out-of-range update drops the entry rather than corrupting it.
	if c.Update(7, 3, []byte("toolong")) {
		t.Fatal("out-of-range update must fail")
	}
	if c.Contains(7) {
		t.Fatal("mismatched entry must be dropped")
	}
}

func TestCacheCapacityEviction(t *testing.T) {
	c, st := newCache(1024, PolicyLRU)
	for i := uint64(0); i < 32; i++ {
		c.Put(i, make([]byte, 64), 0, EpochAlways) // 2 KiB total demand
	}
	if c.Used() > 1024 {
		t.Fatalf("cache overfull: %d", c.Used())
	}
	if st.Snapshot().CacheEvict == 0 {
		t.Fatal("no evictions recorded")
	}
	// LRU: the most recent entries survive.
	if _, ok := c.Get(31, 0, true); !ok {
		t.Fatal("most recent entry evicted under LRU")
	}
	if _, ok := c.Get(0, 0, true); ok {
		t.Fatal("oldest entry survived under LRU")
	}
}

func TestCacheOversizeBypass(t *testing.T) {
	c, _ := newCache(128, PolicyHybrid)
	c.Put(1, make([]byte, 256), 0, EpochAlways)
	if c.Len() != 0 {
		t.Fatal("oversize entry must bypass the cache")
	}
}

func TestCacheInvalidateTagAndClear(t *testing.T) {
	c, _ := newCache(1<<20, PolicyHybrid)
	c.Put(1, []byte("a"), 7, EpochAlways)
	c.Put(2, []byte("b"), 7, EpochAlways)
	c.Put(3, []byte("c"), 8, EpochAlways)
	c.InvalidateTag(7)
	if c.Contains(1) || c.Contains(2) || !c.Contains(3) {
		t.Fatal("tag invalidation wrong")
	}
	c.Clear()
	if c.Len() != 0 || c.Used() != 0 {
		t.Fatal("clear left state")
	}
}

func TestCacheHybridKeepsHotEntries(t *testing.T) {
	c, _ := newCache(64*100, PolicyHybrid) // room for 100 entries
	// 20 hot keys touched constantly, 2000 cold keys streaming through.
	for round := 0; round < 50; round++ {
		for k := uint64(0); k < 20; k++ {
			if _, ok := c.Get(k, 0, true); !ok {
				c.Put(k, make([]byte, 64), 0, EpochAlways)
			}
		}
		for k := uint64(1000 + 40*round); k < uint64(1000+40*round+40); k++ {
			if _, ok := c.Get(k, 0, true); !ok {
				c.Put(k, make([]byte, 64), 0, EpochAlways)
			}
		}
	}
	hot := 0
	for k := uint64(0); k < 20; k++ {
		if c.Contains(k) {
			hot++
		}
	}
	if hot < 15 {
		t.Fatalf("hybrid policy retained only %d/20 hot entries", hot)
	}
}

func TestCacheReplacePolicyRandomStillBounded(t *testing.T) {
	c, _ := newCache(64*10, PolicyRR)
	for i := uint64(0); i < 1000; i++ {
		c.Put(i, make([]byte, 64), 0, EpochAlways)
	}
	if c.Len() > 10 {
		t.Fatalf("RR cache overfull: %d entries", c.Len())
	}
}

// TestCacheInvalidateTagIndexed pins the per-tag index: invalidating one
// structure's entries must visit only that tag's set, not the whole map.
func TestCacheInvalidateTagIndexed(t *testing.T) {
	c, _ := newCache(64*20000, PolicyLRU)
	const bulk, tagged = 10000, 10
	for i := uint64(0); i < bulk; i++ {
		c.Put(i, make([]byte, 64), 1, EpochAlways)
	}
	for i := uint64(bulk); i < bulk+tagged; i++ {
		c.Put(i, make([]byte, 64), 2, EpochAlways)
	}
	c.InvalidateTag(2)
	if c.tagScanned != tagged {
		t.Fatalf("InvalidateTag(2) scanned %d entries, want exactly %d (per-tag index)", c.tagScanned, tagged)
	}
	if c.Len() != bulk {
		t.Fatalf("cache holds %d entries after invalidation, want %d", c.Len(), bulk)
	}
	for i := uint64(bulk); i < bulk+tagged; i++ {
		if c.Contains(i) {
			t.Fatalf("entry %d survived InvalidateTag", i)
		}
	}
	// An absent tag scans nothing.
	c.InvalidateTag(9)
	if c.tagScanned != 0 {
		t.Fatalf("InvalidateTag(9) scanned %d entries, want 0", c.tagScanned)
	}
}

// TestCacheTagIndexConsistency exercises the index across replacement
// (tag changes on Put), eviction, Clear and re-fill.
func TestCacheTagIndexConsistency(t *testing.T) {
	c, _ := newCache(64*8, PolicyLRU)
	for i := uint64(0); i < 8; i++ {
		c.Put(i, make([]byte, 64), 1, EpochAlways)
	}
	// Re-tag half of them in place.
	for i := uint64(0); i < 4; i++ {
		c.Put(i, make([]byte, 64), 2, EpochAlways)
	}
	c.InvalidateTag(1)
	if c.tagScanned != 4 || c.Len() != 4 {
		t.Fatalf("after re-tag: scanned %d (want 4), len %d (want 4)", c.tagScanned, c.Len())
	}
	// Evictions must drop entries out of the index too.
	for i := uint64(100); i < 116; i++ {
		c.Put(i, make([]byte, 64), 3, EpochAlways)
	}
	c.InvalidateTag(2)
	if c.tagScanned != 0 {
		t.Fatalf("tag-2 entries evicted but index still held %d", c.tagScanned)
	}
	c.Clear()
	c.Put(7, make([]byte, 64), 3, EpochAlways)
	c.InvalidateTag(3)
	if c.tagScanned != 1 || c.Len() != 0 {
		t.Fatalf("after Clear+refill: scanned %d (want 1), len %d (want 0)", c.tagScanned, c.Len())
	}
}

// BenchmarkCacheInvalidateTag measures per-structure invalidation with a
// large foreign population — the case the per-tag index exists for.
func BenchmarkCacheInvalidateTag(b *testing.B) {
	c, _ := newCache(64*200001, PolicyLRU)
	for i := uint64(0); i < 200000; i++ {
		c.Put(i, make([]byte, 64), 1, EpochAlways)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Put(1<<40, make([]byte, 64), 2, EpochAlways)
		c.InvalidateTag(2)
	}
}
