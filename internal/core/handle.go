package core

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"asymnvm/internal/backend"
	"asymnvm/internal/logrec"
	"asymnvm/internal/rdma"
	"asymnvm/internal/trace"
)

// Write-path tuning knobs.
const (
	// hintEvery spaces out the advisory tail-hint persists (§5.1 metadata),
	// keeping them off the per-operation path.
	hintEvery = 16
	// pruneMarks bounds the number of un-pruned flush marks before the
	// overlay consults the back-end LPN.
	pruneMarks = 48
	// gcDelayFlushes and gcMinAge together form the lazy-reclamation
	// delay of §6.2 (the paper waits n+l µs and requires every pending
	// reader operation to finish within n µs). The flush-count part ties
	// reclamation to write progress; the host-time floor covers readers
	// whose goroutines the host descheduled mid-traversal — the
	// simulator's equivalent of the paper's timing assumption.
	gcDelayFlushes = 8
	gcMinAge       = 200 * time.Millisecond
	// pollLimit bounds remote polling loops so a wedged back-end surfaces
	// as an error instead of a hang.
	pollLimit = 1 << 22
)

// ErrNotWriter is returned when a read-only handle performs a write.
var ErrNotWriter = errors.New("core: handle is not in writer mode")

// ErrRootConflict reports a lost publication race in multi-writer MV mode
// (RedirectRoot): the root CAS found the shared root moved by a
// concurrent front-end after this operation read it. The operation left
// no visible effect (its nodes are applied but unreachable) and can be
// re-executed after backoff.
var ErrRootConflict = errors.New("core: shared root moved by a concurrent writer")

// ErrUnitMismatch reports a read whose length differs from the unit the
// writer previously logged at that address. Data-structure code must read
// and write at matching unit granularity (a whole node, or a standalone
// word) — this is what keeps the overlay, the cache and replay coherent.
var ErrUnitMismatch = errors.New("core: read length does not match written unit")

// ovEntry is one overlay unit: the writer's freshest bytes for an address
// whose memory logs have not been confirmed replayed yet.
type ovEntry struct {
	data []byte
	refs int // flush marks (plus the pending tx) still referencing it
}

// undoEnt records the overlay bytes one in-window rewrite displaced
// (arena-sliced to keep the hot path allocation-steady). An abort
// replays these in reverse so a unit still referenced by earlier flush
// marks reverts to its pre-transaction value — without it, the aborted
// bytes would stay authoritative in the overlay and surface uncommitted
// state to every later read.
type undoEnt struct {
	addr uint64
	off  int
	len  int
}

// flushMark remembers which overlay units one flushed transaction wrote,
// and the memory-log offset its replay completion is visible at.
type flushMark struct {
	endAbs uint64
	addrs  []uint64
}

// asyncOpFlush is one posted-but-unsettled op-log flush: the completion
// token and the posted payload, retained for an idempotent synchronous
// re-issue if the completion carries a fault. buf is the op buffer the
// ops slice into; settling recycles it through the handle's freelist.
type asyncOpFlush struct {
	tok rdma.Token
	ops []rdma.WriteOp
	buf []byte
}

// gcItem is a lazily reclaimed old-version allocation (§6.2).
type gcItem struct {
	addr   uint64
	size   int
	after  int // flushCnt after which release is safe
	bornAt time.Time
}

// Handle is a front-end's session with one persistent data structure: the
// rnvm_* API of Table 1 bound to a naming-table slot.
type Handle struct {
	c    *Conn
	slot uint16
	typ  uint8
	tag  uint32
	mv   bool // multi-version: immutable nodes, no seqlock needed

	auxAddr uint64 // global address of the aux block
	memArea logrec.Area
	opArea  logrec.Area

	// Writer-side state (valid when writer is true).
	writer       bool
	lockHeld     bool
	// shared marks the writer lock as contended by other front-ends
	// (striped structures): acquisition resyncs the log tails from the
	// durable hints the previous holder left, and release drains so the
	// next holder's resync is exact. lockPin suppresses per-operation
	// WriterUnlock brackets while a multi-stripe ordered lock set is held
	// (see LockOrdered).
	shared  bool
	lockPin int
	// rootCAS redirects root access to another slot's root word and
	// publishes updates with compare-and-swap instead of the log path —
	// the lock-free multi-writer mode of MV structures. rootSeen is the
	// root value the current operation's traversal started from; the CAS
	// failing against it surfaces as ErrRootConflict.
	rootCAS     bool
	rootCASSlot uint16
	rootSeen    uint64
	memTail      uint64
	opTail       uint64
	lpnKnown     uint64
	opnKnown     uint64
	// Log append-space gates. With the compaction plane, reclaimed space
	// is bounded by the truncation points, not the replay cursors: the
	// back-end may have applied a record (LPN past it) without having
	// made the application durable yet, so the bytes are not reusable.
	// Without compaction the back-end advances both in lockstep.
	memTruncKnown uint64
	opTruncKnown  uint64
	pending      []logrec.MemEntry
	pendingAddrs []uint64
	coveredOp    uint64
	opsInTx      int
	opBuf        []byte
	opBufAbs     uint64
	opBufCnt     int
	asyncOps     []asyncOpFlush
	// txBuf is the commit record's reused encode scratch (safe because
	// every flush path waits its WRs out before the next encode). bufFree
	// recycles op buffers whose ownership moved to in-flight WRs once
	// those WRs settle.
	txBuf   []byte
	bufFree [][]byte
	overlay      map[uint64]*ovEntry
	ovSeq        uint64
	marks        []flushMark
	gcList       []gcItem
	// gcTxStart is gcList's length at the last transaction boundary;
	// aborts truncate back to it, un-scheduling DelayedFrees the rolled
	// back operations issued against nodes that remain live.
	gcTxStart int
	// undoLog/undoArena hold the displaced overlay values of the current
	// flush window (see undoEnt); cleared at every window close.
	undoLog   []undoEnt
	undoArena []byte
	flushCnt  int
	inFlush   bool

	// opGroupCommit defers op-log flushes to the batch boundary. Off by
	// default: §4.3's write durability point is the op-log persist, so
	// each operation flushes its op record immediately (Figure 2, line
	// 15). Stack and queue enable it — their §8.1 annihilation keeps
	// "un-executed operation logs in the front-end memory", trading a
	// bounded durability window for group commit.
	opGroupCommit bool

	// commitT0 is the virtual time the in-progress commit flush started
	// at, the controller's latency sample boundary (autotune.go).
	commitT0 time.Duration

	// hold2pc marks the handle enrolled in a cross-shard transaction
	// (twopc.go): batch-quota flushes are suppressed so the buffered
	// memory logs leave the front-end only inside a PrepareRecord.
	hold2pc bool
	// inDoubt / unEnded are populated by the writer's recovery scan
	// (recoverTails): prepares with no resolving decision in this log,
	// and coordinator commit records not yet forgotten by a KindEnd.
	// RecoverTx consumes them.
	inDoubt []logrec.PrepareRecord
	unEnded []uint64

	// Reader-side state.
	curSN uint64
}

// SetOpGroupCommit enables op-log group commit (stack/queue, §8.1).
func (h *Handle) SetOpGroupCommit(on bool) { h.opGroupCommit = on }

// SetSharedWriter marks the handle's writer lock as shared between
// front-ends: WriterLock resyncs the durable log tails on every
// acquisition and WriterUnlock drains before handing the stripe off.
func (h *Handle) SetSharedWriter(on bool) { h.shared = on }

// RedirectRoot switches the handle into lock-free multi-writer mode:
// root reads load slot's root word directly (uncached) and root writes
// publish with compare-and-swap against the value the operation read,
// failing with ErrRootConflict when a concurrent writer moved it. The
// handle's own logs still carry the node writes — only the root word of
// the shared structure is bypassed.
func (h *Handle) RedirectRoot(slot uint16) {
	h.rootCAS = true
	h.rootCASSlot = slot
}

// Slot returns the naming-table slot.
func (h *Handle) Slot() uint16 { return h.slot }

// Type returns the structure's type tag.
func (h *Handle) Type() uint8 { return h.typ }

// Conn returns the underlying connection.
func (h *Handle) Conn() *Conn { return h.c }

// IsWriter reports whether this handle owns the write path.
func (h *Handle) IsWriter() bool { return h.writer }

// MultiVersion marks the handle as operating a multi-version structure:
// node bytes are immutable, so cached entries never go stale and readers
// skip the seqlock.
func (h *Handle) MultiVersion(on bool) { h.mv = on }

// AuxAddr returns the global address of the structure's aux block; bytes
// at AuxAddr()+backend.AuxUser.. are the structure's private metadata.
func (h *Handle) AuxAddr() uint64 { return h.auxAddr }

// RootAddr returns the global address of the root pointer slot.
func (h *Handle) RootAddr() uint64 {
	return backend.GlobalAddr(h.c.backendID, h.c.layout.RootOff(h.slot))
}

// devOff translates a global address to a device offset on this handle's
// back-end, rejecting foreign addresses.
func (h *Handle) devOff(addr uint64) (uint64, error) {
	if addr == 0 {
		return 0, errors.New("core: nil NVM address")
	}
	if backend.AddrNode(addr) != h.c.backendID {
		return 0, fmt.Errorf("core: address %#x is not on back-end %d", addr, h.c.backendID)
	}
	return backend.AddrOff(addr), nil
}

// readEpoch is the cache-validity epoch for this handle's role. The
// single writer's view never goes stale (its overlay is authoritative);
// readers — including multi-version readers — tag entries with the
// seqlock SN observed at the start of the operation: when the replayer
// applies a transaction the SN moves and stale entries fall out, which is
// what makes node-address reuse by the lazy GC safe for cached copies.
func (h *Handle) readEpoch() uint64 {
	if h.writer {
		return EpochAlways
	}
	return h.curSN
}

// cacheOn reports whether this access may use the DRAM cache.
func (h *Handle) cacheOn(cacheable bool) bool {
	return cacheable && h.c.fe.cache != nil
}

// Read implements rnvm_read: overlay (the writer's unreplayed units),
// then the DRAM cache, then a one-sided RDMA read — Figure 4's gather
// path. cacheable selects between swap-in (hot data) and direct remote
// read (cold data), the structure-specific choice of §4.4/§8: the cache
// is always consulted (a hit is a hit), but only cacheable reads fill it
// or count as misses.
func (h *Handle) Read(addr uint64, n int, cacheable bool) ([]byte, error) {
	fe := h.c.fe
	if h.writer && h.overlay != nil {
		if e, ok := h.overlay[addr]; ok {
			if len(e.data) != n {
				return nil, fmt.Errorf("%w: addr %#x unit %d, read %d", ErrUnitMismatch, addr, len(e.data), n)
			}
			fe.clk.Advance(fe.prof.DRAMAccess)
			fe.tr.Charge(trace.KindCacheHit, fe.prof.DRAMAccess)
			return append([]byte(nil), e.data...), nil
		}
	}
	if fe.cache != nil {
		if b, ok := fe.cache.Get(addr, h.readEpoch(), cacheable); ok {
			fe.clk.Advance(fe.prof.DRAMAccess)
			fe.tr.Charge(trace.KindCacheHit, fe.prof.DRAMAccess)
			out := make([]byte, n)
			if copy(out, b) != n {
				// Cached under a different unit size; treat as a miss.
				fe.cache.Invalidate(addr)
			} else {
				return out, nil
			}
		}
	}
	off, err := h.devOff(addr)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, n)
	fe.tr.BeginArg(trace.KindFetch, addr)
	err = h.c.epRead(off, buf)
	fe.tr.End()
	if err != nil {
		return nil, err
	}
	if h.cacheOn(cacheable) {
		fe.cache.Put(addr, buf, h.tag, h.readEpoch())
	}
	return buf, nil
}

// ReadMulti is the multi-get companion of Read: every address is looked
// up at unit size n through overlay and cache first, and the misses are
// fetched as independent one-sided reads posted to the connection's
// pipeline — one doorbell group per queue-depth window instead of one
// round trip per address. Results index-match addrs. This is what turns
// a multi-node traversal (B+-tree leaf scan, hash-chain walk across
// keys) from RTT-bound into bandwidth-bound.
func (h *Handle) ReadMulti(addrs []uint64, n int, cacheable bool) ([][]byte, error) {
	fe := h.c.fe
	out := make([][]byte, len(addrs))
	var missIdx []int
	var ops []rdma.ReadOp
	for i, addr := range addrs {
		if h.writer && h.overlay != nil {
			if e, ok := h.overlay[addr]; ok {
				if len(e.data) != n {
					return nil, fmt.Errorf("%w: addr %#x unit %d, read %d", ErrUnitMismatch, addr, len(e.data), n)
				}
				fe.clk.Advance(fe.prof.DRAMAccess)
				fe.tr.Charge(trace.KindCacheHit, fe.prof.DRAMAccess)
				out[i] = append([]byte(nil), e.data...)
				continue
			}
		}
		if fe.cache != nil {
			if b, ok := fe.cache.Get(addr, h.readEpoch(), cacheable); ok && len(b) >= n {
				fe.clk.Advance(fe.prof.DRAMAccess)
				fe.tr.Charge(trace.KindCacheHit, fe.prof.DRAMAccess)
				out[i] = append([]byte(nil), b[:n]...)
				continue
			}
		}
		off, err := h.devOff(addr)
		if err != nil {
			return nil, err
		}
		buf := make([]byte, n)
		out[i] = buf
		missIdx = append(missIdx, i)
		ops = append(ops, rdma.ReadOp{Off: off, Buf: buf})
	}
	if len(ops) == 0 {
		return out, nil
	}
	fe.tr.BeginArg(trace.KindFetch, uint64(len(ops)))
	err := h.c.epReadV(ops)
	fe.tr.End()
	if err != nil {
		return nil, err
	}
	if h.cacheOn(cacheable) {
		for _, i := range missIdx {
			fe.cache.Put(addrs[i], out[i], h.tag, h.readEpoch())
		}
	}
	return out, nil
}

// CachePut force-inserts bytes into the DRAM cache under the handle's
// current epoch (structures that decide cacheability only after reading a
// node, like the skiplist's level bias).
func (h *Handle) CachePut(addr uint64, data []byte) {
	if h.c.fe.cache != nil {
		h.c.fe.cache.Put(addr, data, h.tag, h.readEpoch())
	}
}

// ReadUncached is a direct remote read that bypasses cache and overlay
// (multi-version root loads, recovery scans).
func (h *Handle) ReadUncached(addr uint64, n int) ([]byte, error) {
	off, err := h.devOff(addr)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, n)
	if err := h.c.epRead(off, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Write implements rnvm_write at unit granularity. In the optimized modes
// it appends a memory log entry (rnvm_mem_log) to the front-end buffer,
// patches the overlay and writes through to the cache; in the naive
// baseline it writes the unit in place over RDMA.
func (h *Handle) Write(addr uint64, data []byte) error {
	return h.write(addr, data, 0, 0, false)
}

// WriteFromOp is Write for bytes that literally appear in a previously
// appended operation log record: the memory log entry carries a pointer
// {opAbs, srcOff} instead of the value (Figure 3's Flag), shrinking the
// flushed log (§4.3).
func (h *Handle) WriteFromOp(addr uint64, data []byte, opAbs uint64, srcOff uint32) error {
	return h.write(addr, data, opAbs, srcOff, true)
}

func (h *Handle) write(addr uint64, data []byte, opAbs uint64, srcOff uint32, fromOp bool) error {
	if !h.writer {
		return ErrNotWriter
	}
	fe := h.c.fe
	if !fe.mode.OpLog {
		// Naive baseline: a separate in-place RDMA write per unit.
		off, err := h.devOff(addr)
		if err != nil {
			return err
		}
		return h.c.epWrite(off, data)
	}
	e := logrec.MemEntry{Addr: addr, Len: uint32(len(data))}
	if fromOp && fe.mode.Batch > 1 {
		// The pointer form only pays off when the op log is group
		// committed ahead of the memory logs.
		e.Flag = logrec.FlagOpRef
		e.OpAbs = opAbs
		e.SrcOff = srcOff
	} else {
		e.Flag = logrec.FlagInline
		e.Value = append([]byte(nil), data...)
	}
	h.pending = append(h.pending, e)
	h.pendingAddrs = append(h.pendingAddrs, addr)
	fe.st.MemLogs.Add(1)

	// Overlay: authoritative until the replayer confirms application.
	if h.overlay == nil {
		h.overlay = make(map[uint64]*ovEntry)
	}
	if oe, ok := h.overlay[addr]; ok {
		// The unit is still referenced by earlier flush marks: save the
		// displaced bytes so an abort can make them authoritative again.
		off := len(h.undoArena)
		h.undoArena = append(h.undoArena, oe.data...)
		h.undoLog = append(h.undoLog, undoEnt{addr: addr, off: off, len: len(oe.data)})
		oe.data = append(oe.data[:0], data...)
		oe.refs++
	} else {
		h.overlay[addr] = &ovEntry{data: append([]byte(nil), data...), refs: 1}
	}
	// Write-through to the cache (Figure 4, step 4).
	if fe.cache != nil {
		fe.cache.Update(addr, 0, data)
	}
	return nil
}

// OpLog implements rnvm_op_log: it persists {opType, params} for this
// structure and returns the record's absolute op-log offset, which
// WriteFromOp entries may reference. With batching the record joins a
// group commit flushed together with the next rnvm_tx_write; without, it
// is a single immediate RDMA write — the write's durability point.
func (h *Handle) OpLog(opType uint8, params []byte) (uint64, error) {
	if !h.writer {
		return 0, ErrNotWriter
	}
	fe := h.c.fe
	if !fe.mode.OpLog {
		return 0, nil
	}
	if h.hold2pc {
		// Flag transactional records: their effects ride in the prepare,
		// so recovery settles them by prepare resolution, never by
		// re-execution (see logrec.OpTxFlag).
		opType |= logrec.OpTxFlag
	}
	rec := logrec.OpRecord{DSSlot: h.slot, OpType: opType, Abs: h.opTail, Params: params}
	if h.opBufCnt == 0 {
		h.opBufAbs = h.opTail
	}
	// Encode straight into the group-commit buffer: no per-record wire
	// allocation, no second copy.
	h.opBuf = rec.AppendTo(h.opBuf)
	h.opBufCnt++
	h.opTail += uint64(rec.EncodedLen())
	fe.st.OpLogs.Add(1)
	// Enrolled in a cross-shard transaction the op records must not become
	// durable ahead of the prepare (their durability point moves to phase
	// one), so the group stays buffered until prepareAsync flushes it
	// under the prepare record's doorbell.
	if (fe.mode.Batch <= 1 || !h.opGroupCommit) && !h.hold2pc {
		if h.c.pipelined() {
			// Post the record and let its round trip fly while the
			// operation keeps gathering; EndOp settles the completion.
			if err := h.flushOpsAsync(); err != nil {
				return 0, err
			}
		} else if err := h.flushOps(); err != nil {
			return 0, err
		}
	}
	return rec.Abs, nil
}

// EndOp marks the end of one data-structure operation: every memory log
// of the op is buffered, so the operation log up to here is covered by
// the pending transaction. When the batch quota is reached the buffers
// flush (§4.3's batching).
func (h *Handle) EndOp() error {
	if !h.writer || !h.c.fe.mode.OpLog {
		return nil
	}
	// The op record's persist is the operation's durability point (§4.3):
	// an async flush posted during the op must settle before the op is
	// considered done — this is where the overlapped round trip is paid,
	// minus whatever the gather phase already hid.
	if err := h.settleAsyncOps(); err != nil {
		return err
	}
	h.coveredOp = h.opTail
	h.opsInTx++
	if h.opsInTx >= h.c.fe.effBatch() && !h.hold2pc {
		return h.Flush()
	}
	return nil
}

// InDoubtPrepares returns the prepare records the writer's recovery scan
// found with no resolving decision, in log order. RecoverTx resolves
// them against the coordinator's log.
func (h *Handle) InDoubtPrepares() []logrec.PrepareRecord { return h.inDoubt }

// UnEndedCommits returns the transaction ids of coordinator commit
// records the writer's recovery scan found without a matching KindEnd.
func (h *Handle) UnEndedCommits() []uint64 { return h.unEnded }

// Flush forces the op-log group commit and the pending rnvm_tx_write out.
// With the pipeline enabled and both buffers non-empty, the op-log group
// and the transaction record are posted as two work requests under a
// single doorbell: one round trip covers the whole batch flush instead
// of two (§4.3's batching taken to its fabric-level conclusion).
func (h *Handle) Flush() error {
	if !h.writer || !h.c.fe.mode.OpLog {
		return nil
	}
	if err := h.settleAsyncOps(); err != nil {
		return err
	}
	if h.c.pipelined() && h.opBufCnt > 0 && len(h.pending) > 0 {
		return h.flushPipelined()
	}
	if err := h.flushOps(); err != nil {
		return err
	}
	return h.txWrite()
}

// flushOps writes the buffered op records to the op-log area in one
// doorbell (§4.3: persisting an operation log is a single RDMA write).
func (h *Handle) flushOps() error {
	if h.opBufCnt == 0 {
		return nil
	}
	tr := h.c.fe.tr
	tr.BeginArg(trace.KindOpLogFlush, uint64(len(h.opBuf)))
	defer tr.End()
	if err := h.waitOpSpace(); err != nil {
		return err
	}
	ops := h.areaWriteOps(h.opArea, h.opBufAbs, h.opBuf)
	if err := h.c.epWriteV(ops); err != nil {
		return err
	}
	h.opBuf = h.opBuf[:0]
	h.opBufCnt = 0
	h.c.kick()
	return nil
}

// flushOpsAsync posts the buffered op records as one work request and
// rings the doorbell without waiting for the completion: the record's
// round trip overlaps with the remainder of the operation (gather,
// compute, memory-log appends) and is settled at EndOp, which remains
// the §4.3 durability point. The buffer's ownership moves to the posted
// WR until then.
func (h *Handle) flushOpsAsync() error {
	if h.opBufCnt == 0 {
		return nil
	}
	tr := h.c.fe.tr
	tr.BeginArg(trace.KindOpLogFlush, uint64(len(h.opBuf)))
	defer tr.End()
	if err := h.waitOpSpace(); err != nil {
		return err
	}
	ops := h.areaWriteOps(h.opArea, h.opBufAbs, h.opBuf)
	tok := h.c.ep.PostWriteV(ops)
	h.c.ep.Doorbell()
	h.asyncOps = append(h.asyncOps, asyncOpFlush{tok: tok, ops: ops, buf: h.opBuf})
	// The backing array belongs to the in-flight WR until settled (it
	// comes back through bufFree); continue gathering into a recycled one.
	h.opBuf = h.takeBuf()
	h.opBufCnt = 0
	h.c.kick()
	return nil
}

// takeBuf pops a recycled byte buffer (len 0) from the freelist.
func (h *Handle) takeBuf() []byte {
	if n := len(h.bufFree); n > 0 {
		b := h.bufFree[n-1]
		h.bufFree = h.bufFree[:n-1]
		return b
	}
	return nil
}

// settleAsyncOps waits out every posted op-log flush. A completion that
// carries a fault is re-driven synchronously through the retry/failover
// policy — re-writing the same log bytes at the same offsets is
// idempotent, exactly like the sync path's in-place retry.
func (h *Handle) settleAsyncOps() error {
	if len(h.asyncOps) == 0 {
		return nil
	}
	tr := h.c.fe.tr
	tr.BeginArg(trace.KindOpLogFlush, uint64(len(h.asyncOps)))
	defer tr.End()
	pend := h.asyncOps
	h.asyncOps = h.asyncOps[:0]
	for _, af := range pend {
		if err := h.c.ep.Wait(af.tok); err != nil {
			h.c.fe.st.VerbRetries.Add(1)
			if err := h.c.epWriteV(af.ops); err != nil {
				return err
			}
			h.c.kick()
		}
		if af.buf != nil {
			h.bufFree = append(h.bufFree, af.buf[:0])
		}
	}
	return nil
}

// txWrite implements rnvm_tx_write: the buffered memory logs, a commit
// flag and a checksum, appended to the memory-log area with one doorbell.
func (h *Handle) txWrite() error {
	if len(h.pending) == 0 {
		return nil
	}
	h.commitT0 = h.c.fe.clk.Now()
	tr := h.c.fe.tr
	tr.BeginArg(trace.KindCommit, uint64(len(h.pending)))
	defer tr.End()
	// The commit record covers op-log offsets up to coveredOp; any async
	// op flush must be durable before a record referencing it commits.
	if err := h.settleAsyncOps(); err != nil {
		return err
	}
	rec := logrec.TxRecord{
		DSSlot:  h.slot,
		Abs:     h.memTail,
		CoverOp: h.coveredOp,
		Entries: h.pending,
	}
	// Encode into the handle's reused scratch: epWriteV waits the WR out
	// before returning, so the buffer is free again by the next commit.
	wire := rec.AppendTo(h.txBuf[:0])
	h.txBuf = wire
	if err := h.waitMemSpace(len(wire)); err != nil {
		return err
	}
	ops := h.areaWriteOps(h.memArea, h.memTail, wire)
	if err := h.c.epWriteV(ops); err != nil {
		return err
	}
	return h.finishTx(len(wire))
}

// flushPipelined is the pipelined batch flush: the op-log group commit
// and the rnvm_tx_write record are posted as two WRs and issued with ONE
// doorbell. The op group executes first (posted order), so the commit
// record can never become durable over a hole in the op log; a fault in
// either WR fails the call and the retry re-posts both, idempotently.
func (h *Handle) flushPipelined() error {
	h.commitT0 = h.c.fe.clk.Now()
	tr := h.c.fe.tr
	tr.BeginArg(trace.KindCommit, uint64(len(h.pending)))
	defer tr.End()
	if err := h.waitOpSpace(); err != nil {
		return err
	}
	if len(h.pending) == 0 {
		// waitOpSpace flushed the transaction to make room; only the op
		// group is left.
		return h.flushOps()
	}
	rec := logrec.TxRecord{
		DSSlot:  h.slot,
		Abs:     h.memTail,
		CoverOp: h.coveredOp,
		Entries: h.pending,
	}
	// Reused scratch, same contract as txWrite: epWriteGroups is
	// synchronous with respect to its payload buffers.
	wire := rec.AppendTo(h.txBuf[:0])
	h.txBuf = wire
	if err := h.waitMemSpace(len(wire)); err != nil {
		return err
	}
	opOps := h.areaWriteOps(h.opArea, h.opBufAbs, h.opBuf)
	memOps := h.areaWriteOps(h.memArea, h.memTail, wire)
	if err := h.c.epWriteGroups(opOps, memOps); err != nil {
		return err
	}
	h.opBuf = h.opBuf[:0]
	h.opBufCnt = 0
	return h.finishTx(len(wire))
}

// finishTx is the common post-commit bookkeeping of txWrite and
// flushPipelined: advance the tail, mark the overlay units, wake the
// replayer, and run the amortized maintenance work.
func (h *Handle) finishTx(wireLen int) error {
	h.memTail += uint64(wireLen)
	h.c.fe.st.TxCommits.Add(1)
	h.c.fe.tuneCommit(h.c.fe.clk.Now() - h.commitT0)
	h.marks = append(h.marks, flushMark{endAbs: h.memTail, addrs: h.pendingAddrs})
	h.pending = nil
	h.pendingAddrs = nil
	h.undoLog = h.undoLog[:0]
	h.undoArena = h.undoArena[:0]
	h.opsInTx = 0
	h.flushCnt++
	h.c.kick()

	if len(h.marks) > pruneMarks {
		if err := h.pruneOverlay(); err != nil {
			return err
		}
	}
	if h.flushCnt%hintEvery == 0 {
		h.persistHints()
	}
	h.releaseDueGC()
	h.gcTxStart = len(h.gcList)
	return nil
}

// areaWriteOps splits a logical append across the circular boundary into
// at most two physically contiguous writes, posted with one doorbell.
func (h *Handle) areaWriteOps(area logrec.Area, abs uint64, wire []byte) []rdma.WriteOp {
	var ops []rdma.WriteOp
	pos := 0
	for _, r := range area.Split(abs, len(wire)) {
		ops = append(ops, rdma.WriteOp{Off: r.DevOff, Data: wire[pos : pos+r.Len]})
		pos += r.Len
	}
	return ops
}

// auxField reads one 8-byte aux-block word remotely.
func (h *Handle) auxField(fieldOff uint64) (uint64, error) {
	off, err := h.devOff(h.auxAddr)
	if err != nil {
		return 0, err
	}
	return h.c.epLoad64(off + fieldOff)
}

// auxFieldQuiet refreshes an aux word inside a poll loop without a new
// virtual-time charge (the episode's first probe was charged).
func (h *Handle) auxFieldQuiet(fieldOff uint64) (uint64, error) {
	off, err := h.devOff(h.auxAddr)
	if err != nil {
		return 0, err
	}
	return h.c.ep.Load64Quiet(off + fieldOff)
}

// waitMemSpace blocks (kicking the replayer) until the memory-log area
// has room for n more bytes — the natural back-pressure of the decoupled
// log design.
func (h *Handle) waitMemSpace(n int) error {
	for i := 0; ; i++ {
		if h.memTail-h.memTruncKnown+uint64(n) <= h.memArea.Size {
			return nil
		}
		var trunc uint64
		var err error
		if i == 0 {
			trunc, err = h.auxField(backend.AuxMemTruncOff)
		} else {
			trunc, err = h.auxFieldQuiet(backend.AuxMemTruncOff)
		}
		if err != nil {
			return err
		}
		h.memTruncKnown = trunc
		if h.memTail-h.memTruncKnown+uint64(n) <= h.memArea.Size {
			return nil
		}
		if i > pollLimit {
			return fmt.Errorf("core: memory log area stuck full (tail=%d trunc=%d need=%d)", h.memTail, h.memTruncKnown, n)
		}
		h.c.kick()
		runtime.Gosched()
	}
}

// waitOpSpace blocks until the op-log area can take the buffered group.
// Coverage only advances with transaction flushes, so when the area is
// full the pending memory logs are flushed first.
func (h *Handle) waitOpSpace() error {
	n := uint64(len(h.opBuf))
	for i := 0; ; i++ {
		if h.opTail-h.opTruncKnown <= h.opArea.Size-min64(n, h.opArea.Size) {
			return nil
		}
		var trunc uint64
		var err error
		if i == 0 {
			trunc, err = h.auxField(backend.AuxOpTruncOff)
		} else {
			trunc, err = h.auxFieldQuiet(backend.AuxOpTruncOff)
		}
		if err != nil {
			return err
		}
		h.opTruncKnown = trunc
		if h.opTail-h.opTruncKnown <= h.opArea.Size-min64(n, h.opArea.Size) {
			return nil
		}
		if !h.inFlush && !h.hold2pc && len(h.pending) > 0 {
			h.inFlush = true
			err := h.txWrite()
			h.inFlush = false
			if err != nil {
				return err
			}
			continue
		}
		if i > pollLimit {
			return fmt.Errorf("core: op log area stuck full (tail=%d trunc=%d)", h.opTail, h.opTruncKnown)
		}
		h.c.kick()
		runtime.Gosched()
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// pruneOverlay drops overlay units whose transactions the replayer has
// confirmed applied (one LPN read amortized over many flushes).
func (h *Handle) pruneOverlay() error {
	lpn, err := h.auxField(backend.AuxLPNOff)
	if err != nil {
		return err
	}
	h.lpnKnown = lpn
	keep := h.marks[:0]
	for _, m := range h.marks {
		if m.endAbs <= lpn {
			for _, a := range m.addrs {
				if oe, ok := h.overlay[a]; ok {
					oe.refs--
					if oe.refs <= 0 {
						delete(h.overlay, a)
					}
				}
			}
		} else {
			keep = append(keep, m)
		}
	}
	h.marks = keep
	return nil
}

// persistHints stores the advisory tail positions so a recovering writer
// can shorten its log scan (§5.1's metadata; correctness never depends on
// these, only scan length).
func (h *Handle) persistHints() {
	off, err := h.devOff(h.auxAddr)
	if err != nil {
		return
	}
	_ = h.c.epStore64(off+backend.AuxMemTailOff, h.memTail)
	_ = h.c.epStore64(off+backend.AuxOpTailOff, h.opTail)
}

// resyncShared adopts the durable log tails left by the previous holder
// of a shared (striped) writer lock. The shared release protocol drains
// and then persists exact tail hints, so between a release and the next
// acquisition the hints equal the true tails; tails only grow, so max()
// also covers the case where this handle itself was the last holder.
// State cached before the acquisition may predate another front-end's
// writes and is dropped: the overlay (empty since our own last release's
// drain, but cleared for safety) and the per-structure cache tag.
func (h *Handle) resyncShared() error {
	off, err := h.devOff(h.auxAddr)
	if err != nil {
		return err
	}
	mt, err := h.c.epLoad64(off + backend.AuxMemTailOff)
	if err != nil {
		return err
	}
	ot, err := h.c.epLoad64(off + backend.AuxOpTailOff)
	if err != nil {
		return err
	}
	if mt > h.memTail {
		h.memTail = mt
	}
	if ot > h.opTail {
		h.opTail = ot
	}
	if h.coveredOp < h.opTail {
		h.coveredOp = h.opTail
	}
	h.overlay = make(map[uint64]*ovEntry)
	h.marks = nil
	if h.c.fe.cache != nil {
		h.c.fe.cache.InvalidateTag(h.tag)
	}
	return nil
}

// DelayedFree schedules an old-version allocation for the lazy garbage
// collection of §6.2: the space returns to the allocator only after
// gcDelayFlushes more transaction flushes, long after any reader that
// could still hold the old root has finished.
func (h *Handle) DelayedFree(addr uint64, size int) {
	if h.rootCAS {
		// Multi-writer MV mode: replaced nodes may still be reachable from
		// roots published by other front-ends, and there is no cross-
		// front-end GC coordination — old versions are leaked, not
		// reclaimed. The leak is what keeps every concurrently cached node
		// immutable (addresses are never reused).
		return
	}
	h.gcList = append(h.gcList, gcItem{addr: addr, size: size, after: h.flushCnt + gcDelayFlushes, bornAt: time.Now()})
}

func (h *Handle) releaseDueGC() {
	n := 0
	now := time.Now()
	for _, g := range h.gcList {
		if g.after <= h.flushCnt && now.Sub(g.bornAt) >= gcMinAge {
			_ = h.c.Release(g.addr, g.size)
		} else {
			h.gcList[n] = g
			n++
		}
	}
	h.gcList = h.gcList[:n]
}

// abortOverlay drops the current window's overlay references and then
// replays the undo log in reverse, so units still referenced by earlier
// flush marks revert to their pre-window bytes instead of keeping the
// aborted values as authoritative.
func (h *Handle) abortOverlay() {
	for _, a := range h.pendingAddrs {
		if oe, ok := h.overlay[a]; ok {
			oe.refs--
			if oe.refs <= 0 {
				delete(h.overlay, a)
			}
		}
	}
	for i := len(h.undoLog) - 1; i >= 0; i-- {
		u := h.undoLog[i]
		if oe, ok := h.overlay[u.addr]; ok {
			oe.data = append(oe.data[:0], h.undoArena[u.off:u.off+u.len]...)
		}
	}
	h.undoLog = h.undoLog[:0]
	h.undoArena = h.undoArena[:0]
}

// Abort is the §4.3 back-end-failure path on the client: the in-flight
// transaction (buffered memory logs, un-flushed op logs, overlay units it
// created) is dropped and the DRAM cache is cleared; the caller re-runs
// its operation against the recovered or promoted back-end. Acknowledged
// operations are unaffected — they are already durable in NVM.
func (h *Handle) Abort() {
	// Posted op-log flushes are past their issue point; settle them so
	// the completion queue drains (best effort — the back-end is being
	// failed over anyway, and the records sit below the rewound tail or
	// will be re-covered after recovery).
	_ = h.settleAsyncOps()
	h.abortOverlay()
	h.pending = nil
	h.pendingAddrs = nil
	if h.opBufCnt > 0 {
		// Rewind over the never-persisted buffered op records only;
		// already-flushed records are durable and stay.
		h.opTail = h.opBufAbs
	}
	h.opBuf = h.opBuf[:0]
	h.opBufCnt = 0
	h.opsInTx = 0
	if h.coveredOp > h.opTail {
		h.coveredOp = h.opTail
	}
	// The rolled-back operations' DelayedFrees target nodes the abort
	// keeps live (the old versions they would have replaced): un-schedule
	// them or the lazy GC would hand live nodes back to the allocator.
	if h.gcTxStart <= len(h.gcList) {
		h.gcList = h.gcList[:h.gcTxStart]
	}
	if h.c.fe.cache != nil {
		h.c.fe.cache.Clear()
	}
}

// Drain flushes everything and waits until the replayer has applied the
// full log — the persistent fence of §4.1: reads after it see only
// persisted, applied state.
func (h *Handle) Drain() error {
	if !h.writer || !h.c.fe.mode.OpLog {
		return nil
	}
	if err := h.Flush(); err != nil {
		return err
	}
	for i := 0; ; i++ {
		var lpn uint64
		var err error
		if i == 0 {
			lpn, err = h.auxField(backend.AuxLPNOff)
		} else {
			lpn, err = h.auxFieldQuiet(backend.AuxLPNOff)
		}
		if err != nil {
			return err
		}
		h.lpnKnown = lpn
		if lpn >= h.memTail {
			// Everything applied; the overlay is no longer needed.
			h.overlay = make(map[uint64]*ovEntry)
			h.marks = nil
			return nil
		}
		if i > pollLimit {
			return fmt.Errorf("core: drain stuck (tail=%d lpn=%d)", h.memTail, lpn)
		}
		h.c.kick()
		runtime.Gosched()
	}
}

// Alloc allocates NVM for a node through the two-tier allocator.
func (h *Handle) Alloc(size int) (uint64, error) { return h.c.Alloc(size) }

// Free releases a node allocation immediately (single-version structures
// whose readers are excluded by the seqlock).
func (h *Handle) Free(addr uint64, size int) error { return h.c.Release(addr, size) }

// --- root pointer access ---

// ReadRoot returns the structure's root pointer using the handle's role:
// the writer reads its own overlay/cache view, lock-based readers go
// through the epoch-validated cache, and multi-version readers fetch the
// root *and* the adjacent sequence number with one read — the SN becomes
// the cache epoch for the traversal, so entries cached before any later
// applied transaction (including ones whose node addresses the lazy GC
// reused) cannot be served stale.
func (h *Handle) ReadRoot() (uint64, error) {
	if h.rootCAS && h.writer {
		// Multi-writer mode: the shared root lives in another slot and is
		// moved by concurrent front-ends, so it is always loaded from NVM,
		// never from the overlay or cache. The loaded value is remembered
		// as the CAS expectation for this operation's WriteRoot.
		v, err := h.c.epLoad64(h.c.layout.RootOff(h.rootCASSlot))
		if err != nil {
			return 0, err
		}
		h.rootSeen = v
		return v, nil
	}
	if h.mv && !h.writer {
		// Root (+0) and SN (+16) live side by side in the naming entry;
		// one 24-byte read returns a consistent pair.
		off, err := h.devOff(h.RootAddr())
		if err != nil {
			return 0, err
		}
		buf := make([]byte, 24)
		if err := h.c.epRead(off, buf); err != nil {
			return 0, err
		}
		h.curSN = le64(buf[16:])
		return le64(buf), nil
	}
	b, err := h.Read(h.RootAddr(), 8, true)
	if err != nil {
		return 0, err
	}
	return le64(b), nil
}

// WriteRoot updates the root pointer through the log path (or in place,
// in naive mode), so replay and mirrors both see it.
func (h *Handle) WriteRoot(v uint64) error {
	if h.rootCAS && h.writer {
		// Publication point of the lock-free multi-writer path: drain the
		// carrying logs first — readers fetch node bytes from NVM, so the
		// new version must be fully applied before the root can flip to
		// it — then install the root with CAS against the value this
		// operation's traversal started from. A lost race surfaces as
		// ErrRootConflict and the caller re-executes with backoff.
		if err := h.Flush(); err != nil {
			return err
		}
		if err := h.Drain(); err != nil {
			return err
		}
		_, ok, err := h.c.epCAS(h.c.layout.RootOff(h.rootCASSlot), h.rootSeen, v)
		if err != nil {
			return err
		}
		if !ok {
			h.c.fe.st.CASRetries.Add(1)
			return ErrRootConflict
		}
		h.rootSeen = v
		return nil
	}
	var b [8]byte
	putLE64(b[:], v)
	return h.Write(h.RootAddr(), b[:])
}

func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLE64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
