package core

import (
	"errors"
	"fmt"
	"time"

	"asymnvm/internal/backend"
	"asymnvm/internal/rdma"
	"asymnvm/internal/trace"
)

// RetryPolicy bounds the front-end's response to transient verb faults:
// up to MaxAttempts tries per verb, with exponential backoff charged to
// the node's virtual clock (a real client would spin-wait or re-arm the
// queue pair; either way the time is the client's to pay).
type RetryPolicy struct {
	MaxAttempts int
	BaseBackoff time.Duration // backoff before the 2nd attempt; doubles per retry
	MaxBackoff  time.Duration
}

// DefaultRetryPolicy absorbs short fault bursts (partitions of a handful
// of verbs) while keeping the worst-case added virtual latency under a
// millisecond.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 10, BaseBackoff: 2 * time.Microsecond, MaxBackoff: 256 * time.Microsecond}
}

// SetRetryPolicy replaces the node's verb retry policy.
func (fe *Frontend) SetRetryPolicy(p RetryPolicy) { fe.retry = p }

// RetryPolicy returns the node's verb retry policy.
func (fe *Frontend) RetryPolicy() RetryPolicy { return fe.retry }

// ErrDeadlineExceeded is returned when an armed deadline expires before a
// verb completes. It classifies as permanent: the request is doomed, so
// retrying (and consuming doorbell slots and backoff time) stops here.
var ErrDeadlineExceeded = errors.New("core: operation deadline exceeded")

// SetDeadline arms an absolute virtual-time deadline on the node. Every
// verb issued through the retry loop checks it before each attempt, and
// backoff is clamped to the remaining budget, so a doomed request fails
// with ErrDeadlineExceeded instead of burning its full attempt budget.
// Zero disarms (the zero virtual instant is never a useful deadline).
// Deadlines are owned by the node's operating goroutine, like every other
// piece of writer state.
func (fe *Frontend) SetDeadline(at time.Duration) { fe.deadlineAt = at }

// SetBudget arms a deadline of budget from the node's current virtual
// time — the deadline-propagation entry point for a serving layer that
// hands each request a latency budget.
func (fe *Frontend) SetBudget(budget time.Duration) {
	fe.deadlineAt = fe.clk.Now() + budget
}

// ClearDeadline disarms the deadline.
func (fe *Frontend) ClearDeadline() { fe.deadlineAt = 0 }

// DeadlineLeft reports the remaining budget. ok is false when no deadline
// is armed; a non-positive remainder means the deadline has passed.
func (fe *Frontend) DeadlineLeft() (time.Duration, bool) {
	if fe.deadlineAt == 0 {
		return 0, false
	}
	return fe.deadlineAt - fe.clk.Now(), true
}

// errClass is the outcome of classifying a verb error.
type errClass int

const (
	classPermanent errClass = iota // programming or device error: surface it
	classTransient                 // fabric hiccup: the verb did not execute, retry in place
	classFatal                     // peer gone: fail over, then retry
)

// classify sorts a verb error into the retry taxonomy. In the simulated
// fabric a failed verb never executed remotely (a failed write may leave a
// truncated prefix in the volatile window, which a successful retry simply
// overwrites), so retrying any verb — including CAS and vector writes — is
// idempotent.
func classify(err error) errClass {
	switch {
	case err == nil:
		return classPermanent
	case errors.Is(err, rdma.ErrDisconnected):
		return classFatal
	case errors.Is(err, rdma.ErrInjected), errors.Is(err, errRPCNoResponse):
		return classTransient
	default:
		return classPermanent
	}
}

// SetFailover installs the connection's failover delegate: called when the
// fabric reports the back-end gone, it must return the replacement node
// (after promoting a mirror or restarting the back-end) or an error if no
// replacement exists. The cluster layer installs one that consults lease
// state, so a front-end only fails over once the keep-alive authority has
// declared the back-end dead (§7.2, Case 3/4).
func (c *Conn) SetFailover(f func() (*backend.Backend, error)) { c.failover = f }

// Retarget re-points the connection at a replacement back-end: reconnects
// the endpoint (keeping its fault hook — the injector follows the logical
// connection), rebinds the kick doorbell, and refreshes the observed
// epoch. The RPC sequence is kept: it is monotone per front-end slot and
// the replacement holds a byte-identical response cell, so exactly-once
// RPC semantics carry over.
func (c *Conn) Retarget(bk *backend.Backend) error {
	c.ep.Retarget(bk.Target())
	c.kick = bk.Kick
	c.backendID = bk.ID()
	epoch, err := c.ep.Load64Quiet(backend.EpochOff)
	if err != nil {
		return err
	}
	c.epoch = epoch
	c.fe.st.Failovers.Add(1)
	c.fe.tr.Event(trace.KindFailover, uint64(bk.ID()))
	return nil
}

// backoffDelay is the exponential backoff charged to the virtual clock
// before attempt+1: BaseBackoff doubled per completed attempt, capped at
// MaxBackoff. The shift is overflow-safe — any attempt deep enough to
// overflow is already past every sane ceiling.
func backoffDelay(pol RetryPolicy, attempt int) time.Duration {
	if pol.BaseBackoff <= 0 || attempt < 1 {
		return 0
	}
	shift := uint(attempt - 1)
	backoff := pol.BaseBackoff
	if shift >= 32 || pol.BaseBackoff<<shift <= 0 {
		backoff = pol.MaxBackoff
		if backoff <= 0 {
			backoff = pol.BaseBackoff
		}
		return backoff
	}
	backoff = pol.BaseBackoff << shift
	if pol.MaxBackoff > 0 && backoff > pol.MaxBackoff {
		backoff = pol.MaxBackoff
	}
	return backoff
}

// clampToDeadline bounds a backoff to the remaining deadline budget.
// hasDeadline=false passes the backoff through; a non-positive remainder
// clamps to zero (the deadline check at the top of the next attempt
// surfaces ErrDeadlineExceeded).
func clampToDeadline(backoff, remaining time.Duration, hasDeadline bool) time.Duration {
	if !hasDeadline || backoff <= remaining {
		return backoff
	}
	if remaining < 0 {
		return 0
	}
	return remaining
}

// do runs one verb closure under the retry/failover policy. Transient
// faults are retried with exponential backoff charged to the virtual
// clock; fatal faults invoke the failover delegate and then retry against
// the replacement. The original error surfaces once the attempt budget is
// exhausted (errors.Is against the rdma sentinels keeps working). An
// armed deadline (SetDeadline/SetBudget) is checked before every attempt
// and becomes the backoff ceiling: a request whose budget ran out fails
// with ErrDeadlineExceeded instead of occupying the fabric further.
func (c *Conn) do(f func() error) error {
	pol := c.fe.retry
	if pol.MaxAttempts < 1 {
		pol.MaxAttempts = 1
	}
	var err error
	for attempt := 1; ; attempt++ {
		if left, armed := c.fe.DeadlineLeft(); armed && left <= 0 {
			c.fe.st.DeadlineMiss.Add(1)
			if err != nil {
				return fmt.Errorf("%w (after %d attempts): %w", ErrDeadlineExceeded, attempt-1, err)
			}
			return ErrDeadlineExceeded
		}
		err = f()
		if err == nil {
			return nil
		}
		switch classify(err) {
		case classPermanent:
			return err
		case classFatal:
			if c.failover == nil {
				return fmt.Errorf("%w (no failover delegate): %w", ErrBackendDown, err)
			}
			bk, foErr := c.failover()
			if foErr != nil {
				return fmt.Errorf("%w: %w (failover: %w)", ErrBackendDown, err, foErr)
			}
			if rtErr := c.Retarget(bk); rtErr != nil {
				return fmt.Errorf("%w: retarget: %w", ErrBackendDown, rtErr)
			}
			// The replacement is live: restart the attempt budget for it.
			attempt = 0
			continue
		case classTransient:
			if attempt >= pol.MaxAttempts {
				return fmt.Errorf("core: giving up after %d attempts: %w", attempt, err)
			}
			if backoff := backoffDelay(pol, attempt); backoff > 0 {
				left, armed := c.fe.DeadlineLeft()
				backoff = clampToDeadline(backoff, left, armed)
				c.fe.clk.Advance(backoff)
				c.fe.tr.Charge(trace.KindRetryBackoff, backoff)
			}
			c.fe.st.VerbRetries.Add(1)
		}
	}
}

// The ep* helpers route every data-path verb through the retry/failover
// policy. Handles and lock code call these instead of touching c.ep
// directly; recovery-internal probes that must not consume fault-schedule
// randomness use the endpoint's Quiet variants.

func (c *Conn) epRead(off uint64, buf []byte) error {
	return c.do(func() error { return c.ep.Read(off, buf) })
}

func (c *Conn) epWrite(off uint64, data []byte) error {
	return c.do(func() error { return c.ep.Write(off, data) })
}

func (c *Conn) epWriteV(ops []rdma.WriteOp) error {
	return c.do(func() error { return c.ep.WriteV(ops) })
}

// pipelined reports whether this connection may post verbs asynchronously
// at the depth currently in force (autotune may have lowered it to 1).
func (c *Conn) pipelined() bool { return c.fe.effDepth() > 1 }

// epReadV is a multi-get: every element is an independent one-sided read.
// With the pipeline enabled all reads are posted to the send queue and
// retired together — the queue-depth cap turns N reads into ceil(N/depth)
// doorbell-group round trips instead of N. Without it the reads issue
// synchronously. The whole group is the retry/failover unit; re-posting
// reads is trivially idempotent.
func (c *Conn) epReadV(ops []rdma.ReadOp) error {
	if len(ops) == 0 {
		return nil
	}
	if !c.pipelined() {
		for _, op := range ops {
			if err := c.epRead(op.Off, op.Buf); err != nil {
				return err
			}
		}
		return nil
	}
	return c.do(func() error {
		toks := make([]rdma.Token, len(ops))
		for i, op := range ops {
			toks[i] = c.ep.PostRead(op.Off, op.Buf)
		}
		c.ep.Doorbell()
		var first error
		for _, tok := range toks {
			if err := c.ep.Wait(tok); err != nil && first == nil {
				first = err
			}
		}
		return first
	})
}

// epWriteGroups issues several vector writes with one doorbell: each
// group is posted as its own work request, the doorbell is rung once,
// and all completions are waited out. This is how a pipelined
// rnvm_tx_write overlaps the op-log flush with the commit record — one
// round trip covers both. Falls back to sequential WriteV calls when the
// pipeline is off. The call is the retry/failover unit: on a transient
// fault every group is re-posted (idempotent, like WriteV).
func (c *Conn) epWriteGroups(groups ...[]rdma.WriteOp) error {
	if !c.pipelined() {
		for _, g := range groups {
			if err := c.epWriteV(g); err != nil {
				return err
			}
		}
		return nil
	}
	return c.do(func() error {
		var toks []rdma.Token
		for _, g := range groups {
			if len(g) > 0 {
				toks = append(toks, c.ep.PostWriteV(g))
			}
		}
		if len(toks) == 0 {
			return nil
		}
		c.ep.Doorbell()
		var first error
		for _, tok := range toks {
			if err := c.ep.Wait(tok); err != nil && first == nil {
				first = err
			}
		}
		return first
	})
}

func (c *Conn) epCAS(off uint64, old, new uint64) (prev uint64, swapped bool, err error) {
	err = c.do(func() error {
		var ierr error
		prev, swapped, ierr = c.ep.CompareAndSwap(off, old, new)
		return ierr
	})
	return prev, swapped, err
}

func (c *Conn) epFetchAdd(off uint64, delta uint64) (prev uint64, err error) {
	err = c.do(func() error {
		var ierr error
		prev, ierr = c.ep.FetchAdd(off, delta)
		return ierr
	})
	return prev, err
}

func (c *Conn) epLoad64(off uint64) (v uint64, err error) {
	err = c.do(func() error {
		var ierr error
		v, ierr = c.ep.Load64(off)
		return ierr
	})
	return v, err
}

func (c *Conn) epStore64(off uint64, v uint64) error {
	return c.do(func() error { return c.ep.Store64(off, v) })
}
