package core

import (
	"bytes"
	"runtime"
	"testing"

	"asymnvm/internal/backend"
	"asymnvm/internal/clock"
	"asymnvm/internal/nvm"
)

// twoShardRig is two independent back-ends (shards 0 and 1) plus one
// front-end connected to both — the smallest cross-shard deployment.
type twoShardRig struct {
	t   *testing.T
	bks [2]*backend.Backend
}

func newTwoShardRig(t *testing.T) *twoShardRig {
	t.Helper()
	r := &twoShardRig{t: t}
	prof := clock.ZeroProfile()
	for i := 0; i < 2; i++ {
		bk, err := backend.New(nvm.NewDevice(16<<20), backend.Options{ID: uint16(i), Profile: &prof})
		if err != nil {
			t.Fatal(err)
		}
		bk.Start()
		t.Cleanup(bk.Stop)
		r.bks[i] = bk
	}
	return r
}

func (r *twoShardRig) frontend(id uint16) (*Frontend, *Conn, *Conn) {
	r.t.Helper()
	prof := clock.ZeroProfile()
	fe := NewFrontend(FrontendOptions{ID: id, Mode: Mode{OpLog: true, Batch: 4, Pipeline: 4}, Profile: &prof})
	c0, err := fe.Connect(r.bks[0])
	if err != nil {
		r.t.Fatal(err)
	}
	c1, err := fe.Connect(r.bks[1])
	if err != nil {
		r.t.Fatal(err)
	}
	return fe, c0, c1
}

// part creates one participant structure with an allocated 64-byte unit.
func (r *twoShardRig) part(c *Conn, name string) (*Handle, uint64) {
	r.t.Helper()
	h, err := c.Create(name, 1, smallOpts)
	if err != nil {
		r.t.Fatal(err)
	}
	addr, err := c.Alloc(64)
	if err != nil {
		r.t.Fatal(err)
	}
	return h, addr
}

// txOp runs one logged operation writing val at addr on an enrolled handle.
func txOp(t *testing.T, h *Handle, addr uint64, val byte) {
	t.Helper()
	if _, err := h.OpLog(1, []byte{val}); err != nil {
		t.Fatal(err)
	}
	buf := bytes.Repeat([]byte{val}, 64)
	if err := h.Write(addr, buf); err != nil {
		t.Fatal(err)
	}
	if err := h.EndOp(); err != nil {
		t.Fatal(err)
	}
}

// devBytes reads the unit straight off the device, bypassing overlay and
// cache — only replay-applied state is visible here.
func devBytes(t *testing.T, h *Handle, addr uint64) []byte {
	t.Helper()
	b, err := h.ReadUncached(addr, 64)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestCrossShardCommitAtomic: a transaction spanning both shards stays
// invisible to the back-ends until the decision, then both sides apply.
func TestCrossShardCommitAtomic(t *testing.T) {
	r := newTwoShardRig(t)
	fe, c0, c1 := r.frontend(7)
	h0, addr0 := r.part(c0, "p0")
	h1, addr1 := r.part(c1, "p1")
	tc, err := NewTxCoordinator(c0, "coord")
	if err != nil {
		t.Fatal(err)
	}
	tx, err := tc.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Enroll(h0, h1); err != nil {
		t.Fatal(err)
	}
	txOp(t, h0, addr0, 0xAA)
	txOp(t, h1, addr1, 0xBB)
	// Buffered, unprepared: nothing may be applied anywhere.
	if got := devBytes(t, h0, addr0); got[0] != 0 {
		t.Fatalf("shard 0 applied before commit: %#x", got[0])
	}
	if got := devBytes(t, h1, addr1); got[0] != 0 {
		t.Fatalf("shard 1 applied before commit: %#x", got[0])
	}
	// But the writer's own view (overlay) already sees the new values.
	if got, err := h0.Read(addr0, 64, false); err != nil || got[0] != 0xAA {
		t.Fatalf("writer overlay read: %v %#x", err, got[0])
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tc.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if err := h0.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := h1.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := devBytes(t, h0, addr0); got[0] != 0xAA || got[63] != 0xAA {
		t.Fatalf("shard 0 not applied after commit: %#x", got[0])
	}
	if got := devBytes(t, h1, addr1); got[0] != 0xBB {
		t.Fatalf("shard 1 not applied after commit: %#x", got[0])
	}
	snap := fe.Stats().Snapshot()
	if snap.TxPrepares != 2 || snap.TxCrossCommits != 1 || snap.TxCrossAborts != 0 {
		t.Fatalf("stats prep=%d commit=%d abort=%d", snap.TxPrepares, snap.TxCrossCommits, snap.TxCrossAborts)
	}
	// No lingering in-doubt state on either back-end.
	for i, bk := range r.bks {
		if ids, _ := bk.InDoubt(h0.Slot()); len(ids) != 0 {
			t.Fatalf("backend %d holds in-doubt %v", i, ids)
		}
	}
}

// TestCrossShardAbortLocal: Abort before Commit leaves no durable trace
// and the handles keep working for single-shard writes.
func TestCrossShardAbortLocal(t *testing.T) {
	r := newTwoShardRig(t)
	fe, c0, c1 := r.frontend(8)
	h0, addr0 := r.part(c0, "p0")
	h1, addr1 := r.part(c1, "p1")
	tc, err := NewTxCoordinator(c0, "coord")
	if err != nil {
		t.Fatal(err)
	}
	tx, err := tc.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Enroll(h0, h1); err != nil {
		t.Fatal(err)
	}
	txOp(t, h0, addr0, 0x11)
	txOp(t, h1, addr1, 0x22)
	tx.Abort()
	if err := tx.Commit(); err == nil {
		t.Fatal("Commit after Abort must fail")
	}
	if err := h0.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := devBytes(t, h0, addr0); got[0] != 0 {
		t.Fatalf("aborted write leaked to shard 0: %#x", got[0])
	}
	// The handle still works outside a transaction.
	txOp(t, h0, addr0, 0x33)
	if err := h0.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := h0.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := devBytes(t, h0, addr0); got[0] != 0x33 {
		t.Fatalf("post-abort write lost: %#x", got[0])
	}
	if snap := fe.Stats().Snapshot(); snap.TxCrossAborts != 1 {
		t.Fatalf("TxCrossAborts = %d", snap.TxCrossAborts)
	}
	_ = addr1
}

// TestRecoverPresumedAbort: the front-end dies after the prepare is
// durable but before any commit record exists. A new writer finds the
// in-doubt prepare, consults the coordinator (nothing there) and aborts
// it durably; the prepared write never applies.
func TestRecoverPresumedAbort(t *testing.T) {
	r := newTwoShardRig(t)
	_, c0, c1 := r.frontend(9)
	h0, addr0 := r.part(c0, "p0")
	_, _ = c1, addr0
	tc, err := NewTxCoordinator(c0, "coord")
	if err != nil {
		t.Fatal(err)
	}
	tx, err := tc.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Enroll(h0); err != nil {
		t.Fatal(err)
	}
	txOp(t, h0, addr0, 0x5A)
	// Phase one only; then the front-end "dies".
	pp, err := h0.prepareAsync(tx.TxID(), c0.BackendID(), tc.Handle().Slot())
	if err != nil {
		t.Fatal(err)
	}
	if err := pp.Settle(); err != nil {
		t.Fatal(err)
	}
	// Settle makes the prepare durable; the replayer buffers it
	// asynchronously.
	var ids []uint64
	for i := 0; i < 1_000_000; i++ {
		ids, _ = r.bks[0].InDoubt(h0.Slot())
		if len(ids) == 1 {
			break
		}
		runtime.Gosched()
	}
	if len(ids) != 1 || ids[0] != tx.TxID() {
		t.Fatalf("backend in-doubt = %v, want [%#x]", ids, tx.TxID())
	}

	// A new front-end takes over.
	_, c0b, _ := r.frontend(10)
	h0b, err := c0b.Open("p0", true)
	if err != nil {
		t.Fatal(err)
	}
	if got := h0b.InDoubtPrepares(); len(got) != 1 || got[0].TxID != tx.TxID() {
		t.Fatalf("reopened writer in-doubt = %+v", got)
	}
	tcb, err := NewTxCoordinator(c0b, "coord")
	if err != nil {
		t.Fatal(err)
	}
	committed, aborted, err := tcb.RecoverTx(h0b)
	if err != nil {
		t.Fatal(err)
	}
	if committed != 0 || aborted != 1 {
		t.Fatalf("RecoverTx committed=%d aborted=%d", committed, aborted)
	}
	if err := h0b.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := devBytes(t, h0b, addr0); got[0] != 0 {
		t.Fatalf("presumed-abort leaked the prepared write: %#x", got[0])
	}
	if ids, _ := r.bks[0].InDoubt(h0b.Slot()); len(ids) != 0 {
		t.Fatalf("in-doubt not cleared: %v", ids)
	}
	// The op log must not hand the aborted op back for re-execution.
	if ops, err := h0b.PendingOps(); err != nil || len(ops) != 0 {
		t.Fatalf("aborted op still pending: %v %v", ops, err)
	}
}

// TestRecoverCommittedInDoubt: the commit record is durable but the
// coordinator died before delivering decisions. Recovery must apply the
// prepared bodies on both shards — the atomicity point already passed.
func TestRecoverCommittedInDoubt(t *testing.T) {
	r := newTwoShardRig(t)
	_, c0, c1 := r.frontend(11)
	h0, addr0 := r.part(c0, "p0")
	h1, addr1 := r.part(c1, "p1")
	tc, err := NewTxCoordinator(c0, "coord")
	if err != nil {
		t.Fatal(err)
	}
	tx, err := tc.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Enroll(h0, h1); err != nil {
		t.Fatal(err)
	}
	txOp(t, h0, addr0, 0xC1)
	txOp(t, h1, addr1, 0xC2)
	pp0, err := h0.prepareAsync(tx.TxID(), c0.BackendID(), tc.Handle().Slot())
	if err != nil {
		t.Fatal(err)
	}
	pp1, err := h1.prepareAsync(tx.TxID(), c0.BackendID(), tc.Handle().Slot())
	if err != nil {
		t.Fatal(err)
	}
	if err := pp0.Settle(); err != nil {
		t.Fatal(err)
	}
	if err := pp1.Settle(); err != nil {
		t.Fatal(err)
	}
	// Atomicity point reached; decisions never leave.
	if err := tc.commitRecord(tx.TxID()); err != nil {
		t.Fatal(err)
	}

	_, c0b, c1b := r.frontend(12)
	h0b, err := c0b.Open("p0", true)
	if err != nil {
		t.Fatal(err)
	}
	h1b, err := c1b.Open("p1", true)
	if err != nil {
		t.Fatal(err)
	}
	tcb, err := NewTxCoordinator(c0b, "coord")
	if err != nil {
		t.Fatal(err)
	}
	unEnded := tcb.Handle().UnEndedCommits()
	if len(unEnded) != 1 || unEnded[0] != tx.TxID() {
		t.Fatalf("un-Ended commits = %v, want [%#x]", unEnded, tx.TxID())
	}
	committed, aborted, err := tcb.RecoverTx(h0b, h1b)
	if err != nil {
		t.Fatal(err)
	}
	if committed != 2 || aborted != 0 {
		t.Fatalf("RecoverTx committed=%d aborted=%d", committed, aborted)
	}
	if err := tcb.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if err := h0b.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := h1b.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := devBytes(t, h0b, addr0); got[0] != 0xC1 {
		t.Fatalf("committed write lost on shard 0: %#x", got[0])
	}
	if got := devBytes(t, h1b, addr1); got[0] != 0xC2 {
		t.Fatalf("committed write lost on shard 1: %#x", got[0])
	}
	if got := tcb.Handle().UnEndedCommits(); len(got) != 0 {
		t.Fatalf("commit records not forgotten: %v", got)
	}
}

// TestTxIDsNeverReused: ids come from durably reserved blocks; a
// coordinator reopened after a crash skips the whole outstanding block.
func TestTxIDsNeverReused(t *testing.T) {
	r := newTwoShardRig(t)
	_, c0, _ := r.frontend(13)
	tc, err := NewTxCoordinator(c0, "coord")
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := 0; i < 3; i++ {
		tx, err := tc.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if tx.TxID() <= last {
			t.Fatalf("txid %#x not monotonic after %#x", tx.TxID(), last)
		}
		last = tx.TxID()
		tx.Abort()
	}
	// Crash/reopen: the dispenser must jump past every possibly-used id.
	_, c0b, _ := r.frontend(14)
	tcb, err := NewTxCoordinator(c0b, "coord")
	if err != nil {
		t.Fatal(err)
	}
	tx, err := tcb.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if tx.TxID() <= last {
		t.Fatalf("reopened coordinator reissued %#x (last used %#x)", tx.TxID(), last)
	}
	tx.Abort()
}

// TestDeviceScanResolver: backend.ScanTxOutcome consults the coordinator
// log directly off the device — commit record present vs absent.
func TestDeviceScanResolver(t *testing.T) {
	r := newTwoShardRig(t)
	_, c0, _ := r.frontend(15)
	h0, addr0 := r.part(c0, "p0")
	tc, err := NewTxCoordinator(c0, "coord")
	if err != nil {
		t.Fatal(err)
	}
	tx, err := tc.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Enroll(h0); err != nil {
		t.Fatal(err)
	}
	txOp(t, h0, addr0, 0x77)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Committed but not yet Ended: the scan must find the record.
	dev := r.bks[0].Device()
	out, err := backend.ScanTxOutcome(dev, tc.Handle().Slot(), tx.TxID())
	if err != nil {
		t.Fatal(err)
	}
	if out != backend.TxCommitted {
		t.Fatalf("outcome = %v, want committed", out)
	}
	// An id that never committed is presumed aborted.
	out, err = backend.ScanTxOutcome(dev, tc.Handle().Slot(), tx.TxID()+1)
	if err != nil {
		t.Fatal(err)
	}
	if out != backend.TxAborted {
		t.Fatalf("outcome = %v, want aborted", out)
	}
}
