// Cross-shard transactions: a two-phase-commit plane layered on the
// existing per-structure op/memory logs. Phase one appends a
// PrepareRecord to every participant's memory log (the buffered entries
// travel inside it, unapplied); the single atomicity point is the
// KindCommit record on the coordinator structure's log; phase two fans
// out KindApply decisions that release the buffered bodies. Recovery is
// presumed abort: a prepare with no decision consults the coordinator's
// log, and a missing commit record means abort (backend/twopc.go holds
// the participant side; RecoverTx below is the front-end half).
//
// Round-trip budget per cross-shard commit, pipelined mode:
//
//	1 × prepare doorbell per participant link (concurrent: max, not sum)
//	1 × coordinator doorbell (KindEnd of the previous transaction
//	    piggybacked with this one's KindCommit)
//	1 × decision doorbell per participant link (concurrent)
//
// — two doorbell round trips over a single-shard batch flush.
package core

import (
	"errors"
	"fmt"

	"asymnvm/internal/backend"
	"asymnvm/internal/logrec"
	"asymnvm/internal/rdma"
	"asymnvm/internal/trace"
)

// TxCoordType tags the coordinator's naming-table entry; the structure
// body is just the aux block and a memory log of CommitRecords.
const TxCoordType uint8 = 0x2C

// txidHWOff is the coordinator's private aux word: the durable
// high-water mark of reserved transaction-id blocks. Ids below it may
// have been handed out by a previous incarnation and are never reused.
const txidHWOff = backend.AuxUser

// txidBlock is how many ids one durable reservation covers; the Store64
// cost amortizes over the block.
const txidBlock = 64

// ErrTxFinished is returned when a finished Tx is committed or extended.
var ErrTxFinished = errors.New("core: cross-shard transaction already finished")

// TxCoordinator owns one coordinator structure: it mints transaction
// ids from durably reserved blocks and appends the commit/forget
// records that decide every cross-shard transaction's fate.
type TxCoordinator struct {
	h    *Handle
	base uint64 // node/slot tag in the txid high bits
	next uint64
	lim  uint64
	// lastTx is the newest committed transaction whose KindEnd is not
	// durable yet. The End rides the next commit's doorbell (or Quiesce),
	// and must never become durable before that transaction's decisions —
	// a forgotten commit record flips recovery's presumption to abort.
	lastTx uint64
}

// NewTxCoordinator opens (or creates) the named coordinator structure
// and seeds the transaction-id dispenser past every id a previous
// incarnation may have used.
func NewTxCoordinator(c *Conn, name string) (*TxCoordinator, error) {
	if !c.fe.mode.OpLog {
		return nil, errors.New("core: cross-shard transactions need the op-log mode")
	}
	h, err := c.Open(name, true)
	if errors.Is(err, ErrNotFound) {
		h, err = c.Create(name, TxCoordType, CreateOptions{MemLogSize: 1 << 20, OpLogSize: 8 << 10})
	}
	if err != nil {
		return nil, err
	}
	hw, err := h.auxField(txidHWOff)
	if err != nil {
		return nil, err
	}
	return &TxCoordinator{
		h:    h,
		base: uint64(c.backendID)<<48 | uint64(h.slot)<<32,
		next: hw,
		lim:  hw,
	}, nil
}

// Handle exposes the coordinator's underlying handle (tests, RecoverTx
// ordering with other recovery steps).
func (tc *TxCoordinator) Handle() *Handle { return tc.h }

// reserve durably claims the next id block when the current one is
// exhausted: the high-water word is persisted before any id from the
// block is used, so a crash can never reissue an id.
func (tc *TxCoordinator) reserve() error {
	if tc.next < tc.lim {
		return nil
	}
	hw := tc.next + txidBlock
	off, err := tc.h.devOff(tc.h.auxAddr)
	if err != nil {
		return err
	}
	if err := tc.h.c.epStore64(off+txidHWOff, hw); err != nil {
		return err
	}
	tc.lim = hw
	return nil
}

// Begin mints a transaction. Participant handles are enrolled with
// Enroll before running their operations.
func (tc *TxCoordinator) Begin() (*Tx, error) {
	if tc.next == 0 {
		tc.next = 1 // txid 0 is the "none" sentinel
	}
	if err := tc.reserve(); err != nil {
		return nil, err
	}
	txid := tc.base | tc.next
	tc.next++
	return &Tx{tc: tc, txid: txid, fe: tc.h.c.fe}, nil
}

// commitRecord appends the transaction's KindCommit — the atomicity
// point — together with the previous transaction's deferred KindEnd,
// under one doorbell.
func (tc *TxCoordinator) commitRecord(txid uint64) error {
	h := tc.h
	wire := h.txBuf[:0]
	abs := h.memTail
	if tc.lastTx != 0 {
		end := logrec.CommitRecord{Kind: logrec.KindEnd, DSSlot: h.slot, Abs: abs, TxID: tc.lastTx}
		wire = end.AppendTo(wire)
		abs += uint64(end.EncodedLen())
	}
	cr := logrec.CommitRecord{Kind: logrec.KindCommit, DSSlot: h.slot, Abs: abs, TxID: txid}
	wire = cr.AppendTo(wire)
	h.txBuf = wire
	if err := h.waitMemSpace(len(wire)); err != nil {
		return err
	}
	if err := h.c.epWriteV(h.areaWriteOps(h.memArea, h.memTail, wire)); err != nil {
		return err
	}
	h.memTail += uint64(len(wire))
	tc.lastTx = txid
	h.c.kick()
	return nil
}

// Quiesce writes the deferred KindEnd (safe: Commit returns only after
// every decision is durable) and drains the coordinator log, releasing
// the back-end's hold floor. Run it before barriers that wait on full
// log application (DrainAll, conservation checks, shutdown).
func (tc *TxCoordinator) Quiesce() error {
	if tc.lastTx != 0 {
		if err := tc.h.appendCtl(logrec.KindEnd, tc.lastTx, 0); err != nil {
			return err
		}
		tc.lastTx = 0
	}
	return tc.h.Drain()
}

// RecoverTx is the front-end half of presumed-abort recovery, run by a
// new writer after reopening the coordinator and the participants: every
// participant prepare left without a decision is resolved against the
// coordinator's surviving commit records — found means KindApply,
// missing means the transaction never reached its atomicity point, so
// KindAbort. Only once every decision is durable are the commit records
// forgotten with KindEnd. It returns how many transactions resolved
// each way. Run it before any PendingOps-based re-execution: resolution
// advances the op-log cursor past the transactions it settles.
func (tc *TxCoordinator) RecoverTx(parts ...*Handle) (committed, aborted int, err error) {
	commitSet := make(map[uint64]bool, len(tc.h.unEnded))
	for _, txid := range tc.h.unEnded {
		commitSet[txid] = true
	}
	for _, p := range parts {
		var keep []logrec.PrepareRecord
		for _, prep := range p.inDoubt {
			if prep.CoordNode != tc.h.c.backendID || prep.CoordSlot != tc.h.slot {
				keep = append(keep, prep) // some other coordinator's
				continue
			}
			kind := byte(logrec.KindAbort)
			if commitSet[prep.TxID] {
				kind = logrec.KindApply
				committed++
			} else {
				aborted++
			}
			if err := p.appendCtl(kind, prep.TxID, prep.CoverOp); err != nil {
				return committed, aborted, err
			}
		}
		p.inDoubt = keep
	}
	// Decisions durable; the commit records can be forgotten.
	for txid := range commitSet {
		if err := tc.h.appendCtl(logrec.KindEnd, txid, 0); err != nil {
			return committed, aborted, err
		}
	}
	tc.h.unEnded = nil
	if tc.lastTx != 0 && commitSet[tc.lastTx] {
		tc.lastTx = 0
	}
	return committed, aborted, nil
}

// Tx is one cross-shard transaction: participant handles enroll, run
// their operations (buffered, invisible to readers), and Commit drives
// the two phases.
type Tx struct {
	tc    *TxCoordinator
	txid  uint64
	fe    *Frontend
	parts []*Handle
	done  bool
}

// TxID returns the minted transaction id.
func (tx *Tx) TxID() uint64 { return tx.txid }

// Enroll adds a participant handle (idempotent). While enrolled, the
// handle's batch-quota flushes and immediate op-log persists are
// suppressed: everything buffers until the prepare.
func (tx *Tx) Enroll(hs ...*Handle) error {
	if tx.done {
		return ErrTxFinished
	}
	for _, h := range hs {
		already := false
		for _, p := range tx.parts {
			if p == h {
				already = true
				break
			}
		}
		if already {
			continue
		}
		if !h.writer {
			return ErrNotWriter
		}
		h.hold2pc = true
		tx.parts = append(tx.parts, h)
	}
	return nil
}

// Abort rolls the transaction back before its atomicity point: nothing
// was prepared (prepares only happen inside Commit), so the rollback is
// purely front-end local.
func (tx *Tx) Abort() {
	if tx.done {
		return
	}
	tx.done = true
	for _, p := range tx.parts {
		p.Abort()
	}
	tx.release()
	tx.fe.st.TxCrossAborts.Add(1)
}

// release clears the enrollment hold on every participant.
func (tx *Tx) release() {
	for _, p := range tx.parts {
		p.hold2pc = false
	}
}

// Commit drives both phases. An error before the commit record means
// the transaction aborted (durably, via KindAbort decisions where a
// prepare may be in flight — recovery presumes abort for any it
// misses); an error after it means the transaction committed but some
// decision could not be delivered, and the participant's back-end will
// resolve it from the coordinator's log on its next recovery.
func (tx *Tx) Commit() error {
	if tx.done {
		return ErrTxFinished
	}
	tx.done = true
	fe := tx.fe

	var active []*Handle
	for _, p := range tx.parts {
		if len(p.pending) > 0 || p.opBufCnt > 0 {
			active = append(active, p)
		}
	}
	if len(active) == 0 {
		tx.release()
		return nil
	}
	// Deadline-aware: past the budget nothing durable has happened yet,
	// so the cheap local abort is still available.
	if left, ok := fe.DeadlineLeft(); ok && left <= 0 {
		for _, p := range tx.parts {
			p.Abort()
		}
		tx.release()
		fe.st.TxCrossAborts.Add(1)
		return fmt.Errorf("core: cross-shard commit: %w", ErrDeadlineExceeded)
	}

	conns := make([]*Conn, 0, len(active)+1)
	for _, p := range active {
		conns = append(conns, p.c)
	}
	conns = append(conns, tx.tc.h.c)
	f := fe.BeginFanout(conns...)
	defer f.End()

	// Phase one: every participant's op group and prepare record posted
	// under its own doorbell, all links in flight together.
	pends := make([]*PendingPrepare, 0, len(active))
	var prepErr error
	for _, p := range active {
		pp, err := p.prepareAsync(tx.txid, tx.tc.h.c.backendID, tx.tc.h.slot)
		if err != nil {
			prepErr = err
			break
		}
		pends = append(pends, pp)
	}
	for _, pp := range pends {
		if err := pp.Settle(); err != nil && prepErr == nil {
			prepErr = err
		}
	}
	if prepErr == nil {
		// Last exit before the no-return point.
		if left, ok := fe.DeadlineLeft(); ok && left <= 0 {
			prepErr = ErrDeadlineExceeded
		}
	}
	if prepErr != nil {
		tx.abortPrepared(active, len(pends))
		return fmt.Errorf("core: cross-shard prepare: %w", prepErr)
	}

	// Atomicity point: the commit record (plus the previous transaction's
	// End) under one coordinator doorbell.
	if err := tx.tc.commitRecord(tx.txid); err != nil {
		// The record's durability is unknown — aborting now could
		// contradict it, so leave the prepares in doubt for recovery.
		for _, p := range tx.parts {
			p.Abort()
		}
		tx.release()
		return fmt.Errorf("core: cross-shard commit record: %w", err)
	}
	// Committed. The deadline no longer applies: decisions must go out.
	if _, ok := fe.DeadlineLeft(); ok {
		fe.ClearDeadline()
	}

	// Phase two: KindApply decisions, all links in flight together.
	ctls := make([]*pendingCtl, 0, len(active))
	var decErr error
	for _, p := range active {
		pc, err := p.postCtl(logrec.KindApply, tx.txid, p.coveredOp)
		if err != nil {
			if decErr == nil {
				decErr = err
			}
			continue
		}
		ctls = append(ctls, pc)
	}
	for _, pc := range ctls {
		if err := pc.settle(); err != nil && decErr == nil {
			decErr = err
		}
	}
	for _, p := range active {
		p.finish2PC(false)
	}
	tx.release()
	fe.st.TxCrossCommits.Add(1)
	if decErr != nil {
		return fmt.Errorf("core: cross-shard decision: %w", decErr)
	}
	return nil
}

// abortPrepared durably aborts after phase one failed: participants
// whose prepare was posted get a KindAbort decision (best effort —
// recovery presumes abort for any that miss it), the rest roll back
// locally.
func (tx *Tx) abortPrepared(active []*Handle, posted int) {
	for i, p := range active {
		if i < posted {
			_ = p.appendCtl(logrec.KindAbort, tx.txid, p.coveredOp)
			p.finish2PC(true)
		} else {
			p.Abort()
		}
	}
	tx.release()
	tx.fe.st.TxCrossAborts.Add(1)
}

// PendingPrepare is one participant's in-flight phase-one doorbell.
type PendingPrepare struct {
	h       *Handle
	toks    []rdma.Token
	groups  [][]rdma.WriteOp
	opBuf   []byte
	wireLen int
	settled bool
}

// prepareAsync posts the participant's buffered op group and its
// PrepareRecord — entries travel inside it, unapplied — as one doorbell
// (op group first, so the prepare can never become durable over an
// op-log hole). Mirrors flushPipelined/FlushAsync; the tail advances at
// Settle.
func (h *Handle) prepareAsync(txid uint64, coordNode, coordSlot uint16) (*PendingPrepare, error) {
	if err := h.settleAsyncOps(); err != nil {
		return nil, err
	}
	tr := h.c.fe.tr
	tr.BeginArg(trace.KindCommit, uint64(len(h.pending)))
	defer tr.End()
	// inFlush suppresses waitOpSpace's make-room txWrite: the pending
	// entries must leave only inside the prepare record.
	h.inFlush = true
	err := h.waitOpSpace()
	h.inFlush = false
	if err != nil {
		return nil, err
	}
	rec := logrec.PrepareRecord{
		DSSlot:    h.slot,
		Abs:       h.memTail,
		TxID:      txid,
		CoordNode: coordNode,
		CoordSlot: coordSlot,
		CoverOp:   h.coveredOp,
		Entries:   h.pending,
	}
	wire := rec.AppendTo(h.txBuf[:0])
	h.txBuf = wire
	if err := h.waitMemSpace(len(wire)); err != nil {
		return nil, err
	}
	pp := &PendingPrepare{h: h, wireLen: len(wire)}
	if h.opBufCnt > 0 {
		pp.groups = append(pp.groups, h.areaWriteOps(h.opArea, h.opBufAbs, h.opBuf))
	}
	pp.groups = append(pp.groups, h.areaWriteOps(h.memArea, h.memTail, wire))
	if h.c.pipelined() {
		for _, g := range pp.groups {
			pp.toks = append(pp.toks, h.c.ep.PostWriteV(g))
		}
		h.c.ep.Doorbell()
		if h.opBufCnt > 0 {
			// The buffer belongs to the in-flight WR until Settle.
			pp.opBuf = h.opBuf
			h.opBuf = h.takeBuf()
			h.opBufCnt = 0
		}
	} else {
		if err := h.c.epWriteGroups(pp.groups...); err != nil {
			return nil, err
		}
		h.opBuf = h.opBuf[:0]
		h.opBufCnt = 0
	}
	h.c.kick()
	h.c.fe.st.TxPrepares.Add(1)
	return pp, nil
}

// Settle waits the prepare's WRs out (re-driving faulted ones
// synchronously — same bytes, same offsets, idempotent) and advances
// the participant's tail past the record.
func (pp *PendingPrepare) Settle() error {
	if pp == nil || pp.settled {
		return nil
	}
	pp.settled = true
	h := pp.h
	failed := false
	for _, tok := range pp.toks {
		if h.c.ep.Wait(tok) != nil {
			failed = true
		}
	}
	if failed {
		h.c.fe.st.VerbRetries.Add(1)
		if err := h.c.epWriteGroups(pp.groups...); err != nil {
			return err
		}
	}
	if pp.opBuf != nil {
		h.bufFree = append(h.bufFree, pp.opBuf[:0])
		pp.opBuf = nil
	}
	h.memTail += uint64(pp.wireLen)
	h.c.kick()
	return nil
}

// pendingCtl is one posted-but-unsettled control (decision) record.
type pendingCtl struct {
	h     *Handle
	tok   rdma.Token
	group []rdma.WriteOp
	n     int
	done  bool
}

// postCtl appends one CommitRecord to the handle's memory log under its
// own doorbell without waiting for the completion.
func (h *Handle) postCtl(kind byte, txid, coverOp uint64) (*pendingCtl, error) {
	rec := logrec.CommitRecord{Kind: kind, DSSlot: h.slot, Abs: h.memTail, TxID: txid, CoverOp: coverOp}
	wire := rec.AppendTo(h.txBuf[:0])
	h.txBuf = wire
	if err := h.waitMemSpace(len(wire)); err != nil {
		return nil, err
	}
	group := h.areaWriteOps(h.memArea, h.memTail, wire)
	pc := &pendingCtl{h: h, group: group, n: len(wire)}
	if h.c.pipelined() {
		pc.tok = h.c.ep.PostWriteV(group)
		h.c.ep.Doorbell()
	} else {
		if err := h.c.epWriteV(group); err != nil {
			return nil, err
		}
		pc.done = true
		h.memTail += uint64(len(wire))
		h.c.kick()
	}
	return pc, nil
}

// settle waits the control record out and advances the tail.
func (pc *pendingCtl) settle() error {
	if pc.done {
		return nil
	}
	pc.done = true
	h := pc.h
	if err := h.c.ep.Wait(pc.tok); err != nil {
		h.c.fe.st.VerbRetries.Add(1)
		if err := h.c.epWriteV(pc.group); err != nil {
			return err
		}
	}
	h.memTail += uint64(pc.n)
	h.c.kick()
	return nil
}

// appendCtl is postCtl's synchronous form (recovery, aborts, Quiesce).
func (h *Handle) appendCtl(kind byte, txid, coverOp uint64) error {
	rec := logrec.CommitRecord{Kind: kind, DSSlot: h.slot, Abs: h.memTail, TxID: txid, CoverOp: coverOp}
	wire := rec.AppendTo(h.txBuf[:0])
	h.txBuf = wire
	if err := h.waitMemSpace(len(wire)); err != nil {
		return err
	}
	if err := h.c.epWriteV(h.areaWriteOps(h.memArea, h.memTail, wire)); err != nil {
		return err
	}
	h.memTail += uint64(len(wire))
	h.c.kick()
	return nil
}

// finish2PC is the participant's post-decision bookkeeping. On commit
// the buffered entries get a flush mark at the decision's end (the
// replayer confirms application past it); on abort the overlay and
// cache drop the uncommitted values, exactly as Abort does.
func (h *Handle) finish2PC(aborted bool) {
	if aborted {
		h.abortOverlay()
		// Un-schedule the aborted operations' DelayedFrees: their
		// targets (the old versions they would have replaced) stay live.
		if h.gcTxStart <= len(h.gcList) {
			h.gcList = h.gcList[:h.gcTxStart]
		}
		if h.c.fe.cache != nil {
			h.c.fe.cache.Clear()
		}
	} else {
		h.marks = append(h.marks, flushMark{endAbs: h.memTail, addrs: h.pendingAddrs})
		h.undoLog = h.undoLog[:0]
		h.undoArena = h.undoArena[:0]
	}
	h.pending = nil
	h.pendingAddrs = nil
	h.opsInTx = 0
	h.flushCnt++
	h.hold2pc = false
	if len(h.marks) > pruneMarks {
		_ = h.pruneOverlay()
	}
	if h.flushCnt%hintEvery == 0 {
		h.persistHints()
	}
	h.releaseDueGC()
	h.gcTxStart = len(h.gcList)
}
