package core

import (
	"time"

	"asymnvm/internal/stats"
)

// Adaptive batch/depth controller (Mode.AutoTune).
//
// PR 2's sweep showed the best static (B, depth) cell depends on the
// workload mix; this controller finds it online. The effective memory-log
// batch size B and the per-connection pipeline depth start at 1 and are
// adjusted at commit granularity on the p95 of the commit-phase latency
// histogram (the same log2 histogram the PR 3 phase breakdown uses),
// amortized per batched operation:
//
//   - growth phase (slow start): both knobs double every evaluation
//     window while the amortized p95 does not regress, up to the static
//     Mode.Batch / Mode.Pipeline values, which act as ceilings;
//   - on a regression beyond the headroom, multiplicative decrease
//     (halve) and a switch to additive increase — classic AIMD.
//
// Every input is derived from the virtual clock, so two runs with the
// same seed take the same controller trajectory: determinism is what
// lets the chaos soak stay byte-identical with autotune enabled.
const (
	tuneEvalEvery = 2    // commits per controller evaluation window
	tuneHeadroom  = 1.10 // tolerated amortized-p95 growth before backing off
)

type autoTuner struct {
	maxBatch, maxDepth int
	batch, depth       int
	additive           bool // false: slow-start doubling; true: post-backoff AIMD
	hist               stats.Hist // commit-phase latency, controller-owned
	last               stats.HistSnapshot
	lastSignal         int64 // amortized p95 of the previous window; 0 = none yet
	commits            int
}

func newAutoTuner(m Mode) *autoTuner {
	t := &autoTuner{maxBatch: m.Batch, maxDepth: m.Pipeline, batch: 1, depth: 1}
	if t.maxBatch < 1 {
		t.maxBatch = 1
	}
	if t.maxDepth < 1 {
		t.maxDepth = 1
	}
	return t
}

// observeCommit records one commit flush duration (virtual time).
func (t *autoTuner) observeCommit(d time.Duration) {
	if t != nil {
		t.hist.Observe(int64(d))
	}
}

// onCommit advances the controller by one committed transaction and
// reports whether the effective settings changed.
func (t *autoTuner) onCommit() bool {
	t.commits++
	if t.commits%tuneEvalEvery != 0 {
		return false
	}
	snap := t.hist.Snapshot()
	win := snap.Sub(t.last)
	t.last = snap
	if win.Count == 0 {
		return false
	}
	// The controller minimizes commit latency per batched operation: a
	// bigger B takes longer per flush but covers more operations.
	signal := win.Quantile(0.95) / int64(t.batch)
	nb, nd := t.batch, t.depth
	if t.lastSignal == 0 || float64(signal) <= float64(t.lastSignal)*tuneHeadroom {
		if t.additive {
			nb += maxInt(1, t.maxBatch/8)
			nd += maxInt(1, t.maxDepth/8)
		} else {
			nb *= 2
			nd *= 2
		}
		nb = minInt(nb, t.maxBatch)
		nd = minInt(nd, t.maxDepth)
	} else {
		nb = maxInt(1, t.batch/2)
		nd = maxInt(1, t.depth/2)
		t.additive = true
	}
	t.lastSignal = signal
	if nb == t.batch && nd == t.depth {
		return false
	}
	t.batch, t.depth = nb, nd
	return true
}

// effBatch is the batch quota EndOp flushes at: the controller's current
// value when autotune is on, the static mode setting otherwise.
func (fe *Frontend) effBatch() int {
	if fe.tuner != nil {
		return fe.tuner.batch
	}
	return fe.mode.Batch
}

// effDepth is the per-connection pipeline depth currently in force.
func (fe *Frontend) effDepth() int {
	if fe.tuner != nil {
		return fe.tuner.depth
	}
	return fe.mode.Pipeline
}

// tuneCommit feeds one commit flush into the controller and applies any
// setting change to every connection; no-op without autotune.
func (fe *Frontend) tuneCommit(d time.Duration) {
	t := fe.tuner
	if t == nil {
		return
	}
	t.observeCommit(d)
	if !t.onCommit() {
		return
	}
	fe.st.AutoTuneSteps.Add(1)
	fe.st.AutoTuneBatch.Store(int64(t.batch))
	fe.st.AutoTuneDepth.Store(int64(t.depth))
	for _, c := range fe.conns {
		c.ep.SetPipeline(t.depth)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
