package core

import (
	"bytes"
	"math/rand"
	"testing"

	"asymnvm/internal/backend"
)

// TestQuickHandleShadow drives random unit writes and reads through a
// writer handle, checking every read against a shadow map, across flushes
// and drains — the core read-your-writes / overlay / replay contract.
func TestQuickHandleShadow(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			r := newRig(t, 32<<20)
			fe := r.frontend(1, ModeRCB(256<<10, 16))
			c := r.connect(fe)
			h, err := c.Create("shadow", backend.TypeBST, smallOpts)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed))
			// A fixed set of 64-byte units.
			var units []uint64
			for i := 0; i < 24; i++ {
				a, err := h.Alloc(64)
				if err != nil {
					t.Fatal(err)
				}
				units = append(units, a)
			}
			shadow := map[uint64][]byte{}
			for step := 0; step < 400; step++ {
				u := units[rng.Intn(len(units))]
				switch rng.Intn(4) {
				case 0, 1: // write
					v := make([]byte, 64)
					rng.Read(v)
					if _, err := h.OpLog(1, v); err != nil {
						t.Fatal(err)
					}
					if err := h.Write(u, v); err != nil {
						t.Fatal(err)
					}
					if err := h.EndOp(); err != nil {
						t.Fatal(err)
					}
					shadow[u] = v
				case 2: // read
					want, ok := shadow[u]
					if !ok {
						continue
					}
					got, err := h.Read(u, 64, rng.Intn(2) == 0)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("seed %d step %d: unit %#x diverged", seed, step, u)
					}
				case 3: // occasionally force full persistence
					if step%7 == 0 {
						if err := h.Drain(); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
			if err := h.Drain(); err != nil {
				t.Fatal(err)
			}
			// After drain, NVM itself (a fresh reader, no overlay) agrees.
			fe2 := r.frontend(2, ModeR())
			c2 := r.connect(fe2)
			h2, err := c2.Open("shadow", false)
			if err != nil {
				t.Fatal(err)
			}
			for u, want := range shadow {
				got, err := h2.Read(u, 64, false)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("seed %d: unit %#x wrong in NVM after drain", seed, u)
				}
			}
		})
	}
}

// TestQuickWriterHandoff repeatedly "crashes" the writer mid-stream and
// hands the structure to a new front-end, which must resume exactly at
// the durable state.
func TestQuickWriterHandoff(t *testing.T) {
	r := newRig(t, 32<<20)
	shadow := map[uint64][]byte{}
	var units []uint64

	fe := r.frontend(1, ModeR())
	c := r.connect(fe)
	h, err := c.Create("handoff", backend.TypeBST, smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		a, err := h.Alloc(32)
		if err != nil {
			t.Fatal(err)
		}
		units = append(units, a)
	}
	rng := rand.New(rand.NewSource(99))
	for gen := 0; gen < 6; gen++ {
		for step := 0; step < 30; step++ {
			u := units[rng.Intn(len(units))]
			v := make([]byte, 32)
			rng.Read(v)
			if _, err := h.OpLog(1, v); err != nil {
				t.Fatal(err)
			}
			if err := h.Write(u, v); err != nil {
				t.Fatal(err)
			}
			if err := h.EndOp(); err != nil {
				t.Fatal(err)
			}
			shadow[u] = v
		}
		// In unbatched R mode every EndOp flushed its tx, so the shadow
		// is durable. The writer vanishes without unlocking.
		id := uint16(2 + gen)
		fe = r.frontend(id, ModeR())
		c = r.connect(fe)
		h, err = c.Open("handoff", true)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.BreakLock(id - 1); err != nil {
			t.Fatal(err)
		}
		if err := h.WriterLock(); err != nil {
			t.Fatal(err)
		}
		for u, want := range shadow {
			got, err := h.Read(u, 32, false)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("gen %d: unit %#x lost across handoff", gen, u)
			}
		}
	}
}
