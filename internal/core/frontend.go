package core

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"asymnvm/internal/alloc"
	"asymnvm/internal/backend"
	"asymnvm/internal/clock"
	"asymnvm/internal/rdma"
	"asymnvm/internal/stats"
	"asymnvm/internal/trace"
)

// ErrBackendDown is returned when the fabric reports the back-end gone.
var ErrBackendDown = errors.New("core: back-end unreachable")

// Mode is the optimization ladder of the evaluation (Table 3):
// the naive configuration turns everything off; R enables the op-log
// write path with decoupled replay; C enables the DRAM cache; B>1
// enables batching of memory logs (and group commit of op logs).
type Mode struct {
	// OpLog enables the operation-log write path (R). When false, writes
	// go directly in place over RDMA with no crash consistency — the
	// paper's naive baseline.
	OpLog bool
	// CacheBytes > 0 enables the DRAM cache (C) with that capacity.
	CacheBytes int64
	// Batch is the number of operations whose memory logs are coalesced
	// into one rnvm_tx_write (B). 1 disables batching.
	Batch int
	// Policy selects the cache replacement policy (hybrid by default).
	Policy Policy
	// Pipeline is the posted-verb send-queue depth per connection.
	// 0 or 1 keeps every verb synchronous (one RTT charged before the
	// next verb may issue); >1 lets the hot paths post that many work
	// requests asynchronously, paying one RTT per doorbell group.
	Pipeline int
	// AutoTune enables the adaptive controller (autotune.go): the
	// effective batch size and pipeline depth start at 1 and are tuned
	// online — slow-start then AIMD on the p95 of the commit-phase
	// latency — bounded above by the static Batch and Pipeline values,
	// which become ceilings instead of fixed settings. Deterministic on
	// the virtual clock. Requires OpLog.
	AutoTune bool
}

// WithPipeline returns a copy of the mode with the posted-verb queue
// depth set, for composing on top of the ladder constructors:
// core.ModeRCB(cache, 64).WithPipeline(16).
func (m Mode) WithPipeline(depth int) Mode {
	m.Pipeline = depth
	return m
}

// WithAutoTune returns a copy of the mode with the adaptive batch/depth
// controller enabled; Batch and Pipeline become its upper bounds.
func (m Mode) WithAutoTune() Mode {
	m.AutoTune = true
	return m
}

// ModeNaive is the unoptimized baseline.
func ModeNaive() Mode { return Mode{} }

// ModeR enables log reproducing only.
func ModeR() Mode { return Mode{OpLog: true, Batch: 1} }

// ModeRC adds a cache of the given size.
func ModeRC(cacheBytes int64) Mode { return Mode{OpLog: true, Batch: 1, CacheBytes: cacheBytes} }

// ModeRCB adds batching.
func ModeRCB(cacheBytes int64, batch int) Mode {
	return Mode{OpLog: true, Batch: batch, CacheBytes: cacheBytes}
}

// Frontend is one front-end node: a client machine with no NVM of its own
// that operates persistent structures living on remote back-ends.
type Frontend struct {
	id    uint16
	clk   clock.Clock
	st    *stats.Stats
	prof  clock.Profile
	cache *Cache
	mode  Mode
	conns map[uint16]*Conn
	rng   uint64 // xorshift state for skiplist levels etc.
	retry RetryPolicy
	// deadlineAt is the armed virtual-time deadline (0 = none); owned by
	// the node's operating goroutine like the rest of the writer state.
	deadlineAt time.Duration
	tr    *trace.ActorTracer // nil when tracing is disabled
	tuner *autoTuner         // nil unless Mode.AutoTune
}

// FrontendOptions configures a front-end node.
type FrontendOptions struct {
	ID      uint16
	Mode    Mode
	Clock   clock.Clock
	Stats   *stats.Stats
	Profile *clock.Profile
	Retry   *RetryPolicy  // verb retry policy, DefaultRetryPolicy when nil
	Tracer  *trace.Tracer // span tracer registry; nil disables tracing
}

// NewFrontend creates a front-end node.
func NewFrontend(opts FrontendOptions) *Frontend {
	if opts.Clock == nil {
		opts.Clock = clock.NewVirtual()
	}
	if opts.Stats == nil {
		opts.Stats = &stats.Stats{}
	}
	if opts.Profile == nil {
		p := clock.DefaultProfile()
		opts.Profile = &p
	}
	fe := &Frontend{
		id:    opts.ID,
		clk:   opts.Clock,
		st:    opts.Stats,
		prof:  *opts.Profile,
		mode:  opts.Mode,
		conns: make(map[uint16]*Conn),
		rng:   uint64(opts.ID)*0x9E3779B97F4A7C15 + 0x1234567,
		retry: DefaultRetryPolicy(),
	}
	if opts.Retry != nil {
		fe.retry = *opts.Retry
	}
	if opts.Tracer != nil {
		fe.tr = opts.Tracer.Actor(fmt.Sprintf("fe%03d", opts.ID), fe.clk, fe.st)
	}
	if opts.Mode.CacheBytes > 0 {
		fe.cache = NewCache(opts.Mode.CacheBytes, opts.Mode.Policy, opts.Stats)
	}
	if opts.Mode.AutoTune && opts.Mode.OpLog {
		fe.tuner = newAutoTuner(opts.Mode)
		fe.st.AutoTuneBatch.Store(int64(fe.tuner.batch))
		fe.st.AutoTuneDepth.Store(int64(fe.tuner.depth))
	}
	return fe
}

// ID returns the front-end node id (also its RPC slot on each back-end
// and its writer-lock owner id).
func (fe *Frontend) ID() uint16 { return fe.id }

// Clock returns the node's virtual clock.
func (fe *Frontend) Clock() clock.Clock { return fe.clk }

// Stats returns the node's counters.
func (fe *Frontend) Stats() *stats.Stats { return fe.st }

// Mode returns the optimization configuration.
func (fe *Frontend) Mode() Mode { return fe.mode }

// Cache returns the DRAM cache, or nil when caching is off.
func (fe *Frontend) Cache() *Cache { return fe.cache }

// Profile returns the latency model.
func (fe *Frontend) Profile() clock.Profile { return fe.prof }

// Tracer returns the front-end actor's tracer, nil when tracing is off.
func (fe *Frontend) Tracer() *trace.ActorTracer { return fe.tr }

// ChargeOp charges the fixed per-operation CPU cost.
func (fe *Frontend) ChargeOp() {
	fe.clk.Advance(fe.prof.CPUOp)
	fe.tr.Charge(trace.KindCPU, fe.prof.CPUOp)
	fe.st.AddBusy(fe.prof.CPUOp)
}

// Rand returns a fast pseudo-random 64-bit value (xorshift*; front-end
// local, deterministic per node id).
func (fe *Frontend) Rand() uint64 {
	fe.rng ^= fe.rng >> 12
	fe.rng ^= fe.rng << 25
	fe.rng ^= fe.rng >> 27
	return fe.rng * 0x2545F4914F6CDD1D
}

// Conn is this front-end's connection to one back-end: the RDMA endpoint,
// the decoded layout, the RPC client and the two-tier allocator.
type Conn struct {
	fe        *Frontend
	backendID uint16
	ep        *rdma.Endpoint
	layout    backend.Layout
	kick      func()
	rpcSeq    uint64
	slab      *alloc.TwoTier
	epoch     uint64 // back-end incarnation observed at connect
	failover  func() (*backend.Backend, error)
}

// Connect mounts a back-end. kick wakes the back-end service loop — it
// models the RDMA completion event, carries no data, and is the only
// non-NVM channel between the nodes.
func (fe *Frontend) Connect(bk *backend.Backend) (*Conn, error) {
	ep := rdma.Connect(bk.Target(), fe.clk, fe.st, fe.prof)
	ep.SetPipeline(fe.effDepth())
	ep.SetTracer(fe.tr)
	hdr := make([]byte, backend.HeaderSize)
	if err := ep.Read(0, hdr); err != nil {
		return nil, err
	}
	layout, err := backend.DecodeLayout(hdr)
	if err != nil {
		return nil, err
	}
	if uint64(fe.id) >= layout.RPCSlots {
		return nil, fmt.Errorf("core: front-end id %d exceeds the back-end's %d connection slots", fe.id, layout.RPCSlots)
	}
	c := &Conn{
		fe:        fe,
		backendID: bk.ID(),
		ep:        ep,
		layout:    layout,
		kick:      bk.Kick,
	}
	// Resume the RPC sequence from the response cell (idempotent across
	// front-end restarts).
	cell := make([]byte, 64)
	if err := ep.Read(layout.RPCRespOff(fe.id), cell); err != nil {
		return nil, err
	}
	if resp, ok := backend.DecodeRPCResponse(cell); ok {
		c.rpcSeq = resp.Seq
	}
	c.epoch, err = ep.Load64(backend.EpochOff)
	if err != nil {
		return nil, err
	}
	c.slab = alloc.NewTwoTier((*slabRPC)(c), int(layout.BlockSize))
	fe.conns[bk.ID()] = c
	return c, nil
}

// BackendID reports the remote node id.
func (c *Conn) BackendID() uint16 { return c.backendID }

// Layout returns the remote device layout.
func (c *Conn) Layout() backend.Layout { return c.layout }

// Endpoint exposes the raw verb interface (used by tests and recovery).
func (c *Conn) Endpoint() *rdma.Endpoint { return c.ep }

// Kick wakes the remote service loop.
func (c *Conn) Kick() { c.kick() }

// Frontend returns the owning node.
func (c *Conn) Frontend() *Frontend { return c.fe }

// errRPCNoResponse marks an RPC poll timeout. It is retried like a lost
// completion: re-sending the same sequence number is exactly-once (the
// back-end dedups by seq, and a stale duplicate finds its response already
// in the cell).
var errRPCNoResponse = errors.New("core: no RPC response")

// rpc performs one ring RPC: write the request cell, kick, poll the
// response cell. Two round trips in the common case, exactly the RFP
// pattern of §5.1. The whole exchange is the retry/failover unit — a
// faulted request write, a dropped response, or a back-end death mid-call
// each re-drive the same sequence number, against the replacement node
// after a failover.
func (c *Conn) rpc(op, a1, a2 uint64) (backend.RPCResponse, error) {
	c.rpcSeq++
	req := backend.EncodeRPCRequest(backend.RPCRequest{Seq: c.rpcSeq, Op: op, A1: a1, A2: a2})
	var resp backend.RPCResponse
	c.fe.tr.BeginArg(trace.KindRPC, op)
	defer c.fe.tr.End()
	err := c.do(func() error {
		if err := c.ep.Write(c.layout.RPCReqOff(c.fe.id), req); err != nil {
			return err
		}
		c.kick()
		cell := make([]byte, 64)
		for i := 0; ; i++ {
			var err error
			if i == 0 {
				// The response fetch costs one round trip; repeat polls are
				// quiet (see rdma.ReadQuiet) so host scheduling neither
				// inflates virtual time nor consumes fault-schedule
				// randomness.
				err = c.ep.Read(c.layout.RPCRespOff(c.fe.id), cell)
			} else {
				err = c.ep.ReadQuiet(c.layout.RPCRespOff(c.fe.id), cell)
			}
			if err != nil {
				return err
			}
			if r, ok := backend.DecodeRPCResponse(cell); ok && r.Seq == c.rpcSeq {
				resp = r
				return nil
			}
			if i > 1<<20 {
				return fmt.Errorf("%w: seq %d", errRPCNoResponse, c.rpcSeq)
			}
			runtime.Gosched()
		}
	})
	if err != nil {
		return backend.RPCResponse{}, err
	}
	return resp, nil
}

// Malloc allocates raw back-end blocks (rnvm_malloc through the ring).
func (c *Conn) Malloc(size uint64) (uint64, error) {
	resp, err := c.rpc(backend.RPCMalloc, size, 0)
	if err != nil {
		return 0, err
	}
	if resp.Status != backend.RPCOK {
		return 0, fmt.Errorf("core: malloc(%d) failed with status %d", size, resp.Status)
	}
	return resp.Result, nil
}

// Free releases raw back-end blocks (rnvm_free).
func (c *Conn) Free(addr, size uint64) error {
	resp, err := c.rpc(backend.RPCFree, addr, size)
	if err != nil {
		return err
	}
	if resp.Status != backend.RPCOK {
		return fmt.Errorf("core: free(%#x,%d) failed with status %d", addr, size, resp.Status)
	}
	return nil
}

// Alloc allocates size bytes through the two-tier allocator: sub-slab
// requests are served from front-end slab lists, large ones go straight
// to the back-end (§5.2).
func (c *Conn) Alloc(size int) (uint64, error) {
	c.fe.st.Allocs.Add(1)
	return c.slab.Alloc(size)
}

// Release frees an allocation made with Alloc.
func (c *Conn) Release(addr uint64, size int) error {
	c.fe.st.Frees.Add(1)
	return c.slab.Free(addr, size)
}

// slabRPC adapts the ring RPC to the allocator's SlabSource.
type slabRPC Conn

func (s *slabRPC) AllocSlab(n int) (uint64, error) { return (*Conn)(s).Malloc(uint64(n)) }
func (s *slabRPC) FreeSlab(addr uint64, n int) error {
	return (*Conn)(s).Free(addr, uint64(n))
}

// ReadEpoch re-reads the back-end incarnation counter; a change means the
// back-end restarted since connect (Case 3 of §7.2).
func (c *Conn) ReadEpoch() (uint64, error) { return c.epLoad64(backend.EpochOff) }

// SlotSN loads a naming slot's seqlock word. The replayer bumps it twice
// per applied transaction, so comparing the primary's and a mirror's
// values for the same slot yields the mirror's staleness in applied-
// transaction epochs: (primarySN - mirrorSN) / 2.
func (c *Conn) SlotSN(slot uint16) (uint64, error) {
	return c.epLoad64(c.layout.SNOff(slot))
}
