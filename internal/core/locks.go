package core

import (
	"fmt"
	"runtime"
	"sort"

	"asymnvm/internal/backend"
	"asymnvm/internal/trace"
)

// Concurrency control (§6). Writes are exclusive per structure (SWMR):
// the writer takes an RDMA-CAS lock whose word sits next to the root
// reference, journalling every acquire/release in the lock-ahead log so a
// crashed holder can be identified and the lock broken during recovery
// (§6.1). Readers of lock-based structures use the retry-based optimistic
// seqlock of Algorithm 2: the sequence number is incremented twice around
// every transaction application — by the back-end replayer, which is where
// modifications actually land.

// WriterLock acquires the structure's exclusive write lock (Algorithm 1),
// spinning on RDMA_Compare_And_Swap, then journals the acquisition and
// fetches the LPN as §6.1 prescribes.
func (h *Handle) WriterLock() error {
	if !h.writer {
		return ErrNotWriter
	}
	if h.lockHeld {
		return nil
	}
	lockOff := h.c.layout.LockOff(h.slot)
	me := uint64(h.c.fe.id) + 1
	for i := 0; ; i++ {
		_, ok, err := h.c.epCAS(lockOff, 0, me)
		if err != nil {
			return err
		}
		if ok {
			break
		}
		if h.shared {
			// Another front-end holds this stripe; every failed CAS is one
			// wasted round trip of lock contention.
			h.c.fe.st.StripeConflicts.Add(1)
		}
		if i > pollLimit {
			return fmt.Errorf("core: writer lock on slot %d stuck", h.slot)
		}
		runtime.Gosched()
	}
	// Lock-ahead log: written before any memory logs are appended.
	if err := h.c.epStore64(h.c.layout.LockLogOff(h.slot), me<<1|1); err != nil {
		return err
	}
	// Fetch the LPN (§6.1) so flow control starts from fresh state.
	lpn, err := h.auxField(backend.AuxLPNOff)
	if err != nil {
		return err
	}
	h.lpnKnown = lpn
	if h.shared {
		// Adopt the tails the previous holder persisted at release and
		// drop any locally cached view that predates its writes.
		if err := h.resyncShared(); err != nil {
			_ = h.c.epStore64(h.c.layout.LockLogOff(h.slot), me<<1)
			_ = h.c.epStore64(lockOff, 0)
			return err
		}
	}
	h.lockHeld = true
	return nil
}

// WriterUnlock flushes outstanding logs, journals the release, and resets
// the lock word with an RDMA write. While a pin from LockOrdered is held
// the call is a no-op, so per-operation lock brackets compose with a held
// multi-stripe lock set. A shared (striped) lock additionally drains and
// persists exact tail hints before release, so the next holder's
// resyncShared adopts the true durable tails.
func (h *Handle) WriterUnlock() error {
	if !h.lockHeld || h.lockPin > 0 {
		return nil
	}
	if err := h.Flush(); err != nil {
		return err
	}
	if h.shared {
		if err := h.Drain(); err != nil {
			return err
		}
		h.persistHints()
	}
	me := uint64(h.c.fe.id) + 1
	if err := h.c.epStore64(h.c.layout.LockLogOff(h.slot), me<<1); err != nil {
		return err
	}
	if err := h.c.epStore64(h.c.layout.LockOff(h.slot), 0); err != nil {
		return err
	}
	h.lockHeld = false
	return nil
}

// BreakLock force-clears a lock held by a crashed front-end (invoked by
// recovery after the keepAlive service declares the holder dead). It
// journals the break so the action itself is crash-safe.
func (h *Handle) BreakLock(deadOwner uint16) error {
	lockOff := h.c.layout.LockOff(h.slot)
	dead := uint64(deadOwner) + 1
	cur, err := h.c.epLoad64(lockOff)
	if err != nil {
		return err
	}
	if cur != dead {
		return nil // not held by the dead node (already released)
	}
	if err := h.c.epStore64(h.c.layout.LockLogOff(h.slot), dead<<1); err != nil {
		return err
	}
	_, _, err = h.c.epCAS(lockOff, dead, 0)
	return err
}

// LockOrdered acquires the writer locks of every handle in hs in global
// (backend, slot) order — a total order over all stripes, so two
// multi-stripe operations with overlapping stripe sets always contend on
// their common stripes in the same sequence and cannot deadlock. Each
// acquisition is traced as a stripe-acquire span and pinned: WriterUnlock
// calls issued by per-operation lock brackets while the pin is held are
// no-ops, so single-key operations compose under a held lock set. On
// error the already-acquired locks are released in reverse order. hs is
// sorted in place; duplicate handles are tolerated (the pin nests).
func LockOrdered(hs ...*Handle) error {
	sortByLockOrder(hs)
	for i, h := range hs {
		tr := h.c.fe.tr
		tr.BeginArg(trace.KindStripeAcquire, uint64(h.slot))
		err := h.WriterLock()
		tr.End()
		if err != nil {
			for j := i - 1; j >= 0; j-- {
				hs[j].lockPin--
				_ = hs[j].WriterUnlock()
			}
			return err
		}
		h.lockPin++
	}
	return nil
}

// UnlockOrdered releases a lock set taken with LockOrdered, in reverse
// acquisition order. The first error is reported; later handles are
// still unpinned and released.
func UnlockOrdered(hs ...*Handle) error {
	sortByLockOrder(hs)
	var firstErr error
	for i := len(hs) - 1; i >= 0; i-- {
		h := hs[i]
		if h.lockPin > 0 {
			h.lockPin--
		}
		if err := h.WriterUnlock(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func sortByLockOrder(hs []*Handle) {
	sort.Slice(hs, func(i, j int) bool {
		if hs[i].c.backendID != hs[j].c.backendID {
			return hs[i].c.backendID < hs[j].c.backendID
		}
		return hs[i].slot < hs[j].slot
	})
}

// ReaderLock begins an optimistic read section (Algorithm 2): it loads
// the sequence number, waiting out odd values (a transaction is being
// applied), and records it as the cache-validity epoch for the section.
func (h *Handle) ReaderLock() error {
	if h.mv {
		return nil // multi-version readers are lock-free
	}
	snOff := h.c.layout.SNOff(h.slot)
	for i := 0; ; i++ {
		sn, err := h.c.epLoad64(snOff)
		if err != nil {
			return err
		}
		if sn%2 == 0 {
			h.curSN = sn
			return nil
		}
		if i > pollLimit {
			return fmt.Errorf("core: seqlock on slot %d stuck odd", h.slot)
		}
		runtime.Gosched()
	}
}

// ReaderValidate ends the section: the reads in between form a consistent
// snapshot iff the sequence number did not move. On false the caller
// retries the whole operation (stale cache entries fall out automatically
// because their epoch no longer matches).
func (h *Handle) ReaderValidate() (bool, error) {
	if h.mv {
		return true, nil
	}
	sn, err := h.c.epLoad64(h.c.layout.SNOff(h.slot))
	if err != nil {
		return false, err
	}
	if sn == h.curSN {
		return true, nil
	}
	h.c.fe.st.ReadRetry.Add(1)
	return false, nil
}
