// Package core implements the AsymNVM front-end framework — the paper's
// primary contribution. A front-end node mounts remote back-ends over the
// RDMA fabric and gives data-structure implementations the underlying API
// of Table 1: rnvm_read/rnvm_write, rnvm_mem_log/rnvm_op_log/rnvm_tx_write,
// rnvm_malloc/rnvm_free, and the writer/reader locks — together with the
// DRAM cache, memory-log batching, the Gather–Apply write path, and the
// crash-recovery client side of §7.2.
package core

import (
	"container/list"
	"math/rand"

	"asymnvm/internal/stats"
)

// Policy selects the cache replacement strategy of §4.4.
type Policy int

// Replacement policies. PolicyHybrid is the paper's choice: pick a random
// candidate set, evict the least recently used member — LRU-quality hit
// ratios at random-replacement cost.
const (
	PolicyHybrid Policy = iota
	PolicyLRU
	PolicyRR
)

// HybridSetSize is the random candidate-set size (32 in §4.4).
const HybridSetSize = 32

type cacheEntry struct {
	addr  uint64
	data  []byte
	tag   uint32 // owning structure (for per-structure invalidation)
	epoch uint64 // seqlock SN the bytes were read under; ^0 = always valid
	use   uint64 // logical use counter for hybrid sampling
	elem  *list.Element
	slot  int // index in the sampling slice
}

// EpochAlways marks entries that never go stale (immutable nodes of
// multi-version structures, and the single writer's own write-through
// entries).
const EpochAlways = ^uint64(0)

// Cache is the front-end DRAM object cache. Entries are whole structure
// nodes ("pages" whose size is set per structure, §4.4), keyed by global
// NVM address. Owned by a single front-end actor; not safe for concurrent
// use.
type Cache struct {
	capacity int64
	used     int64
	policy   Policy
	entries  map[uint64]*cacheEntry
	byTag    map[uint32]map[uint64]*cacheEntry // per-structure index for InvalidateTag
	lru      *list.List                        // front = most recent
	sample   []*cacheEntry
	tick     uint64
	rng      *rand.Rand
	st       *stats.Stats

	tagScanned int // entries visited by the last InvalidateTag (test hook)
}

// NewCache builds a cache holding at most capacity bytes of node data.
func NewCache(capacity int64, policy Policy, st *stats.Stats) *Cache {
	if st == nil {
		st = &stats.Stats{}
	}
	return &Cache{
		capacity: capacity,
		policy:   policy,
		entries:  make(map[uint64]*cacheEntry),
		byTag:    make(map[uint32]map[uint64]*cacheEntry),
		lru:      list.New(),
		rng:      rand.New(rand.NewSource(0x5eed)),
		st:       st,
	}
}

// Len reports the number of cached entries.
func (c *Cache) Len() int { return len(c.entries) }

// Used reports the cached bytes.
func (c *Cache) Used() int64 { return c.used }

// Get returns the cached bytes for addr when present and valid at epoch.
// Entries tagged EpochAlways match any epoch. The returned slice is the
// cache's own copy; callers must not retain it across mutations. A miss
// is counted only when countMiss is set — reads the caller deliberately
// routes around the cache (cold tree levels, §8.3) are direct remote
// reads, not cache misses.
func (c *Cache) Get(addr uint64, epoch uint64, countMiss bool) ([]byte, bool) {
	e, ok := c.entries[addr]
	if !ok {
		if countMiss {
			c.st.CacheMiss.Add(1)
		}
		return nil, false
	}
	if e.epoch != EpochAlways && e.epoch != epoch {
		// Stale under the seqlock: drop so the refill replaces it.
		c.remove(e)
		if countMiss {
			c.st.CacheMiss.Add(1)
		}
		return nil, false
	}
	c.touch(e)
	c.st.CacheHit.Add(1)
	return e.data, true
}

// Contains reports presence without counting a hit or miss.
func (c *Cache) Contains(addr uint64) bool {
	_, ok := c.entries[addr]
	return ok
}

// Put inserts (or replaces) the bytes for addr.
func (c *Cache) Put(addr uint64, data []byte, tag uint32, epoch uint64) {
	if int64(len(data)) > c.capacity {
		return // larger than the whole cache: bypass
	}
	if e, ok := c.entries[addr]; ok {
		c.used += int64(len(data)) - int64(len(e.data))
		e.data = append(e.data[:0], data...)
		if e.tag != tag {
			c.untag(e)
			e.tag = tag
			c.retag(e)
		}
		e.epoch = epoch
		c.touch(e)
	} else {
		e := &cacheEntry{addr: addr, data: append([]byte(nil), data...), tag: tag, epoch: epoch}
		e.elem = c.lru.PushFront(e)
		e.slot = len(c.sample)
		c.sample = append(c.sample, e)
		c.entries[addr] = e
		c.retag(e)
		c.used += int64(len(data))
		c.touch(e)
	}
	for c.used > c.capacity {
		c.evictOne()
	}
}

// Update applies an in-place sub-range modification to a cached entry if
// present (the write-through of Figure 4's step 4). It reports whether the
// entry existed.
func (c *Cache) Update(addr uint64, off int, data []byte) bool {
	e, ok := c.entries[addr]
	if !ok {
		return false
	}
	if off < 0 || off+len(data) > len(e.data) {
		// Partial overlap with a differently-sized entry: drop it.
		c.remove(e)
		return false
	}
	copy(e.data[off:], data)
	return true
}

// Invalidate drops the entry for addr if present.
func (c *Cache) Invalidate(addr uint64) {
	if e, ok := c.entries[addr]; ok {
		c.remove(e)
	}
}

// InvalidateTag drops every entry owned by one structure. The per-tag
// index makes this O(entries of that tag) instead of a full-cache scan —
// dropping one structure must not stall a front-end caching millions of
// nodes from its neighbours.
func (c *Cache) InvalidateTag(tag uint32) {
	set := c.byTag[tag]
	c.tagScanned = len(set)
	for _, e := range set {
		c.remove(e)
	}
}

// Clear empties the cache (used when a back-end failure aborts the
// in-flight transaction, §4.3).
func (c *Cache) Clear() {
	c.entries = make(map[uint64]*cacheEntry)
	c.byTag = make(map[uint32]map[uint64]*cacheEntry)
	c.lru.Init()
	c.sample = c.sample[:0]
	c.used = 0
}

func (c *Cache) touch(e *cacheEntry) {
	c.tick++
	e.use = c.tick
	c.lru.MoveToFront(e.elem)
}

func (c *Cache) retag(e *cacheEntry) {
	set := c.byTag[e.tag]
	if set == nil {
		set = make(map[uint64]*cacheEntry)
		c.byTag[e.tag] = set
	}
	set[e.addr] = e
}

func (c *Cache) untag(e *cacheEntry) {
	set := c.byTag[e.tag]
	delete(set, e.addr)
	if len(set) == 0 {
		delete(c.byTag, e.tag)
	}
}

func (c *Cache) remove(e *cacheEntry) {
	delete(c.entries, e.addr)
	c.untag(e)
	c.lru.Remove(e.elem)
	last := len(c.sample) - 1
	c.sample[e.slot] = c.sample[last]
	c.sample[e.slot].slot = e.slot
	c.sample = c.sample[:last]
	c.used -= int64(len(e.data))
}

// evictOne removes one victim according to the policy.
func (c *Cache) evictOne() {
	if len(c.sample) == 0 {
		return
	}
	var victim *cacheEntry
	switch c.policy {
	case PolicyLRU:
		victim = c.lru.Back().Value.(*cacheEntry)
	case PolicyRR:
		victim = c.sample[c.rng.Intn(len(c.sample))]
	default: // PolicyHybrid: random set, then least-recently-used member
		k := HybridSetSize
		if k > len(c.sample) {
			k = len(c.sample)
		}
		for i := 0; i < k; i++ {
			cand := c.sample[c.rng.Intn(len(c.sample))]
			if victim == nil || cand.use < victim.use {
				victim = cand
			}
		}
	}
	c.remove(victim)
	c.st.CacheEvict.Add(1)
}
