package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"asymnvm/internal/backend"
	"asymnvm/internal/rdma"
)

// TestTransientVerbRetried: a burst of injected faults shorter than the
// attempt budget is absorbed transparently, counted, and charged to the
// virtual clock as backoff.
func TestTransientVerbRetried(t *testing.T) {
	r := newRig(t, 8<<20)
	fe := r.frontend(1, ModeR())
	c := r.connect(fe)
	fails := 3
	c.Endpoint().SetFault(func(op rdma.Op, off uint64, n int) rdma.Fault {
		if op == rdma.OpRead && fails > 0 {
			fails--
			return rdma.Fault{Err: rdma.ErrInjected}
		}
		return rdma.Fault{}
	})
	before := fe.Clock().Now()
	buf := make([]byte, 8)
	if err := c.epRead(0, buf); err != nil {
		t.Fatalf("3 transient faults within a 10-attempt budget must be absorbed: %v", err)
	}
	if got := fe.Stats().VerbRetries.Load(); got != 3 {
		t.Fatalf("VerbRetries = %d, want 3", got)
	}
	// Backoff 2µs + 4µs + 8µs; the zero profile charges nothing else.
	if d := fe.Clock().Now() - before; d < 14*time.Microsecond {
		t.Fatalf("backoff must be charged to the virtual clock, advanced only %v", d)
	}
}

// TestRetryExhaustion: a fault outliving the budget surfaces the original
// sentinel wrapped in a giving-up error.
func TestRetryExhaustion(t *testing.T) {
	r := newRig(t, 8<<20)
	fe := r.frontend(1, ModeR())
	fe.SetRetryPolicy(RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Microsecond, MaxBackoff: 2 * time.Microsecond})
	c := r.connect(fe)
	c.Endpoint().SetFault(func(op rdma.Op, off uint64, n int) rdma.Fault {
		if op == rdma.OpRead {
			return rdma.Fault{Err: rdma.ErrInjected}
		}
		return rdma.Fault{}
	})
	err := c.epRead(0, make([]byte, 8))
	if !errors.Is(err, rdma.ErrInjected) {
		t.Fatalf("exhaustion must surface the sentinel: %v", err)
	}
	if !strings.Contains(err.Error(), "giving up after 4 attempts") {
		t.Fatalf("error must report the attempt budget: %v", err)
	}
	if got := fe.Stats().VerbRetries.Load(); got != 3 {
		t.Fatalf("VerbRetries = %d, want 3 (4 attempts)", got)
	}
}

// TestFatalFaultFailsOver: a disconnect invokes the failover delegate,
// re-targets the endpoint, and the verb completes against the
// replacement with a fresh attempt budget.
func TestFatalFaultFailsOver(t *testing.T) {
	r := newRig(t, 8<<20)
	fe := r.frontend(1, ModeR())
	c := r.connect(fe)
	dead := true
	c.Endpoint().SetFault(func(op rdma.Op, off uint64, n int) rdma.Fault {
		if dead {
			return rdma.Fault{Err: rdma.ErrDisconnected}
		}
		return rdma.Fault{}
	})
	calls := 0
	c.SetFailover(func() (*backend.Backend, error) {
		calls++
		dead = false // the "replacement" is the same node, now reachable
		return r.bk, nil
	})
	if err := c.epStore64(backend.HeaderSize, 7); err != nil {
		t.Fatalf("verb must complete after failover: %v", err)
	}
	if calls != 1 {
		t.Fatalf("failover delegate called %d times, want 1", calls)
	}
	if got := fe.Stats().Failovers.Load(); got != 1 {
		t.Fatalf("Failovers = %d, want 1", got)
	}
	if v, _ := c.Endpoint().Load64Quiet(backend.HeaderSize); v != 7 {
		t.Fatalf("store after failover read back %d", v)
	}
}

// TestFatalWithoutDelegate: with nobody to fail over to, the error class
// surfaces as ErrBackendDown.
func TestFatalWithoutDelegate(t *testing.T) {
	r := newRig(t, 8<<20)
	c := r.connect(r.frontend(1, ModeR()))
	c.Endpoint().SetFault(func(rdma.Op, uint64, int) rdma.Fault {
		return rdma.Fault{Err: rdma.ErrDisconnected}
	})
	err := c.epRead(0, make([]byte, 8))
	if !errors.Is(err, ErrBackendDown) {
		t.Fatalf("want ErrBackendDown, got %v", err)
	}
	if !errors.Is(err, rdma.ErrDisconnected) {
		t.Fatalf("cause must stay unwrappable: %v", err)
	}
}

// TestRPCRetriesWholeExchange: an RPC whose request write faults is
// re-driven end to end with the same sequence number — the allocation
// happens exactly once.
func TestRPCRetriesWholeExchange(t *testing.T) {
	r := newRig(t, 8<<20)
	fe := r.frontend(1, ModeR())
	c := r.connect(fe)
	fails := 2
	c.Endpoint().SetFault(func(op rdma.Op, off uint64, n int) rdma.Fault {
		if op == rdma.OpWrite && fails > 0 {
			fails--
			return rdma.Fault{Err: rdma.ErrInjected}
		}
		return rdma.Fault{}
	})
	a1, err := c.Malloc(4096)
	if err != nil {
		t.Fatalf("faulted malloc: %v", err)
	}
	c.Endpoint().SetFault(nil)
	a2, err := c.Malloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	if a1 == a2 {
		t.Fatal("retried RPC must not double-allocate")
	}
	if got := fe.Stats().VerbRetries.Load(); got < 2 {
		t.Fatalf("VerbRetries = %d, want >= 2", got)
	}
}

// TestClassify pins the error taxonomy.
func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want errClass
	}{
		{rdma.ErrInjected, classTransient},
		{errRPCNoResponse, classTransient},
		{rdma.ErrDisconnected, classFatal},
		{errors.New("bounds"), classPermanent},
	}
	for _, tc := range cases {
		if got := classify(tc.err); got != tc.want {
			t.Errorf("classify(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}
