package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"asymnvm/internal/backend"
	"asymnvm/internal/rdma"
)

// TestTransientVerbRetried: a burst of injected faults shorter than the
// attempt budget is absorbed transparently, counted, and charged to the
// virtual clock as backoff.
func TestTransientVerbRetried(t *testing.T) {
	r := newRig(t, 8<<20)
	fe := r.frontend(1, ModeR())
	c := r.connect(fe)
	fails := 3
	c.Endpoint().SetFault(func(op rdma.Op, off uint64, n int) rdma.Fault {
		if op == rdma.OpRead && fails > 0 {
			fails--
			return rdma.Fault{Err: rdma.ErrInjected}
		}
		return rdma.Fault{}
	})
	before := fe.Clock().Now()
	buf := make([]byte, 8)
	if err := c.epRead(0, buf); err != nil {
		t.Fatalf("3 transient faults within a 10-attempt budget must be absorbed: %v", err)
	}
	if got := fe.Stats().VerbRetries.Load(); got != 3 {
		t.Fatalf("VerbRetries = %d, want 3", got)
	}
	// Backoff 2µs + 4µs + 8µs; the zero profile charges nothing else.
	if d := fe.Clock().Now() - before; d < 14*time.Microsecond {
		t.Fatalf("backoff must be charged to the virtual clock, advanced only %v", d)
	}
}

// TestRetryExhaustion: a fault outliving the budget surfaces the original
// sentinel wrapped in a giving-up error.
func TestRetryExhaustion(t *testing.T) {
	r := newRig(t, 8<<20)
	fe := r.frontend(1, ModeR())
	fe.SetRetryPolicy(RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Microsecond, MaxBackoff: 2 * time.Microsecond})
	c := r.connect(fe)
	c.Endpoint().SetFault(func(op rdma.Op, off uint64, n int) rdma.Fault {
		if op == rdma.OpRead {
			return rdma.Fault{Err: rdma.ErrInjected}
		}
		return rdma.Fault{}
	})
	err := c.epRead(0, make([]byte, 8))
	if !errors.Is(err, rdma.ErrInjected) {
		t.Fatalf("exhaustion must surface the sentinel: %v", err)
	}
	if !strings.Contains(err.Error(), "giving up after 4 attempts") {
		t.Fatalf("error must report the attempt budget: %v", err)
	}
	if got := fe.Stats().VerbRetries.Load(); got != 3 {
		t.Fatalf("VerbRetries = %d, want 3 (4 attempts)", got)
	}
}

// TestFatalFaultFailsOver: a disconnect invokes the failover delegate,
// re-targets the endpoint, and the verb completes against the
// replacement with a fresh attempt budget.
func TestFatalFaultFailsOver(t *testing.T) {
	r := newRig(t, 8<<20)
	fe := r.frontend(1, ModeR())
	c := r.connect(fe)
	dead := true
	c.Endpoint().SetFault(func(op rdma.Op, off uint64, n int) rdma.Fault {
		if dead {
			return rdma.Fault{Err: rdma.ErrDisconnected}
		}
		return rdma.Fault{}
	})
	calls := 0
	c.SetFailover(func() (*backend.Backend, error) {
		calls++
		dead = false // the "replacement" is the same node, now reachable
		return r.bk, nil
	})
	if err := c.epStore64(backend.HeaderSize, 7); err != nil {
		t.Fatalf("verb must complete after failover: %v", err)
	}
	if calls != 1 {
		t.Fatalf("failover delegate called %d times, want 1", calls)
	}
	if got := fe.Stats().Failovers.Load(); got != 1 {
		t.Fatalf("Failovers = %d, want 1", got)
	}
	if v, _ := c.Endpoint().Load64Quiet(backend.HeaderSize); v != 7 {
		t.Fatalf("store after failover read back %d", v)
	}
}

// TestFatalWithoutDelegate: with nobody to fail over to, the error class
// surfaces as ErrBackendDown.
func TestFatalWithoutDelegate(t *testing.T) {
	r := newRig(t, 8<<20)
	c := r.connect(r.frontend(1, ModeR()))
	c.Endpoint().SetFault(func(rdma.Op, uint64, int) rdma.Fault {
		return rdma.Fault{Err: rdma.ErrDisconnected}
	})
	err := c.epRead(0, make([]byte, 8))
	if !errors.Is(err, ErrBackendDown) {
		t.Fatalf("want ErrBackendDown, got %v", err)
	}
	if !errors.Is(err, rdma.ErrDisconnected) {
		t.Fatalf("cause must stay unwrappable: %v", err)
	}
}

// TestRPCRetriesWholeExchange: an RPC whose request write faults is
// re-driven end to end with the same sequence number — the allocation
// happens exactly once.
func TestRPCRetriesWholeExchange(t *testing.T) {
	r := newRig(t, 8<<20)
	fe := r.frontend(1, ModeR())
	c := r.connect(fe)
	fails := 2
	c.Endpoint().SetFault(func(op rdma.Op, off uint64, n int) rdma.Fault {
		if op == rdma.OpWrite && fails > 0 {
			fails--
			return rdma.Fault{Err: rdma.ErrInjected}
		}
		return rdma.Fault{}
	})
	a1, err := c.Malloc(4096)
	if err != nil {
		t.Fatalf("faulted malloc: %v", err)
	}
	c.Endpoint().SetFault(nil)
	a2, err := c.Malloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	if a1 == a2 {
		t.Fatal("retried RPC must not double-allocate")
	}
	if got := fe.Stats().VerbRetries.Load(); got < 2 {
		t.Fatalf("VerbRetries = %d, want >= 2", got)
	}
}

// TestClassify pins the error taxonomy: the retry loop's whole behavior
// hangs on which of the three classes an error falls into, including
// wrapped forms (errors.Is must see through fmt.Errorf chains) and the
// deadline sentinel, which is permanent by design — a doomed request
// must not burn further attempts.
func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want errClass
	}{
		{"nil", nil, classPermanent},
		{"injected", rdma.ErrInjected, classTransient},
		{"injected wrapped", fmt.Errorf("verb: %w", rdma.ErrInjected), classTransient},
		{"rpc timeout", errRPCNoResponse, classTransient},
		{"rpc timeout wrapped", fmt.Errorf("%w: seq 9", errRPCNoResponse), classTransient},
		{"disconnected", rdma.ErrDisconnected, classFatal},
		{"disconnected wrapped", fmt.Errorf("flush: %w", rdma.ErrDisconnected), classFatal},
		{"deadline", ErrDeadlineExceeded, classPermanent},
		{"bounds", errors.New("bounds"), classPermanent},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := classify(tc.err); got != tc.want {
				t.Errorf("classify(%v) = %d, want %d", tc.err, got, tc.want)
			}
		})
	}
}

// TestBackoffDelay pins the backoff ceiling math: exponential doubling
// from BaseBackoff, capped at MaxBackoff, with deep attempts saturating
// at the cap instead of overflowing the shift.
func TestBackoffDelay(t *testing.T) {
	pol := RetryPolicy{MaxAttempts: 10, BaseBackoff: 2 * time.Microsecond, MaxBackoff: 256 * time.Microsecond}
	cases := []struct {
		name    string
		pol     RetryPolicy
		attempt int
		want    time.Duration
	}{
		{"first retry", pol, 1, 2 * time.Microsecond},
		{"doubles", pol, 2, 4 * time.Microsecond},
		{"doubles again", pol, 3, 8 * time.Microsecond},
		{"hits ceiling exactly", pol, 8, 256 * time.Microsecond},
		{"clamped past ceiling", pol, 9, 256 * time.Microsecond},
		{"deep attempt saturates", pol, 40, 256 * time.Microsecond},
		{"overflow-deep attempt saturates", pol, 1000, 256 * time.Microsecond},
		{"attempt zero charges nothing", pol, 0, 0},
		{"no base disables backoff", RetryPolicy{MaxAttempts: 5}, 3, 0},
		{"no ceiling keeps doubling", RetryPolicy{BaseBackoff: time.Microsecond}, 5, 16 * time.Microsecond},
		{"overflow without ceiling falls back to base",
			RetryPolicy{BaseBackoff: time.Microsecond}, 200, time.Microsecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := backoffDelay(tc.pol, tc.attempt); got != tc.want {
				t.Errorf("backoffDelay(%+v, %d) = %v, want %v", tc.pol, tc.attempt, got, tc.want)
			}
		})
	}
}

// TestClampToDeadline pins the deadline-propagation arithmetic: backoff
// never sleeps past the remaining budget, and an already-blown budget
// clamps to zero so the next attempt's deadline check fires immediately.
func TestClampToDeadline(t *testing.T) {
	cases := []struct {
		name               string
		backoff, remaining time.Duration
		hasDeadline        bool
		want               time.Duration
	}{
		{"no deadline passes through", 8 * time.Microsecond, 0, false, 8 * time.Microsecond},
		{"fits inside budget", 8 * time.Microsecond, 20 * time.Microsecond, true, 8 * time.Microsecond},
		{"exactly the budget", 8 * time.Microsecond, 8 * time.Microsecond, true, 8 * time.Microsecond},
		{"clamped to remainder", 8 * time.Microsecond, 3 * time.Microsecond, true, 3 * time.Microsecond},
		{"budget already blown", 8 * time.Microsecond, -time.Microsecond, true, 0},
		{"zero remainder", 8 * time.Microsecond, 0, true, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := clampToDeadline(tc.backoff, tc.remaining, tc.hasDeadline); got != tc.want {
				t.Errorf("clampToDeadline(%v, %v, %v) = %v, want %v",
					tc.backoff, tc.remaining, tc.hasDeadline, got, tc.want)
			}
		})
	}
}

// TestDeadlineShortCircuit: an expired deadline fails the verb before
// the fabric is touched — no attempt, no retry, just the sentinel and a
// DeadlineMiss count.
func TestDeadlineShortCircuit(t *testing.T) {
	r := newRig(t, 8<<20)
	fe := r.frontend(1, ModeR())
	c := r.connect(fe)
	touched := 0
	c.Endpoint().SetFault(func(rdma.Op, uint64, int) rdma.Fault {
		touched++
		return rdma.Fault{}
	})
	// Arm a non-zero instant (zero disarms), then let the clock pass it.
	fe.Clock().Advance(time.Microsecond)
	fe.SetDeadline(fe.Clock().Now())
	fe.Clock().Advance(time.Microsecond)
	err := c.epRead(0, make([]byte, 8))
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired deadline must short-circuit: %v", err)
	}
	if touched != 0 {
		t.Fatalf("fabric touched %d times after expiry, want 0", touched)
	}
	if got := fe.Stats().DeadlineMiss.Load(); got != 1 {
		t.Fatalf("DeadlineMiss = %d, want 1", got)
	}
	fe.ClearDeadline()
	if err := c.epRead(0, make([]byte, 8)); err != nil {
		t.Fatalf("cleared deadline must restore service: %v", err)
	}
}

// TestDeadlineBoundsRetryBackoff: a transient burst under an armed
// budget gives up with ErrDeadlineExceeded (wrapping the transient
// cause) once backoff — clamped to the remainder — uses the budget up,
// instead of riding out the full attempt schedule.
func TestDeadlineBoundsRetryBackoff(t *testing.T) {
	r := newRig(t, 8<<20)
	fe := r.frontend(1, ModeR())
	fe.SetRetryPolicy(RetryPolicy{MaxAttempts: 100, BaseBackoff: 4 * time.Microsecond, MaxBackoff: 64 * time.Microsecond})
	c := r.connect(fe)
	c.Endpoint().SetFault(func(op rdma.Op, off uint64, n int) rdma.Fault {
		if op == rdma.OpRead {
			return rdma.Fault{Err: rdma.ErrInjected}
		}
		return rdma.Fault{}
	})
	const budget = 20 * time.Microsecond
	fe.SetBudget(budget)
	start := fe.Clock().Now()
	err := c.epRead(0, make([]byte, 8))
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("budget must bound the retry loop: %v", err)
	}
	if !errors.Is(err, rdma.ErrInjected) {
		t.Fatalf("the transient cause must stay unwrappable: %v", err)
	}
	// Backoff was clamped to the remainder every time: the clock never
	// runs past the deadline.
	if spent := fe.Clock().Now() - start; spent > budget {
		t.Fatalf("retry loop slept %v past a %v budget", spent, budget)
	}
	if got := fe.Stats().VerbRetries.Load(); got == 0 || got >= 99 {
		t.Fatalf("VerbRetries = %d, want a few attempts, far under the 100-attempt schedule", got)
	}
}

// TestSetBudgetArmsFromNow pins the serving layer's entry point:
// SetBudget measures from the node's current virtual instant, and
// DeadlineLeft tracks clock advances.
func TestSetBudgetArmsFromNow(t *testing.T) {
	r := newRig(t, 8<<20)
	fe := r.frontend(1, ModeR())
	if _, armed := fe.DeadlineLeft(); armed {
		t.Fatal("fresh front-end must have no deadline armed")
	}
	fe.Clock().Advance(time.Millisecond)
	fe.SetBudget(10 * time.Microsecond)
	if left, armed := fe.DeadlineLeft(); !armed || left != 10*time.Microsecond {
		t.Fatalf("DeadlineLeft = %v/%v, want 10µs armed", left, armed)
	}
	fe.Clock().Advance(4 * time.Microsecond)
	if left, _ := fe.DeadlineLeft(); left != 6*time.Microsecond {
		t.Fatalf("DeadlineLeft after advance = %v, want 6µs", left)
	}
	fe.ClearDeadline()
	if _, armed := fe.DeadlineLeft(); armed {
		t.Fatal("ClearDeadline must disarm")
	}
}
