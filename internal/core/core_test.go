package core

import (
	"bytes"
	"errors"
	"testing"

	"asymnvm/internal/backend"
	"asymnvm/internal/clock"
	"asymnvm/internal/nvm"
	"asymnvm/internal/rdma"
	"asymnvm/internal/stats"
)

// testRig wires one back-end and front-ends on a zero-latency profile.
type testRig struct {
	t   *testing.T
	dev *nvm.Device
	bk  *backend.Backend
}

func newRig(t *testing.T, devSize int) *testRig {
	t.Helper()
	prof := clock.ZeroProfile()
	dev := nvm.NewDevice(devSize)
	bk, err := backend.New(dev, backend.Options{ID: 0, Profile: &prof})
	if err != nil {
		t.Fatal(err)
	}
	bk.Start()
	t.Cleanup(bk.Stop)
	return &testRig{t: t, dev: dev, bk: bk}
}

func (r *testRig) frontend(id uint16, mode Mode) *Frontend {
	prof := clock.ZeroProfile()
	return NewFrontend(FrontendOptions{ID: id, Mode: mode, Profile: &prof})
}

func (r *testRig) connect(fe *Frontend) *Conn {
	c, err := fe.Connect(r.bk)
	if err != nil {
		r.t.Fatal(err)
	}
	return c
}

var smallOpts = CreateOptions{MemLogSize: 256 << 10, OpLogSize: 128 << 10}

func TestConnectReadsLayout(t *testing.T) {
	r := newRig(t, 8<<20)
	c := r.connect(r.frontend(1, ModeR()))
	if c.Layout().BlockSize != 4096 {
		t.Fatalf("layout block size %d", c.Layout().BlockSize)
	}
}

func TestRPCMallocFree(t *testing.T) {
	r := newRig(t, 8<<20)
	c := r.connect(r.frontend(1, ModeR()))
	a1, err := c.Malloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := c.Malloc(10000)
	if err != nil {
		t.Fatal(err)
	}
	if a1 == a2 {
		t.Fatal("duplicate allocation")
	}
	if backend.AddrOff(a1)%4096 != 0 {
		t.Fatal("allocation not block aligned")
	}
	if err := c.Free(a2, 10000); err != nil {
		t.Fatal(err)
	}
	if err := c.Free(a1, 4096); err != nil {
		t.Fatal(err)
	}
	if err := c.Free(a1, 4096); err == nil {
		t.Fatal("double free must fail")
	}
}

func TestTwoTierThroughRPC(t *testing.T) {
	r := newRig(t, 8<<20)
	c := r.connect(r.frontend(1, ModeR()))
	var addrs []uint64
	for i := 0; i < 100; i++ {
		a, err := c.Alloc(96)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	// 100 × 128B-class blocks fit in far fewer than 100 slabs.
	if n := c.Frontend().Stats().RPCCalls.Load(); n != 0 {
		t.Log("rpc calls recorded on frontend stats:", n)
	}
	for _, a := range addrs {
		if err := c.Release(a, 96); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCreateOpenHandle(t *testing.T) {
	r := newRig(t, 16<<20)
	c := r.connect(r.frontend(1, ModeR()))
	h, err := c.Create("mystack", backend.TypeStack, smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	if h.Slot() != 0 || h.Type() != backend.TypeStack {
		t.Fatalf("handle slot=%d type=%d", h.Slot(), h.Type())
	}
	if _, err := c.Create("mystack", backend.TypeStack, smallOpts); err == nil {
		t.Fatal("duplicate create must fail")
	}
	h2, err := c.Open("mystack", false)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Slot() != h.Slot() {
		t.Fatal("open found a different slot")
	}
	if _, err := c.Open("nosuch", false); err == nil {
		t.Fatal("open of unknown name must fail")
	}
}

func TestWriteFlushReplayRead(t *testing.T) {
	r := newRig(t, 16<<20)
	c := r.connect(r.frontend(1, ModeR()))
	h, err := c.Create("kv", backend.TypeHashTable, smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	node, err := h.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xCD}, 64)
	if _, err := h.OpLog(1, payload); err != nil {
		t.Fatal(err)
	}
	if err := h.Write(node, payload); err != nil {
		t.Fatal(err)
	}
	if err := h.WriteRoot(node); err != nil {
		t.Fatal(err)
	}
	if err := h.EndOp(); err != nil {
		t.Fatal(err)
	}
	if err := h.Drain(); err != nil {
		t.Fatal(err)
	}
	// A fresh reader sees the replayed data straight from NVM.
	fe2 := r.frontend(2, ModeR())
	c2 := r.connect(fe2)
	h2, err := c2.Open("kv", false)
	if err != nil {
		t.Fatal(err)
	}
	root, err := h2.ReadRoot()
	if err != nil {
		t.Fatal(err)
	}
	if root != node {
		t.Fatalf("root = %#x, want %#x", root, node)
	}
	got, err := h2.Read(node, 64, false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("replayed node bytes differ")
	}
}

func TestReadYourWritesBeforeReplay(t *testing.T) {
	r := newRig(t, 16<<20)
	// Batch big enough that nothing flushes by itself.
	fe := r.frontend(1, ModeRCB(1<<20, 1000))
	c := r.connect(fe)
	h, err := c.Create("ryw", backend.TypeBST, smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	node, _ := h.Alloc(32)
	val := bytes.Repeat([]byte{7}, 32)
	if _, err := h.OpLog(1, val); err != nil {
		t.Fatal(err)
	}
	if err := h.Write(node, val); err != nil {
		t.Fatal(err)
	}
	// Nothing flushed or replayed yet: the overlay must serve the read.
	got, err := h.Read(node, 32, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, val) {
		t.Fatal("overlay did not serve unflushed write")
	}
	if err := h.EndOp(); err != nil {
		t.Fatal(err)
	}
	if err := h.Drain(); err != nil {
		t.Fatal(err)
	}
	got, err = h.Read(node, 32, true)
	if err != nil || !bytes.Equal(got, val) {
		t.Fatalf("read after drain: %v", err)
	}
}

func TestBatchingCoalescesTxWrites(t *testing.T) {
	r := newRig(t, 16<<20)
	feB := r.frontend(1, ModeRCB(1<<20, 64))
	cB := r.connect(feB)
	hB, err := cB.Create("batched", backend.TypeBST, smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		node, _ := hB.Alloc(32)
		if _, err := hB.OpLog(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if err := hB.Write(node, bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
			t.Fatal(err)
		}
		if err := hB.EndOp(); err != nil {
			t.Fatal(err)
		}
	}
	if err := hB.Drain(); err != nil {
		t.Fatal(err)
	}
	if n := feB.Stats().TxCommits.Load(); n != 1 {
		t.Fatalf("64 ops at batch 64 should commit once, got %d", n)
	}

	feU := r.frontend(2, ModeR())
	cU := r.connect(feU)
	hU, err := cU.Create("unbatched", backend.TypeBST, smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		node, _ := hU.Alloc(32)
		_, _ = hU.OpLog(1, []byte{byte(i)})
		_ = hU.Write(node, bytes.Repeat([]byte{1}, 32))
		_ = hU.EndOp()
	}
	if n := feU.Stats().TxCommits.Load(); n != 8 {
		t.Fatalf("unbatched mode should commit per op, got %d", n)
	}
}

func TestWriterLockExcludes(t *testing.T) {
	r := newRig(t, 16<<20)
	c1 := r.connect(r.frontend(1, ModeR()))
	h1, err := c1.Create("locked", backend.TypeBST, smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := h1.WriterLock(); err != nil {
		t.Fatal(err)
	}
	// A second front-end must not get the lock while held.
	c2 := r.connect(r.frontend(2, ModeR()))
	h2, err := c2.Open("locked", true)
	if err != nil {
		t.Fatal(err)
	}
	lockOff := c2.Layout().LockOff(h2.Slot())
	if _, ok, _ := c2.Endpoint().CompareAndSwap(lockOff, 0, 99); ok {
		t.Fatal("lock CAS must fail while held")
	}
	if err := h1.WriterUnlock(); err != nil {
		t.Fatal(err)
	}
	if err := h2.WriterLock(); err != nil {
		t.Fatal(err)
	}
	if err := h2.WriterUnlock(); err != nil {
		t.Fatal(err)
	}
}

func TestBreakLockOfDeadOwner(t *testing.T) {
	r := newRig(t, 16<<20)
	c1 := r.connect(r.frontend(1, ModeR()))
	h1, err := c1.Create("dead", backend.TypeBST, smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := h1.WriterLock(); err != nil {
		t.Fatal(err)
	}
	// Front-end 1 "crashes" holding the lock. Recovery breaks it.
	c2 := r.connect(r.frontend(2, ModeR()))
	h2, err := c2.Open("dead", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := h2.BreakLock(1); err != nil {
		t.Fatal(err)
	}
	if err := h2.WriterLock(); err != nil {
		t.Fatal(err)
	}
}

func TestSeqlockReaderSeesConsistentState(t *testing.T) {
	r := newRig(t, 16<<20)
	cW := r.connect(r.frontend(1, ModeR()))
	h, err := cW.Create("seq", backend.TypeBST, smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	node, _ := h.Alloc(64)
	write := func(v byte) {
		if _, err := h.OpLog(1, []byte{v}); err != nil {
			t.Fatal(err)
		}
		if err := h.Write(node, bytes.Repeat([]byte{v}, 64)); err != nil {
			t.Fatal(err)
		}
		if err := h.WriteRoot(node); err != nil {
			t.Fatal(err)
		}
		if err := h.EndOp(); err != nil {
			t.Fatal(err)
		}
	}
	write(1)
	if err := h.Drain(); err != nil {
		t.Fatal(err)
	}

	cR := r.connect(r.frontend(2, ModeRC(1<<20)))
	hR, err := cR.Open("seq", false)
	if err != nil {
		t.Fatal(err)
	}
	readOnce := func() []byte {
		for {
			if err := hR.ReaderLock(); err != nil {
				t.Fatal(err)
			}
			b, err := hR.Read(node, 64, true)
			if err != nil {
				t.Fatal(err)
			}
			ok, err := hR.ReaderValidate()
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				return b
			}
		}
	}
	if b := readOnce(); b[0] != 1 {
		t.Fatalf("reader saw %d, want 1", b[0])
	}
	// Writer updates; after drain the reader must observe v=2 (its cached
	// entry is invalidated by the SN change).
	write(2)
	if err := h.Drain(); err != nil {
		t.Fatal(err)
	}
	if b := readOnce(); b[0] != 2 {
		t.Fatalf("reader saw stale %d after SN change", b[0])
	}
}

func TestNaiveModeWritesInPlace(t *testing.T) {
	r := newRig(t, 16<<20)
	fe := r.frontend(1, ModeNaive())
	c := r.connect(fe)
	h, err := c.Create("naive", backend.TypeBST, smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	node, _ := h.Alloc(32)
	val := bytes.Repeat([]byte{9}, 32)
	if err := h.Write(node, val); err != nil {
		t.Fatal(err)
	}
	// No logs, no tx: the bytes are already in place.
	if n := fe.Stats().TxCommits.Load(); n != 0 {
		t.Fatal("naive mode must not commit transactions")
	}
	got, err := h.Read(node, 32, false)
	if err != nil || !bytes.Equal(got, val) {
		t.Fatalf("naive read-back failed: %v", err)
	}
}

func TestBackendRestartRecoversCommitted(t *testing.T) {
	prof := clock.ZeroProfile()
	dev := nvm.NewDevice(16 << 20)
	bk, err := backend.New(dev, backend.Options{ID: 0, Profile: &prof})
	if err != nil {
		t.Fatal(err)
	}
	bk.Start()
	fe := NewFrontend(FrontendOptions{ID: 1, Mode: ModeR(), Profile: &prof})
	c, err := fe.Connect(bk)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Create("crashy", backend.TypeBST, smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	node, _ := h.Alloc(64)
	val := bytes.Repeat([]byte{0xEE}, 64)
	if _, err := h.OpLog(1, val); err != nil {
		t.Fatal(err)
	}
	if err := h.Write(node, val); err != nil {
		t.Fatal(err)
	}
	if err := h.WriteRoot(node); err != nil {
		t.Fatal(err)
	}
	if err := h.EndOp(); err != nil { // flushes the tx (batch=1)
		t.Fatal(err)
	}
	// Stop the back-end abruptly *without* draining, then power-fail the
	// device: the tx log was persisted by the RDMA ack, so recovery must
	// replay it even though the data area never saw it.
	bk.Stop()
	dev.Crash(nil)

	bk2, err := backend.New(dev, backend.Options{ID: 0, Profile: &prof})
	if err != nil {
		t.Fatal(err)
	}
	bk2.Start()
	defer bk2.Stop()
	fe2 := NewFrontend(FrontendOptions{ID: 2, Mode: ModeR(), Profile: &prof})
	c2, err := fe2.Connect(bk2)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := c2.Open("crashy", false)
	if err != nil {
		t.Fatal(err)
	}
	root, err := h2.ReadRoot()
	if err != nil {
		t.Fatal(err)
	}
	if root != node {
		t.Fatalf("recovered root %#x, want %#x", root, node)
	}
	got, err := h2.Read(node, 64, false)
	if err != nil || !bytes.Equal(got, val) {
		t.Fatal("committed write lost across restart")
	}
}

func TestTornTxDetectedAndDiscarded(t *testing.T) {
	prof := clock.ZeroProfile()
	dev := nvm.NewDevice(16 << 20)
	bk, err := backend.New(dev, backend.Options{ID: 0, Profile: &prof})
	if err != nil {
		t.Fatal(err)
	}
	bk.Start()
	fe := NewFrontend(FrontendOptions{ID: 1, Mode: ModeR(), Profile: &prof})
	c, err := fe.Connect(bk)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Create("torn", backend.TypeBST, smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	// First, one committed op.
	n1, _ := h.Alloc(64)
	v1 := bytes.Repeat([]byte{1}, 64)
	_, _ = h.OpLog(1, v1)
	_ = h.Write(n1, v1)
	_ = h.WriteRoot(n1)
	_ = h.EndOp()
	if err := h.Drain(); err != nil {
		t.Fatal(err)
	}
	// Second op: its tx_write dies mid-transfer (64 bytes reach the
	// volatile window, never acknowledged).
	n2, _ := h.Alloc(64)
	v2 := bytes.Repeat([]byte{2}, 64)
	_, _ = h.OpLog(1, v2)
	_ = h.Write(n2, v2)
	_ = h.WriteRoot(n2)
	// The fault persists across the retry budget so the flush really
	// fails; every attempt leaves the same 64-byte volatile prefix.
	injected := false
	c.Endpoint().SetFault(func(op rdma.Op, off uint64, n int) rdma.Fault {
		if op == rdma.OpWrite && n > 80 {
			injected = true
			return rdma.Fault{Err: rdma.ErrInjected, Truncate: 64}
		}
		return rdma.Fault{}
	})
	if err := h.EndOp(); err == nil {
		t.Fatal("tx flush should have failed")
	} else if !errors.Is(err, rdma.ErrInjected) {
		t.Fatalf("flush error must unwrap to ErrInjected, got %v", err)
	}
	if !injected {
		t.Fatal("fault hook never fired")
	}
	if fe.Stats().VerbRetries.Load() == 0 {
		t.Fatal("transient fault must be retried before surfacing")
	}
	c.Endpoint().SetFault(nil)

	bk.Stop()
	dev.Crash(nil) // power failure drops the unacknowledged prefix

	bk2, err := backend.New(dev, backend.Options{ID: 0, Profile: &prof})
	if err != nil {
		t.Fatal(err)
	}
	bk2.Start()
	defer bk2.Stop()
	fe2 := NewFrontend(FrontendOptions{ID: 2, Mode: ModeR(), Profile: &prof})
	c2, _ := fe2.Connect(bk2)
	h2, err := c2.Open("torn", false)
	if err != nil {
		t.Fatal(err)
	}
	root, _ := h2.ReadRoot()
	if root != n1 {
		t.Fatalf("root %#x, want the committed %#x (torn tx must not apply)", root, n1)
	}
	// The second operation's op log may or may not have persisted; the
	// PendingOps list hands any such op back for re-execution.
	h3, err := c2.Open("torn", true)
	if err != nil {
		t.Fatal(err)
	}
	pend, err := h3.PendingOps()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("pending ops for re-execution: %d", len(pend))
}

func TestWriterReopenResumesTails(t *testing.T) {
	r := newRig(t, 16<<20)
	c := r.connect(r.frontend(1, ModeR()))
	h, err := c.Create("resume", backend.TypeBST, smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	node, _ := h.Alloc(64)
	for i := byte(1); i <= 3; i++ {
		_, _ = h.OpLog(1, []byte{i})
		_ = h.Write(node, bytes.Repeat([]byte{i}, 64))
		_ = h.EndOp()
	}
	if err := h.Drain(); err != nil {
		t.Fatal(err)
	}
	memTail, opTail := h.memTail, h.opTail

	// The writer "crashes"; a new front-end reopens as writer and must
	// resume at the same tails.
	c2 := r.connect(r.frontend(3, ModeR()))
	h2, err := c2.Open("resume", true)
	if err != nil {
		t.Fatal(err)
	}
	if h2.memTail != memTail || h2.opTail != opTail {
		t.Fatalf("resumed tails (%d,%d), want (%d,%d)", h2.memTail, h2.opTail, memTail, opTail)
	}
	// And keep writing.
	_, _ = h2.OpLog(1, []byte{4})
	_ = h2.Write(node, bytes.Repeat([]byte{4}, 64))
	_ = h2.EndOp()
	if err := h2.Drain(); err != nil {
		t.Fatal(err)
	}
	got, _ := h2.Read(node, 64, false)
	if got[0] != 4 {
		t.Fatalf("write after resume lost: %d", got[0])
	}
}

func TestLogAreaWrapAround(t *testing.T) {
	r := newRig(t, 32<<20)
	c := r.connect(r.frontend(1, ModeR()))
	// Tiny log areas force many wrap-arounds.
	h, err := c.Create("wrap", backend.TypeBST, CreateOptions{MemLogSize: 8 << 10, OpLogSize: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	node, _ := h.Alloc(128)
	val := make([]byte, 128)
	for i := 0; i < 500; i++ {
		val[0] = byte(i)
		if _, err := h.OpLog(1, val[:16]); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if err := h.Write(node, val); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if err := h.EndOp(); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if err := h.Drain(); err != nil {
		t.Fatal(err)
	}
	got, _ := h.Read(node, 128, false)
	if got[0] != byte(499%256) {
		t.Fatalf("after wrap, node holds %d", got[0])
	}
	if h.memTail <= 8<<10 {
		t.Fatal("test did not actually wrap the log area")
	}
}

func TestCacheServesRepeatedReads(t *testing.T) {
	r := newRig(t, 16<<20)
	fe := r.frontend(1, ModeRC(1<<20))
	c := r.connect(fe)
	h, err := c.Create("cachy", backend.TypeBST, smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	node, _ := h.Alloc(64)
	_, _ = h.OpLog(1, nil)
	_ = h.Write(node, bytes.Repeat([]byte{5}, 64))
	_ = h.EndOp()
	if err := h.Drain(); err != nil {
		t.Fatal(err)
	}

	feR := r.frontend(2, ModeRC(1<<20))
	cR := r.connect(feR)
	hR, _ := cR.Open("cachy", false)
	_ = hR.ReaderLock()
	before := feR.Stats().Snapshot()
	for i := 0; i < 10; i++ {
		if _, err := hR.Read(node, 64, true); err != nil {
			t.Fatal(err)
		}
	}
	d := feR.Stats().Snapshot().Sub(before)
	if d.RDMARead != 1 {
		t.Fatalf("10 cached reads should cost 1 RDMA read, cost %d", d.RDMARead)
	}
	if d.CacheHit != 9 {
		t.Fatalf("expected 9 hits, got %d", d.CacheHit)
	}
}

func TestStatsLatencyCharged(t *testing.T) {
	prof := clock.DefaultProfile()
	dev := nvm.NewDevice(16 << 20)
	bk, err := backend.New(dev, backend.Options{ID: 0, Profile: &prof})
	if err != nil {
		t.Fatal(err)
	}
	bk.Start()
	defer bk.Stop()
	clk := clock.NewVirtual()
	fe := NewFrontend(FrontendOptions{ID: 1, Mode: ModeR(), Clock: clk, Profile: &prof})
	c, err := fe.Connect(bk)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Create("timed", backend.TypeBST, smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	start := clk.Now()
	node, _ := h.Alloc(64)
	_, _ = h.OpLog(1, nil)
	_ = h.Write(node, make([]byte, 64))
	_ = h.EndOp()
	elapsed := clk.Now() - start
	// One op in R mode costs at least op-log write + tx write ≈ 2 RTTs.
	if elapsed < 2*prof.RDMARTT {
		t.Fatalf("unbatched write charged only %v", elapsed)
	}
}

var _ = stats.Snapshot{} // keep the import for helper visibility

func TestAbortDropsInFlightState(t *testing.T) {
	r := newRig(t, 16<<20)
	fe := r.frontend(1, ModeRCB(1<<20, 100))
	c := r.connect(fe)
	h, err := c.Create("abort", backend.TypeBST, smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	// One durable op.
	n1, _ := h.Alloc(32)
	_, _ = h.OpLog(1, nil)
	_ = h.Write(n1, bytes.Repeat([]byte{1}, 32))
	_ = h.EndOp()
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := h.Drain(); err != nil {
		t.Fatal(err)
	}
	// In-flight op, then the back-end "fails" and the client aborts.
	n2, _ := h.Alloc(32)
	_, _ = h.OpLog(1, nil)
	_ = h.Write(n2, bytes.Repeat([]byte{2}, 32))
	h.Abort()
	// Nothing pending: a flush is a no-op and the durable op survives.
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := h.Drain(); err != nil {
		t.Fatal(err)
	}
	got, err := h.Read(n1, 32, false)
	if err != nil || got[0] != 1 {
		t.Fatalf("durable write lost after abort: %v %v", got, err)
	}
	// The aborted unit never reached NVM (reads return the zeroed block).
	got, _ = h.Read(n2, 32, false)
	if got[0] == 2 {
		t.Fatal("aborted write leaked into NVM")
	}
	// The handle keeps working for new operations.
	_, _ = h.OpLog(1, nil)
	_ = h.Write(n2, bytes.Repeat([]byte{3}, 32))
	_ = h.EndOp()
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := h.Drain(); err != nil {
		t.Fatal(err)
	}
	got, _ = h.Read(n2, 32, false)
	if got[0] != 3 {
		t.Fatalf("write after abort lost: %v", got)
	}
}
