package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"

	"asymnvm/internal/backend"
	"asymnvm/internal/logrec"
)

// ErrExists is returned when creating a name that is already registered.
var ErrExists = errors.New("core: structure already exists")

// ErrNotFound is returned when opening an unknown name.
var ErrNotFound = errors.New("core: structure not found")

// ErrMoved is returned when an operation's target partition migrated to
// another back-end while the operation was in flight and a transparent
// refresh did not converge (the map flipped again mid-retry). The caller
// re-resolves the versioned partition map and retries — the serving layer
// surfaces it as a retry-after hint.
var ErrMoved = errors.New("core: partition moved during operation")

// CreateOptions sizes a new structure's private log areas.
type CreateOptions struct {
	// MemLogSize is the memory-log area size (rounded up to blocks).
	MemLogSize uint64
	// OpLogSize is the operation-log area size (rounded up to blocks).
	OpLogSize uint64
}

// DefaultCreateOptions returns log-area sizes adequate for the benchmark
// workloads (batches up to 4096 operations in flight).
func DefaultCreateOptions() CreateOptions {
	return CreateOptions{MemLogSize: 8 << 20, OpLogSize: 2 << 20}
}

func (o *CreateOptions) fill() {
	if o.MemLogSize == 0 {
		o.MemLogSize = 8 << 20
	}
	if o.OpLogSize == 0 {
		o.OpLogSize = 2 << 20
	}
}

// Calloc allocates zero-filled back-end blocks.
func (c *Conn) Calloc(size uint64) (uint64, error) {
	resp, err := c.rpc(backend.RPCCalloc, size, 0)
	if err != nil {
		return 0, err
	}
	if resp.Status != backend.RPCOK {
		return 0, fmt.Errorf("core: calloc(%d) failed with status %d", size, resp.Status)
	}
	return resp.Result, nil
}

// readNameTable fetches the whole naming table with one RDMA read.
func (c *Conn) readNameTable() ([]byte, error) {
	buf := make([]byte, c.layout.NameEntries*backend.NameEntrySize)
	if err := c.epRead(c.layout.NameBase, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// findSlot looks a name up in a fetched table image.
func (c *Conn) findSlot(table []byte, name string) (uint16, backend.NameEntry, bool) {
	h := backend.HashName(name)
	for slot := uint16(0); uint64(slot) < c.layout.NameEntries; slot++ {
		raw := table[uint64(slot)*backend.NameEntrySize:][:backend.NameEntrySize]
		e, err := backend.DecodeNameEntry(raw)
		if err != nil || !e.Used {
			continue
		}
		if backend.HashName(e.Name) == h && e.Name == name {
			return slot, e, true
		}
	}
	return 0, backend.NameEntry{}, false
}

// Create registers a new structure: claim a naming slot with an RDMA CAS,
// allocate the aux block and the two log areas over the management RPC,
// initialize the aux metadata, and finally publish the aux pointer — the
// atomic commit point the back-end's discovery scan keys on.
func (c *Conn) Create(name string, typ uint8, opts CreateOptions) (*Handle, error) {
	opts.fill()
	if len(name) > 32 {
		return nil, backend.ErrNameTooLong
	}
	table, err := c.readNameTable()
	if err != nil {
		return nil, err
	}
	if _, _, found := c.findSlot(table, name); found {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	// Claim the first free slot: CAS the entry's first word from zero to
	// {used, type}.
	var slot uint16
	claimed := false
	for s := uint16(0); uint64(s) < c.layout.NameEntries; s++ {
		raw := table[uint64(s)*backend.NameEntrySize:][:backend.NameEntrySize]
		if raw[0]&1 != 0 {
			continue
		}
		word := uint64(1) | uint64(typ)<<8
		_, ok, err := c.epCAS(c.layout.NameEntryOff(s), 0, word)
		if err != nil {
			return nil, err
		}
		if ok {
			slot = s
			claimed = true
			break
		}
	}
	if !claimed {
		return nil, errors.New("core: naming table full")
	}
	// Fill in the rest of the entry (hash + name; root/lock/sn/aux zero).
	entry, err := backend.EncodeNameEntry(backend.NameEntry{Used: true, Type: typ, Name: name})
	if err != nil {
		return nil, err
	}
	// Preserve the claimed first word; write the remainder.
	if err := c.epWrite(c.layout.NameEntryOff(slot)+8, entry[8:]); err != nil {
		return nil, err
	}

	auxAddr, err := c.Calloc(backend.AuxSize)
	if err != nil {
		return nil, err
	}
	memAddr, err := c.Calloc(opts.MemLogSize)
	if err != nil {
		return nil, err
	}
	opAddr, err := c.Calloc(opts.OpLogSize)
	if err != nil {
		return nil, err
	}
	aux := make([]byte, backend.AuxUser)
	binary.LittleEndian.PutUint64(aux[backend.AuxMemLogBaseOff:], backend.AddrOff(memAddr))
	binary.LittleEndian.PutUint64(aux[backend.AuxMemLogSizeOff:], opts.MemLogSize)
	binary.LittleEndian.PutUint64(aux[backend.AuxOpLogBaseOff:], backend.AddrOff(opAddr))
	binary.LittleEndian.PutUint64(aux[backend.AuxOpLogSizeOff:], opts.OpLogSize)
	if err := c.epWrite(backend.AddrOff(auxAddr), aux); err != nil {
		return nil, err
	}
	// Publish: the aux pointer becomes visible atomically; the back-end's
	// next kick discovers the structure and starts replicating it.
	if err := c.epStore64(c.layout.AuxPtrOff(slot), auxAddr); err != nil {
		return nil, err
	}
	c.kick()

	return &Handle{
		c:       c,
		slot:    slot,
		typ:     typ,
		tag:     uint32(c.backendID)<<16 | uint32(slot),
		auxAddr: auxAddr,
		memArea: logrec.Area{Base: backend.AddrOff(memAddr), Size: opts.MemLogSize},
		opArea:  logrec.Area{Base: backend.AddrOff(opAddr), Size: opts.OpLogSize},
		writer:  true,
		overlay: make(map[uint64]*ovEntry),
	}, nil
}

// Open attaches to an existing structure. A writer handle recovers its
// log tails by scanning forward from the persisted cursors, which is the
// front-end half of the §7.2 recovery protocol.
func (c *Conn) Open(name string, writer bool) (*Handle, error) {
	table, err := c.readNameTable()
	if err != nil {
		return nil, err
	}
	slot, entry, found := c.findSlot(table, name)
	if !found {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if entry.Aux == 0 {
		return nil, fmt.Errorf("core: %q creation incomplete", name)
	}
	aux := make([]byte, backend.AuxUser)
	if err := c.epRead(backend.AddrOff(entry.Aux), aux); err != nil {
		return nil, err
	}
	h := &Handle{
		c:       c,
		slot:    slot,
		typ:     entry.Type,
		tag:     uint32(c.backendID)<<16 | uint32(slot),
		auxAddr: entry.Aux,
		memArea: logrec.Area{Base: binary.LittleEndian.Uint64(aux[backend.AuxMemLogBaseOff:]), Size: binary.LittleEndian.Uint64(aux[backend.AuxMemLogSizeOff:])},
		opArea:  logrec.Area{Base: binary.LittleEndian.Uint64(aux[backend.AuxOpLogBaseOff:]), Size: binary.LittleEndian.Uint64(aux[backend.AuxOpLogSizeOff:])},
		writer:  writer,
		// Seed the append-space gates from the image just read; the
		// truncation points only grow, so a stale value is merely
		// conservative and the wait loops refresh it on demand.
		memTruncKnown: binary.LittleEndian.Uint64(aux[backend.AuxMemTruncOff:]),
		opTruncKnown:  binary.LittleEndian.Uint64(aux[backend.AuxOpTruncOff:]),
	}
	if writer {
		h.overlay = make(map[uint64]*ovEntry)
		if err := h.recoverTails(); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// recoverTails reconstructs the writer's append positions after a crash
// or reconnect: scan the memory log forward from max(LPN, persisted hint)
// until records stop validating, and likewise for the op log. Stale or
// torn tail records are simply where appending resumes — rewriting them
// re-forms the transaction the back-end never acknowledged (Case 2.b/3.b).
func (h *Handle) recoverTails() error {
	lpn, err := h.auxField(backend.AuxLPNOff)
	if err != nil {
		return err
	}
	opn, err := h.auxField(backend.AuxOPNOff)
	if err != nil {
		return err
	}
	memHint, err := h.auxField(backend.AuxMemTailOff)
	if err != nil {
		return err
	}
	opHint, err := h.auxField(backend.AuxOpTailOff)
	if err != nil {
		return err
	}
	h.lpnKnown = lpn
	h.opnKnown = opn

	// The memory-log scan dispatches on the record magic: plain
	// transactions just advance the tail, while 2PC records rebuild the
	// writer's view of unresolved cross-shard state — prepares without a
	// resolving decision and coordinator commit records without a KindEnd
	// (twopc.go's RecoverTx consumes both).
	h.memTail = maxU64(lpn, memHint)
	prep := make(map[uint64]logrec.PrepareRecord)
	prepAbs := make(map[uint64]uint64)
	var prepOrder []uint64
	commits := make(map[uint64]uint64)
	for {
		var kind byte
		var prec logrec.PrepareRecord
		var crec logrec.CommitRecord
		start := h.memTail
		used, err := h.scanOne(h.memArea, start, func(buf []byte, abs uint64) (int, error) {
			switch buf[0] {
			case logrec.PrepareMagic:
				p, n, derr := logrec.DecodePrepare(buf, abs)
				if derr == nil {
					kind, prec = logrec.PrepareMagic, p
				}
				return n, derr
			case logrec.CommitMagic:
				cr, n, derr := logrec.DecodeCommit(buf, abs)
				if derr == nil {
					kind, crec = logrec.CommitMagic, cr
				}
				return n, derr
			default:
				_, n, derr := logrec.DecodeTx(buf, abs)
				if derr == nil {
					kind = 0
				}
				return n, derr
			}
		})
		if err != nil {
			return err
		}
		if used == 0 {
			break
		}
		switch kind {
		case logrec.PrepareMagic:
			if _, dup := prep[prec.TxID]; !dup {
				prep[prec.TxID] = prec
				prepAbs[prec.TxID] = start
				prepOrder = append(prepOrder, prec.TxID)
			}
		case logrec.CommitMagic:
			switch crec.Kind {
			case logrec.KindCommit:
				commits[crec.TxID] = start
			case logrec.KindEnd:
				delete(commits, crec.TxID)
			case logrec.KindApply, logrec.KindAbort:
				if _, ok := prep[crec.TxID]; ok {
					delete(prep, crec.TxID)
					delete(prepAbs, crec.TxID)
					for i, id := range prepOrder {
						if id == crec.TxID {
							prepOrder = append(prepOrder[:i], prepOrder[i+1:]...)
							break
						}
					}
				}
			}
		}
		h.memTail += uint64(used)
	}
	h.inDoubt = h.inDoubt[:0]
	for _, txid := range prepOrder {
		h.inDoubt = append(h.inDoubt, prep[txid])
	}
	h.unEnded = h.unEnded[:0]
	for txid := range commits {
		h.unEnded = append(h.unEnded, txid)
	}
	// Unresolved 2PC records pin the back-end's durable LPN (its hold
	// floor): the catch-up wait below must stop there, not at the tail.
	waitTo := h.memTail
	for _, txid := range prepOrder {
		if a := prepAbs[txid]; a < waitTo {
			waitTo = a
		}
	}
	for _, a := range commits {
		if a < waitTo {
			waitTo = a
		}
	}

	h.opTail = maxU64(opn, opHint)
	for {
		used, err := h.scanOne(h.opArea, h.opTail, func(buf []byte, abs uint64) (int, error) {
			_, n, derr := logrec.DecodeOp(buf, abs)
			return n, derr
		})
		if err != nil {
			return err
		}
		if used == 0 {
			break
		}
		h.opTail += uint64(used)
	}
	h.coveredOp = h.opTail

	// Let the replayer catch up with everything already persisted before
	// recovery decisions are made: once LPN reaches the tail (or the 2PC
	// hold floor, whichever is lower), the OPN is final and PendingOps
	// returns exactly the operations whose memory logs never made it (no
	// double application).
	for i := 0; ; i++ {
		var cur uint64
		var err error
		if i == 0 {
			cur, err = h.auxField(backend.AuxLPNOff)
		} else {
			cur, err = h.auxFieldQuiet(backend.AuxLPNOff)
		}
		if err != nil {
			return err
		}
		if cur >= waitTo {
			h.lpnKnown = cur
			break
		}
		if i > pollLimit {
			return fmt.Errorf("core: recovery replay stuck (tail=%d lpn=%d)", h.memTail, cur)
		}
		h.c.kick()
		runtime.Gosched()
	}
	opn2, err := h.auxField(backend.AuxOPNOff)
	if err != nil {
		return err
	}
	h.opnKnown = opn2
	return nil
}

// scanOne reads enough bytes at abs to decode one record, returning its
// wire length, or 0 when the log ends there.
func (h *Handle) scanOne(area logrec.Area, abs uint64, dec func([]byte, uint64) (int, error)) (int, error) {
	chunk := 512
	for {
		if uint64(chunk) > area.Size {
			chunk = int(area.Size)
		}
		buf := make([]byte, chunk)
		pos := 0
		for _, r := range area.Split(abs, chunk) {
			if err := h.c.epRead(r.DevOff, buf[pos:pos+r.Len]); err != nil {
				return 0, err
			}
			pos += r.Len
		}
		n, derr := dec(buf, abs)
		if derr == nil {
			return n, nil
		}
		if errors.Is(derr, logrec.ErrShort) && chunk < maxScanChunk && uint64(chunk) < area.Size {
			chunk *= 2
			continue
		}
		return 0, nil // invalid or truncated: the tail is here
	}
}

// maxScanChunk bounds the recovery scan buffer; it must exceed the
// largest possible log record (see backend's maxTxChunk) or recovery
// would truncate a valid log at a big batched transaction.
const maxScanChunk = 16 << 20

// PendingOps returns the op-log records the back-end has not yet covered
// with applied memory logs (the re-execution list of Cases 2.c and 3.c).
// Data-structure code replays them through its normal operations.
func (h *Handle) PendingOps() ([]logrec.OpRecord, error) {
	opn, err := h.auxField(backend.AuxOPNOff)
	if err != nil {
		return nil, err
	}
	var out []logrec.OpRecord
	abs := opn
	for {
		var rec logrec.OpRecord
		used, err := h.scanOne(h.opArea, abs, func(buf []byte, a uint64) (int, error) {
			r, n, derr := logrec.DecodeOp(buf, a)
			if derr == nil {
				rec = r
			}
			return n, derr
		})
		if err != nil {
			return nil, err
		}
		if used == 0 {
			return out, nil
		}
		// Cross-shard transactional records are settled by prepare
		// resolution (commit applies the buffered entries, presumed
		// abort discards them); re-executing one here would apply a
		// single shard's half of the transaction.
		if rec.OpType&logrec.OpTxFlag == 0 {
			out = append(out, rec)
		}
		abs += uint64(used)
	}
}

// HistoryOps returns every intact operation record of the structure,
// from the op log's origin to its tail — the semantic history a
// migration re-executes on a destination back-end. Raw data-area bytes
// cannot move between nodes (global addresses embed the owning node id),
// so elastic rebalancing ships this stream instead. The history is only
// complete while the op-log ring has never wrapped: once the writer laps
// the area, the oldest records are overwritten and their effects live
// only in the source's data area, so migration refuses to stream (the
// archive mirror carries the full stream for that case).
func (h *Handle) HistoryOps() ([]logrec.OpRecord, error) {
	if !h.writer {
		return nil, fmt.Errorf("core: op history needs the writer handle")
	}
	if h.opTail > h.opArea.Size {
		return nil, fmt.Errorf("core: op log wrapped (%d bytes appended into a %d-byte area); migrate from the archive stream",
			h.opTail, h.opArea.Size)
	}
	var out []logrec.OpRecord
	abs := uint64(0)
	for {
		var rec logrec.OpRecord
		used, err := h.scanOne(h.opArea, abs, func(buf []byte, a uint64) (int, error) {
			r, n, derr := logrec.DecodeOp(buf, a)
			if derr == nil {
				rec = r
			}
			return n, derr
		})
		if err != nil {
			return nil, err
		}
		if used == 0 {
			return out, nil
		}
		// A cross-shard transactional record's fate was decided by prepare
		// resolution, which the op log alone cannot reconstruct: replaying
		// it might apply an aborted transaction's half, skipping it might
		// lose a committed one. Refuse rather than guess.
		if rec.OpType&logrec.OpTxFlag != 0 {
			return nil, fmt.Errorf("core: op history holds cross-shard record at %d; structures with 2PC history do not migrate", abs)
		}
		out = append(out, rec)
		abs += uint64(used)
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
