// Package workload generates the key streams and operation mixes of the
// paper's evaluation (§9.6): YCSB-style uniform and Zipf-skewed key
// distributions (parameters .5, .9, .99), configurable PUT/GET and
// PUSH/POP mixes, and a synthetic stand-in for the Alibaba industry trace
// (power-law keys, 64-byte hashed key space, values from 64 B to 8 KB) —
// the real trace is proprietary, and its properties stated in the paper
// (power-law skew, op mix, size range) are what the generator reproduces.
package workload

import (
	"math"
	"math/rand"
)

// OpKind is a generated operation type.
type OpKind int

// Operation kinds.
const (
	OpGet OpKind = iota
	OpPut
)

// Op is one generated operation.
type Op struct {
	Kind OpKind
	Key  uint64
	// ValueLen is the value size for puts (the driver materializes the
	// bytes; keeping the trace compact makes million-op runs cheap).
	ValueLen int
}

// Generator produces an operation stream.
type Generator struct {
	rng      *rand.Rand
	keys     KeyDist
	writePct int // 0..100
	valueLen func(*rand.Rand) int
}

// KeyDist draws keys in [1, n].
type KeyDist interface {
	Next(*rand.Rand) uint64
	// N reports the key-space size.
	N() uint64
}

// Uniform draws keys uniformly.
type Uniform struct{ Keys uint64 }

// Next draws one key.
func (u Uniform) Next(r *rand.Rand) uint64 { return uint64(r.Int63n(int64(u.Keys))) + 1 }

// N reports the key-space size.
func (u Uniform) N() uint64 { return u.Keys }

// Zipf draws keys with the YCSB zipfian distribution of exponent Theta
// (0 < Theta < 1; .5/.9/.99 in Figure 12). It implements the standard
// Gray et al. computation with precomputed zeta.
type Zipf struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	half  float64
}

// NewZipf precomputes the distribution over [1, n].
func NewZipf(n uint64, theta float64) *Zipf {
	z := &Zipf{n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	z.half = 1.0 + math.Pow(0.5, theta)
	return z
}

func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws one key (hot keys are the small ordinals, then scattered by
// a multiplicative hash so skew does not correlate with key order).
func (z *Zipf) Next(r *rand.Rand) uint64 {
	u := r.Float64()
	uz := u * z.zetan
	var rank uint64
	switch {
	case uz < 1.0:
		rank = 1
	case uz < z.half:
		rank = 2
	default:
		rank = 1 + uint64(float64(z.n)*math.Pow(z.eta*u-z.eta+1, z.alpha))
	}
	if rank > z.n {
		rank = z.n
	}
	return rank
}

// N reports the key-space size.
func (z *Zipf) N() uint64 { return z.n }

// Scrambled wraps a KeyDist, scattering ranks over the key space with a
// multiplicative hash (YCSB's "scrambled zipfian").
type Scrambled struct{ Inner KeyDist }

// Next draws and scrambles one key.
func (s Scrambled) Next(r *rand.Rand) uint64 {
	k := s.Inner.Next(r)
	return k*0x9E3779B97F4A7C15%s.Inner.N() + 1
}

// N reports the key-space size.
func (s Scrambled) N() uint64 { return s.Inner.N() }

// Config assembles a generator.
type Config struct {
	Seed     int64
	Keys     uint64
	WritePct int     // percentage of puts (pushes)
	Theta    float64 // 0 = uniform; else zipf exponent
	Scramble bool
	// ValueLen fixes put value sizes; 0 selects the industry-trace size
	// distribution (64 B–8 KB, power law).
	ValueLen int
}

// New builds a generator.
func New(cfg Config) *Generator {
	var kd KeyDist
	if cfg.Theta > 0 {
		kd = NewZipf(cfg.Keys, cfg.Theta)
	} else {
		kd = Uniform{Keys: cfg.Keys}
	}
	if cfg.Scramble {
		kd = Scrambled{Inner: kd}
	}
	g := &Generator{
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		keys:     kd,
		writePct: cfg.WritePct,
	}
	if cfg.ValueLen > 0 {
		n := cfg.ValueLen
		g.valueLen = func(*rand.Rand) int { return n }
	} else {
		g.valueLen = industryValueLen
	}
	return g
}

// industryValueLen draws sizes between 64 B and 8 KB with a power-law
// tail, the range the paper states for the Alibaba trace.
func industryValueLen(r *rand.Rand) int {
	// 80% small (64–256 B), 15% medium (256 B–1 KB), 5% large (1–8 KB).
	p := r.Intn(100)
	switch {
	case p < 80:
		return 64 + r.Intn(192)
	case p < 95:
		return 256 + r.Intn(768)
	default:
		return 1024 + r.Intn(7168)
	}
}

// KeySpace reports the generator's key-space size.
func (g *Generator) KeySpace() uint64 { return g.keys.N() }

// Next produces the next operation.
func (g *Generator) Next() Op {
	op := Op{Key: g.keys.Next(g.rng)}
	if g.rng.Intn(100) < g.writePct {
		op.Kind = OpPut
		op.ValueLen = g.valueLen(g.rng)
	}
	return op
}

// Fill produces n operations into a reusable slice.
func (g *Generator) Fill(ops []Op) []Op {
	for i := range ops {
		ops[i] = g.Next()
	}
	return ops
}

// Value materializes deterministic value bytes for a key (drivers use it
// so traces stay compact but contents are reproducible).
func Value(key uint64, n int) []byte {
	if n <= 0 {
		n = 64
	}
	b := make([]byte, n)
	x := key*0x9E3779B97F4A7C15 + 1
	for i := range b {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		b[i] = byte(x)
	}
	return b
}
