package workload

import (
	"math"
	"testing"
)

func TestUniformCoversKeySpace(t *testing.T) {
	g := New(Config{Seed: 1, Keys: 100, WritePct: 50})
	seen := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		op := g.Next()
		if op.Key < 1 || op.Key > 100 {
			t.Fatalf("key %d out of range", op.Key)
		}
		seen[op.Key] = true
	}
	if len(seen) < 95 {
		t.Fatalf("uniform covered only %d/100 keys", len(seen))
	}
}

func TestWriteMix(t *testing.T) {
	for _, pct := range []int{0, 10, 50, 100} {
		g := New(Config{Seed: 2, Keys: 1000, WritePct: pct})
		writes := 0
		n := 20000
		for i := 0; i < n; i++ {
			if g.Next().Kind == OpPut {
				writes++
			}
		}
		got := float64(writes) / float64(n) * 100
		if math.Abs(got-float64(pct)) > 2.0 {
			t.Fatalf("write pct %d: measured %.1f", pct, got)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	// Higher theta concentrates more mass on the hottest keys.
	mass := func(theta float64) float64 {
		z := NewZipf(10000, theta)
		g := New(Config{Seed: 3, Keys: 10000, WritePct: 0, Theta: theta})
		_ = z
		hot := 0
		n := 50000
		for i := 0; i < n; i++ {
			if g.Next().Key <= 100 { // top 1% of keys
				hot++
			}
		}
		return float64(hot) / float64(n)
	}
	m5, m9, m99 := mass(0.5), mass(0.9), mass(0.99)
	if !(m99 > m9 && m9 > m5) {
		t.Fatalf("skew not monotone: .5→%.3f .9→%.3f .99→%.3f", m5, m9, m99)
	}
	if m99 < 0.3 {
		t.Fatalf("zipf .99 top-1%% mass only %.3f", m99)
	}
	u := mass(0) // uniform via theta=0 goes through Uniform path
	if u > 0.05 {
		t.Fatalf("uniform top-1%% mass %.3f", u)
	}
}

func TestScrambledStaysInRange(t *testing.T) {
	g := New(Config{Seed: 4, Keys: 777, WritePct: 0, Theta: 0.9, Scramble: true})
	for i := 0; i < 5000; i++ {
		k := g.Next().Key
		if k < 1 || k > 777 {
			t.Fatalf("scrambled key %d out of range", k)
		}
	}
}

func TestIndustryValueSizes(t *testing.T) {
	g := New(Config{Seed: 5, Keys: 100, WritePct: 100})
	small, large := 0, 0
	for i := 0; i < 10000; i++ {
		op := g.Next()
		if op.ValueLen < 64 || op.ValueLen > 8192 {
			t.Fatalf("value len %d outside the stated 64B–8KB range", op.ValueLen)
		}
		if op.ValueLen <= 256 {
			small++
		}
		if op.ValueLen > 1024 {
			large++
		}
	}
	if small < 7000 {
		t.Fatalf("expected a small-value-heavy power law, small=%d", small)
	}
	if large == 0 {
		t.Fatal("tail never produced large values")
	}
}

func TestValueDeterministic(t *testing.T) {
	a := Value(42, 64)
	b := Value(42, 64)
	c := Value(43, 64)
	if string(a) != string(b) {
		t.Fatal("value not deterministic")
	}
	if string(a) == string(c) {
		t.Fatal("different keys produced identical values")
	}
	if len(Value(1, 0)) != 64 {
		t.Fatal("default value length wrong")
	}
}

func TestFill(t *testing.T) {
	g := New(Config{Seed: 6, Keys: 10, WritePct: 30})
	ops := g.Fill(make([]Op, 256))
	if len(ops) != 256 {
		t.Fatal("fill length")
	}
	var puts int
	for _, op := range ops {
		if op.Kind == OpPut {
			puts++
		}
	}
	if puts == 0 || puts == 256 {
		t.Fatalf("degenerate mix: %d puts", puts)
	}
}
