// Package chaos is the seeded fault soak harness: it drives a mixed
// smallbank + hash-table workload against a one-back-end cluster while a
// deterministic fault plane injects verb faults, partitions, back-end
// crashes (with mirror promotion) and restarts, and checks durability and
// consistency invariants after every recovery:
//
//   - money conservation: the smallbank workload is restricted to
//     conserving transactions, so the sum of all balances must equal the
//     initial endowment at every check point;
//   - no acknowledged update lost: every Put the harness was told
//     committed must read back, byte for byte, through a fresh reader
//     front-end (seqlock path) after each failover;
//   - archive completeness: after the soak, the full operation stream is
//     replayed into a brand-new back-end (§7.2 Case 4 without a replica)
//     and both structures must reconstruct exactly.
//
// Everything is deterministic per seed: two runs with the same Config
// produce byte-identical reports, including the fault event log (the
// fault plane's reproducibility contract).
package chaos

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"asymnvm/internal/backend"
	"asymnvm/internal/cluster"
	"asymnvm/internal/core"
	"asymnvm/internal/ds"
	"asymnvm/internal/fault"
	"asymnvm/internal/logrec"
	"asymnvm/internal/serve"
	"asymnvm/internal/stats"
	"asymnvm/internal/trace"
	"asymnvm/internal/txapp"
)

const (
	bankName = "chaos-bank"
	kvName   = "chaos-kv"
	// Each account is seeded with savings 10000 + checking 5000.
	moneyPerAccount = 15000
)

// Config parameterizes one soak run.
type Config struct {
	Seed     int64
	Ops      int    // workload operations
	Accounts uint64 // smallbank accounts
	Keys     uint64 // hash-table key space
	Mirrors  int    // replica mirrors (promotion candidates)

	Promotes   int // scheduled permanent crashes (mirror promotion)
	Restarts   int // scheduled transient crash-restarts
	Partitions int // scheduled partition windows

	DropProb     float64 // per-verb drop probability
	TruncateProb float64 // per-verb mid-transfer truncation probability
	DelayProb    float64 // per-verb delay probability
	MirrorLag    int     // replication lag in kicks (0 = synchronous)
	Pipeline     int     // writer send-queue depth (>1 enables posted verbs)
	AutoTune     bool    // enable the adaptive batch/depth controller on the writer
	Compact      bool    // run every back-end incarnation with log compaction on

	Rebuild bool // end with an archive-replay rebuild check
	Verbose bool // include every injected fault event in the report

	// Serve routes every workload operation through the networked
	// front-end service (internal/serve): a TCP server owns the writer
	// front-end and the soak drives it with a synchronous client, so the
	// admission/queue/executor path is exercised under fault injection.
	// The client is serial, all latency is charged to the virtual clock,
	// and verification pauses the server (Close gives the soak goroutine
	// a happens-before edge with the executor), so reports stay
	// byte-identical per seed.
	Serve bool

	// TxCross partitions the smallbank across two back-ends and routes
	// every transfer that spans partitions through a cross-shard 2PC
	// transaction (prepare on each participant, coordinator commit
	// record, presumed abort). The conservation invariant then checks
	// cross-partition atomicity: a transfer half-applied across back-ends
	// would mint or burn money. Verb faults run on both links. Mutually
	// exclusive with Serve (the TCP service owns a single-shard bank),
	// and the archive rebuild check is skipped — one node's archived
	// stream cannot reconstruct transactions that span two nodes.
	TxCross bool

	// MultiWriter replaces the plain hash table with a striped one
	// (ds.Striped) written by TWO front-ends that the soak goroutine
	// alternates deterministically, so the per-stripe shared-lock
	// handoff (release → acquire → tail resync) runs under verb faults,
	// partitions and restarts. After every recovery the committed keys
	// are additionally read back through a mirror replica front-end,
	// with the staleness assertion that a synced mirror shows a zero
	// epoch gap on every stripe. Mutually exclusive with Serve (the TCP
	// service owns one writer) and TxCross (the partitioned bank owns
	// the second back-end), and requires Promotes = 0: promotion hands
	// the primary role to a mirror mid-bracket, which the shared stripe
	// lock protocol does not arbitrate (the lock word on the promoted
	// copy is an attach-time snapshot, not live lock state).
	MultiWriter bool

	// Rebalance replaces the plain hash table with an elastic partitioned
	// one (ds.CreateElastic) spread over TWO back-ends and keeps
	// migrations running for the whole soak: every few dozen operations
	// the soak either begins a handoff (snapshot stream + double-log
	// window opens) or cuts one over (epoch-fenced map flip + finish), so
	// workload writes land inside live double-log windows and reads cross
	// cutovers, all under verb faults, partitions and restarts. The
	// durability check then covers migrated state: every committed key
	// must read back through a fresh reader that routes by the persisted
	// versioned map alone. Mutually exclusive with Serve (the TCP service
	// owns a plain hash table), TxCross (cross-shard 2PC history refuses
	// to migrate, and transactions pause during a handoff), MultiWriter
	// (partition handoff is SWMR: the migrating writer is the only
	// writer), and Compact (log truncation invalidates the full-history
	// stream migration replays from). Requires Promotes = 0: promotion
	// replaces the source node mid-soak, while the in-flight migration
	// state is writer-side.
	Rebalance bool

	// Tracer, when non-nil, records per-operation spans for the soak's
	// writer front-end and primary back-end (see cluster.Config.Tracer).
	Tracer *trace.Tracer
	// OnFrontend, when non-nil, observes the writer front-end right after
	// it connects — live /metrics endpoints hook in here.
	OnFrontend func(fe *core.Frontend)
}

// DefaultConfig returns the acceptance-run configuration.
func DefaultConfig() Config {
	return Config{
		Seed:         1,
		Ops:          5000,
		Accounts:     20,
		Keys:         256,
		Mirrors:      2,
		Promotes:     2,
		Restarts:     2,
		Partitions:   4,
		DropProb:     0.01,
		TruncateProb: 0.005,
		DelayProb:    0.01,
		MirrorLag:    2,
		Rebuild:      true,
	}
}

// Report is the outcome of a soak. Lines is deterministic per seed —
// comparing two reports line by line is the reproducibility check.
type Report struct {
	Lines      []string
	Checks     int    // invariant checks performed
	Violations int    // invariant checks failed
	Digest     uint64 // fault event log digest
	Stats      stats.Snapshot
}

// String renders the report.
func (r *Report) String() string { return strings.Join(r.Lines, "\n") + "\n" }

// soak carries the run state.
type soak struct {
	cfg    Config
	clu    *cluster.Cluster
	plane  *fault.Plane
	inj    *fault.Injector
	fe     *core.Frontend
	bank   *txapp.SmallBank
	pbank  *txapp.PartitionedSmallBank // TxCross mode: replaces bank
	tc     *core.TxCoordinator
	kv     *ds.HashTable
	oracle map[uint64][]byte
	rep    *Report

	// MultiWriter mode: mw replaces kv with two writer attachments to
	// one striped table; the soak alternates them per put (mwTurn).
	// inj2 is the second writer's injector (cut on restarts, like inj).
	mw     [2]*ds.Striped
	mwFes  [2]*core.Frontend
	mwTurn int
	inj2   *fault.Injector

	// Rebalance mode: reb replaces kv with an elastic partitioned table
	// over rebConns (two back-ends); rebMig is the handoff currently in
	// its double-log window, rebMoves counts completed cutovers and
	// rebRng draws the partition choices (its own stream, so the workload
	// rng sequence is identical with rebalancing on or off).
	reb      *ds.Partitioned
	rebConns []*core.Conn
	rebMig   *ds.Migration
	rebMoves int
	rebRng   *rand.Rand

	// Serve-mode plumbing: while srv is non-nil its executor goroutine
	// owns fe/bank/kv and every operation goes through cli.
	srv *serve.Server
	cli *serve.Client
}

// rebEvery is the rebalance-mode cadence in workload operations: each
// notch either opens a handoff's double-log window or cuts it over, so
// every migration spans rebEvery live operations.
const rebEvery = 48

// rebStep advances the continuous-migration state machine one notch.
// With no handoff in flight it begins one — partition drawn from the
// dedicated rng, destination the back-end that does NOT currently own
// it — and streams the snapshot, which opens the double-log window.
// Otherwise it cuts the in-flight handoff over and finishes it. The
// workload operations between two notches commit inside the window, so
// every soak migration ships a live log suffix, not just a snapshot.
func (s *soak) rebStep() error {
	if s.rebMig == nil {
		pi := s.rebRng.Intn(len(s.reb.Parts()))
		dst := 1 - s.reb.Owner(pi) // ping-pong between the two back-ends
		m, err := s.reb.BeginMigration(pi, s.rebConns[dst])
		if err != nil {
			return fmt.Errorf("chaos: begin migration part %d: %w", pi, err)
		}
		if _, err := m.StreamSnapshot(); err != nil {
			return fmt.Errorf("chaos: stream part %d: %w", pi, err)
		}
		s.rebMig = m
		return nil
	}
	if err := s.rebMig.Cutover(); err != nil {
		return fmt.Errorf("chaos: cutover: %w", err)
	}
	if err := s.rebMig.Finish(); err != nil {
		return fmt.Errorf("chaos: finish migration: %w", err)
	}
	s.rebMig = nil
	s.rebMoves++
	return nil
}

// serveStart hands the structures to a fresh TCP server and connects
// the soak's client.
func (s *soak) serveStart() error {
	srv := serve.New(serve.Backends{FE: s.fe, KV: s.kv, Bank: s.bank}, serve.DefaultOptions())
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return err
	}
	cli, err := serve.Dial(srv.Addr().String(), 1)
	if err != nil {
		srv.Close()
		return err
	}
	s.srv, s.cli = srv, cli
	return nil
}

// serveStop settles the server and takes the structures back. Close
// joins the executor goroutine, so direct access afterwards is ordered
// after everything it did.
func (s *soak) serveStop() error {
	if s.srv == nil {
		return nil
	}
	resp, err := s.cli.Drain()
	if err == nil && resp.Status != serve.StatusOK {
		err = fmt.Errorf("chaos: serve drain status %d", resp.Status)
	}
	s.cli.Close()
	s.srv.Close()
	s.srv, s.cli = nil, nil
	return err
}

// serveErr converts a non-OK response into an operation error.
func serveErr(op string, resp serve.Response, err error) error {
	if err != nil {
		return fmt.Errorf("chaos: serve %s: %w", op, err)
	}
	if resp.Status != serve.StatusOK {
		return fmt.Errorf("chaos: serve %s: status %d %s", op, resp.Status, resp.Val)
	}
	return nil
}

func dsOpts() ds.Options {
	// Logs sized so the soak never blocks on replayer progress (that wait
	// polls the remote tail and would make the verb count scheduling-
	// dependent).
	return ds.Options{
		Buckets: 1 << 10,
		Create:  core.CreateOptions{MemLogSize: 32 << 20, OpLogSize: 8 << 20},
	}
}

// Run executes one soak and returns its report. A non-nil error means the
// harness itself failed (setup, schedule); invariant failures are counted
// in Report.Violations instead.
func Run(cfg Config) (*Report, error) {
	if cfg.Promotes > cfg.Mirrors {
		return nil, fmt.Errorf("chaos: %d promotions need at least that many mirrors, have %d", cfg.Promotes, cfg.Mirrors)
	}
	if cfg.TxCross && cfg.Serve {
		return nil, fmt.Errorf("chaos: -txcross and -serve are mutually exclusive (the TCP service owns a single-shard bank)")
	}
	if cfg.MultiWriter && (cfg.Serve || cfg.TxCross) {
		return nil, fmt.Errorf("chaos: -multiwriter is mutually exclusive with -serve and -txcross")
	}
	if cfg.MultiWriter && cfg.Promotes > 0 {
		return nil, fmt.Errorf("chaos: -multiwriter requires -promotes 0 (shared stripe locks do not arbitrate promotion mid-bracket)")
	}
	if cfg.Rebalance && (cfg.Serve || cfg.TxCross || cfg.MultiWriter || cfg.Compact) {
		return nil, fmt.Errorf("chaos: -rebalance is mutually exclusive with -serve, -txcross, -multiwriter and -compact")
	}
	if cfg.Rebalance && cfg.Promotes > 0 {
		return nil, fmt.Errorf("chaos: -rebalance requires -promotes 0 (in-flight handoff state is writer-side)")
	}
	ccfg := cluster.DefaultConfig()
	ccfg.MirrorsPerBack = cfg.Mirrors
	ccfg.ArchivePerBack = true
	ccfg.Tracer = cfg.Tracer
	if cfg.TxCross || cfg.Rebalance {
		ccfg.Backends = 2
	}
	if cfg.Compact {
		// A small interval so checkpoints and log truncation actually fire
		// mid-soak, interleaved with crashes and promotions. Determinism is
		// unaffected: the post-recovery state is a function of the durable
		// log bytes, wherever the checkpoint cursor happens to sit.
		ccfg.Compact = &backend.CompactConfig{Interval: 32 << 10}
	}
	clu, err := cluster.New(ccfg)
	if err != nil {
		return nil, err
	}
	defer clu.Stop()

	plane := fault.NewPlane(cfg.Seed)
	plane.SetMirrorLag(cfg.MirrorLag)
	clu.AttachFaultPlane(plane)

	// The writer mode: plain R by default; with Pipeline > 1 a small batch
	// is added so the posted-verb paths (async op-log flush, one-doorbell
	// commit groups) actually engage under fault injection.
	wMode := core.ModeR()
	if cfg.Pipeline > 1 {
		wMode = core.Mode{OpLog: true, Batch: 4, Pipeline: cfg.Pipeline}
	}
	if cfg.AutoTune {
		// The controller needs real ceilings to move inside; raise the
		// static limits so it has a trajectory, then let it drive. Its
		// inputs all come off the virtual clock, so the soak stays
		// byte-identical per seed with the controller on.
		if wMode.Batch < 8 {
			wMode.Batch = 8
		}
		if wMode.Pipeline < 8 {
			wMode.Pipeline = 8
		}
		wMode = wMode.WithAutoTune()
	}
	fe, conns, err := clu.NewFrontend(1, wMode)
	if err != nil {
		return nil, err
	}
	if cfg.OnFrontend != nil {
		cfg.OnFrontend(fe)
	}
	s := &soak{
		cfg:    cfg,
		clu:    clu,
		plane:  plane,
		inj:    plane.Injector(cluster.InjectorName(1, 0)),
		fe:     fe,
		oracle: make(map[uint64][]byte),
		rep:    &Report{},
	}
	tune := ""
	if cfg.AutoTune {
		tune = " autotune=on"
	}
	if cfg.Compact {
		tune += " compact=on"
	}
	if cfg.Serve {
		tune += " serve=on"
	}
	if cfg.TxCross {
		tune += " txcross=on"
	}
	if cfg.MultiWriter {
		tune += " multiwriter=on"
	}
	if cfg.Rebalance {
		tune += " rebalance=on"
	}
	s.line("chaos: seed=%d ops=%d accounts=%d keys=%d mirrors=%d lag=%d pipe=%d%s", cfg.Seed, cfg.Ops, cfg.Accounts, cfg.Keys, cfg.Mirrors, cfg.MirrorLag, cfg.Pipeline, tune)

	// Build both structures before faults start: creation is plumbing, the
	// soak exercises steady-state operation under failure.
	if cfg.TxCross {
		// Four partitions striped across the two back-ends, a coordinator
		// structure on back-end 0, and the 2PC path armed: every transfer
		// whose rows hash to different partitions commits cross-shard.
		if s.pbank, err = txapp.NewPartitionedSmallBank(conns, bankName, cfg.Accounts, 4, dsOpts()); err != nil {
			return nil, err
		}
		if s.tc, err = core.NewTxCoordinator(conns[0], bankName+".txc"); err != nil {
			return nil, err
		}
		s.pbank.EnableCrossShardTx(s.tc)
	} else if s.bank, err = txapp.NewSmallBank(conns[0], bankName, cfg.Accounts, dsOpts()); err != nil {
		return nil, err
	}
	if cfg.Rebalance {
		// Every handoff materialises a fresh destination generation with
		// its own logs, and reclaim is lazy — with the soak-wide 32 MiB
		// logs a long soak exhausts the 256 MiB devices on generation
		// areas alone. The elastic table's whole history is a slice of the
		// soak's kv ops, so 2 MiB mem + 1 MiB op logs hold it un-wrapped
		// (HistoryOps needs the full ring) with a wide margin.
		rebOpts := dsOpts()
		rebOpts.Create = core.CreateOptions{MemLogSize: 2 << 20, OpLogSize: 1 << 20}
		if s.reb, err = ds.CreateElastic(conns, ds.KindHashTable, kvName, 4, rebOpts); err != nil {
			return nil, err
		}
		s.rebConns = conns
		s.rebRng = rand.New(rand.NewSource(cfg.Seed ^ 0x7265626C)) // migration stream
	} else if cfg.MultiWriter {
		if s.mw[0], err = ds.CreateStriped(conns[0], ds.KindHashTable, kvName, 4, dsOpts()); err != nil {
			return nil, err
		}
		fe2, conns2, err := clu.NewFrontend(2, wMode)
		if err != nil {
			return nil, err
		}
		if s.mw[1], err = ds.OpenStriped(conns2[0], kvName, true, dsOpts()); err != nil {
			return nil, err
		}
		s.mwFes[0], s.mwFes[1] = fe, fe2
		s.inj2 = plane.Injector(cluster.InjectorName(2, 0))
	} else if s.kv, err = ds.CreateHashTable(conns[0], kvName, dsOpts()); err != nil {
		return nil, err
	}
	if err := s.drain(); err != nil {
		return nil, err
	}

	sched := plane.BuildSchedule(cfg.Ops, cfg.Promotes, cfg.Restarts, cfg.Partitions)
	for _, a := range sched {
		s.line("sched: op=%d %s arg=%d", a.AtOp, a.Kind, a.Arg)
	}
	s.inj.SetVerbFaults(fault.VerbFaults{
		DropProb:     cfg.DropProb,
		TruncateProb: cfg.TruncateProb,
		DelayProb:    cfg.DelayProb,
	})
	if cfg.MultiWriter {
		// The second writer's link takes hits too: stripe-lock handoff
		// verbs (release drain, hint persists, acquire CAS) must survive
		// faults on either side.
		s.inj2.SetVerbFaults(fault.VerbFaults{
			DropProb:     cfg.DropProb,
			TruncateProb: cfg.TruncateProb,
			DelayProb:    cfg.DelayProb,
		})
	}
	if cfg.TxCross {
		// Participant-side faults too: prepares and decisions to the
		// second back-end take hits on their own link.
		plane.Injector(cluster.InjectorName(1, 1)).SetVerbFaults(fault.VerbFaults{
			DropProb:     cfg.DropProb,
			TruncateProb: cfg.TruncateProb,
			DelayProb:    cfg.DelayProb,
		})
	}

	if cfg.Serve {
		if err := s.serveStart(); err != nil {
			return nil, err
		}
	}
	if err := s.soakLoop(sched); err != nil {
		s.serveStop()
		return nil, err
	}
	if s.rebMig != nil {
		// The workload ended mid-window; settle the last handoff so the
		// final verification sees a fully balanced begin/finish ledger.
		if err := s.rebStep(); err != nil {
			return nil, err
		}
	}
	s.verify("final")
	if err := s.serveStop(); err != nil {
		return nil, err
	}
	if cfg.Serve {
		snap := fe.Stats().Snapshot()
		s.line("serve: accepted=%d rejected=%d breaker=%d expired=%d",
			snap.ServeAccepted, snap.ServeRejected, snap.ServeBreaker, snap.ServeExpired)
	}

	if cfg.Rebuild {
		if cfg.TxCross {
			// One node's archived op stream cannot reconstruct cross-shard
			// transactions on its own: the flagged transactional records
			// carry no outcome, so a per-node replay would apply one
			// shard's half of an aborted transfer.
			s.line("rebuild: skipped (cross-shard stream spans back-ends)")
		} else if cfg.MultiWriter {
			// The rebuild re-executor maps archived slots onto the two
			// known structures; a striped table spans a meta slot plus
			// one slot per stripe, which it does not reassemble. Striped
			// post-crash recovery is covered by the crash matrix instead.
			s.line("rebuild: skipped (striped table spans multiple slots)")
		} else if cfg.Rebalance {
			// The elastic table's history spans both back-ends (each
			// migration restarts a partition's op log on its new home), so
			// one node's archive is not a complete stream. Migrated-state
			// recovery is covered by the crash matrix and the replay-
			// equivalence property instead.
			s.line("rebuild: skipped (elastic partitions span back-ends)")
		} else if err := s.rebuildCheck(); err != nil {
			return nil, err
		}
	}
	if cfg.MultiWriter {
		// Conflicts must be zero: the soak goroutine alternates the two
		// writers, so a stripe lock is always free at acquire time — any
		// conflict means a release failed to clear the word.
		s.line("multiwriter: puts=%d stripe_conflicts=%d+%d", s.mwTurn,
			s.mwFes[0].Stats().Snapshot().StripeConflicts,
			s.mwFes[1].Stats().Snapshot().StripeConflicts)
	}
	if cfg.Rebalance {
		// The handoff counters are pure functions of (seed, workload):
		// cutovers equals completed moves, double-logged ops counts the
		// live suffixes the windows shipped, and anything still marked
		// active would mean an unbalanced begin/finish pair.
		snap := fe.Stats().Snapshot()
		s.rep.Checks++
		if snap.MigrationsActive != 0 {
			s.violation("rebalance: %d migrations still active at soak end", snap.MigrationsActive)
		}
		s.line("rebalance: moves=%d cutovers=%d dblops=%d inflight=%d",
			s.rebMoves, snap.CutoverEpochs, snap.DoubleLoggedOps, snap.MigrationsActive)
	}
	if cfg.TxCross {
		snap := fe.Stats().Snapshot()
		s.line("txcross: cross=%d prepares=%d commits=%d aborts=%d indoubt=%d",
			s.pbank.CrossShardTxs(), snap.TxPrepares, snap.TxCrossCommits,
			snap.TxCrossAborts, snap.InDoubtResolved)
	}

	s.rep.Digest = plane.Digest()
	events := plane.EventLog()
	s.line("fault events: n=%d digest=%016x", len(events), s.rep.Digest)
	if cfg.Verbose {
		for _, e := range events {
			s.line("  %s", e)
		}
	}
	s.rep.Stats = fe.Stats().Snapshot()
	// Only scheduling-independent writer counters go in the report: log
	// appends, commits, allocations and the resilience counters are pure
	// functions of (seed, workload); replayer-side counters are not.
	s.line("final: oplogs=%d memlogs=%d txcommits=%d allocs=%d retries=%d failovers=%d",
		s.rep.Stats.OpLogs, s.rep.Stats.MemLogs, s.rep.Stats.TxCommits,
		s.rep.Stats.Allocs, s.rep.Stats.VerbRetries, s.rep.Stats.Failovers)
	s.line("checks=%d violations=%d", s.rep.Checks, s.rep.Violations)
	return s.rep, nil
}

func (s *soak) line(format string, args ...interface{}) {
	s.rep.Lines = append(s.rep.Lines, fmt.Sprintf(format, args...))
}

func (s *soak) violation(format string, args ...interface{}) {
	s.rep.Violations++
	s.line("VIOLATION: "+format, args...)
}

// drain settles both writer handles: flushes any batched logs, waits for
// the replayer, and clears the read overlays so the next operation's verb
// sequence is independent of replayer scheduling.
func (s *soak) drain() error {
	if s.srv != nil {
		resp, err := s.cli.Drain()
		return serveErr("drain", resp, err)
	}
	if s.pbank != nil {
		if err := s.pbank.Drain(); err != nil {
			return err
		}
	} else if err := s.bank.Table().Drain(); err != nil {
		return err
	}
	if s.mw[0] != nil {
		// Striped writers drain inside every shared-lock release; Flush
		// only settles batched state outside brackets.
		for _, w := range s.mw {
			if err := w.Flush(); err != nil {
				return err
			}
		}
		return nil
	}
	if s.reb != nil {
		return s.reb.DrainAll()
	}
	return s.kv.Drain()
}

// conservingR crafts a DoTx selector hitting only money-conserving
// transactions: Balance (read-only), Amalgamate (moves everything), and
// SendPayment (transfers or aborts). Deposit/TransactSavings mint money
// and WriteCheck burns it, which would break the conservation invariant.
func conservingR(rng *rand.Rand) uint64 {
	base := rng.Uint64()
	var p uint64
	switch rng.Intn(3) {
	case 0:
		p = uint64(rng.Intn(15)) // Balance
	case 1:
		p = 45 + uint64(rng.Intn(15)) // Amalgamate
	default:
		p = 85 + uint64(rng.Intn(15)) // SendPayment
	}
	return base - base%100 + p
}

// soakLoop runs the workload, firing scheduled failures at op boundaries
// so transactions stay atomic with respect to orchestrated crashes (verb
// faults still land mid-transaction; that is what the op-log recovery
// path is for).
func (s *soak) soakLoop(sched []fault.Action) error {
	rng := rand.New(rand.NewSource(s.cfg.Seed ^ 0x63686173)) // workload stream
	si := 0
	for i := 0; i < s.cfg.Ops; i++ {
		pending := ""
		for si < len(sched) && sched[si].AtOp == i {
			a := sched[si]
			si++
			switch a.Kind {
			case "promote":
				// Permanent crash: the next verb faults fatally and the
				// front-end drives the mirror promotion itself.
				s.clu.CrashBackend(0, true)
				pending = fmt.Sprintf("promote@%d", i)
			case "restart":
				// Transient crash: the node returns on the same NVM. The
				// old endpoint still reaches the (shared) device, so the
				// injector is cut first — the front-end must observe the
				// death and re-target the new incarnation. An open handoff
				// window is cut over first: its in-memory stream cursor
				// does not survive the source restart (the crash matrix
				// covers handoffs that die mid-window; the soak covers
				// windows and restarts interleaving).
				if s.rebMig != nil {
					if err := s.rebStep(); err != nil {
						return err
					}
				}
				s.inj.Disconnect()
				if s.inj2 != nil {
					s.inj2.Disconnect()
				}
				if _, _, err := s.clu.RestartBackend(0, true); err != nil {
					return err
				}
				pending = fmt.Sprintf("restart@%d", i)
			case "partition":
				s.inj.Partition(a.Arg)
			}
		}
		if s.reb != nil && i > 0 && i%rebEvery == 0 {
			if err := s.rebStep(); err != nil {
				return err
			}
		}
		if err := s.workOp(rng); err != nil {
			return fmt.Errorf("chaos: op %d: %w", i, err)
		}
		if pending != "" {
			s.verify(pending)
		}
	}
	return nil
}

// workOp performs one workload operation and settles the pipeline. The
// rng draw sequence is identical whether ops go direct or through the
// serve client, so the fault schedule lines up the same way per seed.
func (s *soak) workOp(rng *rand.Rand) error {
	p := rng.Float64()
	switch {
	case p < 0.5:
		r := conservingR(rng)
		if s.srv != nil {
			resp, err := s.cli.Tx(r, 0)
			if err := serveErr("tx", resp, err); err != nil {
				return err
			}
		} else if s.pbank != nil {
			if err := s.pbank.DoTx(r); err != nil {
				return err
			}
		} else if err := s.bank.DoTx(r); err != nil {
			return err
		}
	case p < 0.8:
		k := uint64(rng.Int63n(int64(s.cfg.Keys))) + 1
		val := make([]byte, 8+rng.Intn(40))
		rng.Read(val)
		if s.srv != nil {
			resp, err := s.cli.Put(k, val, 0)
			if err := serveErr("put", resp, err); err != nil {
				return err
			}
		} else if s.mw[0] != nil {
			// Alternate the two writers: every handoff of a stripe's lock
			// (release by one front-end, acquire by the other) exercises
			// the tail-hint resync under whatever faults are active.
			w := s.mw[s.mwTurn%2]
			s.mwTurn++
			if err := w.Put(k, val); err != nil {
				return err
			}
		} else if s.reb != nil {
			// Routed write: inside a handoff window the owning partition's
			// puts double-log to the migration destination.
			if err := s.reb.Put(k, val); err != nil {
				return err
			}
		} else if err := s.kv.Put(k, val); err != nil {
			return err
		}
		s.oracle[k] = val
	default:
		k := uint64(rng.Int63n(int64(s.cfg.Keys))) + 1
		var got []byte
		var ok bool
		if s.srv != nil {
			resp, err := s.cli.Get(k, 0)
			if err := serveErr("get", resp, err); err != nil {
				return err
			}
			got, ok = resp.Val, resp.Found
		} else if s.mw[0] != nil {
			var err error
			got, ok, err = s.mw[s.mwTurn%2].Get(k)
			if err != nil {
				return err
			}
		} else if s.reb != nil {
			var err error
			got, ok, err = s.reb.Get(k)
			if err != nil {
				return err
			}
		} else {
			var err error
			got, ok, err = s.kv.Get(k)
			if err != nil {
				return err
			}
		}
		want, exists := s.oracle[k]
		if exists != ok || (exists && !bytes.Equal(got, want)) {
			s.violation("writer read key=%d ok=%v want %d bytes", k, ok, len(want))
		}
	}
	return s.drain()
}

// verify checks the two invariants through a fresh reader front-end: the
// committed state survives on whatever node currently serves the role.
// In serve mode the server is paused around the check: Close joins the
// executor goroutine, making direct structure access well-ordered, and
// a fresh server takes over afterwards.
func (s *soak) verify(tag string) {
	if s.srv != nil {
		if err := s.serveStop(); err != nil {
			s.violation("verify[%s]: serve drain: %v", tag, err)
			return
		}
		defer func() {
			if err := s.serveStart(); err != nil {
				s.violation("verify[%s]: serve restart: %v", tag, err)
			}
		}()
	}
	if err := s.drain(); err != nil {
		s.violation("verify[%s]: drain: %v", tag, err)
		return
	}
	wantMoney := int64(s.cfg.Accounts) * moneyPerAccount
	var money int64
	var err error
	if s.pbank != nil {
		money, err = s.pbank.TotalMoney()
	} else {
		money, err = s.bank.TotalMoney()
	}
	if err != nil {
		s.violation("verify[%s]: writer TotalMoney: %v", tag, err)
		return
	}
	s.rep.Checks++
	if money != wantMoney {
		s.violation("verify[%s]: writer money=%d want %d", tag, money, wantMoney)
	}

	// Reader-side check: a separate front-end with its own endpoint reads
	// the promoted/restarted node through the seqlock path.
	_, conns, err := s.clu.NewFrontend(9, core.ModeR())
	if err != nil {
		s.violation("verify[%s]: reader connect: %v", tag, err)
		return
	}
	var rmoney int64
	if s.pbank != nil {
		rbank, oerr := txapp.OpenPartitionedSmallBank(conns, bankName, s.cfg.Accounts, false, dsOpts())
		if oerr != nil {
			s.violation("verify[%s]: reader open bank: %v", tag, oerr)
			return
		}
		rmoney, err = rbank.TotalMoney()
	} else {
		rbank, oerr := txapp.OpenSmallBank(conns[0], bankName, s.cfg.Accounts, false, dsOpts())
		if oerr != nil {
			s.violation("verify[%s]: reader open bank: %v", tag, oerr)
			return
		}
		rmoney, err = rbank.TotalMoney()
	}
	s.rep.Checks++
	if err != nil {
		s.violation("verify[%s]: reader TotalMoney: %v", tag, err)
	} else if rmoney != wantMoney {
		s.violation("verify[%s]: reader money=%d want %d", tag, rmoney, wantMoney)
	}
	var rget func(uint64) ([]byte, bool, error)
	if s.mw[0] != nil {
		rkv, err := ds.OpenStriped(conns[0], kvName, false, dsOpts())
		if err != nil {
			s.violation("verify[%s]: reader open kv: %v", tag, err)
			return
		}
		rget = rkv.Get
	} else if s.reb != nil {
		// The reader routes by the persisted versioned map alone: after
		// however many cutovers, it must land on each partition's current
		// home to find the committed keys.
		rkv, err := ds.OpenPartitioned(conns, kvName, false, dsOpts())
		if err != nil {
			s.violation("verify[%s]: reader open kv: %v", tag, err)
			return
		}
		rget = rkv.Get
	} else {
		rkv, err := ds.OpenHashTable(conns[0], kvName, false, dsOpts())
		if err != nil {
			s.violation("verify[%s]: reader open kv: %v", tag, err)
			return
		}
		rget = rkv.Get
	}
	bad := s.checkOracle(rget)
	s.rep.Checks++
	if bad != 0 {
		s.violation("verify[%s]: %d/%d committed keys wrong on reader", tag, bad, len(s.oracle))
	}
	s.line("verify[%s]: money=%d reader=%d keys=%d ok=%v", tag, money, rmoney, len(s.oracle), bad == 0 && money == wantMoney && rmoney == wantMoney)
	if s.cfg.MultiWriter {
		s.mirrorVerify(tag, conns[0])
	}
}

// mirrorVerify reads the committed keys back through a mirror replica
// front-end: after SyncMirrors, every stripe's seqlock SN on the mirror
// must match the primary's (zero staleness epochs — the assertion that
// bounds what mirror-served reads can observe), and every committed key
// must read back byte for byte off the replica device.
func (s *soak) mirrorVerify(tag string, primary *core.Conn) {
	s.clu.SyncMirrors(0)
	if len(s.clu.Mirrors[0]) == 0 {
		s.line("mirror[%s]: skipped (no replica attached)", tag)
		return
	}
	_, mconn, err := s.clu.NewMirrorFrontend(7, 0, 0, core.ModeR())
	if err != nil {
		s.violation("mirror[%s]: connect: %v", tag, err)
		return
	}
	mkv, err := ds.OpenStriped(mconn, kvName, false, dsOpts())
	if err != nil {
		s.violation("mirror[%s]: open kv: %v", tag, err)
		return
	}
	var maxLag uint64
	for _, h := range s.mw[0].Handles() {
		lag, err := cluster.MirrorStaleness(primary, mconn, h.Slot())
		if err != nil {
			s.violation("mirror[%s]: staleness: %v", tag, err)
			return
		}
		if lag > maxLag {
			maxLag = lag
		}
	}
	s.rep.Checks++
	if maxLag != 0 {
		s.violation("mirror[%s]: synced mirror still %d epochs stale", tag, maxLag)
	}
	bad := s.checkOracle(mkv.Get)
	s.rep.Checks++
	if bad != 0 {
		s.violation("mirror[%s]: %d/%d committed keys wrong on mirror", tag, bad, len(s.oracle))
	}
	s.line("mirror[%s]: lag=%d keys=%d ok=%v", tag, maxLag, len(s.oracle), maxLag == 0 && bad == 0)
}

// checkOracle reads every committed key in sorted order and counts
// mismatches against the oracle.
func (s *soak) checkOracle(get func(uint64) ([]byte, bool, error)) int {
	keys := make([]uint64, 0, len(s.oracle))
	for k := range s.oracle {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	bad := 0
	for _, k := range keys {
		got, ok, err := get(k)
		if err != nil || !ok || !bytes.Equal(got, s.oracle[k]) {
			bad++
		}
	}
	return bad
}

// rebuildCheck models total loss of the back-end and every replica: a
// brand-new node is formatted and the archived operation stream is
// re-executed through normal front-end write paths (§7.2 Case 4). Both
// structures must reconstruct to the exact committed state.
func (s *soak) rebuildCheck() error {
	bankSlot := s.bank.Table().Handle().Slot()
	kvSlot := s.kv.Handle().Slot()
	var rconn *core.Conn
	var rbank, rkv *ds.HashTable
	_, err := s.clu.RebuildFromArchive(0, s.clu.Archives[0], func(slot uint16, rec logrec.OpRecord) error {
		if rconn == nil {
			_, conns, err := s.clu.NewFrontend(8, core.ModeR())
			if err != nil {
				return err
			}
			rconn = conns[0]
			if rbank, err = ds.CreateHashTable(rconn, bankName, dsOpts()); err != nil {
				return err
			}
			if rkv, err = ds.CreateHashTable(rconn, kvName, dsOpts()); err != nil {
				return err
			}
		}
		switch slot {
		case bankSlot:
			return rbank.ReplayOp(rec)
		case kvSlot:
			return rkv.ReplayOp(rec)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if rconn == nil {
		s.violation("rebuild: archive is empty")
		return nil
	}
	if err := rbank.Drain(); err != nil {
		return err
	}
	if err := rkv.Drain(); err != nil {
		return err
	}
	wantMoney := int64(s.cfg.Accounts) * moneyPerAccount
	nb, err := txapp.OpenSmallBank(rconn, bankName, s.cfg.Accounts, false, dsOpts())
	if err != nil {
		return err
	}
	money, err := nb.TotalMoney()
	s.rep.Checks++
	if err != nil {
		s.violation("rebuild: TotalMoney: %v", err)
	} else if money != wantMoney {
		s.violation("rebuild: money=%d want %d", money, wantMoney)
	}
	bad := s.checkOracle(func(k uint64) ([]byte, bool, error) { return rkv.Get(k) })
	s.rep.Checks++
	if bad != 0 {
		s.violation("rebuild: %d/%d committed keys wrong after archive replay", bad, len(s.oracle))
	}
	s.line("rebuild: money=%d keys=%d ok=%v", money, len(s.oracle), bad == 0 && money == wantMoney)
	return nil
}
