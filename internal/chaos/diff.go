package chaos

import (
	"fmt"
	"reflect"
)

// DiffReports implements the determinism contract as a comparison: two
// soaks with identical configuration must agree on every report line,
// on the fault event digest, and on the final stats snapshot. The
// snapshot matters — a scheduling leak can produce byte-identical
// report text while a counter (a retry taken on one run only, an extra
// prepare) drifts, and the counter is the first symptom worth chasing.
// It returns a human-readable description of the first divergence.
func DiffReports(a, b *Report) (string, bool) {
	n := len(a.Lines)
	if len(b.Lines) < n {
		n = len(b.Lines)
	}
	for i := 0; i < n; i++ {
		if a.Lines[i] != b.Lines[i] {
			return fmt.Sprintf("report line %d differs:\nrun 1: %s\nrun 2: %s", i+1, a.Lines[i], b.Lines[i]), true
		}
	}
	if len(a.Lines) != len(b.Lines) {
		long, tag := a.Lines, "run 1"
		if len(b.Lines) > len(a.Lines) {
			long, tag = b.Lines, "run 2"
		}
		return fmt.Sprintf("%s has %d extra report line(s), first: %s", tag, len(long)-n, long[n]), true
	}
	if a.Digest != b.Digest {
		return fmt.Sprintf("fault event digests differ: %016x vs %016x", a.Digest, b.Digest), true
	}
	if a.Stats != b.Stats {
		va, vb := reflect.ValueOf(a.Stats), reflect.ValueOf(b.Stats)
		t := va.Type()
		for i := 0; i < t.NumField(); i++ {
			if fa, fb := va.Field(i), vb.Field(i); fa.Interface() != fb.Interface() {
				return fmt.Sprintf("final stats field %s differs: %v vs %v", t.Field(i).Name, fa, fb), true
			}
		}
	}
	return "", false
}
