package chaos

import (
	"strings"
	"testing"
)

func smallConfig(seed int64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Ops = 600
	cfg.Accounts = 10
	cfg.Keys = 64
	return cfg
}

// TestSoakInvariantsHold runs a small soak with the full failure menu —
// two permanent crashes (mirror promotions), two crash-restarts, four
// partition windows, verb drops/truncations/delays, lagged mirrors — and
// requires zero invariant violations plus at least the scheduled number
// of failovers.
func TestSoakInvariantsHold(t *testing.T) {
	rep, err := Run(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations != 0 {
		t.Fatalf("soak reported %d violations:\n%s", rep.Violations, rep.String())
	}
	if rep.Checks < 8 {
		t.Fatalf("soak performed only %d checks, want per-recovery + final + rebuild", rep.Checks)
	}
	if rep.Stats.Failovers < 3 {
		t.Fatalf("soak drove %d failovers, want >= 3 (2 promotions + 2 restarts scheduled)", rep.Stats.Failovers)
	}
	if rep.Stats.VerbRetries == 0 {
		t.Fatal("verb faults were injected but nothing was retried")
	}
}

// TestSoakDeterministic is the reproducibility contract: two runs with
// the same seed must produce byte-identical reports — same fault event
// log digest, same verify lines, same final counters.
func TestSoakDeterministic(t *testing.T) {
	a, err := Run(smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("fault log digests differ: %016x vs %016x", a.Digest, b.Digest)
	}
	if a.String() != b.String() {
		t.Fatalf("reports differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a.String(), b.String())
	}
	if a.Stats != b.Stats {
		t.Fatalf("final stats differ:\n%+v\n%+v", a.Stats, b.Stats)
	}
}

// TestSoakPipelinedDeterministic soaks with the posted-verb pipeline
// enabled on the writer (async op-log flushes, one-doorbell commit
// groups) under the full failure menu, and requires the same contract
// as the synchronous soak: zero violations and byte-identical reports
// per seed, with the pipeline demonstrably active.
func TestSoakPipelinedDeterministic(t *testing.T) {
	cfg := smallConfig(11)
	cfg.Pipeline = 16
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Violations != 0 {
		t.Fatalf("pipelined soak reported %d violations:\n%s", a.Violations, a.String())
	}
	if a.Stats.PostedVerbs == 0 || a.Stats.DoorbellGroups == 0 {
		t.Fatalf("pipeline enabled but no WRs were posted: %+v", a.Stats)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("fault log digests differ: %016x vs %016x", a.Digest, b.Digest)
	}
	if a.String() != b.String() {
		t.Fatalf("pipelined reports differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a.String(), b.String())
	}
	if a.Stats != b.Stats {
		t.Fatalf("final stats differ:\n%+v\n%+v", a.Stats, b.Stats)
	}
}

// TestSoakSeedChangesSchedule guards against the schedule ignoring the
// seed (two different seeds should almost surely produce different fault
// streams).
func TestSoakSeedChangesSchedule(t *testing.T) {
	a, err := Run(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest == b.Digest {
		t.Fatal("different seeds produced identical fault logs")
	}
}

// TestConservingSelector pins the crafted DoTx selector to the
// money-conserving transaction classes.
func TestConservingSelector(t *testing.T) {
	cfg := smallConfig(5)
	cfg.Ops = 400
	cfg.Promotes, cfg.Restarts, cfg.Partitions = 0, 0, 0
	cfg.DropProb, cfg.TruncateProb, cfg.DelayProb = 0, 0, 0
	cfg.Rebuild = false
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations != 0 {
		t.Fatalf("fault-free soak must conserve money:\n%s", rep.String())
	}
	for _, l := range rep.Lines {
		if strings.HasPrefix(l, "verify[final]:") && !strings.Contains(l, "ok=true") {
			t.Fatalf("final verify failed: %s", l)
		}
	}
}

// TestSoakAutoTuneDeterministic runs the full failure menu with the
// adaptive batch/depth controller driving the writer. The controller's
// inputs are all virtual-clock derived, so the reproducibility contract
// must survive it: zero violations, byte-identical reports per seed, and
// the controller demonstrably stepping.
func TestSoakAutoTuneDeterministic(t *testing.T) {
	cfg := smallConfig(13)
	cfg.Pipeline = 16
	cfg.AutoTune = true
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Violations != 0 {
		t.Fatalf("autotuned soak reported %d violations:\n%s", a.Violations, a.String())
	}
	if a.Stats.AutoTuneSteps == 0 {
		t.Fatalf("controller never stepped: %+v", a.Stats)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("fault log digests differ: %016x vs %016x", a.Digest, b.Digest)
	}
	if a.String() != b.String() {
		t.Fatalf("autotuned reports differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a.String(), b.String())
	}
	if a.Stats != b.Stats {
		t.Fatalf("final stats differ:\n%+v\n%+v", a.Stats, b.Stats)
	}
}

// TestSoakServeDeterministic soaks with every workload operation routed
// through the networked front-end service (TCP server + synchronous
// client) under the full failure menu. The contract is the same as the
// direct soak: zero violations and byte-identical reports per seed —
// the serving plane adds sockets and goroutines but no nondeterminism,
// because all latency is still charged to the virtual clock.
func TestSoakServeDeterministic(t *testing.T) {
	cfg := smallConfig(17)
	cfg.Serve = true
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Violations != 0 {
		t.Fatalf("serve soak reported %d violations:\n%s", a.Violations, a.String())
	}
	if a.Stats.ServeAccepted == 0 {
		t.Fatalf("serve mode on but the server admitted nothing: %+v", a.Stats)
	}
	if !strings.Contains(a.String(), "serve=on") {
		t.Fatalf("report does not mark serve mode:\n%s", a.String())
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("fault log digests differ: %016x vs %016x", a.Digest, b.Digest)
	}
	if a.String() != b.String() {
		t.Fatalf("serve reports differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a.String(), b.String())
	}
	if a.Stats != b.Stats {
		t.Fatalf("final stats differ:\n%+v\n%+v", a.Stats, b.Stats)
	}
}

// TestSoakTxCrossDeterministic partitions the bank across two back-ends
// and routes spanning transfers through cross-shard 2PC under the full
// failure menu. The conservation invariant now checks cross-partition
// atomicity — a transfer half-applied across back-ends mints or burns
// money — and the reproducibility contract must hold with the 2PC plane
// (prepares, coordinator commit records, decisions) in the verb stream.
func TestSoakTxCrossDeterministic(t *testing.T) {
	cfg := smallConfig(19)
	cfg.TxCross = true
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Violations != 0 {
		t.Fatalf("txcross soak reported %d violations:\n%s", a.Violations, a.String())
	}
	if a.Stats.TxCrossCommits == 0 {
		t.Fatalf("txcross mode on but no transfer committed cross-shard: %+v", a.Stats)
	}
	if !strings.Contains(a.String(), "txcross=on") {
		t.Fatalf("report does not mark txcross mode:\n%s", a.String())
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if desc, diverged := DiffReports(a, b); diverged {
		t.Fatalf("txcross soak not reproducible: %s", desc)
	}
}

// TestTxCrossServeRejected pins the mode exclusion: the TCP service owns
// a single-shard bank, so combining it with -txcross must fail loudly
// instead of silently soaking the wrong topology.
func TestTxCrossServeRejected(t *testing.T) {
	cfg := smallConfig(1)
	cfg.TxCross = true
	cfg.Serve = true
	if _, err := Run(cfg); err == nil {
		t.Fatal("TxCross+Serve config was accepted")
	}
}

// TestDiffReports exercises the determinism comparator on crafted
// divergences, in particular the stats-only case the report text alone
// cannot catch (the -determinism regression this comparator fixes).
func TestDiffReports(t *testing.T) {
	base := func() *Report {
		r := &Report{Lines: []string{"a", "b"}, Digest: 42}
		r.Stats.TxCommits = 7
		return r
	}
	if desc, diverged := DiffReports(base(), base()); diverged {
		t.Fatalf("identical reports flagged: %s", desc)
	}
	r := base()
	r.Lines[1] = "B"
	if desc, diverged := DiffReports(base(), r); !diverged || !strings.Contains(desc, "line 2") {
		t.Fatalf("line divergence missed: %q %v", desc, diverged)
	}
	r = base()
	r.Lines = append(r.Lines, "extra")
	if desc, diverged := DiffReports(base(), r); !diverged || !strings.Contains(desc, "extra") {
		t.Fatalf("length divergence missed: %q %v", desc, diverged)
	}
	r = base()
	r.Digest = 43
	if desc, diverged := DiffReports(base(), r); !diverged || !strings.Contains(desc, "digest") {
		t.Fatalf("digest divergence missed: %q %v", desc, diverged)
	}
	r = base()
	r.Stats.VerbRetries = 1
	desc, diverged := DiffReports(base(), r)
	if !diverged || !strings.Contains(desc, "VerbRetries") {
		t.Fatalf("stats-only divergence missed or unnamed: %q %v", desc, diverged)
	}
}

// TestSoakRebalanceDeterministic keeps elastic partition migrations
// running under the workload — double-log windows spanning live writes,
// epoch-fenced cutovers mid-soak, crash-restarts of the source node —
// with the usual contract: zero violations, committed keys durable
// through the persisted versioned map, and byte-identical reports per
// seed. The migration counters must show real activity: completed
// cutovers and operations double-logged inside open windows.
func TestSoakRebalanceDeterministic(t *testing.T) {
	cfg := smallConfig(23)
	cfg.Rebalance = true
	cfg.Promotes = 0
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Violations != 0 {
		t.Fatalf("rebalance soak reported %d violations:\n%s", a.Violations, a.String())
	}
	if a.Stats.CutoverEpochs == 0 {
		t.Fatalf("rebalance mode on but nothing cut over: %+v", a.Stats)
	}
	if a.Stats.DoubleLoggedOps == 0 {
		t.Fatalf("no workload write landed inside a double-log window: %+v", a.Stats)
	}
	if a.Stats.MigrationsActive != 0 {
		t.Fatalf("soak ended with %d migrations still active", a.Stats.MigrationsActive)
	}
	if !strings.Contains(a.String(), "rebalance=on") {
		t.Fatalf("report does not mark rebalance mode:\n%s", a.String())
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if desc, diverged := DiffReports(a, b); diverged {
		t.Fatalf("rebalance soak not reproducible: %s", desc)
	}
}

// TestRebalanceModeExclusions pins the -rebalance mode exclusions: the
// modes that own the hash table (serve, multiwriter), pause under
// migration (txcross), or truncate the history it streams (compact)
// must be rejected loudly, as must scheduled promotions.
func TestRebalanceModeExclusions(t *testing.T) {
	for _, tweak := range []func(*Config){
		func(c *Config) { c.Serve = true },
		func(c *Config) { c.TxCross = true },
		func(c *Config) { c.MultiWriter = true; c.Promotes = 0 },
		func(c *Config) { c.Compact = true },
		func(c *Config) { c.Promotes = 1 },
	} {
		cfg := smallConfig(1)
		cfg.Rebalance = true
		if cfg.Promotes == 0 {
			cfg.Promotes = 0
		}
		tweak(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Fatalf("invalid rebalance combination accepted: %+v", cfg)
		}
	}
}
