package txapp

import (
	"encoding/binary"
	"fmt"

	"asymnvm/internal/core"
	"asymnvm/internal/ds"
)

// SmallBank transaction types with the standard mix.
type SBTx int

// Transaction kinds.
const (
	SBBalance         SBTx = iota // 15%: read both balances
	SBDepositChecking             // 15%: update checking
	SBTransactSavings             // 15%: update savings
	SBAmalgamate                  // 15%: move both balances to another account
	SBWriteCheck                  // 25%: conditional checking update
	SBSendPayment                 // 15%: checking→checking transfer
	sbTxKinds
)

// SmallBank runs the banking benchmark over one hash table, keys
// custID*2 (savings) and custID*2+1 (checking), values 8-byte balances —
// "we use HashTable ... as the index data structure of SmallBank".
type SmallBank struct {
	ht       *ds.HashTable
	accounts uint64
	counts   [sbTxKinds]int64
	writer   bool
}

// NewSmallBank creates and populates the bank with n accounts holding an
// initial balance each.
func NewSmallBank(c *core.Conn, name string, n uint64, opts ds.Options) (*SmallBank, error) {
	ht, err := ds.CreateHashTable(c, name, opts)
	if err != nil {
		return nil, err
	}
	b := &SmallBank{ht: ht, accounts: n, writer: true}
	for id := uint64(1); id <= n; id++ {
		if err := b.setBal(savKey(id), 10000); err != nil {
			return nil, err
		}
		if err := b.setBal(chkKey(id), 5000); err != nil {
			return nil, err
		}
	}
	if err := ht.Flush(); err != nil {
		return nil, err
	}
	return b, nil
}

// OpenSmallBank attaches to an existing bank.
func OpenSmallBank(c *core.Conn, name string, n uint64, writer bool, opts ds.Options) (*SmallBank, error) {
	ht, err := ds.OpenHashTable(c, name, writer, opts)
	if err != nil {
		return nil, err
	}
	return &SmallBank{ht: ht, accounts: n, writer: writer}, nil
}

func savKey(id uint64) uint64 { return id * 2 }
func chkKey(id uint64) uint64 { return id*2 + 1 }

func (b *SmallBank) bal(key uint64) (int64, error) {
	v, ok, err := b.ht.Get(key)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("txapp: missing account row %d", key)
	}
	return int64(binary.LittleEndian.Uint64(v)), nil
}

func (b *SmallBank) setBal(key uint64, v int64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	return b.ht.Put(key, buf[:])
}

// pickSB draws a transaction from the standard mix.
func pickSB(r uint64) SBTx {
	p := r % 100
	switch {
	case p < 15:
		return SBBalance
	case p < 30:
		return SBDepositChecking
	case p < 45:
		return SBTransactSavings
	case p < 60:
		return SBAmalgamate
	case p < 85:
		return SBWriteCheck
	default:
		return SBSendPayment
	}
}

// DoTx executes one transaction from the mix.
func (b *SmallBank) DoTx(r uint64) error {
	tx := pickSB(r)
	b.counts[tx]++
	id := r>>8%b.accounts + 1
	id2 := r>>32%b.accounts + 1
	if id2 == id {
		// Two-account transactions need distinct accounts.
		id2 = id%b.accounts + 1
	}
	amount := int64(r>>16%100) + 1
	switch tx {
	case SBBalance:
		if _, err := b.bal(savKey(id)); err != nil {
			return err
		}
		_, err := b.bal(chkKey(id))
		return err
	case SBDepositChecking:
		if !b.writer {
			return nil
		}
		cur, err := b.bal(chkKey(id))
		if err != nil {
			return err
		}
		return b.setBal(chkKey(id), cur+amount)
	case SBTransactSavings:
		if !b.writer {
			return nil
		}
		cur, err := b.bal(savKey(id))
		if err != nil {
			return err
		}
		return b.setBal(savKey(id), cur+amount)
	case SBAmalgamate:
		if !b.writer {
			return nil
		}
		sv, err := b.bal(savKey(id))
		if err != nil {
			return err
		}
		cv, err := b.bal(chkKey(id))
		if err != nil {
			return err
		}
		dst, err := b.bal(chkKey(id2))
		if err != nil {
			return err
		}
		if err := b.setBal(savKey(id), 0); err != nil {
			return err
		}
		if err := b.setBal(chkKey(id), 0); err != nil {
			return err
		}
		return b.setBal(chkKey(id2), dst+sv+cv)
	case SBWriteCheck:
		if !b.writer {
			return nil
		}
		sv, err := b.bal(savKey(id))
		if err != nil {
			return err
		}
		cv, err := b.bal(chkKey(id))
		if err != nil {
			return err
		}
		if sv+cv < amount {
			amount++ // overdraft penalty
		}
		return b.setBal(chkKey(id), cv-amount)
	case SBSendPayment:
		if !b.writer {
			return nil
		}
		cv, err := b.bal(chkKey(id))
		if err != nil {
			return err
		}
		if cv < amount {
			return nil // insufficient funds: abort (no effect)
		}
		dst, err := b.bal(chkKey(id2))
		if err != nil {
			return err
		}
		if err := b.setBal(chkKey(id), cv-amount); err != nil {
			return err
		}
		return b.setBal(chkKey(id2), dst+amount)
	}
	return fmt.Errorf("txapp: unknown tx %d", tx)
}

// TotalMoney sums every balance (conservation checks in tests).
func (b *SmallBank) TotalMoney() (int64, error) {
	var total int64
	for id := uint64(1); id <= b.accounts; id++ {
		sv, err := b.bal(savKey(id))
		if err != nil {
			return 0, err
		}
		cv, err := b.bal(chkKey(id))
		if err != nil {
			return 0, err
		}
		total += sv + cv
	}
	return total, nil
}

// Counts returns per-type executed transaction counts.
func (b *SmallBank) Counts() [6]int64 {
	var out [6]int64
	copy(out[:], b.counts[:])
	return out
}

// Table exposes the underlying hash table.
func (b *SmallBank) Table() *ds.HashTable { return b.ht }

// Flush flushes batched writes.
func (b *SmallBank) Flush() error { return b.ht.Flush() }

// Close drains and releases the writer lock.
func (b *SmallBank) Close() error { return b.ht.Close() }
