// Package txapp implements the two transaction applications of the
// paper's end-to-end evaluation (§9.2): TATP (the telecom application
// benchmark) indexed by a B+Tree, and SmallBank indexed by a hash table,
// both running entirely on the AsymNVM framework's persistent structures.
package txapp

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"asymnvm/internal/core"
	"asymnvm/internal/ds"
)

// TATP table tags, packed into the top byte of the composite key.
const (
	tatpSubscriber uint64 = 1 << 56
	tatpAccessInfo uint64 = 2 << 56
	tatpSpecialFac uint64 = 3 << 56
	tatpCallFwd    uint64 = 4 << 56
)

// TATP transaction types (the standard mix).
type TATPTx int

// Transaction types with their standard mix percentages.
const (
	TxGetSubscriberData    TATPTx = iota // 35%
	TxGetNewDestination                  // 10%
	TxGetAccessData                      // 35%
	TxUpdateSubscriberData               // 2%
	TxUpdateLocation                     // 14%
	TxInsertCallForwarding               // 2%
	TxDeleteCallForwarding               // 2%
	tatpTxKinds
)

// TATP runs the telecom benchmark over one B+Tree index holding all four
// tables under composite keys, as the paper does ("we use ... BPT as the
// index data structure of ... TATP").
type TATP struct {
	idx         *ds.BPTree
	subscribers uint64
	counts      [tatpTxKinds]int64
	writer      bool
}

// subscriber record: sub_nbr digits + bit/hex/byte fields + locations,
// condensed to 96 bytes.
const tatpSubRecLen = 96

// NewTATP creates the index and loads n subscribers with their access
// info, special facility and call forwarding rows (standard population:
// 2.5 AI rows, 2.5 SF rows, 1.5 CF rows per subscriber on average).
func NewTATP(c *core.Conn, name string, n uint64, opts ds.Options) (*TATP, error) {
	if opts.ValueCap < tatpSubRecLen {
		opts.ValueCap = 128
	}
	idx, err := ds.CreateBPTree(c, name, opts)
	if err != nil {
		return nil, err
	}
	t := &TATP{idx: idx, subscribers: n, writer: true}
	rng := rand.New(rand.NewSource(20200316))
	for s := uint64(1); s <= n; s++ {
		if err := idx.Put(tatpSubscriber|s, t.subRecord(s, uint16(rng.Intn(1<<16)))); err != nil {
			return nil, err
		}
		nAI := 1 + rng.Intn(4)
		for ai := 1; ai <= nAI; ai++ {
			if err := idx.Put(tatpAccessInfo|s<<8|uint64(ai), smallRec(s, uint64(ai), 40)); err != nil {
				return nil, err
			}
		}
		nSF := 1 + rng.Intn(4)
		for sf := 1; sf <= nSF; sf++ {
			if err := idx.Put(tatpSpecialFac|s<<8|uint64(sf), smallRec(s, uint64(sf), 40)); err != nil {
				return nil, err
			}
			if rng.Intn(2) == 0 {
				start := uint64(rng.Intn(3) * 8)
				key := tatpCallFwd | s<<16 | uint64(sf)<<8 | start
				if err := idx.Put(key, smallRec(s, start, 24)); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := idx.Flush(); err != nil {
		return nil, err
	}
	return t, nil
}

// OpenTATP attaches to an existing TATP database.
func OpenTATP(c *core.Conn, name string, n uint64, writer bool, opts ds.Options) (*TATP, error) {
	if opts.ValueCap < tatpSubRecLen {
		opts.ValueCap = 128
	}
	idx, err := ds.OpenBPTree(c, name, writer, opts)
	if err != nil {
		return nil, err
	}
	return &TATP{idx: idx, subscribers: n, writer: writer}, nil
}

func (t *TATP) subRecord(s uint64, bits uint16) []byte {
	rec := make([]byte, tatpSubRecLen)
	binary.LittleEndian.PutUint64(rec, s)
	binary.LittleEndian.PutUint16(rec[8:], bits)
	for i := 16; i < tatpSubRecLen; i++ {
		rec[i] = byte(s + uint64(i))
	}
	return rec
}

func smallRec(a, b uint64, n int) []byte {
	rec := make([]byte, n)
	binary.LittleEndian.PutUint64(rec, a)
	binary.LittleEndian.PutUint64(rec[8:], b)
	return rec
}

// pickTx draws a transaction type from the standard TATP mix (80% read).
func pickTx(r uint64) TATPTx {
	p := r % 100
	switch {
	case p < 35:
		return TxGetSubscriberData
	case p < 45:
		return TxGetNewDestination
	case p < 80:
		return TxGetAccessData
	case p < 82:
		return TxUpdateSubscriberData
	case p < 96:
		return TxUpdateLocation
	case p < 98:
		return TxInsertCallForwarding
	default:
		return TxDeleteCallForwarding
	}
}

// DoTx executes one transaction drawn from the standard mix, using r as
// the randomness source (two independent draws packed in one uint64).
func (t *TATP) DoTx(r uint64) error {
	tx := pickTx(r)
	t.counts[tx]++
	s := r>>8%t.subscribers + 1
	switch tx {
	case TxGetSubscriberData:
		_, _, err := t.idx.Get(tatpSubscriber | s)
		return err
	case TxGetAccessData:
		_, _, err := t.idx.Get(tatpAccessInfo | s<<8 | (r>>40%4 + 1))
		return err
	case TxGetNewDestination:
		sf := r>>40%4 + 1
		if _, ok, err := t.idx.Get(tatpSpecialFac | s<<8 | sf); err != nil || !ok {
			return err
		}
		_, _, err := t.idx.Get(tatpCallFwd | s<<16 | sf<<8 | (r >> 44 % 3 * 8))
		return err
	case TxUpdateSubscriberData:
		if !t.writer {
			return nil
		}
		if err := t.idx.Put(tatpSubscriber|s, t.subRecord(s, uint16(r>>16))); err != nil {
			return err
		}
		return t.idx.Put(tatpSpecialFac|s<<8|(r>>40%4+1), smallRec(s, r>>16, 40))
	case TxUpdateLocation:
		if !t.writer {
			return nil
		}
		return t.idx.Put(tatpSubscriber|s, t.subRecord(s, uint16(r>>24)))
	case TxInsertCallForwarding:
		if !t.writer {
			return nil
		}
		sf := r>>40%4 + 1
		return t.idx.Put(tatpCallFwd|s<<16|sf<<8|(r>>44%3*8), smallRec(s, r>>16, 24))
	case TxDeleteCallForwarding:
		if !t.writer {
			return nil
		}
		// The B+Tree carries no delete; TATP deletes are modeled as
		// tombstone writes (an all-zero record), which exercises the
		// identical write path.
		sf := r>>40%4 + 1
		return t.idx.Put(tatpCallFwd|s<<16|sf<<8|(r>>44%3*8), make([]byte, 24))
	}
	return fmt.Errorf("txapp: unknown tx %d", tx)
}

// Counts returns per-type executed transaction counts.
func (t *TATP) Counts() [7]int64 {
	var out [7]int64
	copy(out[:], t.counts[:])
	return out
}

// Index exposes the underlying B+Tree.
func (t *TATP) Index() *ds.BPTree { return t.idx }

// Flush flushes batched writes.
func (t *TATP) Flush() error { return t.idx.Flush() }

// Close drains and releases the writer lock.
func (t *TATP) Close() error { return t.idx.Close() }
