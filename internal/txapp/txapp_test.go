package txapp

import (
	"testing"

	"asymnvm/internal/backend"
	"asymnvm/internal/clock"
	"asymnvm/internal/core"
	"asymnvm/internal/ds"
	"asymnvm/internal/nvm"
)

var zprof = clock.ZeroProfile()

var tOpts = ds.Options{
	Create:  core.CreateOptions{MemLogSize: 4 << 20, OpLogSize: 2 << 20},
	Buckets: 1 << 12,
}

func newConn(t *testing.T, id uint16, mode core.Mode) *core.Conn {
	t.Helper()
	dev := nvm.NewDevice(256 << 20)
	bk, err := backend.New(dev, backend.Options{ID: 0, Profile: &zprof})
	if err != nil {
		t.Fatal(err)
	}
	bk.Start()
	t.Cleanup(bk.Stop)
	fe := core.NewFrontend(core.FrontendOptions{ID: id, Mode: mode, Profile: &zprof})
	c, err := fe.Connect(bk)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTATPMixRuns(t *testing.T) {
	c := newConn(t, 1, core.ModeRC(8<<20))
	app, err := NewTATP(c, "tatp", 200, tOpts)
	if err != nil {
		t.Fatal(err)
	}
	rng := uint64(1)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for i := 0; i < 3000; i++ {
		if err := app.DoTx(next()); err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
	}
	counts := app.Counts()
	total := int64(0)
	for _, n := range counts {
		total += n
	}
	if total != 3000 {
		t.Fatalf("counted %d txs", total)
	}
	// The mix should roughly match the standard percentages.
	if counts[TxGetSubscriberData] < 800 || counts[TxGetAccessData] < 800 {
		t.Fatalf("read mix off: %v", counts)
	}
	if counts[TxUpdateLocation] < 200 {
		t.Fatalf("UpdateLocation mix off: %v", counts)
	}
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTATPSubscriberUpdateVisible(t *testing.T) {
	c := newConn(t, 1, core.ModeRC(8<<20))
	app, err := NewTATP(c, "tatp2", 50, tOpts)
	if err != nil {
		t.Fatal(err)
	}
	// UpdateLocation on subscriber 7, then read it back.
	if err := app.DoTx(82 | 6<<8 | 0xABCD<<24); err != nil { // p=82 → UpdateLocation
		t.Fatal(err)
	}
	v, ok, err := app.Index().Get(tatpSubscriber | 7)
	if err != nil || !ok {
		t.Fatalf("subscriber missing: %v %v", ok, err)
	}
	if len(v) != tatpSubRecLen {
		t.Fatalf("record length %d", len(v))
	}
	_ = app.Close()
}

func TestSmallBankConservation(t *testing.T) {
	c := newConn(t, 1, core.ModeRC(8<<20))
	bank, err := NewSmallBank(c, "bank", 100, tOpts)
	if err != nil {
		t.Fatal(err)
	}
	before, err := bank.TotalMoney()
	if err != nil {
		t.Fatal(err)
	}
	// SendPayment and Amalgamate conserve money; run only those.
	rng := uint64(99)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for i := 0; i < 500; i++ {
		r := next()
		// Force p into the SendPayment band (85..99) half the time and
		// Amalgamate (45..59) the other half.
		if i%2 == 0 {
			r = r/100*100 + 90
		} else {
			r = r/100*100 + 50
		}
		if err := bank.DoTx(r); err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
	}
	if err := bank.Flush(); err != nil {
		t.Fatal(err)
	}
	after, err := bank.TotalMoney()
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatalf("money not conserved: %d → %d", before, after)
	}
	_ = bank.Close()
}

func TestSmallBankFullMixRuns(t *testing.T) {
	c := newConn(t, 1, core.ModeRCB(8<<20, 32))
	bank, err := NewSmallBank(c, "bank2", 100, tOpts)
	if err != nil {
		t.Fatal(err)
	}
	rng := uint64(5)
	for i := 0; i < 2000; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		if err := bank.DoTx(rng); err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
	}
	counts := bank.Counts()
	var total int64
	for _, n := range counts {
		total += n
	}
	if total != 2000 {
		t.Fatalf("counted %d", total)
	}
	if counts[SBWriteCheck] < 350 {
		t.Fatalf("WriteCheck mix off: %v", counts)
	}
	if err := bank.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSmallBankSurvivesReopen(t *testing.T) {
	dev := nvm.NewDevice(256 << 20)
	bk, err := backend.New(dev, backend.Options{ID: 0, Profile: &zprof})
	if err != nil {
		t.Fatal(err)
	}
	bk.Start()
	fe := core.NewFrontend(core.FrontendOptions{ID: 1, Mode: core.ModeR(), Profile: &zprof})
	c, err := fe.Connect(bk)
	if err != nil {
		t.Fatal(err)
	}
	bank, err := NewSmallBank(c, "bank3", 20, tOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := bank.DoTx(90 | 3<<8 | 7<<32 | 50<<16); err != nil { // SendPayment
		t.Fatal(err)
	}
	before, _ := bank.TotalMoney()
	if err := bank.Close(); err != nil {
		t.Fatal(err)
	}
	bk.Stop()
	dev.Crash(nil)

	bk2, err := backend.New(dev, backend.Options{ID: 0, Profile: &zprof})
	if err != nil {
		t.Fatal(err)
	}
	bk2.Start()
	defer bk2.Stop()
	fe2 := core.NewFrontend(core.FrontendOptions{ID: 2, Mode: core.ModeR(), Profile: &zprof})
	c2, err := fe2.Connect(bk2)
	if err != nil {
		t.Fatal(err)
	}
	bank2, err := OpenSmallBank(c2, "bank3", 20, true, tOpts)
	if err != nil {
		t.Fatal(err)
	}
	after, err := bank2.TotalMoney()
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatalf("balance changed across crash: %d → %d", before, after)
	}
	_ = bank2.Close()
}
