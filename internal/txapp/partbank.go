package txapp

import (
	"encoding/binary"
	"fmt"

	"asymnvm/internal/core"
	"asymnvm/internal/ds"
)

// PartitionedSmallBank is the scale-out variant of the banking benchmark:
// the account table is hash-partitioned across back-ends and every
// transaction touches its rows through the batched cross-partition
// GetMulti/PutMulti path, so a two-account transaction whose rows land on
// different back-ends pays max-over-backends for its reads instead of a
// serial walk. The transaction mix, key scheme and balance arithmetic are
// identical to SmallBank.
type PartitionedSmallBank struct {
	p        *ds.Partitioned
	tc       *core.TxCoordinator
	accounts uint64
	counts   [sbTxKinds]int64
	cross    int64
	writer   bool
}

// NewPartitionedSmallBank creates and populates the partitioned bank.
func NewPartitionedSmallBank(conns []*core.Conn, name string, n uint64, parts int, opts ds.Options) (*PartitionedSmallBank, error) {
	p, err := ds.CreatePartitioned(conns, ds.KindHashTable, name, parts, opts)
	if err != nil {
		return nil, err
	}
	b := &PartitionedSmallBank{p: p, accounts: n, writer: true}
	// Populate in batches so each chunk commits with one overlapped
	// FlushAll instead of per-partition serial flushes.
	const chunk = 128
	keys := make([]uint64, 0, chunk)
	vals := make([]int64, 0, chunk)
	flushChunk := func() error {
		if len(keys) == 0 {
			return nil
		}
		if err := b.setBals(keys, vals); err != nil {
			return err
		}
		keys, vals = keys[:0], vals[:0]
		return b.p.FlushAll()
	}
	for id := uint64(1); id <= n; id++ {
		keys = append(keys, savKey(id), chkKey(id))
		vals = append(vals, 10000, 5000)
		if len(keys) >= chunk {
			if err := flushChunk(); err != nil {
				return nil, err
			}
		}
	}
	if err := flushChunk(); err != nil {
		return nil, err
	}
	return b, nil
}

// OpenPartitionedSmallBank attaches to an existing partitioned bank.
func OpenPartitionedSmallBank(conns []*core.Conn, name string, n uint64, writer bool, opts ds.Options) (*PartitionedSmallBank, error) {
	p, err := ds.OpenPartitioned(conns, name, writer, opts)
	if err != nil {
		return nil, err
	}
	return &PartitionedSmallBank{p: p, accounts: n, writer: writer}, nil
}

// bals fetches the given account rows with one cross-partition multi-get.
func (b *PartitionedSmallBank) bals(keys ...uint64) ([]int64, error) {
	vals, found, err := b.p.GetMulti(keys)
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(keys))
	for i, k := range keys {
		if !found[i] {
			return nil, fmt.Errorf("txapp: missing account row %d", k)
		}
		out[i] = int64(binary.LittleEndian.Uint64(vals[i]))
	}
	return out, nil
}

// setBals routes the updated rows to their partitions in one PutMulti.
func (b *PartitionedSmallBank) setBals(keys []uint64, vals []int64) error {
	bufs := make([][]byte, len(keys))
	for i, v := range vals {
		buf := make([]byte, 8)
		binary.LittleEndian.PutUint64(buf, uint64(v))
		bufs[i] = buf
	}
	return b.p.PutMulti(keys, bufs)
}

// EnableCrossShardTx arms two-phase commit: transfers whose rows hash to
// different partitions commit through the coordinator's prepare/commit
// protocol instead of independent per-partition flushes, so a crash
// between the two partition writes can no longer create or destroy money.
func (b *PartitionedSmallBank) EnableCrossShardTx(tc *core.TxCoordinator) { b.tc = tc }

// CrossShardTxs reports how many transfers took the 2PC path.
func (b *PartitionedSmallBank) CrossShardTxs() int64 { return b.cross }

// TxRecover resolves in-doubt prepares left by a crash mid-2PC. Call it
// after reopening the bank with a writer front-end, before running new
// transactions.
func (b *PartitionedSmallBank) TxRecover(tc *core.TxCoordinator) (committed, aborted int, err error) {
	return b.p.TxRecover(tc)
}

// spansPartitions reports whether the keys hash to more than one
// partition.
func (b *PartitionedSmallBank) spansPartitions(keys []uint64) bool {
	pi := b.p.PartIndex(keys[0])
	for _, k := range keys[1:] {
		if b.p.PartIndex(k) != pi {
			return true
		}
	}
	return false
}

// setBalsTx is setBals for the transfer transactions: when a coordinator
// is armed and the rows span partitions, the updates are committed
// atomically under one cross-shard transaction.
func (b *PartitionedSmallBank) setBalsTx(keys []uint64, vals []int64) error {
	if b.tc == nil || !b.spansPartitions(keys) {
		return b.setBals(keys, vals)
	}
	bufs := make([][]byte, len(keys))
	for i, v := range vals {
		buf := make([]byte, 8)
		binary.LittleEndian.PutUint64(buf, uint64(v))
		bufs[i] = buf
	}
	b.cross++
	return b.p.TxPutMulti(b.tc, keys, bufs)
}

// DoTx executes one transaction from the standard mix; the random-stream
// derivations match SmallBank.DoTx so the two harnesses run comparable
// workloads.
func (b *PartitionedSmallBank) DoTx(r uint64) error {
	tx := pickSB(r)
	b.counts[tx]++
	id := r>>8%b.accounts + 1
	id2 := r>>32%b.accounts + 1
	if id2 == id {
		id2 = id%b.accounts + 1
	}
	amount := int64(r>>16%100) + 1
	switch tx {
	case SBBalance:
		_, err := b.bals(savKey(id), chkKey(id))
		return err
	case SBDepositChecking:
		if !b.writer {
			return nil
		}
		v, err := b.bals(chkKey(id))
		if err != nil {
			return err
		}
		return b.setBals([]uint64{chkKey(id)}, []int64{v[0] + amount})
	case SBTransactSavings:
		if !b.writer {
			return nil
		}
		v, err := b.bals(savKey(id))
		if err != nil {
			return err
		}
		return b.setBals([]uint64{savKey(id)}, []int64{v[0] + amount})
	case SBAmalgamate:
		if !b.writer {
			return nil
		}
		v, err := b.bals(savKey(id), chkKey(id), chkKey(id2))
		if err != nil {
			return err
		}
		return b.setBalsTx(
			[]uint64{savKey(id), chkKey(id), chkKey(id2)},
			[]int64{0, 0, v[2] + v[0] + v[1]})
	case SBWriteCheck:
		if !b.writer {
			return nil
		}
		v, err := b.bals(savKey(id), chkKey(id))
		if err != nil {
			return err
		}
		if v[0]+v[1] < amount {
			amount++ // overdraft penalty
		}
		return b.setBals([]uint64{chkKey(id)}, []int64{v[1] - amount})
	case SBSendPayment:
		if !b.writer {
			return nil
		}
		v, err := b.bals(chkKey(id), chkKey(id2))
		if err != nil {
			return err
		}
		if v[0] < amount {
			return nil // insufficient funds: abort (no effect)
		}
		return b.setBalsTx(
			[]uint64{chkKey(id), chkKey(id2)},
			[]int64{v[0] - amount, v[1] + amount})
	}
	return fmt.Errorf("txapp: unknown tx %d", tx)
}

// TotalMoney sums every balance with chunked multi-gets (conservation
// checks in tests).
func (b *PartitionedSmallBank) TotalMoney() (int64, error) {
	var total int64
	const chunk = 128
	keys := make([]uint64, 0, chunk)
	sum := func() error {
		if len(keys) == 0 {
			return nil
		}
		vals, err := b.bals(keys...)
		if err != nil {
			return err
		}
		for _, v := range vals {
			total += v
		}
		keys = keys[:0]
		return nil
	}
	for id := uint64(1); id <= b.accounts; id++ {
		keys = append(keys, savKey(id), chkKey(id))
		if len(keys) >= chunk {
			if err := sum(); err != nil {
				return 0, err
			}
		}
	}
	if err := sum(); err != nil {
		return 0, err
	}
	return total, nil
}

// Counts returns per-type executed transaction counts.
func (b *PartitionedSmallBank) Counts() [6]int64 {
	var out [6]int64
	copy(out[:], b.counts[:])
	return out
}

// Table exposes the underlying partitioned table.
func (b *PartitionedSmallBank) Table() *ds.Partitioned { return b.p }

// Flush commits every partition's batched writes in one fan-out window.
func (b *PartitionedSmallBank) Flush() error { return b.p.FlushAll() }

// Drain flushes and waits until every back-end has applied the logs.
func (b *PartitionedSmallBank) Drain() error { return b.p.DrainAll() }
