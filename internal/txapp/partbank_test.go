package txapp

import (
	"testing"

	"asymnvm/internal/backend"
	"asymnvm/internal/core"
	"asymnvm/internal/nvm"
)

// newMultiConns builds k back-ends and one front-end connected to all.
func newMultiConns(t *testing.T, k int, mode core.Mode) []*core.Conn {
	t.Helper()
	fe := core.NewFrontend(core.FrontendOptions{ID: 1, Mode: mode, Profile: &zprof})
	var conns []*core.Conn
	for i := 0; i < k; i++ {
		dev := nvm.NewDevice(128 << 20)
		bk, err := backend.New(dev, backend.Options{ID: uint16(i), Profile: &zprof})
		if err != nil {
			t.Fatal(err)
		}
		bk.Start()
		t.Cleanup(bk.Stop)
		c, err := fe.Connect(bk)
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}
	return conns
}

// TestPartitionedSmallBankConservation runs the money-conserving subset
// of the mix over a 4-partition, 2-back-end bank and checks the total.
func TestPartitionedSmallBankConservation(t *testing.T) {
	conns := newMultiConns(t, 2, core.ModeRC(8<<20).WithPipeline(8))
	bank, err := NewPartitionedSmallBank(conns, "pbank", 100, 4, tOpts)
	if err != nil {
		t.Fatal(err)
	}
	before, err := bank.TotalMoney()
	if err != nil {
		t.Fatal(err)
	}
	rng := uint64(99)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for i := 0; i < 500; i++ {
		r := next()
		if i%2 == 0 {
			r = r/100*100 + 90 // SendPayment band
		} else {
			r = r/100*100 + 50 // Amalgamate band
		}
		if err := bank.DoTx(r); err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
	}
	if err := bank.Drain(); err != nil {
		t.Fatal(err)
	}
	after, err := bank.TotalMoney()
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatalf("money not conserved: %d → %d", before, after)
	}
	// Cross-partition transactions must have exercised the fan-out path.
	st := conns[0].Frontend().Stats()
	if st.FanoutWindows.Load() == 0 {
		t.Fatal("partitioned bank never opened a fan-out window")
	}
}

// TestPartitionedSmallBankMatchesSingle runs the full mix on both
// harnesses with the same random stream and checks they agree on the
// final total — the partitioned data path is a pure reorganization.
func TestPartitionedSmallBankMatchesSingle(t *testing.T) {
	const accounts, txs = 80, 1500
	c := newConn(t, 1, core.ModeRCB(8<<20, 32))
	single, err := NewSmallBank(c, "sref", accounts, tOpts)
	if err != nil {
		t.Fatal(err)
	}
	conns := newMultiConns(t, 3, core.ModeRCB(8<<20, 32).WithPipeline(8))
	part, err := NewPartitionedSmallBank(conns, "pref", accounts, 6, tOpts)
	if err != nil {
		t.Fatal(err)
	}
	run := func(do func(uint64) error) {
		rng := uint64(7)
		for i := 0; i < txs; i++ {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			if err := do(rng); err != nil {
				t.Fatalf("tx %d: %v", i, err)
			}
		}
	}
	run(single.DoTx)
	run(part.DoTx)
	if err := single.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := part.Flush(); err != nil {
		t.Fatal(err)
	}
	st, err := single.TotalMoney()
	if err != nil {
		t.Fatal(err)
	}
	pt, err := part.TotalMoney()
	if err != nil {
		t.Fatal(err)
	}
	if st != pt {
		t.Fatalf("single total %d != partitioned total %d", st, pt)
	}
	if single.Counts() != part.Counts() {
		t.Fatalf("mix diverged: %v vs %v", single.Counts(), part.Counts())
	}
}

// TestPartitionedSmallBankSurvivesReopen checks durability through the
// overlapped FlushAll: a fresh front-end sees the committed balances.
func TestPartitionedSmallBankSurvivesReopen(t *testing.T) {
	fe := core.NewFrontend(core.FrontendOptions{ID: 1, Mode: core.ModeR().WithPipeline(8), Profile: &zprof})
	var bks []*backend.Backend
	var conns []*core.Conn
	for i := 0; i < 2; i++ {
		dev := nvm.NewDevice(128 << 20)
		bk, err := backend.New(dev, backend.Options{ID: uint16(i), Profile: &zprof})
		if err != nil {
			t.Fatal(err)
		}
		bk.Start()
		t.Cleanup(bk.Stop)
		bks = append(bks, bk)
		c, err := fe.Connect(bk)
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}
	bank, err := NewPartitionedSmallBank(conns, "pbank3", 20, 4, tOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := bank.DoTx(90 | 3<<8 | 7<<32 | 50<<16); err != nil { // SendPayment
		t.Fatal(err)
	}
	before, err := bank.TotalMoney()
	if err != nil {
		t.Fatal(err)
	}
	if err := bank.Drain(); err != nil {
		t.Fatal(err)
	}
	fe2 := core.NewFrontend(core.FrontendOptions{ID: 2, Mode: core.ModeR(), Profile: &zprof})
	var conns2 []*core.Conn
	for _, bk := range bks {
		c2, err := fe2.Connect(bk)
		if err != nil {
			t.Fatal(err)
		}
		conns2 = append(conns2, c2)
	}
	bank2, err := OpenPartitionedSmallBank(conns2, "pbank3", 20, false, tOpts)
	if err != nil {
		t.Fatal(err)
	}
	after, err := bank2.TotalMoney()
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatalf("balance changed across reopen: %d → %d", before, after)
	}
}
