package txapp

import (
	"encoding/binary"
	"fmt"

	"asymnvm/internal/core"
	"asymnvm/internal/ds"
)

// OrderStore couples a primary order table with a by-customer secondary
// index. The primary is a B+Tree keyed by order id; the index is a hash
// table mapping customer id to the customer's most recent order ids.
// The two structures may live on different back-ends, so a placement
// updates both under one cross-shard transaction: a crash between the
// two writes can never leave an order without its index entry (or an
// index entry pointing at a missing order) — presumed-abort recovery
// settles the prepared halves together.
type OrderStore struct {
	orders *ds.BPTree
	byCust *ds.HashTable
	maxIDs int
	writer bool
}

// orderVal packs an order row: customer id then amount, both LE64.
func orderVal(customer, amount uint64) []byte {
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint64(buf, customer)
	binary.LittleEndian.PutUint64(buf[8:], amount)
	return buf
}

// CreateOrderStore builds the pair; ordConn and idxConn may target
// different back-ends.
func CreateOrderStore(ordConn, idxConn *core.Conn, name string, opts ds.Options) (*OrderStore, error) {
	orders, err := ds.CreateBPTree(ordConn, name+".ord", opts)
	if err != nil {
		return nil, err
	}
	byCust, err := ds.CreateHashTable(idxConn, name+".idx", opts)
	if err != nil {
		return nil, err
	}
	return &OrderStore{orders: orders, byCust: byCust, maxIDs: idCap(opts), writer: true}, nil
}

// OpenOrderStore attaches to an existing store.
func OpenOrderStore(ordConn, idxConn *core.Conn, name string, writer bool, opts ds.Options) (*OrderStore, error) {
	orders, err := ds.OpenBPTree(ordConn, name+".ord", writer, opts)
	if err != nil {
		return nil, err
	}
	byCust, err := ds.OpenHashTable(idxConn, name+".idx", writer, opts)
	if err != nil {
		return nil, err
	}
	return &OrderStore{orders: orders, byCust: byCust, maxIDs: idCap(opts), writer: writer}, nil
}

// idCap derives how many order ids fit in one index entry.
func idCap(opts ds.Options) int {
	cap := opts.ValueCap
	if cap == 0 {
		cap = 64
	}
	return cap / 8
}

// Handles returns the two participant handles (crash harnesses enroll
// them for recovery).
func (s *OrderStore) Handles() []*core.Handle {
	return []*core.Handle{s.orders.Handle(), s.byCust.Handle()}
}

// PlaceOrder inserts the order row and updates the customer's index
// entry in one cross-shard transaction. The index read goes through the
// enrolled writer handle, so it observes earlier writes buffered in the
// same transaction.
func (s *OrderStore) PlaceOrder(tc *core.TxCoordinator, orderID, customer, amount uint64) error {
	tx, err := tc.Begin()
	if err != nil {
		return err
	}
	if err := tx.Enroll(s.orders.Handle(), s.byCust.Handle()); err != nil {
		tx.Abort()
		return err
	}
	if err := s.placeBuffered(orderID, customer, amount); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// placeBuffered performs the two structure updates without committing;
// PlaceOrder wraps it in a transaction, crash harnesses call it under a
// transaction they drive themselves.
func (s *OrderStore) placeBuffered(orderID, customer, amount uint64) error {
	if err := s.orders.Put(orderID, orderVal(customer, amount)); err != nil {
		return err
	}
	ids, _, err := s.byCust.Get(customer)
	if err != nil {
		return err
	}
	ids = append(ids, 0, 0, 0, 0, 0, 0, 0, 0)
	binary.LittleEndian.PutUint64(ids[len(ids)-8:], orderID)
	if n := s.maxIDs * 8; len(ids) > n {
		ids = ids[len(ids)-n:] // keep the most recent entries
	}
	return s.byCust.Put(customer, ids)
}

// Order looks up an order row by id.
func (s *OrderStore) Order(orderID uint64) (customer, amount uint64, ok bool, err error) {
	val, ok, err := s.orders.Get(orderID)
	if err != nil || !ok {
		return 0, 0, ok, err
	}
	if len(val) < 16 {
		return 0, 0, false, fmt.Errorf("txapp: short order row (%d bytes)", len(val))
	}
	return binary.LittleEndian.Uint64(val), binary.LittleEndian.Uint64(val[8:]), true, nil
}

// OrdersByCustomer returns the customer's indexed order ids, oldest
// retained first.
func (s *OrderStore) OrdersByCustomer(customer uint64) ([]uint64, error) {
	val, ok, err := s.byCust.Get(customer)
	if err != nil || !ok {
		return nil, err
	}
	ids := make([]uint64, 0, len(val)/8)
	for off := 0; off+8 <= len(val); off += 8 {
		ids = append(ids, binary.LittleEndian.Uint64(val[off:]))
	}
	return ids, nil
}

// CheckIndex cross-validates the two structures: every indexed order id
// must resolve to an order row owned by that customer, and every order
// row (up to limit, by ascending id) must appear in its customer's index
// entry unless evicted by the recency cap. Crash tests call it after
// recovery to prove the secondary index never splits from the primary.
func (s *OrderStore) CheckIndex(limit int) error {
	keys, vals, err := s.orders.Scan(0, limit)
	if err != nil {
		return err
	}
	for i, id := range keys {
		if len(vals[i]) < 16 {
			return fmt.Errorf("txapp: order %d: short row", id)
		}
		cust := binary.LittleEndian.Uint64(vals[i])
		ids, err := s.OrdersByCustomer(cust)
		if err != nil {
			return err
		}
		found := false
		for _, oid := range ids {
			if oid == id {
				found = true
				break
			}
		}
		if !found && len(ids) < s.maxIDs {
			return fmt.Errorf("txapp: order %d missing from customer %d index", id, cust)
		}
		// Reverse direction: each indexed id must be a real order of
		// this customer.
		for _, oid := range ids {
			c2, _, ok, err := s.Order(oid)
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("txapp: customer %d index points at missing order %d", cust, oid)
			}
			if c2 != cust {
				return fmt.Errorf("txapp: customer %d index points at order %d owned by %d", cust, oid, c2)
			}
		}
	}
	return nil
}

// TxRecover resolves in-doubt prepares on either structure against tc's
// coordinator log (presumed abort). Run on a fresh writer before new
// placements.
func (s *OrderStore) TxRecover(tc *core.TxCoordinator) (committed, aborted int, err error) {
	return tc.RecoverTx(s.Handles()...)
}

// Flush commits buffered single-structure writes.
func (s *OrderStore) Flush() error {
	if err := s.orders.Flush(); err != nil {
		return err
	}
	return s.byCust.Flush()
}

// Drain flushes and waits for both back-ends to apply.
func (s *OrderStore) Drain() error {
	if err := s.orders.Drain(); err != nil {
		return err
	}
	return s.byCust.Drain()
}

// Close releases writer locks.
func (s *OrderStore) Close() error {
	if err := s.orders.Close(); err != nil {
		return err
	}
	return s.byCust.Close()
}
