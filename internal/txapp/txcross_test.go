package txapp

import (
	"testing"

	"asymnvm/internal/backend"
	"asymnvm/internal/core"
	"asymnvm/internal/ds"
	"asymnvm/internal/nvm"
)

// newMultiBackends builds k back-ends and a front-end connected to all,
// returning both so tests can attach a second front-end.
func newMultiBackends(t *testing.T, k int, mode core.Mode) ([]*backend.Backend, []*core.Conn) {
	t.Helper()
	fe := core.NewFrontend(core.FrontendOptions{ID: 1, Mode: mode, Profile: &zprof})
	var bks []*backend.Backend
	var conns []*core.Conn
	for i := 0; i < k; i++ {
		dev := nvm.NewDevice(128 << 20)
		bk, err := backend.New(dev, backend.Options{ID: uint16(i), Profile: &zprof})
		if err != nil {
			t.Fatal(err)
		}
		bk.Start()
		t.Cleanup(bk.Stop)
		bks = append(bks, bk)
		c, err := fe.Connect(bk)
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}
	return bks, conns
}

// TestPartitionedBankCrossShard2PC runs the transfer-heavy mix with
// two-phase commit armed and checks conservation plus that the 2PC path
// actually fired.
func TestPartitionedBankCrossShard2PC(t *testing.T) {
	_, conns := newMultiBackends(t, 2, core.ModeRC(8<<20).WithPipeline(8))
	bank, err := NewPartitionedSmallBank(conns, "xbank", 64, 4, tOpts)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := core.NewTxCoordinator(conns[0], "xbank.txc")
	if err != nil {
		t.Fatal(err)
	}
	bank.EnableCrossShardTx(tc)
	before, err := bank.TotalMoney()
	if err != nil {
		t.Fatal(err)
	}
	rng := uint64(4242)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for i := 0; i < 300; i++ {
		r := next()
		if i%2 == 0 {
			r = r/100*100 + 90 // SendPayment band
		} else {
			r = r/100*100 + 50 // Amalgamate band
		}
		if err := bank.DoTx(r); err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
	}
	if err := tc.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if err := bank.Drain(); err != nil {
		t.Fatal(err)
	}
	after, err := bank.TotalMoney()
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatalf("money not conserved under 2PC: %d → %d", before, after)
	}
	if bank.CrossShardTxs() == 0 {
		t.Fatal("no transfer crossed partitions")
	}
	st := conns[0].Frontend().Stats()
	if got := int64(st.TxCrossCommits.Load()); got != bank.CrossShardTxs() {
		t.Fatalf("cross-shard commits = %d, bank counted %d", got, bank.CrossShardTxs())
	}
	if st.TxPrepares.Load() < st.TxCrossCommits.Load() {
		t.Fatalf("prepares %d < commits %d", st.TxPrepares.Load(), st.TxCrossCommits.Load())
	}
	// No transaction should be left in doubt after a clean run.
	for _, h := range bank.Table().TxHandles() {
		if n := len(h.InDoubtPrepares()); n != 0 {
			t.Fatalf("%d prepares left in doubt", n)
		}
	}
}

// TestOrderStoreIndexAtomic places orders across two back-ends and
// checks the primary and the secondary index agree, including through a
// reopen on a fresh front-end.
func TestOrderStoreIndexAtomic(t *testing.T) {
	bks, conns := newMultiBackends(t, 2, core.ModeRC(8<<20).WithPipeline(8))
	st, err := CreateOrderStore(conns[0], conns[1], "ost", tOpts)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := core.NewTxCoordinator(conns[0], "ost.txc")
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 40; i++ {
		if err := st.PlaceOrder(tc, 1000+i, i%5+1, i*10); err != nil {
			t.Fatalf("order %d: %v", i, err)
		}
	}
	if err := tc.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if err := st.Drain(); err != nil {
		t.Fatal(err)
	}
	cust, amt, ok, err := st.Order(1007)
	if err != nil || !ok {
		t.Fatalf("order 1007 missing (ok=%v err=%v)", ok, err)
	}
	if cust != 7%5+1 || amt != 70 {
		t.Fatalf("order 1007 = cust %d amt %d", cust, amt)
	}
	ids, err := st.OrdersByCustomer(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) == 0 {
		t.Fatal("customer 3 has no indexed orders")
	}
	if err := st.CheckIndex(100); err != nil {
		t.Fatal(err)
	}
	// Fresh reader front-end: index and primary still agree.
	fe2 := core.NewFrontend(core.FrontendOptions{ID: 9, Mode: core.ModeR(), Profile: &zprof})
	c0, err := fe2.Connect(bks[0])
	if err != nil {
		t.Fatal(err)
	}
	c1, err := fe2.Connect(bks[1])
	if err != nil {
		t.Fatal(err)
	}
	st2, err := OpenOrderStore(c0, c1, "ost", false, tOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.CheckIndex(100); err != nil {
		t.Fatal(err)
	}
}

// TestOrderStoreAbortLeavesNoTrace aborts a placement and checks neither
// half became visible.
func TestOrderStoreAbortLeavesNoTrace(t *testing.T) {
	_, conns := newMultiBackends(t, 2, core.ModeRC(8<<20).WithPipeline(8))
	st, err := CreateOrderStore(conns[0], conns[1], "osta", tOpts)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := core.NewTxCoordinator(conns[0], "osta.txc")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PlaceOrder(tc, 500, 1, 42); err != nil {
		t.Fatal(err)
	}
	tx, err := tc.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Enroll(st.Handles()...); err != nil {
		t.Fatal(err)
	}
	if err := st.placeBuffered(501, 1, 99); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if err := tc.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if err := st.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, _ := st.Order(501); ok {
		t.Fatal("aborted order visible in primary")
	}
	ids, err := st.OrdersByCustomer(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if id == 501 {
			t.Fatal("aborted order visible in secondary index")
		}
	}
	if err := st.CheckIndex(100); err != nil {
		t.Fatal(err)
	}
	// The store keeps working after the abort.
	if err := st.PlaceOrder(tc, 502, 1, 7); err != nil {
		t.Fatal(err)
	}
	if err := tc.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if err := st.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, _ := st.Order(502); !ok {
		t.Fatal("post-abort order missing")
	}
}

// TestMVSnapshotCrossShardAtomic spans a transaction over two
// multi-version trees on different back-ends and checks a concurrent
// reader front-end never observes the prepared-but-uncommitted halves:
// its snapshot sees either neither write or both.
func TestMVSnapshotCrossShardAtomic(t *testing.T) {
	bks, conns := newMultiBackends(t, 2, core.ModeRC(8<<20).WithPipeline(8))
	w0, err := ds.CreateMVBPTree(conns[0], "mvx0", tOpts)
	if err != nil {
		t.Fatal(err)
	}
	w1, err := ds.CreateMVBPTree(conns[1], "mvx1", tOpts)
	if err != nil {
		t.Fatal(err)
	}
	seed := func(tr *ds.MVBPTree, v byte) {
		if err := tr.Put(1, []byte{v}); err != nil {
			t.Fatal(err)
		}
		if err := tr.Drain(); err != nil {
			t.Fatal(err)
		}
	}
	seed(w0, 10)
	seed(w1, 20)

	fe2 := core.NewFrontend(core.FrontendOptions{ID: 9, Mode: core.ModeR(), Profile: &zprof})
	rc0, err := fe2.Connect(bks[0])
	if err != nil {
		t.Fatal(err)
	}
	rc1, err := fe2.Connect(bks[1])
	if err != nil {
		t.Fatal(err)
	}
	r0, err := ds.OpenMVBPTree(rc0, "mvx0", false, tOpts)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := ds.OpenMVBPTree(rc1, "mvx1", false, tOpts)
	if err != nil {
		t.Fatal(err)
	}
	read := func() (byte, byte) {
		v0, ok, err := r0.Get(1)
		if err != nil || !ok {
			t.Fatalf("reader shard 0: ok=%v err=%v", ok, err)
		}
		v1, ok, err := r1.Get(1)
		if err != nil || !ok {
			t.Fatalf("reader shard 1: ok=%v err=%v", ok, err)
		}
		return v0[0], v1[0]
	}
	if a, b := read(); a != 10 || b != 20 {
		t.Fatalf("pre-tx snapshot = (%d,%d), want (10,20)", a, b)
	}

	tc, err := core.NewTxCoordinator(conns[0], "mvx.txc")
	if err != nil {
		t.Fatal(err)
	}
	tx, err := tc.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Enroll(w0.Handle(), w1.Handle()); err != nil {
		t.Fatal(err)
	}
	if err := w0.Put(1, []byte{11}); err != nil {
		t.Fatal(err)
	}
	if err := w1.Put(1, []byte{21}); err != nil {
		t.Fatal(err)
	}
	// Buffered, unprepared: the reader's snapshot must still be the old
	// version on both shards.
	if a, b := read(); a != 10 || b != 20 {
		t.Fatalf("mid-tx snapshot = (%d,%d), want (10,20)", a, b)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tc.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if err := w0.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := w1.Drain(); err != nil {
		t.Fatal(err)
	}
	if a, b := read(); a != 11 || b != 21 {
		t.Fatalf("post-commit snapshot = (%d,%d), want (11,21)", a, b)
	}
}
