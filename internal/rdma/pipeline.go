// Posted-verb pipeline: asynchronous issue, doorbell batching and a
// completion queue for the simulated fabric.
//
// The synchronous verbs in rdma.go charge a full round trip before the
// next verb may issue. Real one-sided RDMA does not work that way: the
// initiator posts work requests (WRs) to a send queue, rings the doorbell
// once for a whole batch, and later polls a completion queue. The fabric
// round trip overlaps with whatever the CPU does in between. This file
// models that with the endpoint's virtual clock:
//
//   - Post* appends a WR to the send queue and charges only Profile.WRIssue.
//   - Doorbell turns the queued WRs into one doorbell group. The group's
//     cost is one round trip plus the media latency and the bandwidth term
//     of the combined payload; its completion becomes *ready* at
//     issue-time + cost, but nothing is charged yet. Data movement (and
//     fault-hook consultation) happens here, in posted order, so
//     per-endpoint WAW ordering is independent of retirement order.
//   - Wait/Poll retire completions. Waiting charges only the remaining
//     gap max(0, readyAt - now): time the actor spent computing between
//     doorbell and wait is latency hidden, accumulated in
//     Stats.OverlapSavedNS.
//
// Completion queues are in-order per endpoint (RC QP semantics): group i
// retires before group i+1, and a group never becomes ready before its
// predecessor. Faults injected by the endpoint's hook surface at
// completion time through the WR's Completion.Err, never at post time,
// which is what lets PR 1's deterministic chaos replay keep working with
// verbs completing out of program order: the hook is still consulted
// exactly once per WR, in posted order.
package rdma

import (
	"fmt"
	"time"

	"asymnvm/internal/trace"
)

// Token identifies one posted work request. Tokens are endpoint-local
// and strictly increasing in post order.
type Token uint64

// Completion is the retired outcome of one posted work request.
type Completion struct {
	Token Token
	Op    Op
	Off   uint64 // offset of the WR's first segment
	N     int    // payload bytes across all segments
	Err   error  // nil on success; wraps ErrInjected / ErrDisconnected
}

// ReadOp is one element of a multi-get: a one-sided read of len(Buf)
// bytes at Off, posted as its own work request.
type ReadOp struct {
	Off uint64
	Buf []byte
}

// postedWR is a queued work request. A write WR may carry several
// segments (a vector write posted as one WR); a read WR has exactly one.
type postedWR struct {
	token Token
	op    Op
	segs  []WriteOp // write payload; caller-owned, must stay valid until retired
	buf   []byte    // read destination
	off   uint64
	n     int
	err   error
}

// doorbellGroup is a batch of WRs issued with one doorbell. Its readyAt
// is fixed at ring time; waiting on any of its WRs first waits out the
// group.
type doorbellGroup struct {
	wrs     []*postedWR
	cost    time.Duration // full fabric cost of the group
	readyAt time.Duration // virtual time its completions become pollable
}

// SetPipeline sets the send-queue depth cap (maximum in-flight WRs).
// Depth <= 1 keeps the endpoint effectively synchronous: each post rings
// the doorbell and the next post waits the previous completion out.
// Posting beyond the cap transparently rings the doorbell and retires the
// oldest group, so callers may post arbitrarily long batches.
func (e *Endpoint) SetPipeline(depth int) {
	if depth < 1 {
		depth = 1
	}
	e.pipeDepth = depth
}

// Outstanding reports the number of posted WRs not yet retired to the
// completion queue (send queue + rung doorbell groups).
func (e *Endpoint) Outstanding() int { return e.inflight }

// newWR takes a work-request header off the freelist (retireOldest and
// retargetFlush put them back) or allocates the pool's next one.
func (e *Endpoint) newWR() *postedWR {
	if n := len(e.wrFree); n > 0 {
		wr := e.wrFree[n-1]
		e.wrFree = e.wrFree[:n-1]
		return wr
	}
	return &postedWR{}
}

// freeWR recycles a retired WR header, dropping its payload references
// so caller-owned buffers are not pinned by the freelist.
func (e *Endpoint) freeWR(wr *postedWR) {
	*wr = postedWR{}
	e.wrFree = append(e.wrFree, wr)
}

// PostRead posts a one-sided read of len(buf) bytes at off and returns
// its completion token. buf is filled at Doorbell time; its contents are
// only meaningful once the token retires without error.
func (e *Endpoint) PostRead(off uint64, buf []byte) Token {
	wr := e.newWR()
	wr.op, wr.buf, wr.off, wr.n = OpRead, buf, off, len(buf)
	return e.post(wr)
}

// PostWrite posts a one-sided persistent write as a single-segment WR.
func (e *Endpoint) PostWrite(off uint64, data []byte) Token {
	return e.PostWriteV([]WriteOp{{Off: off, Data: data}})
}

// PostWriteV posts a vector write as ONE work request: all segments
// travel together and complete together, exactly like the synchronous
// WriteV, but asynchronously. The segment buffers are caller-owned and
// must stay valid until the token retires.
func (e *Endpoint) PostWriteV(ops []WriteOp) Token {
	n := 0
	off := uint64(0)
	if len(ops) > 0 {
		off = ops[0].Off
	}
	for _, op := range ops {
		n += len(op.Data)
	}
	wr := e.newWR()
	wr.op, wr.segs, wr.off, wr.n = OpWrite, ops, off, n
	return e.post(wr)
}

func (e *Endpoint) post(wr *postedWR) Token {
	e.reserveSlot()
	e.nextToken++
	wr.token = e.nextToken
	e.sendQ = append(e.sendQ, wr)
	e.inflight++
	e.clk.Advance(e.prof.WRIssue)
	e.tr.Charge(trace.KindPost, e.prof.WRIssue)
	e.st.PostedVerbs.Add(1)
	e.st.QueueDepthSum.Add(int64(e.inflight))
	return wr.token
}

// reserveSlot enforces the queue-depth cap before a new WR is admitted.
func (e *Endpoint) reserveSlot() {
	cap := e.pipeDepth
	if cap < 1 {
		cap = 1
	}
	for e.inflight >= cap {
		if len(e.sendQ) > 0 {
			e.Doorbell()
			continue
		}
		e.retireOldest()
	}
}

// Doorbell rings the doorbell for every WR posted since the last ring,
// forming one doorbell group. The group's data movement happens now, in
// posted order — so a later synchronous verb or posted group observes
// these writes — while the completion cost is charged lazily at
// Wait/Poll time. One round trip is paid per group, not per WR.
func (e *Endpoint) Doorbell() {
	if len(e.sendQ) == 0 {
		return
	}
	// Recycle a group header and swap slices: the group takes the send
	// queue's backing array, the send queue inherits the recycled group's
	// empty one. Steady state cycles the same two arrays forever.
	var g *doorbellGroup
	if n := len(e.groupFree); n > 0 {
		g = e.groupFree[n-1]
		e.groupFree = e.groupFree[:n-1]
	} else {
		g = &doorbellGroup{}
	}
	wrs := e.sendQ
	e.sendQ = g.wrs[:0]

	var (
		extraDelay time.Duration
		firstErr   error
		readBytes  int64
		writeBytes int64
		anyWrite   bool
	)
	for _, wr := range wrs {
		// Traffic is counted for every WR, like the synchronous verbs
		// count bytes before consulting the fault hook: the payload was
		// put on the wire whether or not it was acknowledged.
		if wr.op == OpRead {
			readBytes += int64(wr.n)
		} else {
			writeBytes += int64(wr.n)
			anyWrite = true
		}
		if firstErr != nil {
			// RC QP: after one WR fails, the queue pair flushes the
			// rest with the same fate, without touching the target or
			// consuming fault randomness.
			wr.err = fmt.Errorf("%w (flushed after earlier failure in doorbell group)", firstErr)
			continue
		}
		e.execWR(wr, &extraDelay)
		if wr.err != nil {
			firstErr = wr.err
		}
	}

	total := int(readBytes + writeBytes)
	cost := e.prof.RDMARTT + e.prof.NetTransfer(total) + e.prof.NVMTransfer(total) + extraDelay
	if anyWrite {
		cost += e.prof.NVMWrite
	} else {
		cost += e.prof.NVMRead
	}
	readyAt := e.clk.Now() + cost
	if last, ok := e.groups.Back(); ok && last.readyAt > readyAt {
		readyAt = last.readyAt // in-order CQ: no overtaking
	}
	g.wrs, g.cost, g.readyAt = wrs, cost, readyAt
	e.groups.PushBack(g)

	// One doorbell group is one network round trip, whatever its size.
	e.tr.Event(trace.KindDoorbell, uint64(total))
	e.tr.CountVerb()
	e.st.DoorbellGroups.Add(1)
	if anyWrite {
		e.st.RDMAWrite.Add(1)
	} else {
		e.st.RDMARead.Add(1)
	}
	e.st.BytesRead.Add(readBytes)
	e.st.BytesWrite.Add(writeBytes)
}

// execWR performs one WR's data movement against the target, consulting
// the fault hook exactly like the synchronous verbs do (once per read,
// once per write segment, stopping at the first failure). Hook delays
// accumulate into the group cost instead of advancing the clock inline.
func (e *Endpoint) execWR(wr *postedWR, extraDelay *time.Duration) {
	consult := func(op Op, off uint64, n int) (int, error) {
		if e.fault == nil {
			return 0, nil
		}
		f := e.fault(op, off, n)
		if f.Delay > 0 {
			*extraDelay += f.Delay
		}
		if f.Err == nil {
			return 0, nil
		}
		return f.Truncate, fmt.Errorf("%w: op=%v off=%d n=%d", f.Err, op, off, n)
	}

	if wr.op == OpRead {
		if _, err := consult(OpRead, wr.off, wr.n); err != nil {
			wr.err = err
			return
		}
		wr.err = e.t.dev.ReadAt(wr.off, wr.buf)
		return
	}
	for _, seg := range wr.segs {
		trunc, err := consult(OpWrite, seg.Off, len(seg.Data))
		if err != nil {
			if trunc > 0 && trunc <= len(seg.Data) {
				_ = e.t.dev.WriteAt(seg.Off, seg.Data[:trunc])
			}
			wr.err = err
			return
		}
		// Seal each segment: ranged WritePersist durability means the
		// last segment's ack no longer covers the earlier ones. A
		// fault-truncated prefix above stays volatile on purpose.
		if err := e.t.dev.WritePersist(seg.Off, seg.Data); err != nil {
			wr.err = err
			return
		}
	}
}

// retireOldest waits the oldest doorbell group out and moves its WRs to
// the completion queue. The clock is charged only the remaining gap to
// the group's ready time; cost already hidden behind the actor's own
// work is recorded as overlap savings.
func (e *Endpoint) retireOldest() {
	g, ok := e.groups.PopFront()
	if !ok {
		return
	}
	if e.win != nil {
		e.win.serial += g.cost
	}
	now := e.clk.Now()
	wait := g.readyAt - now
	if wait > 0 {
		e.clk.Advance(wait)
		e.tr.Charge(trace.KindRetireWait, wait)
		e.tr.Event(trace.KindOverlapSaved, uint64(g.cost-wait))
		e.st.OverlapSavedNS.Add(int64(g.cost - wait))
	} else {
		e.tr.Event(trace.KindOverlapSaved, uint64(g.cost))
		e.st.OverlapSavedNS.Add(int64(g.cost))
	}
	for i, wr := range g.wrs {
		e.inflight--
		e.cq.PushBack(Completion{Token: wr.token, Op: wr.op, Off: wr.off, N: wr.n, Err: wr.err})
		e.freeWR(wr)
		g.wrs[i] = nil
	}
	g.wrs = g.wrs[:0]
	e.groupFree = append(e.groupFree, g)
}

// Poll retires every doorbell group that is already ready at the current
// virtual time — charging nothing — and returns the drained completion
// queue (including completions retired earlier by Wait's group draining
// but not yet consumed). Completions are in posted order. The returned
// slice is reused by the next Poll: consume it before calling again.
func (e *Endpoint) Poll() []Completion {
	now := e.clk.Now()
	for {
		g, ok := e.groups.Front()
		if !ok || g.readyAt > now {
			break
		}
		e.retireOldest()
	}
	out := append(e.pollBuf[:0], e.cqSkip...)
	e.cqSkip = e.cqSkip[:0]
	for {
		c, ok := e.cq.PopFront()
		if !ok {
			break
		}
		out = append(out, c)
	}
	e.pollBuf = out
	return out
}

// Wait blocks (in virtual time) until the WR identified by tok retires,
// consumes its completion, and returns its error. Preceding groups are
// waited out first — the CQ is in-order — and their completions stay
// queued for their own waiters. If tok is still in the send queue the
// doorbell is rung first.
func (e *Endpoint) Wait(tok Token) error {
	for {
		// Tokens are waited on out of posted order, but the CQ ring pops
		// front-only; completions popped past on the way to tok are
		// stashed (still in posted order) and re-delivered to their own
		// waiters — or to Poll — first.
		for i, c := range e.cqSkip {
			if c.Token == tok {
				e.cqSkip = append(e.cqSkip[:i], e.cqSkip[i+1:]...)
				return c.Err
			}
		}
		for {
			c, ok := e.cq.PopFront()
			if !ok {
				break
			}
			if c.Token == tok {
				return c.Err
			}
			e.cqSkip = append(e.cqSkip, c)
		}
		if e.groups.Len() == 0 {
			if len(e.sendQ) == 0 {
				return fmt.Errorf("rdma: wait on unknown or already-consumed token %d", tok)
			}
			e.Doorbell()
			continue
		}
		e.retireOldest()
	}
}

// Drain rings the doorbell, waits out every in-flight group, and clears
// the completion queue, returning the first error among the discarded
// completions (in posted order). Only a caller that owns every
// outstanding token may use it; Handle-level code uses per-token Wait.
func (e *Endpoint) Drain() error {
	e.Doorbell()
	for e.groups.Len() > 0 {
		e.retireOldest()
	}
	var first error
	for _, c := range e.cqSkip {
		if c.Err != nil && first == nil {
			first = c.Err
		}
	}
	e.cqSkip = e.cqSkip[:0]
	for {
		c, ok := e.cq.PopFront()
		if !ok {
			break
		}
		if c.Err != nil && first == nil {
			first = c.Err
		}
	}
	return first
}

// fenceOrder is called by every synchronous verb before it executes: any
// posted-but-not-rung WRs are issued first so the device observes them
// in program order. It does not wait for completions — execution order
// is established at doorbell time, and the in-flight groups' latency
// keeps overlapping with the synchronous verb's own round trip.
func (e *Endpoint) fenceOrder() {
	if len(e.sendQ) > 0 {
		e.Doorbell()
	}
}

// retargetFlush fails every in-flight WR with ErrDisconnected and moves
// it to the completion queue without charging the clock: the queue pair
// died, so pending completions are flushed, not delivered. Executed WRs
// may have landed on the old target, but their ack was lost — callers
// re-issue idempotently on the new target. The fault hook is NOT
// consulted (no randomness consumed).
func (e *Endpoint) retargetFlush() {
	flush := func(wr *postedWR) {
		e.inflight--
		e.cq.PushBack(Completion{
			Token: wr.token, Op: wr.op, Off: wr.off, N: wr.n,
			Err: fmt.Errorf("%w: op=%v off=%d n=%d (flushed by retarget)", ErrDisconnected, wr.op, wr.off, wr.n),
		})
		e.freeWR(wr)
	}
	for {
		g, ok := e.groups.PopFront()
		if !ok {
			break
		}
		for i, wr := range g.wrs {
			flush(wr)
			g.wrs[i] = nil
		}
		g.wrs = g.wrs[:0]
		e.groupFree = append(e.groupFree, g)
	}
	for i, wr := range e.sendQ {
		flush(wr)
		e.sendQ[i] = nil
	}
	e.sendQ = e.sendQ[:0]
}
