package rdma

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"asymnvm/internal/clock"
	"asymnvm/internal/nvm"
	"asymnvm/internal/stats"
)

// TestWriteVExactCost pins the vector-write cost contract: one round
// trip per call — RTT + one media write + the bandwidth term of the
// combined payload — independent of the element count.
func TestWriteVExactCost(t *testing.T) {
	prof := clock.DefaultProfile()
	for _, elems := range []int{1, 3, 16} {
		ep, clk := newEP(1<<20, prof)
		var ops []WriteOp
		total := 0
		for i := 0; i < elems; i++ {
			data := make([]byte, 96)
			ops = append(ops, WriteOp{Off: uint64(i * 4096), Data: data})
			total += len(data)
		}
		if err := ep.WriteV(ops); err != nil {
			t.Fatal(err)
		}
		want := prof.WriteCost(total)
		if got := clk.Now(); got != want {
			t.Fatalf("%d-element WriteV charged %v, want exactly %v (one doorbell)", elems, got, want)
		}
		if n := ep.Stats().RDMAWrite.Load(); n != 1 {
			t.Fatalf("%d-element WriteV counted %d write verbs, want 1", elems, n)
		}
	}
}

func TestPostedReadsOneDoorbell(t *testing.T) {
	prof := clock.DefaultProfile()
	ep, clk := newEP(4096, prof)
	ep.SetPipeline(16)
	_ = ep.Write(0, []byte("abcdefgh"))
	base := clk.Now()

	bufs := make([][]byte, 8)
	toks := make([]Token, 8)
	for i := range bufs {
		bufs[i] = make([]byte, 1)
		toks[i] = ep.PostRead(uint64(i), bufs[i])
	}
	ep.Doorbell()
	for _, tok := range toks {
		if err := ep.Wait(tok); err != nil {
			t.Fatal(err)
		}
	}
	var got []byte
	for _, b := range bufs {
		got = append(got, b[0])
	}
	if string(got) != "abcdefgh" {
		t.Fatalf("posted reads returned %q", got)
	}
	elapsed := clk.Now() - base
	if elapsed > prof.ReadCost(8)+8*prof.WRIssue {
		t.Fatalf("8 posted reads cost %v, want about one round trip", elapsed)
	}
	st := ep.Stats().Snapshot()
	if st.RDMARead != 1 {
		t.Fatalf("8 posted reads paid %d read round trips, want 1", st.RDMARead)
	}
	if st.DoorbellGroups != 1 || st.PostedVerbs != 8 {
		t.Fatalf("doorbells=%d posted=%d, want 1/8", st.DoorbellGroups, st.PostedVerbs)
	}
	if st.AvgQueueDepth() < 2 {
		t.Fatalf("avg queue depth %.1f, want deep pipeline", st.AvgQueueDepth())
	}
}

// TestOverlapSavings pins the clock-overlap model: compute performed
// between doorbell and wait is subtracted from the charged wait, and
// recorded as overlap savings.
func TestOverlapSavings(t *testing.T) {
	prof := clock.DefaultProfile()
	ep, clk := newEP(4096, prof)
	ep.SetPipeline(4)

	tok := ep.PostWrite(0, make([]byte, 64))
	ep.Doorbell()
	groupCost := prof.WriteCost(64)
	compute := prof.RDMARTT / 2
	clk.Advance(compute) // the actor does useful work while the WR flies
	before := clk.Now()
	if err := ep.Wait(tok); err != nil {
		t.Fatal(err)
	}
	waited := clk.Now() - before
	if want := groupCost - compute; waited != want {
		t.Fatalf("wait charged %v, want remaining gap %v", waited, want)
	}
	if saved := ep.Stats().OverlapSavedNS.Load(); saved != int64(compute) {
		t.Fatalf("overlap saved %dns, want %d", saved, int64(compute))
	}
}

// TestFaultSurfacesAtCompletion: a dropped posted write must not fail at
// post or doorbell time — the error arrives when the completion retires,
// and the truncated prefix sits in the volatile window like the sync path.
func TestFaultSurfacesAtCompletion(t *testing.T) {
	ep, _ := newEP(256, clock.ZeroProfile())
	ep.SetPipeline(8)
	_ = ep.Write(0, bytes.Repeat([]byte{0xAA}, 128))
	ep.SetFault(func(op Op, off uint64, n int) Fault {
		if op == OpWrite {
			return Fault{Err: ErrInjected, Truncate: 32}
		}
		return Fault{}
	})
	tok := ep.PostWrite(0, bytes.Repeat([]byte{0xBB}, 128))
	ep.Doorbell() // no error surfaces here
	ep.SetFault(nil)
	if err := ep.Wait(tok); !errors.Is(err, ErrInjected) {
		t.Fatalf("completion must carry the injected fault, got %v", err)
	}
	if got := ep.t.dev.VolatileBytes(0, 128); got != 32 {
		t.Fatalf("volatile window %d bytes, want 32", got)
	}
	ep.t.dev.Crash(nil)
	buf := make([]byte, 128)
	_ = ep.Read(0, buf)
	if !bytes.Equal(buf, bytes.Repeat([]byte{0xAA}, 128)) {
		t.Fatal("unacknowledged posted write must not be durable")
	}
}

// TestGroupFlushAfterFailure: once one WR in a doorbell group fails, the
// rest are flushed with the same sentinel without executing.
func TestGroupFlushAfterFailure(t *testing.T) {
	ep, _ := newEP(256, clock.ZeroProfile())
	ep.SetPipeline(8)
	calls := 0
	ep.SetFault(func(op Op, off uint64, n int) Fault {
		calls++
		if calls == 1 {
			return Fault{Err: ErrInjected}
		}
		return Fault{}
	})
	t1 := ep.PostWrite(0, []byte{1})
	t2 := ep.PostWrite(8, []byte{2})
	ep.Doorbell()
	if calls != 1 {
		t.Fatalf("flushed WR consumed fault randomness: %d hook calls, want 1", calls)
	}
	if err := ep.Wait(t1); !errors.Is(err, ErrInjected) {
		t.Fatalf("first WR: %v", err)
	}
	if err := ep.Wait(t2); !errors.Is(err, ErrInjected) {
		t.Fatalf("flushed WR must inherit the group failure, got %v", err)
	}
	ep.SetFault(nil)
	buf := make([]byte, 1)
	_ = ep.Read(8, buf)
	if buf[0] != 0 {
		t.Fatal("flushed WR must not reach the target")
	}
}

func TestQueueDepthCap(t *testing.T) {
	ep, _ := newEP(4096, clock.ZeroProfile())
	ep.SetPipeline(4)
	for i := 0; i < 32; i++ {
		ep.PostWrite(uint64(i*8), []byte{byte(i)})
		if ep.Outstanding() > 4 {
			t.Fatalf("outstanding %d exceeds depth cap 4", ep.Outstanding())
		}
	}
	if err := ep.Drain(); err != nil {
		t.Fatal(err)
	}
	if ep.Outstanding() != 0 {
		t.Fatalf("drain left %d in flight", ep.Outstanding())
	}
	buf := make([]byte, 1)
	_ = ep.Read(31*8, buf)
	if buf[0] != 31 {
		t.Fatal("capped pipeline lost a write")
	}
}

func TestRetargetFlushesInflight(t *testing.T) {
	devA := nvm.NewDevice(64)
	devB := nvm.NewDevice(64)
	ep := Connect(NewTarget(devA), clock.NewVirtual(), &stats.Stats{}, clock.ZeroProfile())
	ep.SetPipeline(8)
	t1 := ep.PostWrite(0, []byte("AAAA"))
	ep.Doorbell()
	t2 := ep.PostWrite(8, []byte("CCCC")) // still in the send queue
	ep.Retarget(NewTarget(devB))
	if err := ep.Wait(t1); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("in-flight WR must flush with ErrDisconnected, got %v", err)
	}
	if err := ep.Wait(t2); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("queued WR must flush with ErrDisconnected, got %v", err)
	}
	if ep.Outstanding() != 0 {
		t.Fatalf("retarget left %d in flight", ep.Outstanding())
	}
	buf := make([]byte, 4)
	_ = devB.ReadAt(8, buf)
	if !bytes.Equal(buf, make([]byte, 4)) {
		t.Fatal("queued WR must not land on the new target")
	}
}

// TestSyncVerbFencesPostedWrites: a synchronous read issued after posted
// writes must observe them (program order at the device), even though
// their completions have not been waited on.
func TestSyncVerbFencesPostedWrites(t *testing.T) {
	ep, _ := newEP(256, clock.ZeroProfile())
	ep.SetPipeline(8)
	tok := ep.PostWrite(0, []byte("posted"))
	buf := make([]byte, 6)
	if err := ep.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "posted" {
		t.Fatalf("sync read after post saw %q", buf)
	}
	if err := ep.Wait(tok); err != nil {
		t.Fatal(err)
	}
}

// TestPollRetirementPreservesWAW is the write-after-write hazard property
// test: whatever interleaving of Post/Doorbell/Poll/Wait/sync verbs the
// caller uses, writes to overlapping offsets must apply in posted order.
// The final device image is compared against a shadow buffer updated
// sequentially at post time.
func TestPollRetirementPreservesWAW(t *testing.T) {
	const devSize = 512
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ep, clk := newEP(devSize, clock.DefaultProfile())
		depth := 1 + rng.Intn(8)
		ep.SetPipeline(depth)
		shadow := make([]byte, devSize)
		var outstanding []Token

		steps := 60 + rng.Intn(60)
		for i := 0; i < steps; i++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4: // post a write over a hot, overlapping range
				off := rng.Intn(devSize - 32)
				n := 1 + rng.Intn(32)
				data := make([]byte, n)
				for j := range data {
					data[j] = byte(rng.Intn(256))
				}
				if rng.Intn(4) == 0 { // sometimes as a vector WR
					mid := n / 2
					outstanding = append(outstanding, ep.PostWriteV([]WriteOp{
						{Off: uint64(off), Data: data[:mid]},
						{Off: uint64(off + mid), Data: data[mid:]},
					}))
				} else {
					outstanding = append(outstanding, ep.PostWrite(uint64(off), data))
				}
				copy(shadow[off:], data)
			case 5:
				ep.Doorbell()
			case 6:
				// Retire whatever is ready; retirement order must not matter.
				for _, c := range ep.Poll() {
					if c.Err != nil {
						t.Fatalf("seed %d: poll: %v", seed, c.Err)
					}
					for k, tok := range outstanding {
						if tok == c.Token {
							outstanding = append(outstanding[:k], outstanding[k+1:]...)
							break
						}
					}
				}
			case 7:
				if len(outstanding) > 0 { // wait a random (possibly newest) token
					k := rng.Intn(len(outstanding))
					if err := ep.Wait(outstanding[k]); err != nil {
						t.Fatalf("seed %d: wait: %v", seed, err)
					}
					outstanding = append(outstanding[:k], outstanding[k+1:]...)
				}
			case 8: // interleave a synchronous write
				off := rng.Intn(devSize - 8)
				data := []byte{byte(rng.Intn(256))}
				if err := ep.Write(uint64(off), data); err != nil {
					t.Fatalf("seed %d: sync write: %v", seed, err)
				}
				copy(shadow[off:], data)
			case 9:
				clk.Advance(time.Duration(rng.Intn(3000)) * time.Nanosecond)
			}
		}
		if err := ep.Drain(); err != nil {
			t.Fatalf("seed %d: drain: %v", seed, err)
		}
		got := make([]byte, devSize)
		if err := ep.ReadQuiet(0, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, shadow) {
			for j := range got {
				if got[j] != shadow[j] {
					t.Fatalf("seed %d depth %d: WAW violated at offset %d: got %#x want %#x",
						seed, depth, j, got[j], shadow[j])
				}
			}
		}
	}
}

// TestPipelineDeterminism: the same posted sequence must charge the same
// virtual time and produce the same counters on every run.
func TestPipelineDeterminism(t *testing.T) {
	run := func() (time.Duration, string) {
		ep, clk := newEP(4096, clock.DefaultProfile())
		ep.SetPipeline(8)
		for i := 0; i < 20; i++ {
			ep.PostWrite(uint64(i*64), bytes.Repeat([]byte{byte(i)}, 48))
			if i%5 == 4 {
				ep.Doorbell()
			}
		}
		if err := ep.Drain(); err != nil {
			t.Fatal(err)
		}
		return clk.Now(), fmt.Sprint(ep.Stats().Snapshot())
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 || s1 != s2 {
		t.Fatalf("pipeline run not deterministic:\n%v %s\n%v %s", t1, s1, t2, s2)
	}
}
