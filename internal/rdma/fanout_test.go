package rdma

import (
	"testing"
	"time"

	"asymnvm/internal/clock"
	"asymnvm/internal/nvm"
	"asymnvm/internal/stats"
)

// newFanoutEPs builds K endpoints to K independent targets, all charging
// the same virtual clock (one initiating actor) and the same Stats.
func newFanoutEPs(k, size int, prof clock.Profile) ([]*Endpoint, *clock.Virtual, *stats.Stats) {
	clk := clock.NewVirtual()
	st := &stats.Stats{}
	eps := make([]*Endpoint, k)
	for i := range eps {
		eps[i] = Connect(NewTarget(nvm.NewDevice(size)), clk, st, prof)
		eps[i].SetPipeline(8)
	}
	return eps, clk, st
}

// TestFanoutWindowChargesMaxNotSum pins the fan-out cost model: a K-backend
// scatter — one doorbell group per connection, all rung before any wait —
// costs roughly ONE round trip plus the serialized per-link bandwidth term
// (max-over-backends), not K round trips (sum-over-backends).
func TestFanoutWindowChargesMaxNotSum(t *testing.T) {
	const k = 4
	const payload = 4096
	prof := clock.DefaultProfile()

	// Serial baseline: the cost of one group, paid K times back to back.
	oneGroup := prof.WriteCost(payload)
	serial := time.Duration(k) * oneGroup

	eps, clk, st := newFanoutEPs(k, 1<<20, prof)
	win := BeginFanout(st, eps...)
	start := clk.Now()

	toks := make([]Token, k)
	data := make([]byte, payload)
	for i, ep := range eps {
		toks[i] = ep.PostWrite(0, data)
		ep.Doorbell()
	}
	for i, ep := range eps {
		if err := ep.Wait(toks[i]); err != nil {
			t.Fatal(err)
		}
	}
	win.End()
	elapsed := clk.Now() - start

	// Elapsed is one group cost plus the K post-issue charges: the waits on
	// connections 2..K find their groups already ready.
	issue := time.Duration(k) * prof.WRIssue
	want := oneGroup + issue
	if elapsed != want {
		t.Fatalf("K=%d fan-out window elapsed %v, want max-over-backends %v (one group %v + issue %v)", k, elapsed, want, oneGroup, issue)
	}
	if elapsed >= serial/2 {
		t.Fatalf("fan-out elapsed %v not clearly below serial sum %v", elapsed, serial)
	}

	if got := st.FanoutWindows.Load(); got != 1 {
		t.Fatalf("FanoutWindows = %d, want 1", got)
	}
	saved := time.Duration(st.FanoutSavedNS.Load())
	if want := serial - elapsed; saved != want {
		t.Fatalf("FanoutSavedNS = %v, want serial-elapsed = %v", saved, want)
	}
}

// TestFanoutWindowFaultSurfacing checks that completion-time fault
// surfacing keeps working per connection inside a window: a fault on one
// link fails exactly that link's WR, the others complete, and the window
// still closes with sane accounting.
func TestFanoutWindowFaultSurfacing(t *testing.T) {
	prof := clock.DefaultProfile()
	eps, _, st := newFanoutEPs(3, 1<<20, prof)
	eps[1].SetFault(func(op Op, off uint64, n int) Fault {
		return Fault{Err: ErrInjected}
	})

	win := BeginFanout(st, eps...)
	toks := make([]Token, len(eps))
	for i, ep := range eps {
		toks[i] = ep.PostWrite(0, []byte("payload"))
		ep.Doorbell()
	}
	for i, ep := range eps {
		err := ep.Wait(toks[i])
		if i == 1 && err == nil {
			t.Fatal("faulted connection's WR completed without error")
		}
		if i != 1 && err != nil {
			t.Fatalf("healthy connection %d failed: %v", i, err)
		}
	}
	win.End()
	if got := st.FanoutWindows.Load(); got != 1 {
		t.Fatalf("FanoutWindows = %d, want 1", got)
	}
}

// TestFanoutWindowNilAndEmpty pins the inert cases: a nil window may be
// ended, and double-End does not double-count.
func TestFanoutWindowNilAndEmpty(t *testing.T) {
	var w *FanoutWindow
	w.End() // must not panic

	if BeginFanout(&stats.Stats{}) != nil {
		t.Fatal("BeginFanout with no endpoints should return nil")
	}

	eps, _, st := newFanoutEPs(1, 4096, clock.ZeroProfile())
	win := BeginFanout(st, eps...)
	win.End()
	win.End()
	if got := st.FanoutWindows.Load(); got != 1 {
		t.Fatalf("double End counted %d windows, want 1", got)
	}
	if eps[0].win != nil {
		t.Fatal("endpoint still enrolled after End")
	}
}
