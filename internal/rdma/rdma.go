// Package rdma simulates the one-sided RDMA fabric AsymNVM runs over.
//
// A Target wraps one back-end node's NVM device and registers it for
// remote access; an Endpoint is a front-end node's queue pair to one
// target. Verbs execute directly against the target's memory — no code
// runs on the back-end, which is exactly the "passive back-end" property
// the paper's architecture is built on — while the full round-trip cost
// is charged to the initiating actor's virtual clock and counted in its
// stats.
//
// Supported verbs mirror what the paper uses: one-sided Read and Write
// (Write acknowledged from the persistence domain), 64-bit atomic
// CompareAndSwap / FetchAdd / Load / Store, and a doorbell-batched
// vector write (several writes posted together, paying one round trip).
package rdma

import (
	"errors"

	"asymnvm/internal/clock"
	"asymnvm/internal/nvm"
	"asymnvm/internal/stats"
)

// ErrInjected is returned by verbs failed through a FaultHook.
var ErrInjected = errors.New("rdma: injected fault")

// Op identifies a verb type for fault-injection hooks.
type Op int

// Verb kinds passed to FaultHook.
const (
	OpRead Op = iota
	OpWrite
	OpCAS
	OpFetchAdd
	OpLoad64
	OpStore64
)

// FaultHook intercepts a verb before it executes. Returning false fails
// the verb with ErrInjected after the wire has possibly been touched:
// for OpWrite, truncate reports how many bytes still reached the target
// (modelling a connection lost mid-transfer).
type FaultHook func(op Op, off uint64, n int) (ok bool, truncate int)

// Target registers a back-end node's NVM device for remote access.
type Target struct {
	dev *nvm.Device
}

// NewTarget registers dev.
func NewTarget(dev *nvm.Device) *Target { return &Target{dev: dev} }

// Device exposes the underlying device (used by the back-end's own local
// accessors and by tests).
func (t *Target) Device() *nvm.Device { return t.dev }

// Endpoint is one front-end's connection (queue pair) to one target.
// An Endpoint is owned by a single actor goroutine.
type Endpoint struct {
	t     *Target
	clk   clock.Clock
	st    *stats.Stats
	prof  clock.Profile
	fault FaultHook
}

// Connect creates an endpoint charging latency to clk and counting verbs
// into st. st may be nil, in which case a private sink is used.
func Connect(t *Target, clk clock.Clock, st *stats.Stats, prof clock.Profile) *Endpoint {
	if st == nil {
		st = &stats.Stats{}
	}
	return &Endpoint{t: t, clk: clk, st: st, prof: prof}
}

// SetFault installs (or clears, with nil) a fault-injection hook.
func (e *Endpoint) SetFault(h FaultHook) { e.fault = h }

// Stats returns the endpoint's counter sink.
func (e *Endpoint) Stats() *stats.Stats { return e.st }

// Clock returns the endpoint's virtual clock.
func (e *Endpoint) Clock() clock.Clock { return e.clk }

// Profile returns the latency model in use.
func (e *Endpoint) Profile() clock.Profile { return e.prof }

// Read performs a one-sided RDMA read of len(buf) bytes at off.
func (e *Endpoint) Read(off uint64, buf []byte) error {
	e.st.RDMARead.Add(1)
	e.st.BytesRead.Add(int64(len(buf)))
	e.clk.Advance(e.prof.ReadCost(len(buf)))
	if e.fault != nil {
		if ok, _ := e.fault(OpRead, off, len(buf)); !ok {
			return ErrInjected
		}
	}
	return e.t.dev.ReadAt(off, buf)
}

// Write performs a one-sided RDMA write that is acknowledged only after
// the data is in the target's persistence domain (the paper assumes
// RDMA writes with persistence semantics at the back-end).
func (e *Endpoint) Write(off uint64, data []byte) error {
	e.st.RDMAWrite.Add(1)
	e.st.BytesWrite.Add(int64(len(data)))
	e.clk.Advance(e.prof.WriteCost(len(data)))
	if e.fault != nil {
		if ok, trunc := e.fault(OpWrite, off, len(data)); !ok {
			// The connection died mid-transfer: a prefix may have hit
			// the device volatile window without being persisted.
			if trunc > 0 && trunc <= len(data) {
				_ = e.t.dev.WriteAt(off, data[:trunc])
			}
			return ErrInjected
		}
	}
	return e.t.dev.WritePersist(off, data)
}

// ReadQuiet reads without charging latency or counting a verb. It models
// the *repeat* iterations of a poll loop: the simulator charges the first
// probe of an episode normally, and refreshes via quiet reads so that
// single-core host scheduling does not inflate virtual time (a real
// back-end answers long before a front-end's second poll).
func (e *Endpoint) ReadQuiet(off uint64, buf []byte) error {
	return e.t.dev.ReadAt(off, buf)
}

// Load64Quiet is ReadQuiet for one 64-bit word.
func (e *Endpoint) Load64Quiet(off uint64) (uint64, error) {
	return e.t.dev.Load64(off)
}

// WriteOp is one element of a doorbell-batched vector write.
type WriteOp struct {
	Off  uint64
	Data []byte
}

// WriteV posts all ops with a single doorbell: one round trip is charged,
// plus the bandwidth term for the combined payload. All writes are
// persisted (acknowledged) together.
func (e *Endpoint) WriteV(ops []WriteOp) error {
	if len(ops) == 0 {
		return nil
	}
	total := 0
	for _, op := range ops {
		total += len(op.Data)
	}
	e.st.RDMAWrite.Add(1)
	e.st.BytesWrite.Add(int64(total))
	e.clk.Advance(e.prof.WriteCost(total))
	for i, op := range ops {
		if e.fault != nil {
			if ok, trunc := e.fault(OpWrite, op.Off, len(op.Data)); !ok {
				if trunc > 0 && trunc <= len(op.Data) {
					_ = e.t.dev.WriteAt(op.Off, op.Data[:trunc])
				}
				return ErrInjected
			}
		}
		var err error
		if i == len(ops)-1 {
			err = e.t.dev.WritePersist(op.Off, op.Data)
		} else {
			err = e.t.dev.WriteAt(op.Off, op.Data)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// CompareAndSwap executes an RDMA atomic compare-and-swap on the 8 bytes
// at off, returning the previous value and whether the swap happened.
func (e *Endpoint) CompareAndSwap(off uint64, old, new uint64) (uint64, bool, error) {
	e.st.RDMAAtomic.Add(1)
	e.clk.Advance(e.prof.RDMAAtomic)
	if e.fault != nil {
		if ok, _ := e.fault(OpCAS, off, 8); !ok {
			return 0, false, ErrInjected
		}
	}
	return e.t.dev.CompareAndSwap64(off, old, new)
}

// FetchAdd executes an RDMA atomic fetch-and-add, returning the previous value.
func (e *Endpoint) FetchAdd(off uint64, delta uint64) (uint64, error) {
	e.st.RDMAAtomic.Add(1)
	e.clk.Advance(e.prof.RDMAAtomic)
	if e.fault != nil {
		if ok, _ := e.fault(OpFetchAdd, off, 8); !ok {
			return 0, ErrInjected
		}
	}
	return e.t.dev.FetchAdd64(off, delta)
}

// Load64 atomically reads an 8-byte word (implemented as a small one-sided
// read on real NICs; charged as an atomic verb round trip).
func (e *Endpoint) Load64(off uint64) (uint64, error) {
	e.st.RDMAAtomic.Add(1)
	e.clk.Advance(e.prof.RDMAAtomic)
	if e.fault != nil {
		if ok, _ := e.fault(OpLoad64, off, 8); !ok {
			return 0, ErrInjected
		}
	}
	return e.t.dev.Load64(off)
}

// Store64 atomically writes an 8-byte word, durable on return.
func (e *Endpoint) Store64(off uint64, v uint64) error {
	e.st.RDMAAtomic.Add(1)
	e.clk.Advance(e.prof.RDMAAtomic)
	if e.fault != nil {
		if ok, _ := e.fault(OpStore64, off, 8); !ok {
			return ErrInjected
		}
	}
	return e.t.dev.Store64(off, v)
}
