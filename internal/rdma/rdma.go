// Package rdma simulates the one-sided RDMA fabric AsymNVM runs over.
//
// A Target wraps one back-end node's NVM device and registers it for
// remote access; an Endpoint is a front-end node's queue pair to one
// target. Verbs execute directly against the target's memory — no code
// runs on the back-end, which is exactly the "passive back-end" property
// the paper's architecture is built on — while the full round-trip cost
// is charged to the initiating actor's virtual clock and counted in its
// stats.
//
// Supported verbs mirror what the paper uses: one-sided Read and Write
// (Write acknowledged from the persistence domain), 64-bit atomic
// CompareAndSwap / FetchAdd / Load / Store, and a doorbell-batched
// vector write (several writes posted together, paying one round trip).
package rdma

import (
	"errors"
	"fmt"
	"time"

	"asymnvm/internal/clock"
	"asymnvm/internal/nvm"
	"asymnvm/internal/ring"
	"asymnvm/internal/stats"
	"asymnvm/internal/trace"
)

// ErrInjected is returned by verbs failed through a FaultHook. It models
// a transient fabric fault (lost completion, connection reset mid-verb):
// the verb did not take effect — except for a write's truncated prefix,
// which may sit in the target's volatile window — and retrying it is safe.
var ErrInjected = errors.New("rdma: injected fault")

// ErrDisconnected is returned when the endpoint's peer is unreachable
// (queue pair torn down, node dead or partitioned away for good). Unlike
// ErrInjected it is fatal for this connection: the caller must fail over
// to a replacement target (or give up), not retry in place.
var ErrDisconnected = errors.New("rdma: endpoint disconnected")

// Op identifies a verb type for fault-injection hooks.
type Op int

// Verb kinds passed to FaultHook.
const (
	OpRead Op = iota
	OpWrite
	OpCAS
	OpFetchAdd
	OpLoad64
	OpStore64
)

// String names the verb for fault-event logs and error context.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "Read"
	case OpWrite:
		return "Write"
	case OpCAS:
		return "CAS"
	case OpFetchAdd:
		return "FetchAdd"
	case OpLoad64:
		return "Load64"
	case OpStore64:
		return "Store64"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Fault is a hook's decision for one verb.
type Fault struct {
	// Err, when non-nil, fails the verb with this error (wrapped with
	// op/offset context by the endpoint). Use ErrInjected for transient
	// faults and ErrDisconnected for a dead peer.
	Err error
	// Truncate applies to failed OpWrite verbs only: the number of bytes
	// that still reached the target before the connection died. The
	// prefix lands in the device's volatile persistence window — visible
	// to reads, revertible by a power failure — never in the durable
	// image, since the verb was not acknowledged.
	Truncate int
	// Delay is extra latency charged to the initiator's virtual clock
	// before the verb's outcome (success or failure), modelling fabric
	// congestion.
	Delay time.Duration
}

// FaultHook intercepts a verb before it executes and decides its fate.
// A zero Fault lets the verb proceed normally.
type FaultHook func(op Op, off uint64, n int) Fault

// Target registers a back-end node's NVM device for remote access.
type Target struct {
	dev *nvm.Device
}

// NewTarget registers dev.
func NewTarget(dev *nvm.Device) *Target { return &Target{dev: dev} }

// Device exposes the underlying device (used by the back-end's own local
// accessors and by tests).
func (t *Target) Device() *nvm.Device { return t.dev }

// Endpoint is one front-end's connection (queue pair) to one target.
// An Endpoint is owned by a single actor goroutine.
type Endpoint struct {
	t     *Target
	clk   clock.Clock
	st    *stats.Stats
	prof  clock.Profile
	fault FaultHook
	tr    *trace.ActorTracer // nil when tracing is disabled

	// Posted-verb pipeline state (see pipeline.go). The send queue holds
	// WRs posted since the last doorbell; groups are rung doorbells whose
	// completions are not yet retired; cq holds retired completions not
	// yet consumed by Wait/Poll. The rings and freelists keep the hot
	// post→doorbell→retire path allocation-free in steady state: WR and
	// group headers recycle through wrFree/groupFree, a retired group's
	// wrs backing array swaps back in as the next send queue, and the
	// completion queue reuses its ring storage instead of re-growing a
	// drained slice.
	pipeDepth int
	nextToken Token
	sendQ     []*postedWR
	groups    ring.Buf[*doorbellGroup]
	inflight  int
	cq        ring.Buf[Completion]
	cqSkip    []Completion // Wait's stash of completions popped past (still in posted order)
	wrFree    []*postedWR
	groupFree []*doorbellGroup
	pollBuf   []Completion // Poll's reused return buffer

	// win, when non-nil, is the open cross-connection fan-out window this
	// endpoint is enrolled in (see fanout.go): retired group costs are
	// accumulated there so the window can report how much serial per-link
	// time the cross-backend overlap hid.
	win *FanoutWindow
}

// Connect creates an endpoint charging latency to clk and counting verbs
// into st. st may be nil, in which case a private sink is used.
func Connect(t *Target, clk clock.Clock, st *stats.Stats, prof clock.Profile) *Endpoint {
	if st == nil {
		st = &stats.Stats{}
	}
	return &Endpoint{t: t, clk: clk, st: st, prof: prof}
}

// SetFault installs (or clears, with nil) a fault-injection hook.
func (e *Endpoint) SetFault(h FaultHook) { e.fault = h }

// SetTracer installs (or clears, with nil) the owning actor's tracer.
// Verbs then record spans for every round trip, post, doorbell and
// retirement wait on the actor's virtual clock.
func (e *Endpoint) SetTracer(tr *trace.ActorTracer) { e.tr = tr }

// Retarget re-points the endpoint at a different target, modelling the
// queue-pair reconnect a front-end performs during failover to a promoted
// replica or a restarted back-end. The installed fault hook is kept: the
// hook schedules faults for this logical connection, whichever physical
// node currently backs it. Like the verbs, Retarget must be called from
// the endpoint's owning goroutine. In-flight posted WRs are flushed to
// the completion queue with ErrDisconnected — their acks died with the
// old queue pair.
func (e *Endpoint) Retarget(t *Target) {
	e.retargetFlush()
	e.t = t
}

// Stats returns the endpoint's counter sink.
func (e *Endpoint) Stats() *stats.Stats { return e.st }

// Clock returns the endpoint's virtual clock.
func (e *Endpoint) Clock() clock.Clock { return e.clk }

// Profile returns the latency model in use.
func (e *Endpoint) Profile() clock.Profile { return e.prof }

// faultCheck consults the hook for one verb. On failure it returns the
// write-truncation length and the hook's error wrapped with op/offset
// context (errors.Is against the sentinel still matches).
func (e *Endpoint) faultCheck(op Op, off uint64, n int) (int, error) {
	if e.fault == nil {
		return 0, nil
	}
	f := e.fault(op, off, n)
	if f.Delay > 0 {
		e.clk.Advance(f.Delay)
	}
	if f.Err == nil {
		return 0, nil
	}
	return f.Truncate, fmt.Errorf("%w: op=%v off=%d n=%d", f.Err, op, off, n)
}

// Read performs a one-sided RDMA read of len(buf) bytes at off.
func (e *Endpoint) Read(off uint64, buf []byte) error {
	e.fenceOrder()
	e.tr.BeginArg(trace.KindVerbRead, uint64(len(buf)))
	e.tr.CountVerb()
	e.st.RDMARead.Add(1)
	e.st.BytesRead.Add(int64(len(buf)))
	e.clk.Advance(e.prof.ReadCost(len(buf)))
	_, err := e.faultCheck(OpRead, off, len(buf))
	if err == nil {
		err = e.t.dev.ReadAt(off, buf)
	}
	e.tr.End()
	return err
}

// Write performs a one-sided RDMA write that is acknowledged only after
// the data is in the target's persistence domain (the paper assumes
// RDMA writes with persistence semantics at the back-end).
//
// When a fault hook kills the verb mid-transfer, the truncated prefix is
// applied with nvm.Device.WriteAt: it becomes visible but stays in the
// device's volatile persistence window (nvm.Device.VolatileBytes reports
// it) and is lost on power failure — the unacknowledged write is never
// durable, which is what the log-validation machinery relies on.
func (e *Endpoint) Write(off uint64, data []byte) error {
	e.fenceOrder()
	e.tr.BeginArg(trace.KindVerbWrite, uint64(len(data)))
	e.tr.CountVerb()
	e.st.RDMAWrite.Add(1)
	e.st.BytesWrite.Add(int64(len(data)))
	e.clk.Advance(e.prof.WriteCost(len(data)))
	trunc, err := e.faultCheck(OpWrite, off, len(data))
	if err != nil {
		if trunc > 0 && trunc <= len(data) {
			_ = e.t.dev.WriteAt(off, data[:trunc])
		}
	} else {
		err = e.t.dev.WritePersist(off, data)
	}
	e.tr.End()
	return err
}

// ReadQuiet reads without charging latency or counting a verb. It models
// the *repeat* iterations of a poll loop: the simulator charges the first
// probe of an episode normally, and refreshes via quiet reads so that
// single-core host scheduling does not inflate virtual time (a real
// back-end answers long before a front-end's second poll).
func (e *Endpoint) ReadQuiet(off uint64, buf []byte) error {
	return e.t.dev.ReadAt(off, buf)
}

// Load64Quiet is ReadQuiet for one 64-bit word.
func (e *Endpoint) Load64Quiet(off uint64) (uint64, error) {
	return e.t.dev.Load64(off)
}

// WriteOp is one element of a doorbell-batched vector write.
type WriteOp struct {
	Off  uint64
	Data []byte
}

// WriteV posts all ops with a single doorbell: one round trip is charged,
// plus the bandwidth term for the combined payload. All writes are
// persisted (acknowledged) together.
func (e *Endpoint) WriteV(ops []WriteOp) error {
	if len(ops) == 0 {
		return nil
	}
	e.fenceOrder()
	total := 0
	for _, op := range ops {
		total += len(op.Data)
	}
	e.tr.BeginArg(trace.KindVerbWrite, uint64(total))
	e.tr.CountVerb()
	e.st.RDMAWrite.Add(1)
	e.st.BytesWrite.Add(int64(total))
	e.clk.Advance(e.prof.WriteCost(total))
	err := e.writeVSegs(ops)
	e.tr.End()
	return err
}

// writeVSegs applies the segments of a synchronous vector write in order,
// consulting the fault hook per segment like Write does. Every segment is
// sealed individually: WritePersist durability is ranged, so the final
// segment's acknowledgement no longer implies anything about the earlier
// ones. Fault-truncated prefixes stay volatile (WriteAt) — an
// unacknowledged write may still be lost to a power failure.
func (e *Endpoint) writeVSegs(ops []WriteOp) error {
	for _, op := range ops {
		if trunc, err := e.faultCheck(OpWrite, op.Off, len(op.Data)); err != nil {
			if trunc > 0 && trunc <= len(op.Data) {
				_ = e.t.dev.WriteAt(op.Off, op.Data[:trunc])
			}
			return err
		}
		if err := e.t.dev.WritePersist(op.Off, op.Data); err != nil {
			return err
		}
	}
	return nil
}

// CompareAndSwap executes an RDMA atomic compare-and-swap on the 8 bytes
// at off, returning the previous value and whether the swap happened.
func (e *Endpoint) CompareAndSwap(off uint64, old, new uint64) (uint64, bool, error) {
	e.fenceOrder()
	e.tr.BeginArg(trace.KindVerbAtomic, off)
	e.tr.CountVerb()
	e.st.RDMAAtomic.Add(1)
	e.clk.Advance(e.prof.RDMAAtomic)
	var (
		prev    uint64
		swapped bool
	)
	_, err := e.faultCheck(OpCAS, off, 8)
	if err == nil {
		prev, swapped, err = e.t.dev.CompareAndSwap64(off, old, new)
	}
	e.tr.End()
	return prev, swapped, err
}

// FetchAdd executes an RDMA atomic fetch-and-add, returning the previous value.
func (e *Endpoint) FetchAdd(off uint64, delta uint64) (uint64, error) {
	e.fenceOrder()
	e.tr.BeginArg(trace.KindVerbAtomic, off)
	e.tr.CountVerb()
	e.st.RDMAAtomic.Add(1)
	e.clk.Advance(e.prof.RDMAAtomic)
	var prev uint64
	_, err := e.faultCheck(OpFetchAdd, off, 8)
	if err == nil {
		prev, err = e.t.dev.FetchAdd64(off, delta)
	}
	e.tr.End()
	return prev, err
}

// Load64 atomically reads an 8-byte word (implemented as a small one-sided
// read on real NICs; charged as an atomic verb round trip).
func (e *Endpoint) Load64(off uint64) (uint64, error) {
	e.fenceOrder()
	e.tr.BeginArg(trace.KindVerbAtomic, off)
	e.tr.CountVerb()
	e.st.RDMAAtomic.Add(1)
	e.clk.Advance(e.prof.RDMAAtomic)
	var v uint64
	_, err := e.faultCheck(OpLoad64, off, 8)
	if err == nil {
		v, err = e.t.dev.Load64(off)
	}
	e.tr.End()
	return v, err
}

// Store64 atomically writes an 8-byte word, durable on return.
func (e *Endpoint) Store64(off uint64, v uint64) error {
	e.fenceOrder()
	e.tr.BeginArg(trace.KindVerbAtomic, off)
	e.tr.CountVerb()
	e.st.RDMAAtomic.Add(1)
	e.clk.Advance(e.prof.RDMAAtomic)
	_, err := e.faultCheck(OpStore64, off, 8)
	if err == nil {
		err = e.t.dev.Store64(off, v)
	}
	e.tr.End()
	return err
}
