// Cross-connection fan-out windows.
//
// The posted-verb pipeline (pipeline.go) overlaps doorbell groups on ONE
// endpoint. A front-end talking to several back-ends holds one endpoint
// per connection, each an independent queue pair on an independent link:
// groups rung on different endpoints overlap for free under the virtual
// clock, because each Wait charges only the remaining gap to its group's
// ready time. A FanoutWindow makes that overlap observable: it brackets a
// scatter/gather episode in which the initiator rings doorbells on K
// connections before waiting on any of them, so the window's elapsed
// virtual time approaches max-over-backends while the sum of the retired
// group costs is the serial, link-by-link alternative.
//
// The window changes no costs and no ordering rules — per-endpoint WAW
// ordering, in-order completion queues, and completion-time fault
// surfacing are exactly the pipeline's. It only accounts: on End, the
// difference between the serial sum and the elapsed window time is
// credited to Stats.FanoutSavedNS and the window is counted in
// Stats.FanoutWindows.
package rdma

import (
	"time"

	"asymnvm/internal/clock"
	"asymnvm/internal/stats"
)

// FanoutWindow accumulates, over a bracketed scatter/gather episode, the
// serial cost of every doorbell group retired on the enrolled endpoints.
// All enrolled endpoints must charge the same virtual clock (one
// initiating actor); a nil window is valid and inert.
type FanoutWindow struct {
	clk    clock.Clock
	st     *stats.Stats
	start  time.Duration
	serial time.Duration
	eps    []*Endpoint
}

// BeginFanout opens a fan-out window over eps. Endpoints already enrolled
// in another open window are skipped (windows do not nest per endpoint).
// Returns nil when eps is empty; End on a nil window is a no-op.
func BeginFanout(st *stats.Stats, eps ...*Endpoint) *FanoutWindow {
	if len(eps) == 0 {
		return nil
	}
	w := &FanoutWindow{clk: eps[0].clk, st: st, start: eps[0].clk.Now()}
	for _, e := range eps {
		if e == nil || e.win != nil {
			continue
		}
		e.win = w
		w.eps = append(w.eps, e)
	}
	return w
}

// End closes the window: endpoints are released, the window is counted,
// and any positive difference between the serial per-link cost and the
// elapsed window time is credited as fan-out savings. Doorbell groups
// still in flight at End keep their normal pipeline accounting but are
// no longer attributed to the window.
func (w *FanoutWindow) End() {
	if w == nil || w.st == nil {
		return
	}
	for _, e := range w.eps {
		e.win = nil
	}
	w.eps = nil
	elapsed := w.clk.Now() - w.start
	if saved := w.serial - elapsed; saved > 0 {
		w.st.FanoutSavedNS.Add(int64(saved))
	}
	w.st.FanoutWindows.Add(1)
	w.st = nil
}
