package rdma

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"asymnvm/internal/clock"
	"asymnvm/internal/nvm"
	"asymnvm/internal/stats"
)

func newEP(size int, prof clock.Profile) (*Endpoint, *clock.Virtual) {
	dev := nvm.NewDevice(size)
	clk := clock.NewVirtual()
	return Connect(NewTarget(dev), clk, &stats.Stats{}, prof), clk
}

func TestReadWrite(t *testing.T) {
	ep, _ := newEP(1024, clock.ZeroProfile())
	if err := ep.Write(64, []byte("remote data")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 11)
	if err := ep.Read(64, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "remote data" {
		t.Fatalf("read %q", buf)
	}
	st := ep.Stats().Snapshot()
	if st.RDMARead != 1 || st.RDMAWrite != 1 {
		t.Fatalf("verb counters: %+v", st)
	}
	if st.BytesRead != 11 || st.BytesWrite != 11 {
		t.Fatalf("byte counters: %+v", st)
	}
}

func TestLatencyCharged(t *testing.T) {
	prof := clock.DefaultProfile()
	ep, clk := newEP(1024, prof)
	_ = ep.Write(0, make([]byte, 64))
	w := clk.Now()
	if w < prof.RDMARTT {
		t.Fatalf("write charged %v, want >= RTT %v", w, prof.RDMARTT)
	}
	_ = ep.Read(0, make([]byte, 64))
	if clk.Now()-w < prof.RDMARTT {
		t.Fatal("read must charge at least one RTT")
	}
}

func TestWriteIsDurable(t *testing.T) {
	ep, _ := newEP(256, clock.ZeroProfile())
	_ = ep.Write(0, []byte("ACKED"))
	ep.t.dev.Crash(nil)
	buf := make([]byte, 5)
	_ = ep.Read(0, buf)
	if string(buf) != "ACKED" {
		t.Fatal("acknowledged RDMA write must survive a power failure")
	}
}

func TestWriteVSingleRoundTrip(t *testing.T) {
	prof := clock.DefaultProfile()
	ep, clk := newEP(4096, prof)
	ops := []WriteOp{
		{Off: 0, Data: []byte("aaaa")},
		{Off: 100, Data: []byte("bbbb")},
		{Off: 200, Data: []byte("cccc")},
	}
	if err := ep.WriteV(ops); err != nil {
		t.Fatal(err)
	}
	if n := ep.Stats().RDMAWrite.Load(); n != 1 {
		t.Fatalf("WriteV must cost one doorbell, counted %d", n)
	}
	if clk.Now() > 2*prof.RDMARTT {
		t.Fatalf("WriteV charged %v, want about one RTT", clk.Now())
	}
	buf := make([]byte, 4)
	_ = ep.Read(200, buf)
	if string(buf) != "cccc" {
		t.Fatal("vector write content lost")
	}
}

func TestAtomics(t *testing.T) {
	ep, _ := newEP(64, clock.ZeroProfile())
	if err := ep.Store64(8, 5); err != nil {
		t.Fatal(err)
	}
	if v, _ := ep.Load64(8); v != 5 {
		t.Fatalf("Load64 = %d", v)
	}
	if _, ok, _ := ep.CompareAndSwap(8, 5, 6); !ok {
		t.Fatal("CAS should succeed")
	}
	if prev, _ := ep.FetchAdd(8, 10); prev != 6 {
		t.Fatalf("FetchAdd prev = %d", prev)
	}
	if v, _ := ep.Load64(8); v != 16 {
		t.Fatalf("final = %d", v)
	}
	if n := ep.Stats().RDMAAtomic.Load(); n != 5 {
		t.Fatalf("atomic verb count = %d, want 5", n)
	}
}

func TestFaultInjectionWrite(t *testing.T) {
	ep, _ := newEP(256, clock.ZeroProfile())
	_ = ep.Write(0, bytes.Repeat([]byte{0xAA}, 128)) // durable baseline
	ep.SetFault(func(op Op, off uint64, n int) Fault {
		if op == OpWrite {
			return Fault{Err: ErrInjected, Truncate: 64} // dies after 64 bytes
		}
		return Fault{}
	})
	err := ep.Write(0, bytes.Repeat([]byte{0xBB}, 128))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if !strings.Contains(err.Error(), "op=Write") || !strings.Contains(err.Error(), "off=0") {
		t.Fatalf("injected error must carry op/offset context, got %v", err)
	}
	ep.SetFault(nil)
	// The truncated prefix is visible but volatile; a crash reverts it.
	if got := ep.t.dev.VolatileBytes(0, 128); got != 64 {
		t.Fatalf("volatile window covers %d bytes of the write, want 64", got)
	}
	ep.t.dev.Crash(nil)
	buf := make([]byte, 128)
	_ = ep.Read(0, buf)
	if !bytes.Equal(buf, bytes.Repeat([]byte{0xAA}, 128)) {
		t.Fatal("unacknowledged partial write must not be durable")
	}
}

// TestTruncatedWriteNotDurable pins the mid-transfer truncation contract:
// the surviving prefix is readable before the crash (it reached NVM) but
// is gone after a power-fail restart, because the verb was never
// acknowledged from the persistence domain.
func TestTruncatedWriteNotDurable(t *testing.T) {
	ep, _ := newEP(256, clock.ZeroProfile())
	ep.SetFault(func(op Op, off uint64, n int) Fault {
		return Fault{Err: ErrInjected, Truncate: 32}
	})
	if err := ep.Write(0, bytes.Repeat([]byte{0xCC}, 64)); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	ep.SetFault(nil)
	buf := make([]byte, 64)
	_ = ep.Read(0, buf)
	if !bytes.Equal(buf[:32], bytes.Repeat([]byte{0xCC}, 32)) {
		t.Fatal("truncated prefix must be visible before the crash")
	}
	if ep.t.dev.VolatileBytes(0, 64) != 32 {
		t.Fatal("truncated prefix must sit in the volatile window")
	}
	ep.t.dev.Crash(nil) // power-fail restart
	_ = ep.Read(0, buf)
	if !bytes.Equal(buf, make([]byte, 64)) {
		t.Fatal("truncated write must not survive a crash-restart")
	}
	if ep.t.dev.VolatileBytes(0, 64) != 0 {
		t.Fatal("crash must clear the volatile window")
	}
}

func TestFaultInjectionRead(t *testing.T) {
	ep, _ := newEP(64, clock.ZeroProfile())
	ep.SetFault(func(Op, uint64, int) Fault { return Fault{Err: ErrInjected} })
	if err := ep.Read(0, make([]byte, 8)); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if _, _, err := ep.CompareAndSwap(0, 0, 1); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
}

func TestFaultDisconnectAndDelay(t *testing.T) {
	ep, clk := newEP(64, clock.ZeroProfile())
	ep.SetFault(func(Op, uint64, int) Fault { return Fault{Err: ErrDisconnected} })
	if err := ep.Store64(0, 1); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("want ErrDisconnected, got %v", err)
	}
	ep.SetFault(func(Op, uint64, int) Fault { return Fault{Delay: 5 * time.Microsecond} })
	before := clk.Now()
	if err := ep.Store64(0, 1); err != nil {
		t.Fatalf("delay fault must not fail the verb: %v", err)
	}
	if clk.Now()-before < 5*time.Microsecond {
		t.Fatal("delay fault must charge the virtual clock")
	}
}

func TestRetarget(t *testing.T) {
	devA := nvm.NewDevice(64)
	devB := nvm.NewDevice(64)
	ep := Connect(NewTarget(devA), clock.NewVirtual(), nil, clock.ZeroProfile())
	_ = ep.Write(0, []byte("AAAA"))
	ep.Retarget(NewTarget(devB))
	_ = ep.Write(0, []byte("BBBB"))
	buf := make([]byte, 4)
	_ = devB.ReadAt(0, buf)
	if string(buf) != "BBBB" {
		t.Fatal("post-retarget write must land on the new target")
	}
	_ = devA.ReadAt(0, buf)
	if string(buf) != "AAAA" {
		t.Fatal("retarget must not touch the old target")
	}
}

func TestNilStatsGetsSink(t *testing.T) {
	dev := nvm.NewDevice(64)
	ep := Connect(NewTarget(dev), clock.Zero, nil, clock.ZeroProfile())
	if ep.Stats() == nil {
		t.Fatal("endpoint must always have a stats sink")
	}
	_ = ep.Write(0, []byte{1})
}

func TestBandwidthTerm(t *testing.T) {
	prof := clock.DefaultProfile()
	ep, clk := newEP(1<<21, prof)
	_ = ep.Write(0, make([]byte, 8))
	small := clk.Now()
	_ = ep.Write(0, make([]byte, 1<<20))
	big := clk.Now() - small
	if big < small {
		t.Fatalf("1 MiB write (%v) must cost more than 8 B write (%v)", big, small)
	}
	if big < 100*time.Microsecond {
		t.Fatalf("1 MiB at 5 GB/s should be ≈200µs, got %v", big)
	}
}
