package cluster

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"asymnvm/internal/core"
	"asymnvm/internal/ds"
	"asymnvm/internal/fault"
	"asymnvm/internal/workload"
)

// TestClientDrivenFailover: the back-end dies permanently mid-workload;
// the writer's next verb faults fatally, the failover delegate promotes a
// mirror (the lease has expired, authorizing it), and the workload
// continues transparently. Everything written before and after the crash
// must be readable on the promoted node.
func TestClientDrivenFailover(t *testing.T) {
	cl := smallCluster(t, Config{Backends: 1, MirrorsPerBack: 2})
	plane := fault.NewPlane(11)
	cl.AttachFaultPlane(plane)
	fe, conns, err := cl.NewFrontend(1, core.ModeR())
	if err != nil {
		t.Fatal(err)
	}
	ht, err := ds.CreateHashTable(conns[0], "fo", dsOpts)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 20; k++ {
		if err := ht.Put(k, workload.Value(k, 32)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ht.Drain(); err != nil {
		t.Fatal(err)
	}

	cl.CrashBackend(0, true) // permanent: nobody restarts it

	for k := uint64(21); k <= 40; k++ {
		if err := ht.Put(k, workload.Value(k, 32)); err != nil {
			t.Fatalf("put %d across the crash must fail over transparently: %v", k, err)
		}
	}
	if err := ht.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := fe.Stats().Failovers.Load(); got != 1 {
		t.Fatalf("Failovers = %d, want 1", got)
	}
	if len(cl.Mirrors[0]) != 1 {
		t.Fatalf("%d mirrors left, want 1 (one promoted)", len(cl.Mirrors[0]))
	}

	// A fresh reader sees the full history on the promoted node.
	_, conns2, err := cl.NewFrontend(2, core.ModeR())
	if err != nil {
		t.Fatal(err)
	}
	rd, err := ds.OpenHashTable(conns2[0], "fo", false, dsOpts)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 40; k++ {
		v, ok, err := rd.Get(k)
		if err != nil || !ok || !bytes.Equal(v, workload.Value(k, 32)) {
			t.Fatalf("key %d lost across failover: ok=%v err=%v", k, ok, err)
		}
	}

	log := strings.Join(plane.EventLog(), "\n")
	if !strings.Contains(log, "crash backend0") || !strings.Contains(log, "promote backend0") {
		t.Fatalf("event log must record the crash and the promotion:\n%s", log)
	}
}

// TestPartitionAbsorbedByRetries: a partition window shorter than the
// attempt budget delays the verb but never surfaces, and does not
// trigger a failover.
func TestPartitionAbsorbedByRetries(t *testing.T) {
	cl := smallCluster(t, Config{Backends: 1})
	plane := fault.NewPlane(5)
	cl.AttachFaultPlane(plane)
	fe, conns, err := cl.NewFrontend(1, core.ModeR())
	if err != nil {
		t.Fatal(err)
	}
	ht, err := ds.CreateHashTable(conns[0], "part", dsOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ht.Put(1, []byte("pre")); err != nil {
		t.Fatal(err)
	}
	if err := ht.Drain(); err != nil {
		t.Fatal(err)
	}

	plane.Injector(InjectorName(1, 0)).Partition(3)
	if err := ht.Put(2, []byte("mid")); err != nil {
		t.Fatalf("3-verb partition within a 10-attempt budget must be absorbed: %v", err)
	}
	if err := ht.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := fe.Stats().VerbRetries.Load(); got < 3 {
		t.Fatalf("VerbRetries = %d, want >= 3", got)
	}
	if got := fe.Stats().Failovers.Load(); got != 0 {
		t.Fatalf("a partition must not fail over, got %d", got)
	}
	if v, ok, _ := ht.Get(2); !ok || string(v) != "mid" {
		t.Fatal("write issued during the partition lost")
	}
}

// TestFailoverRequiresExpiredLease: a front-end that merely lost its own
// connection must not steal the back-end's role while the keep-alive
// authority still holds its lease live (§7.2: only lease expiry declares
// a node crashed).
func TestFailoverRequiresExpiredLease(t *testing.T) {
	cl := smallCluster(t, Config{Backends: 1, MirrorsPerBack: 1})
	plane := fault.NewPlane(5)
	cl.AttachFaultPlane(plane)
	_, conns, err := cl.NewFrontend(1, core.ModeR())
	if err != nil {
		t.Fatal(err)
	}
	ht, err := ds.CreateHashTable(conns[0], "lease", dsOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ht.Put(1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := ht.Drain(); err != nil {
		t.Fatal(err)
	}

	inj := plane.Injector(InjectorName(1, 0))
	inj.Disconnect() // connection lost, but the back-end is fine
	err = ht.Put(2, []byte("b"))
	if !errors.Is(err, core.ErrBackendDown) {
		t.Fatalf("want ErrBackendDown while the lease is alive, got %v", err)
	}
	if !strings.Contains(err.Error(), "lease still alive") {
		t.Fatalf("refusal must cite the live lease: %v", err)
	}
	if len(cl.Mirrors[0]) != 1 {
		t.Fatal("no promotion may happen while the lease is alive")
	}

	inj.Reconnect()
	if err := ht.Put(2, []byte("b")); err != nil {
		t.Fatalf("put after reconnect: %v", err)
	}
	if err := ht.Drain(); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := ht.Get(2); !ok || string(v) != "b" {
		t.Fatal("post-reconnect write lost")
	}
}
