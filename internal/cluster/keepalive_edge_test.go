package cluster

import (
	"testing"
)

// TestLeaseRenewalAtExactTTL pins the expiry boundary: a lease with TTL n
// is alive through tick n (expiry is strictly now-lastSeen > ttl), and a
// renewal landing exactly at the boundary restarts the full window — the
// race the paper's lease protocol must win for a healthy-but-slow node.
func TestLeaseRenewalAtExactTTL(t *testing.T) {
	ka := NewKeepAlive()
	if err := ka.Register("bk", RoleBackend, 3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ka.Tick()
	}
	if !ka.Alive("bk") {
		t.Fatal("lease must survive exactly ttl ticks without renewal")
	}
	if err := ka.Renew("bk"); err != nil { // renewal racing expiry, at the boundary
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ka.Tick()
	}
	if !ka.Alive("bk") {
		t.Fatal("boundary renewal must restart the full ttl window")
	}
	ka.Tick() // ttl+1 ticks since the renewal
	if ka.Alive("bk") {
		t.Fatal("lease must expire one tick past the ttl")
	}
}

// TestRejoinAfterCrash: a member declared crashed can come back two ways
// — re-registering under its old name (a rebooted process) fires
// EventJoined, while a late renewal from the same incarnation fires
// EventRecovered. Both must leave the lease alive.
func TestRejoinAfterCrash(t *testing.T) {
	ka := NewKeepAlive()
	ch := ka.Watch()
	if err := ka.Register("fe", RoleFrontend, 1); err != nil {
		t.Fatal(err)
	}
	if e := <-ch; e.Kind != EventJoined {
		t.Fatalf("want join, got %+v", e)
	}
	ka.Expire("fe")
	if e := <-ch; e.Kind != EventCrashed || e.Name != "fe" {
		t.Fatalf("want crash, got %+v", e)
	}
	// Reboot path: registering over a crashed lease is allowed.
	if err := ka.Register("fe", RoleFrontend, 1); err != nil {
		t.Fatalf("re-register after crash must succeed: %v", err)
	}
	if e := <-ch; e.Kind != EventJoined {
		t.Fatalf("rejoin must notify as a join, got %+v", e)
	}
	if !ka.Alive("fe") {
		t.Fatal("rejoined member must be alive")
	}
	// Slow-node path: a renewal arriving after the crash verdict revives.
	ka.Expire("fe")
	<-ch // crashed
	if err := ka.Renew("fe"); err != nil {
		t.Fatal(err)
	}
	if e := <-ch; e.Kind != EventRecovered || e.Name != "fe" {
		t.Fatalf("late renewal must notify as recovery, got %+v", e)
	}
	if !ka.Alive("fe") {
		t.Fatal("recovered member must be alive")
	}
}

// TestWatcherNotificationOrdering: watchers observe membership changes in
// the order the service decided them, and a late subscriber sees only
// events after its subscription (no replay).
func TestWatcherNotificationOrdering(t *testing.T) {
	ka := NewKeepAlive()
	early := ka.Watch()
	_ = ka.Register("a", RoleBackend, 2)
	_ = ka.Register("b", RoleMirror, 2)
	ka.Expire("a")
	_ = ka.Renew("a")
	late := ka.Watch()
	ka.Expire("b")

	want := []Event{
		{Kind: EventJoined, Name: "a", Role: RoleBackend},
		{Kind: EventJoined, Name: "b", Role: RoleMirror},
		{Kind: EventCrashed, Name: "a", Role: RoleBackend},
		{Kind: EventRecovered, Name: "a", Role: RoleBackend},
		{Kind: EventCrashed, Name: "b", Role: RoleMirror},
	}
	for i, w := range want {
		if got := <-early; got != w {
			t.Fatalf("event %d: got %+v, want %+v", i, got, w)
		}
	}
	if got := <-late; got != (Event{Kind: EventCrashed, Name: "b", Role: RoleMirror}) {
		t.Fatalf("late watcher must only see post-subscription events, got %+v", got)
	}
	select {
	case e := <-late:
		t.Fatalf("late watcher must not replay history, got %+v", e)
	default:
	}
}
