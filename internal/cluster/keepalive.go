// Package cluster assembles AsymNVM deployments — front-end nodes,
// back-end nodes, mirror nodes — and implements the consensus-based
// failure handling of §7.2: a lease-based keepAlive service (the paper
// runs ZooKeeper; this is the same protocol role in-process), and the
// recovery orchestration for the five crash cases.
package cluster

import (
	"fmt"
	"sync"
)

// Role tags a cluster member.
type Role int

// Member roles.
const (
	RoleFrontend Role = iota
	RoleBackend
	RoleMirror
)

// EventKind distinguishes keepAlive notifications.
type EventKind int

// Event kinds.
const (
	EventCrashed EventKind = iota
	EventJoined
	EventRecovered
)

// Event is one membership notification.
type Event struct {
	Kind EventKind
	Name string
	Role Role
}

// lease tracks one member's liveness. Leases are counted in ticks of the
// service's logical clock; a member that fails to renew within its TTL is
// declared crashed and every watcher is notified — the paper's "if the
// lease expires and the node cannot renew its lease, the node is
// considered to be crashed".
type lease struct {
	role     Role
	ttl      int
	lastSeen int
	alive    bool
}

// KeepAlive is the failure-detection service. The replicated ZooKeeper
// ensemble of the paper is collapsed into one in-process instance; the
// protocol seen by members (register, renew, watch) is the same.
type KeepAlive struct {
	mu     sync.Mutex
	now    int
	leases map[string]*lease
	subs   []chan Event
}

// NewKeepAlive creates the service.
func NewKeepAlive() *KeepAlive {
	return &KeepAlive{leases: make(map[string]*lease)}
}

// Register adds a member with a TTL in ticks.
func (k *KeepAlive) Register(name string, role Role, ttl int) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if ttl <= 0 {
		return fmt.Errorf("cluster: non-positive ttl %d", ttl)
	}
	if l, ok := k.leases[name]; ok && l.alive {
		return fmt.Errorf("cluster: %q already registered", name)
	}
	k.leases[name] = &lease{role: role, ttl: ttl, lastSeen: k.now, alive: true}
	k.notify(Event{Kind: EventJoined, Name: name, Role: role})
	return nil
}

// Renew refreshes a member's lease. Renewing a crashed member revives it
// (a rebooted front-end re-registering under its old name).
func (k *KeepAlive) Renew(name string) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	l, ok := k.leases[name]
	if !ok {
		return fmt.Errorf("cluster: %q not registered", name)
	}
	l.lastSeen = k.now
	if !l.alive {
		l.alive = true
		k.notify(Event{Kind: EventRecovered, Name: name, Role: l.role})
	}
	return nil
}

// Tick advances the logical clock and expires overdue leases.
func (k *KeepAlive) Tick() {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.now++
	for name, l := range k.leases {
		if l.alive && k.now-l.lastSeen > l.ttl {
			l.alive = false
			k.notify(Event{Kind: EventCrashed, Name: name, Role: l.role})
		}
	}
}

// Expire force-expires a member (test hook standing in for elapsed time).
func (k *KeepAlive) Expire(name string) {
	k.mu.Lock()
	defer k.mu.Unlock()
	l, ok := k.leases[name]
	if ok && l.alive {
		l.alive = false
		k.notify(Event{Kind: EventCrashed, Name: name, Role: l.role})
	}
}

// Alive reports a member's liveness.
func (k *KeepAlive) Alive(name string) bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	l, ok := k.leases[name]
	return ok && l.alive
}

// Watch subscribes to membership events; the channel is buffered and
// never closed.
func (k *KeepAlive) Watch() <-chan Event {
	k.mu.Lock()
	defer k.mu.Unlock()
	ch := make(chan Event, 64)
	k.subs = append(k.subs, ch)
	return ch
}

// notify must run with the mutex held; drops events on full subscribers
// rather than blocking the service.
func (k *KeepAlive) notify(e Event) {
	for _, ch := range k.subs {
		select {
		case ch <- e:
		default:
		}
	}
}

// AliveCount reports how many members of a role hold live leases.
func (k *KeepAlive) AliveCount(role Role) int {
	k.mu.Lock()
	defer k.mu.Unlock()
	n := 0
	for _, l := range k.leases {
		if l.alive && l.role == role {
			n++
		}
	}
	return n
}
