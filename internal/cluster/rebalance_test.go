package cluster

import (
	"bytes"
	"testing"

	"asymnvm/internal/core"
	"asymnvm/internal/ds"
	"asymnvm/internal/workload"
)

// Consistent hashing's contract: adding a member moves partitions only
// TO the new member (nothing shuffles between survivors), and removing
// it restores the previous placement exactly.
func TestRingConsistentPlacement(t *testing.T) {
	const parts = 128
	r := NewRing(64)
	r.Add(0)
	r.Add(1)
	v2 := r.Version()
	before := make([]int, parts)
	for pi := range before {
		before[pi] = r.Owner(uint64(pi))
		if before[pi] != 0 && before[pi] != 1 {
			t.Fatalf("partition %d owned by non-member %d", pi, before[pi])
		}
	}

	r.Add(2)
	if r.Version() <= v2 {
		t.Fatal("membership change must bump the ring version")
	}
	moved := 0
	for pi := range before {
		now := r.Owner(uint64(pi))
		if now != before[pi] {
			if now != 2 {
				t.Fatalf("partition %d shuffled between survivors: %d -> %d", pi, before[pi], now)
			}
			moved++
		}
	}
	if moved == 0 || moved == parts {
		t.Fatalf("adding a member moved %d/%d partitions; want a proper subset", moved, parts)
	}

	r.Remove(2)
	for pi := range before {
		if now := r.Owner(uint64(pi)); now != before[pi] {
			t.Fatalf("partition %d did not return home after drain: %d != %d", pi, now, before[pi])
		}
	}
}

// Draining a back-end out of the ring and executing the planned moves
// leaves every partition owned by a surviving member with all data
// intact, and a fresh opener routes by the new map.
func TestRebalanceDrainsBackend(t *testing.T) {
	cl := smallCluster(t, Config{Backends: 3})
	_, conns, err := cl.NewFrontend(1, core.ModeR())
	if err != nil {
		t.Fatal(err)
	}
	const parts = 6
	p, err := ds.CreateElastic(conns, ds.KindHashTable, "elastic", parts, dsOpts)
	if err != nil {
		t.Fatal(err)
	}
	oracle := make(map[uint64][]byte)
	for k := uint64(1); k <= 200; k++ {
		v := workload.Value(k, 24)
		if err := p.Put(k, v); err != nil {
			t.Fatal(err)
		}
		oracle[k] = v
	}
	if err := p.DrainAll(); err != nil {
		t.Fatal(err)
	}

	// Drain back-end 2: the ring drops the member, the planner emits the
	// moves, Rebalance executes each one.
	ring := NewRing(32)
	for i := range conns {
		ring.Add(i)
	}
	ring.Remove(2)
	// Force the current placement into the plan's "From" view: partitions
	// whose owner already matches the shrunk ring stay put.
	moves := PlanMoves(p, ring)
	for _, mv := range moves {
		if mv.To == 2 {
			t.Fatalf("planner moved partition %d TO the drained member", mv.Part)
		}
		n, err := Rebalance(p, mv.Part, conns[mv.To], RebalanceHooks{})
		if err != nil {
			t.Fatalf("rebalance part %d -> %d: %v", mv.Part, mv.To, err)
		}
		if n == 0 {
			t.Fatalf("rebalance part %d streamed zero ops", mv.Part)
		}
	}
	if len(PlanMoves(p, ring)) != 0 {
		t.Fatal("plan not empty after executing every move")
	}
	for pi := 0; pi < parts; pi++ {
		if p.Owner(pi) == 2 {
			t.Fatalf("partition %d still owned by the drained back-end", pi)
		}
	}
	for k, want := range oracle {
		v, ok, err := p.Get(k)
		if err != nil || !ok || !bytes.Equal(v, want) {
			t.Fatalf("key %d lost in rebalance: ok=%v err=%v", k, ok, err)
		}
	}

	// A fresh front-end opens by the persisted versioned map alone.
	_, conns2, err := cl.NewFrontend(2, core.ModeR())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ds.OpenPartitioned(conns2, "elastic", false, dsOpts)
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range oracle {
		v, ok, err := p2.Get(k)
		if err != nil || !ok || !bytes.Equal(v, want) {
			t.Fatalf("fresh opener: key %d: ok=%v err=%v", k, ok, err)
		}
	}
}

// A hook failure before cutover aborts the handoff: the source stays
// the sole owner, data intact, and a retry completes.
func TestRebalanceAbortsOnHookError(t *testing.T) {
	cl := smallCluster(t, Config{Backends: 2})
	_, conns, err := cl.NewFrontend(1, core.ModeR())
	if err != nil {
		t.Fatal(err)
	}
	p, err := ds.CreateElastic(conns, ds.KindHashTable, "hooked", 2, dsOpts)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 60; k++ {
		if err := p.Put(k, workload.Value(k, 16)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.DrainAll(); err != nil {
		t.Fatal(err)
	}
	pi := 0
	if p.Owner(0) == 1 {
		pi = 1
	}
	boom := &hookError{}
	if _, err := Rebalance(p, pi, conns[1], RebalanceHooks{
		AfterStream: func(m *ds.Migration, ops int) error { return boom },
	}); err == nil {
		t.Fatal("hook error must fail the rebalance")
	}
	if p.Migrating() != -1 {
		t.Fatal("aborted rebalance left a migration in flight")
	}
	if p.Owner(pi) != pi%2 {
		t.Fatalf("aborted rebalance changed ownership of partition %d", pi)
	}
	if _, err := Rebalance(p, pi, conns[1], RebalanceHooks{}); err != nil {
		t.Fatalf("retry after abort: %v", err)
	}
	if p.Owner(pi) != 1 {
		t.Fatal("retry did not move the partition")
	}
	for k := uint64(1); k <= 60; k++ {
		v, ok, err := p.Get(k)
		if err != nil || !ok || !bytes.Equal(v, workload.Value(k, 16)) {
			t.Fatalf("key %d lost across abort+retry: ok=%v err=%v", k, ok, err)
		}
	}
}

type hookError struct{}

func (*hookError) Error() string { return "injected hook failure" }

// Regression for the stale-owner bug: after RehomeArchive moves a
// slot's archive stream, RestartBackend must re-attach it at its
// CURRENT home (the archiveHome mapping), not the open-time slot
// identity. A restarted old home must not re-adopt the stream, and a
// restarted new home must keep feeding it.
func TestRestartReattachesRehomedArchive(t *testing.T) {
	cl := smallCluster(t, Config{Backends: 2, ArchivePerBack: true})
	_, conns, err := cl.NewFrontend(1, core.ModeR())
	if err != nil {
		t.Fatal(err)
	}
	ht, err := ds.CreateHashTable(conns[0], "pre", dsOpts)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 20; k++ {
		if err := ht.Put(k, workload.Value(k, 16)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ht.Close(); err != nil {
		t.Fatal(err)
	}

	// Model the structure's history having migrated off slot 0: retire
	// slot 1's own archive and re-home slot 0's stream to slot 1. (The
	// white-box retirement stands in for a deployment where only slot 0
	// archived; Config wires archives all-or-nothing.)
	cl.Backends[1].RemoveMirror(cl.Archives[1])
	cl.archiveHome[1] = -1
	if err := cl.RehomeArchive(0, 1); err != nil {
		t.Fatal(err)
	}
	arch := cl.Archives[0]
	ops0, err := arch.Ops()
	if err != nil {
		t.Fatal(err)
	}
	base := len(ops0)
	if base == 0 {
		t.Fatal("archive captured nothing before the re-home")
	}

	// Restart the OLD home. With the identity lookup it would re-adopt
	// the stream; ops written on slot 0 afterwards must NOT be archived.
	if _, _, err := cl.RestartBackend(0, false); err != nil {
		t.Fatal(err)
	}
	_, connsA, err := cl.NewFrontend(2, core.ModeR())
	if err != nil {
		t.Fatal(err)
	}
	post0, err := ds.CreateHashTable(connsA[0], "post0", dsOpts)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 10; k++ {
		if err := post0.Put(k, workload.Value(k, 8)); err != nil {
			t.Fatal(err)
		}
	}
	if err := post0.Drain(); err != nil {
		t.Fatal(err)
	}
	ops1, err := arch.Ops()
	if err != nil {
		t.Fatal(err)
	}
	if len(ops1) != base {
		t.Fatalf("restarted old home leaked %d ops into the re-homed archive", len(ops1)-base)
	}

	// Restart the NEW home; ops written on slot 1 afterwards MUST land
	// in the stream it now owns.
	if _, _, err := cl.RestartBackend(1, false); err != nil {
		t.Fatal(err)
	}
	_, connsB, err := cl.NewFrontend(3, core.ModeR())
	if err != nil {
		t.Fatal(err)
	}
	// Pad slot 0 of back-end 1's naming space first: the archive stream
	// dedups frames per slot by op-log offset, and "pre" already archived
	// a slot-0 history from the old home, so the observed structure must
	// land on a distinct slot.
	if _, err := ds.CreateHashTable(connsB[1], "pad1", dsOpts); err != nil {
		t.Fatal(err)
	}
	post1, err := ds.CreateHashTable(connsB[1], "post1", dsOpts)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 10; k++ {
		if err := post1.Put(k, workload.Value(k, 8)); err != nil {
			t.Fatal(err)
		}
	}
	if err := post1.Drain(); err != nil {
		t.Fatal(err)
	}
	ops2, err := arch.Ops()
	if err != nil {
		t.Fatal(err)
	}
	if len(ops2) <= base {
		t.Fatal("restarted new home stopped feeding the re-homed archive")
	}
}

// The ring's membership edges: vnode default, idempotent add/remove,
// sorted member listing, and the empty-ring sentinel.
func TestRingMembershipEdges(t *testing.T) {
	r := NewRing(0) // <= 0 falls back to the 16-vnode default
	if r.Owner(7) != -1 {
		t.Fatal("empty ring must report owner -1")
	}
	if m := r.Members(); len(m) != 0 {
		t.Fatalf("empty ring lists members %v", m)
	}
	r.Add(3)
	r.Add(1)
	v := r.Version()
	r.Add(3) // duplicate: no-op, no version bump
	r.Remove(9) // non-member: no-op, no version bump
	if r.Version() != v {
		t.Fatal("no-op membership changes bumped the version")
	}
	if m := r.Members(); len(m) != 2 || m[0] != 1 || m[1] != 3 {
		t.Fatalf("members not sorted ascending: %v", m)
	}
	if len(r.points) != 2*16 {
		t.Fatalf("vnode default not applied: %d points", len(r.points))
	}
	if own := r.Owner(7); own != 1 && own != 3 {
		t.Fatalf("partition owned by non-member %d", own)
	}
	// An empty plan against a structure-free diff is exercised in the
	// drain test; here pin only that PlanMoves skips an empty ring.
}

// RehomeArchive's refusal cases: bad slots, self-move, a source with no
// archive, and a destination that already owns one.
func TestRehomeArchiveRefusals(t *testing.T) {
	cl := smallCluster(t, Config{Backends: 2, ArchivePerBack: true})
	if err := cl.RehomeArchive(-1, 1); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if err := cl.RehomeArchive(0, 5); err == nil {
		t.Fatal("out-of-range destination accepted")
	}
	if err := cl.RehomeArchive(1, 1); err != nil {
		t.Fatalf("self re-home must be a no-op, got %v", err)
	}
	// Both slots own an archive: destination occupied.
	if err := cl.RehomeArchive(0, 1); err == nil {
		t.Fatal("occupied destination accepted")
	}
	// Retire slot 0's archive; it then has nothing to re-home.
	cl.Backends[0].RemoveMirror(cl.Archives[0])
	cl.archiveHome[0] = -1
	if err := cl.RehomeArchive(0, 1); err == nil {
		t.Fatal("archive-less source accepted")
	}
}
