package cluster

import (
	"fmt"
	"sync"
	"testing"

	"asymnvm/internal/core"
	"asymnvm/internal/ds"
	"asymnvm/internal/trace"
)

// TestConcurrentStatsAndTraceReads is the race audit for the metrics
// plane: several writer front-ends drive structures (spans and phase
// histograms recording on the hot path, the back-end replayer tracing
// concurrently) while observer goroutines continuously take stats
// snapshots, phase-histogram snapshots and full trace exports — exactly
// what a live /metrics endpoint does mid-run. Run under -race, any
// unsynchronized read in the observability plane trips here.
func TestConcurrentStatsAndTraceReads(t *testing.T) {
	tr := trace.New()
	cfg := DefaultConfig()
	cfg.Tracer = tr
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	const writers = 3
	opts := ds.Options{
		Buckets: 1 << 8,
		Create:  core.CreateOptions{MemLogSize: 8 << 20, OpLogSize: 2 << 20},
	}
	fes := make([]*core.Frontend, writers)
	tables := make([]*ds.HashTable, writers)
	for w := 0; w < writers; w++ {
		fe, conns, err := cl.NewFrontend(uint16(1+w), core.ModeRCB(1<<20, 8).WithPipeline(8))
		if err != nil {
			t.Fatal(err)
		}
		ht, err := ds.CreateHashTable(conns[0], fmt.Sprintf("race%d", w), opts)
		if err != nil {
			t.Fatal(err)
		}
		fes[w] = fe
		tables[w] = ht
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(ht *ds.HashTable) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				k := uint64(i%64 + 1)
				if err := ht.Put(k, []byte{byte(i), byte(k)}); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if _, _, err := ht.Get(k); err != nil {
					t.Errorf("get: %v", err)
					return
				}
			}
			if err := ht.Drain(); err != nil {
				t.Errorf("drain: %v", err)
			}
		}(tables[w])
	}

	var obs sync.WaitGroup
	for r := 0; r < 2; r++ {
		obs.Add(1)
		go func() {
			defer obs.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, fe := range fes {
					snap := fe.Stats().Snapshot()
					_ = snap.String()
					_ = fe.Stats().PhaseSnapshots()
				}
				_ = tr.ChromeJSON()
				_ = tr.FlameSummary()
				for _, a := range tr.Actors() {
					_ = a.Elapsed()
					_ = a.SelfNS()
					_ = a.OverlapNS()
				}
			}
		}()
	}

	wg.Wait()
	close(stop)
	obs.Wait()
}
