package cluster

import (
	"bytes"
	"testing"

	"asymnvm/internal/clock"
	"asymnvm/internal/core"
	"asymnvm/internal/ds"
	"asymnvm/internal/logrec"
)

var zprof = clock.ZeroProfile()

var dsOpts = ds.Options{
	Create:  core.CreateOptions{MemLogSize: 1 << 20, OpLogSize: 512 << 10},
	Buckets: 256,
}

func smallCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	cfg.Profile = zprof
	if cfg.DeviceBytes == 0 {
		cfg.DeviceBytes = 64 << 20
	}
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Stop)
	return cl
}

func TestKeepAliveLeases(t *testing.T) {
	ka := NewKeepAlive()
	events := ka.Watch()
	if err := ka.Register("fe1", RoleFrontend, 2); err != nil {
		t.Fatal(err)
	}
	if e := <-events; e.Kind != EventJoined || e.Name != "fe1" {
		t.Fatalf("unexpected event %+v", e)
	}
	ka.Tick()
	_ = ka.Renew("fe1")
	ka.Tick()
	ka.Tick()
	if ka.Alive("fe1") {
		// lastSeen=1, now=3, ttl=2 → 3-1 > 2 is false… renew kept it.
	}
	ka.Tick() // now=4, 4-1 > 2 → expire
	if ka.Alive("fe1") {
		t.Fatal("lease should have expired")
	}
	if e := <-events; e.Kind != EventCrashed {
		t.Fatalf("expected crash event, got %+v", e)
	}
	// Reboot: renew revives.
	if err := ka.Renew("fe1"); err != nil {
		t.Fatal(err)
	}
	if !ka.Alive("fe1") {
		t.Fatal("renew must revive")
	}
	if e := <-events; e.Kind != EventRecovered {
		t.Fatalf("expected recover event, got %+v", e)
	}
}

func TestKeepAliveDuplicateAndCounts(t *testing.T) {
	ka := NewKeepAlive()
	_ = ka.Register("b0", RoleBackend, 5)
	_ = ka.Register("m0", RoleMirror, 5)
	_ = ka.Register("m1", RoleMirror, 5)
	if err := ka.Register("b0", RoleBackend, 5); err == nil {
		t.Fatal("duplicate register must fail")
	}
	if n := ka.AliveCount(RoleMirror); n != 2 {
		t.Fatalf("mirror count %d", n)
	}
	ka.Expire("m0")
	if n := ka.AliveCount(RoleMirror); n != 1 {
		t.Fatalf("mirror count after expiry %d", n)
	}
	if err := ka.Renew("ghost"); err == nil {
		t.Fatal("renew of unknown member must fail")
	}
}

func TestClusterBackendTransientRestart(t *testing.T) {
	cl := smallCluster(t, Config{Backends: 1})
	fe, conns, err := cl.NewFrontend(1, core.ModeR())
	if err != nil {
		t.Fatal(err)
	}
	_ = fe
	ht, err := ds.CreateHashTable(conns[0], "ht", dsOpts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		_ = ht.Put(uint64(i), []byte{byte(i)})
	}
	if err := ht.Close(); err != nil {
		t.Fatal(err)
	}

	// Case 3: kill the back-end with a power failure and restart it on
	// the same device.
	_, slots, err := cl.RestartBackend(0, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) != 1 || slots[0].Name != "ht" {
		t.Fatalf("recovered slots: %+v", slots)
	}
	fe2, conns2, err := cl.NewFrontend(2, core.ModeR())
	if err != nil {
		t.Fatal(err)
	}
	_ = fe2
	ht2, err := ds.OpenHashTable(conns2[0], "ht", false, dsOpts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		v, ok, err := ht2.Get(uint64(i))
		if err != nil || !ok || v[0] != byte(i) {
			t.Fatalf("key %d lost across restart: ok=%v err=%v", i, ok, err)
		}
	}
}

func TestClusterMirrorPromotion(t *testing.T) {
	cl := smallCluster(t, Config{Backends: 1, MirrorsPerBack: 2})
	_, conns, err := cl.NewFrontend(1, core.ModeR())
	if err != nil {
		t.Fatal(err)
	}
	bst, err := ds.CreateBST(conns[0], "tree", dsOpts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 30; i++ {
		_ = bst.Put(uint64(i), []byte{byte(i)})
	}
	if err := bst.Close(); err != nil {
		t.Fatal(err)
	}

	// Case 4 with an NVM replica: vote mirror 0 the new back-end.
	nb, err := cl.PromoteMirror(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Mirrors[0]) != 1 {
		t.Fatal("promoted mirror must leave the mirror list")
	}
	_, conns2, err := cl.NewFrontend(3, core.ModeR())
	if err != nil {
		t.Fatal(err)
	}
	if conns2[0].BackendID() != nb.ID() {
		t.Fatal("front-end should reconnect to the promoted node")
	}
	bst2, err := ds.OpenBST(conns2[0], "tree", false, dsOpts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 30; i++ {
		v, ok, err := bst2.Get(uint64(i))
		if err != nil || !ok || v[0] != byte(i) {
			t.Fatalf("key %d lost across promotion: ok=%v err=%v", i, ok, err)
		}
	}
}

func TestClusterRebuildFromArchive(t *testing.T) {
	cl := smallCluster(t, Config{Backends: 1, ArchivePerBack: true})
	_, conns, err := cl.NewFrontend(1, core.ModeR())
	if err != nil {
		t.Fatal(err)
	}
	ht, err := ds.CreateHashTable(conns[0], "bankish", dsOpts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 40; i++ {
		_ = ht.Put(uint64(i), []byte{byte(i), byte(i >> 8)})
	}
	if err := ht.Close(); err != nil {
		t.Fatal(err)
	}

	// Case 4 without an NVM replica: format a fresh back-end and replay
	// the archived semantic stream through a new structure.
	var fresh *ds.HashTable
	_, err = cl.RebuildFromArchive(0, cl.Archives[0], func(slot uint16, rec logrec.OpRecord) error {
		if fresh == nil {
			_, conns2, err := cl.NewFrontend(2, core.ModeR())
			if err != nil {
				return err
			}
			fresh, err = ds.CreateHashTable(conns2[0], "bankish", dsOpts)
			if err != nil {
				return err
			}
		}
		return fresh.ReplayOp(rec)
	})
	if err != nil {
		t.Fatal(err)
	}
	if fresh == nil {
		t.Fatal("archive replay never ran")
	}
	if err := fresh.Drain(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 40; i++ {
		v, ok, err := fresh.Get(uint64(i))
		if err != nil || !ok || !bytes.Equal(v, []byte{byte(i), byte(i >> 8)}) {
			t.Fatalf("archived key %d not rebuilt: ok=%v err=%v", i, ok, err)
		}
	}
}

func TestFrontendWriterCrashRecovery(t *testing.T) {
	// Case 2: the front-end writer dies holding the lock with
	// acknowledged ops whose memory logs never flushed; a successor
	// breaks the lock and re-executes pending ops.
	cl := smallCluster(t, Config{Backends: 1})
	_, conns, err := cl.NewFrontend(1, core.ModeR())
	if err != nil {
		t.Fatal(err)
	}
	st, err := ds.CreateStack(conns[0], "crashstack", dsOpts)
	if err != nil {
		t.Fatal(err)
	}
	_ = st.Push([]byte("one"))
	if err := st.Drain(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: append an op log directly with no memory logs
	// and never unlock.
	h := st.Handle()
	if _, err := h.OpLog(ds.OpPush, append(make([]byte, 8), []byte("two")...)); err != nil {
		t.Fatal(err)
	}
	cl.KA.Expire("frontend1")

	_, conns2, err := cl.NewFrontend(2, core.ModeR())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := conns2[0].Open("crashstack", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := raw.BreakLock(1); err != nil {
		t.Fatal(err)
	}
	st2, err := ds.OpenStack(conns2[0], "crashstack", dsOpts)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != 2 {
		t.Fatalf("recovered stack has %d items, want 2", st2.Len())
	}
	v, ok, err := st2.Pop()
	if err != nil || !ok || string(v) != "two" {
		t.Fatalf("pending push not re-executed: %q ok=%v err=%v", v, ok, err)
	}
	v, ok, _ = st2.Pop()
	if !ok || string(v) != "one" {
		t.Fatalf("baseline lost: %q", v)
	}
}
