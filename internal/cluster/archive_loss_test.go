package cluster

import (
	"bytes"
	"testing"

	"asymnvm/internal/core"
	"asymnvm/internal/ds"
	"asymnvm/internal/logrec"
	"asymnvm/internal/workload"
)

// TestArchiveEndToEndLossRecovery is the worst failure the design
// survives (§7.2 Case 4 with no replica): the primary dies permanently —
// power failure included — and the only surviving copy of the data is
// the archive node's semantic op stream. A brand-new back-end is
// formatted and the stream re-executed through normal front-end write
// paths, routed per structure by the archived slot. Every committed
// update, including deletes and overwrites, must reconstruct byte for
// byte.
func TestArchiveEndToEndLossRecovery(t *testing.T) {
	cl := smallCluster(t, Config{Backends: 1, ArchivePerBack: true})
	_, conns, err := cl.NewFrontend(1, core.ModeR())
	if err != nil {
		t.Fatal(err)
	}
	users, err := ds.CreateHashTable(conns[0], "users", dsOpts)
	if err != nil {
		t.Fatal(err)
	}
	orders, err := ds.CreateHashTable(conns[0], "orders", dsOpts)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 30; k++ {
		if err := users.Put(k, workload.Value(k, 24)); err != nil {
			t.Fatal(err)
		}
		if err := orders.Put(k, workload.Value(k*7, 40)); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrites and deletes must replay in order, not just final puts.
	if err := users.Put(3, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if _, err := users.Delete(9); err != nil {
		t.Fatal(err)
	}
	if err := users.Close(); err != nil {
		t.Fatal(err)
	}
	if err := orders.Close(); err != nil {
		t.Fatal(err)
	}
	usersSlot := users.Handle().Slot()
	ordersSlot := orders.Handle().Slot()

	// Kill the primary permanently: process stop plus power failure. The
	// archive is now the only surviving copy.
	cl.CrashBackend(0, true)

	var rusers, rorders *ds.HashTable
	_, err = cl.RebuildFromArchive(0, cl.Archives[0], func(slot uint16, rec logrec.OpRecord) error {
		if rusers == nil {
			_, conns2, err := cl.NewFrontend(2, core.ModeR())
			if err != nil {
				return err
			}
			if rusers, err = ds.CreateHashTable(conns2[0], "users", dsOpts); err != nil {
				return err
			}
			if rorders, err = ds.CreateHashTable(conns2[0], "orders", dsOpts); err != nil {
				return err
			}
		}
		switch slot {
		case usersSlot:
			return rusers.ReplayOp(rec)
		case ordersSlot:
			return rorders.ReplayOp(rec)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rusers == nil {
		t.Fatal("archive replay never ran")
	}
	if err := rusers.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := rorders.Drain(); err != nil {
		t.Fatal(err)
	}

	for k := uint64(1); k <= 30; k++ {
		want := workload.Value(k, 24)
		switch k {
		case 3:
			want = []byte("v2")
		case 9:
			want = nil
		}
		v, ok, err := rusers.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			if ok {
				t.Fatalf("deleted key %d resurrected by replay", k)
			}
			continue
		}
		if !ok || !bytes.Equal(v, want) {
			t.Fatalf("users key %d not recovered byte-for-byte: ok=%v got=%q", k, ok, v)
		}
		ov, ok, err := rorders.Get(k)
		if err != nil || !ok || !bytes.Equal(ov, workload.Value(k*7, 40)) {
			t.Fatalf("orders key %d not recovered: ok=%v err=%v", k, ok, err)
		}
	}
}
