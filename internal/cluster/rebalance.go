package cluster

import (
	"fmt"
	"sort"

	"asymnvm/internal/core"
	"asymnvm/internal/ds"
)

// Elastic rebalancing: the cluster-level orchestration over the ds
// layer's partition handoff (ds.Partitioned.BeginMigration et al.).
// Placement is decided by a consistent-hash ring over the back-end
// slots; PlanMoves diffs a structure's persisted mapping table against
// the ring's assignment, and Rebalance drives one partition's handoff
// end to end — begin (migration word + fresh-generation destination),
// stream (full history re-executed on the destination, then the
// double-log window), cutover (one durable logged meta write flips the
// versioned map; the epoch fence redirects readers on their next
// routed operation), finish (bookkeeping word cleared, source area
// left for lazy reclaim).

// Ring is a consistent-hash placement of partitions over back-end
// slots. Each member contributes vnodes points; ownership of partition
// pi is the first point clockwise from hash(pi). Membership changes
// bump the ring version, so planners can tell "assignment changed
// under me" from "nothing to do". Not safe for concurrent use; the
// rebalancing coordinator owns it.
type Ring struct {
	vnodes  int
	version uint64
	members map[int]bool
	points  []ringPoint // sorted by hash
}

type ringPoint struct {
	hash    uint64
	backend int
}

// ringHash is splitmix64's finalizer: cheap, well-mixed, and stable
// across runs (placement must be a pure function of ids).
func ringHash(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Partition keys and vnode points hash from disjoint input domains.
// Without the tags, partition pi and member 0's vnode pi share the raw
// input pi, hash to the SAME ring position, and the binary search's >=
// comparison hands every low-numbered partition to member 0.
const (
	ringPartTag  = uint64(0x7061) << 48 // "pa"
	ringVnodeTag = uint64(0x766E) << 48 // "vn"
)

// NewRing builds an empty ring; each member added later contributes
// vnodes placement points (more points, smoother moves per membership
// change).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 16
	}
	return &Ring{vnodes: vnodes, members: make(map[int]bool)}
}

// Version reports the membership version (bumped by Add/Remove).
func (r *Ring) Version() uint64 { return r.version }

// Members returns the member back-end slots in ascending order.
func (r *Ring) Members() []int {
	out := make([]int, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Ints(out)
	return out
}

// Add joins a back-end slot to the ring.
func (r *Ring) Add(backendID int) {
	if r.members[backendID] {
		return
	}
	r.members[backendID] = true
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, ringPoint{
			hash:    ringHash(ringVnodeTag | uint64(backendID)<<20 | uint64(v)),
			backend: backendID,
		})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	r.version++
}

// Remove drains a back-end slot out of the ring; its partitions fall
// to the next points clockwise.
func (r *Ring) Remove(backendID int) {
	if !r.members[backendID] {
		return
	}
	delete(r.members, backendID)
	kept := r.points[:0]
	for _, pt := range r.points {
		if pt.backend != backendID {
			kept = append(kept, pt)
		}
	}
	r.points = kept
	r.version++
}

// Owner reports which member owns partition pi, or -1 on an empty ring.
func (r *Ring) Owner(pi uint64) int {
	if len(r.points) == 0 {
		return -1
	}
	h := ringHash(ringPartTag | pi)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].backend
}

// Move is one planned partition relocation.
type Move struct {
	Part     int
	From, To int
}

// PlanMoves diffs a partitioned structure's current persisted placement
// against the ring's assignment and returns the partitions that must
// move. Connection indices and back-end slots coincide for front-ends
// built by Cluster.NewFrontend (conns are indexed by back-end id).
func PlanMoves(p *ds.Partitioned, r *Ring) []Move {
	var moves []Move
	for pi := range p.Parts() {
		want := r.Owner(uint64(pi))
		if want < 0 {
			continue
		}
		if cur := p.Owner(pi); cur != want {
			moves = append(moves, Move{Part: pi, From: cur, To: want})
		}
	}
	return moves
}

// RebalanceHooks interpose at the phase boundaries of one handoff —
// the chaos soak and the crash matrix inject failures between phases
// through these. A nil hook is skipped; a hook error before cutover
// aborts the migration (source stays the sole owner), after cutover it
// is returned with the flip already durable.
type RebalanceHooks struct {
	AfterBegin   func(m *ds.Migration) error
	AfterStream  func(m *ds.Migration, ops int) error
	AfterCutover func(m *ds.Migration) error
}

// Rebalance drives one partition handoff end to end and returns the
// number of history operations streamed. On an error before the map
// flip the migration is aborted — the word is cleared and the
// destination generation left as orphaned garbage for the next
// attempt's generation probe to skip — so the structure is always left
// with exactly one owner per partition.
func Rebalance(p *ds.Partitioned, pi int, dst *core.Conn, hooks RebalanceHooks) (int, error) {
	m, err := p.BeginMigration(pi, dst)
	if err != nil {
		return 0, err
	}
	abort := func(cause error) (int, error) {
		if aerr := m.Abort(); aerr != nil {
			return 0, fmt.Errorf("%w (abort also failed: %v)", cause, aerr)
		}
		return 0, cause
	}
	if hooks.AfterBegin != nil {
		if err := hooks.AfterBegin(m); err != nil {
			return abort(err)
		}
	}
	n, err := m.StreamSnapshot()
	if err != nil {
		return abort(err)
	}
	if hooks.AfterStream != nil {
		if err := hooks.AfterStream(m, n); err != nil {
			return abort(err)
		}
	}
	if err := m.Cutover(); err != nil {
		return n, err
	}
	if hooks.AfterCutover != nil {
		if err := hooks.AfterCutover(m); err != nil {
			return n, err
		}
	}
	if err := m.Finish(); err != nil {
		return n, err
	}
	return n, nil
}

// RehomeArchive moves slot from's archive stream to slot to: the sink
// detaches from the old primary, attaches to the new one (its op
// cursor resumes at the new feed; everything earlier was archived at
// the old home), and the archiveHome mapping is updated so later
// restarts and promotions of EITHER slot re-attach the stream at its
// current home. Call at a quiescent point, after the structures it
// archives have migrated.
func (c *Cluster) RehomeArchive(from, to int) error {
	c.foMu.Lock()
	defer c.foMu.Unlock()
	if from < 0 || from >= len(c.archiveHome) || to < 0 || to >= len(c.archiveHome) {
		return fmt.Errorf("cluster: re-home archive %d->%d out of range", from, to)
	}
	if from == to {
		return nil
	}
	ai := c.archiveHome[from]
	if ai < 0 {
		return fmt.Errorf("cluster: backend%d has no archive to re-home", from)
	}
	if c.archiveHome[to] >= 0 {
		return fmt.Errorf("cluster: backend%d already owns archive %d", to, c.archiveHome[to])
	}
	arch := c.Archives[ai]
	c.Backends[from].RemoveMirror(arch)
	c.Backends[to].AddMirror(arch)
	c.archiveHome[from] = -1
	c.archiveHome[to] = ai
	if c.plane != nil {
		c.plane.Record(fmt.Sprintf("rehome archive%d backend%d->backend%d", ai, from, to))
	}
	return nil
}
