package cluster

import (
	"fmt"

	"asymnvm/internal/backend"
	"asymnvm/internal/clock"
	"asymnvm/internal/core"
	"asymnvm/internal/logrec"
	"asymnvm/internal/mirror"
	"asymnvm/internal/nvm"
	"asymnvm/internal/stats"
)

// Config sizes a simulated deployment (the paper's testbed is 10 nodes:
// seven front-ends, one back-end, two mirrors).
type Config struct {
	Backends       int
	MirrorsPerBack int  // replica mirrors attached to each back-end
	ArchivePerBack bool // additionally attach one archive mirror
	DeviceBytes    int  // NVM capacity per back-end (and replica)
	Profile        clock.Profile
	BackendConfig  *backend.Config
}

// DefaultConfig returns a one-back-end, two-mirror deployment with
// benchmark-sized devices.
func DefaultConfig() Config {
	return Config{
		Backends:       1,
		MirrorsPerBack: 0,
		DeviceBytes:    256 << 20,
		Profile:        clock.DefaultProfile(),
	}
}

// Cluster is an assembled deployment.
type Cluster struct {
	cfg      Config
	Backends []*backend.Backend
	Mirrors  [][]*mirror.Replica
	Archives []*mirror.Archive
	KA       *KeepAlive
	devs     []*nvm.Device
}

// New builds and starts a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.Backends <= 0 {
		return nil, fmt.Errorf("cluster: need at least one back-end")
	}
	if cfg.DeviceBytes == 0 {
		cfg.DeviceBytes = 256 << 20
	}
	cl := &Cluster{cfg: cfg, KA: NewKeepAlive()}
	for i := 0; i < cfg.Backends; i++ {
		dev := nvm.NewDevice(cfg.DeviceBytes)
		opts := backend.Options{ID: uint16(i), Profile: &cfg.Profile, Config: cfg.BackendConfig}
		bk, err := backend.New(dev, opts)
		if err != nil {
			return nil, err
		}
		var reps []*mirror.Replica
		for m := 0; m < cfg.MirrorsPerBack; m++ {
			mdev := nvm.NewDevice(cfg.DeviceBytes)
			rep, err := mirror.NewReplica(mdev, bk, backend.Options{Profile: &cfg.Profile})
			if err != nil {
				return nil, err
			}
			reps = append(reps, rep)
			_ = cl.KA.Register(fmt.Sprintf("mirror%d.%d", i, m), RoleMirror, 3)
		}
		if cfg.ArchivePerBack {
			adev := nvm.NewDevice(cfg.DeviceBytes)
			arch, err := mirror.NewArchive(adev, bk, nil, nil, cfg.Profile)
			if err != nil {
				return nil, err
			}
			cl.Archives = append(cl.Archives, arch)
		}
		bk.Start()
		cl.Backends = append(cl.Backends, bk)
		cl.Mirrors = append(cl.Mirrors, reps)
		cl.devs = append(cl.devs, dev)
		_ = cl.KA.Register(fmt.Sprintf("backend%d", i), RoleBackend, 3)
	}
	return cl, nil
}

// Stop drains and stops every node.
func (c *Cluster) Stop() {
	for _, bk := range c.Backends {
		bk.Stop()
	}
	for _, reps := range c.Mirrors {
		for _, r := range reps {
			r.Stop()
		}
	}
}

// NewFrontend creates a front-end node registered with keepAlive and
// connected to every back-end. The returned connections are indexed by
// back-end id.
func (c *Cluster) NewFrontend(id uint16, mode core.Mode) (*core.Frontend, []*core.Conn, error) {
	fe := core.NewFrontend(core.FrontendOptions{ID: id, Mode: mode, Profile: &c.cfg.Profile})
	conns := make([]*core.Conn, 0, len(c.Backends))
	for _, bk := range c.Backends {
		conn, err := fe.Connect(bk)
		if err != nil {
			return nil, nil, err
		}
		conns = append(conns, conn)
	}
	_ = c.KA.Register(fmt.Sprintf("frontend%d", id), RoleFrontend, 3)
	return fe, conns, nil
}

// Device exposes a back-end's NVM device for crash injection.
func (c *Cluster) Device(backendID int) *nvm.Device { return c.devs[backendID] }

// ---- recovery orchestration (§7.2) ----

// RestartBackend models Case 3, a transient back-end failure: the node's
// process dies (optionally with a power failure on the device) and comes
// back on the same NVM. The replayer validates the last transaction's
// checksum and re-applies whatever was persisted but not applied. The new
// instance replaces the old one in the cluster; front-ends reconnect.
func (c *Cluster) RestartBackend(backendID int, powerFail bool) (*backend.Backend, []backend.SlotStatus, error) {
	old := c.Backends[backendID]
	old.Stop()
	if powerFail {
		c.devs[backendID].Crash(nil)
	}
	bk, err := backend.New(c.devs[backendID], backend.Options{
		ID: uint16(backendID), Profile: &c.cfg.Profile,
	})
	if err != nil {
		return nil, nil, err
	}
	// Re-attach the surviving mirrors (a fresh initial sync, as at
	// deployment time).
	for m := range c.Mirrors[backendID] {
		mdev := c.Mirrors[backendID][m].Device()
		rep, err := mirror.NewReplica(mdev, bk, backend.Options{Profile: &c.cfg.Profile})
		if err != nil {
			return nil, nil, err
		}
		c.Mirrors[backendID][m] = rep
	}
	bk.Start()
	c.Backends[backendID] = bk
	_ = c.KA.Renew(fmt.Sprintf("backend%d", backendID))
	return bk, bk.RecoveredSlots(), nil
}

// PromoteMirror models Case 4, a permanent back-end failure with an NVM
// replica available: the mirror is voted the new back-end and keeps the
// dead node's identity so all stored global addresses stay valid.
func (c *Cluster) PromoteMirror(backendID, mirrorIdx int) (*backend.Backend, error) {
	c.KA.Expire(fmt.Sprintf("backend%d", backendID))
	c.Backends[backendID].Stop()
	rep := c.Mirrors[backendID][mirrorIdx]
	bk, err := rep.Promote(backend.Options{Profile: &c.cfg.Profile})
	if err != nil {
		return nil, err
	}
	bk.Start()
	c.Backends[backendID] = bk
	c.devs[backendID] = rep.Device()
	c.Mirrors[backendID] = append(c.Mirrors[backendID][:mirrorIdx], c.Mirrors[backendID][mirrorIdx+1:]...)
	_ = c.KA.Renew(fmt.Sprintf("backend%d", backendID))
	return bk, nil
}

// Reexec replays one archived operation through data-structure semantics;
// the ds layer provides implementations per structure type.
type Reexec func(slot uint16, rec logrec.OpRecord) error

// RebuildFromArchive models Case 4 without an NVM replica: a brand-new
// back-end is formatted and the front-ends re-execute the archived
// operation stream through their normal write paths.
func (c *Cluster) RebuildFromArchive(backendID int, arch *mirror.Archive, reexec Reexec) (*backend.Backend, error) {
	c.KA.Expire(fmt.Sprintf("backend%d", backendID))
	c.Backends[backendID].Stop()
	dev := nvm.NewDevice(c.cfg.DeviceBytes)
	bk, err := backend.New(dev, backend.Options{ID: uint16(backendID), Profile: &c.cfg.Profile})
	if err != nil {
		return nil, err
	}
	bk.Start()
	c.Backends[backendID] = bk
	c.devs[backendID] = dev
	ops, err := arch.Ops()
	if err != nil {
		return nil, err
	}
	for _, op := range ops {
		if err := reexec(op.Slot, op.Rec); err != nil {
			return nil, fmt.Errorf("cluster: re-executing archived op: %w", err)
		}
	}
	_ = c.KA.Renew(fmt.Sprintf("backend%d", backendID))
	return bk, nil
}

// FrontendStats aggregates snapshots from several front-ends.
func FrontendStats(fes ...*core.Frontend) stats.Snapshot {
	var total stats.Snapshot
	for _, fe := range fes {
		total = addSnap(total, fe.Stats().Snapshot())
	}
	return total
}

func addSnap(a, b stats.Snapshot) stats.Snapshot {
	var zero stats.Snapshot
	return a.Sub(zero.Sub(b))
}
