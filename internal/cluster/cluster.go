package cluster

import (
	"fmt"
	"runtime"
	"sync"

	"asymnvm/internal/backend"
	"asymnvm/internal/clock"
	"asymnvm/internal/core"
	"asymnvm/internal/fault"
	"asymnvm/internal/logrec"
	"asymnvm/internal/mirror"
	"asymnvm/internal/nvm"
	"asymnvm/internal/stats"
	"asymnvm/internal/trace"
)

// Config sizes a simulated deployment (the paper's testbed is 10 nodes:
// seven front-ends, one back-end, two mirrors).
type Config struct {
	Backends       int
	MirrorsPerBack int  // replica mirrors attached to each back-end
	ArchivePerBack bool // additionally attach one archive mirror
	DeviceBytes    int  // NVM capacity per back-end (and replica)
	Profile        clock.Profile
	BackendConfig  *backend.Config
	// Compact, when non-nil, switches every back-end incarnation in the
	// cluster — primaries, replica replayers, restarted and promoted
	// nodes — to lazy replay with periodic checkpoints (§6 log GC). Each
	// node checkpoints its own device independently; only the epoch is a
	// shared notion (carried in the log records the mirrors replay).
	Compact *backend.CompactConfig
	// Tracer, when non-nil, records per-operation spans for the cluster's
	// primary back-ends and every front-end created through NewFrontend.
	// Replica replayers, promoted mirrors and restarted back-ends are NOT
	// traced: they impersonate the primary's node id, so their spans would
	// collide with the primary actor's on a different clock.
	Tracer *trace.Tracer
}

// DefaultConfig returns a one-back-end, two-mirror deployment with
// benchmark-sized devices.
func DefaultConfig() Config {
	return Config{
		Backends:       1,
		MirrorsPerBack: 0,
		DeviceBytes:    256 << 20,
		Profile:        clock.DefaultProfile(),
	}
}

// Cluster is an assembled deployment.
type Cluster struct {
	cfg      Config
	Backends []*backend.Backend
	Mirrors  [][]*mirror.Replica
	Archives []*mirror.Archive
	KA       *KeepAlive
	devs     []*nvm.Device

	// foMu serializes failure orchestration (crash, restart, promotion,
	// front-end failover decisions). gens counts back-end incarnations per
	// slot so a front-end can tell "someone already replaced this node"
	// from "I must drive the promotion myself".
	foMu     sync.Mutex
	gens     []uint64
	plane    *fault.Plane
	injNames [][]string // per back-end slot: injector names of its connections

	// archiveHome[slot] is the index into Archives of the archive stream
	// currently attached to that back-end slot, or -1. Seeded identity at
	// deployment; RehomeArchive moves an entry when rebalancing migrates a
	// slot's structures to another back-end, and every later restart or
	// promotion of either slot consults this mapping — not the open-time
	// identity — when re-attaching archives.
	archiveHome []int

	// devMu guards devs for the 2PC resolver. It is separate from foMu on
	// purpose: the resolver runs inside backend.New's recovery, which
	// RestartBackend/promoteLocked invoke while HOLDING foMu — consulting
	// a coordinator device mid-restart must not deadlock.
	devMu sync.Mutex
}

// txResolver builds the cluster's in-doubt consultation (§7.2 extended
// for cross-shard transactions): a recovering back-end hands it the
// coordinator's node/slot and the transaction id, and it scans the
// coordinator structure's log straight off that node's device. A
// missing device (node gone, not yet promoted) keeps the prepare held.
func (c *Cluster) txResolver() backend.TxResolver {
	return func(coordNode, coordSlot uint16, txid uint64) backend.TxOutcome {
		c.devMu.Lock()
		var dev *nvm.Device
		if int(coordNode) < len(c.devs) {
			dev = c.devs[coordNode]
		}
		c.devMu.Unlock()
		if dev == nil {
			return backend.TxUnknown
		}
		out, err := backend.ScanTxOutcome(dev, coordSlot, txid)
		if err != nil {
			return backend.TxUnknown
		}
		return out
	}
}

// New builds and starts a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.Backends <= 0 {
		return nil, fmt.Errorf("cluster: need at least one back-end")
	}
	if cfg.DeviceBytes == 0 {
		cfg.DeviceBytes = 256 << 20
	}
	cl := &Cluster{cfg: cfg, KA: NewKeepAlive()}
	for i := 0; i < cfg.Backends; i++ {
		dev := nvm.NewDevice(cfg.DeviceBytes)
		opts := backend.Options{ID: uint16(i), Profile: &cfg.Profile, Config: cfg.BackendConfig, Tracer: cfg.Tracer, Compact: cfg.Compact, TxResolver: cl.txResolver()}
		bk, err := backend.New(dev, opts)
		if err != nil {
			return nil, err
		}
		var reps []*mirror.Replica
		for m := 0; m < cfg.MirrorsPerBack; m++ {
			mdev := nvm.NewDevice(cfg.DeviceBytes)
			rep, err := mirror.NewReplica(mdev, bk, backend.Options{Profile: &cfg.Profile, Compact: cfg.Compact})
			if err != nil {
				return nil, err
			}
			reps = append(reps, rep)
			_ = cl.KA.Register(fmt.Sprintf("mirror%d.%d", i, m), RoleMirror, 3)
		}
		home := -1
		if cfg.ArchivePerBack {
			adev := nvm.NewDevice(cfg.DeviceBytes)
			arch, err := mirror.NewArchive(adev, bk, nil, nil, cfg.Profile)
			if err != nil {
				return nil, err
			}
			cl.Archives = append(cl.Archives, arch)
			home = len(cl.Archives) - 1
		}
		cl.archiveHome = append(cl.archiveHome, home)
		bk.Start()
		cl.Backends = append(cl.Backends, bk)
		cl.Mirrors = append(cl.Mirrors, reps)
		cl.devs = append(cl.devs, dev)
		cl.gens = append(cl.gens, 0)
		cl.injNames = append(cl.injNames, nil)
		_ = cl.KA.Register(fmt.Sprintf("backend%d", i), RoleBackend, 3)
	}
	return cl, nil
}

// InjectorName is the fault-plane naming convention for the logical
// connection of front-end feID to back-end slot bkID.
func InjectorName(feID uint16, bkID int) string {
	return fmt.Sprintf("fe%d->bk%d", feID, bkID)
}

// AttachFaultPlane installs a fault-injection plane: front-ends created
// afterwards get a deterministic per-connection verb injector, failure
// orchestration is recorded on the plane's event log, and — when the
// plane configures mirror lag — replication traffic is routed through lag
// queues. Attach before creating front-ends.
func (c *Cluster) AttachFaultPlane(p *fault.Plane) {
	c.foMu.Lock()
	defer c.foMu.Unlock()
	c.plane = p
	if p != nil && p.MirrorLag() > 0 {
		for _, bk := range c.Backends {
			bk.WrapMirrors(p.WrapMirror)
		}
	}
}

// Plane returns the attached fault plane, or nil.
func (c *Cluster) Plane() *fault.Plane {
	c.foMu.Lock()
	defer c.foMu.Unlock()
	return c.plane
}

// BackendHealth is one back-end slot's readiness: its keepalive lease,
// its service-loop liveness, and how many durable memory-log bytes its
// replayer still has to apply.
type BackendHealth struct {
	Slot       int
	LeaseAlive bool
	LoopAlive  bool
	ReplayLag  uint64
}

// OK reports whether the slot can serve: lease held and loop running.
// Replay lag is advisory — it bounds how stale reader-side materialized
// state may be, not whether the log path works.
func (h BackendHealth) OK() bool { return h.LeaseAlive && h.LoopAlive }

// Health reports per-slot readiness across the deployment's back-ends.
// Promotion swaps the slot's *backend.Backend in place, so this always
// describes the current incarnation.
func (c *Cluster) Health() []BackendHealth {
	c.foMu.Lock()
	backs := append([]*backend.Backend(nil), c.Backends...)
	c.foMu.Unlock()
	out := make([]BackendHealth, len(backs))
	for i, bk := range backs {
		out[i] = BackendHealth{
			Slot:       i,
			LeaseAlive: c.KA.Alive(fmt.Sprintf("backend%d", i)),
			LoopAlive:  bk != nil && bk.Alive(),
		}
		if out[i].LoopAlive {
			out[i].ReplayLag = bk.ReplayLag()
		}
	}
	return out
}

// Stop drains and stops every node.
func (c *Cluster) Stop() {
	for _, bk := range c.Backends {
		bk.Stop()
	}
	for _, reps := range c.Mirrors {
		for _, r := range reps {
			r.Stop()
		}
	}
}

// NewFrontend creates a front-end node registered with keepAlive and
// connected to every back-end. The returned connections are indexed by
// back-end id.
func (c *Cluster) NewFrontend(id uint16, mode core.Mode) (*core.Frontend, []*core.Conn, error) {
	fe := core.NewFrontend(core.FrontendOptions{ID: id, Mode: mode, Profile: &c.cfg.Profile, Tracer: c.cfg.Tracer})
	conns := make([]*core.Conn, 0, len(c.Backends))
	for i, bk := range c.Backends {
		conn, err := fe.Connect(bk)
		if err != nil {
			return nil, nil, err
		}
		c.enableResilience(id, i, conn)
		conns = append(conns, conn)
	}
	_ = c.KA.Register(fmt.Sprintf("frontend%d", id), RoleFrontend, 3)
	return fe, conns, nil
}

// NewMirrorFrontend creates a read-only front-end connected to one
// replica mirror's internal back-end instead of the primary. The replica
// impersonates the primary's node id, so global addresses read off it
// resolve identically; its state lags the primary by whatever the
// replication pipe plus its replayer have not applied yet. Callers bound
// that staleness with MirrorStaleness and refresh it with SyncMirrors.
// Mirror connections get no fault injector or failover delegate: a
// mirror that falls over is simply not consulted.
func (c *Cluster) NewMirrorFrontend(id uint16, backendID, mirrorIdx int, mode core.Mode) (*core.Frontend, *core.Conn, error) {
	c.foMu.Lock()
	if backendID >= len(c.Mirrors) || mirrorIdx >= len(c.Mirrors[backendID]) {
		c.foMu.Unlock()
		return nil, nil, fmt.Errorf("cluster: no mirror %d.%d", backendID, mirrorIdx)
	}
	rep := c.Mirrors[backendID][mirrorIdx]
	c.foMu.Unlock()
	fe := core.NewFrontend(core.FrontendOptions{ID: id, Mode: mode, Profile: &c.cfg.Profile})
	conn, err := fe.Connect(rep.Backend())
	if err != nil {
		return nil, nil, err
	}
	return fe, conn, nil
}

// SyncMirrors flushes the replication pipe to a back-end's mirrors (any
// fault-plane lag queues included) and waits for each replica's internal
// replayer to apply everything it has, so mirror-served state catches up
// to the primary's applied point. Convergence is judged by per-slot
// seqlock SN parity with the primary, not ReplayLag alone: a replica
// that has not yet discovered a slot (its naming scan runs inside its
// own service loop) reports zero lag for it, and the aux tail hints
// ReplayLag reads are advisory front-end writes that do not travel the
// replication pipe. SN words do — the replica's replayer bumps them as
// it applies — so equal SNs mean equal applied state. Call this at a
// quiescent point (primary drained); otherwise it chases a moving target.
func (c *Cluster) SyncMirrors(backendID int) {
	c.foMu.Lock()
	plane := c.plane
	reps := append([]*mirror.Replica(nil), c.Mirrors[backendID]...)
	c.foMu.Unlock()
	if plane != nil {
		plane.DrainMirrors()
	}
	primary := c.Backends[backendID]
	for _, rep := range reps {
		for {
			rep.MirrorKick()
			want := primary.SlotSNs()
			got := rep.Backend().SlotSNs()
			synced := rep.ReplayLag() == 0
			for slot, sn := range want {
				if got[slot] != sn {
					synced = false
					break
				}
			}
			if synced {
				break
			}
			runtime.Gosched()
		}
	}
}

// MirrorStaleness reports how many applied transactions (epoch steps) the
// mirror's view of one structure slot is behind the primary's: the
// seqlock sequence number advances by two per applied transaction, so the
// distance is half the SN gap. A negative gap cannot happen (the mirror
// replays the primary's own log); equal SNs mean the mirror is current.
func MirrorStaleness(primary, mirrored *core.Conn, slot uint16) (uint64, error) {
	psn, err := primary.SlotSN(slot)
	if err != nil {
		return 0, err
	}
	msn, err := mirrored.SlotSN(slot)
	if err != nil {
		return 0, err
	}
	if msn >= psn {
		return 0, nil
	}
	return (psn - msn) / 2, nil
}

// enableResilience installs the connection's fault injector (when a plane
// is attached) and its failover delegate.
func (c *Cluster) enableResilience(feID uint16, slot int, conn *core.Conn) {
	c.foMu.Lock()
	defer c.foMu.Unlock()
	name := InjectorName(feID, slot)
	if c.plane != nil {
		inj := c.plane.Injector(name)
		// A fresh connection to the current incarnation is connected by
		// definition; clear any disconnect left from an earlier crash.
		inj.Reconnect()
		conn.Endpoint().SetFault(inj.Hook())
		known := false
		for _, n := range c.injNames[slot] {
			if n == name {
				known = true
				break
			}
		}
		if !known {
			c.injNames[slot] = append(c.injNames[slot], name)
		}
	}
	gen := c.gens[slot] // incarnation this connection last targeted
	conn.SetFailover(func() (*backend.Backend, error) {
		c.foMu.Lock()
		defer c.foMu.Unlock()
		lease := fmt.Sprintf("backend%d", slot)
		if c.gens[slot] == gen {
			// No replacement yet. Only the keep-alive authority may
			// declare the back-end dead (§7.2 Case 3/4) — a front-end that
			// merely lost its own connection must keep retrying.
			if c.KA.Alive(lease) {
				return nil, fmt.Errorf("cluster: %s lease still alive; not failing over", lease)
			}
			if len(c.Mirrors[slot]) == 0 {
				return nil, fmt.Errorf("cluster: %s lost with no replica to promote", lease)
			}
			if _, err := c.promoteLocked(slot, 0); err != nil {
				return nil, err
			}
		}
		gen = c.gens[slot]
		if c.plane != nil {
			c.plane.Injector(name).Reconnect()
		}
		return c.Backends[slot], nil
	})
}

// Device exposes a back-end's NVM device for crash injection.
func (c *Cluster) Device(backendID int) *nvm.Device { return c.devs[backendID] }

// ---- recovery orchestration (§7.2) ----

// archiveFor returns the archive sink whose current home is the given
// back-end slot, or nil. The lookup goes through the versioned
// archiveHome mapping rather than a slot-index identity: after a
// rebalance re-homes an archive stream, a restarted incarnation of the
// OLD slot must not re-adopt a stream that followed its structures to
// another back-end (the stale-owner bug), and the NEW slot must.
func (c *Cluster) archiveFor(backendID int) *mirror.Archive {
	if backendID >= len(c.archiveHome) {
		return nil
	}
	ai := c.archiveHome[backendID]
	if ai < 0 || ai >= len(c.Archives) {
		return nil
	}
	return c.Archives[ai]
}

// CrashBackend kills a back-end without replacing it: the process stops
// (optionally with a power failure on the device) and its lease expires,
// which authorizes front-ends to drive a mirror promotion through their
// failover delegates. When a fault plane is attached, the dead node's
// connections are marked disconnected so the next verb on each surfaces
// rdma.ErrDisconnected instead of hanging.
func (c *Cluster) CrashBackend(backendID int, powerFail bool) {
	c.foMu.Lock()
	defer c.foMu.Unlock()
	if powerFail {
		// Power failure: Halt skips the graceful drain/checkpoint so the
		// device crash below sees a realistic mid-flight image.
		c.Backends[backendID].Halt()
		c.devs[backendID].Crash(nil)
	} else {
		c.Backends[backendID].Stop()
	}
	c.KA.Expire(fmt.Sprintf("backend%d", backendID))
	if c.plane != nil {
		for _, name := range c.injNames[backendID] {
			c.plane.Injector(name).Disconnect()
		}
		c.plane.Record(fmt.Sprintf("crash backend%d powerFail=%v", backendID, powerFail))
	}
}

// RestartBackend models Case 3, a transient back-end failure: the node's
// process dies (optionally with a power failure on the device) and comes
// back on the same NVM. The replayer validates the last transaction's
// checksum and re-applies whatever was persisted but not applied. The new
// instance replaces the old one in the cluster; front-ends with a
// failover delegate re-target on their next verb, others reconnect.
func (c *Cluster) RestartBackend(backendID int, powerFail bool) (*backend.Backend, []backend.SlotStatus, error) {
	c.foMu.Lock()
	defer c.foMu.Unlock()
	old := c.Backends[backendID]
	if powerFail {
		old.Halt()
	} else {
		old.Stop()
	}
	if c.plane != nil {
		// Flush and discard lag queues: the replicas get a fresh full
		// sync below, so stale queued writes must not resurface later.
		c.plane.DropMirrors()
	}
	if powerFail {
		c.devs[backendID].Crash(nil)
	}
	bk, err := backend.New(c.devs[backendID], backend.Options{
		ID: uint16(backendID), Profile: &c.cfg.Profile, Compact: c.cfg.Compact,
		TxResolver: c.txResolver(),
	})
	if err != nil {
		return nil, nil, err
	}
	// Re-attach the surviving mirrors (a fresh initial sync, as at
	// deployment time), then the archive: its op cursor resumes at the
	// replayer's applied point, everything earlier was archived before
	// the stop drain.
	for m := range c.Mirrors[backendID] {
		mdev := c.Mirrors[backendID][m].Device()
		rep, err := mirror.NewReplica(mdev, bk, backend.Options{Profile: &c.cfg.Profile, Compact: c.cfg.Compact})
		if err != nil {
			return nil, nil, err
		}
		c.Mirrors[backendID][m] = rep
	}
	if arch := c.archiveFor(backendID); arch != nil {
		bk.AddMirror(arch)
	}
	if c.plane != nil && c.plane.MirrorLag() > 0 {
		bk.WrapMirrors(c.plane.WrapMirror)
	}
	bk.Start()
	c.Backends[backendID] = bk
	c.gens[backendID]++
	if c.plane != nil {
		c.plane.Record(fmt.Sprintf("restart backend%d powerFail=%v gen=%d", backendID, powerFail, c.gens[backendID]))
	}
	_ = c.KA.Renew(fmt.Sprintf("backend%d", backendID))
	return bk, bk.RecoveredSlots(), nil
}

// PromoteMirror models Case 4, a permanent back-end failure with an NVM
// replica available: the mirror is voted the new back-end and keeps the
// dead node's identity so all stored global addresses stay valid.
func (c *Cluster) PromoteMirror(backendID, mirrorIdx int) (*backend.Backend, error) {
	c.foMu.Lock()
	defer c.foMu.Unlock()
	return c.promoteLocked(backendID, mirrorIdx)
}

// promoteLocked performs the promotion; foMu must be held. The dead
// primary is stopped (idempotent — the crash path usually already did),
// lag queues are drained first: promotion models the replica having
// acknowledged every safe transaction, so nothing may still sit in the
// replication pipe. Surviving replicas are then re-attached to the new
// primary with a fresh full sync, and the archive stream re-homed, so a
// later failure of the promoted node remains survivable.
func (c *Cluster) promoteLocked(backendID, mirrorIdx int) (*backend.Backend, error) {
	c.KA.Expire(fmt.Sprintf("backend%d", backendID))
	c.Backends[backendID].Stop()
	if c.plane != nil {
		c.plane.DropMirrors()
	}
	rep := c.Mirrors[backendID][mirrorIdx]
	bk, err := rep.Promote(backend.Options{Profile: &c.cfg.Profile, Compact: c.cfg.Compact, TxResolver: c.txResolver()})
	if err != nil {
		return nil, err
	}
	c.Mirrors[backendID] = append(c.Mirrors[backendID][:mirrorIdx], c.Mirrors[backendID][mirrorIdx+1:]...)
	for m := range c.Mirrors[backendID] {
		mdev := c.Mirrors[backendID][m].Device()
		nrep, err := mirror.NewReplica(mdev, bk, backend.Options{Profile: &c.cfg.Profile, Compact: c.cfg.Compact})
		if err != nil {
			return nil, err
		}
		c.Mirrors[backendID][m] = nrep
	}
	if arch := c.archiveFor(backendID); arch != nil {
		bk.AddMirror(arch)
	}
	if c.plane != nil && c.plane.MirrorLag() > 0 {
		bk.WrapMirrors(c.plane.WrapMirror)
	}
	bk.Start()
	c.Backends[backendID] = bk
	c.devMu.Lock()
	c.devs[backendID] = rep.Device()
	c.devMu.Unlock()
	c.gens[backendID]++
	if c.plane != nil {
		c.plane.Record(fmt.Sprintf("promote backend%d mirror=%d gen=%d", backendID, mirrorIdx, c.gens[backendID]))
	}
	_ = c.KA.Renew(fmt.Sprintf("backend%d", backendID))
	return bk, nil
}

// Reexec replays one archived operation through data-structure semantics;
// the ds layer provides implementations per structure type.
type Reexec func(slot uint16, rec logrec.OpRecord) error

// RebuildFromArchive models Case 4 without an NVM replica: a brand-new
// back-end is formatted and the front-ends re-execute the archived
// operation stream through their normal write paths.
func (c *Cluster) RebuildFromArchive(backendID int, arch *mirror.Archive, reexec Reexec) (*backend.Backend, error) {
	c.foMu.Lock()
	c.KA.Expire(fmt.Sprintf("backend%d", backendID))
	c.Backends[backendID].Stop()
	if c.plane != nil {
		c.plane.DropMirrors() // flush any lagged tail into the archive
	}
	dev := nvm.NewDevice(c.cfg.DeviceBytes)
	bk, err := backend.New(dev, backend.Options{ID: uint16(backendID), Profile: &c.cfg.Profile, Compact: c.cfg.Compact})
	if err != nil {
		c.foMu.Unlock()
		return nil, err
	}
	bk.Start()
	c.Backends[backendID] = bk
	c.devMu.Lock()
	c.devs[backendID] = dev
	c.devMu.Unlock()
	c.gens[backendID]++
	if c.plane != nil {
		c.plane.Record(fmt.Sprintf("rebuild backend%d gen=%d", backendID, c.gens[backendID]))
	}
	// Release before re-execution: reexec drives normal front-end write
	// paths, which may themselves need the failover machinery.
	c.foMu.Unlock()
	ops, err := arch.Ops()
	if err != nil {
		return nil, err
	}
	for _, op := range ops {
		if err := reexec(op.Slot, op.Rec); err != nil {
			return nil, fmt.Errorf("cluster: re-executing archived op: %w", err)
		}
	}
	_ = c.KA.Renew(fmt.Sprintf("backend%d", backendID))
	return bk, nil
}

// FrontendStats aggregates snapshots from several front-ends.
func FrontendStats(fes ...*core.Frontend) stats.Snapshot {
	var total stats.Snapshot
	for _, fe := range fes {
		total = addSnap(total, fe.Stats().Snapshot())
	}
	return total
}

func addSnap(a, b stats.Snapshot) stats.Snapshot {
	var zero stats.Snapshot
	return a.Sub(zero.Sub(b))
}
