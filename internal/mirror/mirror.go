// Package mirror implements AsymNVM mirror nodes (§7.1). A back-end
// replicates its logs to at least one mirror before a transaction is
// considered safe against permanent back-end loss. Two kinds exist, as in
// the paper:
//
//   - Replica: an NVM-equipped mirror keeping a byte-identical copy of
//     the primary's metadata and log areas and running its own log
//     replayer, so it "will be voted as the new back-end" directly;
//   - Archive: a mirror on slower durable media (SSD/disk in the paper)
//     that only appends the semantic operation-log stream; after a
//     permanent back-end failure the front-ends replay it into a fresh
//     back-end.
package mirror

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"asymnvm/internal/backend"
	"asymnvm/internal/clock"
	"asymnvm/internal/logrec"
	"asymnvm/internal/nvm"
	"asymnvm/internal/stats"
	"asymnvm/internal/trace"
)

// Replica is an NVM-equipped mirror node.
type Replica struct {
	dev *nvm.Device
	bk  *backend.Backend // internal replayer over the replicated bytes
	mu  sync.Mutex
	err error
}

// NewReplica attaches a replica mirror to primary: the mirror device is
// synchronized with a full copy of the primary device (the initial sync a
// real deployment performs once at attach time), an internal replayer is
// started, and the mirror registers itself as a sink on the primary.
func NewReplica(dev *nvm.Device, primary *backend.Backend, opts backend.Options) (*Replica, error) {
	img := primary.Device().Snapshot()
	if dev.Size() != uint64(len(img)) {
		return nil, fmt.Errorf("mirror: replica device %d bytes, primary %d", dev.Size(), len(img))
	}
	if err := dev.Restore(img); err != nil {
		return nil, err
	}
	// The internal replayer impersonates the primary's node id so global
	// addresses inside replicated logs stay valid.
	opts.ID = primary.ID()
	bk, err := backend.New(dev, opts)
	if err != nil {
		return nil, err
	}
	r := &Replica{dev: dev, bk: bk}
	bk.Start()
	primary.AddMirror(r)
	return r, nil
}

// WantsRaw reports that replicas take raw device ranges.
func (r *Replica) WantsRaw() bool { return true }

// MirrorWrite applies a replicated range at the same device offset.
func (r *Replica) MirrorWrite(devOff uint64, data []byte) error {
	return r.dev.WritePersist(devOff, data)
}

// MirrorOp is ignored by replicas (they already hold the raw log bytes).
func (r *Replica) MirrorOp(uint16, []byte) error { return nil }

// MirrorKick lets the internal replayer catch up.
func (r *Replica) MirrorKick() { r.bk.Kick() }

// Device exposes the replica device (crash injection in tests).
func (r *Replica) Device() *nvm.Device { return r.dev }

// Backend exposes the replica's internal replayer back-end. Front-ends
// may connect to it for mirror-served reads (§7.1 extended): the replica
// holds a byte-identical copy of the primary, so read verbs against it
// return real — possibly stale — structure state. Its per-slot sequence
// numbers lag the primary's by exactly the unapplied suffix, which is
// what bounds the staleness a mirror-served read can observe.
func (r *Replica) Backend() *backend.Backend { return r.bk }

// ReplayLag reports how many durable-but-unapplied memory-log bytes the
// replica's internal replayer still has to catch up on.
func (r *Replica) ReplayLag() uint64 { return r.bk.ReplayLag() }

// Promote turns the replica into a live back-end after the primary is
// gone: the internal replayer is drained and stopped, and a fresh back-end
// is recovered from the replicated bytes, keeping the primary's node id.
func (r *Replica) Promote(opts backend.Options) (*backend.Backend, error) {
	r.bk.Stop()
	opts.ID = r.bk.ID()
	return backend.New(r.dev, opts)
}

// Stop halts the internal replayer without promoting.
func (r *Replica) Stop() { r.bk.Stop() }

// ---- archive mirrors ----

// Archive layout on its device: a 16-byte header (magic, tail), then an
// append-only run of framed records: {len uint32, slot uint16, bytes}.
const (
	archiveMagic  uint64 = 0x5643524D59534131 // "ASYMRCV1"-ish tag
	archiveHdr           = 16
	frameOverhead        = 4 + 2
)

// Archive is a log-only mirror on durable media.
type Archive struct {
	mu         sync.Mutex
	dev        *nvm.Device
	tail       uint64
	clk        clock.Clock
	st         *stats.Stats
	prof       clock.Profile
	tr         *trace.ActorTracer // nil when tracing is disabled
	pendingOps int                // appends since the last persist barrier
}

// NewArchive opens (or initializes) an archive mirror on dev and attaches
// it to primary. prof prices the archive's local persists.
func NewArchive(dev *nvm.Device, primary *backend.Backend, clk clock.Clock, st *stats.Stats, prof clock.Profile) (*Archive, error) {
	if clk == nil {
		clk = clock.NewVirtual()
	}
	if st == nil {
		st = &stats.Stats{}
	}
	a := &Archive{dev: dev, clk: clk, st: st, prof: prof}
	magic, err := dev.Load64(0)
	if err != nil {
		return nil, err
	}
	if magic == archiveMagic {
		if a.tail, err = dev.Load64(8); err != nil {
			return nil, err
		}
	} else {
		if err := dev.Store64(0, archiveMagic); err != nil {
			return nil, err
		}
		if err := dev.Store64(8, 0); err != nil {
			return nil, err
		}
		a.tail = 0
	}
	if primary != nil {
		primary.AddMirror(a)
	}
	return a, nil
}

// SetTracer installs (or clears) the archive actor's tracer.
func (a *Archive) SetTracer(tr *trace.ActorTracer) {
	a.mu.Lock()
	a.tr = tr
	a.mu.Unlock()
}

// WantsRaw reports that archives take the semantic stream only.
func (a *Archive) WantsRaw() bool { return false }

// MirrorWrite is ignored by archives.
func (a *Archive) MirrorWrite(uint64, []byte) error { return nil }

// MirrorOp appends one op record frame and persists the new tail.
func (a *Archive) MirrorOp(slot uint16, rec []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	off := archiveHdr + a.tail
	need := uint64(frameOverhead + len(rec))
	if off+need > a.dev.Size() {
		return errors.New("mirror: archive full")
	}
	frame := make([]byte, need)
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(rec)))
	binary.LittleEndian.PutUint16(frame[4:], slot)
	copy(frame[frameOverhead:], rec)
	if err := a.dev.WritePersist(off, frame); err != nil {
		return err
	}
	a.tail += need
	if err := a.dev.Store64(8, a.tail); err != nil {
		return err
	}
	// The media write is charged per append; the persist barrier is
	// deferred to MirrorKick so a drain batch pays it once (the archive is
	// append-only, so a trailing barrier covers the whole batch).
	a.clk.Advance(a.prof.LocalNVMWrite(int(need)))
	a.tr.Charge(trace.KindMirrorFwd, a.prof.LocalNVMWrite(int(need)))
	a.st.AddBusy(a.prof.LocalNVMWrite(int(need)))
	a.pendingOps++
	return nil
}

// MirrorKick issues the batched persist barrier for appends since the
// last kick.
func (a *Archive) MirrorKick() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.pendingOps > 0 {
		a.clk.Advance(a.prof.PersistBarrier)
		a.tr.Charge(trace.KindMirrorFwd, a.prof.PersistBarrier)
		a.tr.Event(trace.KindOverlapSaved, uint64(int64(a.prof.PersistBarrier)*int64(a.pendingOps-1)))
		a.st.OverlapSavedNS.Add(int64(a.prof.PersistBarrier) * int64(a.pendingOps-1))
		a.pendingOps = 0
	}
}

// ArchivedOp is one replayable operation from the archive stream.
type ArchivedOp struct {
	Slot uint16
	Rec  logrec.OpRecord
}

// Ops decodes the full archived stream in append order. Front-ends replay
// it through normal data-structure operations to rebuild a lost back-end.
func (a *Archive) Ops() ([]ArchivedOp, error) {
	a.mu.Lock()
	tail := a.tail
	a.mu.Unlock()
	var out []ArchivedOp
	off := uint64(archiveHdr)
	end := archiveHdr + tail
	hdr := make([]byte, frameOverhead)
	// A primary that power-failed mid-run resumes its archive scan at the
	// recovered watermark, which may re-forward records the pre-crash scan
	// already sent. Per-slot op-log offsets only grow, so a frame whose
	// Abs falls below the slot's high-water mark is such a replayed
	// duplicate; drop it instead of re-executing the operation.
	next := make(map[uint16]uint64)
	for off < end {
		if err := a.dev.ReadAt(off, hdr); err != nil {
			return nil, err
		}
		n := binary.LittleEndian.Uint32(hdr[0:])
		slot := binary.LittleEndian.Uint16(hdr[4:])
		body := make([]byte, n)
		if err := a.dev.ReadAt(off+frameOverhead, body); err != nil {
			return nil, err
		}
		// Frames hold verbatim op records; their embedded Abs offsets
		// refer to the primary's op-log area, which the decoder checks.
		rec, used, err := decodeArchivedOp(body)
		if err != nil {
			return nil, fmt.Errorf("mirror: corrupt archive frame at %d: %w", off, err)
		}
		if rec.Abs >= next[slot] {
			out = append(out, ArchivedOp{Slot: slot, Rec: rec})
			next[slot] = rec.Abs + uint64(used)
		}
		off += frameOverhead + uint64(n)
	}
	return out, nil
}

// decodeArchivedOp decodes an op record using its own embedded Abs as the
// expectation (the archive preserves records verbatim; the checksum still
// guards integrity).
func decodeArchivedOp(body []byte) (logrec.OpRecord, int, error) {
	if len(body) < 12 {
		return logrec.OpRecord{}, 0, logrec.ErrShort
	}
	abs := binary.LittleEndian.Uint64(body[4:])
	return logrec.DecodeOp(body, abs)
}
