package mirror

import (
	"bytes"
	"testing"

	"asymnvm/internal/backend"
	"asymnvm/internal/clock"
	"asymnvm/internal/core"
	"asymnvm/internal/nvm"
)

var prof = clock.ZeroProfile()

var smallOpts = core.CreateOptions{MemLogSize: 256 << 10, OpLogSize: 128 << 10}

func newPrimary(t *testing.T) (*backend.Backend, *nvm.Device) {
	t.Helper()
	dev := nvm.NewDevice(16 << 20)
	bk, err := backend.New(dev, backend.Options{ID: 0, Profile: &prof})
	if err != nil {
		t.Fatal(err)
	}
	return bk, dev
}

func writeOps(t *testing.T, bk *backend.Backend, name string, vals []byte) (uint64, *core.Handle) {
	t.Helper()
	fe := core.NewFrontend(core.FrontendOptions{ID: 1, Mode: core.ModeR(), Profile: &prof})
	c, err := fe.Connect(bk)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Create(name, backend.TypeBST, smallOpts)
	if err != nil {
		t.Fatal(err)
	}
	node, err := h.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if _, err := h.OpLog(1, []byte{v}); err != nil {
			t.Fatal(err)
		}
		if err := h.Write(node, bytes.Repeat([]byte{v}, 64)); err != nil {
			t.Fatal(err)
		}
		if err := h.WriteRoot(node); err != nil {
			t.Fatal(err)
		}
		if err := h.EndOp(); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Drain(); err != nil {
		t.Fatal(err)
	}
	return node, h
}

func TestReplicaPromotion(t *testing.T) {
	bk, _ := newPrimary(t)
	bk.Start()
	mdev := nvm.NewDevice(16 << 20)
	rep, err := NewReplica(mdev, bk, backend.Options{Profile: &prof})
	if err != nil {
		t.Fatal(err)
	}
	node, _ := writeOps(t, bk, "repl", []byte{1, 2, 3})
	bk.Stop() // drains: replication forwarded, mirror kicked
	if err := bk.ReplicationError(); err != nil {
		t.Fatal(err)
	}

	// Primary is gone for good; promote the replica.
	nb, err := rep.Promote(backend.Options{Profile: &prof})
	if err != nil {
		t.Fatal(err)
	}
	nb.Start()
	defer nb.Stop()
	if nb.ID() != bk.ID() {
		t.Fatal("promoted back-end must keep the primary's node id")
	}
	fe := core.NewFrontend(core.FrontendOptions{ID: 2, Mode: core.ModeR(), Profile: &prof})
	c, err := fe.Connect(nb)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Open("repl", false)
	if err != nil {
		t.Fatal(err)
	}
	root, err := h.ReadRoot()
	if err != nil {
		t.Fatal(err)
	}
	if root != node {
		t.Fatalf("promoted root %#x, want %#x", root, node)
	}
	got, err := h.Read(node, 64, false)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 {
		t.Fatalf("promoted replica holds %d, want last committed 3", got[0])
	}
}

func TestReplicaContinuesAfterPromotion(t *testing.T) {
	bk, _ := newPrimary(t)
	bk.Start()
	mdev := nvm.NewDevice(16 << 20)
	rep, err := NewReplica(mdev, bk, backend.Options{Profile: &prof})
	if err != nil {
		t.Fatal(err)
	}
	writeOps(t, bk, "cont", []byte{7})
	bk.Stop()

	nb, err := rep.Promote(backend.Options{Profile: &prof})
	if err != nil {
		t.Fatal(err)
	}
	nb.Start()
	defer nb.Stop()
	// The new primary accepts new writers.
	fe := core.NewFrontend(core.FrontendOptions{ID: 3, Mode: core.ModeR(), Profile: &prof})
	c, err := fe.Connect(nb)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Open("cont", true)
	if err != nil {
		t.Fatal(err)
	}
	node, err := h.ReadRoot()
	if err != nil || node == 0 {
		t.Fatalf("root: %#x err=%v", node, err)
	}
	if _, err := h.OpLog(1, []byte{8}); err != nil {
		t.Fatal(err)
	}
	if err := h.Write(node, bytes.Repeat([]byte{8}, 64)); err != nil {
		t.Fatal(err)
	}
	if err := h.EndOp(); err != nil {
		t.Fatal(err)
	}
	if err := h.Drain(); err != nil {
		t.Fatal(err)
	}
	got, _ := h.Read(node, 64, false)
	if got[0] != 8 {
		t.Fatal("write on promoted back-end lost")
	}
}

func TestArchiveCollectsOps(t *testing.T) {
	bk, _ := newPrimary(t)
	bk.Start()
	adev := nvm.NewDevice(4 << 20)
	arch, err := NewArchive(adev, bk, nil, nil, prof)
	if err != nil {
		t.Fatal(err)
	}
	writeOps(t, bk, "arch", []byte{1, 2, 3, 4, 5})
	bk.Stop()
	if err := bk.ReplicationError(); err != nil {
		t.Fatal(err)
	}
	ops, err := arch.Ops()
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 5 {
		t.Fatalf("archived %d ops, want 5", len(ops))
	}
	for i, op := range ops {
		if op.Rec.OpType != 1 || len(op.Rec.Params) != 1 || op.Rec.Params[0] != byte(i+1) {
			t.Fatalf("op %d malformed: %+v", i, op.Rec)
		}
	}
}

func TestArchiveSurvivesReopen(t *testing.T) {
	bk, _ := newPrimary(t)
	bk.Start()
	adev := nvm.NewDevice(4 << 20)
	if _, err := NewArchive(adev, bk, nil, nil, prof); err != nil {
		t.Fatal(err)
	}
	writeOps(t, bk, "persist", []byte{9, 9})
	bk.Stop()

	arch2, err := NewArchive(adev, nil, nil, nil, prof)
	if err != nil {
		t.Fatal(err)
	}
	ops, err := arch2.Ops()
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 2 {
		t.Fatalf("reopened archive has %d ops, want 2", len(ops))
	}
}
