// Package arena provides the buffer-reuse primitives behind the
// zero-allocation encode/decode paths: a single-owner bump allocator
// for decode scratch (values parsed out of log records live exactly one
// replay iteration) and a concurrency-safe frame pool for wire buffers
// that cross goroutines (serve's pooled outbound frames).
package arena

import "sync"

// chunkSize is the default arena chunk. Log-record values and request
// payloads are bounded well below it, so one chunk serves the common
// case and oversized allocations get a dedicated chunk.
const chunkSize = 64 << 10

// Arena is a chunked bump allocator owned by a single goroutine.
// Alloc carves slices out of the current chunk; Reset recycles every
// chunk without freeing, so a steady-state decode loop stops touching
// the heap entirely. Slices returned by Alloc are valid until the next
// Reset — callers own that lifetime contract.
type Arena struct {
	chunks [][]byte
	cur    int // index of the chunk being bumped
	off    int // bump offset inside chunks[cur]
}

// Alloc returns an n-byte slice backed by the arena. Contents are
// unspecified (callers overwrite); the slice aliases arena memory and
// dies at Reset.
func (a *Arena) Alloc(n int) []byte {
	if n == 0 {
		return nil
	}
	for a.cur < len(a.chunks) {
		c := a.chunks[a.cur]
		if a.off+n <= len(c) {
			b := c[a.off : a.off+n : a.off+n]
			a.off += n
			return b
		}
		a.cur++
		a.off = 0
	}
	size := chunkSize
	if n > size {
		size = n
	}
	c := make([]byte, size)
	a.chunks = append(a.chunks, c)
	a.cur = len(a.chunks) - 1
	a.off = n
	return c[0:n:n]
}

// Copy is Alloc plus a copy of src — the common "retain these decoded
// bytes for the rest of this iteration" step.
func (a *Arena) Copy(src []byte) []byte {
	b := a.Alloc(len(src))
	copy(b, src)
	return b
}

// Reset invalidates every slice handed out since the last Reset and
// makes the arena's memory reusable. Chunks are kept.
func (a *Arena) Reset() {
	a.cur = 0
	a.off = 0
}

// Cap reports the total bytes the arena currently holds across chunks
// (observability; grows monotonically until the arena is dropped).
func (a *Arena) Cap() int {
	n := 0
	for _, c := range a.chunks {
		n += len(c)
	}
	return n
}

// Pool recycles wire-frame byte slices across goroutines: the serve
// executor encodes a response into a pooled frame, the connection's
// writer goroutine writes it and puts it back. Get returns a zero-length
// slice with at least the requested capacity, so callers append into it
// and never see stale bytes.
type Pool struct {
	p sync.Pool
}

// minFrameCap keeps tiny first requests from seeding the pool with
// useless capacities.
const minFrameCap = 512

// Get returns a frame with len 0 and cap >= n.
func (p *Pool) Get(n int) []byte {
	if v := p.p.Get(); v != nil {
		b := v.([]byte)
		if cap(b) >= n {
			return b[:0]
		}
		// Too small for this caller; drop it and allocate fresh.
	}
	if n < minFrameCap {
		n = minFrameCap
	}
	return make([]byte, 0, n)
}

// Put recycles a frame obtained from Get once no goroutine references
// it anymore.
func (p *Pool) Put(b []byte) {
	if cap(b) == 0 {
		return
	}
	p.p.Put(b[:0]) //nolint:staticcheck // slice header boxing is the accepted cost
}
