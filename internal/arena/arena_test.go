package arena

import (
	"bytes"
	"testing"
)

func TestArenaAllocAndReset(t *testing.T) {
	var a Arena
	b1 := a.Alloc(16)
	if len(b1) != 16 {
		t.Fatalf("len = %d, want 16", len(b1))
	}
	copy(b1, bytes.Repeat([]byte{0xAA}, 16))
	b2 := a.Copy([]byte("hello"))
	if string(b2) != "hello" {
		t.Fatalf("copy = %q", b2)
	}
	// Distinct allocations must not alias.
	b1[0] = 0x11
	if b2[0] != 'h' {
		t.Fatal("allocations alias")
	}
	a.Reset()
	b3 := a.Alloc(16)
	// After reset the same memory comes back (chunk reuse).
	if &b3[0] != &b1[0] {
		t.Fatal("reset did not recycle the first chunk")
	}
}

func TestArenaOversizedAlloc(t *testing.T) {
	var a Arena
	big := a.Alloc(chunkSize * 2)
	if len(big) != chunkSize*2 {
		t.Fatalf("len = %d", len(big))
	}
	small := a.Alloc(8)
	if len(small) != 8 {
		t.Fatalf("len = %d", len(small))
	}
	if a.Cap() < chunkSize*2 {
		t.Fatalf("cap = %d", a.Cap())
	}
}

func TestArenaAllocBoundsCapacity(t *testing.T) {
	var a Arena
	b := a.Alloc(8)
	if cap(b) != 8 {
		// Full-slice expressions must clip capacity so append on an
		// arena slice cannot scribble over a neighbour.
		t.Fatalf("cap = %d, want 8", cap(b))
	}
}

func TestArenaSteadyStateZeroAlloc(t *testing.T) {
	var a Arena
	// Warm: one pass allocates the chunk.
	a.Alloc(1024)
	a.Reset()
	if allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 16; i++ {
			a.Alloc(64)
		}
		a.Reset()
	}); allocs != 0 {
		t.Fatalf("steady-state arena allocates %.1f/op, want 0", allocs)
	}
}

func TestPoolRoundTrip(t *testing.T) {
	var p Pool
	b := p.Get(100)
	if len(b) != 0 || cap(b) < 100 {
		t.Fatalf("get: len=%d cap=%d", len(b), cap(b))
	}
	b = append(b, []byte("payload")...)
	p.Put(b)
	b2 := p.Get(4)
	if len(b2) != 0 {
		t.Fatalf("recycled frame has len %d, want 0", len(b2))
	}
}

func TestPoolZeroValueUsable(t *testing.T) {
	var p Pool
	p.Put(nil) // must not panic or poison the pool
	if b := p.Get(1); cap(b) < 1 {
		t.Fatal("get after nil put returned unusable frame")
	}
}
