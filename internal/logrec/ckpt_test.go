package logrec

import (
	"errors"
	"testing"
)

func seedCkpt() *CkptRecord {
	return &CkptRecord{
		DSSlot:     5,
		Seq:        17,
		Epoch:      3,
		LPN:        1 << 20,
		OPN:        1 << 18,
		AreaDigest: AreaDigest(4096, 8<<20, 4096+8<<20, 2<<20),
	}
}

func TestCkptRoundTrip(t *testing.T) {
	rec := seedCkpt()
	enc := rec.Encode()
	if len(enc) != CkptSlotSize {
		t.Fatalf("encoded length %d, want slot size %d", len(enc), CkptSlotSize)
	}
	got, err := DecodeCkpt(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got != *rec {
		t.Fatalf("round trip changed the record: %+v vs %+v", *rec, got)
	}
}

// TestCkptRejectsDamage covers the failure classes recovery must survive:
// a never-written (zeroed) slot, a torn slot holding only a prefix of the
// record, a flipped magic byte, and a bit flip inside the payload.
func TestCkptRejectsDamage(t *testing.T) {
	enc := seedCkpt().Encode()

	if _, err := DecodeCkpt(make([]byte, CkptSlotSize)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("zeroed slot: got %v, want ErrBadMagic", err)
	}
	if _, err := DecodeCkpt(nil); !errors.Is(err, ErrShort) {
		t.Fatalf("empty slot: got %v, want ErrShort", err)
	}
	if _, err := DecodeCkpt(enc[:ckptWireLen/2]); !errors.Is(err, ErrShort) {
		t.Fatalf("torn slot: got %v, want ErrShort", err)
	}

	// A torn write that still fills the slot (zero tail) must fail the CRC.
	torn := make([]byte, CkptSlotSize)
	copy(torn, enc[:24])
	if _, err := DecodeCkpt(torn); !errors.Is(err, ErrBadCRC) {
		t.Fatalf("zero-padded torn slot: got %v, want ErrBadCRC", err)
	}

	bad := append([]byte(nil), enc...)
	bad[0] ^= 0xFF
	if _, err := DecodeCkpt(bad); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("flipped magic: got %v, want ErrBadMagic", err)
	}

	flip := append([]byte(nil), enc...)
	flip[20] ^= 0x04 // inside the LPN field
	if _, err := DecodeCkpt(flip); !errors.Is(err, ErrBadCRC) {
		t.Fatalf("payload bit flip: got %v, want ErrBadCRC", err)
	}
}

// TestAreaDigestDistinguishesGeometry pins that a checkpoint taken against
// one log-area layout cannot be mistaken for another: recovery compares
// the recorded digest against the aux block's geometry.
func TestAreaDigestDistinguishesGeometry(t *testing.T) {
	a := AreaDigest(4096, 8<<20, 4096+8<<20, 2<<20)
	for _, d := range []uint32{
		AreaDigest(8192, 8<<20, 4096+8<<20, 2<<20),
		AreaDigest(4096, 4<<20, 4096+8<<20, 2<<20),
		AreaDigest(4096, 8<<20, 4096+8<<20, 1<<20),
	} {
		if d == a {
			t.Fatal("distinct geometries produced the same digest")
		}
	}
	if AreaDigest(4096, 8<<20, 4096+8<<20, 2<<20) != a {
		t.Fatal("digest is not deterministic")
	}
}
