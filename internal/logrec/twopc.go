// Two-phase-commit record formats. A cross-shard transaction appends a
// PrepareRecord — a full transaction body that the replayer buffers
// without applying — to every participant's memory log, then appends a
// CommitRecord (KindCommit) to the coordinator structure's log: that
// single CRC-protected record is the atomicity point. Participant logs
// then receive KindApply/KindAbort CommitRecords resolving the buffered
// prepare; the coordinator receives a KindEnd once every participant's
// decision is durable, releasing the commit record for truncation
// (presumed abort: a prepare whose commit record cannot be found is
// aborted, so only commits need coordinator-log retention).
package logrec

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"slices"

	"asymnvm/internal/arena"
)

// Record magics for the 2PC plane (disjoint from TxMagic/OpMagic/CkptMagic
// so one scan loop can dispatch on the first byte).
const (
	PrepareMagic byte = 0xB4
	CommitMagic  byte = 0xC7
)

// CommitRecord kinds.
const (
	// KindCommit in the coordinator log is the transaction's atomicity
	// point: the instant it is durable, every participant's prepared
	// body is logically committed.
	KindCommit byte = 1
	// KindEnd in the coordinator log forgets a committed transaction:
	// every participant's decision record is durable, so the commit
	// record is no longer needed for recovery.
	KindEnd byte = 2
	// KindApply in a participant log applies that participant's buffered
	// prepare.
	KindApply byte = 3
	// KindAbort in a participant log discards the buffered prepare; its
	// log bytes go to the reclaim ledger.
	KindAbort byte = 4
)

// PrepareRecord is a transaction body appended to one participant's
// memory log during phase one: identical in content to a TxRecord, plus
// the transaction id and the coordinate of the coordinator structure
// whose log holds (or will hold) the commit record. The replayer buffers
// it unapplied until a CommitRecord resolves it.
type PrepareRecord struct {
	DSSlot    uint16 // participant structure's naming-table slot
	Abs       uint64 // absolute log offset the record was appended at
	TxID      uint64 // globally unique transaction id
	CoordNode uint16 // back-end id holding the coordinator structure
	CoordSlot uint16 // coordinator structure's naming-table slot
	CoverOp   uint64 // op-log coverage once applied (see TxRecord.CoverOp)
	Entries   []MemEntry
}

// prepHeaderLen is magic(1) + dsSlot(2) + count(2) + abs(8) + txid(8) +
// coordNode(2) + coordSlot(2) + coverOp(8) + bodyLen(4).
const prepHeaderLen = 1 + 2 + 2 + 8 + 8 + 2 + 2 + 8 + 4

// EncodedLen reports the wire size of the record.
func (p *PrepareRecord) EncodedLen() int {
	n := prepHeaderLen
	for i := range p.Entries {
		n += p.Entries[i].EncodedLen()
	}
	return n + 1 + 4 // commit flag + crc
}

// AppendTo serializes the record onto dst and returns the extended slice,
// allocation-free given capacity, with the checksum over everything
// before it — the same wire discipline as TxRecord.AppendTo, so the
// prepare fan-out reuses the handle's tx scratch buffer.
func (p *PrepareRecord) AppendTo(dst []byte) []byte {
	n := p.EncodedLen()
	base := len(dst)
	dst = slices.Grow(dst, n)[:base+n]
	buf := dst[base:]
	buf[0] = PrepareMagic
	binary.LittleEndian.PutUint16(buf[1:], p.DSSlot)
	binary.LittleEndian.PutUint16(buf[3:], uint16(len(p.Entries)))
	binary.LittleEndian.PutUint64(buf[5:], p.Abs)
	binary.LittleEndian.PutUint64(buf[13:], p.TxID)
	binary.LittleEndian.PutUint16(buf[21:], p.CoordNode)
	binary.LittleEndian.PutUint16(buf[23:], p.CoordSlot)
	binary.LittleEndian.PutUint64(buf[25:], p.CoverOp)
	off := prepHeaderLen
	for i := range p.Entries {
		off += p.Entries[i].encode(buf[off:])
	}
	binary.LittleEndian.PutUint32(buf[prepHeaderLen-4:], uint32(off-prepHeaderLen))
	buf[off] = CommitFlag
	off++
	binary.LittleEndian.PutUint32(buf[off:], crc32.Checksum(buf[:off], castagnoli))
	return dst
}

// Encode serializes the record into a fresh buffer.
func (p *PrepareRecord) Encode() []byte {
	return p.AppendTo(make([]byte, 0, p.EncodedLen()))
}

// DecodePrepare parses one prepare record from src, verifying the
// embedded absolute offset against expectAbs and the checksum.
func DecodePrepare(src []byte, expectAbs uint64) (PrepareRecord, int, error) {
	var p PrepareRecord
	n, err := DecodePrepareInto(&p, src, expectAbs, nil)
	if err != nil {
		return PrepareRecord{}, 0, err
	}
	return p, n, nil
}

// DecodePrepareInto parses one prepare record into *p, reusing p's
// Entries backing array across calls. When a is non-nil, inline entry
// values are copied into the arena instead of the heap (valid until the
// arena's next Reset), keeping the replayer's scan loop allocation-free.
// On error *p is left in an unspecified state.
func DecodePrepareInto(p *PrepareRecord, src []byte, expectAbs uint64, a *arena.Arena) (int, error) {
	if len(src) < prepHeaderLen {
		return 0, ErrShort
	}
	if src[0] != PrepareMagic {
		return 0, ErrBadMagic
	}
	p.DSSlot = binary.LittleEndian.Uint16(src[1:])
	count := int(binary.LittleEndian.Uint16(src[3:]))
	p.Abs = binary.LittleEndian.Uint64(src[5:])
	p.TxID = binary.LittleEndian.Uint64(src[13:])
	p.CoordNode = binary.LittleEndian.Uint16(src[21:])
	p.CoordSlot = binary.LittleEndian.Uint16(src[23:])
	p.CoverOp = binary.LittleEndian.Uint64(src[25:])
	bodyLen := int(binary.LittleEndian.Uint32(src[33:]))
	if p.Abs != expectAbs {
		return 0, ErrBadAbs
	}
	end := prepHeaderLen + bodyLen
	if bodyLen < 0 || len(src) < end+5 {
		return 0, ErrShort
	}
	if src[end] != CommitFlag {
		return 0, ErrNoCommit
	}
	want := binary.LittleEndian.Uint32(src[end+1:])
	if crc32.Checksum(src[:end+1], castagnoli) != want {
		return 0, ErrBadCRC
	}
	off := prepHeaderLen
	p.Entries = slices.Grow(p.Entries[:0], count)
	for i := 0; i < count; i++ {
		p.Entries = p.Entries[:i+1]
		n, err := decodeMemEntry(&p.Entries[i], src[off:end], a)
		if err != nil {
			return 0, err
		}
		off += n
	}
	if off != end {
		return 0, fmt.Errorf("logrec: prepare body length mismatch: %d != %d", off, end)
	}
	return end + 5, nil
}

// CommitRecord is a fixed-size 2PC control record. In the coordinator
// log, KindCommit is the atomicity point and KindEnd forgets a finished
// transaction; in a participant log, KindApply/KindAbort resolve that
// participant's buffered prepare. CoverOp carries the op-log coverage
// the resolution establishes (KindApply: the prepare's coverage;
// KindAbort: past the aborted transaction's op records, so presumed
// abort never re-executes them); it is zero for coordinator kinds.
type CommitRecord struct {
	Kind    byte
	DSSlot  uint16
	Abs     uint64 // absolute log offset the record was appended at
	TxID    uint64
	CoverOp uint64
}

// commitWireLen is magic(1) + kind(1) + dsSlot(2) + abs(8) + txid(8) +
// coverOp(8) + crc(4).
const commitWireLen = 1 + 1 + 2 + 8 + 8 + 8 + 4

// EncodedLen reports the wire size of the record.
func (c *CommitRecord) EncodedLen() int { return commitWireLen }

// AppendTo serializes the record onto dst and returns the extended
// slice, allocation-free given capacity.
func (c *CommitRecord) AppendTo(dst []byte) []byte {
	base := len(dst)
	dst = slices.Grow(dst, commitWireLen)[:base+commitWireLen]
	buf := dst[base:]
	buf[0] = CommitMagic
	buf[1] = c.Kind
	binary.LittleEndian.PutUint16(buf[2:], c.DSSlot)
	binary.LittleEndian.PutUint64(buf[4:], c.Abs)
	binary.LittleEndian.PutUint64(buf[12:], c.TxID)
	binary.LittleEndian.PutUint64(buf[20:], c.CoverOp)
	binary.LittleEndian.PutUint32(buf[28:], crc32.Checksum(buf[:28], castagnoli))
	return dst
}

// Encode serializes the record into a fresh buffer.
func (c *CommitRecord) Encode() []byte {
	return c.AppendTo(make([]byte, 0, commitWireLen))
}

// DecodeCommit parses one commit record, verifying offset and checksum.
func DecodeCommit(src []byte, expectAbs uint64) (CommitRecord, int, error) {
	var c CommitRecord
	n, err := DecodeCommitInto(&c, src, expectAbs)
	if err != nil {
		return CommitRecord{}, 0, err
	}
	return c, n, nil
}

// DecodeCommitInto parses one commit record into *c. The record holds no
// variable-length bytes, so no arena is needed and the decode never
// aliases src. On error *c is left in an unspecified state.
func DecodeCommitInto(c *CommitRecord, src []byte, expectAbs uint64) (int, error) {
	if len(src) < commitWireLen {
		return 0, ErrShort
	}
	if src[0] != CommitMagic {
		return 0, ErrBadMagic
	}
	c.Kind = src[1]
	c.DSSlot = binary.LittleEndian.Uint16(src[2:])
	c.Abs = binary.LittleEndian.Uint64(src[4:])
	c.TxID = binary.LittleEndian.Uint64(src[12:])
	c.CoverOp = binary.LittleEndian.Uint64(src[20:])
	if c.Abs != expectAbs {
		return 0, ErrBadAbs
	}
	want := binary.LittleEndian.Uint32(src[28:])
	if crc32.Checksum(src[:28], castagnoli) != want {
		return 0, ErrBadCRC
	}
	if c.Kind < KindCommit || c.Kind > KindAbort {
		return 0, fmt.Errorf("%w: commit record kind %#x", ErrBadMagic, c.Kind)
	}
	return commitWireLen, nil
}
