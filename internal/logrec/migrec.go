package logrec

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"slices"

	"asymnvm/internal/arena"
)

// Migration stream records frame the elastic-rebalancing handoff between
// two back-ends: the coordinator re-executes a structure's operation
// history on the destination ("snapshot" records), double-logs the live
// write suffix while the handoff is in flight ("suffix" records), and
// finally emits a cutover marker carrying the new partition-map version.
// Each record carries the stream sequence number it was emitted at, so a
// consumer detects reordering or replays the same way the log decoders
// detect stale records through their absolute offsets.

// MigMagic distinguishes migration stream records.
const MigMagic byte = 0x7D

// Migration record kinds.
const (
	// MigSnap carries one operation record of the source structure's
	// history, re-executed on the destination to rebuild its state.
	MigSnap uint8 = 1
	// MigSuffix carries one double-logged live operation committed on the
	// source while the handoff was in flight.
	MigSuffix uint8 = 2
	// MigCutover is the epoch fence: the map version in Epoch became
	// authoritative and the source stopped accepting writes. No payload.
	MigCutover uint8 = 3
)

// MigRecord is one migration stream record.
type MigRecord struct {
	Kind    uint8
	Slot    uint16 // source naming-table slot of the migrating structure
	Seq     uint64 // position in the migration stream (0-based, dense)
	Epoch   uint64 // partition-map version this stream targets
	Payload []byte // verbatim op record (Snap/Suffix); empty for Cutover
}

// migHeaderLen is magic(1) + kind(1) + slot(2) + seq(8) + epoch(8) + plen(4).
const migHeaderLen = 1 + 1 + 2 + 8 + 8 + 4

// EncodedLen reports the wire size of the record.
func (m *MigRecord) EncodedLen() int { return migHeaderLen + len(m.Payload) + 4 }

// AppendTo serializes the record (with its trailing checksum) onto dst and
// returns the extended slice, allocation-free given capacity — the same
// contract as the log record encoders, so the streaming path can reuse
// one wire buffer per record.
func (m *MigRecord) AppendTo(dst []byte) []byte {
	n := m.EncodedLen()
	base := len(dst)
	dst = slices.Grow(dst, n)[:base+n]
	buf := dst[base:]
	buf[0] = MigMagic
	buf[1] = m.Kind
	binary.LittleEndian.PutUint16(buf[2:], m.Slot)
	binary.LittleEndian.PutUint64(buf[4:], m.Seq)
	binary.LittleEndian.PutUint64(buf[12:], m.Epoch)
	binary.LittleEndian.PutUint32(buf[20:], uint32(len(m.Payload)))
	copy(buf[migHeaderLen:], m.Payload)
	binary.LittleEndian.PutUint32(buf[migHeaderLen+len(m.Payload):],
		crc32.Checksum(buf[:migHeaderLen+len(m.Payload)], castagnoli))
	return dst
}

// Encode serializes the record into a fresh buffer.
func (m *MigRecord) Encode() []byte {
	return m.AppendTo(make([]byte, 0, m.EncodedLen()))
}

// DecodeMig parses one migration record, verifying the checksum and the
// embedded sequence number against expectSeq (a replayed or reordered
// record surfaces as ErrBadAbs, like a stale log record).
func DecodeMig(src []byte, expectSeq uint64) (MigRecord, int, error) {
	var m MigRecord
	n, err := DecodeMigInto(&m, src, expectSeq, nil)
	if err != nil {
		return MigRecord{}, 0, err
	}
	return m, n, nil
}

// DecodeMigInto parses one migration record into *m. When a is non-nil the
// payload is copied into the arena (valid until its next Reset) instead of
// the heap, keeping the import loop allocation-free in steady state.
func DecodeMigInto(m *MigRecord, src []byte, expectSeq uint64, a *arena.Arena) (int, error) {
	if len(src) < migHeaderLen {
		return 0, ErrShort
	}
	if src[0] != MigMagic {
		return 0, ErrBadMagic
	}
	kind := src[1]
	if kind < MigSnap || kind > MigCutover {
		return 0, fmt.Errorf("%w: migration record kind %#x", ErrBadMagic, kind)
	}
	m.Kind = kind
	m.Slot = binary.LittleEndian.Uint16(src[2:])
	m.Seq = binary.LittleEndian.Uint64(src[4:])
	m.Epoch = binary.LittleEndian.Uint64(src[12:])
	plen := int(binary.LittleEndian.Uint32(src[20:]))
	if m.Seq != expectSeq {
		return 0, ErrBadAbs
	}
	end := migHeaderLen + plen
	if plen < 0 || len(src) < end+4 {
		return 0, ErrShort
	}
	want := binary.LittleEndian.Uint32(src[end:])
	if crc32.Checksum(src[:end], castagnoli) != want {
		return 0, ErrBadCRC
	}
	if kind == MigCutover && plen != 0 {
		return 0, fmt.Errorf("%w: cutover record with %d payload bytes", ErrBadMagic, plen)
	}
	if plen == 0 {
		m.Payload = nil
	} else if a != nil {
		m.Payload = a.Copy(src[migHeaderLen:end])
	} else {
		m.Payload = append([]byte(nil), src[migHeaderLen:end]...)
	}
	return end + 4, nil
}
