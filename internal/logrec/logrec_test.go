package logrec

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMemEntryInlineRoundTrip(t *testing.T) {
	e := MemEntry{Flag: FlagInline, Addr: 0x1234, Len: 5, Value: []byte("abcde")}
	buf := make([]byte, e.EncodedLen())
	n := e.encode(buf)
	if n != len(buf) {
		t.Fatalf("encode wrote %d, want %d", n, len(buf))
	}
	var got MemEntry
	m, err := decodeMemEntry(&got, buf, nil)
	if err != nil || m != n {
		t.Fatalf("decode: %v consumed=%d", err, m)
	}
	if got.Addr != e.Addr || !bytes.Equal(got.Value, e.Value) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestMemEntryOpRefRoundTrip(t *testing.T) {
	e := MemEntry{Flag: FlagOpRef, Addr: 99, Len: 64, OpAbs: 777, SrcOff: 16}
	buf := make([]byte, e.EncodedLen())
	e.encode(buf)
	var got MemEntry
	_, err := decodeMemEntry(&got, buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.OpAbs != 777 || got.SrcOff != 16 || got.Len != 64 {
		t.Fatalf("op-ref round trip mismatch: %+v", got)
	}
}

func TestTxRecordRoundTrip(t *testing.T) {
	tx := TxRecord{
		DSSlot: 3,
		Abs:    4096,
		Entries: []MemEntry{
			{Flag: FlagInline, Addr: 10, Len: 3, Value: []byte{1, 2, 3}},
			{Flag: FlagOpRef, Addr: 20, Len: 8, OpAbs: 123, SrcOff: 4},
		},
	}
	wire := tx.Encode()
	got, n, err := DecodeTx(wire, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(wire) {
		t.Fatalf("consumed %d, want %d", n, len(wire))
	}
	if got.DSSlot != 3 || len(got.Entries) != 2 || got.Entries[1].OpAbs != 123 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestTxRecordDetectsCorruption(t *testing.T) {
	tx := TxRecord{Abs: 0, Entries: []MemEntry{{Flag: FlagInline, Addr: 1, Len: 1, Value: []byte{9}}}}
	wire := tx.Encode()
	// Flip a body byte: checksum must catch it.
	wire[len(wire)-6] ^= 0xFF
	if _, _, err := DecodeTx(wire, 0); err == nil {
		t.Fatal("corrupted record must not decode")
	}
}

func TestTxRecordStaleOffset(t *testing.T) {
	tx := TxRecord{Abs: 100}
	wire := tx.Encode()
	if _, _, err := DecodeTx(wire, 200); err != ErrBadAbs {
		t.Fatalf("stale record must report ErrBadAbs, got %v", err)
	}
}

func TestTxRecordTruncated(t *testing.T) {
	tx := TxRecord{Abs: 0, Entries: []MemEntry{{Flag: FlagInline, Addr: 1, Len: 100, Value: make([]byte, 100)}}}
	wire := tx.Encode()
	for _, cut := range []int{1, 5, txHeaderLen, len(wire) - 1} {
		if _, _, err := DecodeTx(wire[:cut], 0); err == nil {
			t.Fatalf("truncated to %d bytes must not decode", cut)
		}
	}
}

func TestOpRecordRoundTrip(t *testing.T) {
	o := OpRecord{DSSlot: 9, OpType: 2, Abs: 555, Params: []byte("params!")}
	wire := o.Encode()
	got, n, err := DecodeOp(wire, 555)
	if err != nil || n != len(wire) {
		t.Fatalf("decode: %v n=%d", err, n)
	}
	if got.OpType != 2 || !bytes.Equal(got.Params, []byte("params!")) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestOpRecordCorruption(t *testing.T) {
	o := OpRecord{Abs: 0, Params: []byte{1, 2, 3, 4}}
	wire := o.Encode()
	wire[opHeaderLen] ^= 1
	if _, _, err := DecodeOp(wire, 0); err == nil {
		t.Fatal("corrupted op record must not decode")
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, _, err := DecodeTx([]byte{0, 0, 0}, 0); err == nil {
		t.Fatal("garbage must not decode as tx")
	}
	if _, _, err := DecodeOp(bytes.Repeat([]byte{0xFF}, 64), 0); err == nil {
		t.Fatal("garbage must not decode as op")
	}
	zeros := make([]byte, 64)
	if _, _, err := DecodeTx(zeros, 0); err == nil {
		t.Fatal("zeroed space must not decode as tx")
	}
}

// Property: arbitrary tx records round-trip.
func TestQuickTxRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(slot uint16, abs uint64, nEntries uint8) bool {
		tx := TxRecord{DSSlot: slot, Abs: abs}
		for i := 0; i < int(nEntries%16); i++ {
			vl := rng.Intn(200)
			v := make([]byte, vl)
			rng.Read(v)
			tx.Entries = append(tx.Entries, MemEntry{
				Flag: FlagInline, Addr: rng.Uint64(), Len: uint32(vl), Value: v,
			})
		}
		wire := tx.Encode()
		got, n, err := DecodeTx(wire, abs)
		if err != nil || n != len(wire) || len(got.Entries) != len(tx.Entries) {
			return false
		}
		for i := range got.Entries {
			if got.Entries[i].Addr != tx.Entries[i].Addr ||
				!bytes.Equal(got.Entries[i].Value, tx.Entries[i].Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAreaPhysAndSplit(t *testing.T) {
	a := Area{Base: 1000, Size: 100}
	if a.Phys(0) != 1000 || a.Phys(250) != 1050 {
		t.Fatalf("phys mapping wrong: %d %d", a.Phys(0), a.Phys(250))
	}
	// No wrap.
	rs := a.Split(10, 20)
	if len(rs) != 1 || rs[0].DevOff != 1010 || rs[0].Len != 20 {
		t.Fatalf("no-wrap split: %+v", rs)
	}
	// Wrap: starts at 90, 30 bytes → 10 at the end + 20 at the start.
	rs = a.Split(190, 30)
	if len(rs) != 2 || rs[0].DevOff != 1090 || rs[0].Len != 10 ||
		rs[1].DevOff != 1000 || rs[1].Len != 20 {
		t.Fatalf("wrap split: %+v", rs)
	}
}

func TestAreaFree(t *testing.T) {
	a := Area{Base: 0, Size: 100}
	if a.Free(0, 0) != 100 {
		t.Fatal("empty area must be all free")
	}
	if a.Free(0, 60) != 40 {
		t.Fatal("free accounting wrong")
	}
	if a.Free(50, 150) != 0 {
		t.Fatal("full area must report 0 free")
	}
}

func TestAreaContains(t *testing.T) {
	a := Area{Base: 10, Size: 5}
	if a.Contains(9) || !a.Contains(10) || !a.Contains(14) || a.Contains(15) {
		t.Fatal("Contains boundaries wrong")
	}
}
