package logrec

import (
	"bytes"
	"errors"
	"testing"
)

func seedMig(seq uint64) *MigRecord {
	return &MigRecord{
		Kind:    MigSnap,
		Slot:    5,
		Seq:     seq,
		Epoch:   3,
		Payload: seedOp(448).Encode(),
	}
}

func TestMigRoundTrip(t *testing.T) {
	for _, rec := range []*MigRecord{
		seedMig(0),
		seedMig(17),
		{Kind: MigSuffix, Slot: 1, Seq: 2, Epoch: 9, Payload: []byte("op-bytes")},
		{Kind: MigCutover, Slot: 1, Seq: 3, Epoch: 10},
	} {
		enc := rec.Encode()
		if len(enc) != rec.EncodedLen() {
			t.Fatalf("encoded %d bytes, EncodedLen says %d", len(enc), rec.EncodedLen())
		}
		got, n, err := DecodeMig(enc, rec.Seq)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if n != len(enc) {
			t.Fatalf("consumed %d of %d", n, len(enc))
		}
		if got.Kind != rec.Kind || got.Slot != rec.Slot || got.Seq != rec.Seq ||
			got.Epoch != rec.Epoch || !bytes.Equal(got.Payload, rec.Payload) {
			t.Fatalf("round trip changed the record: %+v vs %+v", got, *rec)
		}
	}
}

func TestMigDecodeRejects(t *testing.T) {
	enc := seedMig(7).Encode()

	if _, _, err := DecodeMig(enc[:migHeaderLen-1], 7); !errors.Is(err, ErrShort) {
		t.Fatalf("torn header: %v", err)
	}
	if _, _, err := DecodeMig(enc[:len(enc)-2], 7); !errors.Is(err, ErrShort) {
		t.Fatalf("torn trailer: %v", err)
	}
	bad := append([]byte(nil), enc...)
	bad[0] ^= 0xFF
	if _, _, err := DecodeMig(bad, 7); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("flipped magic: %v", err)
	}
	bad = append([]byte(nil), enc...)
	bad[1] = 0x7F // unknown kind
	if _, _, err := DecodeMig(bad, 7); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("unknown kind: %v", err)
	}
	bad = append([]byte(nil), enc...)
	bad[len(bad)-1] ^= 0x01
	if _, _, err := DecodeMig(bad, 7); !errors.Is(err, ErrBadCRC) {
		t.Fatalf("corrupt checksum: %v", err)
	}
	if _, _, err := DecodeMig(enc, 8); !errors.Is(err, ErrBadAbs) {
		t.Fatalf("replayed record (seq mismatch): %v", err)
	}
	// A cutover marker must not smuggle payload bytes.
	cut := &MigRecord{Kind: MigCutover, Slot: 1, Seq: 0, Epoch: 4, Payload: []byte("x")}
	if _, _, err := DecodeMig(cut.Encode(), 0); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("cutover with payload: %v", err)
	}
}

// TestMigStreamChains pins the framing property the migration stream
// relies on: records appended to one buffer decode back in sequence, with
// the dense Seq numbering acting as the reorder/replay detector.
func TestMigStreamChains(t *testing.T) {
	var buf []byte
	for seq := uint64(0); seq < 3; seq++ {
		rec := seedMig(seq)
		if seq == 2 {
			rec = &MigRecord{Kind: MigCutover, Slot: 5, Seq: seq, Epoch: 4}
		}
		buf = rec.AppendTo(buf)
	}
	pos := 0
	for seq := uint64(0); seq < 3; seq++ {
		rec, used, err := DecodeMig(buf[pos:], seq)
		if err != nil {
			t.Fatalf("record %d: %v", seq, err)
		}
		if seq == 2 && rec.Kind != MigCutover {
			t.Fatalf("record %d kind %d, want cutover", seq, rec.Kind)
		}
		pos += used
	}
	if pos != len(buf) {
		t.Fatalf("consumed %d of %d", pos, len(buf))
	}
	// Decoding record 1 with record 0's expectation is a replay: rejected.
	if _, _, err := DecodeMig(buf[seedMig(0).EncodedLen():], 0); !errors.Is(err, ErrBadAbs) {
		t.Fatalf("replayed stream record: %v", err)
	}
}
