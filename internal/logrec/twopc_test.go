package logrec

import (
	"bytes"
	"errors"
	"testing"

	"asymnvm/internal/arena"
)

func samplePrepare() PrepareRecord {
	val := make([]byte, 48)
	for i := range val {
		val[i] = byte(i * 7)
	}
	return PrepareRecord{
		DSSlot:    5,
		Abs:       8192,
		TxID:      0x1122334455667788,
		CoordNode: 2,
		CoordSlot: 9,
		CoverOp:   640,
		Entries: []MemEntry{
			{Flag: FlagInline, Addr: 0x0001000000002000, Len: 48, Value: val},
			{Flag: FlagOpRef, Addr: 0x0001000000003000, Len: 24, OpAbs: 256, SrcOff: 8},
		},
	}
}

func TestPrepareRoundTrip(t *testing.T) {
	rec := samplePrepare()
	wire := rec.Encode()
	if len(wire) != rec.EncodedLen() {
		t.Fatalf("encoded %d bytes, EncodedLen says %d", len(wire), rec.EncodedLen())
	}
	dec, n, err := DecodePrepare(wire, rec.Abs)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(wire) {
		t.Fatalf("consumed %d of %d", n, len(wire))
	}
	if dec.DSSlot != rec.DSSlot || dec.TxID != rec.TxID ||
		dec.CoordNode != rec.CoordNode || dec.CoordSlot != rec.CoordSlot ||
		dec.CoverOp != rec.CoverOp || len(dec.Entries) != len(rec.Entries) {
		t.Fatalf("round trip changed the record: %+v vs %+v", rec, dec)
	}
	if !bytes.Equal(dec.Entries[0].Value, rec.Entries[0].Value) {
		t.Fatal("entry value mismatch")
	}

	// Stale offset, torn tail, corrupt checksum.
	if _, _, err := DecodePrepare(wire, rec.Abs+1); !errors.Is(err, ErrBadAbs) {
		t.Fatalf("stale abs: %v", err)
	}
	if _, _, err := DecodePrepare(wire[:len(wire)-3], rec.Abs); !errors.Is(err, ErrShort) {
		t.Fatalf("torn tail: %v", err)
	}
	bad := append([]byte(nil), wire...)
	bad[len(bad)-1] ^= 0x40
	if _, _, err := DecodePrepare(bad, rec.Abs); !errors.Is(err, ErrBadCRC) {
		t.Fatalf("corrupt crc: %v", err)
	}
}

func TestCommitRoundTrip(t *testing.T) {
	for _, kind := range []byte{KindCommit, KindEnd, KindApply, KindAbort} {
		rec := CommitRecord{Kind: kind, DSSlot: 4, Abs: 512, TxID: 77, CoverOp: 96}
		wire := rec.Encode()
		if len(wire) != rec.EncodedLen() {
			t.Fatalf("encoded %d bytes, EncodedLen says %d", len(wire), rec.EncodedLen())
		}
		dec, n, err := DecodeCommit(wire, rec.Abs)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(wire) || dec != rec {
			t.Fatalf("round trip changed the record: %+v vs %+v (n=%d)", rec, dec, n)
		}
		if _, _, err := DecodeCommit(wire, rec.Abs+8); !errors.Is(err, ErrBadAbs) {
			t.Fatalf("stale abs: %v", err)
		}
	}
	// An out-of-range kind must be rejected even with a valid checksum.
	rec := CommitRecord{Kind: 9, Abs: 0, TxID: 1}
	if _, _, err := DecodeCommit(rec.Encode(), 0); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad kind accepted: %v", err)
	}
}

// TestPrepareDecodeIntoAliasSafety pins the arena contract: a decoded
// record's values must survive the source buffer being rewritten (the
// circular log area reuses its bytes), because DecodeInto copies them.
func TestPrepareDecodeIntoAliasSafety(t *testing.T) {
	rec := samplePrepare()
	wire := rec.Encode()
	var dec PrepareRecord
	var a arena.Arena
	if _, err := DecodePrepareInto(&dec, wire, rec.Abs, &a); err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), dec.Entries[0].Value...)
	for i := range wire {
		wire[i] = 0xFF
	}
	if !bytes.Equal(dec.Entries[0].Value, want) {
		t.Fatal("decoded value aliases the source buffer")
	}
}

func TestPrepareRoundTripZeroAllocs(t *testing.T) {
	rec := samplePrepare()
	var (
		buf []byte
		dec PrepareRecord
		a   arena.Arena
	)
	buf = rec.AppendTo(buf[:0])
	if _, err := DecodePrepareInto(&dec, buf, rec.Abs, &a); err != nil {
		t.Fatal(err)
	}
	a.Reset()

	allocs := testing.AllocsPerRun(200, func() {
		buf = rec.AppendTo(buf[:0])
		if _, err := DecodePrepareInto(&dec, buf, rec.Abs, &a); err != nil {
			t.Fatal(err)
		}
		a.Reset()
	})
	if allocs != 0 {
		t.Errorf("prepare encode+decode round trip allocates %.1f/op, want 0", allocs)
	}
	if dec.TxID != rec.TxID || len(dec.Entries) != len(rec.Entries) {
		t.Fatalf("decode mismatch: %+v", dec)
	}
}

func TestCommitRoundTripZeroAllocs(t *testing.T) {
	rec := CommitRecord{Kind: KindApply, DSSlot: 2, Abs: 1024, TxID: 42, CoverOp: 64}
	var (
		buf []byte
		dec CommitRecord
	)
	buf = rec.AppendTo(buf[:0])
	if _, err := DecodeCommitInto(&dec, buf, rec.Abs); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		buf = rec.AppendTo(buf[:0])
		if _, err := DecodeCommitInto(&dec, buf, rec.Abs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("commit encode+decode round trip allocates %.1f/op, want 0", allocs)
	}
	if dec != rec {
		t.Fatalf("decode mismatch: %+v", dec)
	}
}

// TestTwoPCChains pins the mixed-record framing the participant log
// relies on: a tx record, a prepare and its resolving commit record
// appended to one buffer decode back in sequence by magic dispatch.
func TestTwoPCChains(t *testing.T) {
	var buf []byte
	abs := uint64(0)

	tx := seedTx(0)
	buf = tx.AppendTo(buf)
	abs += uint64(tx.EncodedLen())

	prep := samplePrepare()
	prep.Abs = abs
	buf = prep.AppendTo(buf)
	abs += uint64(prep.EncodedLen())

	dec := CommitRecord{Kind: KindApply, DSSlot: prep.DSSlot, Abs: abs, TxID: prep.TxID, CoverOp: prep.CoverOp}
	buf = dec.AppendTo(buf)
	abs += uint64(dec.EncodedLen())

	pos, wantAbs := 0, uint64(0)
	wantMagic := []byte{TxMagic, PrepareMagic, CommitMagic}
	for i, magic := range wantMagic {
		if buf[pos] != magic {
			t.Fatalf("record %d magic %#x, want %#x", i, buf[pos], magic)
		}
		var used int
		var err error
		switch magic {
		case TxMagic:
			_, used, err = DecodeTx(buf[pos:], wantAbs)
		case PrepareMagic:
			_, used, err = DecodePrepare(buf[pos:], wantAbs)
		case CommitMagic:
			_, used, err = DecodeCommit(buf[pos:], wantAbs)
		}
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		pos += used
		wantAbs += uint64(used)
	}
	if pos != len(buf) || wantAbs != abs {
		t.Fatalf("consumed %d of %d (abs %d of %d)", pos, len(buf), wantAbs, abs)
	}
}
