// Package logrec implements the on-NVM log formats of the paper's Figure 3:
//
//   - memory log entries: {flag, address, length, value} pairs, where the
//     flag says whether the value is inline or a pointer into a previously
//     persisted operation log (the batching optimization of §4.3);
//   - transaction logs: a run of memory log entries terminated by a commit
//     flag and a CRC32 checksum, appended to the back-end's memory log
//     area by rnvm_tx_write and replayed in order;
//   - operation logs: {operation type, parameters, checksum} records that
//     make a single RDMA write sufficient to persist a data structure
//     operation.
//
// Records carry the absolute (monotone, non-wrapping) byte offset at which
// they were appended; when the circular log areas wrap, a stale record's
// embedded offset no longer matches its physical position, so scanning
// stops exactly at the true tail without any zeroing of reclaimed space.
package logrec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"slices"

	"asymnvm/internal/arena"
)

// Record magics distinguish record kinds and catch scans running into
// unwritten space.
const (
	TxMagic byte = 0xA5
	OpMagic byte = 0x5A
	// CommitFlag terminates a transaction body.
	CommitFlag byte = 0xC3
)

// OpTxFlag marks an op record written inside a cross-shard transaction:
// its physical effects travel in the participant's PrepareRecord, so its
// fate is decided solely by prepare resolution. Recovery must never
// re-execute it — if the prepare never became durable the transaction
// presumes abort, and re-execution would apply one shard's half.
// Consumers mask it off OpType before dispatching.
const OpTxFlag uint8 = 0x80

// Memory-log entry flags.
const (
	// FlagInline marks an entry whose value bytes are stored in the entry.
	FlagInline byte = 0x00
	// FlagOpRef marks an entry whose value lives in an already persisted
	// operation log record: the payload is {opAbs uint64, srcOff uint32}
	// and the value is params[srcOff : srcOff+Len] of that record.
	FlagOpRef byte = 0x01
)

// Errors reported by decoders.
var (
	ErrShort    = errors.New("logrec: buffer too short")
	ErrBadMagic = errors.New("logrec: bad magic")
	ErrBadCRC   = errors.New("logrec: checksum mismatch")
	ErrBadAbs   = errors.New("logrec: absolute offset mismatch (stale record)")
	ErrNoCommit = errors.New("logrec: missing commit flag")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// MemEntry is one memory log entry: write Value (or the referenced op-log
// bytes) at Addr.
type MemEntry struct {
	Flag   byte
	Addr   uint64 // global NVM address (backend id in the top 16 bits)
	Len    uint32 // length of the target range
	Value  []byte // inline value; nil when Flag==FlagOpRef
	OpAbs  uint64 // FlagOpRef: absolute offset of the op record
	SrcOff uint32 // FlagOpRef: offset of the value inside the op params
}

// EncodedLen reports the wire size of the entry.
func (e *MemEntry) EncodedLen() int {
	if e.Flag == FlagOpRef {
		return 1 + 8 + 4 + 8 + 4
	}
	return 1 + 8 + 4 + int(e.Len)
}

func (e *MemEntry) encode(dst []byte) int {
	dst[0] = e.Flag
	binary.LittleEndian.PutUint64(dst[1:], e.Addr)
	binary.LittleEndian.PutUint32(dst[9:], e.Len)
	if e.Flag == FlagOpRef {
		binary.LittleEndian.PutUint64(dst[13:], e.OpAbs)
		binary.LittleEndian.PutUint32(dst[21:], e.SrcOff)
		return 25
	}
	copy(dst[13:], e.Value[:e.Len])
	return 13 + int(e.Len)
}

// decodeMemEntry parses one entry into *e. Inline values are copied out
// of src — into a, when non-nil (the zero-alloc replay path; the copy
// dies at the arena's next Reset), onto the heap otherwise.
func decodeMemEntry(e *MemEntry, src []byte, a *arena.Arena) (int, error) {
	if len(src) < 13 {
		return 0, ErrShort
	}
	e.Flag = src[0]
	e.Addr = binary.LittleEndian.Uint64(src[1:])
	e.Len = binary.LittleEndian.Uint32(src[9:])
	e.Value = nil
	e.OpAbs, e.SrcOff = 0, 0
	if e.Flag == FlagOpRef {
		if len(src) < 25 {
			return 0, ErrShort
		}
		e.OpAbs = binary.LittleEndian.Uint64(src[13:])
		e.SrcOff = binary.LittleEndian.Uint32(src[21:])
		return 25, nil
	}
	if e.Flag != FlagInline {
		return 0, fmt.Errorf("%w: mem entry flag %#x", ErrBadMagic, e.Flag)
	}
	end := 13 + int(e.Len)
	if len(src) < end {
		return 0, ErrShort
	}
	if a != nil {
		e.Value = a.Copy(src[13:end])
	} else {
		e.Value = append([]byte(nil), src[13:end]...)
	}
	return end, nil
}

// TxRecord is one transaction in the memory log area.
type TxRecord struct {
	DSSlot uint16 // naming-table slot of the structure this tx belongs to
	Abs    uint64 // absolute log offset the record was appended at
	// CoverOp is the absolute op-log offset up to which this transaction's
	// memory logs cover the operation log: every op record below CoverOp
	// has all of its effects included in transactions up to and including
	// this one. The replayer persists it as the OPN of §5.1, and recovery
	// re-executes only op records at or above it.
	CoverOp uint64
	Entries []MemEntry
}

// txHeaderLen is magic(1) + dsSlot(2) + count(2) + abs(8) + coverOp(8) + bodyLen(4).
const txHeaderLen = 1 + 2 + 2 + 8 + 8 + 4

// EncodedLen reports the wire size of the record.
func (t *TxRecord) EncodedLen() int {
	n := txHeaderLen
	for i := range t.Entries {
		n += t.Entries[i].EncodedLen()
	}
	return n + 1 + 4 // commit flag + crc
}

// AppendTo serializes the record onto dst and returns the extended
// slice, computing the checksum over everything before it (header,
// body, commit flag). With a dst of sufficient capacity it does not
// allocate, which is what lets the front-end's flush paths chain the
// op-log group and the commit record into one reused wire buffer.
func (t *TxRecord) AppendTo(dst []byte) []byte {
	n := t.EncodedLen()
	base := len(dst)
	dst = slices.Grow(dst, n)[:base+n]
	buf := dst[base:]
	buf[0] = TxMagic
	binary.LittleEndian.PutUint16(buf[1:], t.DSSlot)
	binary.LittleEndian.PutUint16(buf[3:], uint16(len(t.Entries)))
	binary.LittleEndian.PutUint64(buf[5:], t.Abs)
	binary.LittleEndian.PutUint64(buf[13:], t.CoverOp)
	off := txHeaderLen
	for i := range t.Entries {
		off += t.Entries[i].encode(buf[off:])
	}
	binary.LittleEndian.PutUint32(buf[txHeaderLen-4:], uint32(off-txHeaderLen))
	buf[off] = CommitFlag
	off++
	binary.LittleEndian.PutUint32(buf[off:], crc32.Checksum(buf[:off], castagnoli))
	return dst
}

// Encode serializes the record into a fresh buffer.
func (t *TxRecord) Encode() []byte {
	return t.AppendTo(make([]byte, 0, t.EncodedLen()))
}

// DecodeTx parses one transaction record from src, verifying the embedded
// absolute offset against expectAbs and the checksum. It returns the
// record and the number of bytes consumed.
func DecodeTx(src []byte, expectAbs uint64) (TxRecord, int, error) {
	var t TxRecord
	n, err := DecodeTxInto(&t, src, expectAbs, nil)
	if err != nil {
		return TxRecord{}, 0, err
	}
	return t, n, nil
}

// DecodeTxInto parses one transaction record into *t, reusing t's
// Entries backing array across calls. When a is non-nil, inline entry
// values are copied into the arena instead of the heap — valid until
// the arena's next Reset — so a replay loop that resets the arena per
// transaction decodes at zero allocations in steady state. On error *t
// is left in an unspecified state.
func DecodeTxInto(t *TxRecord, src []byte, expectAbs uint64, a *arena.Arena) (int, error) {
	if len(src) < txHeaderLen {
		return 0, ErrShort
	}
	if src[0] != TxMagic {
		return 0, ErrBadMagic
	}
	t.DSSlot = binary.LittleEndian.Uint16(src[1:])
	count := int(binary.LittleEndian.Uint16(src[3:]))
	t.Abs = binary.LittleEndian.Uint64(src[5:])
	t.CoverOp = binary.LittleEndian.Uint64(src[13:])
	bodyLen := int(binary.LittleEndian.Uint32(src[21:]))
	if t.Abs != expectAbs {
		return 0, ErrBadAbs
	}
	end := txHeaderLen + bodyLen
	if bodyLen < 0 || len(src) < end+5 {
		return 0, ErrShort
	}
	if src[end] != CommitFlag {
		return 0, ErrNoCommit
	}
	want := binary.LittleEndian.Uint32(src[end+1:])
	if crc32.Checksum(src[:end+1], castagnoli) != want {
		return 0, ErrBadCRC
	}
	off := txHeaderLen
	t.Entries = slices.Grow(t.Entries[:0], count)
	for i := 0; i < count; i++ {
		t.Entries = t.Entries[:i+1]
		n, err := decodeMemEntry(&t.Entries[i], src[off:end], a)
		if err != nil {
			return 0, err
		}
		off += n
	}
	if off != end {
		return 0, fmt.Errorf("logrec: tx body length mismatch: %d != %d", off, end)
	}
	return end + 5, nil
}

// OpRecord is one operation log record: a data-structure operation with
// its parameters, self-contained enough to be re-executed during recovery.
type OpRecord struct {
	DSSlot uint16
	OpType uint8
	Abs    uint64 // absolute op-log offset the record was appended at
	Params []byte
}

// opHeaderLen is magic(1) + dsSlot(2) + opType(1) + abs(8) + paramLen(4).
const opHeaderLen = 1 + 2 + 1 + 8 + 4

// EncodedLen reports the wire size of the record.
func (o *OpRecord) EncodedLen() int { return opHeaderLen + len(o.Params) + 4 }

// ParamsWireOff is the offset of the params bytes inside the encoded
// record; FlagOpRef memory entries point at Abs+ParamsWireOff+SrcOff.
const ParamsWireOff = opHeaderLen

// AppendTo serializes the record (with its trailing checksum) onto dst
// and returns the extended slice, allocation-free given capacity. The
// front-end's OpLog hot path appends records into the group-commit
// buffer with it, replacing the encode-then-append double copy.
func (o *OpRecord) AppendTo(dst []byte) []byte {
	n := o.EncodedLen()
	base := len(dst)
	dst = slices.Grow(dst, n)[:base+n]
	buf := dst[base:]
	buf[0] = OpMagic
	binary.LittleEndian.PutUint16(buf[1:], o.DSSlot)
	buf[3] = o.OpType
	binary.LittleEndian.PutUint64(buf[4:], o.Abs)
	binary.LittleEndian.PutUint32(buf[12:], uint32(len(o.Params)))
	copy(buf[opHeaderLen:], o.Params)
	binary.LittleEndian.PutUint32(buf[opHeaderLen+len(o.Params):],
		crc32.Checksum(buf[:opHeaderLen+len(o.Params)], castagnoli))
	return dst
}

// Encode serializes the record into a fresh buffer.
func (o *OpRecord) Encode() []byte {
	return o.AppendTo(make([]byte, 0, o.EncodedLen()))
}

// DecodeOp parses one operation record, verifying offset and checksum.
func DecodeOp(src []byte, expectAbs uint64) (OpRecord, int, error) {
	var o OpRecord
	n, err := DecodeOpInto(&o, src, expectAbs, nil)
	if err != nil {
		return OpRecord{}, 0, err
	}
	return o, n, nil
}

// DecodeOpInto parses one operation record into *o. When a is non-nil
// the params are copied into the arena (valid until its next Reset)
// instead of the heap, making the back-end's op-log scan loop
// allocation-free in steady state.
func DecodeOpInto(o *OpRecord, src []byte, expectAbs uint64, a *arena.Arena) (int, error) {
	if len(src) < opHeaderLen {
		return 0, ErrShort
	}
	if src[0] != OpMagic {
		return 0, ErrBadMagic
	}
	o.DSSlot = binary.LittleEndian.Uint16(src[1:])
	o.OpType = src[3]
	o.Abs = binary.LittleEndian.Uint64(src[4:])
	plen := int(binary.LittleEndian.Uint32(src[12:]))
	if o.Abs != expectAbs {
		return 0, ErrBadAbs
	}
	end := opHeaderLen + plen
	if plen < 0 || len(src) < end+4 {
		return 0, ErrShort
	}
	want := binary.LittleEndian.Uint32(src[end:])
	if crc32.Checksum(src[:end], castagnoli) != want {
		return 0, ErrBadCRC
	}
	if a != nil {
		o.Params = a.Copy(src[opHeaderLen:end])
	} else {
		o.Params = append([]byte(nil), src[opHeaderLen:end]...)
	}
	return end + 4, nil
}
