package logrec

import (
	"testing"

	"asymnvm/internal/arena"
)

// The allocation ceilings here are the CI gate for the zero-alloc
// encode/decode contract: AppendTo into a reused buffer and DecodeInto
// with an arena must not touch the heap in steady state. AllocsPerRun
// is deterministic (unlike ns/op), so these run in plain `go test`;
// wall-clock speed is measured separately by `make bench-cpu`.

func sampleTx() TxRecord {
	val := make([]byte, 64)
	for i := range val {
		val[i] = byte(i)
	}
	return TxRecord{
		DSSlot:  7,
		Abs:     4096,
		CoverOp: 512,
		Entries: []MemEntry{
			{Flag: FlagInline, Addr: 0x0001000000002000, Len: 64, Value: val},
			{Flag: FlagOpRef, Addr: 0x0001000000003000, Len: 32, OpAbs: 128, SrcOff: 8},
			{Flag: FlagInline, Addr: 0x0001000000004000, Len: 16, Value: val[:16]},
		},
	}
}

func TestTxRoundTripZeroAllocs(t *testing.T) {
	rec := sampleTx()
	var (
		buf []byte
		dec TxRecord
		a   arena.Arena
	)
	// Warm: first pass sizes buf, dec.Entries and the arena chunk.
	buf = rec.AppendTo(buf[:0])
	if _, err := DecodeTxInto(&dec, buf, rec.Abs, &a); err != nil {
		t.Fatal(err)
	}
	a.Reset()

	allocs := testing.AllocsPerRun(200, func() {
		buf = rec.AppendTo(buf[:0])
		if _, err := DecodeTxInto(&dec, buf, rec.Abs, &a); err != nil {
			t.Fatal(err)
		}
		a.Reset()
	})
	if allocs != 0 {
		t.Errorf("tx encode+decode round trip allocates %.1f/op, want 0", allocs)
	}
	// The reused decode must still be faithful.
	if dec.DSSlot != rec.DSSlot || dec.CoverOp != rec.CoverOp || len(dec.Entries) != len(rec.Entries) {
		t.Fatalf("decode mismatch: %+v", dec)
	}
	if string(dec.Entries[0].Value) != string(rec.Entries[0].Value) {
		t.Fatal("entry value mismatch")
	}
}

func TestOpRoundTripZeroAllocs(t *testing.T) {
	params := make([]byte, 128)
	for i := range params {
		params[i] = byte(i * 3)
	}
	rec := OpRecord{DSSlot: 3, OpType: 9, Abs: 2048, Params: params}
	var (
		buf []byte
		dec OpRecord
		a   arena.Arena
	)
	buf = rec.AppendTo(buf[:0])
	if _, err := DecodeOpInto(&dec, buf, rec.Abs, &a); err != nil {
		t.Fatal(err)
	}
	a.Reset()

	allocs := testing.AllocsPerRun(200, func() {
		buf = rec.AppendTo(buf[:0])
		if _, err := DecodeOpInto(&dec, buf, rec.Abs, &a); err != nil {
			t.Fatal(err)
		}
		a.Reset()
	})
	if allocs != 0 {
		t.Errorf("op encode+decode round trip allocates %.1f/op, want 0", allocs)
	}
	if dec.OpType != rec.OpType || string(dec.Params) != string(rec.Params) {
		t.Fatalf("decode mismatch: %+v", dec)
	}
}

func TestMigRoundTripZeroAllocs(t *testing.T) {
	payload := make([]byte, 96)
	for i := range payload {
		payload[i] = byte(i * 5)
	}
	rec := MigRecord{Kind: MigSuffix, Slot: 4, Seq: 31, Epoch: 6, Payload: payload}
	var (
		buf []byte
		dec MigRecord
		a   arena.Arena
	)
	buf = rec.AppendTo(buf[:0])
	if _, err := DecodeMigInto(&dec, buf, rec.Seq, &a); err != nil {
		t.Fatal(err)
	}
	a.Reset()

	allocs := testing.AllocsPerRun(200, func() {
		buf = rec.AppendTo(buf[:0])
		if _, err := DecodeMigInto(&dec, buf, rec.Seq, &a); err != nil {
			t.Fatal(err)
		}
		a.Reset()
	})
	if allocs != 0 {
		t.Errorf("migration record encode+decode round trip allocates %.1f/op, want 0", allocs)
	}
	if dec.Kind != rec.Kind || dec.Epoch != rec.Epoch || string(dec.Payload) != string(rec.Payload) {
		t.Fatalf("decode mismatch: %+v", dec)
	}
}

// TestAppendToChains pins the framing property the flush paths rely on:
// several records appended to one buffer decode back in sequence.
func TestAppendToChains(t *testing.T) {
	op := OpRecord{DSSlot: 1, OpType: 2, Abs: 0, Params: []byte("abcd")}
	var buf []byte
	abs := uint64(0)
	for i := 0; i < 3; i++ {
		op.Abs = abs
		buf = op.AppendTo(buf)
		abs += uint64(op.EncodedLen())
	}
	pos, wantAbs := 0, uint64(0)
	for i := 0; i < 3; i++ {
		rec, used, err := DecodeOp(buf[pos:], wantAbs)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if string(rec.Params) != "abcd" {
			t.Fatalf("record %d params %q", i, rec.Params)
		}
		pos += used
		wantAbs += uint64(used)
	}
	if pos != len(buf) {
		t.Fatalf("consumed %d of %d", pos, len(buf))
	}
}
