package logrec

import (
	"bytes"
	"testing"
)

// seedPrepare builds a representative prepare record for the fuzzers.
func seedPrepare(abs uint64) *PrepareRecord {
	return &PrepareRecord{
		DSSlot:    3,
		Abs:       abs,
		TxID:      0xDEADBEEF01,
		CoordNode: 1,
		CoordSlot: 12,
		CoverOp:   512,
		Entries: []MemEntry{
			{Flag: FlagInline, Addr: 0x0001_0000_2000, Len: 4, Value: []byte("abcd")},
			{Flag: FlagOpRef, Addr: 0x0001_0000_3000, Len: 16, OpAbs: 448, SrcOff: 8},
			{Flag: FlagInline, Addr: 8, Len: 0, Value: nil},
		},
	}
}

// FuzzDecodePrepare hammers the prepare decoder with arbitrary bytes,
// mirroring FuzzDecodeTx: no panics, no over-consumption, and anything
// accepted must survive an encode→decode round trip unchanged.
func FuzzDecodePrepare(f *testing.F) {
	f.Add(seedPrepare(96).Encode(), uint64(96))
	f.Add(seedPrepare(0).Encode(), uint64(0))
	enc := seedPrepare(96).Encode()
	f.Add(enc[:len(enc)-3], uint64(96)) // torn tail
	bad := append([]byte(nil), enc...)
	bad[0] ^= 0xFF
	f.Add(bad, uint64(96)) // flipped magic
	f.Add(enc, uint64(97)) // stale offset

	f.Fuzz(func(t *testing.T, data []byte, abs uint64) {
		rec, n, err := DecodePrepare(data, abs)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(data))
		}
		if rec.Abs != abs {
			t.Fatalf("accepted record with Abs=%d, expected %d", rec.Abs, abs)
		}
		for _, e := range rec.Entries {
			if e.Flag == FlagInline && int(e.Len) != len(e.Value) {
				t.Fatalf("inline entry Len=%d but %d value bytes", e.Len, len(e.Value))
			}
		}
		re := rec.Encode()
		rec2, n2, err := DecodePrepare(re, abs)
		if err != nil {
			t.Fatalf("re-encoded accepted record does not decode: %v", err)
		}
		if n2 != len(re) {
			t.Fatalf("re-decode consumed %d of %d bytes", n2, len(re))
		}
		if rec2.DSSlot != rec.DSSlot || rec2.Abs != rec.Abs || rec2.TxID != rec.TxID ||
			rec2.CoordNode != rec.CoordNode || rec2.CoordSlot != rec.CoordSlot ||
			rec2.CoverOp != rec.CoverOp || len(rec2.Entries) != len(rec.Entries) {
			t.Fatalf("round trip changed the record: %+v vs %+v", rec, rec2)
		}
		for i := range rec.Entries {
			a, b := rec.Entries[i], rec2.Entries[i]
			if a.Flag != b.Flag || a.Addr != b.Addr || a.Len != b.Len ||
				a.OpAbs != b.OpAbs || a.SrcOff != b.SrcOff || !bytes.Equal(a.Value, b.Value) {
				t.Fatalf("round trip changed entry %d: %+v vs %+v", i, a, b)
			}
		}
	})
}

// FuzzDecodeCommit does the same for the fixed-size commit records.
func FuzzDecodeCommit(f *testing.F) {
	for _, kind := range []byte{KindCommit, KindEnd, KindApply, KindAbort} {
		rec := CommitRecord{Kind: kind, DSSlot: 2, Abs: 448, TxID: 99, CoverOp: 64}
		f.Add(rec.Encode(), uint64(448))
	}
	enc := (&CommitRecord{Kind: KindCommit, Abs: 448, TxID: 99}).Encode()
	f.Add(enc[:len(enc)-1], uint64(448)) // torn
	bad := append([]byte(nil), enc...)
	bad[len(bad)-1] ^= 0x01 // corrupt checksum
	f.Add(bad, uint64(448))
	f.Add(enc, uint64(449)) // stale offset
	kindBad := CommitRecord{Kind: 0, Abs: 448, TxID: 99}
	f.Add(kindBad.Encode(), uint64(448)) // zero kind: checksum fine, kind invalid

	f.Fuzz(func(t *testing.T, data []byte, abs uint64) {
		rec, n, err := DecodeCommit(data, abs)
		if err != nil {
			return
		}
		if n != commitWireLen || n > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(data))
		}
		if rec.Abs != abs {
			t.Fatalf("accepted record with Abs=%d, expected %d", rec.Abs, abs)
		}
		if rec.Kind < KindCommit || rec.Kind > KindAbort {
			t.Fatalf("accepted record with kind %#x", rec.Kind)
		}
		re := rec.Encode()
		rec2, n2, err := DecodeCommit(re, abs)
		if err != nil || n2 != len(re) {
			t.Fatalf("re-encoded accepted record does not decode: n=%d err=%v", n2, err)
		}
		if rec2 != rec {
			t.Fatalf("round trip changed the record: %+v vs %+v", rec, rec2)
		}
	})
}
