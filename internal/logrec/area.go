package logrec

// Area describes a circular log area inside a back-end's NVM space.
// Producers and consumers track *absolute* byte offsets that grow without
// bound; Phys maps them onto the circle. A record never straddles usable
// space larger than Size, and writes that cross the physical end are
// split into two ranges by Split.
type Area struct {
	Base uint64 // first byte of the area in device space
	Size uint64 // area length in bytes
}

// Phys maps an absolute log offset to a device offset.
func (a Area) Phys(abs uint64) uint64 { return a.Base + abs%a.Size }

// Contains reports whether the device offset lies inside the area.
func (a Area) Contains(devOff uint64) bool {
	return devOff >= a.Base && devOff < a.Base+a.Size
}

// Range is one physically contiguous chunk of a logical write or read.
type Range struct {
	DevOff uint64
	Len    int
}

// Split cuts the logical range [abs, abs+n) into at most two physically
// contiguous device ranges (two when the range wraps the circle).
func (a Area) Split(abs uint64, n int) []Range {
	if n <= 0 {
		return nil
	}
	start := abs % a.Size
	if start+uint64(n) <= a.Size {
		return []Range{{DevOff: a.Base + start, Len: n}}
	}
	first := int(a.Size - start)
	return []Range{
		{DevOff: a.Base + start, Len: first},
		{DevOff: a.Base, Len: n - first},
	}
}

// Free reports how many bytes may be appended when the consumer has
// applied everything up to appliedAbs and the producer is at tailAbs.
func (a Area) Free(appliedAbs, tailAbs uint64) uint64 {
	used := tailAbs - appliedAbs
	if used >= a.Size {
		return 0
	}
	return a.Size - used
}
