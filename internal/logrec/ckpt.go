package logrec

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Checkpoint records pin the compaction plane's durable watermark: after
// the back-end applies the memory-log prefix of a structure into its
// persistent area, it writes one of these into the structure's aux block.
// Recovery then replays only the log suffix past the recorded LPN instead
// of the full history (PAPER.md §6: the memory log is temporary and is
// garbage-collected once applied).
//
// The record is torn-write safe by construction of the *caller*: the
// back-end alternates between two fixed slots (Seq%2) and recovery takes
// the valid record with the highest Seq, so a power failure mid-write can
// at worst lose the newest checkpoint, never the previous one.

// CkptMagic is the first byte of an encoded checkpoint record.
const CkptMagic byte = 0x3C

// CkptSlotSize is the fixed on-NVM footprint of one checkpoint slot. The
// wire encoding is shorter; the slot is padded so the two slots sit at
// stable offsets inside the aux block.
const CkptSlotSize = 64

// ckptWireLen is the encoded length: magic(1) + slot(2) + seq(8) +
// epoch(8) + lpn(8) + opn(8) + areaDigest(4) + crc(4).
const ckptWireLen = 1 + 2 + 8 + 8 + 8 + 8 + 4 + 4

// CkptRecord is one checkpoint: everything recovery needs to trust a
// truncated memory log.
type CkptRecord struct {
	DSSlot     uint16 // owning structure's naming slot (guards misdirected writes)
	Seq        uint64 // checkpoint sequence; recovery picks the valid max
	Epoch      uint64 // back-end incarnation that wrote the record
	LPN        uint64 // applied memory-log watermark (absolute offset)
	OPN        uint64 // applied operation-log watermark (absolute offset)
	AreaDigest uint32 // digest of the area geometry the watermarks refer to
}

// AreaDigest summarises a structure's log-area geometry. A checkpoint is
// only valid for the areas it was taken against; if a slot were recycled
// with different areas, a stale record's digest would not match.
func AreaDigest(memBase, memSize, opBase, opSize uint64) uint32 {
	var g [32]byte
	binary.LittleEndian.PutUint64(g[0:], memBase)
	binary.LittleEndian.PutUint64(g[8:], memSize)
	binary.LittleEndian.PutUint64(g[16:], opBase)
	binary.LittleEndian.PutUint64(g[24:], opSize)
	return crc32.Checksum(g[:], castagnoli)
}

// Encode renders the record into a CkptSlotSize buffer (zero padded past
// the wire length) ready to be written to a checkpoint slot.
func (c *CkptRecord) Encode() []byte {
	buf := make([]byte, CkptSlotSize)
	buf[0] = CkptMagic
	binary.LittleEndian.PutUint16(buf[1:], c.DSSlot)
	binary.LittleEndian.PutUint64(buf[3:], c.Seq)
	binary.LittleEndian.PutUint64(buf[11:], c.Epoch)
	binary.LittleEndian.PutUint64(buf[19:], c.LPN)
	binary.LittleEndian.PutUint64(buf[27:], c.OPN)
	binary.LittleEndian.PutUint32(buf[35:], c.AreaDigest)
	binary.LittleEndian.PutUint32(buf[39:],
		crc32.Checksum(buf[:ckptWireLen-4], castagnoli))
	return buf
}

// DecodeCkpt parses a checkpoint slot. It validates the magic and CRC;
// slot ownership, geometry digest and epoch plausibility are the caller's
// to check against its own state. A zeroed (never written) slot fails
// with ErrBadMagic; a torn write fails with ErrShort or ErrBadCRC.
func DecodeCkpt(src []byte) (CkptRecord, error) {
	var c CkptRecord
	if len(src) < 1 {
		return c, fmt.Errorf("%w: empty checkpoint slot", ErrShort)
	}
	if src[0] != CkptMagic {
		return c, fmt.Errorf("%w: checkpoint magic %#x", ErrBadMagic, src[0])
	}
	if len(src) < ckptWireLen {
		return c, fmt.Errorf("%w: checkpoint slot %d < %d", ErrShort, len(src), ckptWireLen)
	}
	want := binary.LittleEndian.Uint32(src[39:])
	if crc32.Checksum(src[:ckptWireLen-4], castagnoli) != want {
		return c, fmt.Errorf("%w: checkpoint record", ErrBadCRC)
	}
	c.DSSlot = binary.LittleEndian.Uint16(src[1:])
	c.Seq = binary.LittleEndian.Uint64(src[3:])
	c.Epoch = binary.LittleEndian.Uint64(src[11:])
	c.LPN = binary.LittleEndian.Uint64(src[19:])
	c.OPN = binary.LittleEndian.Uint64(src[27:])
	c.AreaDigest = binary.LittleEndian.Uint32(src[35:])
	return c, nil
}
