package logrec

import (
	"bytes"
	"testing"
)

// seedTx builds a representative committed transaction record.
func seedTx(abs uint64) *TxRecord {
	return &TxRecord{
		DSSlot:  3,
		Abs:     abs,
		CoverOp: 512,
		Entries: []MemEntry{
			{Flag: FlagInline, Addr: 0x0001_0000_2000, Len: 4, Value: []byte("abcd")},
			{Flag: FlagOpRef, Addr: 0x0001_0000_3000, Len: 16, OpAbs: 448, SrcOff: 8},
			{Flag: FlagInline, Addr: 8, Len: 0, Value: nil},
		},
	}
}

func seedOp(abs uint64) *OpRecord {
	return &OpRecord{DSSlot: 7, OpType: 1, Abs: abs, Params: []byte("key0val0val0val0")}
}

// FuzzDecodeTx hammers the transaction decoder with arbitrary bytes. The
// decoder must never panic or read out of bounds, must never consume more
// than it was given, and anything it accepts must survive an
// encode→decode round trip unchanged.
func FuzzDecodeTx(f *testing.F) {
	f.Add(seedTx(96).Encode(), uint64(96))
	f.Add(seedTx(0).Encode(), uint64(0))
	// A truncated record, a flipped magic, and a stale-offset record.
	enc := seedTx(96).Encode()
	f.Add(enc[:len(enc)-3], uint64(96))
	bad := append([]byte(nil), enc...)
	bad[0] ^= 0xFF
	f.Add(bad, uint64(96))
	f.Add(enc, uint64(97))

	f.Fuzz(func(t *testing.T, data []byte, abs uint64) {
		rec, n, err := DecodeTx(data, abs)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(data))
		}
		if rec.Abs != abs {
			t.Fatalf("accepted record with Abs=%d, expected %d", rec.Abs, abs)
		}
		for _, e := range rec.Entries {
			if e.Flag == FlagInline && int(e.Len) != len(e.Value) {
				t.Fatalf("inline entry Len=%d but %d value bytes", e.Len, len(e.Value))
			}
		}
		re := rec.Encode()
		rec2, n2, err := DecodeTx(re, abs)
		if err != nil {
			t.Fatalf("re-encoded accepted record does not decode: %v", err)
		}
		if n2 != len(re) {
			t.Fatalf("re-decode consumed %d of %d bytes", n2, len(re))
		}
		if rec2.DSSlot != rec.DSSlot || rec2.Abs != rec.Abs || rec2.CoverOp != rec.CoverOp || len(rec2.Entries) != len(rec.Entries) {
			t.Fatalf("round trip changed the record: %+v vs %+v", rec, rec2)
		}
		for i := range rec.Entries {
			a, b := rec.Entries[i], rec2.Entries[i]
			if a.Flag != b.Flag || a.Addr != b.Addr || a.Len != b.Len ||
				a.OpAbs != b.OpAbs || a.SrcOff != b.SrcOff || !bytes.Equal(a.Value, b.Value) {
				t.Fatalf("round trip changed entry %d: %+v vs %+v", i, a, b)
			}
		}
	})
}

// FuzzDecodeCkpt hammers the checkpoint decoder. Seeds cover a valid
// round trip, a truncated slot, a flipped magic byte, and a stale-epoch
// record (the decoder must parse it — epoch plausibility is the back-end's
// check, not the codec's). Anything accepted must round-trip unchanged and
// re-validate.
func FuzzDecodeCkpt(f *testing.F) {
	valid := seedCkpt().Encode()
	f.Add(valid)
	f.Add(valid[:ckptWireLen-5]) // torn: record cut mid-payload
	bad := append([]byte(nil), valid...)
	bad[0] ^= 0xFF
	f.Add(bad) // flipped magic
	stale := seedCkpt()
	stale.Epoch = ^uint64(0) // epoch from the far future: codec-valid, caller-stale
	f.Add(stale.Encode())
	f.Add(make([]byte, CkptSlotSize)) // zeroed (never-written) slot

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeCkpt(data)
		if err != nil {
			return
		}
		re := rec.Encode()
		if len(re) != CkptSlotSize {
			t.Fatalf("re-encode length %d, want %d", len(re), CkptSlotSize)
		}
		rec2, err := DecodeCkpt(re)
		if err != nil {
			t.Fatalf("re-encoded accepted record does not decode: %v", err)
		}
		if rec2 != rec {
			t.Fatalf("round trip changed the record: %+v vs %+v", rec, rec2)
		}
	})
}

// FuzzDecodeMig hammers the migration stream decoder. Seeds cover a valid
// snapshot record, a torn record, a flipped magic, a stale (replayed)
// sequence number, and a payload-carrying cutover marker — all the ways a
// stream frame goes wrong in flight. Anything accepted must round-trip
// unchanged.
func FuzzDecodeMig(f *testing.F) {
	valid := seedMig(7).Encode()
	f.Add(valid, uint64(7))
	f.Add(valid[:len(valid)-3], uint64(7)) // torn: record cut mid-checksum
	bad := append([]byte(nil), valid...)
	bad[0] ^= 0xFF
	f.Add(bad, uint64(7)) // flipped magic
	f.Add(valid, uint64(8)) // replayed: stale sequence number
	cut := &MigRecord{Kind: MigCutover, Slot: 5, Seq: 9, Epoch: 4, Payload: []byte("x")}
	f.Add(cut.Encode(), uint64(9)) // cutover smuggling payload bytes

	f.Fuzz(func(t *testing.T, data []byte, seq uint64) {
		rec, n, err := DecodeMig(data, seq)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(data))
		}
		if rec.Seq != seq {
			t.Fatalf("accepted record with Seq=%d, expected %d", rec.Seq, seq)
		}
		if rec.Kind < MigSnap || rec.Kind > MigCutover {
			t.Fatalf("accepted record with kind %d", rec.Kind)
		}
		if rec.Kind == MigCutover && len(rec.Payload) != 0 {
			t.Fatalf("accepted cutover with %d payload bytes", len(rec.Payload))
		}
		if n != rec.EncodedLen() {
			t.Fatalf("consumed %d bytes but EncodedLen says %d", n, rec.EncodedLen())
		}
		re := rec.Encode()
		rec2, n2, err := DecodeMig(re, seq)
		if err != nil || n2 != len(re) {
			t.Fatalf("re-encoded accepted record does not decode: n=%d err=%v", n2, err)
		}
		if rec2.Kind != rec.Kind || rec2.Slot != rec.Slot || rec2.Seq != rec.Seq ||
			rec2.Epoch != rec.Epoch || !bytes.Equal(rec2.Payload, rec.Payload) {
			t.Fatalf("round trip changed the record: %+v vs %+v", rec, rec2)
		}
	})
}

// FuzzDecodeOp does the same for operation records.
func FuzzDecodeOp(f *testing.F) {
	f.Add(seedOp(448).Encode(), uint64(448))
	f.Add(seedOp(0).Encode(), uint64(0))
	enc := seedOp(448).Encode()
	f.Add(enc[:len(enc)-1], uint64(448))
	bad := append([]byte(nil), enc...)
	bad[len(bad)-1] ^= 0x01 // corrupt the checksum
	f.Add(bad, uint64(448))
	f.Add(enc, uint64(449))

	f.Fuzz(func(t *testing.T, data []byte, abs uint64) {
		rec, n, err := DecodeOp(data, abs)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(data))
		}
		if rec.Abs != abs {
			t.Fatalf("accepted record with Abs=%d, expected %d", rec.Abs, abs)
		}
		if n != rec.EncodedLen() {
			t.Fatalf("consumed %d bytes but EncodedLen says %d", n, rec.EncodedLen())
		}
		re := rec.Encode()
		rec2, n2, err := DecodeOp(re, abs)
		if err != nil || n2 != len(re) {
			t.Fatalf("re-encoded accepted record does not decode: n=%d err=%v", n2, err)
		}
		if rec2.DSSlot != rec.DSSlot || rec2.OpType != rec.OpType || rec2.Abs != rec.Abs || !bytes.Equal(rec2.Params, rec.Params) {
			t.Fatalf("round trip changed the record: %+v vs %+v", rec, rec2)
		}
	})
}
