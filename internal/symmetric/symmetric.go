// Package symmetric implements the paper's symmetric-architecture
// baseline (§9.2): each machine has its own NVM on the memory bus; data
// structures live in *local* NVM and are replicated by shipping logs to a
// remote node asynchronously, off the critical path. The paper calls the
// resulting numbers "the upper-bound performance of symmetric NVM
// architecture" because the asynchronous log flush trades consistency
// for speed.
//
// The baseline reuses the exact framework and data-structure code with a
// local latency profile: RDMA round trips collapse to local DRAM/cache
// interconnect costs, while NVM media latency and persist barriers stay —
// precisely what moving the same software from remote to local NVM does.
// The asynchronous remote log shipping is charged to the back-end actor
// (as replication already is), never to the operation path.
package symmetric

import (
	"time"

	"asymnvm/internal/backend"
	"asymnvm/internal/clock"
	"asymnvm/internal/core"
	"asymnvm/internal/nvm"
)

// Profile returns the local-NVM latency model. Derived from the remote
// profile by removing the network: one-sided verbs become local memory
// operations (a cache-coherent CAS is ~30 ns; loads/stores pay the NVM
// media latency they touch), persist barriers stay at clwb+sfence cost.
func Profile() clock.Profile {
	p := clock.DefaultProfile()
	p.RDMARTT = 0
	p.RDMAAtomic = 30 * time.Nanosecond
	p.NetBytesPerSec = 30e9 // on-chip copy bandwidth for "transfers"
	return p
}

// Node is a symmetric machine: local NVM with the framework running
// against it directly.
type Node struct {
	Backend *backend.Backend
	Dev     *nvm.Device
	prof    clock.Profile
}

// New builds a symmetric node with the given NVM capacity.
func New(deviceBytes int) (*Node, error) {
	prof := Profile()
	dev := nvm.NewDevice(deviceBytes)
	bk, err := backend.New(dev, backend.Options{ID: 0, Profile: &prof})
	if err != nil {
		return nil, err
	}
	bk.Start()
	return &Node{Backend: bk, Dev: dev, prof: prof}, nil
}

// Stop drains and stops the node.
func (n *Node) Stop() { n.Backend.Stop() }

// Client returns a front-end-style session running on the local machine.
// No DRAM cache is configured: reads already hit local NVM at media
// latency. batch > 1 yields the paper's Symmetric-B configuration.
func (n *Node) Client(id uint16, batch int) (*core.Conn, error) {
	mode := core.Mode{OpLog: true, Batch: batch}
	fe := core.NewFrontend(core.FrontendOptions{ID: id, Mode: mode, Profile: &n.prof})
	return fe.Connect(n.Backend)
}
