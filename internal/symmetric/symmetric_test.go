package symmetric

import (
	"bytes"
	"testing"

	"asymnvm/internal/clock"
	"asymnvm/internal/ds"
)

func TestProfileIsLocal(t *testing.T) {
	p := Profile()
	remote := clock.DefaultProfile()
	if p.RDMARTT != 0 {
		t.Fatal("symmetric round trips must be free")
	}
	if p.NVMRead != remote.NVMRead || p.NVMWrite != remote.NVMWrite {
		t.Fatal("media latency must be unchanged")
	}
	if p.RDMAAtomic >= remote.RDMAAtomic {
		t.Fatal("local atomics must be far cheaper than fabric atomics")
	}
}

func TestSymmetricNodeRunsStructures(t *testing.T) {
	node, err := New(64 << 20)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Stop()
	conn, err := node.Client(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := ds.CreateBPTree(conn, "local", ds.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 500; i++ {
		if err := bt.Put(i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := bt.Drain(); err != nil {
		t.Fatal(err)
	}
	v, ok, err := bt.Get(123)
	if err != nil || !ok || !bytes.Equal(v, []byte{123}) {
		t.Fatalf("get: %v %v %v", v, ok, err)
	}
}

func TestSymmetricFasterThanRemote(t *testing.T) {
	// The same op sequence must cost far less virtual time locally than
	// over the fabric — the premise of the whole comparison.
	node, err := New(64 << 20)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Stop()
	conn, err := node.Client(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := ds.CreateBPTree(conn, "timing", ds.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fe := conn.Frontend()
	start := fe.Clock().Now()
	for i := uint64(1); i <= 200; i++ {
		if err := bt.Put(i, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	perOp := (fe.Clock().Now() - start) / 200
	// A remote unbatched put costs at least 2 RTTs ≈ 4 µs; local must be
	// well under one RTT.
	if perOp > 2000 {
		t.Fatalf("local put costs %v ns, expected sub-microsecond scale", perOp)
	}
}
