package stats

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSnapshotAndSub(t *testing.T) {
	var s Stats
	s.RDMARead.Add(10)
	s.RDMAWrite.Add(4)
	s.CacheHit.Add(7)
	s.CacheMiss.Add(3)
	a := s.Snapshot()
	s.RDMARead.Add(5)
	s.CacheHit.Add(1)
	d := s.Snapshot().Sub(a)
	if d.RDMARead != 5 || d.RDMAWrite != 0 || d.CacheHit != 1 {
		t.Fatalf("delta wrong: %+v", d)
	}
	if a.RDMAVerbs() != 14 {
		t.Fatalf("verbs = %d, want 14", a.RDMAVerbs())
	}
}

func TestHitRatio(t *testing.T) {
	var s Stats
	if r := s.Snapshot().HitRatio(); r != 0 {
		t.Fatalf("empty ratio %v", r)
	}
	s.CacheHit.Add(3)
	s.CacheMiss.Add(1)
	if r := s.Snapshot().HitRatio(); r != 0.75 {
		t.Fatalf("ratio %v, want 0.75", r)
	}
}

func TestBusyAccounting(t *testing.T) {
	var s Stats
	s.AddBusy(3 * time.Microsecond)
	s.AddBusy(-time.Second) // ignored
	if got := s.Snapshot().BusyNS; got != 3000 {
		t.Fatalf("busy = %d, want 3000", got)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	var s Stats
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				s.TxCommits.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := s.Snapshot().TxCommits; got != 8000 {
		t.Fatalf("lost updates: %d", got)
	}
}

func TestStringContainsCounters(t *testing.T) {
	var s Stats
	s.OpLogs.Add(42)
	out := s.Snapshot().String()
	if !strings.Contains(out, "op=42") {
		t.Fatalf("String() = %q", out)
	}
}
