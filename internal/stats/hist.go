package stats

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
)

// Phase identifies one latency phase of the per-operation breakdown the
// evaluation reports (Fig. 14/15): where the virtual time of an operation
// goes — op-log flush, commit, cache-miss fetch, pipeline waits — plus the
// back-end-side replay and mirror-forward phases.
type Phase uint8

// Phases of the latency breakdown. PhaseVerb covers synchronous verb
// round trips not attributable to a higher-level phase; PhaseRetireWait is
// the residual (not-hidden-by-overlap) wait for posted-verb completions.
const (
	PhaseOp Phase = iota // one whole data-structure write operation
	PhaseOpLogFlush      // rnvm_op_log persist (§4.3 durability point)
	PhaseCommit          // rnvm_tx_write flush of buffered memory logs
	PhaseFetch           // remote read serving a cache miss
	PhaseCacheHit        // DRAM cache / overlay hits
	PhaseVerb            // synchronous verb round trips
	PhasePost            // work-request issue CPU cost
	PhaseRetireWait      // un-hidden wait for doorbell-group completions
	PhaseRPC             // ring RPC exchanges (malloc/free)
	PhaseRetry           // retry backoff and failover handling
	PhaseReplay          // back-end: applying one committed transaction
	PhaseMirror          // back-end: forwarding state to mirrors
	PhaseCPU             // fixed per-operation CPU charge
	NumPhases            // sentinel: number of phases
)

var phaseNames = [NumPhases]string{
	"op", "oplog_flush", "commit", "fetch", "cache_hit", "verb", "post",
	"retire_wait", "rpc", "retry", "replay", "mirror_fwd", "cpu",
}

// String names the phase for reports and the /metrics exposition.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// histBuckets is the number of power-of-two latency buckets. Bucket i
// holds observations with bits.Len64(ns) == i, i.e. ns in [2^(i-1), 2^i).
// 44 buckets cover up to ~2.4 hours of virtual nanoseconds.
const histBuckets = 44

// Hist is a lock-free log2-bucketed latency histogram. The zero value is
// ready to use; all methods are safe for concurrent use.
type Hist struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one latency sample in nanoseconds.
func (h *Hist) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	b := bits.Len64(uint64(ns))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// HistSnapshot is a plain-value copy of a histogram.
type HistSnapshot struct {
	Buckets [histBuckets]int64
	Count   int64
	Sum     int64
}

// Snapshot copies the current histogram state.
func (h *Hist) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// Sub returns the per-bucket difference a-b, for measuring an interval
// between two snapshots of the same histogram.
func (s HistSnapshot) Sub(b HistSnapshot) HistSnapshot {
	d := HistSnapshot{Count: s.Count - b.Count, Sum: s.Sum - b.Sum}
	for i := range s.Buckets {
		d.Buckets[i] = s.Buckets[i] - b.Buckets[i]
	}
	return d
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) of the
// recorded samples: the upper edge of the bucket in which the quantile
// falls. Returns 0 when the histogram is empty.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, n := range s.Buckets {
		cum += n
		if cum >= rank {
			if i == 0 {
				return 0
			}
			return (int64(1) << uint(i)) - 1
		}
	}
	return (int64(1) << (histBuckets - 1)) - 1
}

// Mean returns the average sample in nanoseconds, or 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// PhaseStat aggregates one phase of the latency breakdown: a duration
// histogram over phase instances, the total *self* time (phase time not
// inside a nested tracked phase, so self times sum to elapsed actor
// time), and the number of fabric round trips attributed to the phase.
type PhaseStat struct {
	Hist   Hist
	SelfNS atomic.Int64
	Verbs  atomic.Int64 // round trips paid while this phase was innermost
}

// Phases is the per-phase breakdown attached to a Stats. All fields are
// atomic; any actor may share it.
type Phases [NumPhases]PhaseStat

// PhaseSnapshot is a plain-value copy of one phase's aggregates.
type PhaseSnapshot struct {
	Phase  Phase
	Hist   HistSnapshot
	SelfNS int64
	Verbs  int64
}

// PhaseSnapshots copies every non-empty phase, in phase order.
func (s *Stats) PhaseSnapshots() []PhaseSnapshot {
	var out []PhaseSnapshot
	for p := Phase(0); p < NumPhases; p++ {
		ps := &s.Phase[p]
		snap := PhaseSnapshot{Phase: p, Hist: ps.Hist.Snapshot(), SelfNS: ps.SelfNS.Load(), Verbs: ps.Verbs.Load()}
		if snap.Hist.Count == 0 && snap.SelfNS == 0 && snap.Verbs == 0 {
			continue
		}
		out = append(out, snap)
	}
	return out
}

// FormatPhases renders the per-phase breakdown as an aligned text table
// with count, total self time, mean and p50/p95/p99 per phase.
func FormatPhases(snaps []PhaseSnapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %14s %12s %12s %12s %12s %8s\n",
		"phase", "count", "self", "mean", "p50", "p95", "p99", "verbs")
	for _, ps := range snaps {
		fmt.Fprintf(&b, "%-12s %10d %14d %12.0f %12d %12d %12d %8d\n",
			ps.Phase, ps.Hist.Count, ps.SelfNS, ps.Hist.Mean(),
			ps.Hist.Quantile(0.50), ps.Hist.Quantile(0.95), ps.Hist.Quantile(0.99), ps.Verbs)
	}
	return b.String()
}
