// Package stats collects the counters the AsymNVM evaluation reports:
// RDMA verbs by type, bytes moved, cache behaviour, seqlock retries, log
// volumes and replay progress, and busy-time accounting for the CPU
// utilization figure.
//
// All counters are updated with atomics so any actor may share a Stats.
package stats

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Stats is a set of monotone counters. The zero value is ready to use.
type Stats struct {
	RDMARead    atomic.Int64 // one-sided reads issued
	RDMAWrite   atomic.Int64 // one-sided writes issued
	RDMAAtomic  atomic.Int64 // CAS / fetch-add / atomic 64-bit verbs
	RPCCalls    atomic.Int64 // ring-based RPC invocations (malloc/free)
	BytesRead   atomic.Int64
	BytesWrite  atomic.Int64
	CacheHit    atomic.Int64
	CacheMiss   atomic.Int64
	CacheEvict  atomic.Int64
	ReadRetry   atomic.Int64 // seqlock read retries
	OpLogs      atomic.Int64 // operation logs appended
	MemLogs     atomic.Int64 // memory log entries appended
	TxCommits   atomic.Int64 // rnvm_tx_write flushes
	TxReplayed  atomic.Int64 // transactions applied by the replayer
	OpsAnnulled atomic.Int64 // stack/queue operations cancelled in the op log
	Allocs      atomic.Int64
	Frees       atomic.Int64
	VerbRetries atomic.Int64 // verbs re-issued after a transient fault
	Failovers   atomic.Int64 // endpoint re-targets to a replacement back-end

	// Posted-verb pipeline counters (async issue / doorbell batching).
	PostedVerbs    atomic.Int64 // work requests posted to a send queue
	DoorbellGroups atomic.Int64 // doorbells rung (round trips actually paid)
	QueueDepthSum  atomic.Int64 // sum over posts of in-flight WRs at post time
	OverlapSavedNS atomic.Int64 // virtual ns of fabric latency hidden by overlap

	// Cross-shard fan-out counters: windows in which one actor kept
	// doorbell groups in flight on several back-end connections at once,
	// and the virtual time saved versus issuing the same groups serially
	// link by link (sum-over-backends minus max-over-backends).
	FanoutWindows atomic.Int64 // fan-out windows closed
	FanoutSavedNS atomic.Int64 // virtual ns saved by cross-connection overlap

	// Adaptive batch/depth controller (Mode.AutoTune) telemetry.
	// AutoTuneBatch/AutoTuneDepth are gauges holding the controller's
	// current effective memory-log batch size and pipeline depth.
	AutoTuneSteps atomic.Int64 // controller adjustments applied
	AutoTuneBatch atomic.Int64 // current effective batch size B (gauge)
	AutoTuneDepth atomic.Int64 // current effective pipeline depth (gauge)

	// Compaction/recovery plane counters. Checkpoints counts checkpoint
	// records written by the back-end; TruncatedBytes counts log bytes
	// reclaimed (memory + op log truncation advances); RecoveryReplayOps
	// counts transactions replayed during Backend.recover() — the quantity
	// compaction exists to bound.
	Checkpoints       atomic.Int64
	TruncatedBytes    atomic.Int64
	RecoveryReplayOps atomic.Int64

	// Serving-plane counters (internal/serve admission control plus the
	// core retry loop's deadline propagation). ServeAccepted counts
	// requests admitted into the run queue; ServeRejected counts
	// admission rejections (tenant tokens, concurrency limit, queue
	// full); ServeBreaker counts rejections by an open per-tenant
	// breaker; ServeExpired counts admitted requests dropped before
	// execution because their deadline passed while queued; ServeSlowDrop
	// counts client connections severed for not draining responses;
	// DeadlineMiss counts verbs aborted by an armed virtual-time
	// deadline in the retry loop.
	ServeAccepted atomic.Int64
	ServeRejected atomic.Int64
	ServeBreaker  atomic.Int64
	ServeExpired  atomic.Int64
	ServeSlowDrop atomic.Int64
	DeadlineMiss  atomic.Int64

	// Two-phase-commit counters. TxPrepares counts prepare records
	// appended by the front-end (one per participant per transaction);
	// TxCrossCommits/TxCrossAborts count cross-shard transactions that
	// reached the commit record vs. aborted before it; InDoubtResolved
	// counts prepares resolved by recovery's coordinator consultation
	// (both outcomes — the presumed-abort path of §7.2 extended).
	TxPrepares      atomic.Int64
	TxCrossCommits  atomic.Int64
	TxCrossAborts   atomic.Int64
	InDoubtResolved atomic.Int64

	// Multi-writer / mirror-read counters. StripeConflicts counts failed
	// lock CAS attempts on a shared (striped) writer lock — spins caused
	// by another front-end holding the stripe; CASRetries counts aborted
	// multi-writer MV root publications (the CAS found a root moved by a
	// concurrent writer and the operation re-executed); MirrorReads counts
	// read operations served from a mirror replica instead of the primary;
	// MirrorStaleEpochs accumulates, over those reads, how many epochs the
	// serving mirror trailed the primary — divide by MirrorReads for the
	// average served staleness.
	StripeConflicts  atomic.Int64
	CASRetries       atomic.Int64
	MirrorReads      atomic.Int64
	MirrorStaleEpochs atomic.Int64

	// Elastic rebalancing counters. MigrationsActive is a gauge of
	// handoffs currently in flight (between BeginMigration and Finish);
	// DoubleLoggedOps counts write operations committed to both source
	// and destination during a handoff window; CutoverEpochs counts
	// partition-map version flips (each cutover and each reclaim bumps
	// the map version once).
	MigrationsActive atomic.Int64
	DoubleLoggedOps  atomic.Int64
	CutoverEpochs    atomic.Int64

	// BusyNS accumulates virtual nanoseconds during which the owning
	// node's CPU was doing work (as opposed to waiting on the fabric).
	BusyNS atomic.Int64

	// Phase breaks latency down by operation phase (see hist.go). It is
	// populated by the tracer; all fields are atomic.
	Phase Phases
}

// AddBusy charges d of CPU-busy virtual time.
func (s *Stats) AddBusy(d time.Duration) {
	if d > 0 {
		s.BusyNS.Add(int64(d))
	}
}

// Snapshot is a plain-value copy of all counters.
type Snapshot struct {
	RDMARead, RDMAWrite, RDMAAtomic, RPCCalls int64
	BytesRead, BytesWrite                     int64
	CacheHit, CacheMiss, CacheEvict           int64
	ReadRetry                                 int64
	OpLogs, MemLogs, TxCommits, TxReplayed    int64
	OpsAnnulled                               int64
	Allocs, Frees                             int64
	VerbRetries, Failovers                    int64
	PostedVerbs, DoorbellGroups               int64
	QueueDepthSum, OverlapSavedNS             int64
	FanoutWindows, FanoutSavedNS              int64
	AutoTuneSteps                             int64
	AutoTuneBatch, AutoTuneDepth              int64
	Checkpoints, TruncatedBytes               int64
	RecoveryReplayOps                         int64
	ServeAccepted, ServeRejected              int64
	ServeBreaker, ServeExpired                int64
	ServeSlowDrop, DeadlineMiss               int64
	TxPrepares, TxCrossCommits                int64
	TxCrossAborts, InDoubtResolved            int64
	StripeConflicts, CASRetries               int64
	MirrorReads, MirrorStaleEpochs            int64
	MigrationsActive, DoubleLoggedOps         int64
	CutoverEpochs                             int64
	BusyNS                                    int64
}

// Snapshot captures the current counter values.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		RDMARead:       s.RDMARead.Load(),
		RDMAWrite:      s.RDMAWrite.Load(),
		RDMAAtomic:     s.RDMAAtomic.Load(),
		RPCCalls:       s.RPCCalls.Load(),
		BytesRead:      s.BytesRead.Load(),
		BytesWrite:     s.BytesWrite.Load(),
		CacheHit:       s.CacheHit.Load(),
		CacheMiss:      s.CacheMiss.Load(),
		CacheEvict:     s.CacheEvict.Load(),
		ReadRetry:      s.ReadRetry.Load(),
		OpLogs:         s.OpLogs.Load(),
		MemLogs:        s.MemLogs.Load(),
		TxCommits:      s.TxCommits.Load(),
		TxReplayed:     s.TxReplayed.Load(),
		OpsAnnulled:    s.OpsAnnulled.Load(),
		Allocs:         s.Allocs.Load(),
		Frees:          s.Frees.Load(),
		VerbRetries:    s.VerbRetries.Load(),
		Failovers:      s.Failovers.Load(),
		PostedVerbs:    s.PostedVerbs.Load(),
		DoorbellGroups: s.DoorbellGroups.Load(),
		QueueDepthSum:  s.QueueDepthSum.Load(),
		OverlapSavedNS: s.OverlapSavedNS.Load(),
		FanoutWindows:  s.FanoutWindows.Load(),
		FanoutSavedNS:  s.FanoutSavedNS.Load(),
		AutoTuneSteps:  s.AutoTuneSteps.Load(),
		AutoTuneBatch:  s.AutoTuneBatch.Load(),
		AutoTuneDepth:  s.AutoTuneDepth.Load(),
		Checkpoints:    s.Checkpoints.Load(),
		TruncatedBytes: s.TruncatedBytes.Load(),
		RecoveryReplayOps: s.RecoveryReplayOps.Load(),
		ServeAccepted:     s.ServeAccepted.Load(),
		ServeRejected:     s.ServeRejected.Load(),
		ServeBreaker:      s.ServeBreaker.Load(),
		ServeExpired:      s.ServeExpired.Load(),
		ServeSlowDrop:     s.ServeSlowDrop.Load(),
		DeadlineMiss:      s.DeadlineMiss.Load(),
		TxPrepares:        s.TxPrepares.Load(),
		TxCrossCommits:    s.TxCrossCommits.Load(),
		TxCrossAborts:     s.TxCrossAborts.Load(),
		InDoubtResolved:   s.InDoubtResolved.Load(),
		StripeConflicts:   s.StripeConflicts.Load(),
		CASRetries:        s.CASRetries.Load(),
		MirrorReads:       s.MirrorReads.Load(),
		MirrorStaleEpochs: s.MirrorStaleEpochs.Load(),
		MigrationsActive:  s.MigrationsActive.Load(),
		DoubleLoggedOps:   s.DoubleLoggedOps.Load(),
		CutoverEpochs:     s.CutoverEpochs.Load(),
		BusyNS:            s.BusyNS.Load(),
	}
}

// Sub returns the per-field difference a-b, for measuring an interval.
func (a Snapshot) Sub(b Snapshot) Snapshot {
	return Snapshot{
		RDMARead:       a.RDMARead - b.RDMARead,
		RDMAWrite:      a.RDMAWrite - b.RDMAWrite,
		RDMAAtomic:     a.RDMAAtomic - b.RDMAAtomic,
		RPCCalls:       a.RPCCalls - b.RPCCalls,
		BytesRead:      a.BytesRead - b.BytesRead,
		BytesWrite:     a.BytesWrite - b.BytesWrite,
		CacheHit:       a.CacheHit - b.CacheHit,
		CacheMiss:      a.CacheMiss - b.CacheMiss,
		CacheEvict:     a.CacheEvict - b.CacheEvict,
		ReadRetry:      a.ReadRetry - b.ReadRetry,
		OpLogs:         a.OpLogs - b.OpLogs,
		MemLogs:        a.MemLogs - b.MemLogs,
		TxCommits:      a.TxCommits - b.TxCommits,
		TxReplayed:     a.TxReplayed - b.TxReplayed,
		OpsAnnulled:    a.OpsAnnulled - b.OpsAnnulled,
		Allocs:         a.Allocs - b.Allocs,
		Frees:          a.Frees - b.Frees,
		VerbRetries:    a.VerbRetries - b.VerbRetries,
		Failovers:      a.Failovers - b.Failovers,
		PostedVerbs:    a.PostedVerbs - b.PostedVerbs,
		DoorbellGroups: a.DoorbellGroups - b.DoorbellGroups,
		QueueDepthSum:  a.QueueDepthSum - b.QueueDepthSum,
		OverlapSavedNS: a.OverlapSavedNS - b.OverlapSavedNS,
		FanoutWindows:  a.FanoutWindows - b.FanoutWindows,
		FanoutSavedNS:  a.FanoutSavedNS - b.FanoutSavedNS,
		AutoTuneSteps:  a.AutoTuneSteps - b.AutoTuneSteps,
		AutoTuneBatch:  a.AutoTuneBatch - b.AutoTuneBatch,
		AutoTuneDepth:  a.AutoTuneDepth - b.AutoTuneDepth,
		Checkpoints:    a.Checkpoints - b.Checkpoints,
		TruncatedBytes: a.TruncatedBytes - b.TruncatedBytes,
		RecoveryReplayOps: a.RecoveryReplayOps - b.RecoveryReplayOps,
		ServeAccepted:     a.ServeAccepted - b.ServeAccepted,
		ServeRejected:     a.ServeRejected - b.ServeRejected,
		ServeBreaker:      a.ServeBreaker - b.ServeBreaker,
		ServeExpired:      a.ServeExpired - b.ServeExpired,
		ServeSlowDrop:     a.ServeSlowDrop - b.ServeSlowDrop,
		DeadlineMiss:      a.DeadlineMiss - b.DeadlineMiss,
		TxPrepares:        a.TxPrepares - b.TxPrepares,
		TxCrossCommits:    a.TxCrossCommits - b.TxCrossCommits,
		TxCrossAborts:     a.TxCrossAborts - b.TxCrossAborts,
		InDoubtResolved:   a.InDoubtResolved - b.InDoubtResolved,
		StripeConflicts:   a.StripeConflicts - b.StripeConflicts,
		CASRetries:        a.CASRetries - b.CASRetries,
		MirrorReads:       a.MirrorReads - b.MirrorReads,
		MirrorStaleEpochs: a.MirrorStaleEpochs - b.MirrorStaleEpochs,
		MigrationsActive:  a.MigrationsActive - b.MigrationsActive,
		DoubleLoggedOps:   a.DoubleLoggedOps - b.DoubleLoggedOps,
		CutoverEpochs:     a.CutoverEpochs - b.CutoverEpochs,
		BusyNS:            a.BusyNS - b.BusyNS,
	}
}

// RDMAVerbs is the total number of network round trips in the snapshot.
func (a Snapshot) RDMAVerbs() int64 {
	return a.RDMARead + a.RDMAWrite + a.RDMAAtomic
}

// AvgQueueDepth reports the mean number of in-flight work requests
// observed at post time, or 0 when nothing was posted. A value near 1
// means the pipeline degenerated to synchronous issue; deeper is better.
func (a Snapshot) AvgQueueDepth() float64 {
	if a.PostedVerbs == 0 {
		return 0
	}
	return float64(a.QueueDepthSum) / float64(a.PostedVerbs)
}

// HitRatio reports the cache hit ratio, or 0 when no accesses happened.
func (a Snapshot) HitRatio() float64 {
	t := a.CacheHit + a.CacheMiss
	if t == 0 {
		return 0
	}
	return float64(a.CacheHit) / float64(t)
}

// String renders a compact human-readable summary.
func (a Snapshot) String() string {
	return fmt.Sprintf(
		"rdma{r=%d w=%d atom=%d rpc=%d} bytes{r=%d w=%d} cache{hit=%d miss=%d} logs{op=%d mem=%d tx=%d replayed=%d} retry=%d resil{retry=%d fo=%d} pipe{wr=%d db=%d qd=%.1f saved=%dns} fan{win=%d saved=%dns} tune{steps=%d B=%d depth=%d} ckpt{n=%d trunc=%dB rro=%d} serve{acc=%d rej=%d brk=%d exp=%d slow=%d dl=%d} 2pc{prep=%d commit=%d abort=%d doubt=%d} mw{stripe=%d cas=%d mread=%d mstale=%d} mig{active=%d dbl=%d cut=%d}",
		a.RDMARead, a.RDMAWrite, a.RDMAAtomic, a.RPCCalls,
		a.BytesRead, a.BytesWrite,
		a.CacheHit, a.CacheMiss,
		a.OpLogs, a.MemLogs, a.TxCommits, a.TxReplayed,
		a.ReadRetry,
		a.VerbRetries, a.Failovers,
		a.PostedVerbs, a.DoorbellGroups, a.AvgQueueDepth(), a.OverlapSavedNS,
		a.FanoutWindows, a.FanoutSavedNS,
		a.AutoTuneSteps, a.AutoTuneBatch, a.AutoTuneDepth,
		a.Checkpoints, a.TruncatedBytes, a.RecoveryReplayOps,
		a.ServeAccepted, a.ServeRejected, a.ServeBreaker,
		a.ServeExpired, a.ServeSlowDrop, a.DeadlineMiss,
		a.TxPrepares, a.TxCrossCommits, a.TxCrossAborts, a.InDoubtResolved,
		a.StripeConflicts, a.CASRetries, a.MirrorReads, a.MirrorStaleEpochs,
		a.MigrationsActive, a.DoubleLoggedOps, a.CutoverEpochs,
	)
}
