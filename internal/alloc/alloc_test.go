package alloc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitmapAllocFree(t *testing.T) {
	b := NewBitmap(64, 1024)
	if b.FreeBlocks() != 64 {
		t.Fatalf("fresh bitmap free = %d", b.FreeBlocks())
	}
	blk, d, err := b.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len <= 0 {
		t.Fatal("alloc must dirty the bitmap")
	}
	for i := blk; i < blk+4; i++ {
		if !b.IsAllocated(i) {
			t.Fatalf("block %d not marked", i)
		}
	}
	if _, err := b.Free(blk, 4); err != nil {
		t.Fatal(err)
	}
	if b.FreeBlocks() != 64 {
		t.Fatal("free did not return blocks")
	}
}

func TestBitmapDoubleFree(t *testing.T) {
	b := NewBitmap(8, 64)
	blk, _, _ := b.Alloc(1)
	if _, err := b.Free(blk, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Free(blk, 1); err == nil {
		t.Fatal("double free must be detected")
	}
}

func TestBitmapExhaustion(t *testing.T) {
	b := NewBitmap(4, 64)
	for i := 0; i < 4; i++ {
		if _, _, err := b.Alloc(1); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := b.Alloc(1); err != ErrNoSpace {
		t.Fatalf("want ErrNoSpace, got %v", err)
	}
}

func TestBitmapContiguousAfterFragmentation(t *testing.T) {
	b := NewBitmap(16, 64)
	var blocks []int
	for i := 0; i < 16; i++ {
		blk, _, _ := b.Alloc(1)
		blocks = append(blocks, blk)
	}
	// Free every other block: no run of 2 exists.
	for i := 0; i < 16; i += 2 {
		_, _ = b.Free(blocks[i], 1)
	}
	if _, _, err := b.Alloc(2); err != ErrNoSpace {
		t.Fatalf("fragmented alloc of 2 must fail, got %v", err)
	}
	// Free a neighbour: now a run of 2 exists.
	_, _ = b.Free(blocks[1], 1)
	if _, _, err := b.Alloc(2); err != nil {
		t.Fatalf("contiguous alloc should succeed: %v", err)
	}
}

func TestBitmapPersistReload(t *testing.T) {
	b := NewBitmap(32, 128)
	b1, _, _ := b.Alloc(3)
	b2, _, _ := b.Alloc(1)
	img := append([]byte(nil), b.Bytes()...)
	r, err := LoadBitmap(img, 32, 128)
	if err != nil {
		t.Fatal(err)
	}
	if r.FreeBlocks() != 32-4 {
		t.Fatalf("reloaded free = %d, want 28", r.FreeBlocks())
	}
	for i := b1; i < b1+3; i++ {
		if !r.IsAllocated(i) {
			t.Fatal("reloaded bitmap lost allocation")
		}
	}
	if !r.IsAllocated(b2) {
		t.Fatal("reloaded bitmap lost allocation")
	}
}

// Property: random alloc/free sequences never hand out overlapping blocks
// and free count stays consistent.
func TestQuickBitmapNoOverlap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBitmap(128, 64)
		owned := map[int]int{} // start → len
		for i := 0; i < 300; i++ {
			if rng.Intn(2) == 0 {
				n := 1 + rng.Intn(4)
				blk, _, err := b.Alloc(n)
				if err != nil {
					continue
				}
				for s, l := range owned {
					if blk < s+l && s < blk+n {
						return false // overlap
					}
				}
				owned[blk] = n
			} else if len(owned) > 0 {
				for s, l := range owned {
					if _, err := b.Free(s, l); err != nil {
						return false
					}
					delete(owned, s)
					break
				}
			}
		}
		used := 0
		for _, l := range owned {
			used += l
		}
		return b.FreeBlocks() == 128-used
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// fakeSource is an in-memory SlabSource with alignment guarantees.
type fakeSource struct {
	next   uint64
	allocs map[uint64]int
	frees  int
}

func newFakeSource() *fakeSource {
	return &fakeSource{next: 1 << 20, allocs: map[uint64]int{}}
}

func (f *fakeSource) AllocSlab(n int) (uint64, error) {
	a := (f.next + uint64(n) - 1) &^ (uint64(n) - 1)
	f.next = a + uint64(n)
	f.allocs[a] = n
	return a, nil
}

func (f *fakeSource) FreeSlab(addr uint64, n int) error {
	if f.allocs[addr] != n {
		return ErrNoSpace
	}
	delete(f.allocs, addr)
	f.frees++
	return nil
}

func TestTwoTierBasic(t *testing.T) {
	src := newFakeSource()
	tt := NewTwoTier(src, 4096)
	a1, err := tt.Alloc(48) // class 64
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := tt.Alloc(48)
	if a1 == a2 {
		t.Fatal("duplicate allocation")
	}
	if len(src.allocs) != 1 {
		t.Fatalf("two small allocs must share one slab, got %d slabs", len(src.allocs))
	}
	if err := tt.Free(a1, 48); err != nil {
		t.Fatal(err)
	}
	if err := tt.Free(a1, 48); err == nil {
		t.Fatal("double free must fail")
	}
	if err := tt.Free(a2, 48); err != nil {
		t.Fatal(err)
	}
}

func TestTwoTierLargeBypass(t *testing.T) {
	src := newFakeSource()
	tt := NewTwoTier(src, 4096)
	a, err := tt.Alloc(10000) // > largest class → whole slabs
	if err != nil {
		t.Fatal(err)
	}
	if src.allocs[a] != 12288 {
		t.Fatalf("large alloc rounded to %d, want 12288", src.allocs[a])
	}
	if err := tt.Free(a, 10000); err != nil {
		t.Fatal(err)
	}
}

func TestTwoTierReclaim(t *testing.T) {
	src := newFakeSource()
	tt := NewTwoTier(src, 4096)
	// Fill several slabs of one class, then free everything: surplus
	// empty slabs must flow back to the source.
	var addrs []uint64
	for i := 0; i < 4096/64*5; i++ {
		a, err := tt.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	if len(src.allocs) != 5 {
		t.Fatalf("expected 5 slabs, got %d", len(src.allocs))
	}
	for _, a := range addrs {
		if err := tt.Free(a, 64); err != nil {
			t.Fatal(err)
		}
	}
	if src.frees < 3 {
		t.Fatalf("reclaim must return surplus empty slabs, freed %d", src.frees)
	}
	if err := tt.ReclaimAll(); err != nil {
		t.Fatal(err)
	}
	if len(src.allocs) != 0 {
		t.Fatalf("ReclaimAll left %d slabs", len(src.allocs))
	}
}

func TestTwoTierClassSeparation(t *testing.T) {
	src := newFakeSource()
	tt := NewTwoTier(src, 4096)
	small, _ := tt.Alloc(32)
	big, _ := tt.Alloc(2048)
	if small == big {
		t.Fatal("classes must not share blocks")
	}
	if err := tt.Free(small, 32); err != nil {
		t.Fatal(err)
	}
	if err := tt.Free(big, 2048); err != nil {
		t.Fatal(err)
	}
}

// Property: two-tier never returns overlapping live ranges.
func TestQuickTwoTierNoOverlap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tt := NewTwoTier(newFakeSource(), 4096)
		type rangeT struct{ a, n uint64 }
		var live []rangeT
		for i := 0; i < 200; i++ {
			if rng.Intn(3) > 0 {
				n := 1 + rng.Intn(3000)
				a, err := tt.Alloc(n)
				if err != nil {
					return false
				}
				for _, r := range live {
					if a < r.a+r.n && r.a < a+uint64(n) {
						return false
					}
				}
				live = append(live, rangeT{a, uint64(n)})
			} else if len(live) > 0 {
				i := rng.Intn(len(live))
				if err := tt.Free(live[i].a, int(live[i].n)); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
