package alloc

import (
	"math/rand"
	"testing"
)

func TestReclaimerCoalescesAcrossAdds(t *testing.T) {
	r := NewReclaimer(4096)
	// Two sub-page adds that only form a full page together.
	r.Add(0, 2048)
	if got := r.TakePages(); len(got) != 0 {
		t.Fatalf("half a page reclaimed pages: %+v", got)
	}
	r.Add(2048, 2048)
	got := r.TakePages()
	if len(got) != 1 || got[0] != (Span{Off: 0, Len: 4096}) {
		t.Fatalf("coalesced page not reclaimed: %+v", got)
	}
	if r.PendingBytes() != 0 {
		t.Fatalf("ledger not drained: %d pending", r.PendingBytes())
	}
}

func TestReclaimerLeavesUnalignedResidue(t *testing.T) {
	r := NewReclaimer(4096)
	r.Add(100, 3*4096) // covers pages 1 and 2 fully, fringes of 0 and 3
	got := r.TakePages()
	if len(got) != 1 || got[0] != (Span{Off: 4096, Len: 2 * 4096}) {
		t.Fatalf("aligned interior not reclaimed: %+v", got)
	}
	// Residue: [100,4096) and [3*4096, 100+3*4096).
	if want := uint64(4096 - 100 + 100); r.PendingBytes() != want {
		t.Fatalf("residue %d bytes, want %d", r.PendingBytes(), want)
	}
	// Completing the fringes releases both edge pages.
	r.Add(0, 100)
	r.Add(100+3*4096, 4096-100)
	got = r.TakePages()
	var total uint64
	for _, s := range got {
		total += s.Len
	}
	if total != 2*4096 || r.PendingBytes() != 0 {
		t.Fatalf("edge pages not released: %+v, %d pending", got, r.PendingBytes())
	}
}

// TestReclaimerModelCheck drives random adds against a bitmap model: a
// byte is "pending" from the Add that declares it dead until the TakePages
// that returns it; returned spans must be page aligned and must only cover
// pending bytes, and the ledger's PendingBytes must always match the model.
func TestReclaimerModelCheck(t *testing.T) {
	const page = 256
	const space = 64 * page
	rng := rand.New(rand.NewSource(42))
	r := NewReclaimer(page)
	pending := make([]bool, space)
	count := func() uint64 {
		var n uint64
		for _, p := range pending {
			if p {
				n++
			}
		}
		return n
	}
	drain := func() {
		for _, s := range r.TakePages() {
			if s.Off%page != 0 || s.Len%page != 0 {
				t.Fatalf("unaligned span %+v", s)
			}
			for b := s.Off; b < s.Off+s.Len; b++ {
				if !pending[b] {
					t.Fatalf("byte %d returned but not pending", b)
				}
				pending[b] = false
			}
		}
	}
	for i := 0; i < 200; i++ {
		off := uint64(rng.Intn(space - 1))
		n := uint64(1 + rng.Intn(space-int(off)))
		r.Add(off, n)
		for b := off; b < off+n; b++ {
			pending[b] = true
		}
		if rng.Intn(3) == 0 {
			drain()
		}
		if got, want := r.PendingBytes(), count(); got != want {
			t.Fatalf("step %d: ledger says %d pending, model says %d", i, got, want)
		}
	}
	drain()
	if got, want := r.PendingBytes(), count(); got != want {
		t.Fatalf("final: ledger says %d pending, model says %d", got, want)
	}
}
