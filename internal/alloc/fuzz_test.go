package alloc

import (
	"testing"
)

// FuzzBitmap interprets the fuzz input as a little program of alloc/free
// operations against a small bitmap, shadowed by a naive model, and
// checks after every step that:
//
//   - allocations never overlap live allocations and stay in range;
//   - the dirty range returned by each mutation covers the touched bits;
//   - the free counter matches the model exactly;
//   - double frees and out-of-range frees are rejected;
//   - the persisted image reloads (LoadBitmap) to the identical state —
//     the crash-recovery contract.
func FuzzBitmap(f *testing.F) {
	f.Add([]byte{0x02, 0x04, 0x01, 0x06, 0x03})
	f.Add([]byte{0x10, 0x10, 0x10, 0x10, 0x11, 0x11})
	f.Add([]byte{0xFF, 0x00, 0xFE, 0x01, 0x80, 0x7F})
	f.Add([]byte{})

	const nBlocks, blockSize = 64, 256
	f.Fuzz(func(t *testing.T, prog []byte) {
		bm := NewBitmap(nBlocks, blockSize)
		model := map[int]bool{} // block -> allocated
		type region struct{ block, n int }
		var live []region

		for pc := 0; pc < len(prog); pc++ {
			b := prog[pc]
			if b&1 == 0 || len(live) == 0 {
				// Alloc 1..8 blocks.
				n := int(b>>1)%8 + 1
				block, dr, err := bm.Alloc(n)
				if err != nil {
					if bm.FreeBlocks() >= n && err == ErrNoSpace {
						// Fragmentation can legitimately fail an alloc even
						// with enough total free blocks; a contiguous run
						// must genuinely be absent.
						if run := longestFreeRun(model, nBlocks); run >= n {
							t.Fatalf("Alloc(%d) failed with a free run of %d", n, run)
						}
					}
					continue
				}
				if block < 0 || block+n > nBlocks {
					t.Fatalf("Alloc(%d) returned out-of-range block %d", n, block)
				}
				for i := block; i < block+n; i++ {
					if model[i] {
						t.Fatalf("Alloc(%d) handed out live block %d", n, i)
					}
					model[i] = true
				}
				checkDirty(t, dr, block, block+n-1)
				live = append(live, region{block, n})
			} else {
				// Free a live region, sometimes corrupted to test rejection.
				idx := int(b>>1) % len(live)
				r := live[idx]
				if b&0x80 != 0 {
					// An out-of-range or double-free attempt must error and
					// leave the state untouched.
					freeBefore := bm.FreeBlocks()
					if _, err := bm.Free(nBlocks-1, 2); err == nil && !model[nBlocks-1] {
						t.Fatal("out-of-range/double free accepted")
					}
					if got := bm.FreeBlocks(); got != freeBefore && got != freeBefore+2 {
						t.Fatalf("failed free changed the free count: %d -> %d", freeBefore, got)
					}
					continue
				}
				dr, err := bm.Free(r.block, r.n)
				if err != nil {
					t.Fatalf("Free(%d,%d) of a live region: %v", r.block, r.n, err)
				}
				checkDirty(t, dr, r.block, r.block+r.n-1)
				for i := r.block; i < r.block+r.n; i++ {
					delete(model, i)
				}
				live = append(live[:idx], live[idx+1:]...)
				// A second free of the same region is a double free.
				if _, err := bm.Free(r.block, r.n); err == nil {
					t.Fatalf("double free of [%d,%d) accepted", r.block, r.block+r.n)
				}
			}

			if got, want := bm.FreeBlocks(), nBlocks-len(model); got != want {
				t.Fatalf("free count %d, model says %d", got, want)
			}
			for i := 0; i < nBlocks; i++ {
				if bm.IsAllocated(i) != model[i] {
					t.Fatalf("block %d allocation state diverged from model", i)
				}
			}
		}

		// Crash-recovery contract: reload the persisted image.
		re, err := LoadBitmap(bm.Bytes(), nBlocks, blockSize)
		if err != nil {
			t.Fatalf("LoadBitmap: %v", err)
		}
		if re.FreeBlocks() != bm.FreeBlocks() {
			t.Fatalf("reloaded free count %d != live %d", re.FreeBlocks(), bm.FreeBlocks())
		}
		for i := 0; i < nBlocks; i++ {
			if re.IsAllocated(i) != bm.IsAllocated(i) {
				t.Fatalf("reloaded block %d state diverged", i)
			}
		}
	})
}

// longestFreeRun scans the model for the longest contiguous free run.
func longestFreeRun(model map[int]bool, nBlocks int) int {
	best, run := 0, 0
	for i := 0; i < nBlocks; i++ {
		if model[i] {
			run = 0
			continue
		}
		run++
		if run > best {
			best = run
		}
	}
	return best
}

// checkDirty asserts the dirty byte range covers blocks [lo,hi].
func checkDirty(t *testing.T, dr DirtyRange, lo, hi int) {
	t.Helper()
	if dr.Off > lo/8 || dr.Off+dr.Len-1 < hi/8 {
		t.Fatalf("dirty range bytes [%d,%d) does not cover blocks [%d,%d]", dr.Off, dr.Off+dr.Len, lo, hi)
	}
}
