package alloc

// Reclaimer tracks byte ranges of a log that the compaction plane has
// declared dead (applied into the persistent area and checkpointed) and
// hands them back as page-granular spans. The back-end scrubs the returned
// spans and advances the log's truncation point, which is what actually
// returns the pages to the writer's free window — the log areas are
// circular, so "freeing" a page means letting the appender wrap over it.
//
// Ranges may arrive in any order and may be adjacent across calls; the
// ledger coalesces them so page spans straddling two Add calls are still
// reclaimed. Sub-page residue stays in the ledger until neighbouring bytes
// complete the page.
type Reclaimer struct {
	pageSize uint64
	spans    []Span // sorted by Off, disjoint, coalesced
}

// Span is one contiguous byte range.
type Span struct {
	Off uint64
	Len uint64
}

// NewReclaimer creates a ledger returning spans aligned to pageSize, which
// must be a power of two.
func NewReclaimer(pageSize uint64) *Reclaimer {
	if pageSize == 0 || pageSize&(pageSize-1) != 0 {
		panic("alloc: reclaimer page size must be a power of two")
	}
	return &Reclaimer{pageSize: pageSize}
}

// Add records [off, off+n) as dead, coalescing with existing entries.
func (r *Reclaimer) Add(off, n uint64) {
	if n == 0 {
		return
	}
	end := off + n
	// Find the insertion window: every span overlapping or touching
	// [off, end) is merged into one.
	i := 0
	for i < len(r.spans) && r.spans[i].Off+r.spans[i].Len < off {
		i++
	}
	j := i
	for j < len(r.spans) && r.spans[j].Off <= end {
		if r.spans[j].Off < off {
			off = r.spans[j].Off
		}
		if e := r.spans[j].Off + r.spans[j].Len; e > end {
			end = e
		}
		j++
	}
	merged := Span{Off: off, Len: end - off}
	r.spans = append(r.spans[:i], append([]Span{merged}, r.spans[j:]...)...)
}

// PendingBytes reports how many dead bytes sit in the ledger.
func (r *Reclaimer) PendingBytes() uint64 {
	var total uint64
	for _, s := range r.spans {
		total += s.Len
	}
	return total
}

// TakePages removes and returns every maximal page-aligned sub-span of the
// ledger. Residue smaller than a page (or unaligned edges) remains pending.
func (r *Reclaimer) TakePages() []Span {
	var out []Span
	var rest []Span
	mask := r.pageSize - 1
	for _, s := range r.spans {
		lo := (s.Off + mask) &^ mask
		hi := (s.Off + s.Len) &^ mask
		if hi <= lo {
			rest = append(rest, s)
			continue
		}
		out = append(out, Span{Off: lo, Len: hi - lo})
		if lo > s.Off {
			rest = append(rest, Span{Off: s.Off, Len: lo - s.Off})
		}
		if end := s.Off + s.Len; end > hi {
			rest = append(rest, Span{Off: hi, Len: end - hi})
		}
	}
	r.spans = rest
	return out
}
