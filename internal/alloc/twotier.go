package alloc

import (
	"fmt"
	"sort"
)

// SlabSource provides fixed-size slabs of back-end NVM; in the full system
// it is the RPC path to the back-end allocator (rnvm_malloc/rnvm_free).
type SlabSource interface {
	// AllocSlab returns the global address of a fresh slab of n bytes,
	// aligned to n.
	AllocSlab(n int) (uint64, error)
	// FreeSlab returns a slab to the back-end.
	FreeSlab(addr uint64, n int) error
}

// classSizes are the block sizes the front-end carves slabs into; Alloc
// picks the smallest class that fits (best fit).
var classSizes = []int{32, 64, 128, 256, 512, 1024, 2048}

// slab is one back-end slab subdivided into equal blocks of one class.
type slab struct {
	base   uint64
	class  int // index into the allocator's class table
	free   []uint32
	inUse  int
	blocks int
}

type classState struct {
	size    int
	partial map[uint64]*slab // has both free and used blocks
	empty   []*slab          // fully free, kept for reuse then reclaimed
}

// TwoTier is the front-end allocator of §5.2. Not safe for concurrent
// use: each front-end actor owns one.
type TwoTier struct {
	src       SlabSource
	slabSize  int
	classes   []classState
	byBase    map[uint64]*slab // every live slab, keyed by base address
	maxEmpty  int              // empty slabs retained per class before reclaim
	allocated int64
}

// NewTwoTier builds a front-end allocator over src handing out slabs of
// slabSize bytes (a power of two, at least twice the largest class).
func NewTwoTier(src SlabSource, slabSize int) *TwoTier {
	if slabSize&(slabSize-1) != 0 {
		panic("alloc: slab size must be a power of two")
	}
	sizes := make([]int, 0, len(classSizes))
	for _, s := range classSizes {
		if s <= slabSize/2 {
			sizes = append(sizes, s)
		}
	}
	if len(sizes) == 0 {
		panic(fmt.Sprintf("alloc: slab size %d too small for any class", slabSize))
	}
	t := &TwoTier{
		src:      src,
		slabSize: slabSize,
		byBase:   make(map[uint64]*slab),
		maxEmpty: 2,
	}
	for i, s := range sizes {
		_ = i
		t.classes = append(t.classes, classState{size: s, partial: make(map[uint64]*slab)})
	}
	return t
}

// Allocated reports the bytes currently handed out (by class size).
func (t *TwoTier) Allocated() int64 { return t.allocated }

// classFor returns the index of the smallest class >= size, or -1 when the
// request is larger than every class (then it goes straight to the source).
func (t *TwoTier) classFor(size int) int {
	i := sort.SearchInts(classSizesOf(t.classes), size)
	if i == len(t.classes) {
		return -1
	}
	return i
}

func classSizesOf(cs []classState) []int {
	out := make([]int, len(cs))
	for i := range cs {
		out[i] = cs[i].size
	}
	return out
}

// Alloc returns the global NVM address of size bytes. Requests larger
// than the largest class bypass the slab layer and allocate whole slabs
// (rounded up) from the source, as the paper prescribes.
func (t *TwoTier) Alloc(size int) (uint64, error) {
	if size <= 0 {
		return 0, fmt.Errorf("alloc: bad size %d", size)
	}
	ci := t.classFor(size)
	if ci < 0 {
		n := (size + t.slabSize - 1) / t.slabSize * t.slabSize
		return t.src.AllocSlab(n)
	}
	cs := &t.classes[ci]
	var sl *slab
	for _, s := range cs.partial {
		sl = s
		break
	}
	if sl == nil {
		if n := len(cs.empty); n > 0 {
			sl = cs.empty[n-1]
			cs.empty = cs.empty[:n-1]
			cs.partial[sl.base] = sl
		}
	}
	if sl == nil {
		base, err := t.src.AllocSlab(t.slabSize)
		if err != nil {
			return 0, err
		}
		blocks := t.slabSize / cs.size
		sl = &slab{base: base, class: ci, blocks: blocks, free: make([]uint32, 0, blocks)}
		for b := blocks - 1; b >= 0; b-- {
			sl.free = append(sl.free, uint32(b))
		}
		t.byBase[base] = sl
		cs.partial[base] = sl
	}
	idx := sl.free[len(sl.free)-1]
	sl.free = sl.free[:len(sl.free)-1]
	sl.inUse++
	if len(sl.free) == 0 {
		delete(cs.partial, sl.base) // full slabs leave the partial list
	}
	t.allocated += int64(cs.size)
	return sl.base + uint64(idx)*uint64(cs.size), nil
}

// Free returns size bytes at addr. The size must match the Alloc request
// (as with C-style slab allocators, the caller tracks sizes; every
// data-structure node in this codebase has a static layout).
func (t *TwoTier) Free(addr uint64, size int) error {
	ci := t.classFor(size)
	if ci < 0 {
		n := (size + t.slabSize - 1) / t.slabSize * t.slabSize
		return t.src.FreeSlab(addr, n)
	}
	base := addr &^ (uint64(t.slabSize) - 1)
	sl, ok := t.byBase[base]
	if !ok {
		return fmt.Errorf("alloc: free of unknown slab %#x", addr)
	}
	cs := &t.classes[sl.class]
	off := addr - base
	if off%uint64(cs.size) != 0 {
		return fmt.Errorf("alloc: misaligned free %#x for class %d", addr, cs.size)
	}
	idx := uint32(off / uint64(cs.size))
	for _, f := range sl.free {
		if f == idx {
			return fmt.Errorf("alloc: double free of %#x", addr)
		}
	}
	wasFull := len(sl.free) == 0
	sl.free = append(sl.free, idx)
	sl.inUse--
	t.allocated -= int64(cs.size)
	if wasFull {
		cs.partial[sl.base] = sl
	}
	if sl.inUse == 0 {
		delete(cs.partial, sl.base)
		cs.empty = append(cs.empty, sl)
		return t.reclaim(cs)
	}
	return nil
}

// reclaim frees surplus empty slabs back to the back-end (the periodic
// reclamation of §5.2, triggered when the free-block threshold is hit).
func (t *TwoTier) reclaim(cs *classState) error {
	for len(cs.empty) > t.maxEmpty {
		sl := cs.empty[len(cs.empty)-1]
		cs.empty = cs.empty[:len(cs.empty)-1]
		delete(t.byBase, sl.base)
		if err := t.src.FreeSlab(sl.base, t.slabSize); err != nil {
			return err
		}
	}
	return nil
}

// ReclaimAll releases every empty slab immediately (used on shutdown).
func (t *TwoTier) ReclaimAll() error {
	for i := range t.classes {
		cs := &t.classes[i]
		for _, sl := range cs.empty {
			delete(t.byBase, sl.base)
			if err := t.src.FreeSlab(sl.base, t.slabSize); err != nil {
				return err
			}
		}
		cs.empty = nil
	}
	return nil
}
