// Package alloc implements AsymNVM's two-tier memory management (§5):
//
//   - Bitmap is the back-end allocator: block-granular, backed by a
//     persistent bitmap in NVM so allocation state survives crashes and
//     can be reconstructed during recovery;
//   - TwoTier is the front-end allocator: it obtains fixed-size slabs
//     from the back-end (over RPC) and subdivides them into size classes
//     with best-fit selection, keeping slabs on full/partial/empty lists
//     and reclaiming surplus empty slabs back to the back-end.
//
// As in the paper, sub-slab allocation state lives only in front-end
// DRAM: after a front-end crash, recovery reconstructs allocation status
// at slab granularity from the back-end bitmap.
package alloc

import (
	"errors"
	"fmt"
)

// ErrNoSpace is returned when an allocation cannot be satisfied.
var ErrNoSpace = errors.New("alloc: out of space")

// Bitmap is the back-end block allocator. One bit per block; methods
// return the byte range of the bitmap dirtied by each mutation so the
// caller can persist exactly that range to NVM.
type Bitmap struct {
	bits      []byte
	nBlocks   int
	blockSize int
	cursor    int // next-fit rotating cursor
	freeCnt   int
}

// NewBitmap creates an allocator for nBlocks blocks of blockSize bytes.
func NewBitmap(nBlocks, blockSize int) *Bitmap {
	if nBlocks <= 0 || blockSize <= 0 {
		panic("alloc: non-positive bitmap geometry")
	}
	return &Bitmap{
		bits:      make([]byte, (nBlocks+7)/8),
		nBlocks:   nBlocks,
		blockSize: blockSize,
		freeCnt:   nBlocks,
	}
}

// LoadBitmap reconstructs an allocator from a persisted bitmap image.
func LoadBitmap(img []byte, nBlocks, blockSize int) (*Bitmap, error) {
	if len(img) < (nBlocks+7)/8 {
		return nil, fmt.Errorf("alloc: bitmap image %d bytes, need %d", len(img), (nBlocks+7)/8)
	}
	b := NewBitmap(nBlocks, blockSize)
	copy(b.bits, img)
	free := 0
	for i := 0; i < nBlocks; i++ {
		if !b.isSet(i) {
			free++
		}
	}
	b.freeCnt = free
	return b, nil
}

// Bytes exposes the live bitmap image (do not mutate).
func (b *Bitmap) Bytes() []byte { return b.bits }

// BlockSize reports the block size in bytes.
func (b *Bitmap) BlockSize() int { return b.blockSize }

// Blocks reports the total number of blocks.
func (b *Bitmap) Blocks() int { return b.nBlocks }

// FreeBlocks reports how many blocks are unallocated.
func (b *Bitmap) FreeBlocks() int { return b.freeCnt }

func (b *Bitmap) isSet(i int) bool { return b.bits[i/8]&(1<<(i%8)) != 0 }
func (b *Bitmap) set(i int)        { b.bits[i/8] |= 1 << (i % 8) }
func (b *Bitmap) clear(i int)      { b.bits[i/8] &^= 1 << (i % 8) }

// DirtyRange is a byte range of the bitmap that a mutation touched.
type DirtyRange struct{ Off, Len int }

func dirty(lo, hi int) DirtyRange { // block index range → byte range
	return DirtyRange{Off: lo / 8, Len: hi/8 - lo/8 + 1}
}

// Alloc finds n contiguous free blocks (next-fit from the rotating
// cursor) and marks them allocated. It returns the first block index and
// the dirtied bitmap range.
func (b *Bitmap) Alloc(n int) (int, DirtyRange, error) {
	if n <= 0 {
		return 0, DirtyRange{}, fmt.Errorf("alloc: bad block count %d", n)
	}
	if n > b.freeCnt {
		return 0, DirtyRange{}, ErrNoSpace
	}
	start := b.cursor
	run := 0
	runStart := 0
	scanned := 0
	i := start
	for scanned < 2*b.nBlocks { // two passes cover wrap-around runs
		if i == b.nBlocks {
			i = 0
			run = 0 // contiguous runs do not wrap the end of the area
			scanned++
			continue
		}
		if b.isSet(i) {
			run = 0
		} else {
			if run == 0 {
				runStart = i
			}
			run++
			if run == n {
				for j := runStart; j <= i; j++ {
					b.set(j)
				}
				b.freeCnt -= n
				b.cursor = (i + 1) % b.nBlocks
				return runStart, dirty(runStart, i), nil
			}
		}
		i++
		scanned++
	}
	return 0, DirtyRange{}, ErrNoSpace
}

// Free marks n blocks starting at block as free. Double frees are
// reported as errors so callers can surface corruption.
func (b *Bitmap) Free(block, n int) (DirtyRange, error) {
	if block < 0 || n <= 0 || block+n > b.nBlocks {
		return DirtyRange{}, fmt.Errorf("alloc: bad free range [%d,%d)", block, block+n)
	}
	for i := block; i < block+n; i++ {
		if !b.isSet(i) {
			return DirtyRange{}, fmt.Errorf("alloc: double free of block %d", i)
		}
	}
	for i := block; i < block+n; i++ {
		b.clear(i)
	}
	b.freeCnt += n
	return dirty(block, block+n-1), nil
}

// IsAllocated reports whether a block is currently allocated.
func (b *Bitmap) IsAllocated(block int) bool {
	return block >= 0 && block < b.nBlocks && b.isSet(block)
}
