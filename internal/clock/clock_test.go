package clock

import (
	"testing"
	"time"
)

func TestVirtualAdvance(t *testing.T) {
	c := NewVirtual()
	if c.Now() != 0 {
		t.Fatalf("fresh clock at %v, want 0", c.Now())
	}
	c.Advance(3 * time.Microsecond)
	c.Advance(500 * time.Nanosecond)
	if got := c.Now(); got != 3500*time.Nanosecond {
		t.Fatalf("Now = %v, want 3.5µs", got)
	}
	c.Advance(-time.Second) // negative charges are ignored
	if got := c.Now(); got != 3500*time.Nanosecond {
		t.Fatalf("Now after negative advance = %v, want 3.5µs", got)
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("Now after reset = %v, want 0", c.Now())
	}
}

func TestZeroClock(t *testing.T) {
	Zero.Advance(time.Hour)
	if Zero.Now() != 0 {
		t.Fatal("Zero clock must stay at 0")
	}
}

func TestVirtualConcurrent(t *testing.T) {
	c := NewVirtual()
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			for j := 0; j < 1000; j++ {
				c.Advance(time.Nanosecond)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if got := c.Now(); got != 4000*time.Nanosecond {
		t.Fatalf("concurrent advance lost updates: %v", got)
	}
}

func TestProfileCosts(t *testing.T) {
	p := DefaultProfile()
	if p.ReadCost(0) < p.RDMARTT {
		t.Fatal("read cost must include at least one RTT")
	}
	small := p.ReadCost(8)
	big := p.ReadCost(1 << 20)
	if big <= small {
		t.Fatal("large transfers must cost more than small ones")
	}
	if p.WriteCost(64) <= p.RDMARTT {
		t.Fatal("write cost must add media latency on top of the RTT")
	}
	z := ZeroProfile()
	if z.ReadCost(4096) != 0 || z.WriteCost(4096) != 0 {
		t.Fatal("zero profile must be free")
	}
}

func TestTransferMonotone(t *testing.T) {
	p := DefaultProfile()
	if p.NetTransfer(-1) != 0 || p.NetTransfer(0) != 0 {
		t.Fatal("non-positive sizes are free")
	}
	// 5 GB/s → 1 KiB ≈ 204 ns.
	d := p.NetTransfer(1024)
	if d < 150*time.Nanosecond || d > 300*time.Nanosecond {
		t.Fatalf("1 KiB at 5 GB/s = %v, expected ≈205ns", d)
	}
}
