// Package clock provides virtual per-actor time for the AsymNVM simulator.
//
// The reproduction runs the whole "cluster" inside one process. Real
// micro-second-scale sleeps would measure the host scheduler rather than the
// system under test, so instead every actor (a front-end operation loop, the
// back-end log replayer, an RPC poller) owns a Clock and charges simulated
// latency to it. Throughput numbers reported by the benchmark harness are
// computed from virtual elapsed time, which preserves the latency *ratios*
// the paper's results are built from (RDMA round-trips vs. NVM media
// latency vs. DRAM hits).
package clock

import (
	"sync/atomic"
	"time"
)

// Clock is the interface actors charge latency to.
//
// Implementations must be safe for use by a single actor goroutine; the
// Virtual implementation is additionally safe for concurrent readers of
// Now (e.g. the stats collector).
type Clock interface {
	// Advance charges d of simulated time to the actor.
	Advance(d time.Duration)
	// Now returns the actor's virtual elapsed time since creation or the
	// last Reset.
	Now() time.Duration
}

// Virtual is a virtual-time clock: Advance simply accumulates.
type Virtual struct {
	ns atomic.Int64
}

// NewVirtual returns a fresh virtual clock at time zero.
func NewVirtual() *Virtual { return &Virtual{} }

// Advance adds d to the virtual time. Negative durations are ignored.
func (v *Virtual) Advance(d time.Duration) {
	if d > 0 {
		v.ns.Add(int64(d))
	}
}

// Now reports the accumulated virtual time.
func (v *Virtual) Now() time.Duration { return time.Duration(v.ns.Load()) }

// Reset sets the clock back to zero.
func (v *Virtual) Reset() { v.ns.Store(0) }

// zero is a Clock that discards all charges. Unit tests that do not care
// about latency use it so they run at full host speed.
type zero struct{}

func (zero) Advance(time.Duration) {}
func (zero) Now() time.Duration    { return 0 }

// Zero is a shared no-op clock.
var Zero Clock = zero{}
