package clock

import "time"

// Profile holds the latency model of the simulated hardware. The defaults
// follow the numbers quoted in the paper (§3.2): an RDMA round trip of
// about 2 µs and NVM media latency of about 100 ns for reads and 300 ns for
// writes, with InfiniBand-class bandwidth for large transfers.
type Profile struct {
	// RDMARTT is the round-trip time of a one-sided RDMA verb.
	RDMARTT time.Duration
	// RDMAAtomic is the round-trip time of an RDMA atomic verb (CAS,
	// fetch-and-add). Atomics are slightly more expensive than plain
	// verbs on real NICs.
	RDMAAtomic time.Duration
	// NVMRead is the media latency of reading one block (<=256 B) of NVM.
	NVMRead time.Duration
	// NVMWrite is the media latency of persisting one block of NVM.
	NVMWrite time.Duration
	// DRAMAccess is the latency of one local DRAM cache access.
	DRAMAccess time.Duration
	// PersistBarrier is the cost of a local persist fence
	// (clwb+sfence), charged by the symmetric baseline.
	PersistBarrier time.Duration
	// NetBytesPerSec is the network bandwidth used for the size-dependent
	// term of large transfers.
	NetBytesPerSec float64
	// NVMBytesPerSec is the device bandwidth for the size-dependent term
	// of large media accesses.
	NVMBytesPerSec float64
	// CPUByte approximates per-byte software cost of building or copying
	// a buffer (marshalling logs, memcpy into the cache).
	CPUByte time.Duration
	// CPUOp approximates fixed per-operation software cost (function-call
	// overhead, hashing, comparisons) charged once per data-structure
	// operation.
	CPUOp time.Duration
	// WRIssue is the CPU cost of posting one work request to a send
	// queue (building the WQE and writing it to the NIC). It is charged
	// per posted verb; the round trip itself is charged per doorbell
	// group, which is what makes deep pipelines cheaper than synchronous
	// verbs.
	WRIssue time.Duration
}

// DefaultProfile returns the latency model used by the benchmark harness.
func DefaultProfile() Profile {
	return Profile{
		RDMARTT:        2 * time.Microsecond,
		RDMAAtomic:     2200 * time.Nanosecond,
		NVMRead:        100 * time.Nanosecond,
		NVMWrite:       300 * time.Nanosecond,
		DRAMAccess:     80 * time.Nanosecond,
		PersistBarrier: 250 * time.Nanosecond,
		NetBytesPerSec: 5e9, // ~40 Gb/s InfiniBand
		NVMBytesPerSec: 2e9, // Optane DC write bandwidth class
		CPUByte:        0,   // folded into bandwidth terms
		CPUOp:          150 * time.Nanosecond,
		WRIssue:        100 * time.Nanosecond,
	}
}

// ZeroProfile returns a profile with no latency at all; unit tests use it.
func ZeroProfile() Profile { return Profile{NetBytesPerSec: 0, NVMBytesPerSec: 0} }

// NetTransfer returns the size-dependent network cost of moving n bytes.
func (p Profile) NetTransfer(n int) time.Duration {
	if p.NetBytesPerSec <= 0 || n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / p.NetBytesPerSec * float64(time.Second))
}

// NVMTransfer returns the size-dependent media cost of moving n bytes.
func (p Profile) NVMTransfer(n int) time.Duration {
	if p.NVMBytesPerSec <= 0 || n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / p.NVMBytesPerSec * float64(time.Second))
}

// ReadCost is the full cost, charged at the initiator, of a one-sided
// RDMA read of n bytes from remote NVM.
func (p Profile) ReadCost(n int) time.Duration {
	return p.RDMARTT + p.NVMRead + p.NetTransfer(n) + p.NVMTransfer(n)
}

// WriteCost is the full cost of a one-sided RDMA write of n bytes that is
// acknowledged only after it reaches the remote persistence domain.
func (p Profile) WriteCost(n int) time.Duration {
	return p.RDMARTT + p.NVMWrite + p.NetTransfer(n) + p.NVMTransfer(n)
}

// LocalNVMRead is the cost of a local (symmetric baseline) NVM read of n bytes.
func (p Profile) LocalNVMRead(n int) time.Duration {
	return p.NVMRead + p.NVMTransfer(n)
}

// LocalNVMWrite is the cost of a local persisted NVM write of n bytes.
func (p Profile) LocalNVMWrite(n int) time.Duration {
	return p.NVMWrite + p.NVMTransfer(n)
}
