package bench

import (
	"fmt"

	"asymnvm/internal/cluster"
	"asymnvm/internal/core"
	"asymnvm/internal/ds"
	"asymnvm/internal/workload"
)

// Tx2PCSweep prices the cross-shard transaction plane: two-key writes
// through three commit paths — plain per-partition puts ("plain"), a
// one-participant transaction ("single": prepare + commit record +
// apply on one shard), and a spanning transaction ("cross": the full
// two-phase commit across two back-ends) — at pipeline depths 1/4/16.
// The claim under test is that 2PC's cross-shard surcharge is the
// fan-out, not a protocol tax: at depth 16 the second participant's
// prepare and apply ride their own doorbells but everything else is
// shared with the single-shard path, so a cross-shard commit costs at
// most two doorbell round trips over single-shard. Extra carries
// doorbells/verbs/prepares per transaction so the surcharge is
// attributable.
func Tx2PCSweep(sc Scale) ([]Row, error) {
	var rows []Row
	for _, depth := range []int{1, 4, 16} {
		for _, series := range []string{"plain", "single", "cross"} {
			row, err := measureTx2PCCell(series, depth, sc)
			if err != nil {
				return nil, fmt.Errorf("tx2pc %s depth=%d: %w", series, depth, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// tx2pcKeys picks the two written keys for a series: both in partition
// 0 (plain and single) or one in partition 0 and one in partition 1
// (cross — with partitions striped round-robin over two back-ends,
// partition 1 lives on the second node).
func tx2pcKeys(p *ds.Partitioned, series string) [2]uint64 {
	var keys [2]uint64
	want := [2]int{0, 0}
	if series == "cross" {
		want[1] = 1
	}
	k := uint64(1)
	for i := 0; i < 2; k++ {
		if p.PartIndex(k) == want[i] && (i == 0 || k != keys[0]) {
			keys[i] = k
			i++
		}
	}
	return keys
}

// measureTx2PCCell runs one (series, depth) cell: sc.Ops two-key writes
// against a four-partition hash table striped across two back-ends.
func measureTx2PCCell(series string, depth int, sc Scale) (Row, error) {
	ccfg := cluster.DefaultConfig()
	ccfg.Backends = 2
	ccfg.DeviceBytes = 64 << 20
	ccfg.Tracer = liveTracer
	cl, err := cluster.New(ccfg)
	if err != nil {
		return Row{}, err
	}
	defer cl.Stop()
	fe, conns, err := cl.NewFrontend(1, core.ModeR().WithPipeline(depth))
	if err != nil {
		return Row{}, err
	}
	p, err := ds.CreatePartitioned(conns, ds.KindHashTable, "tx2pc", 4, ds.Options{
		Create: scaleCreateOpts(), Buckets: 1 << 10,
	})
	if err != nil {
		return Row{}, err
	}
	tc, err := core.NewTxCoordinator(conns[0], "tx2pc.txc")
	if err != nil {
		return Row{}, err
	}
	for k := uint64(1); k <= uint64(sc.Seed); k++ {
		if err := p.Put(k, workload.Value(k, 64)); err != nil {
			return Row{}, err
		}
		if k%256 == 0 {
			if err := p.FlushAll(); err != nil {
				return Row{}, err
			}
		}
	}
	if err := p.DrainAll(); err != nil {
		return Row{}, err
	}

	keys := tx2pcKeys(p, series)
	kv := []uint64{keys[0], keys[1]}
	vals := [][]byte{nil, nil}
	st := fe.Stats()
	before := st.Snapshot()
	start := fe.Clock().Now()
	for i := 0; i < sc.Ops; i++ {
		vals[0] = workload.Value(uint64(2*i), 64)
		vals[1] = workload.Value(uint64(2*i+1), 64)
		if series == "plain" {
			err = p.PutMulti(kv, vals)
		} else {
			err = p.TxPutMulti(tc, kv, vals)
		}
		if err != nil {
			return Row{}, err
		}
	}
	// Close the commit chain so the trailing End is inside the window —
	// the per-transaction averages then amortize it like every other End.
	if series != "plain" {
		if err := tc.Quiesce(); err != nil {
			return Row{}, err
		}
	}
	if err := p.FlushAll(); err != nil {
		return Row{}, err
	}
	elapsed := fe.Clock().Now() - start
	d := st.Snapshot().Sub(before)
	perTx := func(n int64) float64 { return float64(n) / float64(sc.Ops) }
	return Row{
		Experiment: "tx2pc", Series: series,
		Label: fmt.Sprintf("depth=%d", depth), X: float64(depth),
		KOPS: kopsOf(sc.Ops, elapsed),
		Extra: map[string]float64{
			"doorbells_per_tx": perTx(d.DoorbellGroups),
			"verbs_per_tx":     perTx(d.RDMAVerbs()),
			"prepares_per_tx":  perTx(d.TxPrepares),
			"commits":          float64(d.TxCrossCommits),
			"virtual_ns":       float64(elapsed.Nanoseconds()),
		},
	}, nil
}
