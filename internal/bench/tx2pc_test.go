package bench

import "testing"

// TestTx2PCDoorbellSurcharge pins the cross-shard commit price: at
// pipeline depth 16 a spanning two-key transaction may cost at most two
// doorbell round trips more than the same transaction confined to one
// shard — the second participant's prepare and its apply decision, and
// nothing else. A third doorbell appearing here means the coordinator
// stopped sharing work between the phases (e.g. the commit record or
// the End stopped riding an existing group).
func TestTx2PCDoorbellSurcharge(t *testing.T) {
	sc := Scale{Seed: 500, Ops: 400, Keys: 4000}
	rows, err := Tx2PCSweep(sc)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Row{}
	for _, r := range rows {
		byKey[r.Series+"/"+r.Label] = r
	}
	single, ok := byKey["single/depth=16"]
	if !ok {
		t.Fatal("sweep lost the single/depth=16 cell")
	}
	cross, ok := byKey["cross/depth=16"]
	if !ok {
		t.Fatal("sweep lost the cross/depth=16 cell")
	}
	sdb, cdb := single.Extra["doorbells_per_tx"], cross.Extra["doorbells_per_tx"]
	if sdb <= 0 || cdb <= 0 {
		t.Fatalf("doorbell counters empty at depth 16: single=%.2f cross=%.2f", sdb, cdb)
	}
	if surcharge := cdb - sdb; surcharge > 2.01 {
		t.Errorf("cross-shard commit costs %.2f doorbells/tx over single-shard's %.2f — surcharge %.2f exceeds the 2-RTT budget", cdb, sdb, surcharge)
	}
	// The protocol counters must match the workload exactly: one prepare
	// per participant, every transaction reaching its commit record.
	for series, wantPrep := range map[string]float64{"single": 1, "cross": 2} {
		r := byKey[series+"/depth=16"]
		if got := r.Extra["prepares_per_tx"]; got != wantPrep {
			t.Errorf("%s: %.2f prepares/tx, want %.0f", series, got, wantPrep)
		}
		if got := r.Extra["commits"]; got != float64(sc.Ops) {
			t.Errorf("%s: %.0f commit records, want %d", series, got, sc.Ops)
		}
	}
	if plain := byKey["plain/depth=16"]; plain.KOPS <= 0 || cross.KOPS <= 0 {
		t.Fatalf("throughput collapsed: plain=%.1f cross=%.1f KOPS", plain.KOPS, cross.KOPS)
	}
}
