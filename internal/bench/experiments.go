package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"asymnvm/internal/backend"
	"asymnvm/internal/clock"
	"asymnvm/internal/cluster"
	"asymnvm/internal/core"
	"asymnvm/internal/ds"
	"asymnvm/internal/nvm"
	"asymnvm/internal/stats"
	"asymnvm/internal/symmetric"
	"asymnvm/internal/workload"
)

// Table3 reproduces the headline comparison: ten benchmarks across the
// six configurations, 100% write workload, one front-end on one back-end.
func Table3(sc Scale) ([]Row, error) {
	var rows []Row
	for _, name := range table3Benchmarks {
		for _, cfg := range table3Configs() {
			if !supportsConfig(name, cfg.series) {
				continue
			}
			kops, err := measureCell(name, cfg, sc, 100)
			if err != nil {
				return nil, fmt.Errorf("table3 %s/%s: %w", name, cfg.series, err)
			}
			rows = append(rows, Row{Experiment: "table3", Series: cfg.series, Label: name, KOPS: kops})
		}
	}
	return rows, nil
}

// Table2 reproduces the allocator comparison of §5.2: alloc/free
// throughput in MOPS for Glibc (volatile, modeled as pure CPU cost),
// Pmem (local persistent allocator), the raw RPC allocator, and the
// two-tier allocator with 128-byte and 1024-byte slabs.
func Table2(ops int) ([]Row, error) {
	var rows []Row
	add := func(series string, allocMOPS, freeMOPS float64) {
		rows = append(rows, Row{
			Experiment: "table2", Series: series, Label: "alloc", KOPS: allocMOPS * 1000,
			Extra: map[string]float64{"alloc_MOPS": allocMOPS, "free_MOPS": freeMOPS},
		})
	}

	// Glibc: a volatile allocator costs tens of nanoseconds of CPU and
	// no persistence. Modeled as fixed CPU costs (measured DRAM-speed
	// malloc/free on the paper's testbed class).
	const glibcAlloc, glibcFree = 48 * time.Nanosecond, 18 * time.Nanosecond
	add("Glibc", 1e3/float64(glibcAlloc.Nanoseconds()), 1e3/float64(glibcFree.Nanoseconds()))

	// Pmem: the persistent allocator running locally — the back-end
	// bitmap allocator through a zero-RTT ring (bitmap persist + barrier
	// on every call).
	{
		node, err := symmetric.New(64 << 20)
		if err != nil {
			return nil, err
		}
		conn, err := node.Client(1, 1)
		if err != nil {
			node.Stop()
			return nil, err
		}
		aMOPS, fMOPS, err := measureRawAlloc(conn, ops)
		node.Stop()
		if err != nil {
			return nil, err
		}
		add("Pmem", aMOPS, fMOPS)
	}

	// RPC allocator: every allocation is a remote ring RPC.
	{
		cl, err := newAsymCluster(64 << 20)
		if err != nil {
			return nil, err
		}
		_, conns, err := cl.NewFrontend(1, core.ModeR())
		if err != nil {
			cl.Stop()
			return nil, err
		}
		aMOPS, fMOPS, err := measureRawAlloc(conns[0], ops)
		cl.Stop()
		if err != nil {
			return nil, err
		}
		add("RPC allocator", aMOPS, fMOPS)
	}

	// Two-tier with 128-byte and 1024-byte slabs: sub-slab allocations
	// are front-end-local; the RPC cost amortizes over blocks per slab.
	for _, slab := range []int{128, 1024} {
		cfg := backend.Config{BlockSize: slab, RPCSlots: 16, NameEntries: 64}
		aMOPS, fMOPS, err := measureTwoTier(cfg, ops)
		if err != nil {
			return nil, err
		}
		add(fmt.Sprintf("Two-tier (slab %dB)", slab), aMOPS, fMOPS)
	}
	return rows, nil
}

// measureRawAlloc times ring-RPC malloc/free pairs.
func measureRawAlloc(conn *core.Conn, ops int) (float64, float64, error) {
	fe := conn.Frontend()
	addrs := make([]uint64, 0, ops)
	start := fe.Clock().Now()
	for i := 0; i < ops; i++ {
		a, err := conn.Malloc(uint64(32 + i%97))
		if err != nil {
			return 0, 0, err
		}
		addrs = append(addrs, a)
	}
	allocT := fe.Clock().Now() - start
	start = fe.Clock().Now()
	for i, a := range addrs {
		if err := conn.Free(a, uint64(32+i%97)); err != nil {
			return 0, 0, err
		}
	}
	freeT := fe.Clock().Now() - start
	return mops(ops, allocT), mops(ops, freeT), nil
}

// measureTwoTier times front-end slab allocations over a back-end with
// the given block (slab) size.
func measureTwoTier(cfg backend.Config, ops int) (float64, float64, error) {
	prof := clock.DefaultProfile()
	dev := nvm.NewDevice(64 << 20)
	bk, err := backend.New(dev, backend.Options{ID: 0, Profile: &prof, Config: &cfg})
	if err != nil {
		return 0, 0, err
	}
	bk.Start()
	defer bk.Stop()
	fe := core.NewFrontend(core.FrontendOptions{ID: 1, Mode: core.ModeR(), Profile: &prof})
	conn, err := fe.Connect(bk)
	if err != nil {
		return 0, 0, err
	}
	size := 32
	if cfg.BlockSize >= 1024 {
		size = 96 // exercises several size classes under a 1 KiB slab
	}
	addrs := make([]uint64, 0, ops)
	start := fe.Clock().Now()
	for i := 0; i < ops; i++ {
		a, err := conn.Alloc(size)
		if err != nil {
			return 0, 0, err
		}
		addrs = append(addrs, a)
	}
	allocT := fe.Clock().Now() - start
	start = fe.Clock().Now()
	for _, a := range addrs {
		if err := conn.Release(a, size); err != nil {
			return 0, 0, err
		}
	}
	freeT := fe.Clock().Now() - start
	return mops(ops, allocT), mops(ops, freeT), nil
}

func mops(ops int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(ops) / d.Seconds() / 1e6
}

// Fig6BatchSize sweeps the batch size for the lock-free panel (MV-BST,
// MV-BPT, SkipList) and the lock-based panel (BST, BPT, TATP), 100%
// write, reproducing Figure 6.
func Fig6BatchSize(sc Scale, batches []int) ([]Row, error) {
	if len(batches) == 0 {
		batches = []int{1, 4, 16, 64, 256, 1024, 4096}
	}
	var rows []Row
	for _, name := range []string{"MV-BST", "MV-BPT", "SkipList", "BST", "BPT", "TX(TATP)"} {
		for _, b := range batches {
			cfg := configCell{
				series:   fmt.Sprintf("%s", name),
				mode:     core.ModeRCB(0, b),
				cachePct: 10,
			}
			kops, err := measureCell(name, cfg, sc, 100)
			if err != nil {
				return nil, fmt.Errorf("fig6 %s b=%d: %w", name, b, err)
			}
			rows = append(rows, Row{Experiment: "fig6", Series: name, X: float64(b), KOPS: kops})
		}
	}
	return rows, nil
}

// Fig7CacheSize sweeps the cache size (1/5/10/20% of the structure's NVM
// footprint), reproducing Figure 7.
func Fig7CacheSize(sc Scale) ([]Row, error) {
	var rows []Row
	for _, name := range []string{"BPT", "BST", "SkipList", "TX(TATP)", "MV-BPT", "MV-BST", "HashTable", "TX(SmallBank)"} {
		for _, pct := range []float64{1, 5, 10, 20} {
			cfg := configCell{mode: core.ModeRC(0), cachePct: pct}
			kops, err := measureCell(name, cfg, sc, 100)
			if err != nil {
				return nil, fmt.Errorf("fig7 %s %.0f%%: %w", name, pct, err)
			}
			rows = append(rows, Row{Experiment: "fig7", Series: name, X: pct, KOPS: kops})
		}
	}
	return rows, nil
}

// Fig8Readers runs one writer (100% insert) plus 1..maxReaders reader
// front-ends under SWMR, for a lock-based structure set and the
// multi-version set, reproducing Figure 8.
func Fig8Readers(sc Scale, maxReaders int) ([]Row, error) {
	if maxReaders <= 0 {
		maxReaders = 6
	}
	var rows []Row
	for _, name := range []string{"BST", "BPT", "SkipList", "MV-BST", "MV-BPT"} {
		for n := 1; n <= maxReaders; n++ {
			w, r, retries, err := runReadersWriter(name, sc, n)
			if err != nil {
				return nil, fmt.Errorf("fig8 %s n=%d: %w", name, n, err)
			}
			rows = append(rows,
				Row{Experiment: "fig8", Series: name + "(W)", X: float64(n), KOPS: w},
				Row{Experiment: "fig8", Series: name + "(R)", X: float64(n), KOPS: r,
					Extra: map[string]float64{"retryRatio": retries}},
			)
		}
	}
	return rows, nil
}

// runReadersWriter measures aggregate reader KOPS and writer KOPS with
// nReaders concurrent reader front-ends.
func runReadersWriter(name string, sc Scale, nReaders int) (float64, float64, float64, error) {
	cl, err := newAsymCluster(512 << 20)
	if err != nil {
		return 0, 0, 0, err
	}
	defer cl.Stop()
	wMode := core.ModeRCB(cacheBytesFor(name, sc.Seed, 10), 64)
	_, wconns, err := cl.NewFrontend(1, wMode)
	if err != nil {
		return 0, 0, 0, err
	}
	wh, err := buildKV(wconns[0], name, sc, ds.Options{Create: benchCreateOpts(), Buckets: 1 << 14})
	if err != nil {
		return 0, 0, 0, err
	}
	uniq := fmt.Sprintf("%s-%d", sanitize(name), 1)

	type readerRes struct {
		kops    float64
		retries float64
		err     error
	}
	results := make([]readerRes, nReaders)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < nReaders; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rMode := core.ModeRC(cacheBytesFor(name, sc.Seed, 10))
			fe, conns, err := cl.NewFrontend(uint16(2+i), rMode)
			if err != nil {
				results[i].err = err
				return
			}
			kv, err := openKVByName(conns[0], name, uniq)
			if err != nil {
				results[i].err = err
				return
			}
			gen := workload.New(workload.Config{Seed: int64(i), Keys: uint64(sc.Keys), WritePct: 0, ValueLen: 64})
			start := fe.Clock().Now()
			before := fe.Stats().Snapshot()
			n := 0
			for {
				select {
				case <-stop:
					d := fe.Clock().Now() - start
					delta := fe.Stats().Snapshot().Sub(before)
					results[i].kops = kopsOf(n, d)
					tot := float64(delta.ReadRetry) + float64(n)
					if tot > 0 {
						results[i].retries = float64(delta.ReadRetry) / tot
					}
					return
				default:
				}
				if _, _, err := kv.Get(gen.Next().Key); err != nil {
					results[i].err = err
					return
				}
				n++
				runtime.Gosched() // fair interleaving on a 1-core host
			}
		}()
	}
	// Writer drives sc.Ops inserts, then stops the readers.
	wkops, err := wh.run(sc.Ops, 100)
	close(stop)
	wg.Wait()
	if err != nil {
		return 0, 0, 0, err
	}
	var agg, retr float64
	for _, r := range results {
		if r.err != nil {
			return 0, 0, 0, r.err
		}
		agg += r.kops
		retr += r.retries
	}
	return wkops, agg, retr / float64(nReaders), nil
}

func openKVByName(conn *core.Conn, name, uniq string) (ds.KV, error) {
	opts := ds.Options{Create: benchCreateOpts(), Buckets: 1 << 14}
	switch name {
	case "HashTable":
		return ds.OpenHashTable(conn, uniq, false, opts)
	case "SkipList":
		return ds.OpenSkipList(conn, uniq, false, opts)
	case "BST":
		return ds.OpenBST(conn, uniq, false, opts)
	case "BPT":
		return ds.OpenBPTree(conn, uniq, false, opts)
	case "MV-BST":
		return ds.OpenMVBST(conn, uniq, false, opts)
	case "MV-BPT":
		return ds.OpenMVBPTree(conn, uniq, false, opts)
	}
	return nil, fmt.Errorf("bench: unknown structure %q", name)
}

// Fig9MultiDS runs 1..max front-ends, each with its own structure
// instance on one shared back-end, reproducing Figure 9's aggregate
// scaling.
func Fig9MultiDS(sc Scale, max int) ([]Row, error) {
	if max <= 0 {
		max = 7
	}
	var rows []Row
	for _, name := range []string{"SkipList", "BST", "BPT", "MV-BST", "MV-BPT"} {
		for n := 1; n <= max; n++ {
			cl, err := newAsymCluster(1 << 30)
			if err != nil {
				return nil, err
			}
			var wg sync.WaitGroup
			kops := make([]float64, n)
			errs := make([]error, n)
			for i := 0; i < n; i++ {
				i := i
				wg.Add(1)
				go func() {
					defer wg.Done()
					mode := core.ModeRCB(cacheBytesFor(name, sc.Seed, 10), 64)
					_, conns, err := cl.NewFrontend(uint16(1+i), mode)
					if err != nil {
						errs[i] = err
						return
					}
					h, err := buildKV(conns[0], name, sc, ds.Options{Create: benchCreateOpts(), Buckets: 1 << 14})
					if err != nil {
						errs[i] = err
						return
					}
					kops[i], errs[i] = h.run(sc.Ops, 100)
				}()
			}
			wg.Wait()
			cl.Stop()
			var agg float64
			for i := range kops {
				if errs[i] != nil {
					return nil, fmt.Errorf("fig9 %s n=%d: %w", name, n, errs[i])
				}
				agg += kops[i]
			}
			rows = append(rows, Row{Experiment: "fig9", Series: name, X: float64(n), KOPS: agg})
		}
	}
	return rows, nil
}

// Fig10Partitions partitions one structure across 1..max back-ends and
// drives it from one writer, reproducing Figure 10 (partitioning should
// not cost throughput).
func Fig10Partitions(sc Scale, max int) ([]Row, error) {
	if max <= 0 {
		max = 7
	}
	kinds := map[string]ds.KVKind{
		"SkipList": ds.KindSkipList, "BST": ds.KindBST, "BPT": ds.KindBPTree,
		"MV-BST": ds.KindMVBST, "MV-BPT": ds.KindMVBPTree,
	}
	var rows []Row
	for _, name := range []string{"SkipList", "BST", "BPT", "MV-BST", "MV-BPT"} {
		for n := 1; n <= max; n++ {
			cl, err := newMultiCluster(n)
			if err != nil {
				return nil, err
			}
			mode := core.ModeRCB(cacheBytesFor(name, sc.Seed, 10), 64)
			fe, conns, err := cl.NewFrontend(1, mode)
			if err != nil {
				cl.Stop()
				return nil, err
			}
			p, err := ds.CreatePartitioned(conns, kinds[name], "part-"+sanitize(name), n, ds.Options{Create: benchCreateOpts(), Buckets: 1 << 14})
			if err != nil {
				cl.Stop()
				return nil, err
			}
			for i := 0; i < sc.Seed; i++ {
				// Scatter seed keys: sorted insertion would degenerate
				// the unbalanced trees (see seedKV).
				k := uint64(i+1) * 0x9E3779B97F4A7C15
				if err := p.Put(k, workload.Value(k, 64)); err != nil {
					cl.Stop()
					return nil, err
				}
			}
			if err := p.Flush(); err != nil {
				cl.Stop()
				return nil, err
			}
			gen := workload.New(workload.Config{Seed: 5, Keys: uint64(sc.Keys), WritePct: 100, ValueLen: 64})
			start := fe.Clock().Now()
			for i := 0; i < sc.Ops; i++ {
				if err := p.Put(gen.Next().Key, workload.Value(uint64(i), 64)); err != nil {
					cl.Stop()
					return nil, err
				}
			}
			if err := p.Flush(); err != nil {
				cl.Stop()
				return nil, err
			}
			kops := kopsOf(sc.Ops, fe.Clock().Now()-start)
			cl.Stop()
			rows = append(rows, Row{Experiment: "fig10", Series: name, X: float64(n), KOPS: kops})
		}
	}
	return rows, nil
}

// Fig11CPU reports front-end and back-end CPU utilization over a 10% put
// / 90% get BST run, reproducing Figure 11's claim that the back-end CPU
// stays nearly idle.
func Fig11CPU(sc Scale) ([]Row, error) {
	cl, err := newAsymCluster(512 << 20)
	if err != nil {
		return nil, err
	}
	defer cl.Stop()
	mode := core.ModeRCB(cacheBytesFor("BST", sc.Seed, 10), 64)
	fe, conns, err := cl.NewFrontend(1, mode)
	if err != nil {
		return nil, err
	}
	h, err := buildKV(conns[0], "BST", sc, ds.Options{Create: benchCreateOpts()})
	if err != nil {
		return nil, err
	}
	bk := cl.Backends[0]
	beforeB := bk.Stats().Snapshot()
	start := fe.Clock().Now()
	if _, err := h.run(sc.Ops, 10); err != nil {
		return nil, err
	}
	elapsed := fe.Clock().Now() - start
	busyB := bk.Stats().Snapshot().Sub(beforeB).BusyNS
	feUtil := 100.0 // closed-loop driver: the front-end core never idles
	beUtil := float64(busyB) / float64(elapsed) * 100
	if beUtil > 100 {
		beUtil = 100
	}
	return []Row{
		{Experiment: "fig11", Series: "Front-end", KOPS: 0, Extra: map[string]float64{"util_pct": feUtil}},
		{Experiment: "fig11", Series: "Back-end", KOPS: 0, Extra: map[string]float64{"util_pct": beUtil}},
	}, nil
}

// Fig12Zipf measures skew tolerance: uniform vs Zipf .5/.9/.99 over the
// five index structures, reproducing Figure 12.
func Fig12Zipf(sc Scale) ([]Row, error) {
	var rows []Row
	for _, name := range []string{"BPT", "BST", "SkipList", "MV-BPT", "MV-BST"} {
		for _, theta := range []float64{0, 0.5, 0.9, 0.99} {
			cl, err := newAsymCluster(512 << 20)
			if err != nil {
				return nil, err
			}
			mode := core.ModeRCB(cacheBytesFor(name, sc.Seed, 10), 64)
			fe, conns, err := cl.NewFrontend(1, mode)
			if err != nil {
				cl.Stop()
				return nil, err
			}
			h, err := buildKV(conns[0], name, sc, ds.Options{Create: benchCreateOpts(), Buckets: 1 << 14})
			if err != nil {
				cl.Stop()
				return nil, err
			}
			gen := workload.New(workload.Config{Seed: 7, Keys: uint64(sc.Keys), WritePct: 100, ValueLen: 64, Theta: theta, Scramble: theta > 0})
			start := fe.Clock().Now()
			for i := 0; i < sc.Ops; i++ {
				op := gen.Next()
				if err := h.kv.Put(op.Key, workload.Value(op.Key, 64)); err != nil {
					cl.Stop()
					return nil, err
				}
			}
			if err := h.kv.Flush(); err != nil {
				cl.Stop()
				return nil, err
			}
			kops := kopsOf(sc.Ops, fe.Clock().Now()-start)
			cl.Stop()
			label := "Uniform"
			if theta > 0 {
				label = fmt.Sprintf("Skewed(%.2g)", theta)
			}
			rows = append(rows, Row{Experiment: "fig12", Series: name, Label: label, X: theta, KOPS: kops})
		}
	}
	return rows, nil
}

// Fig13Mixes measures every structure under the read/write mixes of
// Figure 13 (100%put, 50/50, 75put/25get, 10put/90get, 100%get) for the
// Naive, R and RC(B) configurations, with the industry-style power-law
// workload.
func Fig13Mixes(sc Scale) ([]Row, error) {
	mixes := []int{100, 50, 75, 10, 0}
	names := []string{"BST", "MV-BST", "BPT", "MV-BPT", "SkipList", "Queue", "Stack", "HashTable"}
	cfgs := []configCell{
		{series: "Naive", mode: core.ModeNaive()},
		{series: "R", mode: core.ModeR()},
		{series: "RC", mode: core.ModeRC(0), cachePct: 10},
	}
	var rows []Row
	for _, name := range names {
		for _, cfg := range cfgs {
			series := cfg.series
			if (name == "Queue" || name == "Stack") && series == "RC" {
				// Queue/stack combine batching with caching (Table 3's
				// footnote); their third line is RCB.
				cfg.mode = core.ModeRCB(0, 1024)
				series = "RCB"
			}
			for _, writePct := range mixes {
				kops, err := measureCellMix(name, cfg, sc, writePct)
				if err != nil {
					return nil, fmt.Errorf("fig13 %s/%s w=%d: %w", name, cfg.series, writePct, err)
				}
				rows = append(rows, Row{
					Experiment: "fig13", Series: name + "/" + series,
					Label: fmt.Sprintf("%d%%put", writePct), X: float64(writePct), KOPS: kops,
				})
			}
		}
	}
	return rows, nil
}

// measureCellMix is measureCell with a configurable write percentage and
// the power-law key distribution of the industry trace.
func measureCellMix(name string, cfg configCell, sc Scale, writePct int) (float64, error) {
	cl, err := newAsymCluster(512 << 20)
	if err != nil {
		return 0, err
	}
	defer cl.Stop()
	mode := cfg.mode
	if cfg.cachePct > 0 {
		mode.CacheBytes = cacheBytesFor(name, sc.Seed, cfg.cachePct)
	}
	_, conns, err := cl.NewFrontend(1, mode)
	if err != nil {
		return 0, err
	}
	h, err := buildKV(conns[0], name, sc, ds.Options{Create: benchCreateOpts(), Buckets: 1 << 14})
	if err != nil {
		return 0, err
	}
	h.gen = workload.New(workload.Config{Seed: 11, Keys: uint64(sc.Keys), WritePct: writePct, ValueLen: 64, Theta: 0.9, Scramble: true})
	start := h.fe.Clock().Now()
	if err := h.runOps(sc.Ops); err != nil {
		return 0, err
	}
	if err := h.flush(); err != nil {
		return 0, err
	}
	return kopsOf(sc.Ops, h.fe.Clock().Now()-start), nil
}

// LockBench reproduces the §6.3 ping-point test: six readers and one
// writer on the same unit, at 10% and 50% write ratios, reporting
// per-reader and writer throughput and the reader fail (retry) ratio.
func LockBench(ops int) ([]Row, error) {
	var rows []Row
	for _, writePct := range []int{10, 50} {
		w, rAvg, fail, err := lockPingPoint(ops, writePct, 6)
		if err != nil {
			return nil, err
		}
		rows = append(rows,
			Row{Experiment: "lockbench", Series: "writer", X: float64(writePct), KOPS: w},
			Row{Experiment: "lockbench", Series: "reader(avg)", X: float64(writePct), KOPS: rAvg,
				Extra: map[string]float64{"failRatio": fail}},
		)
	}
	return rows, nil
}

func lockPingPoint(ops, writePct, nReaders int) (float64, float64, float64, error) {
	cl, err := newAsymCluster(64 << 20)
	if err != nil {
		return 0, 0, 0, err
	}
	defer cl.Stop()
	_, wconns, err := cl.NewFrontend(1, core.ModeR())
	if err != nil {
		return 0, 0, 0, err
	}
	wconn := wconns[0]
	wh, err := wconn.Create("pingpoint", backend.TypeBST, core.CreateOptions{MemLogSize: 4 << 20, OpLogSize: 1 << 20})
	if err != nil {
		return 0, 0, 0, err
	}
	unit, err := wconn.Calloc(64)
	if err != nil {
		return 0, 0, 0, err
	}
	if err := wh.WriterLock(); err != nil {
		return 0, 0, 0, err
	}
	// Initial value.
	if _, err := wh.OpLog(1, nil); err != nil {
		return 0, 0, 0, err
	}
	if err := wh.Write(unit, make([]byte, 64)); err != nil {
		return 0, 0, 0, err
	}
	if err := wh.EndOp(); err != nil {
		return 0, 0, 0, err
	}
	if err := wh.Drain(); err != nil {
		return 0, 0, 0, err
	}

	type res struct {
		kops float64
		fail float64
		err  error
	}
	results := make([]res, nReaders)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < nReaders; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			fe := core.NewFrontend(core.FrontendOptions{ID: uint16(2 + i), Mode: core.ModeR()})
			conn, err := fe.Connect(cl.Backends[0])
			if err != nil {
				results[i].err = err
				return
			}
			rh, err := conn.Open("pingpoint", false)
			if err != nil {
				results[i].err = err
				return
			}
			start := fe.Clock().Now()
			before := fe.Stats().Snapshot()
			n := 0
			for {
				select {
				case <-stop:
					d := fe.Clock().Now() - start
					delta := fe.Stats().Snapshot().Sub(before)
					results[i].kops = kopsOf(n, d)
					if tot := float64(delta.ReadRetry) + float64(n); tot > 0 {
						results[i].fail = float64(delta.ReadRetry) / tot
					}
					return
				default:
				}
				for {
					if err := rh.ReaderLock(); err != nil {
						results[i].err = err
						return
					}
					if _, err := rh.Read(unit, 64, false); err != nil {
						results[i].err = err
						return
					}
					// A real read section spans a couple of fabric round
					// trips; yielding here lets the replayer interleave,
					// as it would on independent machines.
					runtime.Gosched()
					ok, err := rh.ReaderValidate()
					if err != nil {
						results[i].err = err
						return
					}
					if ok {
						break
					}
				}
				n++
				runtime.Gosched() // fair interleaving on a 1-core host
			}
		}()
	}

	// The writer alternates writes and reads at the requested ratio.
	wfe := wconn.Frontend()
	start := wfe.Clock().Now()
	rng := uint64(17)
	buf := make([]byte, 64)
	for i := 0; i < ops; i++ {
		runtime.Gosched() // interleave with the readers on one core
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		if int(rng%100) < writePct {
			buf[0] = byte(i)
			if _, err := wh.OpLog(1, nil); err != nil {
				return 0, 0, 0, err
			}
			if err := wh.Write(unit, buf); err != nil {
				return 0, 0, 0, err
			}
			if err := wh.EndOp(); err != nil {
				return 0, 0, 0, err
			}
		} else {
			if _, err := wh.Read(unit, 64, false); err != nil {
				return 0, 0, 0, err
			}
		}
	}
	if err := wh.Flush(); err != nil {
		return 0, 0, 0, err
	}
	wkops := kopsOf(ops, wfe.Clock().Now()-start)
	close(stop)
	wg.Wait()
	var rSum, fSum float64
	for _, r := range results {
		if r.err != nil {
			return 0, 0, 0, r.err
		}
		rSum += r.kops
		fSum += r.fail
	}
	return wkops, rSum / float64(nReaders), fSum / float64(nReaders), nil
}

// CacheBench reproduces the §4.4 comparison of replacement policies:
// miss ratios of RR, LRU and the hybrid under a Zipf workload whose
// footprint is 10× the cache.
func CacheBench(accesses int) []Row {
	var rows []Row
	for _, pol := range []struct {
		name string
		p    core.Policy
	}{{"Hybrid", core.PolicyHybrid}, {"LRU", core.PolicyLRU}, {"RR", core.PolicyRR}} {
		st := &stats.Stats{}
		cache := core.NewCache(256<<10, pol.p, st) // 256 KiB cache
		gen := workload.New(workload.Config{Seed: 21, Keys: 160000, WritePct: 0, Theta: 0.99, Scramble: true})
		entry := make([]byte, 64) // 160k × 64 B ≈ 10 MiB footprint, 40× the cache
		hostStart := time.Now()
		for i := 0; i < accesses; i++ {
			k := gen.Next().Key
			if _, ok := cache.Get(k, core.EpochAlways, true); !ok {
				cache.Put(k, entry, 0, core.EpochAlways)
			}
		}
		hostNS := float64(time.Since(hostStart).Nanoseconds()) / float64(accesses)
		snap := st.Snapshot()
		miss := float64(snap.CacheMiss) / float64(snap.CacheMiss+snap.CacheHit) * 100
		rows = append(rows, Row{
			Experiment: "cachebench", Series: pol.name,
			Extra: map[string]float64{"missPct": miss, "hostNsPerAccess": hostNS},
		})
	}
	return rows
}

// CostModel reproduces the §9.2 device-count comparison: with m machines
// whose NVM utilization follows the measured data-center distribution,
// the symmetric design needs one device per machine while the asymmetric
// design needs only the sum of actual usage.
func CostModel(machines int, utilization []float64) []Row {
	if machines <= 0 {
		machines = 100
	}
	if len(utilization) == 0 {
		// Google-cluster-style utilization: mean ≈ 40%.
		for i := 0; i < machines; i++ {
			utilization = append(utilization, 0.15+0.5*float64(i%7)/7)
		}
	}
	symmetric := float64(machines)
	var asym float64
	for _, u := range utilization[:machines] {
		asym += u
	}
	asymDevices := float64(int(asym) + 1)
	return []Row{
		{Experiment: "cost", Series: "Symmetric", Extra: map[string]float64{"devices": symmetric}},
		{Experiment: "cost", Series: "AsymNVM", Extra: map[string]float64{"devices": asymDevices}},
	}
}

// newMultiCluster builds an n-back-end cluster for the partitioning
// figure.
func newMultiCluster(n int) (*cluster.Cluster, error) {
	c := cluster.DefaultConfig()
	c.Backends = n
	c.DeviceBytes = 512 << 20
	return cluster.New(c)
}
