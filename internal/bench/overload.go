package bench

import (
	"fmt"
	"time"

	"asymnvm/internal/cluster"
	"asymnvm/internal/core"
	"asymnvm/internal/ds"
	"asymnvm/internal/serve"
	"asymnvm/internal/txapp"
	"asymnvm/internal/workload"
)

// OverloadFactors are the offered-load multiples of the sweep: at and
// past saturation.
var OverloadFactors = []float64{1.0, 1.5, 2.0}

// overloadBudget is the per-request deadline handed to every request in
// the sweep; accepted-request latency is bounded by it by construction,
// so the pinned "p99 stays bounded" check has an absolute yardstick.
const overloadBudget = 2 * time.Millisecond

// overloadRig builds one serving cell: cluster, writer front-end,
// hash table and smallbank.
type overloadRig struct {
	clu  *cluster.Cluster
	fe   *core.Frontend
	kv   *ds.HashTable
	bank *txapp.SmallBank
}

func newOverloadRig(sc Scale) (*overloadRig, error) {
	cl, err := newAsymCluster(256 << 20)
	if err != nil {
		return nil, err
	}
	fe, conns, err := cl.NewFrontend(1, core.Mode{OpLog: true, Batch: 4, Pipeline: 8})
	if err != nil {
		cl.Stop()
		return nil, err
	}
	opts := ds.Options{Buckets: 1 << 12, Create: benchCreateOpts()}
	kv, err := ds.CreateHashTable(conns[0], "overload-kv", opts)
	if err != nil {
		cl.Stop()
		return nil, err
	}
	accounts := uint64(sc.Accounts)
	if accounts == 0 {
		accounts = 400
	}
	bank, err := txapp.NewSmallBank(conns[0], "overload-bank", accounts, opts)
	if err != nil {
		cl.Stop()
		return nil, err
	}
	return &overloadRig{clu: cl, fe: fe, kv: kv, bank: bank}, nil
}

// overloadCfg is the sweep's loadgen configuration sans schedule.
func overloadCfg(sc Scale) serve.LoadgenConfig {
	return serve.LoadgenConfig{
		Seed:     4242,
		Keys:     uint64(sc.Keys),
		WritePct: 30,
		TxPct:    10,
		Theta:    0.9,
		ValueLen: 64,
		Budget:   overloadBudget,
		Workers:  1,
		QueueCap: 256,
		LIFOFrac: 0.5,
		Admission: serve.AdmissionConfig{
			CapacityFn:      func() int { return 64 },
			BreakerTrip:     256,
			BreakerCooldown: time.Millisecond,
			RetryAfterMin:   100 * time.Microsecond,
		},
		Tenants: 4,
	}
}

// overloadDuration sizes the virtual horizon from the scale's op count
// so -ops overrides shrink regeneration too.
func overloadDuration(sc Scale) time.Duration {
	d := time.Duration(sc.Ops) * 100 * time.Microsecond
	if d < 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

// OverloadSweep is the open-loop overload experiment: calibrate the
// serving cell's capacity (closed-loop mean service time), then drive
// the admission/queue/deadline plane through the discrete-event
// simulator at 1×, 1.5× and 2× of that capacity. Graceful degradation
// means goodput holds (≥ 70% of the 1× point at 2×) while excess
// arrivals are shed with explicit rejections, and every accepted
// request that completes does so inside its deadline budget — the
// curve flattens, it does not collapse. One fresh cell per factor keeps
// the points independent and the whole sweep deterministic in virtual
// time.
func OverloadSweep(sc Scale) ([]Row, error) {
	cal, err := newOverloadRig(sc)
	if err != nil {
		return nil, err
	}
	calOps := sc.Ops
	if calOps > 4000 {
		calOps = 4000
	}
	meanSvc, err := serve.Calibrate(cal.fe, cal.kv, cal.bank, overloadCfg(sc), calOps)
	cal.clu.Stop()
	if err != nil {
		return nil, fmt.Errorf("bench: overload calibration: %w", err)
	}
	if meanSvc <= 0 {
		return nil, fmt.Errorf("bench: overload calibration measured no service time")
	}
	cfg0 := overloadCfg(sc)
	capacity := float64(cfg0.Workers) / meanSvc.Seconds() // ops per virtual second

	rows := []Row{{
		Experiment: "overload",
		Series:     "capacity",
		Label:      "calibrated",
		X:          0,
		KOPS:       capacity / 1e3,
		Extra:      map[string]float64{"mean_svc_ns": float64(meanSvc)},
	}}
	for _, factor := range OverloadFactors {
		rig, err := newOverloadRig(sc)
		if err != nil {
			return nil, err
		}
		cfg := overloadCfg(sc)
		cfg.Duration = overloadDuration(sc)
		cfg.Sched = workload.ConstRate(capacity * factor)
		res, err := serve.Loadgen(rig.fe, rig.kv, rig.bank, cfg)
		rig.clu.Stop()
		if err != nil {
			return nil, fmt.Errorf("bench: overload %gx: %w", factor, err)
		}
		rows = append(rows, Row{
			Experiment: "overload",
			Series:     "openloop",
			Label:      fmt.Sprintf("%gx", factor),
			X:          factor,
			KOPS:       res.GoodputKOPS,
			Extra: map[string]float64{
				"offered":      float64(res.Offered),
				"accepted":     float64(res.Accepted),
				"rejected":     float64(res.Rejected),
				"breaker":      float64(res.Breaker),
				"expired":      float64(res.Expired),
				"deadline":     float64(res.DeadlineMiss),
				"good":         float64(res.Good),
				"p50_us":       float64(res.P50) / 1e3,
				"p99_us":       float64(res.P99) / 1e3,
				"budget_us":    float64(overloadBudget) / 1e3,
				"offered_kops": float64(res.Offered) / cfg.Duration.Seconds() / 1e3,
			},
		})
	}
	return rows, nil
}
