package bench

import (
	"encoding/binary"
	"fmt"

	"asymnvm/internal/cluster"
	"asymnvm/internal/core"
	"asymnvm/internal/ds"
	"asymnvm/internal/workload"
)

const (
	rebalParts      = 32
	rebalSmallBacks = 2
	rebalFullBacks  = 8
	rebalSliceOps   = 64 // live writes inside each double-log window
	rebalWindowMult = 6  // measured window, in units of (keys+steady)
)

// RebalanceSweep prices elastic growth as an online operation: an
// elastic hash table starts consolidated on 2 of 8 back-ends, and the
// consistent-hash ring admits the other six members WHILE the writer
// keeps committing — workload slices run inside each double-log window,
// so live writes land on both sides before the cutover flips the map.
//
// Migration cost scales with the structure's op history (handoff is
// semantic re-execution, not a byte copy), so the baseline is a control
// WORLD, not a control phase: a second identical cluster runs the same
// seeded workload for the same window with no migrations. Running the
// baseline as a phase before the growth would feed its own ops back
// into the histories the handoffs stream, overstating the dip.
//
// Three rows come out, all on the virtual clock:
//
//   - "steady": KOPS over the control world's window on the 2-back-end
//     placement.
//   - "migrating": KOPS over the experiment world's identical window
//     with every planned handoff inside it — streamed history,
//     double-logged writes, drains and map flips all on the clock. The
//     online claim: dip_pct relative to steady stays under 25%.
//   - "grown": KOPS over one more window on the settled 8-back-end
//     placement; spreading the partitions must not cost throughput
//     (the Fig. 10 shape).
//
// Correctness rides along as a per-key write counter: every put encodes
// (key, writes-so-far), and a FRESH front-end routed purely by the
// persisted versioned map reads every key back after the growth. A lost
// committed write surfaces as a stale counter, a duplicated or replayed
// one as a counter from the wrong side — lost_writes and dup_writes in
// the "grown" row must both be zero.
func RebalanceSweep(sc Scale) ([]Row, error) {
	windowOps := rebalWindowMult * (sc.Keys + sc.Ops)

	// Control world: same placement, seed and window, no migrations.
	ctl, err := newRebalWorld(sc)
	if err != nil {
		return nil, err
	}
	steadyKOPS, err := ctl.measure(windowOps)
	ctl.cl.Stop()
	if err != nil {
		return nil, err
	}

	w, err := newRebalWorld(sc)
	if err != nil {
		return nil, err
	}
	defer w.cl.Stop()

	// Grow 2 -> 8. Each handoff runs a workload slice inside its
	// double-log window (AfterStream fires between the snapshot and the
	// flip), and the remainder of the window's workload follows — the
	// whole interval, streaming and map flips included, is on the clock.
	for b := rebalSmallBacks; b < rebalFullBacks; b++ {
		w.ring.Add(b)
	}
	moves := cluster.PlanMoves(w.p, w.ring)
	paced := len(moves) * rebalSliceOps
	if paced > windowOps {
		return nil, fmt.Errorf("rebalance window too small: %d paced ops over %d moves exceed %d", paced, len(moves), windowOps)
	}
	before := w.fe.Stats().Snapshot()
	growStart := w.fe.Clock().Now()
	var streamed int
	for _, mv := range moves {
		n, err := cluster.Rebalance(w.p, mv.Part, w.conns[mv.To], cluster.RebalanceHooks{
			AfterStream: func(*ds.Migration, int) error { return w.runSlice(rebalSliceOps) },
		})
		if err != nil {
			return nil, fmt.Errorf("grow part %d -> %d: %w", mv.Part, mv.To, err)
		}
		streamed += n
	}
	if err := w.runSlice(windowOps - paced); err != nil {
		return nil, err
	}
	if err := w.p.DrainAll(); err != nil {
		return nil, err
	}
	duringKOPS := kopsOf(windowOps, w.fe.Clock().Now()-growStart)
	delta := w.fe.Stats().Snapshot().Sub(before)
	dipPct := (1 - duringKOPS/steadyKOPS) * 100

	grownKOPS, err := w.measure(windowOps)
	if err != nil {
		return nil, err
	}

	// The oracle reads through a FRESH front-end: routing comes from the
	// persisted versioned map alone, so a partition whose history was
	// truncated or double-applied in a handoff cannot hide behind the
	// writer's in-memory handles.
	_, rconns, err := w.cl.NewFrontend(9, core.ModeR())
	if err != nil {
		return nil, err
	}
	rp, err := ds.OpenPartitioned(rconns, "rebal", false, w.opts)
	if err != nil {
		return nil, err
	}
	var lost, dup float64
	for k, want := range w.counts {
		v, ok, err := rp.Get(k)
		if err != nil {
			return nil, err
		}
		if !ok {
			lost++
			continue
		}
		if gotK, gotC := decodeRebalValue(v); gotK != k || gotC != want {
			dup++
		}
	}
	owners := map[int]bool{}
	for pi := 0; pi < rebalParts; pi++ {
		owners[w.p.Owner(pi)] = true
	}

	return []Row{
		{
			Experiment: "rebalance", Series: "steady", Label: "2-backends",
			X: rebalSmallBacks, KOPS: steadyKOPS,
		},
		{
			Experiment: "rebalance", Series: "migrating", Label: "grow-window",
			X: float64(len(moves)), KOPS: duringKOPS,
			Extra: map[string]float64{
				"dip_pct":      dipPct,
				"moves":        float64(len(moves)),
				"streamed_ops": float64(streamed),
				"double_ops":   float64(delta.DoubleLoggedOps),
				"cutovers":     float64(delta.CutoverEpochs),
			},
		},
		{
			Experiment: "rebalance", Series: "grown", Label: "8-backends",
			X: rebalFullBacks, KOPS: grownKOPS,
			Extra: map[string]float64{
				"spread":        float64(len(owners)),
				"verified_keys": float64(len(w.counts)),
				"lost_writes":   lost,
				"dup_writes":    dup,
			},
		},
	}, nil
}

// rebalWorld is one fully seeded cluster + elastic structure, identical
// between the control and experiment runs.
type rebalWorld struct {
	cl     *cluster.Cluster
	fe     *core.Frontend
	conns  []*core.Conn
	p      *ds.Partitioned
	ring   *cluster.Ring
	opts   ds.Options
	counts map[uint64]uint64
	gen    *workload.Generator
	keys   uint64
}

func newRebalWorld(sc Scale) (*rebalWorld, error) {
	cl, err := newMultiCluster(rebalFullBacks)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*rebalWorld, error) {
		cl.Stop()
		return nil, err
	}
	mode := core.ModeRCB(cacheBytesFor("HashTable", sc.Keys, 10), 64)
	fe, conns, err := cl.NewFrontend(1, mode)
	if err != nil {
		return fail(err)
	}
	opts := ds.Options{Create: core.CreateOptions{MemLogSize: 4 << 20, OpLogSize: 1 << 20}, Buckets: 1 << 10}
	p, err := ds.CreateElastic(conns, ds.KindHashTable, "rebal", rebalParts, opts)
	if err != nil {
		return fail(err)
	}
	// Consolidate the default spread onto back-ends {0,1} before any
	// data exists — setup, not measurement. The moves write explicit
	// owner words, so placement is pinned to the ring from here on.
	ring := cluster.NewRing(32)
	ring.Add(0)
	ring.Add(1)
	for _, mv := range cluster.PlanMoves(p, ring) {
		if _, err := cluster.Rebalance(p, mv.Part, conns[mv.To], cluster.RebalanceHooks{}); err != nil {
			return fail(fmt.Errorf("consolidating part %d: %w", mv.Part, err))
		}
	}
	w := &rebalWorld{
		cl: cl, fe: fe, conns: conns, p: p, ring: ring, opts: opts,
		counts: make(map[uint64]uint64, sc.Keys),
		gen:    workload.New(workload.Config{Seed: 42, Keys: uint64(sc.Keys), WritePct: 100, ValueLen: 16}),
		keys:   uint64(sc.Keys),
	}
	// Seed the FULL key space so every measured phase is pure updates:
	// otherwise the insert/update mix shifts as the table fills and the
	// steady-vs-grown comparison conflates handoff cost with table aging.
	for k := uint64(1); k <= w.keys; k++ {
		if err := w.put(k); err != nil {
			return fail(err)
		}
	}
	if err := p.DrainAll(); err != nil {
		return fail(err)
	}
	return w, nil
}

func (w *rebalWorld) put(k uint64) error {
	w.counts[k]++
	return w.p.Put(k, rebalValue(k, w.counts[k]))
}

func (w *rebalWorld) runSlice(n int) error {
	for i := 0; i < n; i++ {
		if err := w.put(1 + w.gen.Next().Key%w.keys); err != nil {
			return err
		}
	}
	return nil
}

func (w *rebalWorld) measure(n int) (float64, error) {
	start := w.fe.Clock().Now()
	if err := w.runSlice(n); err != nil {
		return 0, err
	}
	if err := w.p.DrainAll(); err != nil {
		return 0, err
	}
	return kopsOf(n, w.fe.Clock().Now()-start), nil
}

// rebalValue encodes the per-key write counter the oracle checks: 16
// bytes of (key, count), so every committed put has a distinct value
// and the LAST one is recomputable from the oracle alone.
func rebalValue(key, count uint64) []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint64(b, key)
	binary.LittleEndian.PutUint64(b[8:], count)
	return b
}

func decodeRebalValue(v []byte) (key, count uint64) {
	if len(v) < 16 {
		return 0, 0
	}
	return binary.LittleEndian.Uint64(v), binary.LittleEndian.Uint64(v[8:])
}
