package bench

import "testing"

// rebalanceScale is the pinned cell BENCH_rebalance.json is generated
// at (see `make bench-smoke`): small enough that the 2->8 growth's
// streamed history amortizes inside the measured window, large enough
// that every partition moves with real data in it.
var rebalanceScale = Scale{Seed: 2048, Ops: 1024, Keys: 2048}

// checkRebalanceRows applies the acceptance gates to a rebalance sweep,
// pinned or live:
//
//   - the 2->8 growth actually happened: every planned move cut over,
//     the settled placement spans all 8 back-ends, and live writes
//     double-logged inside the handoff windows;
//   - online: throughput over the rebalance window dips less than 25%
//     below the steady baseline, and the grown placement serves at
//     least 75% of it;
//   - exactly-once: the fresh-reader write-counter oracle found zero
//     lost and zero duplicated committed writes.
func checkRebalanceRows(t *testing.T, rows []Row) {
	t.Helper()
	byS := map[string]Row{}
	for _, r := range rows {
		if r.Experiment == "rebalance" {
			byS[r.Series] = r
		}
	}
	steady, ok1 := byS["steady"]
	mig, ok2 := byS["migrating"]
	grown, ok3 := byS["grown"]
	if !ok1 || !ok2 || !ok3 {
		t.Fatalf("sweep lost a series: have %v", byS)
	}
	if steady.KOPS <= 0 || mig.KOPS <= 0 || grown.KOPS <= 0 {
		t.Fatalf("throughput collapsed: steady=%.1f migrating=%.1f grown=%.1f KOPS",
			steady.KOPS, mig.KOPS, grown.KOPS)
	}
	if mig.Extra["moves"] == 0 || mig.Extra["cutovers"] != mig.Extra["moves"] {
		t.Errorf("growth incomplete: %g moves, %g cutovers", mig.Extra["moves"], mig.Extra["cutovers"])
	}
	if mig.Extra["streamed_ops"] == 0 {
		t.Error("no history streamed; the partitions moved empty")
	}
	if mig.Extra["double_ops"] == 0 {
		t.Error("no write double-logged; the handoff windows saw no live traffic")
	}
	if dip := mig.Extra["dip_pct"]; dip >= 25 {
		t.Errorf("rebalance window dipped %.1f%% below steady (%.1f vs %.1f KOPS), want < 25%%",
			dip, mig.KOPS, steady.KOPS)
	}
	if grown.KOPS < 0.75*steady.KOPS {
		t.Errorf("grown placement serves %.1f KOPS vs %.1f steady; spreading cost > 25%%",
			grown.KOPS, steady.KOPS)
	}
	if s := grown.Extra["spread"]; s != 8 {
		t.Errorf("settled placement spans %g back-ends, want 8", s)
	}
	if grown.Extra["verified_keys"] == 0 {
		t.Error("oracle verified zero keys; the check is vacuous")
	}
	if l, d := grown.Extra["lost_writes"], grown.Extra["dup_writes"]; l != 0 || d != 0 {
		t.Errorf("exactly-once violated: %g lost, %g duplicated committed writes", l, d)
	}
}

// TestRebalanceGatesLive re-derives every gate on a fresh sweep, so the
// online-rebalancing claim is checked against the code and not only the
// checked-in numbers.
func TestRebalanceGatesLive(t *testing.T) {
	rows, err := RebalanceSweep(rebalanceScale)
	if err != nil {
		t.Fatal(err)
	}
	checkRebalanceRows(t, rows)
}

// TestRebalanceCheckedInCurve pins BENCH_rebalance.json (regenerated
// verbatim by `make bench-smoke` — the virtual clock makes the rows
// reproducible) against the same gates.
func TestRebalanceCheckedInCurve(t *testing.T) {
	checkRebalanceRows(t, loadCheckedInRows(t, "BENCH_rebalance.json"))
}
