package bench

import (
	"fmt"

	"asymnvm/internal/cluster"
	"asymnvm/internal/core"
	"asymnvm/internal/ds"
	"asymnvm/internal/workload"
)

// ScaleoutSweep measures cross-shard fan-out, the §8.3 / Fig. 13
// scaling claim: one hash table split into 1/2/4/8 partitions placed
// round-robin on 1/2/4/8 back-ends (back-ends ≤ partitions — a partition
// cannot span devices), driven through the batched cross-partition path:
// gets gathered into 64-key Partitioned.GetMulti batches, 10% puts routed
// through PutMulti, under the three mode ladders at pipeline depth 16.
// Adding back-ends with a fixed workload should scale throughput
// near-linearly, because each lockstep round posts one doorbell group per
// involved back-end before settling any of them and the fan-out window
// charges max-over-backends instead of sum. Extra carries the fan-out
// counters (windows opened, virtual ns saved by the overlap) alongside
// the usual pipeline counters so the scaling can be attributed.
func ScaleoutSweep(sc Scale) ([]Row, error) {
	// The cell payloads are 8 KB rows (see scaleoutValueLen); cap the
	// population so the 8-partitions-on-1-device corner still fits its
	// 64 MB device. The curve's shape does not depend on the population,
	// only on the per-round payload.
	if sc.Seed > 1200 {
		sc.Seed = 1200
	}
	cacheB := cacheBytesFor("HashTable", sc.Seed, 10)
	modes := []struct {
		name string
		mode core.Mode
	}{
		{"R", core.ModeR()},
		{"RC", core.ModeRC(cacheB)},
		{"RCB", core.ModeRCB(cacheB, 64)},
	}
	sizes := []int{1, 2, 4, 8}
	var rows []Row
	for _, m := range modes {
		for _, parts := range sizes {
			for _, backs := range sizes {
				if backs > parts {
					continue
				}
				row, err := measureScaleoutCell(m.name, m.mode.WithPipeline(16), sc, parts, backs)
				if err != nil {
					return nil, fmt.Errorf("scaleout %s parts=%d backs=%d: %w", m.name, parts, backs, err)
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// newScaleCluster builds an n-back-end cluster with devices sized for
// the sweep's 8-way corner (8 back-ends at the benchmark default would
// reserve gigabytes of host memory for a quick cell).
func newScaleCluster(n int) (*cluster.Cluster, error) {
	cfg := cluster.DefaultConfig()
	cfg.Backends = n
	cfg.DeviceBytes = 64 << 20
	cfg.Tracer = liveTracer
	return cluster.New(cfg)
}

// scaleCreateOpts sizes the per-partition log areas: an 8-partition cell
// creates eight structures per device, so the default benchmark logs
// would not fit.
func scaleCreateOpts() core.CreateOptions {
	return core.CreateOptions{MemLogSize: 4 << 20, OpLogSize: 1 << 20}
}

// scaleoutValueLen sizes the sweep's payloads. Partition scaling is a
// bandwidth story: the per-key CPU cost of posting a WR is paid on the
// one front-end whatever the back-end count, so 64-byte rows would leave
// nothing for the fan-out to parallelize. Kilobyte rows make the
// per-link transfer terms dominate each lockstep round, which is exactly
// the traffic independent back-ends absorb in parallel (§8.3).
const scaleoutValueLen = 8192

// measureScaleoutCell runs one (mode, partitions, back-ends) cell. The
// key domain equals the seeded population so the multi-gets hit and every
// round moves real payload.
func measureScaleoutCell(series string, mode core.Mode, sc Scale, parts, backs int) (Row, error) {
	cl, err := newScaleCluster(backs)
	if err != nil {
		return Row{}, err
	}
	defer cl.Stop()
	fe, conns, err := cl.NewFrontend(1, mode)
	if err != nil {
		return Row{}, err
	}
	p, err := ds.CreatePartitioned(conns, ds.KindHashTable, "scaleout", parts, ds.Options{
		Create: scaleCreateOpts(), Buckets: 1 << 10, ValueCap: scaleoutValueLen,
	})
	if err != nil {
		return Row{}, err
	}
	for k := uint64(1); k <= uint64(sc.Seed); k++ {
		if err := p.Put(k, workload.Value(k, scaleoutValueLen)); err != nil {
			return Row{}, err
		}
		if k%256 == 0 {
			if err := p.FlushAll(); err != nil {
				return Row{}, err
			}
		}
	}
	// Drain, not just flush: draining waits out replay and empties the
	// writer's overlay, so the measured gets actually travel to the
	// back-ends instead of being served from the seeding residue in DRAM.
	if err := p.DrainAll(); err != nil {
		return Row{}, err
	}

	const mget = 64
	const mput = 16
	gen := workload.New(workload.Config{Seed: 4242, Keys: uint64(sc.Seed), WritePct: 10, ValueLen: scaleoutValueLen})
	st := fe.Stats()
	before := st.Snapshot()
	start := fe.Clock().Now()
	var (
		keys    = make([]uint64, 0, mget)
		putKeys = make([]uint64, 0, mput)
		putVals = make([][]byte, 0, mput)
		done    int
	)
	issueGets := func() error {
		if len(keys) == 0 {
			return nil
		}
		if _, _, err := p.GetMulti(keys); err != nil {
			return err
		}
		done += len(keys)
		keys = keys[:0]
		return nil
	}
	issuePuts := func() error {
		if len(putKeys) == 0 {
			return nil
		}
		if err := p.PutMulti(putKeys, putVals); err != nil {
			return err
		}
		done += len(putKeys)
		putKeys, putVals = putKeys[:0], putVals[:0]
		return nil
	}
	for done+len(keys)+len(putKeys) < sc.Ops {
		op := gen.Next()
		if op.Kind == workload.OpPut {
			putKeys = append(putKeys, op.Key)
			putVals = append(putVals, workload.Value(op.Key, scaleoutValueLen))
			if len(putKeys) == mput {
				if err := issuePuts(); err != nil {
					return Row{}, err
				}
			}
			continue
		}
		keys = append(keys, op.Key)
		if len(keys) == mget {
			if err := issueGets(); err != nil {
				return Row{}, err
			}
		}
	}
	if err := issueGets(); err != nil {
		return Row{}, err
	}
	if err := issuePuts(); err != nil {
		return Row{}, err
	}
	if err := p.FlushAll(); err != nil {
		return Row{}, err
	}
	elapsed := fe.Clock().Now() - start
	d := st.Snapshot().Sub(before)
	return Row{
		Experiment: "scaleout", Series: series,
		Label: fmt.Sprintf("parts=%d backs=%d", parts, backs), X: float64(backs),
		KOPS: kopsOf(sc.Ops, elapsed),
		Extra: map[string]float64{
			"partitions":       float64(parts),
			"backends":         float64(backs),
			"verbs":            float64(d.RDMAVerbs()),
			"virtual_ns":       float64(elapsed.Nanoseconds()),
			"posted":           float64(d.PostedVerbs),
			"doorbells":        float64(d.DoorbellGroups),
			"avg_depth":        d.AvgQueueDepth(),
			"overlap_saved_ns": float64(d.OverlapSavedNS),
			"fanout_windows":   float64(d.FanoutWindows),
			"fanout_saved_ns":  float64(d.FanoutSavedNS),
		},
	}, nil
}
