//go:build race

package bench

// raceEnabled reports whether this binary was built with -race. The
// wall-clock hotpath gates are skipped under the detector: instrumented
// atomics cost ~10x while runtime-internal channel ops are instrumented
// far more lightly, so the ring-vs-channel ratio measures the detector,
// not the queues.
const raceEnabled = true
