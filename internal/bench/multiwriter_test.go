package bench

import "testing"

// TestMultiWriterGates pins the beyond-SWMR acceptance numbers:
//
//   - striping must actually buy write concurrency — four stripe-disjoint
//     writers deliver at least 2.5× one writer's throughput at equal
//     reader counts, and disjoint writers never conflict on a stripe
//     lock;
//   - the lock-free MV path must not thrash — with four CAS writers and
//     the scheduled races, under 20% of puts re-execute;
//   - mirror-served reads must respect the staleness budget — the worst
//     epoch lag actually served stays within it.
func TestMultiWriterGates(t *testing.T) {
	sc := Scale{Seed: 400, Ops: 240, Keys: 4000}
	rows, err := MultiWriterSweep(sc)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Row{}
	for _, r := range rows {
		byKey[r.Series+"/"+r.Label] = r
	}

	for _, readers := range []string{"r=0", "r=2"} {
		one, ok := byKey["striped/w=1,"+readers]
		if !ok {
			t.Fatalf("sweep lost the striped/w=1,%s cell", readers)
		}
		four, ok := byKey["striped/w=4,"+readers]
		if !ok {
			t.Fatalf("sweep lost the striped/w=4,%s cell", readers)
		}
		if one.KOPS <= 0 || four.KOPS <= 0 {
			t.Fatalf("striped throughput collapsed at %s: w1=%.2f w4=%.2f", readers, one.KOPS, four.KOPS)
		}
		if ratio := four.KOPS / one.KOPS; ratio < 2.5 {
			t.Errorf("striped %s: 4 writers only %.2fx one writer (%.1f vs %.1f KOPS), want >= 2.5x",
				readers, ratio, four.KOPS, one.KOPS)
		}
		if c := four.Extra["stripe_conflicts"]; c != 0 {
			t.Errorf("striped %s: %g stripe conflicts between stripe-disjoint writers, want 0", readers, c)
		}
	}

	mv, ok := byKey["mvcas/w=4"]
	if !ok {
		t.Fatal("sweep lost the mvcas cell")
	}
	if mv.KOPS <= 0 {
		t.Fatalf("mvcas throughput collapsed: %.2f KOPS", mv.KOPS)
	}
	if rate := mv.Extra["abort_rate"]; rate >= 0.20 {
		t.Errorf("mvcas: %.1f%% of puts re-executed after a lost root CAS, want < 20%%", rate*100)
	}

	mir, ok := byKey["mirror/stale-bounded"]
	if !ok {
		t.Fatal("sweep lost the mirror cell")
	}
	if mir.KOPS <= 0 || mir.Extra["reads"] <= 0 {
		t.Fatalf("mirror reads collapsed: %.2f KOPS over %g reads", mir.KOPS, mir.Extra["reads"])
	}
	if lag, budget := mir.Extra["max_served_lag"], mir.Extra["budget"]; lag > budget {
		t.Errorf("mirror served a read %g epochs stale, budget %g", lag, budget)
	} else if lag == 0 {
		t.Error("mirror cell never served a stale read — the lag ramp is not exercising the budget")
	}
}
