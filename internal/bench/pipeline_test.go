package bench

import "testing"

// TestPipelineSweepSpeedup guards the headline acceptance number: with
// the full RCB ladder, queue depth 16 must at least double the ops/s of
// the stop-and-wait depth-1 baseline, and the pipeline counters must
// show the batching actually engaged.
func TestPipelineSweepSpeedup(t *testing.T) {
	sc := Scale{Seed: 600, Ops: 900, Keys: 6000}
	rows, err := PipelineSweep(sc, []int{1, 16})
	if err != nil {
		t.Fatal(err)
	}
	cell := map[string]Row{}
	for _, r := range rows {
		cell[r.Series+r.Label] = r
	}
	base, ok := cell["RCBdepth=1"]
	if !ok {
		t.Fatalf("missing RCB depth=1 row in %+v", rows)
	}
	deep, ok := cell["RCBdepth=16"]
	if !ok {
		t.Fatalf("missing RCB depth=16 row in %+v", rows)
	}
	if deep.KOPS < 2*base.KOPS {
		t.Fatalf("RCB depth 16 = %.1f KOPS, depth 1 = %.1f KOPS: want >= 2x", deep.KOPS, base.KOPS)
	}
	if deep.Extra["doorbells"] == 0 || deep.Extra["posted"] == 0 {
		t.Fatalf("depth 16 cell posted no WRs: %+v", deep.Extra)
	}
	if deep.Extra["verbs"] >= base.Extra["verbs"] {
		t.Fatalf("depth 16 paid %v round trips, depth 1 paid %v: doorbell batching is not engaging",
			deep.Extra["verbs"], base.Extra["verbs"])
	}
	// Depth 1 must behave exactly like the synchronous path: nothing
	// posted, nothing overlapped.
	if base.Extra["posted"] != 0 || base.Extra["overlap_saved_ns"] != 0 {
		t.Fatalf("depth 1 cell used the pipeline: %+v", base.Extra)
	}
}
