package bench

import (
	"fmt"

	"asymnvm/internal/backend"
	"asymnvm/internal/clock"
	"asymnvm/internal/core"
	"asymnvm/internal/ds"
	"asymnvm/internal/nvm"
	"asymnvm/internal/stats"
	"asymnvm/internal/workload"
)

// RecoverySweep measures restart cost versus workload age, the claim the
// compaction plane exists for (§6, §7.2): a back-end that checkpoints
// replays only checkpoint + suffix after a power failure, so its recovery
// work stays flat as the log grows, while a back-end that merely applies
// lazily without ever checkpointing must replay the full history.
//
// Two series over workloads of 1x/2x/4x/8x sc.Ops hash-table puts:
//
//   - "compact": CompactConfig{Interval: 32 KiB} — periodic checkpoints
//     truncate the logs, recovery replays the post-checkpoint suffix,
//     bounded by the interval whatever the workload length.
//   - "full": the same lazy plane with checkpoints effectively disabled
//     (interval beyond any workload, logs sized so pressure never fires) —
//     the §7.2 baseline of replaying the whole memory log from offset
//     zero. Eager mode is no baseline here: it persists cursors on every
//     transaction, i.e. it pays continuous-checkpoint write cost upfront.
//
// KOPS is the workload length divided by recovery virtual time — "how
// fast the history comes back" — so the compacted line rising linearly
// while the full line stays flat is the same fact as recovery time being
// flat versus linear. Extra carries the raw replay-op count and recovery
// virtual nanoseconds the pinned tests check.
func RecoverySweep(sc Scale) ([]Row, error) {
	series := []struct {
		name string
		cfg  *backend.CompactConfig
	}{
		{"compact", &backend.CompactConfig{Interval: 32 << 10}},
		{"full", &backend.CompactConfig{Interval: recoveryNeverInterval}},
	}
	var rows []Row
	for _, s := range series {
		for _, mult := range []int{1, 2, 4, 8} {
			row, err := measureRecoveryCell(s.name, s.cfg, mult*sc.Ops)
			if err != nil {
				return nil, fmt.Errorf("recovery %s ops=%d: %w", s.name, mult*sc.Ops, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// recoveryNeverInterval pushes periodic checkpoints beyond any workload;
// together with recoveryCreateOpts (logs whose ¾-full pressure trigger is
// out of reach) it makes the "full" series genuinely checkpoint-free.
const recoveryNeverInterval = 1 << 62

// recoveryCreateOpts sizes the logs so the whole 8x history of a full-
// scale sweep fits below the ¾ pressure trigger: the "full" series must
// never be forced into a checkpoint, or it stops being a baseline.
func recoveryCreateOpts() core.CreateOptions {
	return core.CreateOptions{MemLogSize: 96 << 20, OpLogSize: 32 << 20}
}

// measureRecoveryCell ages one hash table by ops seeded puts, power-fails
// the back-end (Halt: no drain, no final checkpoint, volatile window
// lost), and measures the restart: replayed transactions and recovery
// virtual time, both read off the recovering incarnation.
func measureRecoveryCell(seriesName string, cfg *backend.CompactConfig, ops int) (Row, error) {
	prof := clock.DefaultProfile()
	dev := nvm.NewDevice(256 << 20)
	st := &stats.Stats{}
	bk, err := backend.New(dev, backend.Options{ID: 0, Profile: &prof, Stats: st, Compact: cfg})
	if err != nil {
		return Row{}, err
	}
	bk.Start()
	fe := core.NewFrontend(core.FrontendOptions{ID: 1, Mode: core.ModeR(), Profile: &prof})
	conn, err := fe.Connect(bk)
	if err != nil {
		bk.Stop()
		return Row{}, err
	}
	ht, err := ds.CreateHashTable(conn, "recovery", ds.Options{
		Buckets: 1 << 10, Create: recoveryCreateOpts(),
	})
	if err != nil {
		bk.Stop()
		return Row{}, err
	}
	// A cycling key domain: the data area stays bounded while the log
	// grows linearly with ops — exactly the regime where truncation pays.
	for i := 0; i < ops; i++ {
		k := uint64(i%1024) + 1
		if err := ht.Put(k, workload.Value(k, 64)); err != nil {
			bk.Stop()
			return Row{}, err
		}
	}
	// Drain so the replayer has consumed the whole log (lazily); the
	// compacting series has then also checkpointed up to within one
	// interval of the tail.
	if err := ht.Drain(); err != nil {
		bk.Stop()
		return Row{}, err
	}
	ckpts := st.Checkpoints.Load()
	truncated := st.TruncatedBytes.Load()

	// Power failure: volatile cursors and lazily applied entries are
	// gone; only durable log records and checkpoint slots survive.
	bk.Halt()
	dev.Crash(nil)

	st2 := &stats.Stats{}
	bk2, err := backend.New(dev, backend.Options{ID: 0, Profile: &prof, Stats: st2, Compact: cfg})
	if err != nil {
		return Row{}, fmt.Errorf("restart: %w", err)
	}
	// Recovery runs inside New on a fresh virtual clock, so Now() is the
	// recovery cost itself.
	elapsed := bk2.Clock().Now()
	rro := st2.RecoveryReplayOps.Load()
	return Row{
		Experiment: "recovery", Series: seriesName,
		Label: fmt.Sprintf("ops=%d", ops), X: float64(ops),
		KOPS: kopsOf(ops, elapsed),
		Extra: map[string]float64{
			"replay_ops":          float64(rro),
			"recovery_virtual_ns": float64(elapsed.Nanoseconds()),
			"checkpoints":         float64(ckpts),
			"truncated_bytes":     float64(truncated),
		},
	}, nil
}
