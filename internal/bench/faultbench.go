package bench

import (
	"fmt"

	"asymnvm/internal/cluster"
	"asymnvm/internal/core"
	"asymnvm/internal/ds"
	"asymnvm/internal/fault"
)

// FaultDegradation measures throughput of the HashTable workload under
// increasing per-verb fault rates: the cost of the front-end's bounded
// retry (exponential backoff charged to the virtual clock) as the fabric
// degrades. The 0-rate row is the healthy baseline; each faulted row
// reports its retry count so the degradation can be attributed.
func FaultDegradation(sc Scale) ([]Row, error) {
	rates := []float64{0, 0.001, 0.01, 0.05}
	var rows []Row
	for _, rate := range rates {
		cl, err := newAsymCluster(512 << 20)
		if err != nil {
			return nil, err
		}
		plane := fault.NewPlane(1)
		cl.AttachFaultPlane(plane)
		_, conns, err := cl.NewFrontend(1, core.ModeR())
		if err != nil {
			cl.Stop()
			return nil, err
		}
		h, err := buildKV(conns[0], "HashTable", sc, ds.Options{Create: benchCreateOpts(), Buckets: 1 << 14})
		if err != nil {
			cl.Stop()
			return nil, err
		}
		// Faults start after the seeding phase: the experiment measures
		// steady-state operation on a degrading fabric.
		plane.Injector(cluster.InjectorName(1, 0)).SetVerbFaults(fault.VerbFaults{
			DropProb:     rate / 2,
			TruncateProb: rate / 4,
			DelayProb:    rate / 4,
		})
		before := h.fe.Stats().VerbRetries.Load()
		kops, err := h.run(sc.Ops, 50)
		cl.Stop()
		if err != nil {
			return nil, fmt.Errorf("bench: chaos rate %g: %w", rate, err)
		}
		rows = append(rows, Row{
			Experiment: "chaos",
			Series:     "AsymNVM-R",
			Label:      fmt.Sprintf("fault=%g", rate),
			X:          rate,
			KOPS:       kops,
			Extra: map[string]float64{
				"retries": float64(h.fe.Stats().VerbRetries.Load() - before),
			},
		})
	}
	return rows, nil
}
