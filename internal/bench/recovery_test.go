package bench

import (
	"encoding/json"
	"os"
	"sort"
	"testing"

	"asymnvm/internal/backend"
)

// loadCheckedInRows reads a BENCH_*.json dump from the repo root.
func loadCheckedInRows(t *testing.T, name string) []Row {
	t.Helper()
	data, err := os.ReadFile("../../" + name)
	if err != nil {
		t.Fatalf("reading checked-in %s: %v (regenerate with "+
			"`go run ./cmd/asymnvm-bench -exp recovery -scale quick -ops 400 -json %s`)", name, err, name)
	}
	var rows []Row
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return rows
}

// TestRecoveryCheckedInCurve pins the tentpole's headline numbers against
// the checked-in BENCH_recovery.json (regenerated verbatim by `make
// bench-smoke` — the virtual clock makes the rows reproducible):
//
//   - the compacted series' recovery replay work must be bounded and flat
//     as the workload ages 1x..8x,
//   - the uncompacted baseline must grow with the workload,
//   - at the longest sweep point the baseline must replay at least 5x
//     more transactions than the compacted series ever does.
func TestRecoveryCheckedInCurve(t *testing.T) {
	rows := loadCheckedInRows(t, "BENCH_recovery.json")
	bySeries := map[string][]Row{}
	for _, r := range rows {
		if r.Experiment == "recovery" {
			bySeries[r.Series] = append(bySeries[r.Series], r)
		}
	}
	for _, s := range []string{"compact", "full"} {
		if len(bySeries[s]) != 4 {
			t.Fatalf("series %q: %d rows, want 4 sweep points", s, len(bySeries[s]))
		}
		sort.Slice(bySeries[s], func(i, j int) bool { return bySeries[s][i].X < bySeries[s][j].X })
	}
	compact, full := bySeries["compact"], bySeries["full"]

	maxCompactRRO := 0.0
	for _, r := range compact {
		if r.Extra["replay_ops"] > maxCompactRRO {
			maxCompactRRO = r.Extra["replay_ops"]
		}
	}
	// Bounded: the suffix a checkpointing back-end replays is set by the
	// checkpoint interval (32 KiB of log), never by the workload length.
	if maxCompactRRO > 512 {
		t.Errorf("compacted recovery replayed up to %.0f transactions; not bounded by the interval", maxCompactRRO)
	}
	// Flat: aging the workload 8x must not grow the compacted replay work.
	if first, last := compact[0].Extra["replay_ops"], compact[3].Extra["replay_ops"]; last > first+64 {
		t.Errorf("compacted replay ops grew with workload length: %.0f at 1x, %.0f at 8x", first, last)
	}
	// The baseline replays the history: linear in the workload.
	if f0, f3 := full[0].Extra["replay_ops"], full[3].Extra["replay_ops"]; f3 < 7*f0 {
		t.Errorf("full-replay baseline not linear: %.0f at 1x vs %.0f at 8x", f0, f3)
	}
	longest := full[3].Extra["replay_ops"]
	floor := maxCompactRRO
	if floor < 1 {
		floor = 1
	}
	if longest < 5*floor {
		t.Errorf("at the longest point the baseline replayed %.0f transactions vs a compacted worst case of %.0f; want >= 5x", longest, floor)
	}
	if longest < 5 {
		t.Errorf("baseline longest point replayed only %.0f transactions; the sweep did not run", longest)
	}
}

// TestRecoveryReplayBoundedLive re-derives the 5x claim on a fresh pair
// of cells, so the property is checked against the code and not only the
// checked-in numbers.
func TestRecoveryReplayBoundedLive(t *testing.T) {
	const ops = 1200
	compact, err := measureRecoveryCell("compact", &backend.CompactConfig{Interval: 32 << 10}, ops)
	if err != nil {
		t.Fatal(err)
	}
	full, err := measureRecoveryCell("full", &backend.CompactConfig{Interval: recoveryNeverInterval}, ops)
	if err != nil {
		t.Fatal(err)
	}
	cRRO, fRRO := compact.Extra["replay_ops"], full.Extra["replay_ops"]
	if cRRO > 512 {
		t.Errorf("compacted recovery replayed %.0f transactions of a %d-op history; suffix not bounded", cRRO, ops)
	}
	floor := cRRO
	if floor < 1 {
		floor = 1
	}
	if fRRO < 5*floor {
		t.Errorf("full replay %.0f vs compacted %.0f replay ops; want >= 5x", fRRO, floor)
	}
	if fRRO < ops {
		t.Errorf("full-replay baseline replayed %.0f transactions, want the whole %d-op history", fRRO, ops)
	}
	if compact.Extra["checkpoints"] == 0 || compact.Extra["truncated_bytes"] == 0 {
		t.Errorf("compacted cell never checkpointed/truncated: %+v", compact.Extra)
	}
}
