package bench

import (
	"fmt"

	"asymnvm/internal/core"
	"asymnvm/internal/ds"
	"asymnvm/internal/workload"
)

// PipelineSweep measures the posted-verb pipeline: the three mode
// ladders (R, RC, RCB) at send-queue depths 1/4/16/64 under a
// multi-get-heavy hash-table workload (gets gathered into 32-key
// GetMulti batches, 10% puts). Depth 1 is the stop-and-wait baseline —
// every verb pays its full round trip; deeper queues let the front-end
// ring one doorbell per WR group and overlap the fabric latency. Extra
// carries the raw pipeline counters so the speedup can be attributed:
// verbs (round trips actually paid), posted WRs, doorbell groups, the
// average send-queue depth, and the virtual nanoseconds the overlap
// model saved versus stop-and-wait.
func PipelineSweep(sc Scale, depths []int) ([]Row, error) {
	if len(depths) == 0 {
		depths = []int{1, 4, 16, 64}
	}
	cacheB := cacheBytesFor("HashTable", sc.Seed, 10)
	modes := []struct {
		name string
		mode core.Mode
	}{
		{"R", core.ModeR()},
		{"RC", core.ModeRC(cacheB)},
		{"RCB", core.ModeRCB(cacheB, 64)},
	}
	var rows []Row
	for _, m := range modes {
		for _, d := range depths {
			row, err := measurePipelineCell(m.name, m.mode.WithPipeline(d), sc, d)
			if err != nil {
				return nil, fmt.Errorf("pipeline %s depth=%d: %w", m.name, d, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// measurePipelineCell runs one (mode, depth) cell and returns its row.
func measurePipelineCell(series string, mode core.Mode, sc Scale, depth int) (Row, error) {
	cl, err := newAsymCluster(512 << 20)
	if err != nil {
		return Row{}, err
	}
	defer cl.Stop()
	fe, conns, err := cl.NewFrontend(1, mode)
	if err != nil {
		return Row{}, err
	}
	ht, err := ds.CreateHashTable(conns[0], "pipesweep", ds.Options{
		Create: benchCreateOpts(), Buckets: 1 << 10, ValueCap: 64,
	})
	if err != nil {
		return Row{}, err
	}
	if err := seedKV(ht, sc); err != nil {
		return Row{}, err
	}

	const mget = 32
	gen := workload.New(workload.Config{Seed: 4242, Keys: uint64(sc.Keys), WritePct: 10, ValueLen: 64})
	st := fe.Stats()
	before := st.Snapshot()
	start := fe.Clock().Now()
	keys := make([]uint64, 0, mget)
	done := 0
	issue := func() error {
		if len(keys) == 0 {
			return nil
		}
		if _, _, err := ht.GetMulti(keys); err != nil {
			return err
		}
		done += len(keys)
		keys = keys[:0]
		return nil
	}
	for done+len(keys) < sc.Ops {
		op := gen.Next()
		if op.Kind == workload.OpPut {
			if err := ht.Put(op.Key, workload.Value(op.Key, 64)); err != nil {
				return Row{}, err
			}
			done++
			continue
		}
		keys = append(keys, op.Key)
		if len(keys) == mget {
			if err := issue(); err != nil {
				return Row{}, err
			}
		}
	}
	if err := issue(); err != nil {
		return Row{}, err
	}
	if err := ht.Flush(); err != nil {
		return Row{}, err
	}
	elapsed := fe.Clock().Now() - start
	d := st.Snapshot().Sub(before)
	return Row{
		Experiment: "pipeline", Series: series,
		Label: fmt.Sprintf("depth=%d", depth), X: float64(depth),
		KOPS: kopsOf(sc.Ops, elapsed),
		Extra: map[string]float64{
			"verbs":            float64(d.RDMAVerbs()),
			"virtual_ns":       float64(elapsed.Nanoseconds()),
			"posted":           float64(d.PostedVerbs),
			"doorbells":        float64(d.DoorbellGroups),
			"avg_depth":        d.AvgQueueDepth(),
			"overlap_saved_ns": float64(d.OverlapSavedNS),
		},
	}, nil
}
