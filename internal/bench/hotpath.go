// Hot-path microbenchmarks: unlike every other experiment in this
// package, these measure HOST WALL-CLOCK time, not the virtual clock.
// They pin the real cost of the zero-alloc plumbing the simulator's hot
// paths ride on — the lock-free completion rings, the doorbell
// park/unpark primitive, and the AppendTo-style record/frame codecs —
// against the idiomatic Go baselines they replaced (buffered channels,
// encode-then-frame copies). Absolute ns/op varies across hosts, so the
// checked-in BENCH_hotpath.json is diffed with a generous threshold;
// the allocation ceilings are enforced exactly, but in plain `go test`
// (internal/logrec and internal/serve allocs_test.go), not here.
package bench

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"asymnvm/internal/arena"
	"asymnvm/internal/logrec"
	"asymnvm/internal/ring"
	"asymnvm/internal/serve"
)

// hotCap sizes the handoff queues; matches the rdma completion ring's
// typical depth class (power of two, far larger than the pipe depth).
const hotCap = 1024

// The acceptance gates: HotpathSweep fails outright when the SPSC ring
// does not beat the buffered channel by these factors.
//
//   - handoffSpeedupFloor guards the cross-goroutine handoff — the
//     headline claim of the ring refactor. It only arms on hosts with
//     real parallelism: on one CPU the "handoff" is a scheduler
//     benchmark, not a queue benchmark.
//   - pushpopSpeedupFloor guards the uncontended push+pop pair (the
//     steady-state shape: Poll draining completions in-thread, the
//     writer finding its queue non-empty) and arms everywhere. Its
//     floor is lower because on virtualized single-CPU hosts the pair
//     cost is dominated by the two unavoidable publication stores,
//     which cost the same XCHG as the channel's fast-path locking.
const (
	handoffSpeedupFloor = 2.0
	pushpopSpeedupFloor = 1.5
)

// hotSPSCHandoff streams b.N values through an SPSC ring, consumer on
// its own goroutine. The timer covers the full handoff: all pushes plus
// waiting for the drain.
func hotSPSCHandoff(b *testing.B) {
	q := ring.NewSPSC[uint64](hotCap)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for n := 0; n < b.N; n++ {
			for {
				if _, ok := q.Pop(); ok {
					break
				}
				runtime.Gosched()
			}
		}
	}()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for !q.Push(uint64(n)) {
			runtime.Gosched()
		}
	}
	<-done
}

// hotChanHandoff is the baseline the ring replaced: a buffered channel
// of the same capacity, same producer/consumer shape.
func hotChanHandoff(b *testing.B) {
	ch := make(chan uint64, hotCap)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for n := 0; n < b.N; n++ {
			<-ch
		}
	}()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		ch <- uint64(n)
	}
	<-done
}

// hotSPSCPushPop measures one uncontended push+pop pair from a single
// goroutine — the per-op overhead the hot paths pay when the other side
// is keeping up, which is the steady state the rings were built for.
func hotSPSCPushPop(b *testing.B) {
	q := ring.NewSPSC[uint64](hotCap)
	for n := 0; n < b.N; n++ {
		if !q.Push(uint64(n)) {
			b.Fatal("push failed on empty ring")
		}
		if _, ok := q.Pop(); !ok {
			b.Fatal("pop failed on non-empty ring")
		}
	}
}

// hotChanPushPop is the uncontended channel baseline: one buffered
// send+receive pair per op, no goroutine switch.
func hotChanPushPop(b *testing.B) {
	ch := make(chan uint64, hotCap)
	for n := 0; n < b.N; n++ {
		ch <- uint64(n)
		<-ch
	}
}

// hotMPSCProducers is the fan-in width for the MPSC handoff benches —
// the serve path's shape (several request handlers, one writer).
const hotMPSCProducers = 4

// hotMPSCHandoff streams b.N values through the Vyukov MPSC ring from
// hotMPSCProducers goroutines into the bench goroutine.
func hotMPSCHandoff(b *testing.B) {
	q := ring.NewMPSC[uint64](hotCap)
	var wg sync.WaitGroup
	b.ResetTimer()
	for p := 0; p < hotMPSCProducers; p++ {
		share := b.N / hotMPSCProducers
		if p == 0 {
			share += b.N % hotMPSCProducers
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				for !q.Push(uint64(i)) {
					runtime.Gosched()
				}
			}
		}(share)
	}
	for n := 0; n < b.N; n++ {
		for {
			if _, ok := q.Pop(); ok {
				break
			}
			runtime.Gosched()
		}
	}
	wg.Wait()
}

// hotChanMPSCHandoff is the multi-producer channel baseline.
func hotChanMPSCHandoff(b *testing.B) {
	ch := make(chan uint64, hotCap)
	var wg sync.WaitGroup
	b.ResetTimer()
	for p := 0; p < hotMPSCProducers; p++ {
		share := b.N / hotMPSCProducers
		if p == 0 {
			share += b.N % hotMPSCProducers
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				ch <- uint64(i)
			}
		}(share)
	}
	for n := 0; n < b.N; n++ {
		<-ch
	}
	wg.Wait()
}

// hotDoorbell measures the uncontended ring+poll cycle — the cost a
// front-end kick pays when the back-end service loop is already awake.
func hotDoorbell(b *testing.B) {
	d := ring.NewDoorbell()
	for n := 0; n < b.N; n++ {
		d.Ring()
		if !d.Poll() {
			b.Fatal("doorbell lost a ring")
		}
	}
}

// hotTxRoundTrip encodes and decodes one two-entry transaction record
// through the reused-buffer AppendTo/DecodeTxInto pair — the replayer's
// per-transaction inner loop.
func hotTxRoundTrip(b *testing.B) {
	val := make([]byte, 64)
	for i := range val {
		val[i] = byte(i)
	}
	rec := logrec.TxRecord{
		DSSlot:  3,
		Abs:     4096,
		CoverOp: 512,
		Entries: []logrec.MemEntry{
			{Flag: logrec.FlagInline, Addr: 1 << 20, Len: 64, Value: val},
			{Flag: logrec.FlagInline, Addr: 2 << 20, Len: 64, Value: val},
		},
	}
	var buf []byte
	var dec logrec.TxRecord
	var a arena.Arena
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		buf = rec.AppendTo(buf[:0])
		if _, err := logrec.DecodeTxInto(&dec, buf, rec.Abs, &a); err != nil {
			b.Fatal(err)
		}
		a.Reset()
	}
}

// hotOpRoundTrip does the same for an operation-log record.
func hotOpRoundTrip(b *testing.B) {
	params := make([]byte, 48)
	for i := range params {
		params[i] = byte(i)
	}
	rec := logrec.OpRecord{DSSlot: 3, OpType: 2, Abs: 8192, Params: params}
	var buf []byte
	var dec logrec.OpRecord
	var a arena.Arena
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		buf = rec.AppendTo(buf[:0])
		if _, err := logrec.DecodeOpInto(&dec, buf, rec.Abs, &a); err != nil {
			b.Fatal(err)
		}
		a.Reset()
	}
}

// hotProtoRequest frames and decodes one Put request through the
// single-pass AppendFramed / DecodeRequestInto pair — the serve path's
// per-request codec cost without the socket.
func hotProtoRequest(b *testing.B) {
	val := make([]byte, 100)
	for i := range val {
		val[i] = byte(i)
	}
	req := serve.Request{Op: serve.OpPut, ID: 7, Tenant: 2, BudgetNS: 1 << 20, Key: 0xfeedbeef, Val: val}
	var buf []byte
	var dec serve.Request
	var a arena.Arena
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		var err error
		buf, err = req.AppendFramed(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		if err := serve.DecodeRequestInto(&dec, buf[4:], &a); err != nil {
			b.Fatal(err)
		}
		a.Reset()
	}
}

// hotProtoResponse frames and decodes one found-Get response.
func hotProtoResponse(b *testing.B) {
	val := make([]byte, 100)
	for i := range val {
		val[i] = byte(i)
	}
	resp := serve.Response{Status: serve.StatusOK, ID: 7, Found: true, Val: val}
	var buf []byte
	var dec serve.Response
	var a arena.Arena
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		var err error
		buf, err = resp.AppendFramed(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		if err := serve.DecodeResponseInto(&dec, buf[4:], &a); err != nil {
			b.Fatal(err)
		}
		a.Reset()
	}
}

// HotpathSweep runs every hot-path microbenchmark under
// testing.Benchmark and returns one row per cell. KOPS here is real
// (wall-clock) thousands of operations per second; Extra carries ns/op
// and the measured allocations per op. On a multi-core host the sweep
// fails if the SPSC ring does not beat the channel handoff by at least
// spscSpeedupFloor — the acceptance gate for the ring refactor.
func HotpathSweep() ([]Row, error) {
	cells := []struct {
		series string
		label  string
		fn     func(*testing.B)
	}{
		{"spsc-ring", "pushpop", hotSPSCPushPop},
		{"channel", "pushpop", hotChanPushPop},
		{"spsc-ring", "handoff", hotSPSCHandoff},
		{"channel", "handoff", hotChanHandoff},
		{"mpsc-ring", "handoff-4p", hotMPSCHandoff},
		{"channel", "handoff-4p", hotChanMPSCHandoff},
		{"doorbell", "ring+poll", hotDoorbell},
		{"logrec", "tx-roundtrip", hotTxRoundTrip},
		{"logrec", "op-roundtrip", hotOpRoundTrip},
		{"proto", "request", hotProtoRequest},
		{"proto", "response", hotProtoResponse},
	}
	rows := make([]Row, 0, len(cells))
	nsOf := make(map[string]float64, len(cells))
	for _, c := range cells {
		r := testing.Benchmark(c.fn)
		ns := float64(r.NsPerOp())
		if ns <= 0 {
			ns = 0.5 // sub-ns ops: clamp so KOPS stays finite
		}
		nsOf[c.series+"/"+c.label] = ns
		rows = append(rows, Row{
			Experiment: "hotpath",
			Series:     c.series,
			Label:      c.label,
			KOPS:       1e6 / ns, // ops/sec ÷ 1000
			Extra: map[string]float64{
				"ns_op":     ns,
				"allocs_op": float64(r.AllocsPerOp()),
				"bytes_op":  float64(r.AllocedBytesPerOp()),
			},
		})
	}
	pushpop := nsOf["channel/pushpop"] / nsOf["spsc-ring/pushpop"]
	handoff := nsOf["channel/handoff"] / nsOf["spsc-ring/handoff"]
	rows = append(rows, Row{
		Experiment: "hotpath",
		Series:     "spsc-vs-channel",
		Label:      "speedup",
		KOPS:       0, // ratio row, excluded from benchcmp's throughput diff
		Extra:      map[string]float64{"pushpop": pushpop, "handoff": handoff},
	})
	if pushpop < pushpopSpeedupFloor {
		return rows, fmt.Errorf("hotpath: SPSC ring push+pop only %.2fx faster than channel (floor %.1fx): ring %.1f ns/op, channel %.1f ns/op",
			pushpop, pushpopSpeedupFloor, nsOf["spsc-ring/pushpop"], nsOf["channel/pushpop"])
	}
	if runtime.GOMAXPROCS(0) >= 2 && handoff < handoffSpeedupFloor {
		return rows, fmt.Errorf("hotpath: SPSC ring handoff only %.2fx faster than channel (floor %.1fx): ring %.1f ns/op, channel %.1f ns/op",
			handoff, handoffSpeedupFloor, nsOf["spsc-ring/handoff"], nsOf["channel/handoff"])
	}
	return rows, nil
}
