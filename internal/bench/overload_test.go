package bench

import (
	"sort"
	"testing"
)

// overloadBySeries indexes an overload row set.
func overloadBySeries(rows []Row) (capacity []Row, openloop []Row) {
	for _, r := range rows {
		if r.Experiment != "overload" {
			continue
		}
		switch r.Series {
		case "capacity":
			capacity = append(capacity, r)
		case "openloop":
			openloop = append(openloop, r)
		}
	}
	sort.Slice(openloop, func(i, j int) bool { return openloop[i].X < openloop[j].X })
	return capacity, openloop
}

// checkOverloadCurve asserts graceful degradation on one row set: at 2×
// open-loop offered load the plane must shed (explicit rejections), keep
// goodput at ≥ 70% of the 1× point, and keep accepted-request p99 inside
// the deadline budget — flattening, not collapsing.
func checkOverloadCurve(t *testing.T, rows []Row) {
	t.Helper()
	capacity, openloop := overloadBySeries(rows)
	if len(capacity) != 1 || capacity[0].KOPS <= 0 {
		t.Fatalf("missing calibration row: %+v", capacity)
	}
	if len(openloop) != len(OverloadFactors) {
		t.Fatalf("openloop series has %d rows, want %d", len(openloop), len(OverloadFactors))
	}
	base, over := openloop[0], openloop[len(openloop)-1]
	if base.X != 1.0 || over.X != 2.0 {
		t.Fatalf("sweep factors off: first %g last %g", base.X, over.X)
	}
	if base.KOPS <= 0 {
		t.Fatalf("no goodput at 1x: %+v", base)
	}
	// Overload is real: arrivals outpace capacity and some are shed.
	if over.Extra["offered"] <= base.Extra["offered"]*1.5 {
		t.Errorf("2x point offered %0.f vs %0.f at 1x; open loop not open", over.Extra["offered"], base.Extra["offered"])
	}
	if over.Extra["rejected"]+over.Extra["breaker"] == 0 {
		t.Errorf("2x overload shed nothing: %+v", over.Extra)
	}
	// Graceful degradation: goodput holds at >= 70% of the 1x point.
	if over.KOPS < 0.7*base.KOPS {
		t.Errorf("goodput collapsed under 2x: %.1f KOPS vs %.1f at 1x", over.KOPS, base.KOPS)
	}
	// Accepted-request p99 stays bounded by the deadline budget.
	for _, r := range openloop {
		if r.Extra["p99_us"] > r.Extra["budget_us"] {
			t.Errorf("%s: accepted p99 %.0fus exceeds budget %.0fus", r.Label, r.Extra["p99_us"], r.Extra["budget_us"])
		}
		if r.Extra["good"] == 0 {
			t.Errorf("%s: no request completed in budget", r.Label)
		}
	}
}

// TestOverloadCheckedInCurve pins the tentpole's headline numbers
// against the checked-in BENCH_overload.json (regenerated verbatim by
// `make bench-smoke` — virtual time makes the rows reproducible).
func TestOverloadCheckedInCurve(t *testing.T) {
	rows := loadCheckedInRows(t, "BENCH_overload.json")
	checkOverloadCurve(t, rows)
}

// TestOverloadSweepLive re-derives the graceful-degradation property on
// fresh cells, so it is checked against the code and not only the
// checked-in numbers.
func TestOverloadSweepLive(t *testing.T) {
	sc := QuickScale()
	sc.Ops = 600
	sc.Accounts = 128
	rows, err := OverloadSweep(sc)
	if err != nil {
		t.Fatal(err)
	}
	checkOverloadCurve(t, rows)
}
