// Package bench regenerates every table and figure of the paper's
// evaluation (§9). Each experiment has a driver returning Rows — the same
// series the paper plots — measured in virtual time over the simulated
// fabric, so the shapes (who wins, by what factor, where lines cross) are
// comparable even though the absolute testbed differs.
package bench

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"asymnvm/internal/cluster"
	"asymnvm/internal/core"
	"asymnvm/internal/ds"
	"asymnvm/internal/symmetric"
	"asymnvm/internal/trace"
	"asymnvm/internal/txapp"
	"asymnvm/internal/workload"
)

// Row is one measured data point.
type Row struct {
	Experiment string  // "table3", "fig6", …
	Series     string  // line/config, e.g. "AsymNVM-RCB"
	Label      string  // categorical x, e.g. "BST"
	X          float64 // numeric x where applicable (batch size, readers…)
	KOPS       float64 // primary metric
	Extra      map[string]float64
}

// Scale sizes an experiment run. Quick keeps `go test -bench` fast;
// the cmd tool defaults to Full.
type Scale struct {
	Seed     int // initial structure population
	Ops      int // measured operations per cell
	Keys     int // key space size
	TATPSubs int
	Accounts int
}

// QuickScale is used by the checked-in testing.B benchmarks.
func QuickScale() Scale {
	return Scale{Seed: 4000, Ops: 1200, Keys: 16000, TATPSubs: 400, Accounts: 400}
}

// FullScale approaches the paper's populations (minutes of host time).
func FullScale() Scale {
	return Scale{Seed: 100000, Ops: 20000, Keys: 400000, TATPSubs: 20000, Accounts: 20000}
}

// dsKinds enumerates the Table 3 benchmark columns.
var table3Benchmarks = []string{
	"TX(SmallBank)", "TX(TATP)", "Queue", "Stack", "HashTable",
	"SkipList", "BST", "BPT", "MV-BST", "MV-BPT",
}

// nodeBytes approximates a structure's per-item NVM footprint, used to
// size "cache = 10% of NVM size" like the paper.
func nodeBytes(name string) int {
	switch name {
	case "Queue", "Stack":
		return 80
	case "HashTable":
		return 88
	case "SkipList":
		return 208
	case "BST", "MV-BST":
		return 96
	case "BPT", "MV-BPT", "TX(TATP)":
		return 120
	case "TX(SmallBank)":
		return 40
	default:
		return 100
	}
}

// cacheBytesFor sizes the front-end cache as pct% of the structure's
// NVM footprint.
func cacheBytesFor(name string, seed int, pct float64) int64 {
	b := int64(float64(seed) * float64(nodeBytes(name)) * pct / 100)
	if b < 8<<10 {
		b = 8 << 10
	}
	return b
}

// liveTracer, when set via SetTracer, traces every cluster the drivers
// build — the bench binary's -http observability hook. Actor-name
// collisions across cells resolve to numbered aliases in the tracer.
var liveTracer *trace.Tracer

// SetTracer installs a tracer picked up by all subsequently built
// clusters. Call before running drivers; not safe concurrently with them.
func SetTracer(tr *trace.Tracer) { liveTracer = tr }

// newAsymCluster builds a one-back-end cluster with the remote profile.
func newAsymCluster(deviceBytes int) (*cluster.Cluster, error) {
	cfg := cluster.DefaultConfig()
	cfg.DeviceBytes = deviceBytes
	cfg.Tracer = liveTracer
	return cluster.New(cfg)
}

// kopsOf converts ops over a virtual duration to KOPS.
func kopsOf(ops int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(ops) / d.Seconds() / 1000
}

// kvHarness owns one structure instance plus the actors driving it.
type kvHarness struct {
	name  string
	kv    ds.KV
	stack *ds.Stack
	queue *ds.Queue
	tatp  *txapp.TATP
	bank  *txapp.SmallBank
	fe    *core.Frontend
	conn  *core.Conn
	gen   *workload.Generator
	vcap  int
}

// buildKV creates the named benchmark structure on conn and seeds it.
func buildKV(conn *core.Conn, name string, sc Scale, opts ds.Options) (*kvHarness, error) {
	h := &kvHarness{name: name, fe: conn.Frontend(), conn: conn, vcap: opts.ValueCap}
	if h.vcap == 0 {
		h.vcap = 64
	}
	uniq := fmt.Sprintf("%s-%d", sanitize(name), conn.Frontend().ID())
	var err error
	switch name {
	case "Stack":
		h.stack, err = ds.CreateStack(conn, uniq, opts)
		if err == nil {
			for i := 0; i < sc.Seed; i++ {
				if err = h.stack.Push(workload.Value(uint64(i), 64)); err != nil {
					break
				}
			}
			if err == nil {
				err = h.stack.Flush()
			}
		}
	case "Queue":
		h.queue, err = ds.CreateQueue(conn, uniq, opts)
		if err == nil {
			for i := 0; i < sc.Seed; i++ {
				if err = h.queue.Enqueue(workload.Value(uint64(i), 64)); err != nil {
					break
				}
			}
			if err == nil {
				err = h.queue.Flush()
			}
		}
	case "TX(TATP)":
		h.tatp, err = txapp.NewTATP(conn, uniq, uint64(sc.TATPSubs), opts)
	case "TX(SmallBank)":
		h.bank, err = txapp.NewSmallBank(conn, uniq, uint64(sc.Accounts), opts)
	default:
		h.kv, err = createKVByName(conn, name, uniq, opts)
		if err == nil {
			err = seedKV(h.kv, sc)
		}
	}
	if err != nil {
		return nil, fmt.Errorf("bench: building %s: %w", name, err)
	}
	h.gen = workload.New(workload.Config{
		Seed: 1234, Keys: uint64(sc.Keys), WritePct: 100, ValueLen: 64,
	})
	return h, nil
}

func sanitize(name string) string {
	s := strings.NewReplacer("(", "-", ")", "", "+", "p").Replace(name)
	return strings.ToLower(s)
}

func createKVByName(conn *core.Conn, name, uniq string, opts ds.Options) (ds.KV, error) {
	switch name {
	case "HashTable":
		return ds.CreateHashTable(conn, uniq, opts)
	case "SkipList":
		return ds.CreateSkipList(conn, uniq, opts)
	case "BST":
		return ds.CreateBST(conn, uniq, opts)
	case "BPT":
		return ds.CreateBPTree(conn, uniq, opts)
	case "MV-BST":
		return ds.CreateMVBST(conn, uniq, opts)
	case "MV-BPT":
		return ds.CreateMVBPTree(conn, uniq, opts)
	}
	return nil, fmt.Errorf("bench: unknown structure %q", name)
}

func seedKV(kv ds.KV, sc Scale) error {
	// Seed with every sc.Keys/sc.Seed-th key so the measured workload
	// mixes hits and fresh inserts like a warmed store. Keys arrive in a
	// pseudo-random permutation — sorted insertion would degenerate the
	// unbalanced trees into linked lists, which no real workload does.
	stride := sc.Keys / sc.Seed
	if stride < 1 {
		stride = 1
	}
	perm := uint64(1)
	n := uint64(sc.Seed)
	for i := 0; i < sc.Seed; i++ {
		perm = (perm*6364136223846793005 + 1442695040888963407)
		idx := perm % n
		k := idx*uint64(stride) + 1
		if err := kv.Put(k, workload.Value(k, 64)); err != nil {
			return err
		}
	}
	// The permutation above repeats some indexes; top up the count with a
	// sequential sweep of small keys so the population size is stable.
	for i := 0; i < sc.Seed/8; i++ {
		k := uint64(i*stride + 1)
		if err := kv.Put(k, workload.Value(k, 64)); err != nil {
			return err
		}
	}
	return kv.Flush()
}

// run measures ops operations with the given write percentage, returning
// virtual-time KOPS.
func (h *kvHarness) run(ops, writePct int) (float64, error) {
	h.gen = workload.New(workload.Config{
		Seed: 99, Keys: h.gen.KeySpace(), WritePct: writePct, ValueLen: 64,
	})
	start := h.fe.Clock().Now()
	if err := h.runOps(ops); err != nil {
		return 0, err
	}
	if err := h.flush(); err != nil {
		return 0, err
	}
	return kopsOf(ops, h.fe.Clock().Now()-start), nil
}

func (h *kvHarness) runOps(ops int) error {
	switch {
	case h.stack != nil:
		for i := 0; i < ops; i++ {
			runtime.Gosched() // let co-running actors interleave (1-core host)
			op := h.gen.Next()
			if op.Kind == workload.OpPut {
				if err := h.stack.Push(workload.Value(op.Key, 64)); err != nil {
					return err
				}
			} else {
				if _, _, err := h.stack.Pop(); err != nil {
					return err
				}
			}
		}
	case h.queue != nil:
		for i := 0; i < ops; i++ {
			runtime.Gosched()
			op := h.gen.Next()
			if op.Kind == workload.OpPut {
				if err := h.queue.Enqueue(workload.Value(op.Key, 64)); err != nil {
					return err
				}
			} else {
				if _, _, err := h.queue.Dequeue(); err != nil {
					return err
				}
			}
		}
	case h.tatp != nil:
		r := uint64(777)
		for i := 0; i < ops; i++ {
			runtime.Gosched()
			r ^= r << 13
			r ^= r >> 7
			r ^= r << 17
			if err := h.tatp.DoTx(r); err != nil {
				return err
			}
		}
	case h.bank != nil:
		r := uint64(333)
		for i := 0; i < ops; i++ {
			runtime.Gosched()
			r ^= r << 13
			r ^= r >> 7
			r ^= r << 17
			if err := h.bank.DoTx(r); err != nil {
				return err
			}
		}
	default:
		for i := 0; i < ops; i++ {
			runtime.Gosched()
			op := h.gen.Next()
			if op.Kind == workload.OpPut {
				if err := h.kv.Put(op.Key, workload.Value(op.Key, 64)); err != nil {
					return err
				}
			} else {
				if _, _, err := h.kv.Get(op.Key); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (h *kvHarness) flush() error {
	switch {
	case h.stack != nil:
		return h.stack.Flush()
	case h.queue != nil:
		return h.queue.Flush()
	case h.tatp != nil:
		return h.tatp.Flush()
	case h.bank != nil:
		return h.bank.Flush()
	default:
		return h.kv.Flush()
	}
}

// configCell describes one Table 3 configuration column.
type configCell struct {
	series    string
	symmetric bool
	mode      core.Mode // ignored for symmetric rows except Batch
	cachePct  float64
}

// table3Configs returns the six configurations of Table 3.
func table3Configs() []configCell {
	return []configCell{
		{series: "Symmetric", symmetric: true, mode: core.Mode{Batch: 1}},
		{series: "Symmetric-B", symmetric: true, mode: core.Mode{Batch: 1024}},
		{series: "AsymNVM-Naive", mode: core.ModeNaive()},
		{series: "AsymNVM-R", mode: core.ModeR()},
		{series: "AsymNVM-RC", mode: core.ModeRC(0), cachePct: 10},
		{series: "AsymNVM-RCB", mode: core.ModeRCB(0, 1024), cachePct: 10},
	}
}

// measureCell runs one (benchmark, config) cell and returns its KOPS.
func measureCell(name string, cfg configCell, sc Scale, writePct int) (float64, error) {
	opts := ds.Options{Create: benchCreateOpts(), Buckets: 1 << 14}
	if cfg.symmetric {
		node, err := symmetric.New(512 << 20)
		if err != nil {
			return 0, err
		}
		defer node.Stop()
		conn, err := node.Client(1, cfg.mode.Batch)
		if err != nil {
			return 0, err
		}
		h, err := buildKV(conn, name, sc, opts)
		if err != nil {
			return 0, err
		}
		return h.run(sc.Ops, writePct)
	}
	cl, err := newAsymCluster(512 << 20)
	if err != nil {
		return 0, err
	}
	defer cl.Stop()
	mode := cfg.mode
	if cfg.cachePct > 0 {
		mode.CacheBytes = cacheBytesFor(name, sc.Seed, cfg.cachePct)
	}
	_, conns, err := cl.NewFrontend(1, mode)
	if err != nil {
		return 0, err
	}
	h, err := buildKV(conns[0], name, sc, opts)
	if err != nil {
		return 0, err
	}
	return h.run(sc.Ops, writePct)
}

func benchCreateOpts() core.CreateOptions {
	return core.CreateOptions{MemLogSize: 32 << 20, OpLogSize: 8 << 20}
}

// supportsConfig reports whether Table 3 has a number for the cell (its
// footnote: O(1) structures gain nothing from batching; queue/stack
// combine batch+cache so the cache-only column is empty).
func supportsConfig(name, series string) bool {
	switch series {
	case "Symmetric-B", "AsymNVM-RCB":
		if name == "HashTable" || name == "TX(SmallBank)" {
			return false
		}
	case "AsymNVM-RC":
		if name == "Queue" || name == "Stack" {
			return false
		}
	}
	return true
}

// FormatRows renders rows grouped by experiment as aligned text tables.
func FormatRows(rows []Row) string {
	var b strings.Builder
	byExp := map[string][]Row{}
	var order []string
	for _, r := range rows {
		if _, ok := byExp[r.Experiment]; !ok {
			order = append(order, r.Experiment)
		}
		byExp[r.Experiment] = append(byExp[r.Experiment], r)
	}
	for _, exp := range order {
		fmt.Fprintf(&b, "== %s ==\n", exp)
		rs := byExp[exp]
		sort.SliceStable(rs, func(i, j int) bool {
			if rs[i].Series != rs[j].Series {
				return rs[i].Series < rs[j].Series
			}
			return rs[i].X < rs[j].X
		})
		for _, r := range rs {
			fmt.Fprintf(&b, "%-16s %-14s x=%-8.5g %10.1f KOPS", r.Series, r.Label, r.X, r.KOPS)
			if len(r.Extra) > 0 {
				keys := make([]string, 0, len(r.Extra))
				for k := range r.Extra {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					fmt.Fprintf(&b, "  %s=%.4g", k, r.Extra[k])
				}
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
