package bench

import (
	"testing"

	"asymnvm/internal/core"
	"asymnvm/internal/stats"
	"asymnvm/internal/workload"
)

func TestCacheMatrix(t *testing.T) {
	for _, theta := range []float64{0.7, 0.9, 0.99} {
		for _, keys := range []uint64{160000, 500000} {
			for _, cap := range []int64{1 << 20, 256 << 10} {
				res := map[string]float64{}
				for _, pol := range []struct {
					name string
					p    core.Policy
				}{{"H", core.PolicyHybrid}, {"L", core.PolicyLRU}, {"R", core.PolicyRR}} {
					st := &stats.Stats{}
					c := core.NewCache(cap, pol.p, st)
					gen := workload.New(workload.Config{Seed: 21, Keys: keys, WritePct: 0, Theta: theta, Scramble: true})
					e := make([]byte, 64)
					for i := 0; i < 120000; i++ {
						k := gen.Next().Key
						if _, ok := c.Get(k, core.EpochAlways, true); !ok {
							c.Put(k, e, 0, core.EpochAlways)
						}
					}
					s := st.Snapshot()
					res[pol.name] = float64(s.CacheMiss) / float64(s.CacheMiss+s.CacheHit) * 100
				}
				t.Logf("theta=%.2f keys=%d cap=%d: H=%.1f L=%.1f R=%.1f", theta, keys, cap, res["H"], res["L"], res["R"])
			}
		}
	}
}
