package bench

import (
	"sort"

	"asymnvm/internal/core"
	"asymnvm/internal/ds"
	"asymnvm/internal/workload"
)

// AblationCachePolicy isolates the §8.3 tree-caching hint: the same
// binary-search-tree workload (deep paths, so upper levels matter) with
// the adaptive level-threshold policy versus native LRU over all nodes.
// The cache is deliberately small (2% of the footprint) — the regime the
// paper's Figure 7 discussion targets, where it reports the LRU variant
// 38% slower.
func AblationCachePolicy(sc Scale) ([]Row, error) {
	var rows []Row
	for _, flat := range []bool{false, true} {
		cl, err := newAsymCluster(512 << 20)
		if err != nil {
			return nil, err
		}
		mode := core.ModeRC(cacheBytesFor("BST", sc.Seed, 2))
		_, conns, err := cl.NewFrontend(1, mode)
		if err != nil {
			cl.Stop()
			return nil, err
		}
		opts := ds.Options{Create: benchCreateOpts(), FlatCache: flat}
		h, err := buildKV(conns[0], "BST", sc, opts)
		if err != nil {
			cl.Stop()
			return nil, err
		}
		kops, err := h.run(sc.Ops, 100)
		cl.Stop()
		if err != nil {
			return nil, err
		}
		series := "level-hinted"
		if flat {
			series = "native-LRU"
		}
		rows = append(rows, Row{Experiment: "ablation-cache", Series: series, KOPS: kops})
	}
	return rows, nil
}

// AblationVectorWrite isolates Algorithm 3: inserting sorted key batches
// through VectorPut (one shared descent per batch) versus the same keys
// as individual puts under the same batching mode.
func AblationVectorWrite(sc Scale) ([]Row, error) {
	var rows []Row
	for _, vector := range []bool{false, true} {
		cl, err := newAsymCluster(512 << 20)
		if err != nil {
			return nil, err
		}
		mode := core.ModeRCB(cacheBytesFor("BST", sc.Seed, 10), 128)
		fe, conns, err := cl.NewFrontend(1, mode)
		if err != nil {
			cl.Stop()
			return nil, err
		}
		bt, err := ds.CreateBST(conns[0], "vecabl", ds.Options{Create: benchCreateOpts()})
		if err != nil {
			cl.Stop()
			return nil, err
		}
		if err := seedKV(bt, sc); err != nil {
			cl.Stop()
			return nil, err
		}
		gen := workload.New(workload.Config{Seed: 31, Keys: uint64(sc.Keys), WritePct: 100, ValueLen: 64})
		start := fe.Clock().Now()
		const vbatch = 128
		done := 0
		for done < sc.Ops {
			n := vbatch
			if sc.Ops-done < n {
				n = sc.Ops - done
			}
			keys := make([]uint64, 0, n)
			vals := make([][]byte, 0, n)
			seen := map[uint64]bool{}
			for len(keys) < n {
				k := gen.Next().Key
				if seen[k] {
					continue
				}
				seen[k] = true
				keys = append(keys, k)
				vals = append(vals, workload.Value(k, 64))
			}
			if vector {
				if err := bt.VectorPut(keys, vals); err != nil {
					cl.Stop()
					return nil, err
				}
			} else {
				order := make([]int, n)
				for i := range order {
					order[i] = i
				}
				sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
				for _, i := range order {
					if err := bt.Put(keys[i], vals[i]); err != nil {
						cl.Stop()
						return nil, err
					}
				}
			}
			done += n
		}
		if err := bt.Flush(); err != nil {
			cl.Stop()
			return nil, err
		}
		kops := kopsOf(sc.Ops, fe.Clock().Now()-start)
		cl.Stop()
		series := "scalar puts"
		if vector {
			series = "vector write"
		}
		rows = append(rows, Row{Experiment: "ablation-vector", Series: series, KOPS: kops})
	}
	return rows, nil
}
