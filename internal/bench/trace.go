package bench

import (
	"strings"

	"asymnvm/internal/cluster"
	"asymnvm/internal/core"
	"asymnvm/internal/ds"
	"asymnvm/internal/trace"
	"asymnvm/internal/txapp"
)

// TraceResult bundles the artifacts of one traced benchmark run. The
// cluster is already stopped when TraceSmallBank returns; the tracer and
// front-end stats stay readable.
type TraceResult struct {
	Tracer   *trace.Tracer
	Frontend *core.Frontend
	Ops      int
}

// FrontendActors keeps only front-end trace actors ("feNNN"). Front-end
// span streams are deterministic per seed; back-end replayer spans group
// work by kick and so depend on goroutine scheduling. Golden-trace
// digests restrict the export with this filter.
func FrontendActors(name string) bool { return strings.HasPrefix(name, "fe") }

// TraceSmallBank runs sc.Ops SmallBank transactions against a fresh
// one-back-end cluster in RCB mode with a posted-verb pipeline, recording
// a full span trace. The run is deterministic per (sc, seed, pipeline)
// on the front-end actor: a single front-end, a write-only workload (no
// deletes, so no host-clock-aged GC traffic), and one Drain at the end.
func TraceSmallBank(sc Scale, seed uint64, pipeline int) (*TraceResult, error) {
	tr := trace.New()
	cfg := cluster.DefaultConfig()
	cfg.Tracer = tr
	cl, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	defer cl.Stop()
	mode := core.ModeRCB(cacheBytesFor("TX(SmallBank)", sc.Accounts, 10), 64).WithPipeline(pipeline)
	fe, conns, err := cl.NewFrontend(1, mode)
	if err != nil {
		return nil, err
	}
	bank, err := txapp.NewSmallBank(conns[0], "smallbank-trace", uint64(sc.Accounts),
		ds.Options{Create: benchCreateOpts(), Buckets: 1 << 12})
	if err != nil {
		return nil, err
	}
	r := seed | 1
	for i := 0; i < sc.Ops; i++ {
		r ^= r << 13
		r ^= r >> 7
		r ^= r << 17
		if err := bank.DoTx(r); err != nil {
			return nil, err
		}
	}
	if err := bank.Table().Drain(); err != nil {
		return nil, err
	}
	return &TraceResult{Tracer: tr, Frontend: fe, Ops: sc.Ops}, nil
}
