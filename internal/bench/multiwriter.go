package bench

import (
	"fmt"
	"sync"
	"time"

	"asymnvm/internal/cluster"
	"asymnvm/internal/core"
	"asymnvm/internal/ds"
	"asymnvm/internal/fault"
	"asymnvm/internal/workload"
)

// MultiWriterSweep prices the beyond-SWMR write paths as a fig8
// extension: instead of one writer against N readers, a writers×readers
// matrix over the three concurrency mechanisms.
//
//   - "striped": W front-ends write ONE striped hash table through
//     per-stripe shared writer locks. Writers own disjoint stripe sets,
//     so aggregate throughput should scale with W (the pinned gate:
//     4 writers ≥ 2.5× one writer at equal readers) while
//     StripeConflicts stays zero — contention is per stripe, not per
//     structure.
//   - "mvcas": four lock-free MV writers publish versions of one MV-BST
//     by root CAS. A deterministic turn token serializes most rounds and
//     deliberately races one writer pair every fourth round, so the
//     abort (lost-CAS re-execution) rate is bounded by construction —
//     the gate pins it under 20%.
//   - "mirror": reads served from an NVM mirror replica under a
//     staleness budget. The primary keeps writing in batches without
//     kicking the replica's replayer, so the mirror's epoch lag ramps
//     deterministically; the driver syncs only when the next batch would
//     overrun the budget. max_served_lag must stay within budget.
//
// All cells run on the virtual clock: writer/aggregate KOPS are sums of
// per-front-end rates measured on each front-end's own clock (the fig9
// convention), so reruns are comparable under benchcmp.
func MultiWriterSweep(sc Scale) ([]Row, error) {
	var rows []Row
	for _, w := range []int{1, 2, 4} {
		for _, r := range []int{0, 2} {
			row, err := measureStripedCell(w, r, sc)
			if err != nil {
				return nil, fmt.Errorf("multiwriter striped w=%d r=%d: %w", w, r, err)
			}
			rows = append(rows, row)
		}
	}
	row, err := measureMVCASCell(sc)
	if err != nil {
		return nil, fmt.Errorf("multiwriter mvcas: %w", err)
	}
	rows = append(rows, row)
	row, err = measureMirrorCell(sc)
	if err != nil {
		return nil, fmt.Errorf("multiwriter mirror: %w", err)
	}
	rows = append(rows, row)
	return rows, nil
}

const mwStripes = 8

// mwCreateOpts sizes per-stripe logs: eight stripes must fit the device
// alongside their data.
func mwCreateOpts() core.CreateOptions {
	return core.CreateOptions{MemLogSize: 4 << 20, OpLogSize: 1 << 20}
}

// stripedWriterKeys deals keys to writers so each writer only ever
// touches its own stripes (stripe i belongs to writer i mod W): the
// scaling cell measures the mechanism's fixed costs, not artificial
// key collisions.
func stripedWriterKeys(s *ds.Striped, writers, perWriter int) [][]uint64 {
	pools := make([][]uint64, writers)
	filled := 0
	for k := uint64(1); filled < writers; k++ {
		w := s.StripeIndex(k) % writers
		if len(pools[w]) < perWriter {
			pools[w] = append(pools[w], k)
			if len(pools[w]) == perWriter {
				filled++
			}
		}
	}
	return pools
}

// measureStripedCell runs W writer front-ends (stripe-disjoint keys)
// and R reader front-ends against one striped hash table. KOPS is the
// aggregate writer rate; reader throughput and stripe-lock conflicts
// ride in Extra.
func measureStripedCell(writers, readers int, sc Scale) (Row, error) {
	cl, err := newAsymCluster(256 << 20)
	if err != nil {
		return Row{}, err
	}
	defer cl.Stop()
	opts := ds.Options{Create: mwCreateOpts(), Buckets: 1 << 10}
	wfes := make([]*core.Frontend, writers)
	wkvs := make([]*ds.Striped, writers)
	fe0, conns, err := cl.NewFrontend(1, core.ModeR())
	if err != nil {
		return Row{}, err
	}
	s, err := ds.CreateStriped(conns[0], ds.KindHashTable, "mw", mwStripes, opts)
	if err != nil {
		return Row{}, err
	}
	for k := 1; k <= sc.Seed; k++ {
		if err := s.Put(uint64(k), workload.Value(uint64(k), 64)); err != nil {
			return Row{}, err
		}
	}
	wfes[0], wkvs[0] = fe0, s
	for w := 1; w < writers; w++ {
		fe, cs, err := cl.NewFrontend(uint16(1+w), core.ModeR())
		if err != nil {
			return Row{}, err
		}
		kv, err := ds.OpenStriped(cs[0], "mw", true, opts)
		if err != nil {
			return Row{}, err
		}
		wfes[w], wkvs[w] = fe, kv
	}
	pools := stripedWriterKeys(s, writers, sc.Ops/writers)

	type res struct {
		kops      float64
		conflicts int64
		err       error
	}
	stop := make(chan struct{})
	rres := make([]res, readers)
	var rwg sync.WaitGroup
	for i := 0; i < readers; i++ {
		i := i
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			fe, cs, err := cl.NewFrontend(uint16(10+i), core.ModeR())
			if err != nil {
				rres[i].err = err
				return
			}
			kv, err := ds.OpenStriped(cs[0], "mw", false, opts)
			if err != nil {
				rres[i].err = err
				return
			}
			gen := workload.New(workload.Config{Seed: int64(i), Keys: uint64(sc.Seed), WritePct: 0, ValueLen: 64})
			start := fe.Clock().Now()
			n := 0
			for {
				select {
				case <-stop:
					rres[i].kops = kopsOf(n, fe.Clock().Now()-start)
					return
				default:
				}
				if _, _, err := kv.Get(1 + gen.Next().Key%uint64(sc.Seed)); err != nil {
					rres[i].err = err
					return
				}
				n++
			}
		}()
	}

	wres := make([]res, writers)
	var wwg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			st := wfes[w].Stats()
			before := st.Snapshot()
			start := wfes[w].Clock().Now()
			for i, k := range pools[w] {
				if err := wkvs[w].Put(k, workload.Value(uint64(i), 64)); err != nil {
					wres[w].err = err
					return
				}
			}
			wres[w].kops = kopsOf(len(pools[w]), wfes[w].Clock().Now()-start)
			wres[w].conflicts = st.Snapshot().Sub(before).StripeConflicts
		}()
	}
	wwg.Wait()
	close(stop)
	rwg.Wait()
	var wAgg, rAgg float64
	var conflicts int64
	for _, r := range wres {
		if r.err != nil {
			return Row{}, r.err
		}
		wAgg += r.kops
		conflicts += r.conflicts
	}
	for _, r := range rres {
		if r.err != nil {
			return Row{}, r.err
		}
		rAgg += r.kops
	}
	return Row{
		Experiment: "multiwriter", Series: "striped",
		Label: fmt.Sprintf("w=%d,r=%d", writers, readers), X: float64(writers),
		KOPS: wAgg,
		Extra: map[string]float64{
			"writers": float64(writers), "readers": float64(readers),
			"stripe_conflicts": float64(conflicts), "reader_kops": rAgg,
		},
	}, nil
}

// measureMVCASCell drives four lock-free MV writers through a shared
// MV-BST. Rounds are mostly token-serialized; every fourth round one
// rotating writer pair races deliberately, so CAS aborts occur but the
// rate is bounded by the schedule (at most one retry per race, one race
// per four rounds of four puts).
func measureMVCASCell(sc Scale) (Row, error) {
	cl, err := newAsymCluster(256 << 20)
	if err != nil {
		return Row{}, err
	}
	defer cl.Stop()
	opts := ds.Options{Create: mwCreateOpts()}
	_, conns, err := cl.NewFrontend(1, core.ModeRC(1<<20))
	if err != nil {
		return Row{}, err
	}
	seed, err := ds.CreateMVBST(conns[0], "mwmv", opts)
	if err != nil {
		return Row{}, err
	}
	if err := seed.Put(1<<40, workload.Value(1, 64)); err != nil { // non-empty root
		return Row{}, err
	}
	if err := seed.Close(); err != nil {
		return Row{}, err
	}
	const writers = 4
	fes := make([]*core.Frontend, writers)
	ms := make([]*ds.MVMulti, writers)
	for w := 0; w < writers; w++ {
		fe, cs, err := cl.NewFrontend(uint16(2+w), core.ModeRC(1<<20))
		if err != nil {
			return Row{}, err
		}
		m, err := ds.OpenMVMulti(cs[0], ds.KindMVBST, "mwmv", opts)
		if err != nil {
			return Row{}, err
		}
		fes[w], ms[w] = fe, m
	}

	rounds := sc.Ops / writers
	beforeRetries := make([]int64, writers)
	starts := make([]time.Duration, writers)
	for w := 0; w < writers; w++ {
		beforeRetries[w] = fes[w].Stats().Snapshot().CASRetries
		starts[w] = fes[w].Clock().Now()
	}
	put := func(w, r int) error {
		k := uint64(w)<<32 | uint64(r)
		return ms[w].Put(k, workload.Value(k, 64))
	}
	for r := 0; r < rounds; r++ {
		if r%4 == 3 {
			// Race a rotating pair: both writers path-copy from the same
			// root snapshot; the CAS loser re-executes.
			a := (r / 4) % writers
			b := (a + 1) % writers
			var wg sync.WaitGroup
			errs := make([]error, 2)
			for i, w := range []int{a, b} {
				i, w := i, w
				wg.Add(1)
				go func() {
					defer wg.Done()
					errs[i] = put(w, r)
				}()
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return Row{}, err
				}
			}
			for w := 0; w < writers; w++ {
				if w == a || w == b {
					continue
				}
				if err := put(w, r); err != nil {
					return Row{}, err
				}
			}
		} else {
			for w := 0; w < writers; w++ {
				if err := put(w, r); err != nil {
					return Row{}, err
				}
			}
		}
	}
	var kops float64
	var retries int64
	for w := 0; w < writers; w++ {
		kops += kopsOf(rounds, fes[w].Clock().Now()-starts[w])
		retries += fes[w].Stats().Snapshot().CASRetries - beforeRetries[w]
	}
	puts := rounds * writers
	return Row{
		Experiment: "multiwriter", Series: "mvcas",
		Label: fmt.Sprintf("w=%d", writers), X: float64(writers),
		KOPS: kops,
		Extra: map[string]float64{
			"writers": float64(writers), "puts": float64(puts),
			"cas_retries": float64(retries),
			"abort_rate":  float64(retries) / float64(puts),
		},
	}, nil
}

// measureMirrorCell measures stale-bounded mirror-served reads. A
// fault-plane lag queue holds replication traffic (without it the
// primary forwards raw ranges synchronously and the mirror is always
// byte-current), so the mirror's epoch lag climbs a deterministic ramp
// as the primary writes in batches; the driver syncs only when the
// budget would be exceeded and reads each batch from the mirror,
// recording the worst staleness actually served.
func measureMirrorCell(sc Scale) (Row, error) {
	cfg := cluster.DefaultConfig()
	cfg.MirrorsPerBack = 1
	cfg.DeviceBytes = 128 << 20
	cfg.Tracer = liveTracer
	cl, err := cluster.New(cfg)
	if err != nil {
		return Row{}, err
	}
	defer cl.Stop()
	plane := fault.NewPlane(1)
	plane.SetMirrorLag(1 << 20)
	cl.AttachFaultPlane(plane)
	_, conns, err := cl.NewFrontend(1, core.ModeR().WithPipeline(8))
	if err != nil {
		return Row{}, err
	}
	kv, err := ds.CreateHashTable(conns[0], "mwkv", ds.Options{Create: mwCreateOpts(), Buckets: 1 << 10})
	if err != nil {
		return Row{}, err
	}
	for k := 1; k <= sc.Seed; k++ {
		if err := kv.Put(uint64(k), workload.Value(uint64(k), 64)); err != nil {
			return Row{}, err
		}
	}
	if err := kv.Flush(); err != nil {
		return Row{}, err
	}
	if err := kv.Handle().Drain(); err != nil {
		return Row{}, err
	}
	cl.SyncMirrors(0)
	mfe, mconn, err := cl.NewMirrorFrontend(9, 0, 0, core.ModeR())
	if err != nil {
		return Row{}, err
	}
	mkv, err := ds.OpenHashTable(mconn, "mwkv", false, ds.Options{Create: mwCreateOpts(), Buckets: 1 << 10})
	if err != nil {
		return Row{}, err
	}

	const budget = 64
	const batches = 8
	const writesPerBatch = 24 // 24 applied txs = 24 epochs of lag per unsynced batch
	readsPerBatch := sc.Ops / batches
	slot := kv.Handle().Slot()
	gen := workload.New(workload.Config{Seed: 3, Keys: uint64(sc.Seed), WritePct: 0, ValueLen: 64})
	var maxServed, syncs float64
	total := 0
	start := mfe.Clock().Now()
	for b := 0; b < batches; b++ {
		for i := 0; i < writesPerBatch; i++ {
			k := uint64(sc.Seed + b*writesPerBatch + i + 1)
			if err := kv.Put(k, workload.Value(k, 64)); err != nil {
				return Row{}, err
			}
		}
		if err := kv.Flush(); err != nil {
			return Row{}, err
		}
		if err := kv.Handle().Drain(); err != nil {
			return Row{}, err
		}
		lag, err := cluster.MirrorStaleness(conns[0], mconn, slot)
		if err != nil {
			return Row{}, err
		}
		if lag > budget {
			cl.SyncMirrors(0)
			syncs++
			if lag, err = cluster.MirrorStaleness(conns[0], mconn, slot); err != nil {
				return Row{}, err
			}
		}
		if float64(lag) > maxServed {
			maxServed = float64(lag)
		}
		for i := 0; i < readsPerBatch; i++ {
			if _, _, err := mkv.Get(1 + gen.Next().Key%uint64(sc.Seed)); err != nil {
				return Row{}, err
			}
			total++
		}
	}
	kops := kopsOf(total, mfe.Clock().Now()-start)
	return Row{
		Experiment: "multiwriter", Series: "mirror",
		Label: "stale-bounded", X: 1,
		KOPS: kops,
		Extra: map[string]float64{
			"budget": budget, "max_served_lag": maxServed,
			"syncs": syncs, "reads": float64(total),
		},
	}, nil
}
