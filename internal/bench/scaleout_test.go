package bench

import (
	"testing"

	"asymnvm/internal/core"
)

// TestScaleoutSpeedup guards the tentpole's headline number: with the
// full RCB ladder, 8 partitions across 8 back-ends must reach at least
// 3x the throughput of the single-partition, single-back-end cell on the
// same workload, and the fan-out counters must show the cross-connection
// overlap actually engaged.
func TestScaleoutSpeedup(t *testing.T) {
	sc := Scale{Seed: 800, Ops: 600, Keys: 6000}
	mode := core.ModeRCB(cacheBytesFor("HashTable", sc.Seed, 10), 64).WithPipeline(16)
	base, err := measureScaleoutCell("RCB", mode, sc, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := measureScaleoutCell("RCB", mode, sc, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if wide.KOPS < 3*base.KOPS {
		t.Fatalf("8x8 = %.1f KOPS, 1x1 = %.1f KOPS: want >= 3x", wide.KOPS, base.KOPS)
	}
	if wide.Extra["fanout_windows"] == 0 || wide.Extra["fanout_saved_ns"] == 0 {
		t.Fatalf("8x8 cell never overlapped across connections: %+v", wide.Extra)
	}
	// One back-end means nothing to overlap across: the single-partition
	// cell must not book fan-out savings.
	if base.Extra["fanout_saved_ns"] != 0 {
		t.Fatalf("1x1 cell booked cross-connection savings: %+v", base.Extra)
	}
}

// TestScaleoutBackendScaling checks the monotone middle of the curve:
// with partitions fixed at 8, spreading them over more back-ends must
// not lose throughput (the paper's Fig. 13 shape).
func TestScaleoutBackendScaling(t *testing.T) {
	sc := Scale{Seed: 600, Ops: 500, Keys: 6000}
	mode := core.ModeRCB(cacheBytesFor("HashTable", sc.Seed, 10), 64).WithPipeline(16)
	prev := 0.0
	for _, backs := range []int{1, 4} {
		row, err := measureScaleoutCell("RCB", mode, sc, 8, backs)
		if err != nil {
			t.Fatal(err)
		}
		if row.KOPS < prev {
			t.Fatalf("throughput fell from %.1f to %.1f KOPS going to %d back-ends", prev, row.KOPS, backs)
		}
		prev = row.KOPS
	}
}

// TestAutoTuneNearBestStatic pins the controller's convergence claim:
// on the PR 2 pipeline-sweep workload and seed, Mode.AutoTune must end
// within 10% of the best static (B, depth) cell, despite starting from
// the stop-and-wait (1,1) corner.
func TestAutoTuneNearBestStatic(t *testing.T) {
	sc := Scale{Seed: 600, Ops: 3000, Keys: 6000}
	cacheB := cacheBytesFor("HashTable", sc.Seed, 10)
	best := 0.0
	for _, d := range []int{1, 4, 16} {
		row, err := measurePipelineCell("RCB", core.ModeRCB(cacheB, 64).WithPipeline(d), sc, d)
		if err != nil {
			t.Fatal(err)
		}
		if row.KOPS > best {
			best = row.KOPS
		}
	}
	auto, err := measurePipelineCell("RCB-auto", core.ModeRCB(cacheB, 64).WithPipeline(16).WithAutoTune(), sc, 16)
	if err != nil {
		t.Fatal(err)
	}
	if auto.KOPS < 0.9*best {
		t.Fatalf("autotune = %.1f KOPS, best static = %.1f KOPS: want within 10%%", auto.KOPS, best)
	}
}
