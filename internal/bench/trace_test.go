package bench

import (
	"bytes"
	"testing"

	"asymnvm/internal/trace"
)

// traceScale keeps the golden runs fast while still exercising cache
// misses, batched commits and the posted-verb pipeline.
func traceScale() Scale {
	sc := QuickScale()
	sc.Ops = 150
	sc.Accounts = 40
	return sc
}

// goldenSmallBankDigest pins the front-end trace of
// TraceSmallBank(traceScale(), seed=7, pipeline=16). It must only change
// when the virtual-time cost model, the workload, or the traced span set
// deliberately changes — anything else is a determinism regression.
// Last deliberate change: the aux block grew to hold truncation points
// and checkpoint slots (AuxUser 64 → 256), so structure create/open
// moves more bytes.
const goldenSmallBankDigest = "e4ccee8049fa64974c81b75d8b06ddc7173cf7afe8d5eb27bdb76efd618f32c5"

func traceRun(t *testing.T) *TraceResult {
	t.Helper()
	res, err := TraceSmallBank(traceScale(), 7, 16)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// feActor returns the run's single front-end actor tracer.
func feActor(t *testing.T, res *TraceResult) *trace.ActorTracer {
	t.Helper()
	for _, a := range res.Tracer.Actors() {
		if FrontendActors(a.Name()) {
			return a
		}
	}
	t.Fatal("no front-end actor in trace")
	return nil
}

// TestGoldenTraceDeterminism runs the same seeded workload twice and
// requires byte-identical front-end trace exports.
func TestGoldenTraceDeterminism(t *testing.T) {
	a := traceRun(t)
	b := traceRun(t)
	ja := a.Tracer.ChromeJSONFor(FrontendActors)
	jb := b.Tracer.ChromeJSONFor(FrontendActors)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("same seed produced different front-end traces (%d vs %d bytes)", len(ja), len(jb))
	}
}

// TestGoldenTraceDigestPinned compares against the checked-in digest, so
// a determinism break shows up even when both runs of one process drift
// together (e.g. map-iteration order leaking into the span sequence).
func TestGoldenTraceDigestPinned(t *testing.T) {
	res := traceRun(t)
	if got := res.Tracer.DigestFor(FrontendActors); got != goldenSmallBankDigest {
		t.Fatalf("front-end trace digest drifted:\n got  %s\n want %s", got, goldenSmallBankDigest)
	}
}

// TestTraceReconciliation checks the trace against the books: per-kind
// self times must sum to the front-end's virtual elapsed time, the
// per-phase histogram ledger must do the same, and the overlap the trace
// says the pipeline hid must match the stats counter — all within 1%.
func TestTraceReconciliation(t *testing.T) {
	res := traceRun(t)
	a := feActor(t, res)
	elapsed := a.Elapsed()
	if elapsed <= 0 {
		t.Fatal("front-end actor recorded no elapsed time")
	}
	within1pct := func(what string, got, want int64) {
		t.Helper()
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		if diff*100 > want {
			t.Errorf("%s: got %d, want %d (off by %d, >1%%)", what, got, want, diff)
		}
	}

	var kindSum int64
	for _, ns := range a.SelfNS() {
		kindSum += ns
	}
	within1pct("sum of per-kind self times vs elapsed", kindSum, elapsed)

	var phaseSum int64
	for _, ps := range res.Frontend.Stats().PhaseSnapshots() {
		phaseSum += ps.SelfNS
	}
	within1pct("sum of per-phase self times vs elapsed", phaseSum, elapsed)

	st := res.Frontend.Stats().Snapshot()
	if traced := a.OverlapNS(); traced != st.OverlapSavedNS {
		t.Errorf("traced overlap %dns != stats OverlapSavedNS %dns", traced, st.OverlapSavedNS)
	}
}
