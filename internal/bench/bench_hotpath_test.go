package bench

import "testing"

// `make bench-cpu` runs these with -benchtime=100x: a fast wall-clock
// smoke over the zero-alloc hot paths. The same bodies power
// HotpathSweep (the BENCH_hotpath.json generator), so a number that
// looks wrong here can be reproduced exactly with
// `go test -bench Hotpath -benchtime=... ./internal/bench/`.

func BenchmarkHotpathSPSCPushPop(b *testing.B)  { b.ReportAllocs(); hotSPSCPushPop(b) }
func BenchmarkHotpathChanPushPop(b *testing.B)  { b.ReportAllocs(); hotChanPushPop(b) }
func BenchmarkHotpathSPSCRing(b *testing.B)     { b.ReportAllocs(); hotSPSCHandoff(b) }
func BenchmarkHotpathChanHandoff(b *testing.B)  { b.ReportAllocs(); hotChanHandoff(b) }
func BenchmarkHotpathMPSCRing(b *testing.B)     { b.ReportAllocs(); hotMPSCHandoff(b) }
func BenchmarkHotpathChanMPSC(b *testing.B)     { b.ReportAllocs(); hotChanMPSCHandoff(b) }
func BenchmarkHotpathDoorbell(b *testing.B)     { b.ReportAllocs(); hotDoorbell(b) }
func BenchmarkHotpathTxRoundTrip(b *testing.B)  { b.ReportAllocs(); hotTxRoundTrip(b) }
func BenchmarkHotpathOpRoundTrip(b *testing.B)  { b.ReportAllocs(); hotOpRoundTrip(b) }
func BenchmarkHotpathProtoRequest(b *testing.B) { b.ReportAllocs(); hotProtoRequest(b) }
func BenchmarkHotpathProtoResponse(b *testing.B) {
	b.ReportAllocs()
	hotProtoResponse(b)
}

// TestHotpathSweep pins the in-driver acceptance gate (SPSC ring ≥ 2x
// channel handoff on multi-core hosts) and the row schema the checked-in
// BENCH_hotpath.json relies on.
func TestHotpathSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock sweep; skipped in -short")
	}
	if raceEnabled {
		t.Skip("wall-clock sweep; ratios measure the race detector, not the queues")
	}
	rows, err := HotpathSweep()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"spsc-ring|pushpop": false, "channel|pushpop": false,
		"spsc-ring|handoff": false, "channel|handoff": false,
		"mpsc-ring|handoff-4p": false, "channel|handoff-4p": false,
		"doorbell|ring+poll": false,
		"logrec|tx-roundtrip": false, "logrec|op-roundtrip": false,
		"proto|request": false, "proto|response": false,
		"spsc-vs-channel|speedup": false,
	}
	for _, r := range rows {
		if r.Experiment != "hotpath" {
			t.Fatalf("unexpected experiment %q", r.Experiment)
		}
		want[r.Series+"|"+r.Label] = true
	}
	for k, seen := range want {
		if !seen {
			t.Fatalf("sweep lost row %q", k)
		}
	}
}
