package bench

import (
	"testing"

	"asymnvm/internal/core"
)

// tiny keeps unit-test runs fast; the shape assertions here are the
// regression guard for the paper's qualitative claims.
func tiny() Scale {
	return Scale{Seed: 800, Ops: 300, Keys: 4000, TATPSubs: 120, Accounts: 120}
}

func kopsBy(rows []Row, series, label string) float64 {
	for _, r := range rows {
		if r.Series == series && (label == "" || r.Label == label) {
			return r.KOPS
		}
	}
	return -1
}

func TestTable2Shapes(t *testing.T) {
	rows, err := Table2(400)
	if err != nil {
		t.Fatal(err)
	}
	get := func(series string) float64 {
		for _, r := range rows {
			if r.Series == series {
				return r.Extra["alloc_MOPS"]
			}
		}
		return -1
	}
	glibc, pmem, rpc := get("Glibc"), get("Pmem"), get("RPC allocator")
	tt128, tt1024 := get("Two-tier (slab 128B)"), get("Two-tier (slab 1024B)")
	t.Logf("glibc=%.2f pmem=%.2f rpc=%.2f tt128=%.2f tt1024=%.2f", glibc, pmem, rpc, tt128, tt1024)
	if !(glibc > pmem && pmem > rpc) {
		t.Fatalf("allocator ordering broken: glibc=%.2f pmem=%.2f rpc=%.2f", glibc, pmem, rpc)
	}
	if !(tt1024 > tt128 && tt128 > rpc) {
		t.Fatalf("two-tier must beat raw RPC and grow with slab size: %.2f %.2f %.2f", tt128, tt1024, rpc)
	}
}

func TestTable3CellLadder(t *testing.T) {
	// The optimization ladder on one structure: naive < R ≤ RC ≤ RCB.
	sc := tiny()
	var got []float64
	for _, cfg := range table3Configs() {
		if cfg.symmetric || !supportsConfig("BST", cfg.series) {
			continue
		}
		kops, err := measureCell("BST", cfg, sc, 100)
		if err != nil {
			t.Fatalf("%s: %v", cfg.series, err)
		}
		t.Logf("BST %-14s %8.1f KOPS", cfg.series, kops)
		got = append(got, kops)
	}
	// got = [naive, R, RC, RCB]
	if !(got[3] > got[0]*2) {
		t.Fatalf("RCB should beat naive by a wide margin: naive=%.1f rcb=%.1f", got[0], got[3])
	}
	if !(got[2] > got[1]) {
		t.Fatalf("cache should beat plain R: r=%.1f rc=%.1f", got[1], got[2])
	}
}

func TestSymmetricCellRuns(t *testing.T) {
	sc := tiny()
	kops, err := measureCell("BST", configCell{series: "Symmetric", symmetric: true, mode: symMode(1)}, sc, 100)
	if err != nil {
		t.Fatal(err)
	}
	if kops <= 0 {
		t.Fatal("symmetric cell produced no throughput")
	}
	t.Logf("symmetric BST %.1f KOPS", kops)
}

func TestCacheBenchShapes(t *testing.T) {
	rows := CacheBench(60000)
	get := func(series string) float64 {
		for _, r := range rows {
			if r.Series == series {
				return r.Extra["missPct"]
			}
		}
		return -1
	}
	hyb, lru, rr := get("Hybrid"), get("LRU"), get("RR")
	t.Logf("miss%%: hybrid=%.1f lru=%.1f rr=%.1f", hyb, lru, rr)
	if !(hyb < rr) {
		t.Fatalf("hybrid must beat random replacement: %.1f vs %.1f", hyb, rr)
	}
	if hyb > lru+10 {
		t.Fatalf("hybrid should be close to LRU: %.1f vs %.1f", hyb, lru)
	}
}

func TestLockBenchShapes(t *testing.T) {
	rows, err := LockBench(600)
	if err != nil {
		t.Fatal(err)
	}
	w10 := kopsAt(rows, "writer", 10)
	r10 := kopsAt(rows, "reader(avg)", 10)
	t.Logf("10%% write: writer=%.1f reader=%.1f", w10, r10)
	if w10 <= 0 || r10 <= 0 {
		t.Fatal("lock bench produced no throughput")
	}
	// The write-preferred lock favours the writer.
	if w10 < r10 {
		t.Fatalf("writer should out-run a single reader: w=%.1f r=%.1f", w10, r10)
	}
}

func kopsAt(rows []Row, series string, x float64) float64 {
	for _, r := range rows {
		if r.Series == series && r.X == x {
			return r.KOPS
		}
	}
	return -1
}

func TestCostModel(t *testing.T) {
	rows := CostModel(100, nil)
	var sym, asym float64
	for _, r := range rows {
		if r.Series == "Symmetric" {
			sym = r.Extra["devices"]
		} else {
			asym = r.Extra["devices"]
		}
	}
	if !(asym < sym/2) {
		t.Fatalf("asymmetric should need far fewer devices: %v vs %v", asym, sym)
	}
}

func TestFormatRows(t *testing.T) {
	out := FormatRows([]Row{
		{Experiment: "x", Series: "a", Label: "l", X: 1, KOPS: 2, Extra: map[string]float64{"m": 3}},
		{Experiment: "x", Series: "b", KOPS: 4},
	})
	if out == "" || len(out) < 20 {
		t.Fatal("formatting produced nothing")
	}
}

func symMode(batch int) core.Mode { return core.Mode{OpLog: true, Batch: batch} }
