//go:build !race

package bench

// See race_on_test.go.
const raceEnabled = false
