package backend

import (
	"bytes"
	"runtime"
	"testing"
	"testing/quick"

	"asymnvm/internal/clock"
	"asymnvm/internal/logrec"
	"asymnvm/internal/nvm"
)

var zprof = clock.ZeroProfile()

func TestFormatAndReadLayout(t *testing.T) {
	dev := nvm.NewDevice(8 << 20)
	l, err := Format(dev, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadLayout(dev)
	if err != nil {
		t.Fatal(err)
	}
	if got != l {
		t.Fatalf("layout round trip mismatch:\n%+v\n%+v", got, l)
	}
	if l.DataBase%l.BlockSize != 0 {
		t.Fatal("data base must be block aligned")
	}
	if l.DataBase+l.DataSize > dev.Size() {
		t.Fatal("data area exceeds device")
	}
	if (l.NBlocks+7)/8 > l.BitmapBytes {
		t.Fatal("bitmap too small for block count")
	}
}

func TestFormatRejectsBadConfig(t *testing.T) {
	dev := nvm.NewDevice(1 << 20)
	if _, err := Format(dev, Config{BlockSize: 3000, RPCSlots: 4, NameEntries: 4}); err == nil {
		t.Fatal("non-power-of-two block size must fail")
	}
	if _, err := Format(nvm.NewDevice(1024), DefaultConfig()); err == nil {
		t.Fatal("tiny device must fail")
	}
}

func TestReadLayoutUnformatted(t *testing.T) {
	if _, err := ReadLayout(nvm.NewDevice(1 << 20)); err == nil {
		t.Fatal("unformatted device must not decode")
	}
}

func TestNameEntryRoundTrip(t *testing.T) {
	e := NameEntry{Used: true, Type: TypeBPTree, Name: "accounts",
		Root: 0x1234, Lock: 3, SN: 8, Aux: 0x9999, LockLog: 7}
	buf, err := EncodeNameEntry(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeNameEntry(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Fatalf("round trip mismatch: %+v != %+v", got, e)
	}
	if _, err := EncodeNameEntry(NameEntry{Name: "this-name-is-way-too-long-for-the-field"}); err == nil {
		t.Fatal("long name must fail")
	}
}

func TestGlobalAddrRoundTrip(t *testing.T) {
	f := func(node uint16, off uint64) bool {
		off &= 0xFFFFFFFFFFFF
		if node == 0xFFFF {
			node = 0 // +1 bias would overflow; the id space is 0..65534
		}
		a := GlobalAddr(node, off)
		if a == 0 {
			return false // never collides with nil
		}
		n2, o2 := SplitAddr(a)
		return n2 == node && o2 == off
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRPCCodecRoundTrip(t *testing.T) {
	req := RPCRequest{Seq: 9, Op: RPCMalloc, A1: 4096, A2: 0}
	wire := EncodeRPCRequest(req)
	got, ok := DecodeRPCRequest(wire)
	if !ok || got != req {
		t.Fatalf("request round trip: ok=%v %+v", ok, got)
	}
	wire[3] ^= 0xFF
	if _, ok := DecodeRPCRequest(wire); ok {
		t.Fatal("corrupt request must not decode")
	}
	resp := RPCResponse{Seq: 9, Status: RPCOK, Result: 0xABC}
	rw := EncodeRPCResponse(resp)
	gr, ok := DecodeRPCResponse(rw)
	if !ok || gr != resp {
		t.Fatalf("response round trip: ok=%v %+v", ok, gr)
	}
}

func TestBackendServesRPCDirectly(t *testing.T) {
	dev := nvm.NewDevice(8 << 20)
	b, err := New(dev, Options{ID: 3, Profile: &zprof})
	if err != nil {
		t.Fatal(err)
	}
	b.Start()
	defer b.Stop()
	// Write a malloc request into slot 0's cell by hand and kick.
	req := EncodeRPCRequest(RPCRequest{Seq: 1, Op: RPCMalloc, A1: 100})
	if err := dev.WritePersist(b.Layout().RPCReqOff(0), req); err != nil {
		t.Fatal(err)
	}
	b.Kick()
	deadline := 0
	for {
		cell := make([]byte, 64)
		_ = dev.ReadAt(b.Layout().RPCRespOff(0), cell)
		if resp, ok := DecodeRPCResponse(cell); ok && resp.Seq == 1 {
			if resp.Status != RPCOK {
				t.Fatalf("malloc failed: %+v", resp)
			}
			if AddrNode(resp.Result) != 3 {
				t.Fatalf("allocation carries wrong node id: %#x", resp.Result)
			}
			break
		}
		if deadline++; deadline > 1<<22 {
			t.Fatal("no RPC response")
		}
	}
}

func TestBackendRPCIgnoresStaleAndCorrupt(t *testing.T) {
	dev := nvm.NewDevice(8 << 20)
	b, err := New(dev, Options{ID: 0, Profile: &zprof})
	if err != nil {
		t.Fatal(err)
	}
	b.Start()
	// Corrupt request: never served.
	garbage := bytes.Repeat([]byte{0x77}, 64)
	_ = dev.WritePersist(b.Layout().RPCReqOff(1), garbage)
	b.Kick()
	b.Stop()
	cell := make([]byte, 64)
	_ = dev.ReadAt(b.Layout().RPCRespOff(1), cell)
	if _, ok := DecodeRPCResponse(cell); ok {
		t.Fatal("corrupt request must not produce a response")
	}
	if err := b.ReplicationError(); err != nil {
		t.Fatal(err)
	}
}

func TestReplayerAppliesHandWrittenLog(t *testing.T) {
	dev := nvm.NewDevice(8 << 20)
	b, err := New(dev, Options{ID: 0, Profile: &zprof})
	if err != nil {
		t.Fatal(err)
	}
	l := b.Layout()
	// Hand-build a structure: aux block + log areas inside the data area.
	aux := l.DataBase
	memBase := l.DataBase + 4096
	opBase := l.DataBase + 4096 + 65536
	target := l.DataBase + 4096 + 65536 + 65536
	auxImg := make([]byte, AuxSize)
	putLE := func(off int, v uint64) {
		for i := 0; i < 8; i++ {
			auxImg[off+i] = byte(v >> (8 * i))
		}
	}
	putLE(AuxMemLogBaseOff, memBase)
	putLE(AuxMemLogSizeOff, 65536)
	putLE(AuxOpLogBaseOff, opBase)
	putLE(AuxOpLogSizeOff, 65536)
	_ = dev.WritePersist(aux, auxImg)
	entry, err := EncodeNameEntry(NameEntry{Used: true, Type: TypeBST, Name: "hand", Aux: GlobalAddr(0, aux)})
	if err != nil {
		t.Fatal(err)
	}
	_ = dev.WritePersist(l.NameEntryOff(0), entry)

	// One committed transaction writing 8 bytes at target.
	tx := logrec.TxRecord{DSSlot: 0, Abs: 0, Entries: []logrec.MemEntry{
		{Flag: logrec.FlagInline, Addr: GlobalAddr(0, target), Len: 8, Value: []byte("ABCDEFGH")},
	}}
	_ = dev.WritePersist(memBase, tx.Encode())

	b.Start()
	b.Kick()
	b.Stop()
	got := make([]byte, 8)
	_ = dev.ReadAt(target, got)
	if string(got) != "ABCDEFGH" {
		t.Fatalf("replayer did not apply the log: %q", got)
	}
	// The seqlock advanced by exactly two (one transaction).
	sn, _ := dev.Load64(l.SNOff(0))
	if sn != 2 {
		t.Fatalf("SN = %d, want 2", sn)
	}
	// And the LPN is persisted in the aux block.
	lpn, _ := dev.Load64(aux + AuxLPNOff)
	if lpn == 0 {
		t.Fatal("LPN not persisted after replay")
	}
}

func TestCallocZeroesReusedBlocks(t *testing.T) {
	dev := nvm.NewDevice(8 << 20)
	b, err := New(dev, Options{ID: 0, Profile: &zprof})
	if err != nil {
		t.Fatal(err)
	}
	// Dirty a block, free it, calloc it back: it must come back zeroed.
	addr, err := b.mallocBlocks(4096)
	if err != nil {
		t.Fatal(err)
	}
	off := AddrOff(addr)
	if err := dev.WritePersist(off, bytes.Repeat([]byte{0xFF}, 4096)); err != nil {
		t.Fatal(err)
	}
	if err := b.freeBlocks(addr, 4096); err != nil {
		t.Fatal(err)
	}
	resp := b.execRPC(RPCRequest{Seq: 1, Op: RPCCalloc, A1: 4096})
	if resp.Status != RPCOK {
		t.Fatalf("calloc failed: %+v", resp)
	}
	buf := make([]byte, 4096)
	_ = dev.ReadAt(AddrOff(resp.Result), buf)
	for i, v := range buf {
		if v != 0 {
			t.Fatalf("calloc left dirty byte at %d", i)
		}
	}
}

func TestRPCOutOfOrderIgnored(t *testing.T) {
	dev := nvm.NewDevice(8 << 20)
	b, err := New(dev, Options{ID: 0, Profile: &zprof})
	if err != nil {
		t.Fatal(err)
	}
	b.Start()
	defer b.Stop()
	// Seq 5 without 1..4 first: must not be served.
	req := EncodeRPCRequest(RPCRequest{Seq: 5, Op: RPCMalloc, A1: 64})
	_ = dev.WritePersist(b.Layout().RPCReqOff(2), req)
	b.Kick()
	// Give the service loop a chance, then check no response appeared.
	for i := 0; i < 1000; i++ {
		runtime.Gosched()
	}
	cell := make([]byte, 64)
	_ = dev.ReadAt(b.Layout().RPCRespOff(2), cell)
	if _, ok := DecodeRPCResponse(cell); ok {
		t.Fatal("out-of-order request must not be served")
	}
}
