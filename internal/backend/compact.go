package backend

import (
	"encoding/binary"

	"asymnvm/internal/alloc"
	"asymnvm/internal/logrec"
	"asymnvm/internal/trace"
)

// The checkpoint/compaction plane (PAPER.md §6: the memory log is
// temporary). With Options.Compact set, the back-end switches from the
// eager per-transaction persist to lazy application: replayed entries and
// cursor updates stay in the device's volatile window until a checkpoint
// drains them, writes a torn-write-safe checkpoint record, scrubs the dead
// log pages and advances the durable truncation points that front-end
// writers gate on. Backend.recover() then replays only checkpoint+suffix,
// which is what keeps restart time flat as the workload ages.

// CompactConfig enables and tunes the compaction plane.
type CompactConfig struct {
	// Interval is the number of applied memory-log bytes between periodic
	// checkpoints. Pressure checkpoints (either log ¾ full) and the final
	// drain checkpoint on Stop run regardless, so Interval == 0 means
	// "checkpoint only under pressure".
	Interval uint64
	// KeepPages skips the dead-page scrub, leaving reclaimed log bytes
	// readable. Tests use it to compare checkpoint+suffix recovery against
	// a full-log replay, which needs the full history intact.
	KeepPages bool
}

// CkptPhase identifies a step of the checkpoint procedure, for the
// crash-injection hook.
type CkptPhase uint8

const (
	// CkptPhaseWrite fires just before the checkpoint record is written.
	CkptPhaseWrite CkptPhase = iota
	// CkptPhaseReclaim fires just before dead log pages are scrubbed.
	CkptPhaseReclaim
)

// CkptEvent describes the checkpoint step about to execute.
type CkptEvent struct {
	Slot  uint16
	Seq   uint64
	Phase CkptPhase
}

// CkptAction is a CheckpointHook's verdict.
type CkptAction uint8

const (
	// CkptProceed lets the step run normally.
	CkptProceed CkptAction = iota
	// CkptCrash simulates a power failure inside the step: the step's
	// write is torn (a durable prefix only) and the plane stops issuing
	// checkpoints, leaving the device for the caller to Crash and recover.
	CkptCrash
)

// ckptTornLen is how many bytes of the checkpoint record a CkptCrash at
// CkptPhaseWrite leaves behind: enough to carry the magic (so recovery
// attempts a decode) but cut mid-payload, guaranteeing a CRC failure.
const ckptTornLen = 20

// lazy reports whether the compaction plane (lazy application) is active.
func (b *Backend) lazy() bool { return b.compact != nil }

// ckptSlotOff returns the aux-relative offset of the slot for sequence
// seq. Alternating slots make a torn checkpoint write recoverable: at
// worst the newest checkpoint is lost, never the previous one.
func ckptSlotOff(seq uint64) uint64 {
	if seq%2 == 0 {
		return auxCkptA
	}
	return auxCkptB
}

// writeLE64 is a volatile (pend-ordered) 8-byte little-endian write. Lazy
// cursor updates use it so a power failure reverts cursors together with —
// never ahead of — the applied entries they cover.
func (b *Backend) writeLE64(off, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	return b.dev.WriteAt(off, buf[:])
}

// maybeCheckpoint runs a checkpoint when the periodic interval elapsed or
// either log is under space pressure (¾ full). Called from the service
// loop after each structure's replay.
func (b *Backend) maybeCheckpoint(ds *dsReplay) {
	if !b.lazy() || b.ckptOff {
		return
	}
	need := b.compact.Interval > 0 && ds.appliedSince >= b.compact.Interval
	if lpn := ds.lpn.Load(); lpn-ds.memTrunc.Load() >= ds.memArea.Size-ds.memArea.Size/4 {
		need = true
	}
	if opn := ds.opn.Load(); opn-ds.opTrunc.Load() >= ds.opArea.Size-ds.opArea.Size/4 {
		need = true
	}
	if !need {
		return
	}
	if err := b.checkpoint(ds); err != nil {
		b.setErr(err)
	}
}

// checkpointAll force-checkpoints every structure. The service loop runs
// it on Stop's final drain; recover() runs it so that the next restart is
// bounded even if the node crashes again immediately.
func (b *Backend) checkpointAll() {
	if !b.lazy() || b.ckptOff {
		return
	}
	b.mu.Lock()
	dss := make([]*dsReplay, 0, len(b.dss))
	for _, ds := range b.dss {
		dss = append(dss, ds)
	}
	b.mu.Unlock()
	for _, ds := range dss {
		if err := b.checkpoint(ds); err != nil {
			b.setErr(err)
		}
	}
}

// checkpoint applies one structure's compaction step:
//
//  1. PersistAll — the lazily applied prefix and its cursors become
//     durable,
//  2. write the checkpoint record into the alternate slot,
//  3. scrub the dead log pages (safe before step 4: the writer cannot
//     wrap into them until the truncation point advances),
//  4. advance the durable truncation points the writers gate on.
//
// A crash between any two steps is recoverable: the record is written
// only after the state it covers is durable, and scrubbed bytes all lie
// below the recorded watermarks.
func (b *Backend) checkpoint(ds *dsReplay) error {
	lpn := ds.lpn.Load()
	opn := ds.opn.Load()
	// 2PC hold: an unresolved prepare (or un-Ended commit record) must
	// survive into the next incarnation, so the checkpoint's watermark —
	// and with it the scrub and truncation below — stays pinned under the
	// oldest such record (twopc.go).
	if f, held := ds.holdFloor(); held && f < lpn {
		lpn = f
	}
	memTrunc := ds.memTrunc.Load()
	opTrunc := ds.opTrunc.Load()
	// Never truncate op records the archive scan has not forwarded yet —
	// even with no mirror attached right now: after a restart the cluster
	// re-homes the archive only once recovery has finished, so records
	// scrubbed here would be lost to it (§7.2 Case 4 needs the full op
	// stream).
	opTo := opn
	if ds.opSeen < opTo {
		opTo = ds.opSeen
	}
	if opTo < opTrunc {
		opTo = opTrunc
	}
	if lpn == memTrunc && opTo == opTrunc {
		return nil // nothing applied since the last checkpoint
	}

	b.tr.BeginArg(trace.KindCheckpoint, uint64(ds.slot))
	defer b.tr.End()

	seq := ds.ckptSeq
	rec := &logrec.CkptRecord{
		DSSlot: ds.slot, Seq: seq, Epoch: b.epoch, LPN: lpn, OPN: opTo,
		AreaDigest: logrec.AreaDigest(ds.memArea.Base, ds.memArea.Size,
			ds.opArea.Base, ds.opArea.Size),
	}
	if b.ckptHook != nil &&
		b.ckptHook(CkptEvent{Slot: ds.slot, Seq: seq, Phase: CkptPhaseWrite}) == CkptCrash {
		b.ckptOff = true
		return b.dev.WritePersist(ds.auxOff+ckptSlotOff(seq), rec.Encode()[:ckptTornLen])
	}

	// 1. Everything the record will cover must be durable first.
	b.dev.PersistAll()
	b.chargeBusy(b.prof.PersistBarrier)

	// 2. The record itself, in the alternate slot.
	enc := rec.Encode()
	if err := b.dev.WritePersist(ds.auxOff+ckptSlotOff(seq), enc); err != nil {
		return err
	}
	b.chargeBusy(b.prof.LocalNVMWrite(len(enc)) + b.prof.PersistBarrier)

	// 3. Return the dead pages. The ledgers coalesce sub-page residue
	// across checkpoints; scrubbing models the allocator getting whole
	// pages back (for a circular log that means the appender may wrap
	// over them once the truncation point moves).
	//
	// Scrub safety: a circular area's physical page aliases logical
	// offsets one full area size apart, and the writer may already hold
	// bytes up to (pre-checkpoint trunc)+size — so zeroing any logical
	// byte BELOW the pre-checkpoint truncation point can destroy a live
	// record one lap ahead. Only the range that went dead in THIS
	// checkpoint is alias-free; ledger residue taken along with it is
	// clipped away (reclaimed, just not zeroed).
	ds.memRec.Add(memTrunc, lpn-memTrunc)
	ds.opRec.Add(opTrunc, opTo-opTrunc)
	if b.ckptHook != nil &&
		b.ckptHook(CkptEvent{Slot: ds.slot, Seq: seq, Phase: CkptPhaseReclaim}) == CkptCrash {
		b.ckptOff = true
		if spans := ds.memRec.TakePages(); len(spans) > 0 {
			b.scrub(ds.memArea, clipSpan(spans[0], memTrunc)) // crash mid-scrub: one span only
		}
		return nil
	}
	if !b.compact.KeepPages {
		for _, s := range ds.memRec.TakePages() {
			b.scrub(ds.memArea, clipSpan(s, memTrunc))
		}
		for _, s := range ds.opRec.TakePages() {
			b.scrub(ds.opArea, clipSpan(s, opTrunc))
		}
	}

	// 4. Advance the truncation points; front-end writers gate their
	// append-space checks on these words.
	if err := b.dev.Store64(ds.auxOff+auxMemTrunc, lpn); err != nil {
		return err
	}
	if err := b.dev.Store64(ds.auxOff+auxOpTrunc, opTo); err != nil {
		return err
	}
	ds.memTrunc.Store(lpn)
	ds.opTrunc.Store(opTo)
	ds.ckptSeq = seq + 1
	ds.appliedSince = 0
	b.st.Checkpoints.Add(1)
	b.st.TruncatedBytes.Add(int64(lpn-memTrunc) + int64(opTo-opTrunc))
	return nil
}

// clipSpan trims the part of s below floor (the pre-checkpoint truncation
// point). Reclaimer residue carried over from earlier checkpoints sits
// below it, and its physical pages may already hold live wrapped records —
// those bytes are reclaimed but must never be zeroed.
func clipSpan(s alloc.Span, floor uint64) alloc.Span {
	if s.Off >= floor {
		return s
	}
	if s.Off+s.Len <= floor {
		return alloc.Span{}
	}
	return alloc.Span{Off: floor, Len: s.Off + s.Len - floor}
}

// scrub zero-fills one reclaimed span of a circular log area.
func (b *Backend) scrub(area logrec.Area, s alloc.Span) {
	zero := make([]byte, s.Len)
	for _, r := range area.Split(s.Off, int(s.Len)) {
		if err := b.dev.WritePersist(r.DevOff, zero[:r.Len]); err != nil {
			b.setErr(err)
			return
		}
	}
	b.chargeBusy(b.prof.LocalNVMWrite(int(s.Len)))
}
