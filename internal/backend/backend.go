package backend

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"asymnvm/internal/alloc"
	"asymnvm/internal/arena"
	"asymnvm/internal/clock"
	"asymnvm/internal/logrec"
	"asymnvm/internal/nvm"
	"asymnvm/internal/rdma"
	"asymnvm/internal/ring"
	"asymnvm/internal/stats"
	"asymnvm/internal/trace"
)

// MirrorSink receives replicated state from a primary back-end (§7.1).
// The back-end pushes to its mirrors asynchronously — off the front-end
// critical path — after log records become durable locally.
type MirrorSink interface {
	// WantsRaw reports whether the sink keeps a byte-identical replica
	// (an NVM-equipped mirror). Raw forwards carry device ranges.
	WantsRaw() bool
	// MirrorWrite applies a raw device range to the replica.
	MirrorWrite(devOff uint64, data []byte) error
	// MirrorOp archives one encoded operation-log record (the semantic
	// stream kept by SSD/disk mirrors).
	MirrorOp(slot uint16, rec []byte) error
	// MirrorKick signals that new replicated data is available.
	MirrorKick()
}

// SlotStatus describes what restart recovery found for one structure
// (the §7.2 case analysis is driven by these fields).
type SlotStatus struct {
	Slot uint16
	Type uint8
	Name string
	// TornTail is true when the memory log ends in a transaction that
	// has a header but fails commit/checksum validation (Case 3.b): the
	// writing front-end never got its ack and must re-flush.
	TornTail bool
	// TornAt is the absolute memory-log offset of the torn record.
	TornAt uint64
	// PendingOps counts valid operation-log records at or above the OPN,
	// i.e. operations whose memory logs were never persisted (Case 3.c):
	// the front-end re-executes them.
	PendingOps int
	// LockHeld is the stale writer-lock owner (owner id + 1), 0 if free.
	LockHeld uint64
	// InDoubt counts prepared transactions recovery could not resolve
	// (coordinator unreachable): they stay buffered and pin the cursors.
	InDoubt int
}

// Backend is one back-end node: an NVM device plus the minimal passive
// services of §3.3 — it never initiates communication with front-ends.
type Backend struct {
	id     uint16
	dev    *nvm.Device
	target *rdma.Target
	layout Layout
	clk    clock.Clock
	st     *stats.Stats
	prof   clock.Profile
	tr     *trace.ActorTracer // nil when tracing is disabled

	allocMu sync.Mutex
	balloc  *alloc.Bitmap

	// kick is the service loop's doorbell (the DMA-completion interrupt
	// stand-in). A doorbell instead of a closable channel makes the
	// power-fail teardown race-free by construction: front-ends may Kick
	// at any time — including after Halt has retired the loop — without
	// a mutex, a panic, or a block.
	kick     *ring.Doorbell
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	halt     chan struct{}
	haltOnce sync.Once

	// Compaction plane (see compact.go). epoch is this incarnation's
	// header epoch; inRecovery marks recover()'s replay so its
	// transactions count toward RecoveryReplayOps; ckptOff latches after a
	// CheckpointHook simulated a mid-checkpoint crash.
	compact    *CompactConfig
	ckptHook   func(CkptEvent) CkptAction
	epoch      uint64
	inRecovery bool
	ckptOff    bool
	// replayFromZero: test-only full-history recovery (Options doc).
	replayFromZero bool

	// mirPipe pipelines the virtual-clock cost of mirror forwarding
	// (service goroutine only; see mirrorpipe.go).
	mirPipe mirrorPipe

	// Replay decode scratch (service goroutine only): records and their
	// value bytes are reused across transactions so the replayer's
	// steady-state hot loop stays off the heap.
	txScratch  logrec.TxRecord
	opScratch  logrec.OpRecord
	cmtScratch logrec.CommitRecord
	decArena   arena.Arena

	// resolver consults a coordinator log for in-doubt prepares during
	// recovery (see twopc.go); nil leaves them held.
	resolver TxResolver

	mu      sync.Mutex
	dss     map[uint16]*dsReplay
	rpcLast []uint64
	mirrors []MirrorSink
	repErr  error // first replication/replay error, surfaced in tests

	recovered []SlotStatus
}

// dsReplay is the replayer's per-structure cursor state (rebuilt from the
// aux block on restart; the NVM copy is authoritative).
type dsReplay struct {
	slot    uint16
	auxOff  uint64
	memArea logrec.Area
	opArea  logrec.Area
	lpn     atomic.Uint64 // memory-log bytes applied and persisted
	opn     atomic.Uint64 // op-log offset covered by applied transactions
	opSeen  uint64        // op-log scan cursor (backend goroutine only)
	snOff   uint64

	memTrunc atomic.Uint64 // memory-log truncation point (reclaimed below)
	opTrunc  atomic.Uint64 // op-log truncation point
	// Compaction bookkeeping (service goroutine only).
	ckptSeq      uint64 // next checkpoint sequence number
	appliedSince uint64 // memory-log bytes applied since the last checkpoint
	memRec       *alloc.Reclaimer
	opRec        *alloc.Reclaimer

	// Two-phase-commit hold state (see twopc.go). Mutated by the service
	// goroutine; twopcMu lets status accessors read it concurrently.
	twopcMu   sync.Mutex
	prep      map[uint64]*heldPrepare // buffered prepares by txid
	prepOrder []uint64                // prepare txids in log order
	commits   map[uint64]uint64       // un-Ended commit txid -> record abs
}

// Options configures a back-end node.
type Options struct {
	ID      uint16
	Clock   clock.Clock    // defaults to a fresh virtual clock
	Stats   *stats.Stats   // defaults to a private sink
	Profile *clock.Profile // defaults to clock.DefaultProfile
	Config  *Config        // format geometry, defaults to DefaultConfig
	Tracer  *trace.Tracer  // span tracer registry; nil disables tracing
	// Compact enables the checkpoint/compaction plane (lazy application
	// with periodic checkpoints and log truncation). nil keeps the
	// classic eager per-transaction persist.
	Compact *CompactConfig
	// CheckpointHook, when set, is consulted before each checkpoint step;
	// crash tests return CkptCrash to tear the step (see compact.go).
	CheckpointHook func(CkptEvent) CkptAction
	// TxResolver consults a coordinator structure's log for in-doubt
	// prepared transactions during recovery (presumed abort needs a
	// reachable coordinator to declare an abort). nil keeps in-doubt
	// prepares buffered, pinning cursors and checkpoints below them.
	TxResolver TxResolver
	// replayFromZero makes recovery ignore checkpoints and durable
	// cursors and replay every structure's full log from offset zero.
	// Test-only (see export_test.go): the replay-equivalence property
	// compares this recovery against the checkpoint+suffix one.
	replayFromZero bool
}

func (o *Options) fill() {
	if o.Clock == nil {
		o.Clock = clock.NewVirtual()
	}
	if o.Stats == nil {
		o.Stats = &stats.Stats{}
	}
	if o.Profile == nil {
		p := clock.DefaultProfile()
		o.Profile = &p
	}
	if o.Config == nil {
		c := DefaultConfig()
		o.Config = &c
	}
}

// New opens (or formats, when the device is blank) a back-end on dev and
// runs restart recovery. Call Start to launch the service loop.
func New(dev *nvm.Device, opts Options) (*Backend, error) {
	opts.fill()
	layout, err := ReadLayout(dev)
	if err != nil {
		layout, err = Format(dev, *opts.Config)
		if err != nil {
			return nil, err
		}
	}
	b := &Backend{
		id:     opts.ID,
		dev:    dev,
		target: rdma.NewTarget(dev),
		layout: layout,
		clk:    opts.Clock,
		st:     opts.Stats,
		prof:   *opts.Profile,
		kick:   ring.NewDoorbell(),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		halt:   make(chan struct{}),
		dss:    make(map[uint16]*dsReplay),
	}
	if opts.Compact != nil {
		cc := *opts.Compact
		b.compact = &cc
		b.ckptHook = opts.CheckpointHook
	}
	b.replayFromZero = opts.replayFromZero
	b.resolver = opts.TxResolver
	if opts.Tracer != nil {
		b.tr = opts.Tracer.Actor(fmt.Sprintf("bk%03d", opts.ID), b.clk, b.st)
	}
	if err := b.recover(); err != nil {
		return nil, err
	}
	return b, nil
}

// ID returns the node id used in global addresses.
func (b *Backend) ID() uint16 { return b.id }

// Target returns the RDMA registration front-ends connect to.
func (b *Backend) Target() *rdma.Target { return b.target }

// Layout returns the decoded device layout.
func (b *Backend) Layout() Layout { return b.layout }

// Device returns the underlying NVM device (crash injection in tests).
func (b *Backend) Device() *nvm.Device { return b.dev }

// Stats returns the node's counter sink.
func (b *Backend) Stats() *stats.Stats { return b.st }

// Clock returns the node's virtual clock.
func (b *Backend) Clock() clock.Clock { return b.clk }

// RecoveredSlots reports what restart recovery found, one entry per used
// naming slot. Fresh devices report nothing.
func (b *Backend) RecoveredSlots() []SlotStatus { return b.recovered }

// AddMirror attaches a mirror sink. Call before Start.
func (b *Backend) AddMirror(m MirrorSink) {
	b.mu.Lock()
	b.mirrors = append(b.mirrors, m)
	b.mu.Unlock()
}

// RemoveMirror detaches a mirror sink previously attached with
// AddMirror, looking through any interposed wrapper that exposes the
// original via Inner() (the fault plane's lag queues do). Detaching a
// sink that was never attached is a no-op.
func (b *Backend) RemoveMirror(m MirrorSink) {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := b.mirrors[:0]
	for _, s := range b.mirrors {
		cur := s
		for cur != m {
			iw, ok := cur.(interface{ Inner() MirrorSink })
			if !ok {
				break
			}
			cur = iw.Inner()
		}
		if cur == m {
			continue
		}
		out = append(out, s)
	}
	b.mirrors = out
}

// ReplicationError returns the first error the replication/replay path
// hit, if any.
func (b *Backend) ReplicationError() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.repErr
}

// Alive reports whether the service goroutine is still running. It goes
// false once Stop, Halt, or a fatal replay error has retired the loop —
// the liveness leg of a serving cell's readiness check.
func (b *Backend) Alive() bool {
	select {
	case <-b.done:
		return false
	default:
		return true
	}
}

// ReplayLag sums, across attached structures, the memory-log bytes the
// front-ends have published (the aux tail hint) that this node's
// replayer has not yet applied. Zero means the materialized state is
// caught up with everything durably written. The tail hint goes through
// the device's locked accessor and the cursor is atomic, so this is
// safe to call from any goroutine while replay runs.
func (b *Backend) ReplayLag() uint64 {
	b.mu.Lock()
	dss := make([]*dsReplay, 0, len(b.dss))
	for _, d := range b.dss {
		dss = append(dss, d)
	}
	b.mu.Unlock()
	var lag uint64
	for _, d := range dss {
		tail, err := b.dev.Load64(d.auxOff + AuxMemTailOff)
		if err != nil {
			continue
		}
		if applied := d.lpn.Load(); tail > applied {
			lag += tail - applied
		}
	}
	return lag
}

// SlotSNs reports the seqlock sequence number of every structure slot
// this node's replayer has discovered, keyed by slot. The SN advances
// twice per applied transaction, deterministically from the log, so a
// mirror that has replayed the same prefix shows the same SN: equal
// maps mean the mirror's materialized state matches the primary's.
func (b *Backend) SlotSNs() map[uint16]uint64 {
	b.mu.Lock()
	dss := make([]*dsReplay, 0, len(b.dss))
	for _, d := range b.dss {
		dss = append(dss, d)
	}
	b.mu.Unlock()
	sns := make(map[uint16]uint64, len(dss))
	for _, d := range dss {
		sn, err := b.dev.Load64(d.snOff)
		if err != nil {
			continue
		}
		sns[d.slot] = sn
	}
	return sns
}

// Start launches the back-end service goroutine: it sleeps until kicked,
// then serves RPC cells and replays new log records. The kick stands in
// for the DMA-completion interrupt of a real NIC; no payload crosses it —
// every byte the service consumes comes from the NVM device.
func (b *Backend) Start() {
	go b.run()
}

// Stop terminates the service loop and waits for it to drain. Stop is
// idempotent: crash and failover paths (cluster.CrashBackend followed by
// mirror promotion) may both try to halt the same node.
func (b *Backend) Stop() {
	b.stopOnce.Do(func() { close(b.stop) })
	<-b.done
}

// Halt terminates the service loop WITHOUT the final drain or checkpoint:
// unapplied log records stay unapplied and the device's volatile window
// stays open. It models losing the node mid-flight — power-fail paths
// call Halt and then Device().Crash, where Stop would tidy up first and
// hide the crash. Idempotent, and safe to interleave with Stop.
func (b *Backend) Halt() {
	b.haltOnce.Do(func() { close(b.halt) })
	<-b.done
}

// WrapMirrors replaces every attached mirror sink with wrap(sink). The
// fault plane uses it to interpose lag queues between the primary's
// replication path and its replicas. Call before Start (or while the
// service loop is quiescent).
func (b *Backend) WrapMirrors(wrap func(MirrorSink) MirrorSink) {
	b.mu.Lock()
	for i, m := range b.mirrors {
		b.mirrors[i] = wrap(m)
	}
	b.mu.Unlock()
}

// Kick wakes the service loop (called by front-end libraries after they
// write log records or RPC requests, and by mirrors feeding a promoted
// node). Safe from any goroutine at any time — including after Halt or
// Stop have retired the loop; coalesces and never blocks.
func (b *Backend) Kick() {
	b.kick.Ring()
}

func (b *Backend) run() {
	defer close(b.done)
	for {
		if !b.kick.Poll() {
			switch b.kick.Park(b.halt, b.stop) {
			case 0: // halted mid-flight: no drain, the "power" is gone
				return
			case 1:
				b.stopDrain()
				return
			}
		}
		// A pending kick must not outrank teardown: halt wins outright,
		// stop still gets its final drain.
		select {
		case <-b.halt:
			return
		default:
		}
		select {
		case <-b.stop:
			b.stopDrain()
			return
		default:
		}
		b.serveRPC()
		b.replayAll()
		b.drainMirrorPipe()
	}
}

// stopDrain is Stop()'s final pass: it leaves the device fully applied —
// and, with compaction on, checkpointed and truncated.
func (b *Backend) stopDrain() {
	b.serveRPC()
	b.replayAll()
	b.checkpointAll()
	b.drainMirrorPipe()
}

// setErr records the first background error.
func (b *Backend) setErr(err error) {
	if err == nil {
		return
	}
	b.mu.Lock()
	if b.repErr == nil {
		b.repErr = err
	}
	b.mu.Unlock()
}

// ---- memory management service (§5.1) ----

// serveRPC scans every connection's request cell and executes fresh
// requests. The whole path is local: bitmap update, persist, response.
func (b *Backend) serveRPC() {
	n := int(b.layout.RPCSlots)
	buf := make([]byte, 64)
	for c := 0; c < n; c++ {
		if err := b.dev.ReadAt(b.layout.RPCReqOff(uint16(c)), buf); err != nil {
			b.setErr(err)
			return
		}
		b.chargeBusy(b.prof.LocalNVMRead(64))
		req, ok := DecodeRPCRequest(buf)
		if !ok || req.Seq == 0 || req.Seq <= b.rpcLast[c] {
			continue
		}
		if req.Seq != b.rpcLast[c]+1 {
			continue // out-of-order request; client retries
		}
		resp := b.execRPC(req)
		wire := EncodeRPCResponse(resp)
		if err := b.dev.WritePersist(b.layout.RPCRespOff(uint16(c)), wire); err != nil {
			b.setErr(err)
			return
		}
		b.chargeBusy(b.prof.LocalNVMWrite(64) + b.prof.PersistBarrier)
		b.rpcLast[c] = req.Seq
		b.st.RPCCalls.Add(1)
		b.forwardRaw(b.layout.RPCRespOff(uint16(c)), wire)
	}
}

func (b *Backend) execRPC(req RPCRequest) RPCResponse {
	switch req.Op {
	case RPCMalloc, RPCCalloc:
		addr, err := b.mallocBlocks(req.A1)
		if err != nil {
			return RPCResponse{Seq: req.Seq, Status: RPCNoSpace}
		}
		if req.Op == RPCCalloc {
			blocks := (req.A1 + b.layout.BlockSize - 1) / b.layout.BlockSize
			zero := make([]byte, blocks*b.layout.BlockSize)
			if err := b.dev.WritePersist(AddrOff(addr), zero); err != nil {
				return RPCResponse{Seq: req.Seq, Status: RPCErr}
			}
			b.chargeBusy(b.prof.LocalNVMWrite(len(zero)))
			b.forwardRaw(AddrOff(addr), zero)
		}
		b.st.Allocs.Add(1)
		return RPCResponse{Seq: req.Seq, Status: RPCOK, Result: addr}
	case RPCFree:
		if err := b.freeBlocks(req.A1, req.A2); err != nil {
			return RPCResponse{Seq: req.Seq, Status: RPCErr}
		}
		b.st.Frees.Add(1)
		return RPCResponse{Seq: req.Seq, Status: RPCOK}
	default:
		return RPCResponse{Seq: req.Seq, Status: RPCErr}
	}
}

// mallocBlocks allocates ceil(size/blockSize) contiguous blocks and
// persists the dirtied bitmap range.
func (b *Backend) mallocBlocks(size uint64) (uint64, error) {
	if size == 0 {
		return 0, fmt.Errorf("backend: zero-size malloc")
	}
	blocks := int((size + b.layout.BlockSize - 1) / b.layout.BlockSize)
	b.allocMu.Lock()
	blk, dr, err := b.balloc.Alloc(blocks)
	if err != nil {
		b.allocMu.Unlock()
		return 0, err
	}
	img := make([]byte, dr.Len)
	copy(img, b.balloc.Bytes()[dr.Off:dr.Off+dr.Len])
	b.allocMu.Unlock()
	devOff := b.layout.BitmapBase + uint64(dr.Off)
	if err := b.dev.WritePersist(devOff, img); err != nil {
		return 0, err
	}
	b.chargeBusy(b.prof.LocalNVMWrite(dr.Len) + b.prof.PersistBarrier)
	b.forwardRaw(devOff, img)
	return GlobalAddr(b.id, b.layout.DataBase+uint64(blk)*b.layout.BlockSize), nil
}

func (b *Backend) freeBlocks(addr, size uint64) error {
	node, off := SplitAddr(addr)
	if node != b.id {
		return fmt.Errorf("backend %d: free of foreign address %#x", b.id, addr)
	}
	if off < b.layout.DataBase || off%b.layout.BlockSize != 0 {
		return fmt.Errorf("backend: misaligned free %#x", addr)
	}
	blk := int((off - b.layout.DataBase) / b.layout.BlockSize)
	blocks := int((size + b.layout.BlockSize - 1) / b.layout.BlockSize)
	b.allocMu.Lock()
	dr, err := b.balloc.Free(blk, blocks)
	if err != nil {
		b.allocMu.Unlock()
		return err
	}
	img := make([]byte, dr.Len)
	copy(img, b.balloc.Bytes()[dr.Off:dr.Off+dr.Len])
	b.allocMu.Unlock()
	devOff := b.layout.BitmapBase + uint64(dr.Off)
	if err := b.dev.WritePersist(devOff, img); err != nil {
		return err
	}
	b.chargeBusy(b.prof.LocalNVMWrite(dr.Len) + b.prof.PersistBarrier)
	b.forwardRaw(devOff, img)
	return nil
}

// FreeBlocksCount reports the allocator's free block count (cost figures).
func (b *Backend) FreeBlocksCount() int {
	b.allocMu.Lock()
	defer b.allocMu.Unlock()
	return b.balloc.FreeBlocks()
}

// chargeBusy advances the node's virtual clock and records the time as
// CPU-busy, so Figure 11 can report back-end utilization.
func (b *Backend) chargeBusy(d time.Duration) {
	b.clk.Advance(d)
	b.st.AddBusy(d)
}
