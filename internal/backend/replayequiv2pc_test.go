package backend_test

import (
	"math/rand"
	"testing"

	"asymnvm/internal/backend"
	"asymnvm/internal/core"
	"asymnvm/internal/ds"
	"asymnvm/internal/nvm"
	"asymnvm/internal/stats"
	"asymnvm/internal/txapp"
)

// Replay equivalence over two-phase-commit histories: the log now
// contains PrepareRecords (entries buffered unapplied), coordinator
// commit records, decisions, Ends, flagged transactional op records, and
// aborted transactions whose prepares were ledgered. Recovering from the
// newest checkpoint plus the suffix must still reconstruct the same
// device image as replaying the whole history from zero — the prepare
// hold floor, decision idempotency, and presumed-abort scrubbing have to
// commute with checkpointing exactly.

// txEnrollable is a KV that can join a cross-shard transaction.
type txEnrollable interface {
	Put(key uint64, val []byte) error
	Handle() *core.Handle
}

func TestReplayEquivalence2PC(t *testing.T) {
	dev := nvm.NewDevice(64 << 20)
	st := &stats.Stats{}
	bk, err := backend.New(dev, backend.Options{ID: 0, Profile: &eqProf, Stats: st, Compact: eqCompact()})
	if err != nil {
		t.Fatal(err)
	}
	bk.Start()
	fe := core.NewFrontend(core.FrontendOptions{ID: 1, Mode: core.ModeR(), Profile: &eqProf})
	conn, err := fe.Connect(bk)
	if err != nil {
		bk.Stop()
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(0x2FC))

	// All eight structures participate in transactions. Stack and Queue
	// join through push ops; the KV six through puts.
	stack, err := ds.CreateStack(conn, "Stack", eqOpts())
	if err != nil {
		t.Fatal(err)
	}
	queue, err := ds.CreateQueue(conn, "Queue", eqOpts())
	if err != nil {
		t.Fatal(err)
	}
	kvs := []txEnrollable{}
	for _, row := range []struct {
		name   string
		create func(c *core.Conn, n string) (txEnrollable, error)
	}{
		{"HashTable", func(c *core.Conn, n string) (txEnrollable, error) { return ds.CreateHashTable(c, n, eqOpts()) }},
		{"SkipList", func(c *core.Conn, n string) (txEnrollable, error) { return ds.CreateSkipList(c, n, eqOpts()) }},
		{"BST", func(c *core.Conn, n string) (txEnrollable, error) { return ds.CreateBST(c, n, eqOpts()) }},
		{"BPTree", func(c *core.Conn, n string) (txEnrollable, error) { return ds.CreateBPTree(c, n, eqOpts()) }},
		{"MVBST", func(c *core.Conn, n string) (txEnrollable, error) { return ds.CreateMVBST(c, n, eqOpts()) }},
		{"MVBPTree", func(c *core.Conn, n string) (txEnrollable, error) { return ds.CreateMVBPTree(c, n, eqOpts()) }},
	} {
		kv, err := row.create(conn, row.name)
		if err != nil {
			t.Fatalf("%s: %v", row.name, err)
		}
		kvs = append(kvs, kv)
	}
	// Secondary index pair: order placements maintain a B+Tree primary
	// and a hash-table by-customer index in the same transaction.
	orders, err := txapp.CreateOrderStore(conn, conn, "Orders", eqOpts())
	if err != nil {
		t.Fatal(err)
	}
	tc, err := core.NewTxCoordinator(conn, "Coord")
	if err != nil {
		t.Fatal(err)
	}

	val := func() []byte {
		v := make([]byte, 16+rng.Intn(48))
		rng.Read(v)
		return v
	}
	// Seed each structure with plain single-shard history first, so
	// transactions land on non-trivial state and checkpoints interleave.
	for i := 0; i < 40; i++ {
		for _, kv := range kvs {
			if err := kv.Put(rng.Uint64()%64+1, val()); err != nil {
				t.Fatal(err)
			}
		}
		if err := stack.Push(val()); err != nil {
			t.Fatal(err)
		}
		if err := queue.Enqueue(val()); err != nil {
			t.Fatal(err)
		}
	}

	// Transactional phase: pairs of structures (including stack/queue
	// and the order-store pair) commit — and sometimes abort — under the
	// coordinator.
	for i := 0; i < 60; i++ {
		switch i % 4 {
		case 3:
			if err := orders.PlaceOrder(tc, uint64(2000+i), uint64(i%7+1), uint64(i)); err != nil {
				t.Fatalf("tx %d: place order: %v", i, err)
			}
			continue
		default:
		}
		a := kvs[rng.Intn(len(kvs))]
		b := kvs[rng.Intn(len(kvs))]
		tx, err := tc.Begin()
		if err != nil {
			t.Fatalf("tx %d: begin: %v", i, err)
		}
		parts := []*core.Handle{a.Handle()}
		ops := []func() error{func() error { return a.Put(rng.Uint64()%64+1, val()) }}
		if b != a {
			parts = append(parts, b.Handle())
			ops = append(ops, func() error { return b.Put(rng.Uint64()%64+1, val()) })
		}
		if i%5 == 0 {
			parts = append(parts, stack.Handle(), queue.Handle())
			ops = append(ops,
				func() error { return stack.Push(val()) },
				func() error { return queue.Enqueue(val()) })
		}
		if err := tx.Enroll(parts...); err != nil {
			t.Fatalf("tx %d: enroll: %v", i, err)
		}
		for j, op := range ops {
			if err := op(); err != nil {
				t.Fatalf("tx %d op %d (a=%T b=%T): %v", i, j, a, b, err)
			}
		}
		if i%7 == 6 {
			tx.Abort()
			continue
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("tx %d: commit: %v", i, err)
		}
	}
	// End the open commit chain, then leave a short committed-undrained
	// 2PC tail: one more transaction whose commit is durable but whose
	// End never lands, so both recovery paths must resolve it from the
	// coordinator log.
	if err := tc.Quiesce(); err != nil {
		t.Fatal(err)
	}
	tx, err := tc.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Enroll(kvs[0].Handle(), kvs[1].Handle()); err != nil {
		t.Fatal(err)
	}
	if err := kvs[0].Put(7, val()); err != nil {
		t.Fatal(err)
	}
	if err := kvs[1].Put(9, val()); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Power failure mid-flight.
	bk.Halt()
	dev.Crash(nil)
	if st.Checkpoints.Load() == 0 {
		t.Fatal("workload completed without a single checkpoint; the property would be vacuous")
	}
	img := snapshotDev(t, dev)

	imgA, rroA := recoverImage(t, img, false)
	imgB, rroB := recoverImage(t, img, true)

	if len(imgA) != len(imgB) {
		t.Fatalf("image sizes differ: %d vs %d", len(imgA), len(imgB))
	}
	for off := range imgA {
		if imgA[off] != imgB[off] {
			lo := off - 16
			if lo < 0 {
				lo = 0
			}
			hi := off + 16
			if hi > len(imgA) {
				hi = len(imgA)
			}
			t.Fatalf("recovered images diverge at offset %d:\n ckpt+suffix %x\n full replay %x",
				off, imgA[lo:hi], imgB[lo:hi])
		}
	}
	if rroB == 0 {
		t.Fatal("full replay applied no transactions")
	}
	if rroA*3 > rroB {
		t.Errorf("checkpointed recovery replayed %d transactions, full replay %d — suffix not bounded", rroA, rroB)
	}
	t.Logf("2PC replay ops: ckpt+suffix=%d full=%d (%.1fx)", rroA, rroB, float64(rroB)/float64(max64(rroA, 1)))
}
