package backend

import (
	"sync"
	"testing"

	"asymnvm/internal/nvm"
)

// The kick doorbell replaced a coalescing channel precisely so that a
// front-end racing the power-fail path can never panic (send on closed
// channel) or block (service loop already gone). These tests pin that
// contract; run them with -race.

func newKickBackend(t *testing.T) *Backend {
	t.Helper()
	dev := nvm.NewDevice(4 << 20)
	b, err := New(dev, Options{ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestKickAfterHalt: once Halt retires the loop, Kick must stay a
// harmless no-op forever.
func TestKickAfterHalt(t *testing.T) {
	b := newKickBackend(t)
	b.Start()
	b.Kick()
	b.Halt()
	for i := 0; i < 100; i++ {
		b.Kick()
	}
	if b.Alive() {
		t.Fatal("backend still alive after Halt")
	}
}

// TestKickHaltRace hammers Kick from several goroutines while Halt tears
// the loop down mid-flight.
func TestKickHaltRace(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		b := newKickBackend(t)
		b.Start()
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 500; i++ {
					b.Kick()
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			b.Halt()
		}()
		close(start)
		wg.Wait()
		b.Kick() // and once more after everything settled
	}
}

// TestKickStopRace does the same against the orderly Stop path.
func TestKickStopRace(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		b := newKickBackend(t)
		b.Start()
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 500; i++ {
					b.Kick()
				}
			}()
		}
		close(start)
		b.Stop()
		wg.Wait()
		b.Kick()
		if b.Alive() {
			t.Fatal("backend still alive after Stop")
		}
	}
}

// TestHaltThenStopInterleave: the two teardown paths are documented as
// safe to interleave in either order.
func TestHaltThenStopInterleave(t *testing.T) {
	b := newKickBackend(t)
	b.Start()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); b.Halt() }()
	go func() { defer wg.Done(); b.Stop() }()
	wg.Wait()
	b.Kick()
}
