// Two-phase-commit hold state for the replayer (§7.2 extended). A
// participant's log scan buffers PrepareRecords without applying them;
// a KindApply/KindAbort CommitRecord resolves the buffered body. The
// coordinator's log scan remembers un-Ended KindCommit records so a
// participant's recovery can consult them. Both kinds of unresolved
// state pin a hold floor: durable cursors, truncation points and
// checkpoints never advance past the oldest unresolved record, so a
// restart always rescans it — prepared-but-unapplied state stays out
// of checkpoints until the transaction's fate is known.
package backend

import (
	"encoding/binary"
	"errors"
	"fmt"

	"asymnvm/internal/logrec"
	"asymnvm/internal/nvm"
	"asymnvm/internal/trace"
)

// errApply marks device/apply failures inside the 2PC scan handlers so
// replaySlot can tell them from the benign decode errors that signal
// the end of the valid log.
var errApply = errors.New("backend: 2pc apply failure")

// TxOutcome is a TxResolver's verdict for an in-doubt transaction.
type TxOutcome int

const (
	// TxUnknown means the coordinator could not be consulted (node down,
	// no resolver wired): the prepare stays held and pins the floor.
	TxUnknown TxOutcome = iota
	// TxCommitted means the coordinator log holds a commit record.
	TxCommitted
	// TxAborted means the coordinator log was reachable and holds no
	// commit record for the transaction — presumed abort.
	TxAborted
)

// TxResolver consults the coordinator structure's log for the fate of
// an in-doubt prepared transaction. The cluster wires a device-scan
// resolver; a nil resolver leaves every in-doubt prepare held.
type TxResolver func(coordNode, coordSlot uint16, txid uint64) TxOutcome

// heldPrepare is one buffered prepare: a deep copy of the record (the
// scan buffer is reused) plus its log extent.
type heldPrepare struct {
	rec logrec.PrepareRecord
	abs uint64 // record start offset
	end uint64 // offset just past the record
}

// holdFloor returns the lowest log offset pinned by 2PC state: the
// start of the oldest unresolved prepare (participant side) or
// un-Ended commit record (coordinator side).
func (ds *dsReplay) holdFloor() (uint64, bool) {
	ds.twopcMu.Lock()
	defer ds.twopcMu.Unlock()
	var floor uint64
	ok := false
	for _, hp := range ds.prep {
		if !ok || hp.abs < floor {
			floor, ok = hp.abs, true
		}
	}
	for _, abs := range ds.commits {
		if !ok || abs < floor {
			floor, ok = abs, true
		}
	}
	return floor, ok
}

// dropPrepare removes one resolved prepare from the hold set.
func (b *Backend) dropPrepare(ds *dsReplay, txid uint64) {
	ds.twopcMu.Lock()
	delete(ds.prep, txid)
	for i, id := range ds.prepOrder {
		if id == txid {
			ds.prepOrder = append(ds.prepOrder[:i], ds.prepOrder[i+1:]...)
			break
		}
	}
	ds.twopcMu.Unlock()
}

// replayPrepare buffers one prepare record without applying it. The
// copy is deep — it must outlive the scan buffer until a decision
// record (or recovery consultation) resolves it. The raw extent is
// replicated first so a promoted mirror re-discovers the same in-doubt
// state from its own log copy.
func (b *Backend) replayPrepare(ds *dsReplay, src []byte, abs uint64) (int, error) {
	hp := &heldPrepare{}
	used, err := logrec.DecodePrepareInto(&hp.rec, src, abs, nil)
	if err != nil {
		return 0, err
	}
	hp.abs = abs
	hp.end = abs + uint64(used)
	if err := b.forwardExtent(ds.memArea, abs, used); err != nil {
		return 0, fmt.Errorf("%w: %w", errApply, err)
	}
	ds.twopcMu.Lock()
	if ds.prep == nil {
		ds.prep = make(map[uint64]*heldPrepare)
	}
	if _, dup := ds.prep[hp.rec.TxID]; !dup {
		ds.prep[hp.rec.TxID] = hp
		ds.prepOrder = append(ds.prepOrder, hp.rec.TxID)
	}
	ds.twopcMu.Unlock()
	// Advance the durable cursor up to (not past — the hold floor clamps
	// there) the record's start, so a recovering writer's wait-for-LPN
	// can reach its clamp target.
	if err := b.persistCursors(ds, abs, ds.opn.Load()); err != nil {
		return 0, fmt.Errorf("%w: %w", errApply, err)
	}
	return used, nil
}

// replayDecision processes one CommitRecord from the log scan:
// coordinator kinds maintain the un-Ended commit set, participant kinds
// resolve a buffered prepare. Cursor persistence after a resolution is
// clamped by the (now smaller) hold floor, so an applied prepare's
// bytes finally become truncatable.
func (b *Backend) replayDecision(ds *dsReplay, src []byte, abs uint64) (int, error) {
	rec := &b.cmtScratch
	used, err := logrec.DecodeCommitInto(rec, src, abs)
	if err != nil {
		return 0, err
	}
	if err := b.forwardExtent(ds.memArea, abs, used); err != nil {
		return 0, fmt.Errorf("%w: %w", errApply, err)
	}
	end := abs + uint64(used)
	switch rec.Kind {
	case logrec.KindCommit:
		ds.twopcMu.Lock()
		if ds.commits == nil {
			ds.commits = make(map[uint64]uint64)
		}
		ds.commits[rec.TxID] = abs
		ds.twopcMu.Unlock()
		// As with a buffered prepare: bring the durable cursor up to the
		// record's start (the hold floor pins it there).
		if err := b.persistCursors(ds, abs, ds.opn.Load()); err != nil {
			return 0, fmt.Errorf("%w: %w", errApply, err)
		}
	case logrec.KindEnd:
		ds.twopcMu.Lock()
		delete(ds.commits, rec.TxID)
		ds.twopcMu.Unlock()
		if err := b.persistCursors(ds, end, ds.opn.Load()); err != nil {
			return 0, fmt.Errorf("%w: %w", errApply, err)
		}
	case logrec.KindApply, logrec.KindAbort:
		ds.twopcMu.Lock()
		hp := ds.prep[rec.TxID]
		ds.twopcMu.Unlock()
		if hp == nil {
			// Already resolved in an earlier incarnation; blind re-scan.
			return used, nil
		}
		b.dropPrepare(ds, rec.TxID)
		cover := max(ds.opn.Load(), hp.rec.CoverOp, rec.CoverOp)
		if rec.Kind == logrec.KindApply {
			if err := b.applyPrepared(ds, hp, end, cover); err != nil {
				return 0, fmt.Errorf("%w: %w", errApply, err)
			}
		} else {
			// Presumed abort: discard the body and ledger the prepared
			// pages — the next checkpoint scrubs them. The cover advance
			// retires the aborted transaction's op-log records so they are
			// never handed back for re-execution.
			ds.memRec.Add(hp.abs, hp.end-hp.abs)
			ds.opn.Store(cover)
			if err := b.persistCursors(ds, end, cover); err != nil {
				return 0, fmt.Errorf("%w: %w", errApply, err)
			}
		}
	}
	return used, nil
}

// applyPrepared applies a buffered prepare's entries — the deferred half
// of a committed cross-shard transaction — exactly as applyTx would
// have, then advances the cursors past newLPN (the resolving record's
// end).
func (b *Backend) applyPrepared(ds *dsReplay, hp *heldPrepare, newLPN, coverOp uint64) error {
	b.tr.BeginArg(trace.KindReplay, uint64(len(hp.rec.Entries)))
	defer b.tr.End()
	if err := b.applyEntries(ds, hp.rec.Entries); err != nil {
		return err
	}
	ds.opn.Store(coverOp)
	if err := b.persistCursors(ds, newLPN, coverOp); err != nil {
		return err
	}
	if b.inRecovery {
		b.st.RecoveryReplayOps.Add(1)
	}
	b.st.TxReplayed.Add(1)
	return nil
}

// resolveInDoubt is recovery's consultation pass: for every prepare the
// log scan left unresolved, ask the coordinator's log (§7.2 extended).
// A found commit record applies the buffered body; a reachable
// coordinator with no commit record means the transaction never reached
// its atomicity point — presumed abort, prepared pages to the reclaim
// ledger. An unreachable coordinator keeps the prepare held: cursors
// and checkpoints stay pinned below it until a later consultation.
// Returns the number of prepares still unresolved.
func (b *Backend) resolveInDoubt(ds *dsReplay) (int, error) {
	ds.twopcMu.Lock()
	order := append([]uint64(nil), ds.prepOrder...)
	ds.twopcMu.Unlock()
	unresolved := 0
	for _, txid := range order {
		ds.twopcMu.Lock()
		hp := ds.prep[txid]
		ds.twopcMu.Unlock()
		if hp == nil {
			continue
		}
		outcome := TxUnknown
		if b.resolver != nil {
			outcome = b.resolver(hp.rec.CoordNode, hp.rec.CoordSlot, txid)
		}
		switch outcome {
		case TxCommitted:
			b.dropPrepare(ds, txid)
			cover := max(ds.opn.Load(), hp.rec.CoverOp)
			if err := b.applyPrepared(ds, hp, ds.lpn.Load(), cover); err != nil {
				return unresolved, err
			}
			b.st.InDoubtResolved.Add(1)
		case TxAborted:
			b.dropPrepare(ds, txid)
			ds.memRec.Add(hp.abs, hp.end-hp.abs)
			cover := max(ds.opn.Load(), hp.rec.CoverOp)
			ds.opn.Store(cover)
			if err := b.persistCursors(ds, ds.lpn.Load(), cover); err != nil {
				return unresolved, err
			}
			b.st.InDoubtResolved.Add(1)
		default:
			unresolved++
		}
	}
	return unresolved, nil
}

// ScanTxOutcome is the consultation primitive behind a device-scan
// TxResolver: it reads the coordinator structure's memory log straight
// off its NVM device and reports whether a KindCommit record for txid
// survives. The scan starts at the durable LPN — the coordinator's hold
// floor guarantees un-Ended commit records sit at or above it — so a
// clean scan that finds nothing means the transaction never reached its
// atomicity point: presumed abort. Errors (unformatted device, missing
// slot) mean the coordinator could not actually be consulted.
func ScanTxOutcome(dev *nvm.Device, coordSlot uint16, txid uint64) (TxOutcome, error) {
	layout, err := ReadLayout(dev)
	if err != nil {
		return TxUnknown, err
	}
	if uint64(coordSlot) >= layout.NameEntries {
		return TxUnknown, fmt.Errorf("backend: coordinator slot %d out of range", coordSlot)
	}
	var word [8]byte
	if err := dev.ReadAt(layout.AuxPtrOff(coordSlot), word[:]); err != nil {
		return TxUnknown, err
	}
	auxAddr := binary.LittleEndian.Uint64(word[:])
	if auxAddr == 0 {
		return TxUnknown, fmt.Errorf("backend: coordinator slot %d has no structure", coordSlot)
	}
	auxOff := AddrOff(auxAddr)
	aux := make([]byte, AuxUser)
	if err := dev.ReadAt(auxOff, aux); err != nil {
		return TxUnknown, err
	}
	area := logrec.Area{
		Base: binary.LittleEndian.Uint64(aux[AuxMemLogBaseOff:]),
		Size: binary.LittleEndian.Uint64(aux[AuxMemLogSizeOff:]),
	}
	abs := binary.LittleEndian.Uint64(aux[AuxLPNOff:])
	committed := false
	for {
		rec, used, err := scanCommitRecord(dev, area, abs)
		if err != nil {
			break // end of valid log (or torn tail): scan is done
		}
		if rec != nil && rec.TxID == txid && rec.Kind == logrec.KindCommit {
			committed = true
		}
		abs += uint64(used)
	}
	if committed {
		return TxCommitted, nil
	}
	return TxAborted, nil
}

// scanCommitRecord decodes one record at abs, returning the CommitRecord
// when it is one (nil for other record kinds, which are just skipped).
func scanCommitRecord(dev *nvm.Device, area logrec.Area, abs uint64) (*logrec.CommitRecord, int, error) {
	chunk := 512
	for {
		if uint64(chunk) > area.Size {
			chunk = int(area.Size)
		}
		buf := make([]byte, chunk)
		pos := 0
		for _, r := range area.Split(abs, chunk) {
			if err := dev.ReadAt(r.DevOff, buf[pos:pos+r.Len]); err != nil {
				return nil, 0, err
			}
			pos += r.Len
		}
		if len(buf) == 0 {
			return nil, 0, logrec.ErrShort
		}
		var rec *logrec.CommitRecord
		var used int
		var derr error
		switch buf[0] {
		case logrec.CommitMagic:
			var cr logrec.CommitRecord
			used, derr = logrec.DecodeCommitInto(&cr, buf, abs)
			rec = &cr
		case logrec.PrepareMagic:
			var pr logrec.PrepareRecord
			used, derr = logrec.DecodePrepareInto(&pr, buf, abs, nil)
		default:
			_, used, derr = logrec.DecodeTx(buf, abs)
		}
		if derr == nil {
			return rec, used, nil
		}
		if errors.Is(derr, logrec.ErrShort) && chunk < maxTxChunk && uint64(chunk) < area.Size {
			chunk *= 2
			continue
		}
		return nil, 0, derr
	}
}

// InDoubt returns the transaction ids of prepares buffered without a
// resolution for one slot, in log order.
func (b *Backend) InDoubt(slot uint16) ([]uint64, error) {
	b.mu.Lock()
	ds, ok := b.dss[slot]
	b.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("backend: unknown slot %d", slot)
	}
	ds.twopcMu.Lock()
	defer ds.twopcMu.Unlock()
	return append([]uint64(nil), ds.prepOrder...), nil
}

// PendingCommits returns the transaction ids of coordinator commit
// records not yet forgotten by a KindEnd, in unspecified order.
func (b *Backend) PendingCommits(slot uint16) ([]uint64, error) {
	b.mu.Lock()
	ds, ok := b.dss[slot]
	b.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("backend: unknown slot %d", slot)
	}
	ds.twopcMu.Lock()
	defer ds.twopcMu.Unlock()
	out := make([]uint64, 0, len(ds.commits))
	for txid := range ds.commits {
		out = append(out, txid)
	}
	return out, nil
}

// ReclaimPending reports the bytes a structure's reclaim ledger holds
// for the next checkpoint scrub. Crash tests model-check presumed abort
// against it: an aborted prepare's log span must land here (and nowhere
// else), so prepared pages are never leaked.
func (b *Backend) ReclaimPending(slot uint16) (mem, op uint64, err error) {
	b.mu.Lock()
	ds, ok := b.dss[slot]
	b.mu.Unlock()
	if !ok {
		return 0, 0, fmt.Errorf("backend: unknown slot %d", slot)
	}
	return ds.memRec.PendingBytes(), ds.opRec.PendingBytes(), nil
}
