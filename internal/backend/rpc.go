package backend

import (
	"encoding/binary"
	"hash/crc32"
)

// The memory-management RPC of §5.1 follows the RFP (remote fetching
// paradigm) design the paper cites: the front-end RDMA-writes a request
// into its private request cell and RDMA-reads the response cell until the
// sequence number matches; the back-end stays passive, polling the cells
// with its local CPU. One request/response pair costs two network round
// trips, matching the "one round for each RPC invocation" the paper
// reports for its allocator.

// RPC opcodes.
const (
	RPCMalloc uint64 = 1
	RPCFree   uint64 = 2
	// RPCCalloc allocates zero-filled blocks: the back-end clears them
	// locally, saving the front-end a large RDMA write. Log areas are
	// created with it so tail scans terminate deterministically.
	RPCCalloc uint64 = 3
)

// RPC status codes.
const (
	RPCOK      uint64 = 0
	RPCErr     uint64 = 1
	RPCNoSpace uint64 = 2
)

var rpcCRCTable = crc32.MakeTable(crc32.Castagnoli)

// RPCRequest is the decoded request cell.
type RPCRequest struct {
	Seq uint64 // must be previous seq + 1
	Op  uint64
	A1  uint64 // malloc: size in bytes; free: global address
	A2  uint64 // free: size in bytes
}

// EncodeRPCRequest serializes a request cell (36 bytes used of 64).
func EncodeRPCRequest(r RPCRequest) []byte {
	buf := make([]byte, 64)
	binary.LittleEndian.PutUint64(buf[0:], r.Seq)
	binary.LittleEndian.PutUint64(buf[8:], r.Op)
	binary.LittleEndian.PutUint64(buf[16:], r.A1)
	binary.LittleEndian.PutUint64(buf[24:], r.A2)
	binary.LittleEndian.PutUint32(buf[32:], crc32.Checksum(buf[:32], rpcCRCTable))
	return buf
}

// DecodeRPCRequest parses a request cell, verifying its checksum (a torn
// request write simply is not served until rewritten intact).
func DecodeRPCRequest(buf []byte) (RPCRequest, bool) {
	if len(buf) < 36 {
		return RPCRequest{}, false
	}
	if crc32.Checksum(buf[:32], rpcCRCTable) != binary.LittleEndian.Uint32(buf[32:]) {
		return RPCRequest{}, false
	}
	return RPCRequest{
		Seq: binary.LittleEndian.Uint64(buf[0:]),
		Op:  binary.LittleEndian.Uint64(buf[8:]),
		A1:  binary.LittleEndian.Uint64(buf[16:]),
		A2:  binary.LittleEndian.Uint64(buf[24:]),
	}, true
}

// RPCResponse is the decoded response cell.
type RPCResponse struct {
	Seq    uint64
	Status uint64
	Result uint64 // malloc: allocated global address
}

// EncodeRPCResponse serializes a response cell (28 bytes used of 64).
func EncodeRPCResponse(r RPCResponse) []byte {
	buf := make([]byte, 64)
	binary.LittleEndian.PutUint64(buf[0:], r.Seq)
	binary.LittleEndian.PutUint64(buf[8:], r.Status)
	binary.LittleEndian.PutUint64(buf[16:], r.Result)
	binary.LittleEndian.PutUint32(buf[24:], crc32.Checksum(buf[:24], rpcCRCTable))
	return buf
}

// DecodeRPCResponse parses a response cell.
func DecodeRPCResponse(buf []byte) (RPCResponse, bool) {
	if len(buf) < 28 {
		return RPCResponse{}, false
	}
	if crc32.Checksum(buf[:24], rpcCRCTable) != binary.LittleEndian.Uint32(buf[24:]) {
		return RPCResponse{}, false
	}
	return RPCResponse{
		Seq:    binary.LittleEndian.Uint64(buf[0:]),
		Status: binary.LittleEndian.Uint64(buf[8:]),
		Result: binary.LittleEndian.Uint64(buf[16:]),
	}, true
}
