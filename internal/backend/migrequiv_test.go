package backend_test

import (
	"bytes"
	"math/rand"
	"testing"

	"asymnvm/internal/backend"
	"asymnvm/internal/core"
	"asymnvm/internal/ds"
	"asymnvm/internal/nvm"
)

// The migrated replay-equivalence property, the elastic-rebalancing
// counterpart of TestReplayEquivalenceAllStructures: materialising a
// structure on a NEW back-end through the migration stream (each history
// record framed as a logrec.MigRecord, run back through the
// fuzz-hardened decoder, then re-executed) must produce a device image
// byte-identical to the unmigrated control — the same history replayed
// directly, with no framing in between. One seeded run builds all eight
// structures on a source node, then builds two destination worlds with
// the same node id and compares them byte for byte (checkpoint
// bookkeeping and seqlock SNs masked, as in the sibling test).
//
// Byte-identity against the direct-replay control is the strongest
// statement available here: raw bytes cannot move between nodes (global
// addresses embed the node id), so "the stream loses or reorders
// nothing" is exactly "the streamed world equals the replayed world".

// migEqStruct is what a row must expose: the replay surface and the
// handle whose history feeds the stream.
type migEqStruct interface {
	ds.Replayer
	Handle() *core.Handle
}

type migEqRow struct {
	name   string
	create func(c *core.Conn, name string) (migEqStruct, error)
	run    func(t *testing.T, s migEqStruct, rng *rand.Rand)
}

func migEqKVRun(t *testing.T, s migEqStruct, rng *rand.Rand) {
	t.Helper()
	kv := s.(interface{ Put(uint64, []byte) error })
	for i := 0; i < 120; i++ {
		key := rng.Uint64()%64 + 1
		val := make([]byte, 16+rng.Intn(48))
		rng.Read(val)
		if err := kv.Put(key, val); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if err := s.Handle().Drain(); err != nil {
		t.Fatal(err)
	}
}

func migEqRows() []migEqRow {
	kvRow := func(name string, create func(c *core.Conn, n string) (migEqStruct, error)) migEqRow {
		return migEqRow{name: name, create: create, run: migEqKVRun}
	}
	return []migEqRow{
		{name: "Stack",
			create: func(c *core.Conn, n string) (migEqStruct, error) { return ds.CreateStack(c, n, eqOpts()) },
			run: func(t *testing.T, s migEqStruct, rng *rand.Rand) {
				st := s.(*ds.Stack)
				for i := 0; i < 100; i++ {
					if rng.Intn(4) == 0 {
						if _, _, err := st.Pop(); err != nil {
							t.Fatalf("pop %d: %v", i, err)
						}
						continue
					}
					val := make([]byte, 16+rng.Intn(48))
					rng.Read(val)
					if err := st.Push(val); err != nil {
						t.Fatalf("push %d: %v", i, err)
					}
				}
				if err := st.Drain(); err != nil {
					t.Fatal(err)
				}
			}},
		{name: "Queue",
			create: func(c *core.Conn, n string) (migEqStruct, error) { return ds.CreateQueue(c, n, eqOpts()) },
			run: func(t *testing.T, s migEqStruct, rng *rand.Rand) {
				q := s.(*ds.Queue)
				for i := 0; i < 100; i++ {
					if rng.Intn(4) == 0 {
						if _, _, err := q.Dequeue(); err != nil {
							t.Fatalf("dequeue %d: %v", i, err)
						}
						continue
					}
					val := make([]byte, 16+rng.Intn(48))
					rng.Read(val)
					if err := q.Enqueue(val); err != nil {
						t.Fatalf("enqueue %d: %v", i, err)
					}
				}
				if err := q.Drain(); err != nil {
					t.Fatal(err)
				}
			}},
		kvRow("HashTable", func(c *core.Conn, n string) (migEqStruct, error) { return ds.CreateHashTable(c, n, eqOpts()) }),
		kvRow("SkipList", func(c *core.Conn, n string) (migEqStruct, error) { return ds.CreateSkipList(c, n, eqOpts()) }),
		kvRow("BST", func(c *core.Conn, n string) (migEqStruct, error) { return ds.CreateBST(c, n, eqOpts()) }),
		kvRow("BPTree", func(c *core.Conn, n string) (migEqStruct, error) { return ds.CreateBPTree(c, n, eqOpts()) }),
		kvRow("MVBST", func(c *core.Conn, n string) (migEqStruct, error) { return ds.CreateMVBST(c, n, eqOpts()) }),
		kvRow("MVBPTree", func(c *core.Conn, n string) (migEqStruct, error) { return ds.CreateMVBPTree(c, n, eqOpts()) }),
	}
}

func TestMigratedReplayEquivalence(t *testing.T) {
	// Source world: all eight structures on back-end 0, seeded workload.
	srcDev := nvm.NewDevice(64 << 20)
	srcBk, err := backend.New(srcDev, backend.Options{ID: 0, Profile: &eqProf})
	if err != nil {
		t.Fatal(err)
	}
	srcBk.Start()
	defer srcBk.Stop()
	srcFe := core.NewFrontend(core.FrontendOptions{ID: 1, Mode: core.ModeR(), Profile: &eqProf})
	srcConn, err := srcFe.Connect(srcBk)
	if err != nil {
		t.Fatal(err)
	}
	rows := migEqRows()
	srcs := make([]migEqStruct, len(rows))
	for i, r := range rows {
		s, err := r.create(srcConn, r.name)
		if err != nil {
			t.Fatalf("%s: create: %v", r.name, err)
		}
		r.run(t, s, rand.New(rand.NewSource(0x9161A7E+int64(i))))
		srcs[i] = s
	}

	// Two destination worlds under the SAME node id (9), so global
	// addresses match byte for byte: one materialised through the
	// migration stream, one by direct replay of the identical history.
	build := func(stream bool) []byte {
		dev := nvm.NewDevice(64 << 20)
		bk, err := backend.New(dev, backend.Options{ID: 9, Profile: &eqProf})
		if err != nil {
			t.Fatal(err)
		}
		bk.Start()
		fe := core.NewFrontend(core.FrontendOptions{ID: 2, Mode: core.ModeR(), Profile: &eqProf})
		conn, err := fe.Connect(bk)
		if err != nil {
			bk.Stop()
			t.Fatal(err)
		}
		for i, r := range rows {
			d, err := r.create(conn, r.name)
			if err != nil {
				t.Fatalf("%s: destination create: %v", r.name, err)
			}
			if stream {
				n, err := ds.StreamHistory(srcs[i].Handle(), d)
				if err != nil {
					t.Fatalf("%s: stream: %v", r.name, err)
				}
				if n == 0 {
					t.Fatalf("%s: stream shipped zero ops; property vacuous", r.name)
				}
				// Semantic completeness: the migrated copy answers every
				// key exactly like the source.
				if dkv, ok := d.(interface {
					Get(uint64) ([]byte, bool, error)
				}); ok {
					skv := srcs[i].(interface {
						Get(uint64) ([]byte, bool, error)
					})
					for key := uint64(1); key <= 64; key++ {
						sv, sok, serr := skv.Get(key)
						dv, dok, derr := dkv.Get(key)
						if serr != nil || derr != nil || sok != dok || !bytes.Equal(sv, dv) {
							t.Fatalf("%s: key %d diverges after migration: src(%v,%q,%v) dst(%v,%q,%v)",
								r.name, key, sok, sv, serr, dok, dv, derr)
						}
					}
				}
			} else {
				ops, err := srcs[i].Handle().HistoryOps()
				if err != nil {
					t.Fatalf("%s: history: %v", r.name, err)
				}
				// Mirror the stream path's record-then-replay order: the
				// migration appends every shipped record to the destination's
				// own op log (so a migrated partition stays re-migratable),
				// and the control world must materialise the same log.
				for j, op := range ops {
					if _, err := d.Handle().OpLog(op.OpType, op.Params); err != nil {
						t.Fatalf("%s: control op log %d: %v", r.name, j, err)
					}
					if err := d.ReplayOp(op); err != nil {
						t.Fatalf("%s: control replay op %d: %v", r.name, j, err)
					}
				}
			}
			if err := d.Handle().Flush(); err != nil {
				t.Fatalf("%s: flush: %v", r.name, err)
			}
			if err := d.Handle().Drain(); err != nil {
				t.Fatalf("%s: drain: %v", r.name, err)
			}
		}
		bk.Halt()
		img := snapshotDev(t, dev)
		maskBookkeeping(img, bk.Layout())
		return img
	}

	imgStream := build(true)
	imgCtl := build(false)
	if len(imgStream) != len(imgCtl) {
		t.Fatalf("image sizes differ: %d vs %d", len(imgStream), len(imgCtl))
	}
	for off := range imgStream {
		if imgStream[off] != imgCtl[off] {
			lo := off - 16
			if lo < 0 {
				lo = 0
			}
			hi := off + 16
			if hi > len(imgStream) {
				hi = len(imgStream)
			}
			t.Fatalf("migrated and control images diverge at offset %d:\n migrated %x\n control  %x",
				off, imgStream[lo:hi], imgCtl[lo:hi])
		}
	}
}
