package backend_test

import (
	"math/rand"
	"testing"

	"asymnvm/internal/backend"
	"asymnvm/internal/clock"
	"asymnvm/internal/core"
	"asymnvm/internal/ds"
	"asymnvm/internal/nvm"
	"asymnvm/internal/stats"
)

// The replay-equivalence property: recovering from the newest checkpoint
// plus the log suffix must reconstruct the same device image as replaying
// the full log from offset zero. One seeded run builds all eight
// structures with compaction on (KeepPages, so the full history stays
// decodable), power-fails the node mid-flight, and then recovers the same
// image twice — once normally, once through the test-only replay-from-
// zero override — and compares the results byte for byte.
//
// The only bytes allowed to differ are per-structure checkpoint
// bookkeeping (the aux block: cursors, truncation points, the two
// checkpoint slots) and the seqlock SN words (the two paths apply a
// different number of transactions); both are masked before comparing.

var eqProf = clock.ZeroProfile()

func eqOpts() ds.Options {
	return ds.Options{
		Buckets: 256,
		Create:  core.CreateOptions{MemLogSize: 1 << 20, OpLogSize: 512 << 10},
	}
}

func eqCompact() *backend.CompactConfig {
	// A small interval so several checkpoints land inside the workload;
	// KeepPages keeps the truncated prefix readable for the from-zero run.
	return &backend.CompactConfig{Interval: 2 << 10, KeepPages: true}
}

// eqWorkload is one structure's row: create it and run a seeded op mix,
// leaving the handle drained.
type eqWorkload struct {
	name string
	run  func(t *testing.T, c *core.Conn, rng *rand.Rand)
}

type eqKV interface {
	Put(key uint64, val []byte) error
	Drain() error
}

func eqKVRow(name string, create func(c *core.Conn, name string) (eqKV, error)) eqWorkload {
	return eqWorkload{name: name, run: func(t *testing.T, c *core.Conn, rng *rand.Rand) {
		t.Helper()
		kv, err := create(c, name)
		if err != nil {
			t.Fatalf("%s: create: %v", name, err)
		}
		for i := 0; i < 120; i++ {
			key := rng.Uint64()%64 + 1
			val := make([]byte, 16+rng.Intn(48))
			rng.Read(val)
			if err := kv.Put(key, val); err != nil {
				t.Fatalf("%s: put %d: %v", name, i, err)
			}
		}
		if err := kv.Drain(); err != nil {
			t.Fatalf("%s: drain: %v", name, err)
		}
	}}
}

func eqWorkloads() []eqWorkload {
	return []eqWorkload{
		{name: "Stack", run: func(t *testing.T, c *core.Conn, rng *rand.Rand) {
			s, err := ds.CreateStack(c, "Stack", eqOpts())
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 100; i++ {
				if rng.Intn(4) == 0 {
					if _, _, err := s.Pop(); err != nil {
						t.Fatalf("pop %d: %v", i, err)
					}
					continue
				}
				val := make([]byte, 16+rng.Intn(48))
				rng.Read(val)
				if err := s.Push(val); err != nil {
					t.Fatalf("push %d: %v", i, err)
				}
			}
			if err := s.Drain(); err != nil {
				t.Fatal(err)
			}
		}},
		{name: "Queue", run: func(t *testing.T, c *core.Conn, rng *rand.Rand) {
			q, err := ds.CreateQueue(c, "Queue", eqOpts())
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 100; i++ {
				if rng.Intn(4) == 0 {
					if _, _, err := q.Dequeue(); err != nil {
						t.Fatalf("dequeue %d: %v", i, err)
					}
					continue
				}
				val := make([]byte, 16+rng.Intn(48))
				rng.Read(val)
				if err := q.Enqueue(val); err != nil {
					t.Fatalf("enqueue %d: %v", i, err)
				}
			}
			if err := q.Drain(); err != nil {
				t.Fatal(err)
			}
		}},
		eqKVRow("HashTable", func(c *core.Conn, n string) (eqKV, error) { return ds.CreateHashTable(c, n, eqOpts()) }),
		eqKVRow("SkipList", func(c *core.Conn, n string) (eqKV, error) { return ds.CreateSkipList(c, n, eqOpts()) }),
		eqKVRow("BST", func(c *core.Conn, n string) (eqKV, error) { return ds.CreateBST(c, n, eqOpts()) }),
		eqKVRow("BPTree", func(c *core.Conn, n string) (eqKV, error) { return ds.CreateBPTree(c, n, eqOpts()) }),
		eqKVRow("MVBST", func(c *core.Conn, n string) (eqKV, error) { return ds.CreateMVBST(c, n, eqOpts()) }),
		eqKVRow("MVBPTree", func(c *core.Conn, n string) (eqKV, error) { return ds.CreateMVBPTree(c, n, eqOpts()) }),
	}
}

// snapshotDev reads the full device image.
func snapshotDev(t *testing.T, dev *nvm.Device) []byte {
	t.Helper()
	img := make([]byte, dev.Size())
	if err := dev.ReadAt(0, img); err != nil {
		t.Fatal(err)
	}
	return img
}

// recoverImage restores img onto a fresh device, runs recovery (normal or
// replay-from-zero), and returns the post-recovery image — with the
// checkpoint bookkeeping masked out — plus the replay-op count.
func recoverImage(t *testing.T, img []byte, fromZero bool) ([]byte, int64) {
	t.Helper()
	dev := nvm.NewDevice(len(img))
	if err := dev.WritePersist(0, img); err != nil {
		t.Fatal(err)
	}
	st := &stats.Stats{}
	opts := backend.Options{ID: 0, Profile: &eqProf, Stats: st, Compact: eqCompact()}
	var bk *backend.Backend
	var err error
	if fromZero {
		bk, err = backend.NewReplayFromZero(dev, opts)
	} else {
		bk, err = backend.New(dev, opts)
	}
	if err != nil {
		t.Fatalf("recovery (fromZero=%v): %v", fromZero, err)
	}
	out := snapshotDev(t, dev)
	maskBookkeeping(out, bk.Layout())
	return out, st.RecoveryReplayOps.Load()
}

// maskBookkeeping zeroes the bytes allowed to differ between two
// equivalent images: per-structure checkpoint bookkeeping (the aux
// block) and the seqlock SN words (paths may apply a different number of
// transactions).
func maskBookkeeping(out []byte, layout backend.Layout) {
	for slot := uint16(0); uint64(slot) < layout.NameEntries; slot++ {
		buf := out[layout.NameEntryOff(slot) : layout.NameEntryOff(slot)+backend.NameEntrySize]
		entry, err := backend.DecodeNameEntry(buf)
		if err != nil || !entry.Used || entry.Aux == 0 {
			continue
		}
		for i := uint64(0); i < 8; i++ {
			out[layout.SNOff(slot)+i] = 0
		}
		aux := backend.AddrOff(entry.Aux)
		for i := uint64(0); i < backend.AuxSize; i++ {
			out[aux+i] = 0
		}
	}
}

func TestReplayEquivalenceAllStructures(t *testing.T) {
	dev := nvm.NewDevice(64 << 20)
	st := &stats.Stats{}
	bk, err := backend.New(dev, backend.Options{ID: 0, Profile: &eqProf, Stats: st, Compact: eqCompact()})
	if err != nil {
		t.Fatal(err)
	}
	bk.Start()
	fe := core.NewFrontend(core.FrontendOptions{ID: 1, Mode: core.ModeR(), Profile: &eqProf})
	conn, err := fe.Connect(bk)
	if err != nil {
		bk.Stop()
		t.Fatal(err)
	}
	for i, w := range eqWorkloads() {
		w.run(t, conn, rand.New(rand.NewSource(0x715EED+int64(i))))
	}
	// A committed-but-undrained tail: these records are durable in the
	// log (ModeR commits each op) but — staying below the checkpoint
	// interval — they are never covered by a checkpoint, so the normal
	// recovery must replay them as its suffix.
	tailRng := rand.New(rand.NewSource(0x7A11))
	tail, err := ds.CreateHashTable(conn, "Tail", eqOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		val := make([]byte, 16+tailRng.Intn(48))
		tailRng.Read(val)
		if err := tail.Put(tailRng.Uint64()%64+1, val); err != nil {
			t.Fatalf("tail put %d: %v", i, err)
		}
	}

	// Power failure mid-flight: no final drain or checkpoint, and the
	// volatile window (lazily applied suffix, volatile cursors) is lost.
	bk.Halt()
	dev.Crash(nil)
	if st.Checkpoints.Load() == 0 {
		t.Fatal("workload completed without a single checkpoint; the property would be vacuous")
	}
	img := snapshotDev(t, dev)

	imgA, rroA := recoverImage(t, img, false)
	imgB, rroB := recoverImage(t, img, true)

	if len(imgA) != len(imgB) {
		t.Fatalf("image sizes differ: %d vs %d", len(imgA), len(imgB))
	}
	for off := range imgA {
		if imgA[off] != imgB[off] {
			lo := off - 16
			if lo < 0 {
				lo = 0
			}
			hi := off + 16
			if hi > len(imgA) {
				hi = len(imgA)
			}
			t.Fatalf("recovered images diverge at offset %d:\n ckpt+suffix %x\n full replay %x",
				off, imgA[lo:hi], imgB[lo:hi])
		}
	}

	// Bounded-time recovery: the checkpointed path must replay only the
	// post-checkpoint suffix, a fraction of the full history.
	if rroB == 0 {
		t.Fatal("full replay applied no transactions")
	}
	if rroA*3 > rroB {
		t.Errorf("checkpointed recovery replayed %d transactions, full replay %d — suffix not bounded", rroA, rroB)
	}
	t.Logf("replay ops: ckpt+suffix=%d full=%d (%.1fx)", rroA, rroB, float64(rroB)/float64(max64(rroA, 1)))
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
