package backend

import (
	"sync"
	"testing"

	"asymnvm/internal/logrec"
	"asymnvm/internal/nvm"
)

// fakeSink records everything a back-end forwards.
type fakeSink struct {
	mu     sync.Mutex
	raw    bool
	writes map[uint64][]byte
	ops    []logrec.OpRecord
	kicks  int
}

func (f *fakeSink) WantsRaw() bool { return f.raw }
func (f *fakeSink) MirrorWrite(off uint64, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.writes == nil {
		f.writes = map[uint64][]byte{}
	}
	f.writes[off] = append([]byte(nil), data...)
	return nil
}
func (f *fakeSink) MirrorOp(slot uint16, rec []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	r, _, err := logrec.DecodeOp(rec, decodeAbs(rec))
	if err != nil {
		return err
	}
	f.ops = append(f.ops, r)
	return nil
}
func (f *fakeSink) MirrorKick() {
	f.mu.Lock()
	f.kicks++
	f.mu.Unlock()
}

func decodeAbs(rec []byte) uint64 {
	var abs uint64
	for i := 0; i < 8; i++ {
		abs |= uint64(rec[4+i]) << (8 * i)
	}
	return abs
}

// handBuild registers a structure with log areas directly on the device.
func handBuild(t *testing.T, dev *nvm.Device, l Layout, slot uint16) (aux, memBase, opBase uint64) {
	t.Helper()
	aux = l.DataBase
	memBase = l.DataBase + 4096
	opBase = l.DataBase + 4096 + 65536
	img := make([]byte, AuxSize)
	put := func(off int, v uint64) {
		for i := 0; i < 8; i++ {
			img[off+i] = byte(v >> (8 * i))
		}
	}
	put(AuxMemLogBaseOff, memBase)
	put(AuxMemLogSizeOff, 65536)
	put(AuxOpLogBaseOff, opBase)
	put(AuxOpLogSizeOff, 65536)
	if err := dev.WritePersist(aux, img); err != nil {
		t.Fatal(err)
	}
	entry, err := EncodeNameEntry(NameEntry{Used: true, Type: TypeQueue, Name: "fwd", Aux: GlobalAddr(0, aux)})
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.WritePersist(l.NameEntryOff(slot), entry); err != nil {
		t.Fatal(err)
	}
	return aux, memBase, opBase
}

func TestArchiveForwardingOfOpRecords(t *testing.T) {
	dev := nvm.NewDevice(8 << 20)
	b, err := New(dev, Options{ID: 0, Profile: &zprof})
	if err != nil {
		t.Fatal(err)
	}
	sink := &fakeSink{raw: false}
	b.AddMirror(sink)
	_, _, opBase := handBuild(t, dev, b.Layout(), 0)

	// Append two op records the way a front-end would.
	abs := uint64(0)
	for i := 0; i < 2; i++ {
		rec := logrec.OpRecord{DSSlot: 0, OpType: 3, Abs: abs, Params: []byte{byte(i)}}
		wire := rec.Encode()
		if err := dev.WritePersist(opBase+abs, wire); err != nil {
			t.Fatal(err)
		}
		abs += uint64(len(wire))
	}
	b.Start()
	b.Kick()
	b.Stop()
	if err := b.ReplicationError(); err != nil {
		t.Fatal(err)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.ops) != 2 {
		t.Fatalf("archive sink got %d op records, want 2", len(sink.ops))
	}
	if sink.ops[1].Params[0] != 1 || sink.ops[1].OpType != 3 {
		t.Fatalf("forwarded op wrong: %+v", sink.ops[1])
	}
	if sink.kicks == 0 {
		t.Fatal("mirror never kicked")
	}
}

func TestRawForwardingOfTxRecords(t *testing.T) {
	dev := nvm.NewDevice(8 << 20)
	b, err := New(dev, Options{ID: 0, Profile: &zprof})
	if err != nil {
		t.Fatal(err)
	}
	sink := &fakeSink{raw: true}
	b.AddMirror(sink)
	_, memBase, _ := handBuild(t, dev, b.Layout(), 0)
	target := b.Layout().DataBase + 4096 + 2*65536

	tx := logrec.TxRecord{DSSlot: 0, Abs: 0, Entries: []logrec.MemEntry{
		{Flag: logrec.FlagInline, Addr: GlobalAddr(0, target), Len: 4, Value: []byte("DATA")},
	}}
	if err := dev.WritePersist(memBase, tx.Encode()); err != nil {
		t.Fatal(err)
	}
	b.Start()
	b.Kick()
	b.Stop()
	if err := b.ReplicationError(); err != nil {
		t.Fatal(err)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	// The raw sink must have received the tx record bytes at the memlog
	// physical offset (plus the name entry and aux block at discovery).
	if _, ok := sink.writes[memBase]; !ok {
		t.Fatalf("raw sink missing the log range at %#x; got offsets %v", memBase, keysOf(sink.writes))
	}
	if _, ok := sink.writes[b.Layout().NameEntryOff(0)]; !ok {
		t.Fatal("raw sink missing the naming entry forward")
	}
}

func keysOf(m map[uint64][]byte) []uint64 {
	out := make([]uint64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestPendingOpsListsUncovered(t *testing.T) {
	dev := nvm.NewDevice(8 << 20)
	b, err := New(dev, Options{ID: 0, Profile: &zprof})
	if err != nil {
		t.Fatal(err)
	}
	_, _, opBase := handBuild(t, dev, b.Layout(), 0)
	// Three op records, no memory logs at all: every op is pending.
	abs := uint64(0)
	for i := 0; i < 3; i++ {
		rec := logrec.OpRecord{DSSlot: 0, OpType: 1, Abs: abs, Params: []byte{byte(i)}}
		wire := rec.Encode()
		_ = dev.WritePersist(opBase+abs, wire)
		abs += uint64(len(wire))
	}
	b.Start()
	b.Kick()
	b.Stop()
	ops, err := b.PendingOps(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 3 {
		t.Fatalf("pending ops %d, want 3", len(ops))
	}
	if _, err := b.PendingOps(42); err == nil {
		t.Fatal("unknown slot must error")
	}
}
