package backend

import (
	"errors"
	"fmt"

	"asymnvm/internal/alloc"
	"asymnvm/internal/logrec"
	"asymnvm/internal/trace"
)

// maxTxChunk bounds a single refill of the replay scan buffer. It must
// exceed the largest possible transaction record (a batch of 4096
// operations can log a few megabytes), or the replayer would mistake a
// huge record for a torn tail.
const maxTxChunk = 16 << 20

// recover rebuilds volatile state from the device after (re)start: the
// block allocator from the persistent bitmap, the RPC sequence numbers
// from the response cells, the per-structure replay cursors from the aux
// blocks — then validates log tails with checksums and applies every
// committed transaction that was persisted but not yet applied (§7.2,
// back-end Cases 3.a/3.b/3.c).
func (b *Backend) recover() error {
	// Allocator from the persistent bitmap.
	img := make([]byte, b.layout.BitmapBytes)
	if err := b.dev.ReadAt(b.layout.BitmapBase, img); err != nil {
		return err
	}
	ba, err := alloc.LoadBitmap(img, int(b.layout.NBlocks), int(b.layout.BlockSize))
	if err != nil {
		return err
	}
	b.balloc = ba

	// RPC cursors from the response cells.
	b.rpcLast = make([]uint64, b.layout.RPCSlots)
	cell := make([]byte, 64)
	for c := range b.rpcLast {
		if err := b.dev.ReadAt(b.layout.RPCRespOff(uint16(c)), cell); err != nil {
			return err
		}
		if resp, ok := DecodeRPCResponse(cell); ok {
			b.rpcLast[c] = resp.Seq
		}
	}

	// Bump the epoch so front-ends can detect a restart. Mirrors observe
	// the same word through raw replication, so a promoted replica and a
	// rebuilt archive agree with the primary's incarnation count.
	epoch, err := b.dev.Load64(hdrEpoch)
	if err != nil {
		return err
	}
	b.epoch = epoch + 1
	if err := b.dev.Store64(hdrEpoch, b.epoch); err != nil {
		return err
	}

	// Discover structures and replay their logs — from the newest valid
	// checkpoint onward, not from the beginning of history.
	b.inRecovery = true
	defer func() { b.inRecovery = false }()
	if err := b.refreshSlots(); err != nil {
		return err
	}
	b.mu.Lock()
	dss := make([]*dsReplay, 0, len(b.dss))
	for _, ds := range b.dss {
		dss = append(dss, ds)
	}
	b.mu.Unlock()
	for _, ds := range dss {
		status, err := b.replaySlot(ds)
		if err != nil {
			return err
		}
		// Consult the coordinator log for prepares the scan left in doubt
		// (presumed-abort recovery; see twopc.go).
		status.InDoubt, err = b.resolveInDoubt(ds)
		if err != nil {
			return err
		}
		entry, err := b.readNameEntry(ds.slot)
		if err != nil {
			return err
		}
		status.Slot = ds.slot
		status.Type = entry.Type
		status.Name = entry.Name
		status.LockHeld = entry.Lock
		status.PendingOps = b.countPendingOps(ds)
		b.recovered = append(b.recovered, status)
	}
	b.inRecovery = false
	// Checkpoint what recovery just replayed, so an immediate second
	// crash replays nothing twice and the suffix stays short.
	b.checkpointAll()
	// Recovery replay may have forwarded to mirrors; settle the channel
	// before the back-end starts serving.
	b.drainMirrorPipe()
	return nil
}

// readNameEntry reads and decodes one naming-table slot.
func (b *Backend) readNameEntry(slot uint16) (NameEntry, error) {
	buf := make([]byte, NameEntrySize)
	if err := b.dev.ReadAt(b.layout.NameEntryOff(slot), buf); err != nil {
		return NameEntry{}, err
	}
	return DecodeNameEntry(buf)
}

// refreshSlots scans the naming table for structures the replayer does not
// know yet and loads their aux blocks. Front-ends create structures with
// one-sided writes, so discovery happens here, on the next kick.
func (b *Backend) refreshSlots() error {
	n := uint16(b.layout.NameEntries)
	for slot := uint16(0); slot < n; slot++ {
		b.mu.Lock()
		_, known := b.dss[slot]
		b.mu.Unlock()
		if known {
			continue
		}
		entry, err := b.readNameEntry(slot)
		if err != nil {
			return err
		}
		if !entry.Used || entry.Aux == 0 {
			continue
		}
		if AddrNode(entry.Aux) != b.id {
			continue // foreign aux: partition metadata owned elsewhere
		}
		auxOff := AddrOff(entry.Aux)
		aux := make([]byte, AuxSize)
		if err := b.dev.ReadAt(auxOff, aux); err != nil {
			return err
		}
		ds := &dsReplay{
			slot:   slot,
			auxOff: auxOff,
			snOff:  b.layout.SNOff(slot),
		}
		ds.memArea = logrec.Area{Base: le64at(aux, auxMemLogBase), Size: le64at(aux, auxMemLogSize)}
		ds.opArea = logrec.Area{Base: le64at(aux, auxOpLogBase), Size: le64at(aux, auxOpLogSize)}
		ds.lpn.Store(le64at(aux, auxLPN))
		ds.opn.Store(le64at(aux, auxOPN))
		ds.memTrunc.Store(le64at(aux, auxMemTrunc))
		ds.opTrunc.Store(le64at(aux, auxOpTrunc))
		if ds.memArea.Size == 0 || ds.opArea.Size == 0 {
			continue // creation still in progress; retry on next kick
		}
		ds.memRec = alloc.NewReclaimer(b.layout.BlockSize)
		ds.opRec = alloc.NewReclaimer(b.layout.BlockSize)
		if b.replayFromZero {
			// Test-only: pretend no progress was ever recorded and replay
			// the full history (valid only while the log was never
			// scrubbed, i.e. CompactConfig.KeepPages).
			ds.lpn.Store(0)
			ds.opn.Store(0)
			ds.memTrunc.Store(0)
			ds.opTrunc.Store(0)
		} else if rec, ok := b.bestCkpt(ds, aux); ok {
			// Adopt the newest valid checkpoint: replay resumes at its
			// watermarks, skipping the already-applied (and possibly
			// scrubbed) prefix.
			if rec.LPN > ds.lpn.Load() {
				ds.lpn.Store(rec.LPN)
			}
			if rec.OPN > ds.opn.Load() {
				ds.opn.Store(rec.OPN)
			}
			ds.ckptSeq = rec.Seq + 1
		}
		ds.opSeen = ds.opn.Load()
		// Replicate the naming entry and aux block so mirrors know the
		// structure exists.
		entryBuf := make([]byte, NameEntrySize)
		if err := b.dev.ReadAt(b.layout.NameEntryOff(slot), entryBuf); err != nil {
			return err
		}
		b.forwardRaw(b.layout.NameEntryOff(slot), entryBuf)
		b.forwardRaw(auxOff, aux)
		b.mu.Lock()
		b.dss[slot] = ds
		b.mu.Unlock()
	}
	return nil
}

// replayAll is the service-loop body: discover new structures, then for
// each structure forward fresh op-log records to mirrors and apply fresh
// committed transactions to the data area.
func (b *Backend) replayAll() {
	if err := b.refreshSlots(); err != nil {
		b.setErr(err)
		return
	}
	b.mu.Lock()
	dss := make([]*dsReplay, 0, len(b.dss))
	for _, ds := range b.dss {
		dss = append(dss, ds)
	}
	b.mu.Unlock()
	kickMirrors := false
	for _, ds := range dss {
		b.archiveOps(ds)
		if _, err := b.replaySlot(ds); err != nil {
			b.setErr(err)
		}
		b.maybeCheckpoint(ds)
		kickMirrors = true
	}
	if kickMirrors {
		b.mu.Lock()
		mirrors := append([]MirrorSink(nil), b.mirrors...)
		b.mu.Unlock()
		for _, m := range mirrors {
			m.MirrorKick()
		}
	}
}

// readArea reads n logical bytes starting at abs from a circular area,
// splitting around the wrap point.
func (b *Backend) readArea(area logrec.Area, abs uint64, n int) ([]byte, error) {
	out := make([]byte, n)
	pos := 0
	for _, r := range area.Split(abs, n) {
		if err := b.dev.ReadAt(r.DevOff, out[pos:pos+r.Len]); err != nil {
			return nil, err
		}
		pos += r.Len
	}
	b.chargeBusy(b.prof.LocalNVMRead(n))
	return out, nil
}

// replaySlot applies every complete, checksum-valid transaction between
// the LPN and the log tail, in log order, bumping the structure's seqlock
// around each application (Algorithm 2's Write_Begin/Write_End run here,
// in the back-end, exactly as the paper specifies).
func (b *Backend) replaySlot(ds *dsReplay) (SlotStatus, error) {
	var status SlotStatus
	chunk := 4 << 10
	for {
		n := chunk
		if uint64(n) > ds.memArea.Size {
			n = int(ds.memArea.Size)
		}
		lpn := ds.lpn.Load()
		buf, err := b.readArea(ds.memArea, lpn, n)
		if err != nil {
			return status, err
		}
		pos := 0
		progressed := false
		for {
			// Dispatch on the record magic: plain transactions apply
			// immediately; 2PC prepares are buffered unapplied and commit
			// records resolve them (twopc.go).
			var used int
			var derr error
			switch buf[pos] {
			case logrec.PrepareMagic:
				used, derr = b.replayPrepare(ds, buf[pos:], lpn)
			case logrec.CommitMagic:
				used, derr = b.replayDecision(ds, buf[pos:], lpn)
			default:
				// Decode into the service loop's reused record + arena: the
				// record lives exactly one applyTx, so steady-state replay
				// stops allocating per transaction.
				rec := &b.txScratch
				used, derr = logrec.DecodeTxInto(rec, buf[pos:], lpn, &b.decArena)
				if derr == nil {
					err := b.applyTx(ds, rec, lpn+uint64(used))
					b.decArena.Reset()
					if err != nil {
						return status, err
					}
					ds.opn.Store(rec.CoverOp)
				}
			}
			if derr != nil {
				b.decArena.Reset()
				if errors.Is(derr, errApply) {
					return status, derr // device/apply failure, not a log tail
				}
				if errors.Is(derr, logrec.ErrShort) && !progressed && chunk < maxTxChunk && uint64(chunk) < ds.memArea.Size {
					chunk *= 2 // a record larger than the scan buffer
					break
				}
				if errors.Is(derr, logrec.ErrShort) && progressed {
					break // refill from the new LPN
				}
				// End of valid log. Distinguish a clean tail from a torn
				// transaction: a matching header whose commit/checksum
				// fails means a front-end died mid-flush (Case 3.b).
				if errors.Is(derr, logrec.ErrBadCRC) || errors.Is(derr, logrec.ErrNoCommit) {
					status.TornTail = true
					status.TornAt = lpn
				}
				return status, nil
			}
			lpn += uint64(used)
			ds.lpn.Store(lpn)
			ds.appliedSince += uint64(used)
			pos += used
			progressed = true
			if len(buf)-pos < 32 {
				break // refill
			}
		}
		if !progressed && chunk >= maxTxChunk {
			return status, nil
		}
	}
}

// applyTx replicates the raw record to mirrors, then applies each memory
// log entry to the data area and persists the new cursors.
func (b *Backend) applyTx(ds *dsReplay, rec *logrec.TxRecord, newLPN uint64) error {
	b.tr.BeginArg(trace.KindReplay, uint64(len(rec.Entries)))
	defer b.tr.End()
	// Replicate the log record before applying it (§7.1: logs reach the
	// mirror before the transaction commits to the data area). Only the
	// record's extent matters here — the bytes forwarded are read back
	// from the device — so EncodedLen avoids a full re-encode per replay.
	if err := b.forwardExtent(ds.memArea, rec.Abs, rec.EncodedLen()); err != nil {
		return err
	}
	if err := b.applyEntries(ds, rec.Entries); err != nil {
		return err
	}
	if err := b.persistCursors(ds, newLPN, rec.CoverOp); err != nil {
		return err
	}
	if b.inRecovery {
		b.st.RecoveryReplayOps.Add(1)
	}
	b.st.TxReplayed.Add(1)
	return nil
}

// forwardExtent replicates one log record's raw extent (read back from
// the device, split around the circular wrap) to replica mirrors.
func (b *Backend) forwardExtent(area logrec.Area, abs uint64, n int) error {
	for _, r := range area.Split(abs, n) {
		chunk := make([]byte, r.Len)
		if err := b.dev.ReadAt(r.DevOff, chunk); err != nil {
			return err
		}
		b.forwardRaw(r.DevOff, chunk)
	}
	return nil
}

// applyEntries writes a transaction body's memory-log entries into the
// data area under the structure's seqlock (Algorithm 2's Write_Begin /
// Write_End run here, in the back-end, exactly as the paper specifies).
func (b *Backend) applyEntries(ds *dsReplay, entries []logrec.MemEntry) error {
	// Write_Begin: SN becomes odd while the structure is inconsistent.
	sn, err := b.dev.Load64(ds.snOff)
	if err != nil {
		return err
	}
	if err := b.dev.Store64(ds.snOff, sn+1); err != nil {
		return err
	}
	for i := range entries {
		e := &entries[i]
		val := e.Value
		if e.Flag == logrec.FlagOpRef {
			val, err = b.readArea(ds.opArea, e.OpAbs+logrec.ParamsWireOff+uint64(e.SrcOff), int(e.Len))
			if err != nil {
				return err
			}
		}
		if AddrNode(e.Addr) != b.id {
			return fmt.Errorf("backend %d: replay of foreign address %#x", b.id, e.Addr)
		}
		off := AddrOff(e.Addr)
		if err := b.dev.WriteAt(off, val[:e.Len]); err != nil {
			return err
		}
		b.chargeBusy(b.prof.LocalNVMWrite(int(e.Len)))
	}
	if !b.lazy() {
		b.dev.PersistAll()
		b.chargeBusy(b.prof.PersistBarrier)
	}
	// Write_End: SN even again; readers revalidate against it.
	return b.dev.Store64(ds.snOff, sn+2)
}

// persistCursors advances the structure's durable (eager) or
// persistence-window (lazy) LPN/OPN words after a record is processed,
// clamped to the 2PC hold floor: cursors never advance past an
// unresolved prepare or an un-Ended commit record, so a restart always
// rescans them and prepared-but-unapplied state stays out of
// checkpoints (twopc.go).
func (b *Backend) persistCursors(ds *dsReplay, newLPN, coverOp uint64) error {
	if f, held := ds.holdFloor(); held && f < newLPN {
		newLPN = f
	}
	if !b.lazy() {
		// Persist the cursors (the LPN/OPN of §5.1).
		if err := b.dev.Store64(ds.auxOff+auxLPN, newLPN); err != nil {
			return err
		}
		if err := b.dev.Store64(ds.auxOff+auxOPN, coverOp); err != nil {
			return err
		}
		// Eager mode never leaves an unapplied durable suffix, so the
		// truncation points ride the cursors: writers gate on them with
		// exactly the values they used to read from the LPN/OPN.
		if err := b.dev.Store64(ds.auxOff+auxMemTrunc, newLPN); err != nil {
			return err
		}
		if err := b.dev.Store64(ds.auxOff+auxOpTrunc, coverOp); err != nil {
			return err
		}
		ds.memTrunc.Store(newLPN)
		ds.opTrunc.Store(coverOp)
		return nil
	}
	// Lazy mode: cursors advance with volatile writes placed in the
	// persistence window AFTER the entry writes above. A power
	// failure reverts a suffix of that window newest-first, so a
	// surviving LPN implies the entries below it survived — the next
	// checkpoint's PersistAll makes both durable together.
	if err := b.writeLE64(ds.auxOff+auxLPN, newLPN); err != nil {
		return err
	}
	return b.writeLE64(ds.auxOff+auxOPN, coverOp)
}

// bestCkpt decodes a structure's two checkpoint slots from its aux image
// and returns the newest record that passes every validity check: codec
// magic+CRC, slot ownership, area-geometry digest, and an epoch no newer
// than the current incarnation (a torn slot simply loses this round and
// the other slot wins).
func (b *Backend) bestCkpt(ds *dsReplay, aux []byte) (logrec.CkptRecord, bool) {
	want := logrec.AreaDigest(ds.memArea.Base, ds.memArea.Size,
		ds.opArea.Base, ds.opArea.Size)
	var best logrec.CkptRecord
	found := false
	for _, off := range [2]int{auxCkptA, auxCkptB} {
		rec, err := logrec.DecodeCkpt(aux[off : off+logrec.CkptSlotSize])
		if err != nil {
			continue
		}
		if rec.DSSlot != ds.slot || rec.AreaDigest != want || rec.Epoch > b.epoch {
			continue
		}
		if !found || rec.Seq > best.Seq {
			best, found = rec, true
		}
	}
	return best, found
}

// archiveOps scans the op log for records the mirrors have not seen and
// forwards them — raw for replica mirrors (same offsets), semantic for
// archive mirrors. Under compaction the scan runs even with no mirror
// attached: the cursor it advances (opSeen) is also the op-log
// truncation ceiling, so a mirror-less compacting back-end would
// otherwise never reclaim op-log space. Eager mode truncates on the
// cursors directly, so without a mirror it skips the scan (and its
// per-transaction decode work) entirely.
func (b *Backend) archiveOps(ds *dsReplay) {
	b.mu.Lock()
	forward := len(b.mirrors) > 0
	b.mu.Unlock()
	if !forward && !b.lazy() {
		return
	}
	chunk := 4 << 10
	for {
		n := chunk
		if uint64(n) > ds.opArea.Size {
			n = int(ds.opArea.Size)
		}
		buf, err := b.readArea(ds.opArea, ds.opSeen, n)
		if err != nil {
			b.setErr(err)
			return
		}
		pos := 0
		progressed := false
		for {
			// Only the record's validity and extent matter on this scan;
			// decode into the reused scratch (params land in the arena and
			// die at the Reset below) and forward the raw wire bytes.
			rec := &b.opScratch
			used, derr := logrec.DecodeOpInto(rec, buf[pos:], ds.opSeen, &b.decArena)
			b.decArena.Reset()
			if derr != nil {
				if errors.Is(derr, logrec.ErrShort) && !progressed && chunk < maxTxChunk && uint64(chunk) < ds.opArea.Size {
					chunk *= 2
					break
				}
				return
			}
			if forward {
				wire := buf[pos : pos+used]
				for _, r := range ds.opArea.Split(rec.Abs, used) {
					// Forward at physical offsets for replica mirrors.
					b.forwardRawOnly(r.DevOff, wire[:r.Len])
					wire = wire[r.Len:]
				}
				b.forwardOp(ds.slot, buf[pos:pos+used])
			}
			ds.opSeen += uint64(used)
			pos += used
			progressed = true
			if len(buf)-pos < 16 {
				break
			}
		}
		if !progressed {
			return
		}
	}
}

// countPendingOps counts valid op records at or above the OPN: operations
// acknowledged as persistent whose memory logs never arrived. Recovery
// hands these back to the owning front-end for re-execution (Case 2.c/3.c).
func (b *Backend) countPendingOps(ds *dsReplay) int {
	ops, err := b.PendingOps(ds.slot)
	if err != nil {
		return 0
	}
	return len(ops)
}

// PendingOps returns the decoded op-log records at or above the OPN for a
// slot, in append order.
func (b *Backend) PendingOps(slot uint16) ([]logrec.OpRecord, error) {
	b.mu.Lock()
	ds, ok := b.dss[slot]
	b.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("backend: unknown slot %d", slot)
	}
	var out []logrec.OpRecord
	abs := ds.opn.Load()
	chunk := 4 << 10
	for {
		n := chunk
		if uint64(n) > ds.opArea.Size {
			n = int(ds.opArea.Size)
		}
		buf, err := b.readArea(ds.opArea, abs, n)
		if err != nil {
			return nil, err
		}
		pos := 0
		progressed := false
		for {
			rec, used, derr := logrec.DecodeOp(buf[pos:], abs)
			if derr != nil {
				if errors.Is(derr, logrec.ErrShort) && !progressed && chunk < maxTxChunk && uint64(chunk) < ds.opArea.Size {
					chunk *= 2
					break
				}
				return out, nil
			}
			out = append(out, rec)
			abs += uint64(used)
			pos += used
			progressed = true
			if len(buf)-pos < 16 {
				break
			}
		}
		if !progressed {
			return out, nil
		}
	}
}

// forwardRaw pushes a device range to every replica mirror and charges the
// back-end clock for the transfer (replication happens on the back-end's
// time, not the front-end's — §7.1's asynchronous replication).
func (b *Backend) forwardRaw(devOff uint64, data []byte) {
	b.mu.Lock()
	mirrors := append([]MirrorSink(nil), b.mirrors...)
	b.mu.Unlock()
	for _, m := range mirrors {
		if !m.WantsRaw() {
			continue
		}
		b.forwardCharge(len(data))
		if err := m.MirrorWrite(devOff, data); err != nil {
			b.setErr(err)
		}
	}
}

// forwardRawOnly is forwardRaw without the lock dance for the hot op path.
func (b *Backend) forwardRawOnly(devOff uint64, data []byte) {
	b.forwardRaw(devOff, data)
}

// forwardOp pushes one encoded op record to archive mirrors.
func (b *Backend) forwardOp(slot uint16, rec []byte) {
	b.mu.Lock()
	mirrors := append([]MirrorSink(nil), b.mirrors...)
	b.mu.Unlock()
	for _, m := range mirrors {
		if m.WantsRaw() {
			continue
		}
		b.forwardCharge(len(rec))
		if err := m.MirrorOp(slot, append([]byte(nil), rec...)); err != nil {
			b.setErr(err)
		}
	}
}

func le64at(b []byte, off int) uint64 {
	return uint64(b[off]) | uint64(b[off+1])<<8 | uint64(b[off+2])<<16 | uint64(b[off+3])<<24 |
		uint64(b[off+4])<<32 | uint64(b[off+5])<<40 | uint64(b[off+6])<<48 | uint64(b[off+7])<<56
}
