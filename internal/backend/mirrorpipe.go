package backend

import (
	"time"

	"asymnvm/internal/ring"
	"asymnvm/internal/trace"
)

// mirrorPipe models the primary's replication channel as a posted-verb
// pipeline instead of a stop-and-wait loop (§7.1: mirror pushes are off
// the front-end critical path, so there is no reason the back-end should
// stall a full round trip per forward either). Forwards still EXECUTE
// immediately and in issue order — the sinks observe byte-identical
// sequences, which the deterministic chaos replay relies on — only the
// virtual-clock accounting changes: transfers serialize on the channel's
// bandwidth cursor, the per-forward round trip overlaps, and a bounded
// in-flight window provides back-pressure. The window drains at kick
// boundaries (the back-end's commit points).
//
// All fields belong to the back-end service goroutine.
type mirrorPipe struct {
	busyUntil time.Duration           // when the last transfer leaves the wire
	done      ring.Buf[time.Duration] // completion times of in-flight forwards (FIFO)
	syncCost  time.Duration           // what stop-and-wait would have charged
	charged   time.Duration           // what the pipelined model actually charged
}

// mirrorWindow bounds in-flight mirror forwards before the back-end
// stalls on the oldest completion.
const mirrorWindow = 16

// forwardCharge accounts one n-byte forward to one sink. The transfer
// term queues behind earlier in-flight transfers (bandwidth is serial);
// the RTT and remote-persist terms overlap with the back-end's own work.
func (b *Backend) forwardCharge(n int) {
	p := &b.mirPipe
	now := b.clk.Now()
	start := p.busyUntil
	if start < now {
		start = now
	}
	p.busyUntil = start + b.prof.NetTransfer(n) + b.prof.NVMTransfer(n)
	p.done.PushBack(p.busyUntil + b.prof.RDMARTT + b.prof.NVMWrite)
	p.syncCost += b.prof.WriteCost(n)
	b.st.PostedVerbs.Add(1)
	b.st.QueueDepthSum.Add(int64(p.done.Len()))
	b.st.RDMAWrite.Add(1)
	b.st.BytesWrite.Add(int64(n))
	b.tr.Event(trace.KindMirrorFwd, uint64(n))
	if p.done.Len() >= mirrorWindow {
		d, _ := p.done.PopFront()
		if now := b.clk.Now(); d > now {
			b.clk.Advance(d - now)
			b.tr.Charge(trace.KindMirrorFwd, d-now)
			p.charged += d - now
		}
	}
}

// drainMirrorPipe waits out every in-flight forward — called at kick
// boundaries and on shutdown, the replication channel's commit points —
// and books the latency the pipeline hid as overlap savings.
func (b *Backend) drainMirrorPipe() {
	p := &b.mirPipe
	if p.done.Len() == 0 && p.syncCost == 0 {
		return
	}
	if last, ok := p.done.Back(); ok {
		if now := b.clk.Now(); last > now {
			b.clk.Advance(last - now)
			b.tr.Charge(trace.KindMirrorFwd, last-now)
			p.charged += last - now
		}
		p.done.Reset()
		b.st.DoorbellGroups.Add(1)
	}
	if saved := p.syncCost - p.charged; saved > 0 {
		b.st.OverlapSavedNS.Add(int64(saved))
		b.tr.Event(trace.KindOverlapSaved, uint64(saved))
	}
	p.syncCost, p.charged = 0, 0
}
