package backend

import (
	"encoding/binary"
	"errors"
	"hash/fnv"
)

// Data-structure type tags stored in naming-table entries.
const (
	TypeFree      uint8 = 0
	TypeStack     uint8 = 1
	TypeQueue     uint8 = 2
	TypeHashTable uint8 = 3
	TypeSkipList  uint8 = 4
	TypeBST       uint8 = 5
	TypeBPTree    uint8 = 6
	TypeMVBST     uint8 = 7
	TypeMVBPTree  uint8 = 8
	TypeApp       uint8 = 9  // application-defined composite
	TypeStriped   uint8 = 10 // striped structure meta entry: child slots carry the data
)

// NameEntry is the decoded form of one naming-table slot.
type NameEntry struct {
	Used    bool
	Type    uint8
	Name    string
	Root    uint64
	Lock    uint64
	SN      uint64
	Aux     uint64
	LockLog uint64
}

// ErrNameTooLong is returned for names exceeding the 32-byte field.
var ErrNameTooLong = errors.New("backend: name longer than 32 bytes")

// HashName returns the 64-bit FNV-1a hash stored next to a name for
// cheap lookups.
func HashName(name string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return h.Sum64()
}

// EncodeNameEntry serializes e into a NameEntrySize buffer.
func EncodeNameEntry(e NameEntry) ([]byte, error) {
	if len(e.Name) > nameMaxLen {
		return nil, ErrNameTooLong
	}
	buf := make([]byte, NameEntrySize)
	if e.Used {
		buf[neFlags] = 1
	}
	buf[neType] = e.Type
	binary.LittleEndian.PutUint64(buf[neNameHash:], HashName(e.Name))
	copy(buf[neName:neName+nameMaxLen], e.Name)
	binary.LittleEndian.PutUint64(buf[neRoot:], e.Root)
	binary.LittleEndian.PutUint64(buf[neLock:], e.Lock)
	binary.LittleEndian.PutUint64(buf[neSN:], e.SN)
	binary.LittleEndian.PutUint64(buf[neAux:], e.Aux)
	binary.LittleEndian.PutUint64(buf[neLockLog:], e.LockLog)
	return buf, nil
}

// DecodeNameEntry parses a NameEntrySize buffer.
func DecodeNameEntry(buf []byte) (NameEntry, error) {
	if len(buf) < NameEntrySize {
		return NameEntry{}, errors.New("backend: short name entry")
	}
	var e NameEntry
	e.Used = buf[neFlags]&1 != 0
	e.Type = buf[neType]
	raw := buf[neName : neName+nameMaxLen]
	n := 0
	for n < len(raw) && raw[n] != 0 {
		n++
	}
	e.Name = string(raw[:n])
	e.Root = binary.LittleEndian.Uint64(buf[neRoot:])
	e.Lock = binary.LittleEndian.Uint64(buf[neLock:])
	e.SN = binary.LittleEndian.Uint64(buf[neSN:])
	e.Aux = binary.LittleEndian.Uint64(buf[neAux:])
	e.LockLog = binary.LittleEndian.Uint64(buf[neLockLog:])
	return e, nil
}

// GlobalAddr packs a node id and a device offset into one NVM pointer.
// Node ids are biased by one so that address 0 remains the nil pointer.
func GlobalAddr(node uint16, off uint64) uint64 {
	return uint64(node+1)<<48 | off&0xFFFFFFFFFFFF
}

// SplitAddr unpacks a global NVM pointer. Only call on non-nil addresses.
func SplitAddr(addr uint64) (node uint16, off uint64) {
	return uint16(addr>>48) - 1, addr & 0xFFFFFFFFFFFF
}

// AddrNode reports which node an address lives on.
func AddrNode(addr uint64) uint16 { return uint16(addr>>48) - 1 }

// AddrOff reports the device offset of an address.
func AddrOff(addr uint64) uint64 { return addr & 0xFFFFFFFFFFFF }
