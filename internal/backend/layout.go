// Package backend implements the AsymNVM back-end node (§3–§7): the NVM
// layout with its global naming space, the passive RPC service for memory
// management, the memory-log replayer that applies committed transactions
// to the data area under the writer-preferred seqlock, replication of logs
// to mirror nodes, and restart recovery (checksum validation, LPN/OPN
// reconstruction).
package backend

import (
	"encoding/binary"
	"errors"
	"fmt"

	"asymnvm/internal/nvm"
)

// Magic identifies a formatted AsymNVM device ("ASYMNVM1", little-endian).
const Magic uint64 = 0x314D564E4D595341

// Version of the on-NVM format.
const Version uint64 = 1

// Header field offsets (all fields are 8 bytes, at "well-known" locations
// per §5.1's global naming space).
const (
	hdrMagic       = 0
	hdrVersion     = 8
	hdrBitmapBase  = 16
	hdrBitmapBytes = 24
	hdrBlockSize   = 32
	hdrNBlocks     = 40
	hdrDataBase    = 48
	hdrDataSize    = 56
	hdrRPCBase     = 64
	hdrRPCSlots    = 72
	hdrNameBase    = 80
	hdrNameEntries = 88
	hdrEpoch       = 96 // incarnation counter, bumped on every restart
	// EpochOff is the device offset of the incarnation counter; front-ends
	// poll it to detect back-end restarts (Case 3 of §7.2).
	EpochOff = hdrEpoch
	// HeaderSize is the reserved size of the header block.
	HeaderSize = 128
)

// Naming-table entry layout. Each used entry holds the root reference of
// one data structure instance with its lock word, seqlock sequence number,
// lock-ahead log word and a pointer to its auxiliary metadata block —
// "the exclusive lock ... stored next to the root reference" (§5.1).
const (
	NameEntrySize = 96
	neFlags       = 0  // 1 byte: bit0 used
	neType        = 1  // 1 byte: data structure type tag
	neNameHash    = 8  // 8 bytes
	neName        = 16 // 32 bytes, NUL padded
	neRoot        = 48 // 8 bytes: atomic root pointer (global address)
	neLock        = 56 // 8 bytes: writer lock word (0 free, else ownerID+1)
	neSN          = 64 // 8 bytes: seqlock sequence number
	neAux         = 72 // 8 bytes: aux metadata block address (global)
	neLockLog     = 80 // 8 bytes: lock-ahead log: (ownerID+1)<<1 | acquired

	nameMaxLen = 32
)

// Aux metadata block layout (per data structure, allocated in the data
// area). Holds the structure's private log areas and replay cursors.
const (
	AuxSize       = 512
	auxMemLogBase = 0
	auxMemLogSize = 8
	auxOpLogBase  = 16
	auxOpLogSize  = 24
	auxLPN        = 32 // memory-log absolute offset applied & persisted
	auxOPN        = 40 // op-log absolute offset covered by applied txs
	auxMemTail    = 48 // writer's append hint (advisory; recovery rescans)
	auxOpTail     = 56 // writer's append hint (advisory; recovery rescans)
	auxMemTrunc   = 64 // memory-log truncation point: bytes below are reclaimed
	auxOpTrunc    = 72 // op-log truncation point
	// Two alternating checkpoint slots (logrec.CkptSlotSize each). The
	// compaction plane writes seq%2, so a torn checkpoint write can only
	// damage the newer slot; recovery takes the valid record with the
	// highest sequence number.
	auxCkptA = 96
	auxCkptB = 160
	// AuxUser is the first byte available for data-structure-specific
	// metadata (queue head/tail slots, partition maps, B+Tree height…).
	AuxUser = 256
)

// Exported aux-block field offsets for the front-end library.
const (
	AuxMemLogBaseOff = auxMemLogBase
	AuxMemLogSizeOff = auxMemLogSize
	AuxOpLogBaseOff  = auxOpLogBase
	AuxOpLogSizeOff  = auxOpLogSize
	AuxLPNOff        = auxLPN
	AuxOPNOff        = auxOPN
	AuxMemTailOff    = auxMemTail
	AuxOpTailOff     = auxOpTail
	AuxMemTruncOff   = auxMemTrunc
	AuxOpTruncOff    = auxOpTrunc
)

// RPC ring geometry: each front-end connection owns one slot; a slot is a
// request cell and a response cell (§5.1's two circular buffers, one pair
// per front-end so one-sided writes never race).
const (
	RPCSlotSize = 128 // request cell at +0, response cell at +64
	rpcReqOff   = 0
	rpcRespOff  = 64
)

// Config sizes a device format.
type Config struct {
	BlockSize   int // back-end allocator block (slab) size, power of two
	RPCSlots    int // max concurrent front-end connections
	NameEntries int // naming-table capacity
}

// DefaultConfig returns the geometry used by the benchmarks.
func DefaultConfig() Config {
	return Config{BlockSize: 4096, RPCSlots: 16, NameEntries: 64}
}

// Layout is the decoded header: where everything lives on the device.
type Layout struct {
	BitmapBase  uint64
	BitmapBytes uint64
	BlockSize   uint64
	NBlocks     uint64
	DataBase    uint64
	DataSize    uint64
	RPCBase     uint64
	RPCSlots    uint64
	NameBase    uint64
	NameEntries uint64
	Epoch       uint64
}

// NameEntryOff returns the device offset of naming-table slot i.
func (l Layout) NameEntryOff(slot uint16) uint64 {
	return l.NameBase + uint64(slot)*NameEntrySize
}

// RootOff returns the device offset of slot i's root pointer.
func (l Layout) RootOff(slot uint16) uint64 { return l.NameEntryOff(slot) + neRoot }

// LockOff returns the device offset of slot i's writer lock word.
func (l Layout) LockOff(slot uint16) uint64 { return l.NameEntryOff(slot) + neLock }

// SNOff returns the device offset of slot i's seqlock word.
func (l Layout) SNOff(slot uint16) uint64 { return l.NameEntryOff(slot) + neSN }

// AuxPtrOff returns the device offset of slot i's aux-pointer word.
func (l Layout) AuxPtrOff(slot uint16) uint64 { return l.NameEntryOff(slot) + neAux }

// LockLogOff returns the device offset of slot i's lock-ahead log word.
func (l Layout) LockLogOff(slot uint16) uint64 { return l.NameEntryOff(slot) + neLockLog }

// RPCReqOff returns the device offset of connection c's request cell.
func (l Layout) RPCReqOff(c uint16) uint64 { return l.RPCBase + uint64(c)*RPCSlotSize + rpcReqOff }

// RPCRespOff returns the device offset of connection c's response cell.
func (l Layout) RPCRespOff(c uint16) uint64 { return l.RPCBase + uint64(c)*RPCSlotSize + rpcRespOff }

// Format initializes dev with the AsymNVM layout and returns it. All
// remaining space after the metadata regions becomes the block-allocated
// data area (which also hosts per-structure log areas and aux blocks).
func Format(dev *nvm.Device, cfg Config) (Layout, error) {
	if cfg.BlockSize <= 0 || cfg.BlockSize&(cfg.BlockSize-1) != 0 {
		return Layout{}, fmt.Errorf("backend: block size %d not a power of two", cfg.BlockSize)
	}
	if cfg.RPCSlots <= 0 || cfg.NameEntries <= 0 {
		return Layout{}, errors.New("backend: non-positive config")
	}
	total := dev.Size()
	var l Layout
	l.BlockSize = uint64(cfg.BlockSize)
	l.RPCSlots = uint64(cfg.RPCSlots)
	l.NameEntries = uint64(cfg.NameEntries)

	off := uint64(HeaderSize)
	l.RPCBase = off
	off += l.RPCSlots * RPCSlotSize
	l.NameBase = off
	off += l.NameEntries * NameEntrySize

	// The rest is split between bitmap and data area. nBlocks satisfies
	// bitmapBytes + nBlocks*blockSize <= remaining, with the data base
	// aligned to the block size so slab addresses are slab-aligned.
	if off >= total {
		return Layout{}, errors.New("backend: device too small")
	}
	l.BitmapBase = off
	remaining := total - off
	nBlocks := remaining / (l.BlockSize + 1) // 1 bit per block rounds to ≤1 byte
	for nBlocks > 0 {
		bitmapBytes := (nBlocks + 7) / 8
		dataBase := (l.BitmapBase + bitmapBytes + l.BlockSize - 1) &^ (l.BlockSize - 1)
		if dataBase+nBlocks*l.BlockSize <= total {
			l.BitmapBytes = bitmapBytes
			l.DataBase = dataBase
			l.DataSize = nBlocks * l.BlockSize
			l.NBlocks = nBlocks
			break
		}
		nBlocks--
	}
	if l.NBlocks == 0 {
		return Layout{}, errors.New("backend: device too small for any data block")
	}

	buf := make([]byte, HeaderSize)
	put := func(off int, v uint64) { binary.LittleEndian.PutUint64(buf[off:], v) }
	put(hdrMagic, Magic)
	put(hdrVersion, Version)
	put(hdrBitmapBase, l.BitmapBase)
	put(hdrBitmapBytes, l.BitmapBytes)
	put(hdrBlockSize, l.BlockSize)
	put(hdrNBlocks, l.NBlocks)
	put(hdrDataBase, l.DataBase)
	put(hdrDataSize, l.DataSize)
	put(hdrRPCBase, l.RPCBase)
	put(hdrRPCSlots, l.RPCSlots)
	put(hdrNameBase, l.NameBase)
	put(hdrNameEntries, l.NameEntries)
	put(hdrEpoch, 0)
	if err := dev.WritePersist(0, buf); err != nil {
		return Layout{}, err
	}
	// Zero the metadata regions (bitmap, naming table, RPC rings).
	zero := make([]byte, l.BitmapBytes)
	if err := dev.WritePersist(l.BitmapBase, zero); err != nil {
		return Layout{}, err
	}
	zero = make([]byte, l.NameEntries*NameEntrySize)
	if err := dev.WritePersist(l.NameBase, zero); err != nil {
		return Layout{}, err
	}
	zero = make([]byte, l.RPCSlots*RPCSlotSize)
	if err := dev.WritePersist(l.RPCBase, zero); err != nil {
		return Layout{}, err
	}
	return l, nil
}

// ReadLayout decodes the header from a formatted device.
func ReadLayout(dev *nvm.Device) (Layout, error) {
	buf := make([]byte, HeaderSize)
	if err := dev.ReadAt(0, buf); err != nil {
		return Layout{}, err
	}
	return decodeLayout(buf)
}

// DecodeLayout parses a header block (used by front-ends that fetched the
// header over RDMA).
func DecodeLayout(buf []byte) (Layout, error) { return decodeLayout(buf) }

func decodeLayout(buf []byte) (Layout, error) {
	if len(buf) < HeaderSize {
		return Layout{}, errors.New("backend: short header")
	}
	get := func(off int) uint64 { return binary.LittleEndian.Uint64(buf[off:]) }
	if get(hdrMagic) != Magic {
		return Layout{}, errors.New("backend: bad magic (device not formatted)")
	}
	if get(hdrVersion) != Version {
		return Layout{}, fmt.Errorf("backend: format version %d unsupported", get(hdrVersion))
	}
	return Layout{
		BitmapBase:  get(hdrBitmapBase),
		BitmapBytes: get(hdrBitmapBytes),
		BlockSize:   get(hdrBlockSize),
		NBlocks:     get(hdrNBlocks),
		DataBase:    get(hdrDataBase),
		DataSize:    get(hdrDataSize),
		RPCBase:     get(hdrRPCBase),
		RPCSlots:    get(hdrRPCSlots),
		NameBase:    get(hdrNameBase),
		NameEntries: get(hdrNameEntries),
		Epoch:       get(hdrEpoch),
	}, nil
}
