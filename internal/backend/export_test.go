package backend

import "asymnvm/internal/nvm"

// NewReplayFromZero opens a back-end whose recovery ignores checkpoints
// and durable cursors and replays every structure's full log from offset
// zero. Only meaningful on images produced with CompactConfig.KeepPages
// (a scrubbed prefix would decode as garbage). The replay-equivalence
// property test compares this recovery's final image against the normal
// checkpoint+suffix one.
func NewReplayFromZero(dev *nvm.Device, opts Options) (*Backend, error) {
	opts.replayFromZero = true
	return New(dev, opts)
}
