// Package obshttp serves the observability plane over stdlib net/http:
//
//	GET /metrics     — plain-text stats counters plus per-phase latency
//	                   histograms (p50/p95/p99) for every registered actor;
//	GET /debug/trace — the chrome://tracing JSON export of the live trace
//	                   (load in chrome://tracing or ui.perfetto.dev);
//	GET /debug/flame — the text flame summary of the same trace.
//	GET /healthz     — readiness: 200 when every registered health check
//	                   passes (back-end service loops alive, replay lag
//	                   bounded), 503 otherwise, one line per check.
//	GET /debug/pprof — the stdlib runtime profiler, mounted only after
//	                   EnablePprof (the binaries' -pprof flag): the
//	                   wall-clock hot-path work is profiled with real
//	                   CPU samples, not the virtual clock.
//
// The bench, chaos and serve binaries mount it behind an optional -http
// flag. Everything is read-only and safe to scrape mid-run: stats are
// atomic counters, the tracer's span buffers are mutex-guarded, and
// source registration replaces by name so structures may be opened and
// closed while scrapes are in flight.
package obshttp

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"asymnvm/internal/stats"
	"asymnvm/internal/trace"
)

// Server aggregates stats sources, health checks and an optional tracer.
type Server struct {
	mu      sync.Mutex
	tr      *trace.Tracer
	sources []source
	checks  []check
	pprof   bool
}

type source struct {
	name string
	st   *stats.Stats
}

// HealthFunc is one readiness probe: ok plus a short human detail.
type HealthFunc func() (ok bool, detail string)

type check struct {
	name string
	fn   HealthFunc
}

// New returns a server exporting tr (which may be nil).
func New(tr *trace.Tracer) *Server { return &Server{tr: tr} }

// AddStats registers a named stats block to appear on /metrics. A second
// registration under the same name replaces the first, so a structure
// re-opened mid-run (close/open cycles under concurrent scrapes) never
// leaves a stale duplicate behind.
func (s *Server) AddStats(name string, st *stats.Stats) {
	if st == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.sources {
		if s.sources[i].name == name {
			s.sources[i].st = st
			return
		}
	}
	s.sources = append(s.sources, source{name: name, st: st})
}

// RemoveStats drops a named stats block; scrapes in flight keep their
// own copy of the source list, so removal never races a running scrape.
func (s *Server) RemoveStats(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.sources {
		if s.sources[i].name == name {
			s.sources = append(s.sources[:i], s.sources[i+1:]...)
			return
		}
	}
}

// SetHealth registers (or replaces, by name) one readiness probe served
// on /healthz.
func (s *Server) SetHealth(name string, fn HealthFunc) {
	if fn == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.checks {
		if s.checks[i].name == name {
			s.checks[i].fn = fn
			return
		}
	}
	s.checks = append(s.checks, check{name: name, fn: fn})
}

// EnablePprof mounts the runtime profiler (net/http/pprof) under
// /debug/pprof/ on handlers built after the call. Off by default: the
// profiler exposes goroutine stacks and on-demand CPU sampling, so the
// binaries mount it only behind an explicit -pprof opt-in, never
// implicitly with -http.
func (s *Server) EnablePprof() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pprof = true
}

// Handler returns the route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.metrics)
	mux.HandleFunc("/debug/trace", s.debugTrace)
	mux.HandleFunc("/debug/flame", s.debugFlame)
	mux.HandleFunc("/healthz", s.healthz)
	s.mu.Lock()
	withPprof := s.pprof
	s.mu.Unlock()
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// healthz runs every registered probe outside the registry lock (probes
// may read back-end state) and reports 200 only when all pass. With no
// probes registered the endpoint reports ready — liveness of the HTTP
// plane itself.
func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	checks := append([]check(nil), s.checks...)
	s.mu.Unlock()
	type result struct {
		name, detail string
		ok           bool
	}
	results := make([]result, 0, len(checks))
	allOK := true
	for _, c := range checks {
		ok, detail := c.fn()
		if !ok {
			allOK = false
		}
		results = append(results, result{name: c.name, detail: detail, ok: ok})
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !allOK {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	if allOK {
		fmt.Fprintln(w, "ok")
	} else {
		fmt.Fprintln(w, "unavailable")
	}
	for _, r := range results {
		mark := "ok"
		if !r.ok {
			mark = "FAIL"
		}
		fmt.Fprintf(w, "%s %s: %s\n", mark, r.name, r.detail)
	}
}

func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.mu.Lock()
	srcs := append([]source(nil), s.sources...)
	tr := s.tr
	s.mu.Unlock()
	if len(srcs) == 0 && tr != nil {
		// No explicit sources: fall back to the tracer's actor registry,
		// which already carries each actor's stats sink.
		for _, a := range tr.Actors() {
			if st := a.Stats(); st != nil {
				srcs = append(srcs, source{name: a.Name(), st: st})
			}
		}
	}
	for _, src := range srcs {
		fmt.Fprintf(w, "# source %s\n%s\n", src.name, src.st.Snapshot().String())
		if phases := src.st.PhaseSnapshots(); len(phases) > 0 {
			fmt.Fprint(w, stats.FormatPhases(phases))
		}
		fmt.Fprintln(w)
	}
}

func (s *Server) debugTrace(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	tr := s.tr
	s.mu.Unlock()
	if tr == nil {
		http.Error(w, "tracing disabled (run with -trace)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(tr.ChromeJSON())
}

func (s *Server) debugFlame(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	tr := s.tr
	s.mu.Unlock()
	if tr == nil {
		http.Error(w, "tracing disabled (run with -trace)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, tr.FlameSummary())
}

// Start listens on addr and serves in a background goroutine, returning
// the bound address (useful with ":0") and the http.Server for shutdown.
func (s *Server) Start(addr string) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	return hs, ln.Addr().String(), nil
}
