// Package obshttp serves the observability plane over stdlib net/http:
//
//	GET /metrics     — plain-text stats counters plus per-phase latency
//	                   histograms (p50/p95/p99) for every registered actor;
//	GET /debug/trace — the chrome://tracing JSON export of the live trace
//	                   (load in chrome://tracing or ui.perfetto.dev);
//	GET /debug/flame — the text flame summary of the same trace.
//
// The bench, chaos and trace binaries mount it behind an optional -http
// flag. Everything is read-only and safe to scrape mid-run: stats are
// atomic counters and the tracer's span buffers are mutex-guarded.
package obshttp

import (
	"fmt"
	"net"
	"net/http"
	"sync"

	"asymnvm/internal/stats"
	"asymnvm/internal/trace"
)

// Server aggregates stats sources and an optional tracer.
type Server struct {
	mu      sync.Mutex
	tr      *trace.Tracer
	sources []source
}

type source struct {
	name string
	st   *stats.Stats
}

// New returns a server exporting tr (which may be nil).
func New(tr *trace.Tracer) *Server { return &Server{tr: tr} }

// AddStats registers a named stats block to appear on /metrics.
func (s *Server) AddStats(name string, st *stats.Stats) {
	if st == nil {
		return
	}
	s.mu.Lock()
	s.sources = append(s.sources, source{name: name, st: st})
	s.mu.Unlock()
}

// Handler returns the route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.metrics)
	mux.HandleFunc("/debug/trace", s.debugTrace)
	mux.HandleFunc("/debug/flame", s.debugFlame)
	return mux
}

func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.mu.Lock()
	srcs := append([]source(nil), s.sources...)
	tr := s.tr
	s.mu.Unlock()
	if len(srcs) == 0 && tr != nil {
		// No explicit sources: fall back to the tracer's actor registry,
		// which already carries each actor's stats sink.
		for _, a := range tr.Actors() {
			if st := a.Stats(); st != nil {
				srcs = append(srcs, source{name: a.Name(), st: st})
			}
		}
	}
	for _, src := range srcs {
		fmt.Fprintf(w, "# source %s\n%s\n", src.name, src.st.Snapshot().String())
		if phases := src.st.PhaseSnapshots(); len(phases) > 0 {
			fmt.Fprint(w, stats.FormatPhases(phases))
		}
		fmt.Fprintln(w)
	}
}

func (s *Server) debugTrace(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	tr := s.tr
	s.mu.Unlock()
	if tr == nil {
		http.Error(w, "tracing disabled (run with -trace)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(tr.ChromeJSON())
}

func (s *Server) debugFlame(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	tr := s.tr
	s.mu.Unlock()
	if tr == nil {
		http.Error(w, "tracing disabled (run with -trace)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, tr.FlameSummary())
}

// Start listens on addr and serves in a background goroutine, returning
// the bound address (useful with ":0") and the http.Server for shutdown.
func (s *Server) Start(addr string) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	return hs, ln.Addr().String(), nil
}
