package obshttp

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"asymnvm/internal/stats"
)

// TestMetricsExportsFanoutAndTuneCounters pins the /metrics wire format
// for the fan-out and autotune telemetry: a scraper watching a scale-out
// run must see the window/savings counters and the controller's current
// B/depth gauges.
func TestMetricsExportsFanoutAndTuneCounters(t *testing.T) {
	st := &stats.Stats{}
	st.FanoutWindows.Store(3)
	st.FanoutSavedNS.Store(12345)
	st.AutoTuneSteps.Store(2)
	st.AutoTuneBatch.Store(16)
	st.AutoTuneDepth.Store(8)

	srv := New(nil)
	srv.AddStats("fe001", st)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# source fe001",
		"fan{win=3 saved=12345ns}",
		"tune{steps=2 B=16 depth=8}",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, out)
		}
	}
}

// TestMetricsExportsCheckpointCounters pins the /metrics wire format for
// the compaction plane: checkpoints taken, log bytes reclaimed by
// truncation, and operations replayed during the last recovery.
func TestMetricsExportsCheckpointCounters(t *testing.T) {
	st := &stats.Stats{}
	st.Checkpoints.Store(7)
	st.TruncatedBytes.Store(65536)
	st.RecoveryReplayOps.Store(42)

	srv := New(nil)
	srv.AddStats("bk000", st)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# source bk000",
		"ckpt{n=7 trunc=65536B rro=42}",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, out)
		}
	}
}
