package obshttp

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"asymnvm/internal/stats"
)

// TestMetricsExportsFanoutAndTuneCounters pins the /metrics wire format
// for the fan-out and autotune telemetry: a scraper watching a scale-out
// run must see the window/savings counters and the controller's current
// B/depth gauges.
func TestMetricsExportsFanoutAndTuneCounters(t *testing.T) {
	st := &stats.Stats{}
	st.FanoutWindows.Store(3)
	st.FanoutSavedNS.Store(12345)
	st.AutoTuneSteps.Store(2)
	st.AutoTuneBatch.Store(16)
	st.AutoTuneDepth.Store(8)

	srv := New(nil)
	srv.AddStats("fe001", st)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# source fe001",
		"fan{win=3 saved=12345ns}",
		"tune{steps=2 B=16 depth=8}",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, out)
		}
	}
}

// TestMetricsExportsCheckpointCounters pins the /metrics wire format for
// the compaction plane: checkpoints taken, log bytes reclaimed by
// truncation, and operations replayed during the last recovery.
func TestMetricsExportsCheckpointCounters(t *testing.T) {
	st := &stats.Stats{}
	st.Checkpoints.Store(7)
	st.TruncatedBytes.Store(65536)
	st.RecoveryReplayOps.Store(42)

	srv := New(nil)
	srv.AddStats("bk000", st)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# source bk000",
		"ckpt{n=7 trunc=65536B rro=42}",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, out)
		}
	}
}

// TestMetricsExportsMultiWriterCounters pins the /metrics wire format
// for the beyond-SWMR telemetry: stripe lock conflicts, MV root-CAS
// retries, mirror-served reads and their accumulated staleness — the
// counters an operator watches to size stripes and staleness budgets.
func TestMetricsExportsMultiWriterCounters(t *testing.T) {
	st := &stats.Stats{}
	st.StripeConflicts.Store(5)
	st.CASRetries.Store(9)
	st.MirrorReads.Store(120)
	st.MirrorStaleEpochs.Store(36)

	srv := New(nil)
	srv.AddStats("fe002", st)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# source fe002",
		"mw{stripe=5 cas=9 mread=120 mstale=36}",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, out)
		}
	}
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestHealthzReadiness pins /healthz semantics: 200 with no probes or
// all probes passing, 503 with per-check detail lines once any probe
// fails, and SetHealth replacing by name so recovery flips it back.
func TestHealthzReadiness(t *testing.T) {
	srv := New(nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code, body := get(t, ts.URL+"/healthz"); code != http.StatusOK || !strings.HasPrefix(body, "ok") {
		t.Fatalf("empty healthz = %d %q, want 200 ok", code, body)
	}

	srv.SetHealth("backend0", func() (bool, string) { return true, "lag=0B" })
	srv.SetHealth("replayer", func() (bool, string) { return false, "lag=4096B" })
	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("failing probe healthz = %d, want 503", code)
	}
	for _, want := range []string{"unavailable", "ok backend0: lag=0B", "FAIL replayer: lag=4096B"} {
		if !strings.Contains(body, want) {
			t.Fatalf("healthz body missing %q:\n%s", want, body)
		}
	}

	// Replacement by name: the replayer catches up.
	srv.SetHealth("replayer", func() (bool, string) { return true, "lag=0B" })
	if code, body := get(t, ts.URL+"/healthz"); code != http.StatusOK || strings.Contains(body, "FAIL") {
		t.Fatalf("recovered healthz = %d %q, want 200 with no FAIL", code, body)
	}
}

// TestAddStatsReplacesAndRemoves pins registration semantics for
// open/close cycles: same-name AddStats swaps the source in place (no
// duplicate sections) and RemoveStats drops it.
func TestAddStatsReplacesAndRemoves(t *testing.T) {
	srv := New(nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	a, b := &stats.Stats{}, &stats.Stats{}
	a.RDMARead.Store(1)
	b.RDMARead.Store(2)
	srv.AddStats("kv", a)
	srv.AddStats("kv", b)
	_, body := get(t, ts.URL+"/metrics")
	if n := strings.Count(body, "# source kv"); n != 1 {
		t.Fatalf("same-name AddStats left %d sections, want 1:\n%s", n, body)
	}
	if !strings.Contains(body, "rdma{r=2") {
		t.Fatalf("replacement did not take; body:\n%s", body)
	}

	srv.RemoveStats("kv")
	if _, body := get(t, ts.URL+"/metrics"); strings.Contains(body, "# source kv") {
		t.Fatalf("RemoveStats left source behind:\n%s", body)
	}
}

// TestMetricsRaceWithRegistration scrapes /metrics and /healthz
// concurrently with add/remove churn — the open/close path of a served
// structure. Run under -race this pins that registration is race-clean.
func TestMetricsRaceWithRegistration(t *testing.T) {
	srv := New(nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.SetHealth("static", func() (bool, string) { return true, "ok" })

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				name := fmt.Sprintf("src%d", g)
				st := &stats.Stats{}
				st.RDMARead.Store(int64(i))
				srv.AddStats(name, st)
				if i%2 == 0 {
					srv.RemoveStats(name)
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				get(t, ts.URL+"/metrics")
				get(t, ts.URL+"/healthz")
			}
		}()
	}
	wg.Wait()
}

// TestPprofOptIn pins the profiler's gating: /debug/pprof must 404 on a
// default handler and serve the index only after EnablePprof — the
// binaries' -pprof flag is the single way to expose it.
func TestPprofOptIn(t *testing.T) {
	srv := New(nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof reachable without opt-in: status %d", resp.StatusCode)
	}

	srv.EnablePprof()
	ts2 := httptest.NewServer(srv.Handler())
	defer ts2.Close()
	resp, err = http.Get(ts2.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index missing after EnablePprof: status %d", resp.StatusCode)
	}
}
