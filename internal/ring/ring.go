// Package ring provides the bounded lock-free queues the hot paths use
// instead of channel/mutex handoffs, plus the park/unpark doorbell that
// replaces `chan struct{}` wakeups.
//
// Three queue shapes cover every hot edge in the system:
//
//   - SPSC: one producer goroutine, one consumer goroutine. A Lamport
//     ring over a power-of-two buffer with cache-line-padded, locally
//     cached cursors; push and pop are a single atomic store in the
//     common case, touching the opposite side's cache line only at the
//     full/empty boundaries.
//   - MPSC: many producers, one consumer. A Vyukov-style bounded queue
//     with per-slot sequence numbers; producers CAS a ticket, never spin
//     on each other's writes.
//   - Buf: a single-owner circular buffer (no atomics) for queues that
//     live entirely inside one goroutine — the rdma completion queue,
//     the mirror forward window. It grows when full, so steady state is
//     allocation-free while correctness never depends on a size guess.
//
// All three preserve strict FIFO order per producer, which is what the
// deterministic chaos replay needs: per-actor ordering on the virtual
// clock is exactly per-producer FIFO.
package ring

import (
	"sync/atomic"
)

// pad keeps hot cursors on separate cache lines so the producer's tail
// store never invalidates the consumer's head line.
type pad [56]byte

// SPSC is a bounded single-producer single-consumer lock-free ring.
// Exactly one goroutine may call Push/Close and exactly one may call
// Pop; both sides may call Len and Closed.
type SPSC[T any] struct {
	mask uint64
	buf  []T
	_    pad
	head atomic.Uint64 // next slot to pop (consumer-owned)
	_    pad
	tail atomic.Uint64 // next slot to push (producer-owned)
	_    pad
	closed atomic.Bool
	// Cached cursors: each side works against a private mirror of its
	// own cursor and a stale view of the other side's, refreshing the
	// stale view only when the ring looks full (producer) or empty
	// (consumer). The common case is then one atomic store per op — no
	// load of the opposite cache line, so the cursors ping-pong between
	// cores only at the full/empty boundaries instead of every op.
	_     pad
	ptail uint64 // producer's mirror of tail
	phead uint64 // producer's stale view of head
	_     pad
	chead uint64 // consumer's mirror of head
	ctail uint64 // consumer's stale view of tail
}

// NewSPSC returns a ring holding at least capacity elements (rounded up
// to a power of two, minimum 2).
func NewSPSC[T any](capacity int) *SPSC[T] {
	n := ceilPow2(capacity)
	return &SPSC[T]{mask: uint64(n - 1), buf: make([]T, n)}
}

// Push appends v. It returns false when the ring is full or closed —
// never blocking, never allocating.
func (r *SPSC[T]) Push(v T) bool {
	if r.closed.Load() {
		return false
	}
	t := r.ptail
	if t-r.phead > r.mask {
		r.phead = r.head.Load()
		if t-r.phead > r.mask {
			return false
		}
	}
	r.buf[t&r.mask] = v
	r.ptail = t + 1
	r.tail.Store(t + 1) // release: the slot write above is visible first
	return true
}

// Pop removes the oldest element. ok is false when the ring is empty;
// after Close, Pop keeps draining whatever was pushed before the close.
func (r *SPSC[T]) Pop() (v T, ok bool) {
	h := r.chead
	if h == r.ctail {
		r.ctail = r.tail.Load()
		if h == r.ctail {
			return v, false
		}
	}
	slot := &r.buf[h&r.mask]
	v = *slot
	var zero T
	*slot = zero // release references for GC
	r.chead = h + 1
	r.head.Store(h + 1)
	return v, true
}

// Len reports the number of buffered elements (racy but monotone-safe:
// it never exceeds what a subsequent Pop can observe from either side).
func (r *SPSC[T]) Len() int { return int(r.tail.Load() - r.head.Load()) }

// Cap reports the fixed capacity.
func (r *SPSC[T]) Cap() int { return len(r.buf) }

// Close marks the ring closed: every later Push fails, Pop drains the
// remainder. Unlike closing a channel, Close never races a concurrent
// Push — a post-close Push simply returns false.
func (r *SPSC[T]) Close() { r.closed.Store(true) }

// Closed reports whether Close was called. A Push racing Close may
// still land one element after the flag flips; a draining consumer
// therefore checks Closed() first and pops once more before exiting,
// which bounds the race to a single extra sweep.
func (r *SPSC[T]) Closed() bool { return r.closed.Load() }

func ceilPow2(n int) int {
	if n < 2 {
		n = 2
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
