package ring

import (
	"sync/atomic"
)

// mpscSlot pairs an element with its sequence word. seq == ticket means
// the slot is free for the producer holding that ticket; seq == ticket+1
// means the element is published and waiting for the consumer.
type mpscSlot[T any] struct {
	seq atomic.Uint64
	v   T
}

// MPSC is a bounded multi-producer single-consumer lock-free ring
// (Vyukov's bounded queue with the consumer side simplified to one
// goroutine). Any number of goroutines may Push; exactly one may Pop.
type MPSC[T any] struct {
	mask  uint64
	slots []mpscSlot[T]
	_     pad
	enq   atomic.Uint64 // producer ticket counter
	_     pad
	deq   atomic.Uint64 // consumer cursor
	_     pad
	closed atomic.Bool
}

// NewMPSC returns a ring holding at least capacity elements (rounded up
// to a power of two, minimum 2).
func NewMPSC[T any](capacity int) *MPSC[T] {
	n := ceilPow2(capacity)
	q := &MPSC[T]{mask: uint64(n - 1), slots: make([]mpscSlot[T], n)}
	for i := range q.slots {
		q.slots[i].seq.Store(uint64(i))
	}
	return q
}

// Push appends v, returning false when the ring is full or closed. It
// never blocks: a producer that loses a CAS race simply retries against
// the advanced ticket, and a full ring is detected without waiting on
// other producers' in-flight writes.
func (q *MPSC[T]) Push(v T) bool {
	if q.closed.Load() {
		return false
	}
	for {
		pos := q.enq.Load()
		slot := &q.slots[pos&q.mask]
		seq := slot.seq.Load()
		switch {
		case seq == pos:
			if q.enq.CompareAndSwap(pos, pos+1) {
				slot.v = v
				slot.seq.Store(pos + 1)
				return true
			}
		case seq < pos:
			// The slot still holds an element from one lap ago: full.
			return false
		default:
			// Another producer advanced enq; reload.
		}
	}
}

// Pop removes the oldest published element. Elements published by
// different producers are consumed in publication (ticket) order, so
// each producer's own pushes stay FIFO.
func (q *MPSC[T]) Pop() (v T, ok bool) {
	pos := q.deq.Load()
	slot := &q.slots[pos&q.mask]
	if slot.seq.Load() != pos+1 {
		return v, false // empty, or the ticket holder has not published yet
	}
	v = slot.v
	var zero T
	slot.v = zero
	slot.seq.Store(pos + q.mask + 1) // free the slot for the next lap
	q.deq.Store(pos + 1)
	return v, true
}

// Len reports the number of claimed tickets not yet consumed (an upper
// bound on poppable elements, since a ticket may not be published yet).
func (q *MPSC[T]) Len() int { return int(q.enq.Load() - q.deq.Load()) }

// Cap reports the fixed capacity.
func (q *MPSC[T]) Cap() int { return len(q.slots) }

// Close marks the ring closed: later Pushes fail, Pop drains what was
// already published. As with SPSC, a Push racing Close may land one
// last element; drain loops check Closed() before their final Pop.
func (q *MPSC[T]) Close() { q.closed.Store(true) }

// Closed reports whether Close was called.
func (q *MPSC[T]) Closed() bool { return q.closed.Load() }
