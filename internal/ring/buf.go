package ring

// Buf is a single-owner circular buffer: a FIFO ring for queues that
// never cross a goroutine boundary (the rdma completion queue, the
// mirror forward window). No atomics, no locks — just wrap-around
// indexing with amortized growth, so a steady-state workload recycles
// the same backing array forever instead of re-allocating per append
// the way a drained slice does.
type Buf[T any] struct {
	buf  []T
	head int // index of the oldest element
	n    int // live element count
}

// NewBuf returns a buffer pre-sized for capacity elements (rounded up
// to a power of two, minimum 2). A zero Buf is also valid and sizes
// itself on first push.
func NewBuf[T any](capacity int) *Buf[T] {
	return &Buf[T]{buf: make([]T, ceilPow2(capacity))}
}

// PushBack appends v, growing the ring when full.
func (b *Buf[T]) PushBack(v T) {
	if b.n == len(b.buf) {
		b.grow()
	}
	b.buf[(b.head+b.n)&(len(b.buf)-1)] = v
	b.n++
}

// PopFront removes and returns the oldest element.
func (b *Buf[T]) PopFront() (v T, ok bool) {
	if b.n == 0 {
		return v, false
	}
	slot := &b.buf[b.head&(len(b.buf)-1)]
	v = *slot
	var zero T
	*slot = zero
	b.head = (b.head + 1) & (len(b.buf) - 1)
	b.n--
	return v, true
}

// Front returns the oldest element without removing it.
func (b *Buf[T]) Front() (v T, ok bool) {
	if b.n == 0 {
		return v, false
	}
	return b.buf[b.head], true
}

// Back returns the newest element without removing it.
func (b *Buf[T]) Back() (v T, ok bool) {
	if b.n == 0 {
		return v, false
	}
	return b.buf[(b.head+b.n-1)&(len(b.buf)-1)], true
}

// At returns the i-th element from the front (0 = oldest). The caller
// guarantees 0 <= i < Len.
func (b *Buf[T]) At(i int) T {
	return b.buf[(b.head+i)&(len(b.buf)-1)]
}

// Len reports the live element count.
func (b *Buf[T]) Len() int { return b.n }

// Reset discards every element, keeping the backing array.
func (b *Buf[T]) Reset() {
	var zero T
	for i := 0; i < b.n; i++ {
		b.buf[(b.head+i)&(len(b.buf)-1)] = zero
	}
	b.head, b.n = 0, 0
}

// grow doubles the backing array, unwrapping the live elements to the
// front of the new one.
func (b *Buf[T]) grow() {
	size := len(b.buf) * 2
	if size == 0 {
		size = 2
	}
	nb := make([]T, size)
	for i := 0; i < b.n; i++ {
		nb[i] = b.buf[(b.head+i)&(len(b.buf)-1)]
	}
	b.buf = nb
	b.head = 0
}
