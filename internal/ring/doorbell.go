package ring

import (
	"runtime"
	"sync/atomic"
)

// Doorbell is the park/unpark primitive that replaces the
// `select { case ch <- struct{}{}: default: }` wakeup idiom. Any number
// of goroutines may Ring; one consumer polls the flag in its hot loop
// and parks only when idle.
//
// Unlike a closable channel, a Doorbell has no teardown hazard: Ring is
// a flag swap plus (at most) one non-blocking send on a channel that is
// never closed, so a producer racing the consumer's shutdown — the
// power-fail Halt() path — can never panic or block. Coalescing
// matches the old idiom: any number of Rings while the consumer is busy
// collapse into one wakeup.
type Doorbell struct {
	rung atomic.Bool
	ch   chan struct{} // capacity 1; never closed
}

// NewDoorbell returns a ready doorbell.
func NewDoorbell() *Doorbell {
	return &Doorbell{ch: make(chan struct{}, 1)}
}

// Ring wakes the consumer. Safe from any goroutine, at any time — in
// particular after the consumer has exited for good.
func (d *Doorbell) Ring() {
	if !d.rung.Swap(true) {
		select {
		case d.ch <- struct{}{}:
		default:
		}
	}
}

// Poll consumes a pending ring without blocking. The consumer calls it
// at the top of its hot loop; only when it returns false does the loop
// fall back to Park.
func (d *Doorbell) Poll() bool {
	return d.rung.Swap(false)
}

// parkSpins bounds the busy-poll phase before Park blocks: long enough
// to catch a producer in the doorbell-ring window, short enough that an
// idle consumer yields the CPU quickly.
const parkSpins = 32

// Park blocks until the doorbell rings or one of the abort channels
// fires. It returns -1 when rung, else the index (0 or 1) of the abort
// channel; abort1 may be nil (a nil channel never fires). A short spin
// phase precedes the blocking wait so a busy producer-consumer pair
// stays out of the scheduler entirely.
func (d *Doorbell) Park(abort0, abort1 <-chan struct{}) int {
	for i := 0; i < parkSpins; i++ {
		if d.rung.Swap(false) {
			return -1
		}
		if i&7 == 7 {
			select {
			case <-abort0:
				return 0
			case <-abort1:
				return 1
			default:
			}
			runtime.Gosched()
		}
	}
	select {
	case <-d.ch:
		d.rung.Swap(false)
		return -1
	case <-abort0:
		return 0
	case <-abort1:
		return 1
	}
}
