package ring

import (
	"testing"
)

// ---- SPSC contract ----

func TestSPSCFIFOAndWrap(t *testing.T) {
	r := NewSPSC[int](4)
	if r.Cap() != 4 {
		t.Fatalf("cap = %d, want 4", r.Cap())
	}
	// Several laps around the ring so the wrap point is exercised.
	next := 0
	for lap := 0; lap < 10; lap++ {
		for i := 0; i < 3; i++ {
			if !r.Push(next + i) {
				t.Fatalf("lap %d: push %d failed", lap, next+i)
			}
		}
		for i := 0; i < 3; i++ {
			v, ok := r.Pop()
			if !ok || v != next+i {
				t.Fatalf("lap %d: pop = %d,%v, want %d", lap, v, ok, next+i)
			}
		}
		next += 3
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop on empty ring succeeded")
	}
}

func TestSPSCCapacity(t *testing.T) {
	r := NewSPSC[int](4)
	for i := 0; i < 4; i++ {
		if !r.Push(i) {
			t.Fatalf("push %d failed below capacity", i)
		}
	}
	if r.Push(99) {
		t.Fatal("push on full ring succeeded")
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	if v, ok := r.Pop(); !ok || v != 0 {
		t.Fatalf("pop = %d,%v, want 0", v, ok)
	}
	if !r.Push(99) {
		t.Fatal("push after pop failed")
	}
}

func TestSPSCClose(t *testing.T) {
	r := NewSPSC[int](8)
	r.Push(1)
	r.Push(2)
	r.Close()
	if !r.Closed() {
		t.Fatal("Closed() false after Close")
	}
	if r.Push(3) {
		t.Fatal("push after close succeeded")
	}
	// Pop drains what was pushed before the close.
	if v, ok := r.Pop(); !ok || v != 1 {
		t.Fatalf("pop = %d,%v, want 1", v, ok)
	}
	if v, ok := r.Pop(); !ok || v != 2 {
		t.Fatalf("pop = %d,%v, want 2", v, ok)
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop past drained close succeeded")
	}
}

func TestSPSCRoundsCapacity(t *testing.T) {
	r := NewSPSC[int](5)
	if r.Cap() != 8 {
		t.Fatalf("cap = %d, want 8 (next power of two)", r.Cap())
	}
	r = NewSPSC[int](0)
	if r.Cap() != 2 {
		t.Fatalf("cap = %d, want 2 (minimum)", r.Cap())
	}
}

// ---- MPSC contract ----

func TestMPSCFIFOAndWrap(t *testing.T) {
	q := NewMPSC[int](4)
	next := 0
	for lap := 0; lap < 10; lap++ {
		for i := 0; i < 3; i++ {
			if !q.Push(next + i) {
				t.Fatalf("lap %d: push failed", lap)
			}
		}
		for i := 0; i < 3; i++ {
			v, ok := q.Pop()
			if !ok || v != next+i {
				t.Fatalf("lap %d: pop = %d,%v, want %d", lap, v, ok, next+i)
			}
		}
		next += 3
	}
}

func TestMPSCCapacityAndClose(t *testing.T) {
	q := NewMPSC[int](4)
	for i := 0; i < 4; i++ {
		if !q.Push(i) {
			t.Fatalf("push %d failed below capacity", i)
		}
	}
	if q.Push(99) {
		t.Fatal("push on full ring succeeded")
	}
	q.Close()
	if q.Push(100) {
		t.Fatal("push after close succeeded")
	}
	for i := 0; i < 4; i++ {
		if v, ok := q.Pop(); !ok || v != i {
			t.Fatalf("pop = %d,%v, want %d", v, ok, i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop past drained close succeeded")
	}
}

// ---- Buf contract ----

func TestBufFIFOGrowAndPeek(t *testing.T) {
	b := NewBuf[int](2)
	for i := 0; i < 100; i++ {
		b.PushBack(i)
	}
	if b.Len() != 100 {
		t.Fatalf("len = %d, want 100", b.Len())
	}
	if v, _ := b.Front(); v != 0 {
		t.Fatalf("front = %d, want 0", v)
	}
	if v, _ := b.Back(); v != 99 {
		t.Fatalf("back = %d, want 99", v)
	}
	for i := 0; i < 100; i++ {
		if b.At(0) != i {
			t.Fatalf("At(0) = %d, want %d", b.At(0), i)
		}
		v, ok := b.PopFront()
		if !ok || v != i {
			t.Fatalf("pop = %d,%v, want %d", v, ok, i)
		}
	}
	if _, ok := b.PopFront(); ok {
		t.Fatal("pop on empty buf succeeded")
	}
}

func TestBufWrapAfterMixedOps(t *testing.T) {
	b := NewBuf[int](4)
	// Hold occupancy at 3 while head walks laps around the 4-slot ring,
	// exercising the wrap arithmetic without ever forcing growth.
	next, expect := 0, 0
	for ; next < 3; next++ {
		b.PushBack(next)
	}
	for step := 0; step < 50; step++ {
		b.PushBack(next)
		next++
		v, ok := b.PopFront()
		if !ok || v != expect {
			t.Fatalf("step %d: pop = %d,%v, want %d", step, v, ok, expect)
		}
		expect++
		if b.Len() != 3 || len(b.buf) != 4 {
			t.Fatalf("step %d: len = %d cap = %d, want 3 within 4", step, b.Len(), len(b.buf))
		}
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("len after reset = %d", b.Len())
	}
}

func TestZeroBuf(t *testing.T) {
	var b Buf[string]
	b.PushBack("a")
	b.PushBack("b")
	if v, _ := b.PopFront(); v != "a" {
		t.Fatalf("pop = %q, want a", v)
	}
}

// ---- Doorbell contract ----

func TestDoorbellPollAndCoalesce(t *testing.T) {
	d := NewDoorbell()
	if d.Poll() {
		t.Fatal("fresh doorbell reports rung")
	}
	d.Ring()
	d.Ring()
	d.Ring()
	if !d.Poll() {
		t.Fatal("rung doorbell reports idle")
	}
	if d.Poll() {
		// Coalescing: three rings collapse into one observable wakeup.
		// (A stale channel token may wake Park spuriously, but Poll's
		// flag must read false here.)
		t.Fatal("doorbell rung twice for coalesced rings")
	}
}

func TestDoorbellParkWakesOnRing(t *testing.T) {
	d := NewDoorbell()
	abort := make(chan struct{})
	done := make(chan int, 1)
	go func() { done <- d.Park(abort, nil) }()
	d.Ring()
	if got := <-done; got != -1 {
		t.Fatalf("Park = %d, want -1", got)
	}
}

func TestDoorbellParkAborts(t *testing.T) {
	d := NewDoorbell()
	a0, a1 := make(chan struct{}), make(chan struct{})
	done := make(chan int, 1)
	go func() { done <- d.Park(a0, a1) }()
	close(a1)
	if got := <-done; got != 1 {
		t.Fatalf("Park = %d, want 1", got)
	}
	go func() { done <- d.Park(a0, nil) }()
	close(a0)
	if got := <-done; got != 0 {
		t.Fatalf("Park = %d, want 0", got)
	}
}

func TestPushPopDoNotAllocate(t *testing.T) {
	r := NewSPSC[uint64](64)
	q := NewMPSC[uint64](64)
	b := NewBuf[uint64](64)
	if a := testing.AllocsPerRun(200, func() {
		r.Push(1)
		r.Pop()
		q.Push(2)
		q.Pop()
		b.PushBack(3)
		b.PopFront()
	}); a != 0 {
		t.Fatalf("ring ops allocate %.1f/op, want 0", a)
	}
}
