package ring

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// The stress tests are the -race leg of the contract suite: each drives
// a ring across real goroutine boundaries hard enough that any missing
// happens-before edge in the cursor protocol trips the race detector,
// while the checks pin per-producer FIFO and exactly-once delivery.

func TestSPSCStress(t *testing.T) {
	const n = 200000
	r := NewSPSC[uint64](128)
	var sum uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); i <= n; {
			if r.Push(i) {
				i++
			} else {
				runtime.Gosched()
			}
		}
	}()
	expect := uint64(1)
	for expect <= n {
		v, ok := r.Pop()
		if !ok {
			runtime.Gosched()
			continue
		}
		if v != expect {
			t.Fatalf("out of order: got %d, want %d", v, expect)
		}
		sum += v
		expect++
	}
	wg.Wait()
	if want := uint64(n) * (n + 1) / 2; sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

func TestMPSCStress(t *testing.T) {
	const (
		producers = 4
		perProd   = 50000
	)
	q := NewMPSC[uint64](256)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; {
				// Tag each element with its producer so the consumer can
				// verify per-producer FIFO.
				if q.Push(uint64(p)<<32 | uint64(i)) {
					i++
				} else {
					runtime.Gosched()
				}
			}
		}(p)
	}
	next := [producers]uint64{}
	got := 0
	for got < producers*perProd {
		v, ok := q.Pop()
		if !ok {
			runtime.Gosched()
			continue
		}
		p, i := v>>32, v&0xffffffff
		if i != next[p] {
			t.Fatalf("producer %d out of order: got %d, want %d", p, i, next[p])
		}
		next[p]++
		got++
	}
	wg.Wait()
	if _, ok := q.Pop(); ok {
		t.Fatal("extra element after all producers accounted for")
	}
}

// TestMPSCCloseRace hammers Push from several goroutines while Close
// fires concurrently — the exact shape of the serve teardown path. The
// invariant is simply no panic, no race, and every successful Push is
// poppable.
func TestMPSCCloseRace(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		q := NewMPSC[int](64)
		var pushed atomic.Int64
		var wg sync.WaitGroup
		for p := 0; p < 4; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 500; i++ {
					if q.Push(i) {
						pushed.Add(1)
					} else if q.Closed() {
						return
					}
				}
			}()
		}
		go q.Close()
		// Consumer drains concurrently; after producers exit, one final
		// sweep collects any Push that raced the close.
		var popped int64
		drain := func() {
			for {
				if _, ok := q.Pop(); !ok {
					return
				}
				popped++
			}
		}
		for !q.Closed() {
			drain()
		}
		wg.Wait()
		drain()
		if popped != pushed.Load() {
			t.Fatalf("iter %d: pushed %d but popped %d", iter, pushed.Load(), popped)
		}
	}
}

// TestDoorbellStress rings from many goroutines against a poll/park
// consumer and checks no wakeup is lost: after every producer finishes,
// the consumer must observe at least as many wake cycles as idle→rung
// transitions it needs to drain a shared counter to zero.
func TestDoorbellStress(t *testing.T) {
	d := NewDoorbell()
	stop := make(chan struct{})
	var work atomic.Int64
	var seen atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // consumer
		defer wg.Done()
		for {
			if d.Poll() {
				for {
					if n := work.Load(); n > 0 && work.CompareAndSwap(n, 0) {
						seen.Add(n)
						break
					} else if n == 0 {
						break
					}
				}
				continue
			}
			if d.Park(stop, nil) == 0 {
				// Final drain after stop, mirroring Backend.Stop.
				seen.Add(work.Swap(0))
				return
			}
		}
	}()
	const producers, perProd = 8, 5000
	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func() {
			defer pwg.Done()
			for i := 0; i < perProd; i++ {
				work.Add(1)
				d.Ring()
			}
		}()
	}
	pwg.Wait()
	close(stop)
	wg.Wait()
	if got := seen.Load(); got != producers*perProd {
		t.Fatalf("consumer saw %d units, want %d", got, producers*perProd)
	}
}

// TestDoorbellRingAfterConsumerGone models Kick racing Halt: ringing a
// doorbell whose consumer has exited must never panic or block.
func TestDoorbellRingAfterConsumerGone(t *testing.T) {
	d := NewDoorbell()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		d.Park(stop, nil)
		close(done)
	}()
	close(stop)
	<-done
	for i := 0; i < 1000; i++ {
		d.Ring() // consumer long gone; must be a no-op
	}
}
